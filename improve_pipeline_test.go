package mwvc

// Property tests for the Reduce→Solve→Improve→Lift pipeline across every
// registered algorithm: improved kernel covers lift to valid original
// covers with exact Float64bits weight accounting, the dual bound is
// bitwise untouched by improvement, and the default-off path reproduces the
// improvement-free pipeline bit for bit.

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/reduce"
	"repro/internal/solver"
	"repro/internal/verify"
)

// TestImprovedPipelineProperties is the lift-interplay property test: for
// every instance × algorithm × seed, the improved-and-lifted cover is valid
// on the original graph, Solution.Weight is bitwise the recomputed cover
// weight, the improvement stats are bitwise kernel cover weights (checked
// by projecting the lifted cover back through reduce.Trace.Restrict), the
// forced weight + improved kernel weight accounts for the total, and the
// certified bound is bitwise identical to the improvement-free solve.
func TestImprovedPipelineProperties(t *testing.T) {
	for name, g := range reducibleInstances(t) {
		for _, algo := range Algorithms() {
			for seed := uint64(1); seed <= 3; seed++ {
				plain, err := Solve(context.Background(), g,
					WithAlgorithm(algo), WithSeed(seed), WithEpsilon(0.1))
				if errors.Is(err, solver.ErrUnsupported) {
					continue
				}
				if err != nil {
					t.Fatalf("%s/%s/seed%d plain: %v", name, algo, seed, err)
				}
				// A generous budget on these small instances converges, so the
				// improved run is deterministic too.
				sol, err := Solve(context.Background(), g,
					WithAlgorithm(algo), WithSeed(seed), WithEpsilon(0.1),
					WithImprovement(time.Minute))
				if err != nil {
					t.Fatalf("%s/%s/seed%d improved: %v", name, algo, seed, err)
				}
				if ok, e := verify.IsCover(g, sol.Cover); !ok {
					t.Fatalf("%s/%s/seed%d: improved lifted cover misses edge %d", name, algo, seed, e)
				}
				if math.Float64bits(sol.Weight) != math.Float64bits(verify.CoverWeight(g, sol.Cover)) {
					t.Fatalf("%s/%s/seed%d: Weight %v != recomputed %v",
						name, algo, seed, sol.Weight, verify.CoverWeight(g, sol.Cover))
				}
				if sol.Weight > plain.Weight {
					t.Fatalf("%s/%s/seed%d: improvement made the cover heavier: %v > %v",
						name, algo, seed, sol.Weight, plain.Weight)
				}
				// The dual certificate is untouched: bitwise-identical bound,
				// so the certified ratio can only tighten.
				if math.Float64bits(sol.Bound) != math.Float64bits(plain.Bound) {
					t.Fatalf("%s/%s/seed%d: improvement moved the bound: %x vs %x",
						name, algo, seed, math.Float64bits(sol.Bound), math.Float64bits(plain.Bound))
				}
				if sol.CertifiedRatio > plain.CertifiedRatio {
					t.Fatalf("%s/%s/seed%d: certified ratio loosened: %v > %v",
						name, algo, seed, sol.CertifiedRatio, plain.CertifiedRatio)
				}

				if sol.Exact {
					if sol.Improvement != nil {
						t.Fatalf("%s/%s/seed%d: exact solve carries improvement stats", name, algo, seed)
					}
					continue
				}
				if sol.Improvement == nil {
					t.Fatalf("%s/%s/seed%d: improvement stats missing", name, algo, seed)
				}

				// Exact Float64bits weight accounting on the kernel: rebuild
				// the (deterministic) reduction, project the lifted cover back
				// to kernel ids, and the stats' WeightAfter must be bitwise
				// the kernel cover weight.
				red, err := reduce.Run(context.Background(), g)
				if err != nil {
					t.Fatal(err)
				}
				kernel, forced := red.Kernel, 0.0
				kernelCover := sol.Cover
				if red.Trace != nil {
					kernelCover = red.Trace.Restrict(sol.Cover)
					forced = red.Trace.ForcedWeight()
				}
				if math.Float64bits(sol.Improvement.WeightAfter) !=
					math.Float64bits(verify.CoverWeight(kernel, kernelCover)) {
					t.Fatalf("%s/%s/seed%d: WeightAfter %v != kernel cover weight %v",
						name, algo, seed, sol.Improvement.WeightAfter, verify.CoverWeight(kernel, kernelCover))
				}
				// Forced weight + improved kernel weight accounts for the
				// lifted total (associativity slack only).
				if diff := math.Abs(forced + sol.Improvement.WeightAfter - sol.Weight); diff > 1e-9 {
					t.Fatalf("%s/%s/seed%d: forced %v + kernel %v != lifted %v (diff %v)",
						name, algo, seed, forced, sol.Improvement.WeightAfter, sol.Weight, diff)
				}
			}
		}
	}
}

// TestWithoutImprovementBitIdentical pins the default-off guarantee: a plain
// Solve, Solve(WithoutImprovement()) and Solve(WithImprovement(0)) are one
// code path — bit-for-bit identical floats, accounting and cover, with no
// improvement stats attached.
func TestWithoutImprovementBitIdentical(t *testing.T) {
	for name, g := range reducibleInstances(t) {
		for _, algo := range Algorithms() {
			want, err := Solve(context.Background(), g,
				WithAlgorithm(algo), WithSeed(2), WithEpsilon(0.1))
			if errors.Is(err, solver.ErrUnsupported) {
				continue
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", name, algo, err)
			}
			for variant, opts := range map[string][]Option{
				"WithoutImprovement": {WithAlgorithm(algo), WithSeed(2), WithEpsilon(0.1), WithoutImprovement()},
				"ZeroBudget":         {WithAlgorithm(algo), WithSeed(2), WithEpsilon(0.1), WithImprovement(0)},
				"NegativeBudget":     {WithAlgorithm(algo), WithSeed(2), WithEpsilon(0.1), WithImprovement(-time.Second)},
			} {
				got, err := Solve(context.Background(), g, opts...)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", name, algo, variant, err)
				}
				if got.Improvement != nil {
					t.Fatalf("%s/%s/%s: improvement stats attached with the stage off", name, algo, variant)
				}
				if math.Float64bits(got.Weight) != math.Float64bits(want.Weight) ||
					math.Float64bits(got.Bound) != math.Float64bits(want.Bound) ||
					math.Float64bits(got.CertifiedRatio) != math.Float64bits(want.CertifiedRatio) {
					t.Fatalf("%s/%s/%s: floats differ from plain solve", name, algo, variant)
				}
				if got.Rounds != want.Rounds || got.Phases != want.Phases || got.Exact != want.Exact {
					t.Fatalf("%s/%s/%s: accounting differs from plain solve", name, algo, variant)
				}
				for v := range want.Cover {
					if got.Cover[v] != want.Cover[v] {
						t.Fatalf("%s/%s/%s: cover bit %d differs", name, algo, variant, v)
					}
				}
			}
		}
	}
}

// TestImprovementStatsJSONRoundTrip: the improvement key appears exactly
// when the stage ran, and survives the Solution JSON round trip.
func TestImprovementStatsJSONRoundTrip(t *testing.T) {
	g := RandomGraph(7, 300, 8)
	sol, err := Solve(context.Background(), g,
		WithAlgorithm(AlgoGreedy), WithSeed(1), WithImprovement(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Improvement == nil {
		t.Fatal("no improvement stats on a budgeted greedy solve")
	}
	data, err := sol.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Solution
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Improvement == nil || *back.Improvement != *sol.Improvement {
		t.Fatalf("improvement stats mutated in round trip: %+v vs %+v", back.Improvement, sol.Improvement)
	}
	// Improvement-free solves keep the wire clean: no improvement key.
	plain, err := Solve(context.Background(), g, WithAlgorithm(AlgoGreedy), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := plain.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"improvement"`)) {
		t.Fatal("improvement key present for an improvement-free solve")
	}
}
