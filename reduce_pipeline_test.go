package mwvc

// Property tests for the Reduce→Solve→Lift pipeline across every registered
// algorithm: lifted covers are valid on the original graph, weights are
// exact to the bit, certified ratios survive lifting, and disabling
// reduction reproduces the direct solve path bit for bit.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/cli"
	"repro/internal/solver"
	"repro/internal/verify"
)

// reducibleInstance mixes structure every rule can bite on (pendant fringe,
// skewed weights) with an irreducible core; see cli.BuildGraph generators.
func reducibleInstances(t *testing.T) map[string]*Graph {
	t.Helper()
	out := map[string]*Graph{}
	for _, spec := range []struct {
		name, gen, weights string
		n                  int
		d                  float64
	}{
		{"powerlaw-tree", "powerlaw", "unit", 300, 2},
		{"powerlaw-uniform", "powerlaw", "uniform", 300, 4},
		{"gnp-sparse", "gnp", "uniform", 200, 3},
		{"star", "star", "unit", 120, 0},
		{"grid", "grid", "uniform", 100, 4},
	} {
		g, err := cli.BuildGraph(spec.gen, spec.n, spec.d, spec.weights, 11)
		if err != nil {
			t.Fatal(err)
		}
		out[spec.name] = g
	}
	return out
}

func TestReducedPipelineProperties(t *testing.T) {
	for name, g := range reducibleInstances(t) {
		for _, algo := range Algorithms() {
			for seed := uint64(1); seed <= 3; seed++ {
				sol, err := Solve(context.Background(), g,
					WithAlgorithm(algo), WithSeed(seed), WithEpsilon(0.1))
				if errors.Is(err, solver.ErrUnsupported) {
					continue // e.g. ggk on weighted instances, exact on big kernels
				}
				if err != nil {
					t.Fatalf("%s/%s/seed%d: %v", name, algo, seed, err)
				}
				// The lifted cover must cover the *original* graph.
				if ok, e := verify.IsCover(g, sol.Cover); !ok {
					t.Fatalf("%s/%s/seed%d: lifted cover misses edge %d", name, algo, seed, e)
				}
				// Weight is the recomputed cover weight, exactly.
				if math.Float64bits(sol.Weight) != math.Float64bits(verify.CoverWeight(g, sol.Cover)) {
					t.Fatalf("%s/%s/seed%d: Weight %v != recomputed %v",
						name, algo, seed, sol.Weight, verify.CoverWeight(g, sol.Cover))
				}
				// Certified results stay certified after lifting.
				if !math.IsInf(sol.CertifiedRatio, 1) && sol.CertifiedRatio < 1-1e-12 {
					t.Fatalf("%s/%s/seed%d: certified ratio %v < 1", name, algo, seed, sol.CertifiedRatio)
				}
				if sol.Bound > sol.Weight+1e-9 {
					t.Fatalf("%s/%s/seed%d: bound %v above weight %v", name, algo, seed, sol.Bound, sol.Weight)
				}
				if sol.Reduction == nil {
					t.Fatalf("%s/%s/seed%d: reduction stats missing", name, algo, seed)
				}
			}
		}
	}
}

// TestWithoutReductionBitIdentical pins the refactor's no-op guarantee:
// WithoutReduction must reproduce the direct solve path — registry solve on
// the raw graph followed by verification — bit for bit, for every algorithm.
func TestWithoutReductionBitIdentical(t *testing.T) {
	for name, g := range reducibleInstances(t) {
		for _, algo := range Algorithms() {
			reg, ok := solver.Lookup(string(algo))
			if !ok {
				t.Fatalf("%s not registered", algo)
			}
			cfg := solver.Config{Epsilon: 0.1, Seed: 2}
			out, err := reg.Solver.Solve(context.Background(), g, cfg)
			if errors.Is(err, solver.ErrUnsupported) {
				continue
			}
			if err != nil {
				t.Fatalf("%s/%s direct: %v", name, algo, err)
			}
			want := directFinish(t, g, out)

			got, err := Solve(context.Background(), g,
				WithAlgorithm(algo), WithSeed(2), WithEpsilon(0.1), WithoutReduction())
			if err != nil {
				t.Fatalf("%s/%s pipeline: %v", name, algo, err)
			}
			if got.Reduction != nil {
				t.Fatalf("%s/%s: WithoutReduction attached reduction stats", name, algo)
			}
			if math.Float64bits(got.Weight) != math.Float64bits(want.Weight) ||
				math.Float64bits(got.Bound) != math.Float64bits(want.Bound) ||
				math.Float64bits(got.CertifiedRatio) != math.Float64bits(want.CertifiedRatio) {
				t.Fatalf("%s/%s: floats differ: got (%x,%x,%x) want (%x,%x,%x)", name, algo,
					math.Float64bits(got.Weight), math.Float64bits(got.Bound), math.Float64bits(got.CertifiedRatio),
					math.Float64bits(want.Weight), math.Float64bits(want.Bound), math.Float64bits(want.CertifiedRatio))
			}
			if got.Rounds != want.Rounds || got.Phases != want.Phases || got.Exact != want.Exact {
				t.Fatalf("%s/%s: accounting differs: got %d/%d/%v want %d/%d/%v", name, algo,
					got.Rounds, got.Phases, got.Exact, want.Rounds, want.Phases, want.Exact)
			}
			for v := range want.Cover {
				if got.Cover[v] != want.Cover[v] {
					t.Fatalf("%s/%s: cover bit %d differs", name, algo, v)
				}
			}
		}
	}
}

// directFinish replicates the pre-pipeline facade epilogue: verify the raw
// cover, check the certificate, apply the CertifiedRatio conventions.
func directFinish(t *testing.T, g *Graph, out *solver.Outcome) *Solution {
	t.Helper()
	if ok, _ := verify.IsCover(g, out.Cover); !ok {
		t.Fatal("direct outcome is not a cover")
	}
	sol := &Solution{
		Cover:  out.Cover,
		Weight: verify.CoverWeight(g, out.Cover),
		Rounds: out.Rounds,
		Phases: out.Phases,
		Exact:  out.Exact,
	}
	switch {
	case out.Duals != nil:
		cert, err := verify.NewCertificate(g, out.Cover, out.Duals)
		if err != nil {
			t.Fatal(err)
		}
		sol.Bound = cert.Bound
		sol.CertifiedRatio = cert.Ratio()
	case out.Exact:
		sol.Bound = sol.Weight
		sol.CertifiedRatio = 1
	case sol.Weight == 0:
		sol.CertifiedRatio = 1
	default:
		sol.CertifiedRatio = math.Inf(1)
	}
	return sol
}

// TestExactViaKernelAcceptance pins the acceptance criterion: an exact
// solve succeeds on an original graph with far more than 64 vertices whose
// kernel fits, and matches brute force on the small core.
func TestExactViaKernelAcceptance(t *testing.T) {
	// 200 vertices: an irreducible 8-cycle core (cheap ends pattern refuses
	// every rule) plus 192 heavy pendants hanging off a separate cheap hub
	// chain that collapses entirely.
	b := NewBuilder(200)
	coreW := []float64{1, 10, 1, 10, 1, 10, 1, 10}
	for i, w := range coreW {
		b.SetWeight(Vertex(i), w)
		b.AddEdge(Vertex(i), Vertex((i+1)%8))
	}
	for l := 8; l < 200; l++ {
		b.SetWeight(Vertex(l), 50)
		b.AddEdge(Vertex(l%8), Vertex(l))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(context.Background(), g, WithAlgorithm(AlgoExact), WithSeed(1))
	if err != nil {
		t.Fatalf("exact via kernel on n=200: %v", err)
	}
	if !sol.Exact {
		t.Fatal("solution not marked exact")
	}
	if ok, _ := verify.IsCover(g, sol.Cover); !ok {
		t.Fatal("exact cover invalid on the original")
	}
	if sol.Reduction == nil || sol.Reduction.OriginalVertices != 200 {
		t.Fatalf("reduction stats %+v", sol.Reduction)
	}
	// Every pendant forces its core hub; the whole cycle is forced, the
	// kernel is empty, and OPT is the cycle weight.
	want := 0.0
	for _, w := range coreW {
		want += w
	}
	if math.Abs(sol.Weight-want) > 1e-9 {
		t.Fatalf("exact weight %v, want %v", sol.Weight, want)
	}
}

func TestReductionStatsJSONRoundTrip(t *testing.T) {
	g, err := cli.BuildGraph("powerlaw", 200, 2, "unit", 5)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(context.Background(), g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reduction == nil || sol.Reduction.KernelVertices >= 200 {
		t.Fatalf("powerlaw tree did not reduce: %+v", sol.Reduction)
	}
	data, err := json.Marshal(sol)
	if err != nil {
		t.Fatal(err)
	}
	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Reduction == nil {
		t.Fatal("reduction stats lost in JSON round trip")
	}
	if *back.Reduction != *sol.Reduction {
		t.Fatalf("reduction stats mutated: %+v vs %+v", back.Reduction, sol.Reduction)
	}
	// WithoutReduction keeps the wire clean: no reduction key at all.
	noRed, err := Solve(context.Background(), g, WithSeed(1), WithoutReduction())
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(noRed)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, present := m["reduction"]; present {
		t.Fatal("reduction key present for a WithoutReduction solve")
	}
}
