// Package mwvc is a Go reproduction of "A Massively Parallel Algorithm for
// Minimum Weight Vertex Cover" (Ghaffari, Jin, Nilis — SPAA 2020,
// arXiv:2005.10566): a randomized MPC algorithm with near-linear memory per
// machine that computes a (2+ε)-approximate minimum-weight vertex cover in
// O(log log d) rounds, d being the average degree.
//
// This package is the public facade. It re-exports the graph type and
// dispatches one-call solves through the solver registry:
//
//	g := mwvc.RandomGraph(seed, n, avgDegree)
//	sol, err := mwvc.Solve(ctx, g, mwvc.WithAlgorithm(mwvc.AlgoMPC), mwvc.WithEpsilon(0.1))
//	fmt.Println(sol.Weight, sol.CertifiedRatio, sol.Rounds)
//
// Solves are cancellable and deadline-bounded through the context, and
// observable round-by-round through WithObserver — the O(log log d) round
// trajectory the paper is about is exposed as a first-class event stream, not
// just two ints after the fact.
//
// Every solve stages through a Reduce→Solve→Improve→Lift pipeline: weighted
// kernelization rules (internal/reduce) shrink the instance, the selected
// algorithm solves the kernel, an optional anytime local-search stage
// (internal/improve, enabled by WithImprovement) monotonically reduces the
// cover weight under a wall-clock budget, and the cover and certificate are
// lifted back to — and verified against — the original graph with exact
// weight accounting. Reduction defaults to on (see WithoutReduction and
// Solution.Reduction); improvement defaults to off so results stay
// bit-for-bit reproducible (see WithImprovement and Solution.Improvement).
//
// Every algorithm registers itself with internal/solver from its own
// package; the Algorithms list, the Solve dispatch, and the CLI -algo flag
// all derive from that one table. The heavy lifting lives in the internal
// packages (internal/core for the paper's Algorithm 2, internal/centralized
// for Algorithm 1, internal/mpc for the cluster substrate); see DESIGN.md
// for the full inventory.
package mwvc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/improve"
	"repro/internal/reduce"
	"repro/internal/solver"

	// Each algorithm package registers its solvers from an init function;
	// the facade imports them for that side effect.
	_ "repro/internal/baselines"
	_ "repro/internal/cclique"
	_ "repro/internal/centralized"
	_ "repro/internal/compress"
	_ "repro/internal/core"
	_ "repro/internal/exact"
	_ "repro/internal/ggk"
	_ "repro/internal/pdfast"
)

// Graph is the weighted undirected graph type shared by all algorithms.
type Graph = graph.Graph

// Builder constructs graphs; see NewBuilder.
type Builder = graph.Builder

// Vertex identifies a vertex.
type Vertex = graph.Vertex

// NewBuilder returns a Builder for a graph on n vertices (unit weights by
// default; set weights with SetWeight).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// ReadGraph parses a graph in either of the repository's text formats
// (docs/FORMATS.md) from a one-shot stream, buffering the edge list in
// memory. For large on-disk instances prefer ReadGraphFile, which builds
// the CSR arrays in two bounded-memory streaming passes.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// ReadGraphFile reads a graph file via the two-pass streaming ingestion
// path: no in-memory edge-list buffer, peak memory ≈ the final graph.
func ReadGraphFile(path string) (*Graph, error) { return graph.OpenFile(path) }

// WriteGraph serializes a graph in the repository's canonical text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// RandomGraph returns an Erdős–Rényi graph with the given expected average
// degree and unit weights; a convenience for examples and quick starts.
func RandomGraph(seed uint64, n int, avgDegree float64) *Graph {
	return gen.GnpAvgDegree(seed, n, avgDegree)
}

// Algorithm names a registered solver.
type Algorithm string

// The built-in algorithms. The constants are conveniences; the authoritative
// list is the registry (Algorithms).
const (
	// AlgoMPC is the paper's contribution: Algorithm 2, the O(log log d)-round
	// MPC simulation (package internal/core).
	AlgoMPC Algorithm = "mpc"
	// AlgoMPCCompress is the round-compressed Algorithm 2: the same sampled
	// phase logic riding on 3 accounted cluster rounds per phase instead of
	// 5, via a single gathered LOCAL simulation per sampled group.
	AlgoMPCCompress Algorithm = "mpc-compress"
	// AlgoCentralized is Algorithm 1 run sequentially with the degree-aware
	// initialization (O(log Δ) iterations).
	AlgoCentralized Algorithm = "centralized"
	// AlgoLocalUniform is Algorithm 1 with the classic uniform initialization
	// (O(log nW) iterations) — the pre-paper state of the art baseline.
	AlgoLocalUniform Algorithm = "local-uniform"
	// AlgoPDFast is the O(m) primal–dual fast-tier sweep (certified
	// 2-approximation, serve degradation default).
	AlgoPDFast Algorithm = "pdfast"
	// AlgoPDFastPar is the deterministic parallel pdfast variant,
	// bit-identical to AlgoPDFast at any GOMAXPROCS.
	AlgoPDFastPar Algorithm = "pdfast-par"
	// AlgoBYE is the sequential Bar-Yehuda–Even 2-approximation.
	AlgoBYE Algorithm = "bye"
	// AlgoGreedy is weighted greedy (no constant-factor guarantee).
	AlgoGreedy Algorithm = "greedy"
	// AlgoCongestedClique runs the primal–dual algorithm one-round-per-
	// iteration under congested-clique constraints.
	AlgoCongestedClique Algorithm = "congested-clique"
	// AlgoGGK runs the unweighted GGK+18 round-compression algorithm
	// (unit-weight graphs only) — the paper's direct ancestor.
	AlgoGGK Algorithm = "ggk"
	// AlgoExact is branch-and-bound (n ≤ 64 only).
	AlgoExact Algorithm = "exact"
)

// Algorithms lists every registered algorithm in display order. The list is
// derived from the solver registry, so it cannot drift from what Solve
// accepts.
func Algorithms() []Algorithm {
	names := solver.Names()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// AlgorithmSummary returns the registered one-line description of a, or ""
// for an unknown algorithm.
func AlgorithmSummary(a Algorithm) string {
	reg, ok := solver.Lookup(string(a))
	if !ok {
		return ""
	}
	return reg.Summary
}

// AlgorithmTier returns the registered quality/latency tier of a ("fast",
// "accurate" or "exact"), or "" for an unknown algorithm. The serve layer
// resolves its `tier` request hint against these values.
func AlgorithmTier(a Algorithm) string {
	reg, ok := solver.Lookup(string(a))
	if !ok {
		return ""
	}
	return reg.Tier
}

// AlgorithmHelp renders the registry as flag help text: every algorithm name
// with its tier and one-line summary, in display order.
func AlgorithmHelp() string {
	var b strings.Builder
	for i, reg := range solver.Registrations() {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "  %-17s %-9s %s", reg.Name, reg.Tier, reg.Summary)
	}
	return b.String()
}

// Observer receives solve-progress events; see Event for the stream
// contract. Pass one with WithObserver.
type Observer = solver.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = solver.ObserverFunc

// Event is one solve-progress observation: phase started, round completed,
// phase completed, final phase done — with the active-edge count and the
// running dual total at that point.
type Event = solver.Event

// EventKind tags an Event.
type EventKind = solver.EventKind

// Re-exported event kinds; see internal/solver for the per-kind contract.
const (
	KindPhaseStart   = solver.KindPhaseStart
	KindRound        = solver.KindRound
	KindPhaseEnd     = solver.KindPhaseEnd
	KindFinalPhase   = solver.KindFinalPhase
	KindReduceStart  = solver.KindReduceStart
	KindReduceEnd    = solver.KindReduceEnd
	KindImproveStart = solver.KindImproveStart
	KindImproveStep  = solver.KindImproveStep
	KindImproveEnd   = solver.KindImproveEnd
	KindCompress     = solver.KindCompress
)

// MultiObserver fans events out to several observers in order, skipping nils.
func MultiObserver(obs ...Observer) Observer { return solver.MultiObserver(obs...) }

// Option configures Solve. The zero configuration solves with AlgoMPC at
// ε = 0.1, seed 0, GOMAXPROCS parallelism, practical constants, no observer.
type Option func(*settings)

type settings struct {
	algo   Algorithm
	reduce bool
	cfg    solver.Config
}

// WithAlgorithm selects the solver; default AlgoMPC.
func WithAlgorithm(a Algorithm) Option {
	return func(s *settings) { s.algo = a }
}

// WithEpsilon sets the accuracy parameter for the primal–dual algorithms
// (certified ratio 2+O(ε)); default 0.1.
func WithEpsilon(eps float64) Option {
	return func(s *settings) { s.cfg.Epsilon = eps }
}

// WithSeed sets the seed driving all randomness; same seed ⇒ same output.
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.cfg.Seed = seed }
}

// WithParallelism bounds concurrent simulated machines (0 = GOMAXPROCS).
func WithParallelism(n int) Option {
	return func(s *settings) { s.cfg.Parallelism = n }
}

// WithPaperConstants selects the literal asymptotic constants of the paper
// for AlgoMPC (see internal/core.ParamsPaper); the default is the practical
// scaling.
func WithPaperConstants() Option {
	return func(s *settings) { s.cfg.PaperConstants = true }
}

// WithObserver streams solve-progress events to obs. Observers are invoked
// synchronously from the solve loop and must be fast.
func WithObserver(obs Observer) Option {
	return func(s *settings) { s.cfg.Observer = obs }
}

// WithReduction enables the kernelization stage (the default): the instance
// is shrunk by the weighted reduction rules of internal/reduce, the
// selected algorithm solves the kernel, and the cover and certificate are
// lifted back to — and verified against — the original graph. Reduction
// never loosens the result: the forced weight adds exactly to both the
// cover weight and the certified lower bound, so CertifiedRatio stays
// meaningful (and Solution.Reduction reports what the stage did).
func WithReduction() Option {
	return func(s *settings) { s.reduce = true }
}

// WithoutReduction skips the kernelization stage: the selected algorithm
// runs on the raw graph, reproducing the pre-reduction pipeline bit for
// bit. Solution.Reduction is nil on this path.
func WithoutReduction() Option {
	return func(s *settings) { s.reduce = false }
}

// WithImprovement enables the anytime local-search improvement stage
// (internal/improve) with the given wall-clock budget: after the selected
// algorithm solves (the kernel of) the instance, redundant-vertex removal
// and weighted two-improvement swaps monotonically reduce the cover weight
// until the budget expires, the context is cancelled, or a local optimum is
// certified. The dual certificate is untouched, so Bound is bitwise
// identical with or without improvement and CertifiedRatio can only
// tighten. Budget expiry and cancellation are not errors — the stage
// returns the best cover reached, always valid and never heavier.
// Exact solves skip the stage (there is nothing to improve).
// A zero or negative budget is WithoutImprovement.
func WithImprovement(budget time.Duration) Option {
	return func(s *settings) {
		if budget < 0 {
			budget = 0
		}
		s.cfg.ImproveBudget = budget
	}
}

// WithoutImprovement skips the improvement stage (the default): solve
// results are bit-for-bit identical to the pre-improvement pipeline, and
// Solution.Improvement is nil.
func WithoutImprovement() Option {
	return func(s *settings) { s.cfg.ImproveBudget = 0 }
}

// Solution is the outcome of Solve, with a self-contained quality
// certificate whenever the algorithm provides one.
type Solution struct {
	// Cover marks the chosen vertices.
	Cover []bool
	// Weight is the total weight of the cover.
	Weight float64
	// Bound is a certified lower bound on OPT (weak LP duality), or 0 when
	// the algorithm provides no certificate (greedy).
	Bound float64
	// CertifiedRatio is Weight/Bound. Convention for certificate-free
	// results: +Inf when Bound is 0 and Weight > 0 ("no guarantee claimed"
	// — deliberately not 0 or NaN so naive comparisons fail safe), and 1 for
	// the empty instance (a zero-weight cover is trivially optimal). Use
	// math.IsInf to detect the certificate-free case before formatting.
	CertifiedRatio float64
	// Rounds counts communication rounds for the distributed algorithms
	// (MPC rounds for AlgoMPC, iterations for the LOCAL baselines,
	// congested-clique rounds for AlgoCongestedClique); 0 for sequential
	// algorithms.
	Rounds int
	// Phases counts the sampled MPC phases (AlgoMPC and AlgoGGK only).
	Phases int
	// Exact reports that Weight is the true optimum: AlgoExact, or any
	// algorithm on an instance the reduction rules solved outright (empty
	// kernel).
	Exact bool
	// Reduction reports what the kernelization stage did — instance size
	// before and after, per-rule counts, forced weight, reduce time. It is
	// nil when the solve ran WithoutReduction.
	Reduction *ReductionStats
	// Improvement reports what the anytime improvement stage did — weights
	// before/after on the solved instance, move counts, time to first
	// improvement. It is nil unless the solve ran WithImprovement (and the
	// result was not already exact).
	Improvement *ImprovementStats
}

// ReductionStats is the kernelization accounting attached to a Solution;
// see internal/reduce for the field-by-field contract.
type ReductionStats = reduce.Stats

// ImprovementStats is the anytime-improvement accounting attached to a
// Solution; see internal/improve for the field-by-field contract. Its
// weights refer to the solved instance (the kernel when reduction ran).
type ImprovementStats = improve.Stats

// solutionJSON is the wire form of Solution. CertifiedRatio is a pointer
// because encoding/json rejects non-finite floats: the +Inf "no guarantee
// claimed" convention is carried as null on the wire.
type solutionJSON struct {
	Cover          []bool            `json:"cover,omitempty"`
	Weight         float64           `json:"weight"`
	Bound          float64           `json:"bound"`
	CertifiedRatio *float64          `json:"certified_ratio"`
	Rounds         int               `json:"rounds,omitempty"`
	Phases         int               `json:"phases,omitempty"`
	Exact          bool              `json:"exact,omitempty"`
	Reduction      *ReductionStats   `json:"reduction,omitempty"`
	Improvement    *ImprovementStats `json:"improvement,omitempty"`
}

// MarshalJSON encodes the solution for service responses and benchmark
// output. The documented +Inf CertifiedRatio convention ("no guarantee
// claimed") cannot survive encoding/json — it rejects non-finite floats — so
// it is mapped to a null certified_ratio; every other field encodes as-is.
func (s Solution) MarshalJSON() ([]byte, error) {
	out := solutionJSON{
		Cover:       s.Cover,
		Weight:      s.Weight,
		Bound:       s.Bound,
		Rounds:      s.Rounds,
		Phases:      s.Phases,
		Exact:       s.Exact,
		Reduction:   s.Reduction,
		Improvement: s.Improvement,
	}
	if !math.IsInf(s.CertifiedRatio, 0) && !math.IsNaN(s.CertifiedRatio) {
		r := s.CertifiedRatio
		out.CertifiedRatio = &r
	}
	return json.Marshal(out)
}

// UnmarshalJSON inverts MarshalJSON: a null or absent certified_ratio
// restores the +Inf convention, so Weight/Bound/ratio round-trip through
// JSON exactly.
func (s *Solution) UnmarshalJSON(data []byte) error {
	var in solutionJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*s = Solution{
		Cover:       in.Cover,
		Weight:      in.Weight,
		Bound:       in.Bound,
		Rounds:      in.Rounds,
		Phases:      in.Phases,
		Exact:       in.Exact,
		Reduction:   in.Reduction,
		Improvement: in.Improvement,
	}
	if in.CertifiedRatio != nil {
		s.CertifiedRatio = *in.CertifiedRatio
	} else {
		s.CertifiedRatio = math.Inf(1)
	}
	return nil
}

// Solve computes a vertex cover of g with the selected algorithm (default
// AlgoMPC). The context cancels or deadline-bounds the solve: every iterative
// solver loop checks it, and a pre-cancelled context returns ctx.Err()
// without touching the graph.
//
// Solve is safe for concurrent use: any number of goroutines may solve at
// once, including on the same Graph (solvers treat the graph as read-only and
// never mutate it). Each call builds its own solver state — the MPC cluster,
// RNG streams and scratch arenas are all per-solve — and the registry itself
// is read-locked, so concurrent solves share nothing mutable. Observers are
// per-call: an Observer passed to one Solve sees only that solve's events,
// invoked synchronously on that call's goroutine (an observer shared across
// concurrent solves must itself be concurrency-safe). Total CPU is
// bounded per call via WithParallelism; concurrent callers running heavy
// algorithms should split GOMAXPROCS between them (as internal/serve does).
func Solve(ctx context.Context, g *Graph, opts ...Option) (*Solution, error) {
	if g == nil {
		return nil, fmt.Errorf("mwvc: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := settings{algo: AlgoMPC, reduce: true, cfg: solver.Config{Epsilon: 0.1}}
	for _, opt := range opts {
		opt(&s)
	}
	if s.cfg.Epsilon == 0 {
		s.cfg.Epsilon = 0.1
	}
	reg, ok := solver.Lookup(string(s.algo))
	if !ok {
		return nil, fmt.Errorf("mwvc: unknown algorithm %q (have: %s)", s.algo, strings.Join(solver.Names(), ", "))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := solver.Pipeline{Solver: reg.Solver, Reduce: s.reduce, Config: s.cfg}
	res, err := p.Run(ctx, g)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Cover:          res.Cover,
		Weight:         res.Weight,
		Bound:          res.Bound,
		CertifiedRatio: res.CertifiedRatio,
		Rounds:         res.Rounds,
		Phases:         res.Phases,
		Exact:          res.Exact,
		Reduction:      res.Reduction,
		Improvement:    res.Improvement,
	}, nil
}
