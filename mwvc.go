// Package mwvc is a Go reproduction of "A Massively Parallel Algorithm for
// Minimum Weight Vertex Cover" (Ghaffari, Jin, Nilis — SPAA 2020,
// arXiv:2005.10566): a randomized MPC algorithm with near-linear memory per
// machine that computes a (2+ε)-approximate minimum-weight vertex cover in
// O(log log d) rounds, d being the average degree.
//
// This package is the public facade. It re-exports the graph type and
// offers one-call solvers for every algorithm in the repository:
//
//	g := mwvc.RandomGraph(seed, n, avgDegree)
//	sol, err := mwvc.Solve(g, mwvc.Options{Algorithm: mwvc.AlgoMPC, Epsilon: 0.1})
//	fmt.Println(sol.Weight, sol.CertifiedRatio, sol.Rounds)
//
// The heavy lifting lives in the internal packages (internal/core for the
// paper's Algorithm 2, internal/centralized for Algorithm 1, internal/mpc
// for the cluster substrate); see DESIGN.md for the full inventory.
package mwvc

import (
	"fmt"
	"io"
	"math"

	"repro/internal/baselines"
	"repro/internal/cclique"
	"repro/internal/centralized"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/ggk"
	"repro/internal/graph"
	"repro/internal/verify"
)

// Graph is the weighted undirected graph type shared by all algorithms.
type Graph = graph.Graph

// Builder constructs graphs; see NewBuilder.
type Builder = graph.Builder

// Vertex identifies a vertex.
type Vertex = graph.Vertex

// NewBuilder returns a Builder for a graph on n vertices (unit weights by
// default; set weights with SetWeight).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// ReadGraph parses a graph in the repository's text format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes a graph in the repository's text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// RandomGraph returns an Erdős–Rényi graph with the given expected average
// degree and unit weights; a convenience for examples and quick starts.
func RandomGraph(seed uint64, n int, avgDegree float64) *Graph {
	return gen.GnpAvgDegree(seed, n, avgDegree)
}

// Algorithm selects a solver.
type Algorithm string

const (
	// AlgoMPC is the paper's contribution: Algorithm 2, the O(log log d)-round
	// MPC simulation (package internal/core).
	AlgoMPC Algorithm = "mpc"
	// AlgoCentralized is Algorithm 1 run sequentially with the degree-aware
	// initialization (O(log Δ) iterations).
	AlgoCentralized Algorithm = "centralized"
	// AlgoLocalUniform is Algorithm 1 with the classic uniform initialization
	// (O(log nW) iterations) — the pre-paper state of the art baseline.
	AlgoLocalUniform Algorithm = "local-uniform"
	// AlgoBYE is the sequential Bar-Yehuda–Even 2-approximation.
	AlgoBYE Algorithm = "bye"
	// AlgoGreedy is weighted greedy (no constant-factor guarantee).
	AlgoGreedy Algorithm = "greedy"
	// AlgoCongestedClique runs the primal–dual algorithm one-round-per-
	// iteration under congested-clique constraints.
	AlgoCongestedClique Algorithm = "congested-clique"
	// AlgoGGK runs the unweighted GGK+18 round-compression algorithm
	// (unit-weight graphs only) — the paper's direct ancestor.
	AlgoGGK Algorithm = "ggk"
	// AlgoExact is branch-and-bound (n ≤ 64 only).
	AlgoExact Algorithm = "exact"
)

// Algorithms lists every selectable algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoMPC, AlgoCentralized, AlgoLocalUniform, AlgoBYE,
		AlgoGreedy, AlgoCongestedClique, AlgoGGK, AlgoExact,
	}
}

// Options configures Solve.
type Options struct {
	// Algorithm defaults to AlgoMPC.
	Algorithm Algorithm
	// Epsilon is the accuracy parameter for the primal–dual algorithms;
	// defaults to 0.1.
	Epsilon float64
	// Seed drives all randomness; same seed ⇒ same output.
	Seed uint64
	// PaperConstants selects the literal asymptotic constants of the paper
	// for AlgoMPC (see internal/core.ParamsPaper); default is the practical
	// scaling.
	PaperConstants bool
	// Parallelism bounds concurrent simulated machines (0 = GOMAXPROCS).
	Parallelism int
}

// Solution is the outcome of Solve, with a self-contained quality
// certificate whenever the algorithm provides one.
type Solution struct {
	// Cover marks the chosen vertices.
	Cover []bool
	// Weight is the total weight of the cover.
	Weight float64
	// Bound is a certified lower bound on OPT (weak LP duality), or 0 when
	// the algorithm provides no certificate (greedy).
	Bound float64
	// CertifiedRatio is Weight/Bound (+Inf if Bound is 0 and Weight > 0,
	// 1 for the empty instance).
	CertifiedRatio float64
	// Rounds counts communication rounds for the distributed algorithms
	// (MPC rounds for AlgoMPC, iterations for the LOCAL baselines,
	// congested-clique rounds for AlgoCongestedClique); 0 for sequential
	// algorithms.
	Rounds int
	// Phases counts the sampled MPC phases (AlgoMPC only).
	Phases int
	// Exact reports that Weight is the true optimum (AlgoExact only).
	Exact bool
}

// Solve computes a vertex cover of g with the selected algorithm.
func Solve(g *Graph, opts Options) (*Solution, error) {
	if g == nil {
		return nil, fmt.Errorf("mwvc: nil graph")
	}
	if opts.Algorithm == "" {
		opts.Algorithm = AlgoMPC
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.1
	}
	switch opts.Algorithm {
	case AlgoMPC:
		params := core.ParamsPractical(opts.Epsilon, opts.Seed)
		if opts.PaperConstants {
			params = core.ParamsPaper(opts.Epsilon, opts.Seed)
		}
		params.Parallelism = opts.Parallelism
		res, err := core.Run(g, params)
		if err != nil {
			return nil, err
		}
		scaled, _ := res.FeasibleDual(g)
		return finish(g, res.Cover, scaled, res.Rounds, res.Phases, false)
	case AlgoCentralized, AlgoLocalUniform:
		init := centralized.InitDegreeAware
		if opts.Algorithm == AlgoLocalUniform {
			init = centralized.InitUniform
		}
		sol, err := baselines.LocalPrimalDual(g, opts.Epsilon, opts.Seed, init)
		if err != nil {
			return nil, err
		}
		return finish(g, sol.Cover, sol.Duals, sol.Rounds, 0, false)
	case AlgoBYE:
		sol := baselines.BarYehudaEven(g)
		return finish(g, sol.Cover, sol.Duals, 0, 0, false)
	case AlgoGreedy:
		sol := baselines.Greedy(g)
		return finish(g, sol.Cover, nil, 0, 0, false)
	case AlgoCongestedClique:
		res, err := cclique.Run(g, opts.Epsilon, opts.Seed)
		if err != nil {
			return nil, err
		}
		return finish(g, res.Cover, res.X, res.Rounds, 0, false)
	case AlgoGGK:
		res, err := ggk.Run(g, opts.Epsilon, opts.Seed)
		if err != nil {
			return nil, err
		}
		return finish(g, res.Cover, res.FeasibleDual(), res.Rounds, res.Phases, false)
	case AlgoExact:
		cover, _, err := exact.Solve(g)
		if err != nil {
			return nil, err
		}
		return finish(g, cover, nil, 0, 0, true)
	default:
		return nil, fmt.Errorf("mwvc: unknown algorithm %q", opts.Algorithm)
	}
}

func finish(g *Graph, cover []bool, duals []float64, rounds, phases int, isExact bool) (*Solution, error) {
	if ok, e := verify.IsCover(g, cover); !ok {
		u, v := g.Edge(e)
		return nil, fmt.Errorf("mwvc: internal error: edge (%d,%d) uncovered", u, v)
	}
	sol := &Solution{
		Cover:  cover,
		Weight: verify.CoverWeight(g, cover),
		Rounds: rounds,
		Phases: phases,
		Exact:  isExact,
	}
	if duals != nil {
		cert, err := verify.NewCertificate(g, cover, duals)
		if err != nil {
			return nil, fmt.Errorf("mwvc: internal error: invalid certificate: %w", err)
		}
		sol.Bound = cert.Bound
		sol.CertifiedRatio = cert.Ratio()
	} else if isExact {
		sol.Bound = sol.Weight
		sol.CertifiedRatio = 1
	} else if sol.Weight == 0 {
		sol.CertifiedRatio = 1
	} else {
		sol.CertifiedRatio = math.Inf(1)
	}
	return sol, nil
}
