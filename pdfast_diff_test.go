package mwvc_test

// Differential property suite for the pdfast fast tier. Every registered
// algorithm runs on the same instance grid (5 families × 3 seeds) and must
// return a valid cover; pdfast additionally must return a feasible dual
// whose doubled value bounds the primal bitwise, match its parallel variant
// bit-for-bit at several GOMAXPROCS values, and stay within 2× the exact
// optimum wherever the exact solver can certify one. The suite is the
// cross-algorithm oracle: a subtly wrong approximation solver can return
// valid-looking covers for a long time before anyone notices, so the cheap
// algorithms are checked against each other and against exact ground truth
// on every run.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	mwvc "repro"
	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/verify"
)

// diffFamilies spans the structural extremes the generators offer: sparse
// uniform-weight Erdős–Rényi, heavy-tailed preferential attachment, bipartite
// (where LP duality is tight), regular unit-weight (everything ties), and
// rewired ring lattices with degree-correlated weights.
var diffFamilies = []struct {
	name    string
	gen     string
	n       int
	d       float64
	weights string
}{
	{"gnp-uniform", "gnp", 800, 8, "uniform"},
	{"powerlaw-exp", "powerlaw", 1000, 6, "exp"},
	{"bipartite-loguniform", "bipartite", 600, 10, "loguniform"},
	{"regular-unit", "regular", 500, 4, "unit"},
	{"smallworld-degree", "smallworld", 700, 8, "degree"},
}

var diffSeeds = []uint64{1, 2, 3}

// TestPDFastDifferential is the cross-algorithm sweep: every registered
// solver must produce a valid cover (and a feasible dual when it claims
// one) on every instance of the grid, and pdfast's certificate invariants
// hold bitwise.
func TestPDFastDifferential(t *testing.T) {
	ctx := context.Background()
	for _, fam := range diffFamilies {
		for _, seed := range diffSeeds {
			t.Run(fam.name+"/"+string(rune('0'+seed)), func(t *testing.T) {
				g, err := cli.BuildGraph(fam.gen, fam.n, fam.d, fam.weights, seed)
				if err != nil {
					t.Fatal(err)
				}
				cfg := solver.Config{Epsilon: 0.1, Seed: seed}
				for _, reg := range solver.Registrations() {
					out, err := reg.Solver.Solve(ctx, g, cfg)
					if errors.Is(err, solver.ErrUnsupported) {
						continue // instance outside the algorithm's domain
					}
					if err != nil {
						t.Fatalf("%s: %v", reg.Name, err)
					}
					if ok, witness := verify.IsCover(g, out.Cover); !ok {
						t.Fatalf("%s: edge %d uncovered", reg.Name, witness)
					}
					if out.Duals != nil {
						if err := verify.DualFeasible(g, out.Duals); err != nil {
							t.Fatalf("%s: %v", reg.Name, err)
						}
					}
				}

				checkPDFastCertificate(t, ctx, g, cfg)
			})
		}
	}
}

// checkPDFastCertificate pins pdfast's own contract on one instance: valid
// cover, per-vertex dual feasibility, and primal ≤ 2·dual compared through
// math.Float64bits — non-negative IEEE doubles order identically by value
// and by bit pattern, so this is the exact (no-tolerance) form of the
// 2-approximation inequality on the sums as actually computed.
func checkPDFastCertificate(t *testing.T, ctx context.Context, g *graph.Graph, cfg solver.Config) {
	t.Helper()
	reg, ok := solver.Lookup("pdfast")
	if !ok {
		t.Fatal("pdfast not registered")
	}
	out, err := reg.Solver.Solve(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ok, witness := verify.IsCover(g, out.Cover); !ok {
		t.Fatalf("pdfast: edge %d uncovered", witness)
	}
	if err := verify.DualFeasible(g, out.Duals); err != nil {
		t.Fatalf("pdfast dual infeasible: %v", err)
	}
	primal := verify.CoverWeight(g, out.Cover)
	dual := verify.DualValue(out.Duals)
	if math.Float64bits(primal) > math.Float64bits(2*dual) {
		t.Fatalf("pdfast primal %v (bits %#x) exceeds 2×dual %v (bits %#x)",
			primal, math.Float64bits(primal), 2*dual, math.Float64bits(2*dual))
	}
}

// TestPDFastParallelMatchesSerial pins the KVY determinism contract: the
// parallel variant's cover bitmap and dual vector are bit-for-bit identical
// to serial pdfast at GOMAXPROCS ∈ {1, 2, 8}, on every instance of the
// grid. Weight and bound are compared through Float64bits — "equal" here
// means the same IEEE double, not merely close.
func TestPDFastParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	serialReg, _ := solver.Lookup("pdfast")
	parReg, ok := solver.Lookup("pdfast-par")
	if !ok {
		t.Fatal("pdfast-par not registered")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, fam := range diffFamilies {
		for _, seed := range diffSeeds {
			g, err := cli.BuildGraph(fam.gen, fam.n, fam.d, fam.weights, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg := solver.Config{Epsilon: 0.1, Seed: seed}
			want, err := serialReg.Solver.Solve(ctx, g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, procs := range []int{1, 2, 8} {
				runtime.GOMAXPROCS(procs)
				got, err := parReg.Solver.Solve(ctx, g, cfg) // Parallelism 0 → GOMAXPROCS
				if err != nil {
					t.Fatal(err)
				}
				if got.Rounds != want.Rounds {
					t.Fatalf("%s/%d GOMAXPROCS=%d: rounds %d != %d", fam.name, seed, procs, got.Rounds, want.Rounds)
				}
				for v := range want.Cover {
					if got.Cover[v] != want.Cover[v] {
						t.Fatalf("%s/%d GOMAXPROCS=%d: cover diverges at vertex %d", fam.name, seed, procs, v)
					}
				}
				for e := range want.Duals {
					if math.Float64bits(got.Duals[e]) != math.Float64bits(want.Duals[e]) {
						t.Fatalf("%s/%d GOMAXPROCS=%d: dual diverges at edge %d: %v != %v",
							fam.name, seed, procs, e, got.Duals[e], want.Duals[e])
					}
				}
				gw, ww := verify.CoverWeight(g, got.Cover), verify.CoverWeight(g, want.Cover)
				gb, wb := verify.DualValue(got.Duals), verify.DualValue(want.Duals)
				if math.Float64bits(gw) != math.Float64bits(ww) || math.Float64bits(gb) != math.Float64bits(wb) {
					t.Fatalf("%s/%d GOMAXPROCS=%d: weight/bound bits diverge", fam.name, seed, procs)
				}
			}
		}
	}
}

// TestPDFastAgainstExactOptimum shrinks each family into exact's domain
// (n ≤ 64 raw, so the kernel trivially reaches the exact solver) and checks
// pdfast's weight against 2× the true optimum — the end-to-end form of the
// guarantee, with no dual in between.
func TestPDFastAgainstExactOptimum(t *testing.T) {
	ctx := context.Background()
	for _, fam := range diffFamilies {
		for _, seed := range diffSeeds {
			g, err := cli.BuildGraph(fam.gen, 48, 4, fam.weights, seed)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := mwvc.Solve(ctx, g, mwvc.WithAlgorithm(mwvc.AlgoExact), mwvc.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			if !opt.Exact {
				t.Fatalf("%s/%d: exact solve not marked exact", fam.name, seed)
			}
			sol, err := mwvc.Solve(ctx, g, mwvc.WithAlgorithm(mwvc.AlgoPDFast), mwvc.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			// 2×OPT is certified through the dual (dual ≤ OPT by weak
			// duality); the verify tolerance absorbs the two float sums.
			if sol.Weight > 2*opt.Weight*(1+verify.Tolerance)+verify.Tolerance {
				t.Fatalf("%s/%d: pdfast weight %v exceeds 2×optimum %v", fam.name, seed, sol.Weight, 2*opt.Weight)
			}
		}
	}
}
