// Command mwvc-gen generates a weighted graph instance and writes it in the
// repository's text formats (readable back by cmd/mwvc -in and by the solve
// service's POST /v1/graphs).
//
//	mwvc-gen -gen gnp -n 100000 -d 64 -weights loguniform -o instance.txt
//	mwvc-gen -gen gnp -n 500000 -d 8 -stream -o million-edges.el
//
// Without -stream the instance is built in memory and written in the
// canonical "mwvc-graph 1" format. With -stream the generator's edge
// sequence flows straight to the output in the "mwvc-el 1" edge-list format
// — the graph is never materialized, so instance size is bounded by disk,
// not RAM. See docs/FORMATS.md for both formats.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/graph"
)

func main() {
	var (
		generator = flag.String("gen", "gnp", "generator: "+strings.Join(cli.Generators(), " | "))
		n         = flag.Int("n", 10000, "number of vertices")
		d         = flag.Float64("d", 32, "target average degree")
		weights   = flag.String("weights", "unit", "weight model: "+strings.Join(cli.WeightModels(), " | "))
		seed      = flag.Uint64("seed", 1, "random seed")
		out       = flag.String("o", "", "output file (default stdout)")
		stream    = flag.Bool("stream", false, "stream the edge list to the output without building the graph in memory\n(generators: "+strings.Join(cli.StreamableGenerators(), ", ")+"; format: mwvc-el)")
	)
	flag.Parse()

	// Validate (and for the buffered path, generate) before touching the
	// output: a parameter error must never truncate an existing -o file.
	var job *cli.StreamJob
	var g *graph.Graph
	var err error
	if *stream {
		job, err = cli.PrepareStream(*generator, *n, *d, *weights, *seed)
	} else {
		g, err = cli.BuildGraph(*generator, *n, *d, *weights, *seed)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *stream {
		m, err := job.WriteTo(w)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mwvc-gen: streamed n=%d m=%d avg_degree=%.1f (mwvc-el)\n",
			job.Vertices, m, 2*float64(m)/float64(max(job.Vertices, 1)))
		return
	}

	if err := graph.Write(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mwvc-gen: wrote n=%d m=%d avg_degree=%.1f\n",
		g.NumVertices(), g.NumEdges(), g.AverageDegree())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwvc-gen:", err)
	os.Exit(1)
}
