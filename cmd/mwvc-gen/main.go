// Command mwvc-gen generates a weighted graph instance and writes it in the
// repository's text format (readable back by cmd/mwvc -in).
//
//	mwvc-gen -gen gnp -n 100000 -d 64 -weights loguniform -o instance.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/graph"
)

func main() {
	var (
		generator = flag.String("gen", "gnp", "generator: "+strings.Join(cli.Generators(), " | "))
		n         = flag.Int("n", 10000, "number of vertices")
		d         = flag.Float64("d", 32, "target average degree")
		weights   = flag.String("weights", "unit", "weight model: "+strings.Join(cli.WeightModels(), " | "))
		seed      = flag.Uint64("seed", 1, "random seed")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	g, err := cli.BuildGraph(*generator, *n, *d, *weights, *seed)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.Write(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mwvc-gen: wrote n=%d m=%d avg_degree=%.1f\n",
		g.NumVertices(), g.NumEdges(), g.AverageDegree())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwvc-gen:", err)
	os.Exit(1)
}
