// Command mwvc-docs is the repository's documentation gate, run by
// `make docs-check` and the CI docs job. It enforces two invariants that
// plain `go vet` does not cover:
//
//  1. Markdown link integrity: every relative link in the repository's
//     *.md files must point at an existing file (anchors and external
//     URLs are not checked).
//  2. Doc-comment coverage: the documented packages (internal/graph,
//     internal/mpc, internal/reduce, internal/solver, internal/compress,
//     internal/serve, internal/fault) must
//     have a package comment and a doc comment on every exported top-level
//     identifier,
//     so their `go doc` output stays useful.
//
// It prints one line per finding and exits nonzero if there are any.
//
//	mwvc-docs [-root <repo root>]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// docPackages are the packages whose go doc output the docs job guards.
var docPackages = []string{
	"internal/graph",
	"internal/mpc",
	"internal/reduce",
	"internal/improve",
	"internal/pdfast",
	"internal/compress",
	"internal/solver",
	"internal/serve",
	"internal/fault",
	"internal/lint",
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	var findings []string
	report := func(format string, args ...any) {
		findings = append(findings, fmt.Sprintf(format, args...))
	}

	if err := checkMarkdownLinks(*root, report); err != nil {
		fmt.Fprintln(os.Stderr, "mwvc-docs:", err)
		os.Exit(1)
	}
	for _, pkg := range docPackages {
		if err := checkDocComments(filepath.Join(*root, pkg), pkg, report); err != nil {
			fmt.Fprintln(os.Stderr, "mwvc-docs:", err)
			os.Exit(1)
		}
	}

	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "mwvc-docs: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("mwvc-docs: ok")
}

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks verifies that every relative link target in every
// tracked *.md file exists on disk.
func checkMarkdownLinks(root string, report func(string, ...any)) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			// Skip hidden trees (.git) and vendored directories.
			if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "node_modules") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					rel, _ := filepath.Rel(root, path)
					report("%s:%d: broken link %q", rel, lineNo+1, m[1])
				}
			}
		}
		return nil
	})
}

// checkDocComments parses one package directory and reports the package
// itself and any exported top-level identifier lacking a doc comment.
func checkDocComments(dir, label string, report func(string, ...any)) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", dir, err)
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for fname, file := range pkg.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
			pos := func(n ast.Node) string {
				p := fset.Position(n.Pos())
				return fmt.Sprintf("%s:%d", filepath.ToSlash(filepath.Join(label, filepath.Base(fname))), p.Line)
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						report("%s: exported %s %s lacks a doc comment", pos(d), declKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
								report("%s: exported type %s lacks a doc comment", pos(s), s.Name.Name)
							}
						case *ast.ValueSpec:
							exported := ""
							for _, n := range s.Names {
								if n.IsExported() {
									exported = n.Name
									break
								}
							}
							// A doc comment on the grouped decl covers its specs.
							if exported != "" && d.Doc == nil && s.Doc == nil {
								report("%s: exported %s %s lacks a doc comment", pos(s), kindOf(d.Tok), exported)
							}
						}
					}
				}
			}
		}
		if !hasPkgDoc {
			report("%s: package %s lacks a package comment", label, pkg.Name)
		}
	}
	return nil
}

// receiverExported reports whether a method's receiver type is exported
// (functions without receivers count as exported contexts).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// declKind names a FuncDecl for findings.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// kindOf names a GenDecl token for findings.
func kindOf(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}
