package main

// Fast-tier cell of the perf snapshot (-json): the million-edge matrix
// instance solved with pdfast, the O(m) primal–dual sweep the serve layer
// degrades to under overload. The tier records wall clock, allocations and
// the certified ratio, and asserts the two contracts that make the fast
// tier trustworthy: the certificate is a real 2-approximation (ratio ≤ 2.0,
// absolute — pdfast saturates every covered vertex exactly, so unlike the
// (2+ε) MPC bound there is no ε slack to spend), and the parallel variant
// returns bit-for-bit the serial result. The latency claim — tens of
// milliseconds on a 1,047,265-edge graph, against a <100ms ceiling — is
// enforced by the -regress gate.

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	mwvc "repro"
)

// pdfastTierSpec pins the measured instance to the matrix recipe (2^16
// vertices at average degree 32 ≈ 1.05M edges, uniform weights in [1,100])
// and the latency ceiling the gate enforces.
var pdfastTierSpec = struct {
	name    string
	n       int
	d       float64
	ceiling time.Duration
}{"n64k_d32_pdfast", 1 << 16, 32, 100 * time.Millisecond}

// pdfastTier is the fast-tier cell of the snapshot.
type pdfastTier struct {
	Name  string `json:"name"`
	N     int    `json:"n"`
	Edges int    `json:"edges"`

	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`

	// Weight/Bound/CertifiedRatio come from one raw-graph solve (seed 1,
	// reduction off so the number measures the sweep, not the kernelizer).
	Weight         float64 `json:"weight"`
	Bound          float64 `json:"bound"`
	CertifiedRatio float64 `json:"certified_ratio"`
	// Rounds counts the synchronized bidding rounds before the serial tail.
	Rounds int `json:"rounds"`
	// ParallelIdentical records that pdfast-par reproduced the serial cover
	// bitmap and the Float64bits of weight and bound. Always true in a
	// written snapshot — divergence fails the measurement outright.
	ParallelIdentical bool `json:"parallel_identical"`
}

func measurePDFastTier() (*pdfastTier, error) {
	spec := pdfastTierSpec
	g := perfGraph(spec.n, spec.d)
	if g.NumEdges() < 1_000_000 {
		return nil, fmt.Errorf("pdfast tier: generated only %d edges, want >= 1M", g.NumEdges())
	}
	tier := &pdfastTier{Name: spec.name, N: g.NumVertices(), Edges: g.NumEdges()}
	ctx := context.Background()

	opts := func(a mwvc.Algorithm) []mwvc.Option {
		return []mwvc.Option{mwvc.WithAlgorithm(a), mwvc.WithSeed(1), mwvc.WithoutReduction()}
	}
	serial, err := mwvc.Solve(ctx, g, opts(mwvc.AlgoPDFast)...)
	if err != nil {
		return nil, fmt.Errorf("pdfast tier: %w", err)
	}
	tier.Weight = serial.Weight
	tier.Bound = serial.Bound
	tier.CertifiedRatio = serial.CertifiedRatio
	tier.Rounds = serial.Rounds

	// Determinism check: the parallel variant must reproduce the serial
	// solve bit for bit on the exact instance the tier publishes.
	par, err := mwvc.Solve(ctx, g, opts(mwvc.AlgoPDFastPar)...)
	if err != nil {
		return nil, fmt.Errorf("pdfast tier (parallel): %w", err)
	}
	for v := range serial.Cover {
		if par.Cover[v] != serial.Cover[v] {
			return nil, fmt.Errorf("pdfast tier: parallel cover diverges at vertex %d", v)
		}
	}
	if math.Float64bits(par.Weight) != math.Float64bits(serial.Weight) ||
		math.Float64bits(par.Bound) != math.Float64bits(serial.Bound) {
		return nil, fmt.Errorf("pdfast tier: parallel weight/bound diverge: %v/%v vs %v/%v",
			par.Weight, par.Bound, serial.Weight, serial.Bound)
	}
	tier.ParallelIdentical = true

	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mwvc.Solve(ctx, g, opts(mwvc.AlgoPDFast)...); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return nil, fmt.Errorf("pdfast tier: %w", benchErr)
	}
	if r.N == 0 || r.NsPerOp() == 0 {
		return nil, fmt.Errorf("pdfast tier: benchmark produced no measurement")
	}
	tier.NsPerOp = r.NsPerOp()
	tier.AllocsPerOp = r.AllocsPerOp()
	tier.BytesPerOp = r.AllocedBytesPerOp()
	return tier, nil
}

// checkPDFastTier enforces the tier's bounds: the 2-approximation is
// absolute (every snapshot, gate or no gate); the latency ceiling is the
// fast tier's reason to exist and is enforced when -regress is set.
func checkPDFastTier(t *pdfastTier, regress float64) error {
	if t.CertifiedRatio > 2.0 {
		return fmt.Errorf("pdfast tier: certified ratio %v above 2.0", t.CertifiedRatio)
	}
	if regress > 0 && t.NsPerOp > pdfastTierSpec.ceiling.Nanoseconds() {
		return fmt.Errorf("pdfast tier: %dms solve above the %v fast-tier ceiling on %d edges",
			t.NsPerOp/1e6, pdfastTierSpec.ceiling, t.Edges)
	}
	return nil
}
