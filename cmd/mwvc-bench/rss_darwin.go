//go:build darwin

package main

import "syscall"

// peakRSSBytes returns the process's peak resident set size in bytes (zero
// if unavailable). Darwin reports ru_maxrss in bytes, unlike Linux's KiB.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss
}
