package main

// Perf-snapshot mode (-json): measures the fixed MPC workload matrix with
// testing.Benchmark and writes a BENCH.json the repo tracks over time. Each
// run rolls the file's previous "current" section into "baseline" and
// reports the deltas, so the file always documents one before/after pair —
// the benchmark-regression harness the CI smoke job and `make bench-json`
// build on. With -regress set, a regression beyond the given factor exits
// nonzero.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// perfWorkload is one measured cell of the workload matrix.
type perfWorkload struct {
	Name      string  `json:"name"`
	N         int     `json:"n"`
	AvgDegree float64 `json:"avg_degree"`
	Edges     int     `json:"edges"`

	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`

	// Communication profile of one solve (deterministic for a fixed seed).
	Rounds        int     `json:"rounds"`
	TotalWords    int64   `json:"total_words"`
	TotalMessages int64   `json:"total_messages"`
	WordsPerRound float64 `json:"words_per_round"`
}

// perfSnapshot is one full measurement of the matrix plus the million-edge
// streaming tier (stream.go), the kernelization tier (kernel.go), the
// anytime-improvement tier (improve.go) and the primal–dual fast tier
// (pdfast.go).
type perfSnapshot struct {
	Generated    string         `json:"generated"`
	Go           string         `json:"go"`
	Workloads    []perfWorkload `json:"workloads"`
	StreamTier   *streamTier    `json:"stream_tier,omitempty"`
	KernelTier   *kernelTier    `json:"kernel_tier,omitempty"`
	ImproveTier  *improveTier   `json:"improve_tier,omitempty"`
	PDFastTier   *pdfastTier    `json:"pdfast_tier,omitempty"`
	CompressTier *compressTier  `json:"compress_tier,omitempty"`
}

// benchFile is the on-disk BENCH.json layout.
type benchFile struct {
	Schema   int           `json:"schema"`
	Note     string        `json:"note"`
	Current  perfSnapshot  `json:"current"`
	Baseline *perfSnapshot `json:"baseline,omitempty"`
}

// perfMatrix mirrors BenchmarkAlgorithmMPC's workload matrix (bench_test.go)
// so `go test -bench` and BENCH.json speak about the same solves.
var perfMatrix = []struct {
	name string
	n    int
	d    float64
}{
	{"n4k_d32", 4000, 32},
	{"n16k_d64", 16000, 64},
	{"n16k_d256", 16000, 256},
}

func perfGraph(n int, d float64) *graph.Graph {
	return gen.ApplyWeights(gen.GnpAvgDegree(1, n, d), 2, gen.UniformRange{Lo: 1, Hi: 100})
}

func measureWorkload(name string, n int, d float64) (perfWorkload, error) {
	g := perfGraph(n, d)
	w := perfWorkload{Name: name, N: n, AvgDegree: d, Edges: g.NumEdges()}

	// One instrumented solve for the communication profile.
	res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, 1))
	if err != nil {
		return w, fmt.Errorf("workload %s: %w", name, err)
	}
	w.Rounds = res.Rounds
	w.TotalWords = res.ClusterMetrics.TotalWords
	w.TotalMessages = res.ClusterMetrics.TotalMessages
	if res.Rounds > 0 {
		// Fixed precision: the raw quotient's trailing float digits made every
		// regeneration rewrite the line even when nothing changed; two decimals
		// keep the snapshot diff-stable without losing signal.
		w.WordsPerRound = roundTo(float64(w.TotalWords)/float64(res.Rounds), 2)
	}

	// testing.Benchmark for the timing/allocation profile (same seed
	// schedule as BenchmarkAlgorithmMPC). testing.Benchmark has no failure
	// channel — b.Fatal only aborts the loop — so capture the error and
	// check it afterwards: a zeroed result must never enter BENCH.json,
	// where it would disarm the -regress gate.
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, uint64(i)+1)); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return w, fmt.Errorf("workload %s: %w", name, benchErr)
	}
	if r.N == 0 || r.NsPerOp() == 0 {
		return w, fmt.Errorf("workload %s: benchmark produced no measurement", name)
	}
	w.NsPerOp = r.NsPerOp()
	w.AllocsPerOp = r.AllocsPerOp()
	w.BytesPerOp = r.AllocedBytesPerOp()
	return w, nil
}

// runPerfSnapshot executes -json mode. It returns an error for operational
// failures and reports (but does not fail on) regressions unless regress > 0.
func runPerfSnapshot(path string, regress float64) error {
	var prev *benchFile
	if data, err := os.ReadFile(path); err == nil {
		prev = &benchFile{}
		if err := json.Unmarshal(data, prev); err != nil {
			return fmt.Errorf("mwvc-bench: existing %s is not a perf snapshot: %w", path, err)
		}
	}

	cur := perfSnapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
	}
	// The streaming tier runs first so its recorded peak RSS reflects the
	// streaming pipeline, not the in-memory matrix workloads.
	fmt.Printf("measuring %s (n=%d, d=%g, streaming ingestion)...\n",
		streamTierSpec.name, streamTierSpec.n, streamTierSpec.d)
	tier, err := measureStreamTier()
	if err != nil {
		return err
	}
	cur.StreamTier = tier
	rss := "unavailable on this platform"
	if tier.MaxRSSBytes > 0 {
		rss = fmt.Sprintf("%d MB", tier.MaxRSSBytes/(1<<20))
	}
	fmt.Printf("  %d edges, %0.1f MB on disk; build from edge-list text: slice %dms/%d allocs vs stream %dms/%d allocs; "+
		"ingest %dms, solve %dms (%d rounds), peak RSS %s\n",
		tier.Edges, float64(tier.FileBytes)/(1<<20),
		tier.SliceBuild.NsPerOp/1e6, tier.SliceBuild.AllocsPerOp,
		tier.StreamBuild.NsPerOp/1e6, tier.StreamBuild.AllocsPerOp,
		tier.IngestNs/1e6, tier.SolveNs/1e6, tier.Rounds, rss)
	// The tier's bounds are absolute (RSS envelope, streaming allocs below
	// buffered allocs): enforce them on every snapshot, gate or no gate.
	if err := checkStreamTier(tier); err != nil {
		return err
	}

	fmt.Printf("measuring %s (n=%d, preferential-attachment tree, reduce+solve vs solve-alone)...\n",
		kernelTierSpec.name, kernelTierSpec.n)
	kt, err := measureKernelTier()
	if err != nil {
		return err
	}
	cur.KernelTier = kt
	fmt.Printf("  %d edges; solve-alone %dms (%d rounds) vs reduce+solve %dms (reduce %dms, kernel n=%d m=%d)\n",
		kt.Edges, kt.SolveAloneNs/1e6, kt.SolveAloneRounds,
		kt.ReducedSolveNs/1e6, kt.ReduceNs/1e6, kt.KernelVertices, kt.KernelEdges)
	// The reduction claim is absolute; the wall-clock win is gated when
	// -regress is set (a failed gate leaves the snapshot file untouched).
	if err := checkKernelTier(kt, regress); err != nil {
		return err
	}

	fmt.Printf("measuring %s (n=%d, d=%g, mpc vs mpc+%v improvement)...\n",
		improveTierSpec.name, improveTierSpec.n, improveTierSpec.d, improveTierSpec.budget)
	it, err := measureImproveTier()
	if err != nil {
		return err
	}
	cur.ImproveTier = it
	fmt.Printf("  %d edges; weight %.0f → %.0f (-%.2f%%) at bound %.0f; "+
		"first improvement after %.1fms, %d steps in %dms (converged=%v)\n",
		it.Edges, it.SolverWeight, it.ImprovedWeight, it.WeightReductionPct, it.Bound,
		float64(it.TimeToFirstNs)/1e6, it.Steps, it.ImproveNs/1e6, it.Converged)
	// Monotonicity is absolute; the strict-improvement claim is gated when
	// -regress is set.
	if err := checkImproveTier(it, regress); err != nil {
		return err
	}

	fmt.Printf("measuring %s (n=%d, d=%g, primal-dual fast tier)...\n",
		pdfastTierSpec.name, pdfastTierSpec.n, pdfastTierSpec.d)
	pt, err := measurePDFastTier()
	if err != nil {
		return err
	}
	cur.PDFastTier = pt
	fmt.Printf("  %d edges; %dms/op (%d allocs), weight %.0f at bound %.0f (ratio %.3f, %d rounds), parallel identical\n",
		pt.Edges, pt.NsPerOp/1e6, pt.AllocsPerOp, pt.Weight, pt.Bound, pt.CertifiedRatio, pt.Rounds)
	// The 2-approximation is absolute; the <100ms latency ceiling is gated
	// when -regress is set.
	if err := checkPDFastTier(pt, regress); err != nil {
		return err
	}

	fmt.Printf("measuring %s (workload matrix, native vs round-compressed rounds; timing on %s)...\n",
		"mpc_vs_compress", compressTimedShape)
	ct, err := measureCompressTier()
	if err != nil {
		return err
	}
	cur.CompressTier = ct
	for _, s := range ct.Shapes {
		fmt.Printf("  %-10s %d edges; rounds %d native → %d compressed (%.2f LOCAL rounds per MPC round)\n",
			s.Name, s.Edges, s.NativeRounds, s.CompressedRounds, s.LocalRoundsPerMPCRound)
	}
	fmt.Printf("  %s timing: native %dms/op vs compressed %dms/op (median paired delta %+dµs); ratio %.4f native vs %.4f compressed\n",
		ct.TimedShape, ct.NativeNsPerOp/1e6, ct.CompressedNsPerOp/1e6, ct.MedianDeltaNs/1e3, ct.NativeRatio, ct.CompressedRatio)
	// The round win and the certificate bound are absolute; the wall-clock
	// win on the 2M-edge shape is gated when -regress is set.
	if err := checkCompressTier(ct, regress); err != nil {
		return err
	}

	for _, m := range perfMatrix {
		fmt.Printf("measuring %s (n=%d, d=%g)...\n", m.name, m.n, m.d)
		w, err := measureWorkload(m.name, m.n, m.d)
		if err != nil {
			return err
		}
		cur.Workloads = append(cur.Workloads, w)
	}

	out := benchFile{
		Schema: 1,
		Note: "MPC simulator perf snapshot; regenerate with `make bench-json`. " +
			"`baseline` is the previous run's `current`, so the file always records one before/after pair.",
		Current: cur,
	}
	if prev != nil && len(prev.Current.Workloads) > 0 {
		out.Baseline = &prev.Current
	}

	// Comparison report.
	regressed := false
	if out.Baseline != nil {
		base := map[string]perfWorkload{}
		for _, w := range out.Baseline.Workloads {
			base[w.Name] = w
		}
		fmt.Printf("\n%-12s %14s %14s %10s %14s %14s %10s %12s\n",
			"workload", "ns/op(old)", "ns/op(new)", "Δns", "allocs(old)", "allocs(new)", "Δallocs", "rounds")
		for _, w := range cur.Workloads {
			b, ok := base[w.Name]
			if !ok {
				continue
			}
			dns := ratioDelta(w.NsPerOp, b.NsPerOp)
			dal := ratioDelta(w.AllocsPerOp, b.AllocsPerOp)
			fmt.Printf("%-12s %14d %14d %9.1f%% %14d %14d %9.1f%% %5d → %-4d\n",
				w.Name, b.NsPerOp, w.NsPerOp, dns, b.AllocsPerOp, w.AllocsPerOp, dal, b.Rounds, w.Rounds)
			// Gate each metric independently: a zero-alloc baseline must
			// still gate ns/op, and allocs moving off zero is a regression.
			if regress > 0 {
				if b.NsPerOp > 0 && float64(w.NsPerOp) > regress*float64(b.NsPerOp) {
					regressed = true
				}
				if b.AllocsPerOp > 0 && float64(w.AllocsPerOp) > regress*float64(b.AllocsPerOp) {
					regressed = true
				}
				if b.AllocsPerOp == 0 && w.AllocsPerOp > 0 {
					regressed = true
				}
				// Round counts are deterministic for the fixed workload seed,
				// so any increase is a real regression, not noise — gate it
				// absolutely rather than with the timing factor.
				if b.Rounds > 0 && w.Rounds > b.Rounds {
					fmt.Printf("%-12s rounds regressed: %d → %d\n", w.Name, b.Rounds, w.Rounds)
					regressed = true
				}
			}
		}
	}

	// A failed gate must not roll the baseline: leave the file untouched so
	// the good numbers survive and a rerun fails against them again.
	if regressed {
		return fmt.Errorf("mwvc-bench: perf regression beyond %.2fx detected; %s left unchanged", regress, path)
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

func ratioDelta(now, then int64) float64 {
	if then == 0 {
		return 0
	}
	return 100 * (float64(now) - float64(then)) / float64(then)
}

// roundTo rounds x to p decimal places — the snapshot's fixed-precision rule
// for derived float metrics, keeping regenerated files diff-stable.
func roundTo(x float64, p int) float64 {
	pow := math.Pow(10, float64(p))
	return math.Round(x*pow) / pow
}
