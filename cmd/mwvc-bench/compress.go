package main

// Round-compression cell of the perf snapshot (-json): the native MPC
// solver against the round-compressed variant (internal/compress) on the
// full workload matrix. The tier's reason to exist is the round bill: both
// solvers run the same sampled phase logic, but the compressed variant
// spends 3 accounted cluster rounds per phase instead of the native 5, so
// its round count must be strictly lower on every matrix shape (absolute —
// a fixed seed makes round counts deterministic). The wall-clock win on the
// 2M-edge shape and the unchanged certified-ratio guarantee are enforced by
// the -regress gate; dual feasibility on the original graph is absolute.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/verify"
)

// compressTimedShape names the matrix shape whose wall clock the gate
// compares (the 2M-edge n16k_d256 cell, where phases dominate the solve).
const compressTimedShape = "n16k_d256"

// compressShape is one matrix shape's round accounting.
type compressShape struct {
	Name             string `json:"name"`
	Edges            int    `json:"edges"`
	NativeRounds     int    `json:"native_rounds"`
	CompressedRounds int    `json:"compressed_rounds"`
	// LocalRoundsPerMPCRound is the compression currency: simulated LOCAL
	// rounds carried per accounted cluster round across the compressed
	// rounds (1 phase at k=13 → 13/3 ≈ 4.33 vs native 13/5 = 2.6).
	LocalRoundsPerMPCRound float64 `json:"local_rounds_per_mpc_round"`
}

// compressTier is the round-compression cell of the snapshot.
type compressTier struct {
	Name   string          `json:"name"`
	Shapes []compressShape `json:"shapes"`

	// Timing and certificate comparison on the compressTimedShape instance.
	// The ns figures are per-solver minimums over compressTimingReps
	// alternating solve pairs; the gate compares MedianDeltaNs — the median
	// of the per-pair (compressed − native) differences. The round win buys
	// only a few percent of wall clock in the simulator (rounds are cheap
	// here; in real MPC they are network barriers), so an unpaired
	// comparison of two noisy timings would gate on scheduler drift.
	// Pairing each compressed solve with the native solve that ran under
	// the same instantaneous load cancels that drift; alternating which
	// solver runs first within the pair and collecting the heap before each
	// timed solve cancel the remaining bias (the second solve of a pair
	// otherwise pays the first one's garbage, and the tiers measured before
	// this one leave the pacer's heap target wherever they drove it).
	TimedShape        string `json:"timed_shape"`
	NativeNsPerOp     int64  `json:"native_ns_per_op"`
	CompressedNsPerOp int64  `json:"compressed_ns_per_op"`
	MedianDeltaNs     int64  `json:"median_delta_ns"`

	NativeRatio     float64 `json:"native_ratio"`
	CompressedRatio float64 `json:"compressed_ratio"`
}

// compressTimingReps is the alternating solve-pair count behind the tier's
// paired-median timing. Per-pair deltas on a ~200ms solve swing by tens of
// milliseconds under scheduler and pacer noise, so the median needs a
// decently sized sample to resolve the few-percent round-structure win.
const compressTimingReps = 15

// compressRatio certifies a compressed result against the original graph;
// the rescaled duals must verify feasible — that check is what makes the
// tier's ratio numbers trustworthy.
func compressRatio(g *graph.Graph, cover []bool, scaled []float64) (float64, error) {
	if err := verify.DualFeasible(g, scaled); err != nil {
		return 0, fmt.Errorf("rescaled duals infeasible on the original graph: %w", err)
	}
	cert, err := verify.NewCertificate(g, cover, scaled)
	if err != nil {
		return 0, err
	}
	return cert.Ratio(), nil
}

func measureCompressTier() (*compressTier, error) {
	tier := &compressTier{Name: "mpc_vs_compress", TimedShape: compressTimedShape}
	ctx := context.Background()
	for _, m := range perfMatrix {
		g := perfGraph(m.n, m.d)
		nres, err := core.Run(ctx, g, core.ParamsPractical(0.1, 1))
		if err != nil {
			return nil, fmt.Errorf("compress tier %s (native): %w", m.name, err)
		}
		cres, err := compress.Run(ctx, g, compress.DefaultParams(0.1, 1))
		if err != nil {
			return nil, fmt.Errorf("compress tier %s (compressed): %w", m.name, err)
		}
		if cres.Fallback {
			return nil, fmt.Errorf("compress tier %s: fell back to native rounds; the tier would measure nothing", m.name)
		}
		shape := compressShape{
			Name:             m.name,
			Edges:            g.NumEdges(),
			NativeRounds:     nres.Rounds,
			CompressedRounds: cres.Rounds,
		}
		if cres.Phases > 0 {
			local := 0
			for _, k := range cres.LocalRounds {
				local += k
			}
			shape.LocalRoundsPerMPCRound = roundTo(float64(local)/float64(3*cres.Phases), 2)
		}
		tier.Shapes = append(tier.Shapes, shape)

		if m.name != compressTimedShape {
			continue
		}
		nscaled, _ := nres.FeasibleDual(g)
		if tier.NativeRatio, err = compressRatio(g, nres.Cover, nscaled); err != nil {
			return nil, fmt.Errorf("compress tier %s (native): %w", m.name, err)
		}
		cscaled, _ := cres.FeasibleDual(g)
		if tier.CompressedRatio, err = compressRatio(g, cres.Cover, cscaled); err != nil {
			return nil, fmt.Errorf("compress tier %s (compressed): %w", m.name, err)
		}

		// Alternating solve pairs: each rep times a native solve and a
		// compressed solve back to back, so both see the same instantaneous
		// machine load and their difference isolates the solvers. Odd reps
		// flip which solver runs first, and each timed solve starts from a
		// freshly collected heap, so neither solver systematically pays the
		// other's garbage or inherits the pacer state the earlier snapshot
		// tiers left behind.
		timedNative := func(seed uint64) (int64, error) {
			runtime.GC()
			t0 := time.Now()
			if _, err := core.Run(ctx, g, core.ParamsPractical(0.1, seed)); err != nil {
				return 0, fmt.Errorf("compress tier (native timing): %w", err)
			}
			return time.Since(t0).Nanoseconds(), nil
		}
		timedCompressed := func(seed uint64) (int64, error) {
			runtime.GC()
			t0 := time.Now()
			if _, err := compress.Run(ctx, g, compress.DefaultParams(0.1, seed)); err != nil {
				return 0, fmt.Errorf("compress tier (compressed timing): %w", err)
			}
			return time.Since(t0).Nanoseconds(), nil
		}
		deltas := make([]int64, 0, compressTimingReps)
		for i := 0; i < compressTimingReps; i++ {
			seed := uint64(i) + 1
			var nativeNs, compressedNs int64
			if i%2 == 0 {
				if nativeNs, err = timedNative(seed); err != nil {
					return nil, err
				}
				if compressedNs, err = timedCompressed(seed); err != nil {
					return nil, err
				}
			} else {
				if compressedNs, err = timedCompressed(seed); err != nil {
					return nil, err
				}
				if nativeNs, err = timedNative(seed); err != nil {
					return nil, err
				}
			}
			tier.NativeNsPerOp = minNonzero(tier.NativeNsPerOp, nativeNs)
			tier.CompressedNsPerOp = minNonzero(tier.CompressedNsPerOp, compressedNs)
			deltas = append(deltas, compressedNs-nativeNs)
		}
		sort.Slice(deltas, func(a, b int) bool { return deltas[a] < deltas[b] })
		tier.MedianDeltaNs = deltas[len(deltas)/2]
	}
	return tier, nil
}

// minNonzero treats 0 as "no measurement yet".
func minNonzero(cur, v int64) int64 {
	if cur == 0 || v < cur {
		return v
	}
	return cur
}

// checkCompressTier enforces the tier's bounds. The round win is absolute —
// round counts are deterministic for a fixed seed, so "fewer rounds" either
// holds or the compression is broken. The wall-clock win on the timed shape
// and the unchanged-certificate bound ride the -regress gate, like every
// other timing claim in the snapshot.
func checkCompressTier(t *compressTier, regress float64) error {
	for _, s := range t.Shapes {
		if s.CompressedRounds >= s.NativeRounds {
			return fmt.Errorf("compress tier %s: compressed rounds %d not strictly below native %d",
				s.Name, s.CompressedRounds, s.NativeRounds)
		}
		if s.LocalRoundsPerMPCRound <= 1 {
			return fmt.Errorf("compress tier %s: %.2f simulated LOCAL rounds per MPC round, want > 1",
				s.Name, s.LocalRoundsPerMPCRound)
		}
	}
	// The certificate must not degrade: same phase logic, same k, so the
	// compressed ratio stays within 10% of native (measured headroom ~4%).
	if t.CompressedRatio > 1.10*t.NativeRatio {
		return fmt.Errorf("compress tier: compressed ratio %.4f above 1.10× native %.4f",
			t.CompressedRatio, t.NativeRatio)
	}
	if regress > 0 && t.MedianDeltaNs >= 0 {
		return fmt.Errorf("compress tier: compressed solve not below native on %s (median paired delta %+dµs, min %dms vs %dms)",
			t.TimedShape, t.MedianDeltaNs/1e3, t.CompressedNsPerOp/1e6, t.NativeNsPerOp/1e6)
	}
	return nil
}
