//go:build !linux && !darwin

package main

// peakRSSBytes is unavailable on this platform. The sentinel 0 makes the
// stream tier omit max_rss_bytes from BENCH.json and skip the RSS gate
// outright (checkStreamTier), rather than recording a fake 0-byte peak that
// later snapshots would compare against as if it were a measurement.
func peakRSSBytes() int64 { return 0 }
