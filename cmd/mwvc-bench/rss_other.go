//go:build !linux && !darwin

package main

// peakRSSBytes is unavailable on this platform; the stream tier's RSS gate
// is skipped (checkStreamTier treats 0 as within bounds).
func peakRSSBytes() int64 { return 0 }
