package main

// Anytime-improvement tier of the perf snapshot (-json): a million-edge
// Erdős–Rényi instance with uniform weights solved twice with the paper's
// MPC algorithm — once plain, once with a 200ms anytime local-search budget
// (mwvc.WithImprovement). The tier records the weight reduction and the
// time to first accepted improvement; the absolute check requires the
// improved cover to never be heavier, and the -regress gate enforces the
// feature claim: strictly lower weight at a bitwise-identical dual bound
// (the certified ratio tightens).

import (
	"context"
	"fmt"
	"math"
	"time"

	mwvc "repro"
	"repro/internal/gen"
)

// improveTierSpec fixes the measured instance (2^16 vertices at average
// degree 32 ≈ 1.05M edges, weights uniform in [1,100] — enough weight skew
// that two-improvement swaps matter, not just redundancy removal) and the
// anytime budget.
var improveTierSpec = struct {
	name   string
	n      int
	d      float64
	seed   uint64
	wseed  uint64
	budget time.Duration
}{"n64k_d32_improve", 1 << 16, 32, 1, 2, 200 * time.Millisecond}

// improveTier is the anytime-improvement cell of the snapshot.
type improveTier struct {
	Name     string `json:"name"`
	N        int    `json:"n"`
	Edges    int    `json:"edges"`
	BudgetMS int64  `json:"budget_ms"`

	// SolverWeight is the plain mpc cover weight; ImprovedWeight the weight
	// after the budgeted improvement stage, on the same instance and seed.
	// Bound is the certified dual lower bound, bitwise identical for both
	// runs (the stage never touches the certificate).
	SolverWeight   float64 `json:"solver_weight"`
	ImprovedWeight float64 `json:"improved_weight"`
	Bound          float64 `json:"bound"`
	// WeightReductionPct is 100·(SolverWeight−ImprovedWeight)/SolverWeight.
	WeightReductionPct float64 `json:"weight_reduction_pct"`

	// TimeToFirstNs is the wall clock from improvement start to the first
	// accepted move; ImproveNs the whole stage; Steps the accepted moves.
	TimeToFirstNs int64 `json:"time_to_first_ns"`
	ImproveNs     int64 `json:"improve_ns"`
	Steps         int   `json:"steps"`
	Converged     bool  `json:"converged"`
}

func measureImproveTier() (*improveTier, error) {
	spec := improveTierSpec
	g := gen.ApplyWeights(gen.GnpAvgDegree(spec.seed, spec.n, spec.d), spec.wseed,
		gen.UniformRange{Lo: 1, Hi: 100})
	if g.NumEdges() < 1_000_000 {
		return nil, fmt.Errorf("improve tier: generated only %d edges, want >= 1M", g.NumEdges())
	}
	tier := &improveTier{Name: spec.name, N: g.NumVertices(), Edges: g.NumEdges(),
		BudgetMS: spec.budget.Milliseconds()}
	ctx := context.Background()

	plain, err := mwvc.Solve(ctx, g, mwvc.WithSeed(spec.seed))
	if err != nil {
		return nil, fmt.Errorf("improve tier (plain solve): %w", err)
	}
	improved, err := mwvc.Solve(ctx, g, mwvc.WithSeed(spec.seed), mwvc.WithImprovement(spec.budget))
	if err != nil {
		return nil, fmt.Errorf("improve tier (improved solve): %w", err)
	}
	if improved.Improvement == nil {
		return nil, fmt.Errorf("improve tier: budgeted solve reported no improvement stats")
	}
	tier.SolverWeight = plain.Weight
	tier.ImprovedWeight = improved.Weight
	tier.Bound = plain.Bound
	if plain.Weight > 0 {
		tier.WeightReductionPct = 100 * (plain.Weight - improved.Weight) / plain.Weight
	}
	imp := improved.Improvement
	tier.TimeToFirstNs = imp.TimeToFirstNS
	tier.ImproveNs = imp.ImproveNS
	tier.Steps = imp.Steps
	tier.Converged = imp.Converged

	// The stage must not have touched the certificate: both solves carry the
	// same seed, so the dual bound is bitwise reproducible.
	if math.Float64bits(improved.Bound) != math.Float64bits(plain.Bound) {
		return nil, fmt.Errorf("improve tier: dual bound moved: %v vs %v", improved.Bound, plain.Bound)
	}
	return tier, nil
}

// checkImproveTier enforces the tier's bounds. Monotonicity (improved
// weight never above the solver weight) is absolute and holds on every
// snapshot; the feature claim — the 200ms budget buys a strictly lower
// weight on this million-edge instance — is enforced by the -regress gate.
func checkImproveTier(t *improveTier, regress float64) error {
	if t.ImprovedWeight > t.SolverWeight {
		return fmt.Errorf("improve tier: improved weight %v above solver weight %v",
			t.ImprovedWeight, t.SolverWeight)
	}
	if regress > 0 && t.ImprovedWeight >= t.SolverWeight {
		return fmt.Errorf("improve tier: %dms budget bought no strict improvement (weight %v)",
			t.BudgetMS, t.SolverWeight)
	}
	return nil
}
