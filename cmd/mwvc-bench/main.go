// Command mwvc-bench regenerates the evaluation tables in EXPERIMENTS.md.
// Each experiment corresponds to one theorem or lemma of the paper (the
// paper has no empirical tables of its own; DESIGN.md maps the claims).
//
//	mwvc-bench                 # run everything, full size
//	mwvc-bench -quick          # reduced sizes (seconds instead of minutes)
//	mwvc-bench -run E1,E4      # a subset
//	mwvc-bench -list           # what exists
//	mwvc-bench -csv out/       # additionally dump each table as CSV
//	mwvc-bench -json BENCH.json        # write/roll the perf snapshot
//	mwvc-bench -json BENCH.json -regress 1.3   # fail on >1.3x regressions
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		runIDs   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		quick    = flag.Bool("quick", false, "reduced instance sizes")
		seed     = flag.Uint64("seed", 1, "random seed for the whole suite")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonPath = flag.String("json", "", "write a perf snapshot (ns/op, allocs/op, words per round) to this file and exit")
		regress  = flag.Float64("regress", 0, "with -json: exit nonzero if ns/op or allocs/op regress beyond this factor vs the snapshot's baseline (0 = report only)")
	)
	flag.Parse()

	if *jsonPath != "" {
		if err := runPerfSnapshot(*jsonPath, *regress); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var selected []experiments.Experiment
	if *runIDs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "mwvc-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("# MWVC reproduction suite — %d experiment(s), %s mode, seed %d\n\n", len(selected), mode, *seed)
	for _, e := range selected {
		start := time.Now()
		arts, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mwvc-bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("## %s — %s\n\nClaim (%s). Completed in %v.\n\n",
			e.ID, e.Title, e.Claim, time.Since(start).Round(time.Millisecond))
		for i, a := range arts {
			if err := a.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mwvc-bench:", err)
				os.Exit(1)
			}
			if tb, ok := a.(*stats.Table); ok && *csvDir != "" {
				if err := writeCSV(*csvDir, fmt.Sprintf("%s_%d.csv", e.ID, i), tb); err != nil {
					fmt.Fprintln(os.Stderr, "mwvc-bench:", err)
					os.Exit(1)
				}
			}
		}
	}
}

func writeCSV(dir, name string, tb *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.RenderCSV(f)
}
