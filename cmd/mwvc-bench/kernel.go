package main

// Kernelization tier of the perf snapshot (-json): a sparse, pendant-heavy
// million-edge instance (a preferential-attachment tree — the fringe shape
// of real-world sparse graphs) solved twice with the paper's MPC algorithm:
// once on the raw graph (mwvc.WithoutReduction) and once through the full
// Reduce→Solve→Lift pipeline. The two wall-clock times are the tier's
// before/after pair, and the -regress gate enforces the feature claim:
// reduce+solve end-to-end must beat solve-alone on this tier.

import (
	"context"
	"fmt"
	"time"

	mwvc "repro"
	"repro/internal/gen"
)

// kernelTierSpec fixes the measured instance: a preferential-attachment
// tree on 2^20 vertices (n-1 ≈ 1.05M edges, unit weights), which the
// pendant rule collapses completely.
var kernelTierSpec = struct {
	name string
	n    int
	k    int
	seed uint64
}{"n1m_pa_kernel", 1 << 20, 1, 1}

// kernelTier is the kernelization cell of the snapshot.
type kernelTier struct {
	Name  string `json:"name"`
	N     int    `json:"n"`
	Edges int    `json:"edges"`

	// Kernel size and per-stage cost of the reduced solve.
	KernelVertices int   `json:"kernel_vertices"`
	KernelEdges    int   `json:"kernel_edges"`
	ReduceNs       int64 `json:"reduce_ns"`

	// SolveAloneNs is one raw mwvc.Solve (WithoutReduction) wall clock;
	// ReducedSolveNs the full reduce+solve+lift+verify pipeline on the same
	// instance and seed. The -regress gate requires the latter to win.
	SolveAloneNs     int64 `json:"solve_alone_ns"`
	ReducedSolveNs   int64 `json:"reduced_solve_ns"`
	SolveAloneRounds int   `json:"solve_alone_rounds"`
}

func measureKernelTier() (*kernelTier, error) {
	spec := kernelTierSpec
	g := gen.PreferentialAttachment(spec.seed, spec.n, spec.k)
	if g.NumEdges() < 1_000_000 {
		return nil, fmt.Errorf("kernel tier: generated only %d edges, want >= 1M", g.NumEdges())
	}
	tier := &kernelTier{Name: spec.name, N: g.NumVertices(), Edges: g.NumEdges()}
	ctx := context.Background()

	t0 := time.Now()
	solo, err := mwvc.Solve(ctx, g, mwvc.WithSeed(spec.seed), mwvc.WithoutReduction())
	if err != nil {
		return nil, fmt.Errorf("kernel tier (solve alone): %w", err)
	}
	tier.SolveAloneNs = time.Since(t0).Nanoseconds()
	tier.SolveAloneRounds = solo.Rounds

	t1 := time.Now()
	red, err := mwvc.Solve(ctx, g, mwvc.WithSeed(spec.seed))
	if err != nil {
		return nil, fmt.Errorf("kernel tier (reduced solve): %w", err)
	}
	tier.ReducedSolveNs = time.Since(t1).Nanoseconds()
	if red.Reduction == nil {
		return nil, fmt.Errorf("kernel tier: reduced solve reported no kernel stats")
	}
	tier.KernelVertices = red.Reduction.KernelVertices
	tier.KernelEdges = red.Reduction.KernelEdges
	tier.ReduceNs = red.Reduction.ReduceNS

	// Both covers are verified by the facade; the reduced one must also
	// never be heavier (on this tier it is exact).
	if red.Weight > solo.Weight+1e-9 {
		return nil, fmt.Errorf("kernel tier: reduced cover weight %v above solve-alone %v", red.Weight, solo.Weight)
	}
	return tier, nil
}

// checkKernelTier enforces the tier's bounds. The reduction claim itself
// (the rules must shrink this pendant-heavy instance) is absolute and holds
// on every snapshot; the wall-clock claim (reduce+solve beats solve-alone)
// is enforced by the -regress gate, like the matrix's relative gates.
func checkKernelTier(t *kernelTier, regress float64) error {
	if t.KernelEdges >= t.Edges || t.KernelVertices >= t.N {
		return fmt.Errorf("kernel tier: reduction did not shrink the instance (n %d→%d, m %d→%d)",
			t.N, t.KernelVertices, t.Edges, t.KernelEdges)
	}
	if regress > 0 && t.ReducedSolveNs >= t.SolveAloneNs {
		return fmt.Errorf("kernel tier: reduce+solve %dms not faster than solve-alone %dms",
			t.ReducedSolveNs/1e6, t.SolveAloneNs/1e6)
	}
	return nil
}
