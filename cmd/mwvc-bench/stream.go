package main

// Million-edge streaming tier of the perf snapshot (-json): generates a
// ≥1M-edge instance straight to disk with `mwvc-gen -stream`'s writer,
// ingests it through both graph-build paths — the buffered edge-list
// Builder (graph.Read) and the two-pass streaming CSRBuilder
// (graph.ReadStream) — and solves it with the paper's MPC algorithm. The
// slice-vs-stream build numbers are the before/after pair for the
// graph-build path; peak RSS documents that the whole pipeline fits the
// paper's "near-linear memory" regime (well under 2 GB).

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/graph"
)

// streamTierSpec fixes the measured instance: n=65536, d=32 ⇒ ~1.05M edges
// (deterministic for the fixed seed; measureStreamTier asserts ≥1M).
var streamTierSpec = struct {
	name    string
	n       int
	d       float64
	weights string
	seed    uint64
}{"n64k_d32_stream", 65536, 32, "uniform", 1}

// buildPathStats is one graph-build measurement (parse + construct from the
// same on-disk edge list).
type buildPathStats struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// streamTier is the million-edge streaming-ingestion cell of the snapshot.
type streamTier struct {
	Name      string  `json:"name"`
	N         int     `json:"n"`
	AvgDegree float64 `json:"avg_degree"`
	Edges     int     `json:"edges"`
	FileBytes int64   `json:"file_bytes"`

	// SliceBuild reads the file through the one-pass buffered Builder;
	// StreamBuild through the two-pass CSRBuilder. Same bytes in, same
	// graph out — the delta is the representation's build cost.
	SliceBuild  buildPathStats `json:"slice_build"`
	StreamBuild buildPathStats `json:"stream_build"`

	IngestNs int64 `json:"ingest_ns"` // one streaming ingest, wall clock
	SolveNs  int64 `json:"solve_ns"`  // one mpc solve, wall clock
	Rounds   int   `json:"rounds"`
	// MaxRSSBytes is the process's peak RSS captured immediately after the
	// streaming pipeline (generate → stream-build → ingest → solve) and
	// before the buffered slice-build benchmark; the tier runs first in the
	// snapshot, so the high-water mark belongs to the streaming path, not
	// to the in-memory matrix workloads. On platforms where peak RSS cannot
	// be read it is 0 and omitted from the snapshot — never recorded as a
	// real 0-byte measurement — and the RSS gate is skipped.
	MaxRSSBytes int64 `json:"max_rss_bytes,omitempty"`
}

// maxStreamTierRSS is the memory envelope the tier must stay inside.
const maxStreamTierRSS = 2 << 30

func measureStreamTier() (*streamTier, error) {
	spec := streamTierSpec
	f, err := os.CreateTemp("", "mwvc-stream-*.el")
	if err != nil {
		return nil, err
	}
	defer os.Remove(f.Name())
	nv, m, err := cli.StreamInstance(f, "gnp", spec.n, spec.d, spec.weights, spec.seed)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("stream tier: generating: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if m < 1_000_000 {
		return nil, fmt.Errorf("stream tier: generated only %d edges, want >= 1M", m)
	}
	info, err := os.Stat(f.Name())
	if err != nil {
		return nil, err
	}
	tier := &streamTier{Name: spec.name, N: nv, AvgDegree: spec.d, Edges: int(m), FileBytes: info.Size()}

	bench := func(build func() (*graph.Graph, error)) (buildPathStats, error) {
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := build(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return buildPathStats{}, benchErr
		}
		if r.N == 0 || r.NsPerOp() == 0 {
			return buildPathStats{}, fmt.Errorf("stream tier: benchmark produced no measurement")
		}
		return buildPathStats{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}, nil
	}

	if tier.StreamBuild, err = bench(func() (*graph.Graph, error) {
		return graph.OpenFile(f.Name())
	}); err != nil {
		return nil, fmt.Errorf("stream tier (stream build): %w", err)
	}

	t0 := time.Now()
	g, err := graph.OpenFile(f.Name())
	if err != nil {
		return nil, err
	}
	tier.IngestNs = time.Since(t0).Nanoseconds()
	t1 := time.Now()
	res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, spec.seed))
	if err != nil {
		return nil, fmt.Errorf("stream tier: solving: %w", err)
	}
	tier.SolveNs = time.Since(t1).Nanoseconds()
	tier.Rounds = res.Rounds
	// Capture the high-water mark before the buffered build runs: from here
	// on the process may legitimately hold the full edge-list buffer.
	tier.MaxRSSBytes = peakRSSBytes()

	if tier.SliceBuild, err = bench(func() (*graph.Graph, error) {
		in, err := os.Open(f.Name())
		if err != nil {
			return nil, err
		}
		defer in.Close()
		return graph.Read(in)
	}); err != nil {
		return nil, fmt.Errorf("stream tier (slice build): %w", err)
	}
	return tier, nil
}

// checkStreamTier enforces the tier's standing acceptance bounds; unlike the
// matrix's relative -regress gate these are absolute, because they encode
// the scale claim itself (a million-edge instance must stream-ingest and
// solve inside 2 GB, and the streaming build must not allocate more than
// the buffered one).
func checkStreamTier(t *streamTier) error {
	// MaxRSSBytes 0 means the platform cannot report peak RSS (rss_other.go);
	// the gate is explicitly skipped rather than trivially passed against a
	// fake measurement.
	if t.MaxRSSBytes > 0 && t.MaxRSSBytes > maxStreamTierRSS {
		return fmt.Errorf("stream tier: peak RSS %d bytes exceeds %d", t.MaxRSSBytes, int64(maxStreamTierRSS))
	}
	if t.StreamBuild.AllocsPerOp >= t.SliceBuild.AllocsPerOp {
		return fmt.Errorf("stream tier: streaming build allocs/op %d not below slice build %d",
			t.StreamBuild.AllocsPerOp, t.SliceBuild.AllocsPerOp)
	}
	return nil
}
