// Command mwvc solves a minimum-weight vertex cover instance with any of
// the repository's algorithms and prints the cover weight, the certified
// approximation ratio, and the round/phase accounting.
//
// Usage examples:
//
//	mwvc -gen gnp -n 10000 -d 64 -weights uniform -algo mpc
//	mwvc -in graph.txt -algo bye
//	mwvc -gen powerlaw -n 2000 -d 16 -algo mpc -compare
//	mwvc -gen gnp -n 20000 -d 256 -algo mpc -trace
//	mwvc -gen gnp -n 50000 -d 64 -algo mpc -timeout 2s
//
// The -algo list and its help text derive from the solver registry, so the
// flag accepts exactly what the library accepts.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	mwvc "repro"
	"repro/internal/cli"
	"repro/internal/graph"
)

func main() {
	var (
		algo      = flag.String("algo", string(mwvc.AlgoMPC), "algorithm to run; one of:\n"+mwvc.AlgorithmHelp()+"\n")
		eps       = flag.Float64("eps", 0.1, "accuracy parameter ε (ratio 2+O(ε))")
		seed      = flag.Uint64("seed", 1, "random seed (same seed ⇒ same run)")
		inFile    = flag.String("in", "", "read the graph from this file instead of generating one")
		generator = flag.String("gen", "gnp", "generator: "+strings.Join(cli.Generators(), " | "))
		n         = flag.Int("n", 10000, "number of vertices (generated instances)")
		d         = flag.Float64("d", 32, "target average degree (generated instances)")
		weights   = flag.String("weights", "uniform", "weight model: "+strings.Join(cli.WeightModels(), " | "))
		paper     = flag.Bool("paper-constants", false, "use the paper's literal asymptotic constants for the MPC algorithm")
		reduce    = flag.Bool("reduce", true, "kernelize the instance with the weighted reduction rules before solving; -reduce=false solves the raw graph")
		improve   = flag.Duration("improve", 0, "run the anytime local-search improvement stage with this wall-clock budget after the solve (0 = off)")
		compare   = flag.Bool("compare", false, "also run the baselines and print a comparison")
		trace     = flag.Bool("trace", false, "stream per-phase and per-round solve events to stderr")
		timeout   = flag.Duration("timeout", 0, "abort the solve after this long (0 = no deadline)")
	)
	flag.Parse()

	// `mwvc -algo help` prints the registry table (name, tier, summary) and
	// exits without solving — the scriptable form of the flag help text.
	if *algo == "help" {
		fmt.Println(mwvc.AlgorithmHelp())
		return
	}

	g, err := loadGraph(*inFile, *generator, *n, *d, *weights, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: n=%d m=%d avg_degree=%.1f total_weight=%.1f\n",
		g.NumVertices(), g.NumEdges(), g.AverageDegree(), g.TotalWeight())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// runOne solves with one algorithm and prints the result line (plus, for
	// the primary run, the kernelization line — the kernel is a function of
	// the graph alone, so printing it per comparison algorithm would only
	// repeat it). The
	// returned error is already user-facing: a deadline surfaces as the clean
	// "deadline exceeded after N rounds" form (rounds counted live from the
	// observer stream, since the solve result is lost on abort), never as the
	// raw wrapped context.DeadlineExceeded.
	runOne := func(a mwvc.Algorithm, extra []mwvc.Option, traced, primary bool) (*mwvc.Solution, error) {
		rounds := 0
		counter := mwvc.ObserverFunc(func(e mwvc.Event) {
			if e.Kind == mwvc.KindRound {
				rounds = e.Round
			}
		})
		obs := mwvc.Observer(counter)
		if traced {
			obs = mwvc.MultiObserver(counter, mwvc.ObserverFunc(traceEvent))
		}
		opts := []mwvc.Option{
			mwvc.WithAlgorithm(a),
			mwvc.WithEpsilon(*eps),
			mwvc.WithSeed(*seed),
			mwvc.WithObserver(obs),
		}
		if *paper {
			opts = append(opts, mwvc.WithPaperConstants())
		}
		if !*reduce {
			opts = append(opts, mwvc.WithoutReduction())
		}
		if *improve > 0 {
			opts = append(opts, mwvc.WithImprovement(*improve))
		}
		opts = append(opts, extra...)
		start := time.Now()
		sol, err := mwvc.Solve(ctx, g, opts...)
		if err != nil {
			if msg, ok := cli.DeadlineMessage(err, rounds); ok {
				return nil, fmt.Errorf("%s (-timeout %v)", msg, *timeout)
			}
			return nil, err
		}
		elapsed := time.Since(start)
		if primary && sol.Reduction != nil {
			r := sol.Reduction
			fmt.Printf("kernel: n %d→%d m %d→%d (isolated %d, pendant %d, domination %d, neighborhood %d) forced_weight=%.2f  [%v]\n",
				r.OriginalVertices, r.KernelVertices, r.OriginalEdges, r.KernelEdges,
				r.Isolated, r.Pendant, r.Domination, r.NeighborhoodWeight,
				r.ForcedWeight, time.Duration(r.ReduceNS).Round(time.Millisecond))
		}
		if primary && sol.Improvement != nil {
			imp := sol.Improvement
			delta := imp.WeightBefore - imp.WeightAfter
			pct := 0.0
			if imp.WeightBefore > 0 {
				pct = 100 * delta / imp.WeightBefore
			}
			state := "budget"
			if imp.Converged {
				state = "converged"
			}
			fmt.Printf("improve: weight %.2f→%.2f (-%.2f, %.2f%%) steps=%d (redundant %d, swaps %d) %s  [%v]\n",
				imp.WeightBefore, imp.WeightAfter, delta, pct,
				imp.Steps, imp.RedundantRemoved, imp.Swaps, state,
				time.Duration(imp.ImproveNS).Round(time.Millisecond))
		}
		line := fmt.Sprintf("%-18s weight=%.2f", a, sol.Weight)
		// CertifiedRatio is +Inf for certificate-free algorithms (greedy);
		// print n/a rather than the convention value.
		if math.IsInf(sol.CertifiedRatio, 1) {
			line += "  certified_ratio=n/a (no certificate)"
		} else {
			line += fmt.Sprintf("  certified_ratio=%.4f (bound %.2f)", sol.CertifiedRatio, sol.Bound)
		}
		if sol.Rounds > 0 {
			line += fmt.Sprintf("  rounds=%d", sol.Rounds)
		}
		if sol.Phases > 0 {
			line += fmt.Sprintf("  phases=%d", sol.Phases)
		}
		if sol.Exact {
			line += "  (optimal)"
		}
		fmt.Printf("%s  [%v]\n", line, elapsed.Round(time.Millisecond))
		return sol, nil
	}

	// The primary run's error (a blown -timeout, an unknown algorithm) is the
	// command's outcome: report it cleanly and exit nonzero. Comparison runs
	// are best-effort — their errors print inline and the sweep continues.
	primary, err := runOne(mwvc.Algorithm(*algo), nil, *trace, true)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *algo, err))
	}
	if *compare {
		// The kernel is a function of the graph alone: when the primary run
		// showed zero shrink, re-kernelizing per comparison algorithm would
		// only repeat the (bit-identical) no-op — skip the stage instead.
		// When it did shrink, each comparison pays the reduce once and gets
		// the smaller kernel back, normally a net win.
		var extra []mwvc.Option
		irreducible := primary.Reduction != nil &&
			primary.Reduction.KernelVertices == primary.Reduction.OriginalVertices
		if irreducible {
			extra = append(extra, mwvc.WithoutReduction())
		}
		for _, a := range mwvc.Algorithms() {
			if string(a) == *algo {
				continue
			}
			if a == mwvc.AlgoExact && g.NumVertices() > 64 && (!*reduce || irreducible) {
				continue // the raw graph is out of exact's domain for sure
			}
			if a == mwvc.AlgoCongestedClique && g.NumVertices() > 5000 {
				continue // one machine per vertex; keep comparisons snappy
			}
			if _, err := runOne(a, extra, false, false); err != nil {
				fmt.Printf("%-18s error: %v\n", a, err)
			}
		}
	}
}

// traceEvent renders one solve event for -trace. Events stream to stderr so
// the result lines on stdout stay machine-parseable.
func traceEvent(e mwvc.Event) {
	switch e.Kind {
	case mwvc.KindPhaseStart:
		fmt.Fprintf(os.Stderr, "[trace] phase %d start: degree=%.1f machines=%d iters=%d active_edges=%d\n",
			e.Phase, e.Degree, e.Machines, e.Iterations, e.ActiveEdges)
	case mwvc.KindRound:
		fmt.Fprintf(os.Stderr, "[trace]   round %d: phase=%d active_edges=%d dual=%.3f\n",
			e.Round, e.Phase, e.ActiveEdges, e.DualBound)
	case mwvc.KindPhaseEnd:
		fmt.Fprintf(os.Stderr, "[trace] phase %d done: active_edges=%d dual=%.3f\n",
			e.Phase, e.ActiveEdges, e.DualBound)
	case mwvc.KindFinalPhase:
		fmt.Fprintf(os.Stderr, "[trace] final phase: iterations=%d rounds=%d dual=%.3f\n",
			e.Iterations, e.Round, e.DualBound)
	case mwvc.KindReduceStart:
		fmt.Fprintf(os.Stderr, "[trace] reduce start: edges=%d\n", e.ActiveEdges)
	case mwvc.KindReduceEnd:
		fmt.Fprintf(os.Stderr, "[trace] reduce done: kernel_edges=%d\n", e.ActiveEdges)
	case mwvc.KindImproveStart:
		fmt.Fprintf(os.Stderr, "[trace] improve start: weight=%.3f edges=%d\n", e.Weight, e.ActiveEdges)
	case mwvc.KindImproveStep:
		fmt.Fprintf(os.Stderr, "[trace]   improve step %d: weight=%.3f\n", e.Round, e.Weight)
	case mwvc.KindImproveEnd:
		fmt.Fprintf(os.Stderr, "[trace] improve done: weight=%.3f steps=%d\n", e.Weight, e.Round)
	case mwvc.KindCompress:
		fmt.Fprintf(os.Stderr, "[trace] compress %d: local_rounds=%d groups=%d rounds=%d active_edges=%d dual=%.3f\n",
			e.Phase, e.Iterations, e.Machines, e.Round, e.ActiveEdges, e.DualBound)
	}
}

func loadGraph(inFile, generator string, n int, d float64, weights string, seed uint64) (*graph.Graph, error) {
	if inFile != "" {
		// Two-pass streaming ingestion: the file is scanned twice and the CSR
		// arrays are filled in place, so -in handles million-edge instances
		// without an edge-list buffer.
		return graph.OpenFile(inFile)
	}
	return cli.BuildGraph(generator, n, d, weights, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwvc:", err)
	os.Exit(1)
}
