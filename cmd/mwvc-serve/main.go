// Command mwvc-serve runs the minimum-weight vertex cover solve service: a
// bounded worker pool over the solver registry behind an HTTP API.
//
//	mwvc-serve -addr :8437 -workers 8 -queue 64
//
// API (see internal/serve and DESIGN.md):
//
//	POST /v1/graphs            upload a graph in the text format → content hash
//	POST /v1/solve             {"graph": "sha256:...", "algorithm": "mpc", ...}
//	GET  /v1/solve/{id}        status / result of a request
//	GET  /v1/solve/{id}/trace  live round-by-round solve events (SSE)
//	GET  /metrics              Prometheus text metrics
//	GET  /healthz              readiness (503 once shutdown drain begins)
//
// With -data-dir the graph store is durable: uploads are fsynced to disk
// before they are acknowledged, and a restart recovers every acknowledged
// graph. With -degrade the engine downgrades eligible requests to the cheap
// fallback solver when the queue passes the overload threshold, instead of
// making them wait full-cost or 429ing outright.
//
// A quick session against a running server:
//
//	mwvc-gen -gen gnp -n 10000 -d 32 | curl -s --data-binary @- localhost:8437/v1/graphs
//	curl -s localhost:8437/v1/solve -d '{"graph":"sha256:...","algorithm":"mpc","epsilon":0.1}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	mwvc "repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8437", "listen address")
		workers     = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "request queue depth before 429s (0 = 4×workers)")
		parallelism = flag.Int("solver-parallelism", 0, "simulated-machine parallelism per solve (0 = GOMAXPROCS/workers)")
		defTimeout  = flag.Duration("default-timeout", 60*time.Second, "deadline for requests that specify none")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "cap on per-request deadlines")
		maxGraphs   = flag.Int("max-graphs", 0, "graph store cap (0 = 1024)")
		dataDir     = flag.String("data-dir", "", "durable graph store directory (empty = in-memory only)")
		degrade     = flag.Bool("degrade", false, "downgrade eligible requests to the fast-tier fallback solver under overload")
		degradeAlgo = flag.String("degrade-algo", "", "fallback solver for degraded requests (empty = pdfast)")
	)
	flag.Parse()

	engine, err := serve.NewEngine(serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		SolverParallelism: *parallelism,
		DefaultTimeout:    *defTimeout,
		MaxTimeout:        *maxTimeout,
		MaxGraphs:         *maxGraphs,
		DataDir:           *dataDir,
		DegradeEnabled:    *degrade,
		DegradeAlgorithm:  *degradeAlgo,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mwvc-serve:", err)
		os.Exit(1)
	}
	cfg := engine.Config()
	log.Printf("mwvc-serve listening on %s (workers=%d queue=%d solver-parallelism=%d)",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.SolverParallelism)
	if *dataDir != "" {
		rec := engine.Graphs().Recovery()
		log.Printf("durable store %s: recovered %d graph(s), quarantined %d, removed %d temp(s)",
			*dataDir, rec.Recovered, rec.Quarantined, rec.TempsRemoved)
	}
	log.Printf("algorithms: %v", mwvc.Algorithms())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting, let in-flight requests (bounded by
	// the max per-request deadline) drain, then stop the engine.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		// Drain first: /healthz flips to 503 and new Submits are refused with
		// Retry-After while queued and in-flight solves run to completion.
		engine.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), cfg.MaxTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		engine.Close()
		close(idle)
	}()

	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mwvc-serve:", err)
		os.Exit(1)
	}
	<-idle
}
