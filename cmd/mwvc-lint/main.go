// Command mwvc-lint is the project-invariant static analyzer, run by
// `make lint` and the CI lint job. It loads the whole module with the
// standard library's go/parser + go/types (no external dependencies) and
// enforces the invariants the runtime tests only sample: deterministic map
// iteration, context polling in unbounded loops, bitwise float comparison,
// hot-path allocation discipline, and registered fault-injection points.
// See internal/lint for the rule suite.
//
// It also keeps DESIGN.md's injection-point table in sync with the
// internal/fault registry: the default run verifies the generated region,
// and -write-fault-table regenerates it.
//
// Findings print as `file:line: [rule] message`; the exit status is
// nonzero when there are any. Suppress an individual finding with
// `//lint:allow <rule> <reason>` on the offending line or the line above —
// the reason is mandatory.
//
//	mwvc-lint [-root <module root>] [-rules] [-write-fault-table]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	listRules := flag.Bool("rules", false, "print the rule suite and exit")
	writeTable := flag.Bool("write-fault-table", false, "regenerate the DESIGN.md injection-point table from the fault registry")
	flag.Parse()

	rules := lint.Rules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-11s %s\n", r.Name, r.Doc)
		}
		return
	}

	loader, err := lint.NewLoader(*root)
	if err != nil {
		fatal(err)
	}

	faultPkg, err := loader.Package(loader.ModulePath() + "/internal/fault")
	if err != nil {
		fatal(err)
	}
	table, err := lint.FaultTable(faultPkg)
	if err != nil {
		fatal(err)
	}
	design := filepath.Join(*root, "DESIGN.md")
	if *writeTable {
		changed, err := lint.WriteFaultTableDoc(design, table)
		if err != nil {
			fatal(err)
		}
		if changed {
			fmt.Println("mwvc-lint: DESIGN.md injection-point table updated")
		} else {
			fmt.Println("mwvc-lint: DESIGN.md injection-point table already current")
		}
		return
	}

	failed := false
	if err := lint.CheckFaultTableDoc(design, table); err != nil {
		fmt.Println(err)
		failed = true
	}

	diags, err := lint.Run(loader, rules)
	if err != nil {
		fatal(err)
	}
	lint.RelDiagnostics(mustAbs(*root), diags)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mwvc-lint: %d finding(s)\n", len(diags))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("mwvc-lint: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwvc-lint:", err)
	os.Exit(1)
}

func mustAbs(p string) string {
	abs, err := filepath.Abs(p)
	if err != nil {
		fatal(err)
	}
	return abs
}
