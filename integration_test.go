package mwvc_test

// Cross-package integration tests: generators → serialization → every
// algorithm → certificate verification, on a matrix of graph families and
// weight models. These complement the per-package unit tests by exercising
// the exact paths a downstream user composes.

import (
	"context"

	"bytes"
	"fmt"
	"math"
	"testing"

	mwvc "repro"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/verify"
)

func TestIntegrationMatrix(t *testing.T) {
	generators := []string{"gnp", "powerlaw", "bipartite", "regular", "grid", "planted"}
	weightings := []string{"unit", "uniform", "loguniform", "degree"}
	algos := []mwvc.Algorithm{mwvc.AlgoMPC, mwvc.AlgoCentralized, mwvc.AlgoBYE}
	for _, gname := range generators {
		for _, wname := range weightings {
			gname, wname := gname, wname
			t.Run(gname+"/"+wname, func(t *testing.T) {
				t.Parallel()
				g, err := cli.BuildGraph(gname, 400, 10, wname, 7)
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range algos {
					sol, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(algo), mwvc.WithEpsilon(0.1), mwvc.WithSeed(3))
					if err != nil {
						t.Fatalf("%s: %v", algo, err)
					}
					if sol.Bound <= 0 && g.NumEdges() > 0 {
						t.Fatalf("%s: missing certificate", algo)
					}
					if g.NumEdges() > 0 && sol.CertifiedRatio > 5+1e-9 {
						t.Fatalf("%s: certified ratio %v", algo, sol.CertifiedRatio)
					}
				}
			})
		}
	}
}

func TestIntegrationSerializeSolve(t *testing.T) {
	// Solving a graph and solving its serialize→parse round trip must give
	// identical results (the text format is lossless and order-preserving).
	g, err := cli.BuildGraph("gnp", 300, 8, "uniform", 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mwvc.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := mwvc.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mwvc.Solve(context.Background(), g, mwvc.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mwvc.Solve(context.Background(), h, mwvc.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight != b.Weight || a.Rounds != b.Rounds {
		t.Fatalf("round trip changed the solution: %v/%v vs %v/%v", a.Weight, a.Rounds, b.Weight, b.Rounds)
	}
	for v := range a.Cover {
		if a.Cover[v] != b.Cover[v] {
			t.Fatal("round trip changed the cover")
		}
	}
}

func TestIntegrationDisconnectedComponents(t *testing.T) {
	// Several disjoint cliques plus isolated vertices: every algorithm must
	// handle multiple components and untouched vertices.
	b := mwvc.NewBuilder(50)
	id := func(c, i int) mwvc.Vertex { return mwvc.Vertex(c*10 + i) }
	for c := 0; c < 4; c++ { // vertices 40..49 stay isolated
		for i := 0; i < 10; i++ {
			b.SetWeight(id(c, i), float64(1+i))
			for j := i + 1; j < 10; j++ {
				b.AddEdge(id(c, i), id(c, j))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []mwvc.Algorithm{mwvc.AlgoMPC, mwvc.AlgoCentralized, mwvc.AlgoBYE, mwvc.AlgoCongestedClique} {
		sol, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(algo), mwvc.WithSeed(2))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for v := 40; v < 50; v++ {
			if sol.Cover[v] {
				t.Fatalf("%s: isolated vertex %d covered", algo, v)
			}
		}
	}
}

func TestIntegrationHeavyTailVsExact(t *testing.T) {
	// Star forests with extreme weight skew: OPT takes the cheap side of
	// every star; a correct weighted algorithm must too (within 2+30ε).
	b := mwvc.NewBuilder(60)
	opt := 0.0
	for s := 0; s < 6; s++ {
		center := mwvc.Vertex(s * 10)
		b.SetWeight(center, 1) // cheap hub
		opt++
		for l := 1; l < 10; l++ {
			leaf := mwvc.Vertex(s*10 + l)
			b.SetWeight(leaf, 1e6)
			b.AddEdge(center, leaf)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cover, w, err := exact.Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-opt) > 1e-9 {
		t.Fatalf("exact OPT %v, want %v", w, opt)
	}
	if ok, _ := verify.IsCover(g, cover); !ok {
		t.Fatal("exact result not a cover")
	}
	for _, algo := range []mwvc.Algorithm{mwvc.AlgoMPC, mwvc.AlgoCentralized, mwvc.AlgoBYE} {
		sol, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(algo), mwvc.WithEpsilon(0.1), mwvc.WithSeed(9))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if sol.Weight > (2+30*0.1)*opt+1e-9 {
			t.Fatalf("%s: weight %v on star forest with OPT %v", algo, sol.Weight, opt)
		}
	}
}

func TestIntegrationScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke test skipped in -short mode")
	}
	// A quarter-million-edge instance through the full MPC pipeline.
	g := gen.ApplyWeights(gen.GnpAvgDegree(31, 20000, 24), 5, gen.Exponential{Mean: 3})
	res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, 17))
	if err != nil {
		t.Fatal(err)
	}
	scaled, alpha := res.FeasibleDual(g)
	cert, err := verify.NewCertificate(g, res.Cover, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Ratio() > 5 {
		t.Fatalf("ratio %v at scale", cert.Ratio())
	}
	if alpha > 2.5 {
		t.Fatalf("alpha %v at scale", alpha)
	}
	if res.Rounds > 40 {
		t.Fatalf("%d rounds at scale", res.Rounds)
	}
}

func TestIntegrationSeedSensitivity(t *testing.T) {
	// Different seeds must yield valid (and usually different) covers; the
	// certified ratio must hold for each.
	g, err := cli.BuildGraph("gnp", 800, 16, "uniform", 3)
	if err != nil {
		t.Fatal(err)
	}
	weights := map[string]bool{}
	for seed := uint64(1); seed <= 5; seed++ {
		sol, err := mwvc.Solve(context.Background(), g, mwvc.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if sol.CertifiedRatio > 5+1e-9 {
			t.Fatalf("seed %d: ratio %v", seed, sol.CertifiedRatio)
		}
		weights[fmt.Sprintf("%.6f", sol.Weight)] = true
	}
	if len(weights) < 2 {
		t.Log("warning: five seeds produced identical cover weights (possible but unusual)")
	}
}
