package mwvc

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSolveAllAlgorithmsSmall(t *testing.T) {
	g := RandomGraph(3, 60, 6)
	for _, algo := range Algorithms() {
		sol, err := Solve(context.Background(), g, WithAlgorithm(algo), WithEpsilon(0.1), WithSeed(5))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if sol.Weight <= 0 && g.NumEdges() > 0 {
			t.Fatalf("%s: weight %v on a graph with edges", algo, sol.Weight)
		}
		switch algo {
		case AlgoGreedy:
			if sol.Bound != 0 {
				t.Fatalf("greedy claimed a bound")
			}
		case AlgoExact:
			if !sol.Exact || sol.CertifiedRatio != 1 {
				t.Fatalf("exact solution not marked exact")
			}
		default:
			if sol.Bound <= 0 {
				t.Fatalf("%s: no certified bound", algo)
			}
			if sol.CertifiedRatio > 3.0001 {
				t.Fatalf("%s: certified ratio %v", algo, sol.CertifiedRatio)
			}
		}
	}
}

func TestAlgorithmsDeriveFromRegistry(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 11 {
		t.Fatalf("expected the 11 built-in algorithms, got %d: %v", len(algos), algos)
	}
	want := []Algorithm{
		AlgoMPC, AlgoMPCCompress, AlgoCentralized, AlgoLocalUniform, AlgoPDFast, AlgoPDFastPar,
		AlgoBYE, AlgoGreedy, AlgoCongestedClique, AlgoGGK, AlgoExact,
	}
	for i, a := range want {
		if algos[i] != a {
			t.Fatalf("display order %v, want %v", algos, want)
		}
	}
	for _, a := range algos {
		if AlgorithmSummary(a) == "" {
			t.Fatalf("%s has no registered summary", a)
		}
		switch AlgorithmTier(a) {
		case "fast", "accurate", "exact":
		default:
			t.Fatalf("%s has tier %q", a, AlgorithmTier(a))
		}
	}
	if AlgorithmTier(AlgoPDFast) != "fast" || AlgorithmTier(AlgoExact) != "exact" {
		t.Fatal("tier lookup mismatch")
	}
	if AlgorithmTier("nonsense") != "" {
		t.Fatal("tier for unknown algorithm")
	}
	if AlgorithmSummary("nonsense") != "" {
		t.Fatal("summary for unknown algorithm")
	}
	if AlgorithmHelp() == "" {
		t.Fatal("empty registry help text")
	}
}

func TestSolveDefaults(t *testing.T) {
	g := RandomGraph(1, 200, 10)
	sol, err := Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Rounds <= 0 {
		t.Fatal("MPC default should report rounds")
	}
}

func TestSolveNilContext(t *testing.T) {
	g := RandomGraph(1, 100, 6)
	if _, err := Solve(nil, g); err != nil { //nolint:staticcheck // nil ctx tolerated by contract
		t.Fatalf("nil context rejected: %v", err)
	}
}

func TestSolveAgainstExact(t *testing.T) {
	g := RandomGraph(9, 40, 5)
	opt, err := Solve(context.Background(), g, WithAlgorithm(AlgoExact))
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoMPC, AlgoCentralized, AlgoBYE, AlgoCongestedClique} {
		sol, err := Solve(context.Background(), g, WithAlgorithm(algo), WithEpsilon(0.1), WithSeed(2))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if sol.Weight < opt.Weight-1e-9 {
			t.Fatalf("%s: weight %v below optimum %v (invalid cover?)", algo, sol.Weight, opt.Weight)
		}
		if sol.Weight > 3*opt.Weight+1e-9 {
			t.Fatalf("%s: weight %v exceeds 3×OPT %v", algo, sol.Weight, opt.Weight)
		}
		if sol.Bound > opt.Weight+1e-9 {
			t.Fatalf("%s: bound %v exceeds OPT %v (weak duality broken)", algo, sol.Bound, opt.Weight)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(context.Background(), nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := RandomGraph(1, 10, 2)
	if _, err := Solve(context.Background(), g, WithAlgorithm("nonsense")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	big := NewBuilder(100)
	big.AddEdge(0, 1)
	bg, err := big.Build()
	if err != nil {
		t.Fatal(err)
	}
	// On the raw graph exact is out of its 64-vertex domain — and the error
	// must point at the escape hatch: this instance kernelizes to nothing.
	_, err = Solve(context.Background(), bg, WithAlgorithm(AlgoExact), WithoutReduction())
	if err == nil {
		t.Fatal("exact on 100 raw vertices accepted")
	}
	if !strings.Contains(err.Error(), "reduces to a 0-vertex kernel") {
		t.Fatalf("oversize exact error does not report the kernel size: %v", err)
	}
	// With the default reduction the same solve succeeds exactly: the kernel
	// (here empty) fits the solver even though the original does not.
	sol, err := Solve(context.Background(), bg, WithAlgorithm(AlgoExact))
	if err != nil {
		t.Fatalf("exact via kernel: %v", err)
	}
	if !sol.Exact || sol.Weight != 1 {
		t.Fatalf("exact via kernel: exact=%v weight=%v, want true/1", sol.Exact, sol.Weight)
	}
}

func TestSolvePreCancelledContext(t *testing.T) {
	// A pre-cancelled context must return promptly with ctx.Err() for every
	// registered algorithm — the facade checks before dispatch, so no solver
	// touches the graph.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := RandomGraph(2, 500, 8)
	for _, algo := range Algorithms() {
		sol, err := Solve(ctx, g, WithAlgorithm(algo))
		if sol != nil {
			t.Fatalf("%s: returned a solution despite cancelled context", algo)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", algo, err)
		}
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g := RandomGraph(4, 50, 4)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

func TestPaperConstantsOption(t *testing.T) {
	g := RandomGraph(2, 300, 12)
	sol, err := Solve(context.Background(), g, WithPaperConstants(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Phases != 0 {
		t.Fatalf("paper constants at n=300 should run 0 sampled phases, got %d", sol.Phases)
	}
	if math.IsInf(sol.CertifiedRatio, 1) {
		t.Fatal("no certificate")
	}
}

func TestCertifiedRatioInfConvention(t *testing.T) {
	// Certificate-free solvers (greedy) report CertifiedRatio == +Inf on any
	// nonempty instance — "no guarantee claimed" — never 0 or NaN, so naive
	// threshold comparisons fail safe. The empty instance reports 1.
	g := RandomGraph(6, 80, 5)
	sol, err := Solve(context.Background(), g, WithAlgorithm(AlgoGreedy))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Bound != 0 {
		t.Fatalf("greedy bound %v, want 0", sol.Bound)
	}
	if !math.IsInf(sol.CertifiedRatio, 1) {
		t.Fatalf("greedy certified ratio %v, want +Inf", sol.CertifiedRatio)
	}
	empty := NewBuilder(4).MustBuild()
	sol, err = Solve(context.Background(), empty, WithAlgorithm(AlgoGreedy))
	if err != nil {
		t.Fatal(err)
	}
	if sol.CertifiedRatio != 1 {
		t.Fatalf("empty-instance certified ratio %v, want 1", sol.CertifiedRatio)
	}
}

func TestEdgelessSolution(t *testing.T) {
	g := NewBuilder(5).MustBuild()
	for _, algo := range Algorithms() {
		sol, err := Solve(context.Background(), g, WithAlgorithm(algo))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if sol.Weight != 0 || sol.CertifiedRatio != 1 {
			t.Fatalf("%s: edgeless weight %v ratio %v", algo, sol.Weight, sol.CertifiedRatio)
		}
	}
}
