package mwvc

import (
	"bytes"
	"math"
	"testing"
)

func TestSolveAllAlgorithmsSmall(t *testing.T) {
	g := RandomGraph(3, 60, 6)
	for _, algo := range Algorithms() {
		sol, err := Solve(g, Options{Algorithm: algo, Epsilon: 0.1, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if sol.Weight <= 0 && g.NumEdges() > 0 {
			t.Fatalf("%s: weight %v on a graph with edges", algo, sol.Weight)
		}
		switch algo {
		case AlgoGreedy:
			if sol.Bound != 0 {
				t.Fatalf("greedy claimed a bound")
			}
		case AlgoExact:
			if !sol.Exact || sol.CertifiedRatio != 1 {
				t.Fatalf("exact solution not marked exact")
			}
		default:
			if sol.Bound <= 0 {
				t.Fatalf("%s: no certified bound", algo)
			}
			if sol.CertifiedRatio > 3.0001 {
				t.Fatalf("%s: certified ratio %v", algo, sol.CertifiedRatio)
			}
		}
	}
}

func TestSolveDefaults(t *testing.T) {
	g := RandomGraph(1, 200, 10)
	sol, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Rounds <= 0 {
		t.Fatal("MPC default should report rounds")
	}
}

func TestSolveAgainstExact(t *testing.T) {
	g := RandomGraph(9, 40, 5)
	opt, err := Solve(g, Options{Algorithm: AlgoExact})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoMPC, AlgoCentralized, AlgoBYE, AlgoCongestedClique} {
		sol, err := Solve(g, Options{Algorithm: algo, Epsilon: 0.1, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if sol.Weight < opt.Weight-1e-9 {
			t.Fatalf("%s: weight %v below optimum %v (invalid cover?)", algo, sol.Weight, opt.Weight)
		}
		if sol.Weight > 3*opt.Weight+1e-9 {
			t.Fatalf("%s: weight %v exceeds 3×OPT %v", algo, sol.Weight, opt.Weight)
		}
		if sol.Bound > opt.Weight+1e-9 {
			t.Fatalf("%s: bound %v exceeds OPT %v (weak duality broken)", algo, sol.Bound, opt.Weight)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := RandomGraph(1, 10, 2)
	if _, err := Solve(g, Options{Algorithm: "nonsense"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	big := NewBuilder(100)
	big.AddEdge(0, 1)
	bg, err := big.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(bg, Options{Algorithm: AlgoExact}); err == nil {
		t.Fatal("exact on 100 vertices accepted")
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g := RandomGraph(4, 50, 4)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

func TestPaperConstantsOption(t *testing.T) {
	g := RandomGraph(2, 300, 12)
	sol, err := Solve(g, Options{PaperConstants: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Phases != 0 {
		t.Fatalf("paper constants at n=300 should run 0 sampled phases, got %d", sol.Phases)
	}
	if math.IsInf(sol.CertifiedRatio, 1) {
		t.Fatal("no certificate")
	}
}

func TestEdgelessSolution(t *testing.T) {
	g := NewBuilder(5).MustBuild()
	for _, algo := range Algorithms() {
		sol, err := Solve(g, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if sol.Weight != 0 || sol.CertifiedRatio != 1 {
			t.Fatalf("%s: edgeless weight %v ratio %v", algo, sol.Weight, sol.CertifiedRatio)
		}
	}
}
