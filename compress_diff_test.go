package mwvc_test

// Determinism and event-stream suite for the round-compressed solver
// (internal/compress), following the pdfast differential pattern: for a
// fixed seed the solver must return bit-identical covers, weights, and
// dual bounds at GOMAXPROCS 1, 2, and 8, emit byte-for-byte identical
// observer event streams (including the compression events), use strictly
// fewer accounted MPC rounds than the native solver, and abort promptly
// when cancelled mid-compression.

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/solver"
	"repro/internal/verify"
)

// compressFamilies keeps the average degree above the switch-over
// threshold (2·log₂ n at these sizes), so every instance actually runs
// compressed MPC rounds rather than skipping straight to the final
// centralized phase.
var compressFamilies = []struct {
	name    string
	gen     string
	n       int
	d       float64
	weights string
}{
	{"gnp-uniform", "gnp", 800, 24, "uniform"},
	{"regular-unit", "regular", 600, 24, "unit"},
	{"smallworld-degree", "smallworld", 700, 24, "degree"},
}

var compressSeeds = []uint64{1, 2}

// eventRecorder captures the full observer stream for comparison.
type eventRecorder struct{ events []solver.Event }

func (r *eventRecorder) OnEvent(e solver.Event) { r.events = append(r.events, e) }

// sameEvents compares two event streams with bitwise float comparisons.
func sameEvents(a, b []solver.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.Phase != y.Phase || x.Round != y.Round ||
			x.ActiveEdges != y.ActiveEdges || x.Machines != y.Machines ||
			x.Iterations != y.Iterations {
			return false
		}
		if math.Float64bits(x.DualBound) != math.Float64bits(y.DualBound) ||
			math.Float64bits(x.Degree) != math.Float64bits(y.Degree) ||
			math.Float64bits(x.Weight) != math.Float64bits(y.Weight) {
			return false
		}
	}
	return true
}

// TestCompressDeterminism solves each family at GOMAXPROCS 1, 2, and 8 and
// requires bit-identical covers, duals, weights, bounds, and event streams,
// plus strictly fewer rounds than the native solver on the same instance.
func TestCompressDeterminism(t *testing.T) {
	ctx := context.Background()
	reg, ok := solver.Lookup("mpc-compress")
	if !ok {
		t.Fatal("mpc-compress not registered")
	}
	nativeReg, _ := solver.Lookup("mpc")
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, fam := range compressFamilies {
		for _, seed := range compressSeeds {
			g, err := cli.BuildGraph(fam.gen, fam.n, fam.d, fam.weights, seed)
			if err != nil {
				t.Fatal(err)
			}
			var wantEvents []solver.Event
			var want *solver.Outcome
			for _, procs := range []int{1, 2, 8} {
				runtime.GOMAXPROCS(procs)
				rec := &eventRecorder{}
				cfg := solver.Config{Epsilon: 0.1, Seed: seed, Observer: rec}
				got, err := reg.Solver.Solve(ctx, g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if ok, witness := verify.IsCover(g, got.Cover); !ok {
					t.Fatalf("%s/%d: edge %d uncovered", fam.name, seed, witness)
				}
				if err := verify.DualFeasible(g, got.Duals); err != nil {
					t.Fatalf("%s/%d: %v", fam.name, seed, err)
				}
				compressEvents := 0
				for _, e := range rec.events {
					if e.Kind == solver.KindCompress {
						compressEvents++
						if e.Iterations < 1 || e.Machines < 1 {
							t.Fatalf("%s/%d: compression event without LOCAL-round or group count: %+v", fam.name, seed, e)
						}
					}
				}
				if compressEvents != got.Phases || got.Phases < 1 {
					t.Fatalf("%s/%d: %d compression events for %d compressed rounds", fam.name, seed, compressEvents, got.Phases)
				}
				if want == nil {
					want, wantEvents = got, rec.events
					continue
				}
				if got.Rounds != want.Rounds {
					t.Fatalf("%s/%d GOMAXPROCS=%d: rounds %d != %d", fam.name, seed, procs, got.Rounds, want.Rounds)
				}
				for v := range want.Cover {
					if got.Cover[v] != want.Cover[v] {
						t.Fatalf("%s/%d GOMAXPROCS=%d: cover diverges at vertex %d", fam.name, seed, procs, v)
					}
				}
				for e := range want.Duals {
					if math.Float64bits(got.Duals[e]) != math.Float64bits(want.Duals[e]) {
						t.Fatalf("%s/%d GOMAXPROCS=%d: dual diverges at edge %d", fam.name, seed, procs, e)
					}
				}
				gw, ww := verify.CoverWeight(g, got.Cover), verify.CoverWeight(g, want.Cover)
				gb, wb := verify.DualValue(got.Duals), verify.DualValue(want.Duals)
				if math.Float64bits(gw) != math.Float64bits(ww) || math.Float64bits(gb) != math.Float64bits(wb) {
					t.Fatalf("%s/%d GOMAXPROCS=%d: weight/bound bits diverge", fam.name, seed, procs)
				}
				if !sameEvents(rec.events, wantEvents) {
					t.Fatalf("%s/%d GOMAXPROCS=%d: event streams diverge (%d vs %d events)",
						fam.name, seed, procs, len(rec.events), len(wantEvents))
				}
			}

			native, err := nativeReg.Solver.Solve(ctx, g, solver.Config{Epsilon: 0.1, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if want.Rounds >= native.Rounds {
				t.Fatalf("%s/%d: compressed rounds %d not below native %d", fam.name, seed, want.Rounds, native.Rounds)
			}
		}
	}
}

// TestCompressCancellationMidCompression cancels the solve from the
// observer as soon as the first compressed round starts and requires a
// prompt context.Canceled return — the round loop must poll between
// cluster rounds, not only between phases.
func TestCompressCancellationMidCompression(t *testing.T) {
	reg, ok := solver.Lookup("mpc-compress")
	if !ok {
		t.Fatal("mpc-compress not registered")
	}
	g, err := cli.BuildGraph("gnp", 20000, 48, "uniform", 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelOnce := solver.ObserverFunc(func(e solver.Event) {
		if e.Kind == solver.KindRound {
			cancel()
		}
	})
	start := time.Now()
	_, err = reg.Solver.Solve(ctx, g, solver.Config{Epsilon: 0.1, Seed: 7, Observer: cancelOnce})
	if err == nil || ctx.Err() == nil {
		t.Fatalf("cancelled mid-compression solve returned err=%v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("mid-compression cancellation took %v, want prompt return", elapsed)
	}
}
