package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestGnpDeterministic(t *testing.T) {
	a := Gnp(7, 200, 0.05)
	b := Gnp(7, 200, 0.05)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for e := 0; e < a.NumEdges(); e++ {
		u1, v1 := a.Edge(graph.EdgeID(e))
		u2, v2 := b.Edge(graph.EdgeID(e))
		if u1 != u2 || v1 != v2 {
			t.Fatalf("same seed, different edge %d", e)
		}
	}
	c := Gnp(8, 200, 0.05)
	if c.NumEdges() == a.NumEdges() {
		// Edge counts can coincide; check structure too before failing.
		same := true
		for e := 0; e < a.NumEdges(); e++ {
			u1, v1 := a.Edge(graph.EdgeID(e))
			u2, v2 := c.Edge(graph.EdgeID(e))
			if u1 != u2 || v1 != v2 {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGnpEdgeCountConcentration(t *testing.T) {
	n, p := 500, 0.04
	g := Gnp(3, n, p)
	expected := p * float64(n) * float64(n-1) / 2
	stddev := math.Sqrt(expected * (1 - p))
	if d := math.Abs(float64(g.NumEdges()) - expected); d > 6*stddev {
		t.Fatalf("edge count %d deviates from mean %.0f by %.1f stddevs", g.NumEdges(), expected, d/stddev)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGnpExtremes(t *testing.T) {
	if g := Gnp(1, 50, 0); g.NumEdges() != 0 {
		t.Fatalf("G(n,0) has %d edges", g.NumEdges())
	}
	if g := Gnp(1, 20, 1); g.NumEdges() != 20*19/2 {
		t.Fatalf("G(n,1) has %d edges, want %d", g.NumEdges(), 20*19/2)
	}
	if g := Gnp(1, 0, 0.5); g.NumVertices() != 0 {
		t.Fatal("G(0,p) not empty")
	}
	if g := Gnp(1, 1, 0.5); g.NumEdges() != 0 {
		t.Fatal("G(1,p) has edges")
	}
}

func TestGnpAvgDegree(t *testing.T) {
	g := GnpAvgDegree(5, 2000, 16)
	if d := g.AverageDegree(); math.Abs(d-16) > 2 {
		t.Fatalf("average degree %v, want ~16", d)
	}
	// Cap at complete graph when d >= n-1.
	h := GnpAvgDegree(5, 10, 100)
	if h.NumEdges() != 45 {
		t.Fatalf("saturated GnpAvgDegree has %d edges, want 45", h.NumEdges())
	}
	if tiny := GnpAvgDegree(5, 1, 3); tiny.NumVertices() != 1 || tiny.NumEdges() != 0 {
		t.Fatal("GnpAvgDegree(n=1) wrong")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(11, 1000, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// m ≈ (n-k)·k once past the bootstrap.
	if g.NumEdges() < 2900 || g.NumEdges() > 3000 {
		t.Fatalf("PA edge count %d outside expected band", g.NumEdges())
	}
	// Heavy tail: max degree far above average.
	if g.MaxDegree() < 3*int(g.AverageDegree()) {
		t.Fatalf("PA max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), g.AverageDegree())
	}
	// Determinism.
	h := PreferentialAttachment(11, 1000, 3)
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("PA not deterministic")
	}
	for e := 0; e < g.NumEdges(); e++ {
		u1, v1 := g.Edge(graph.EdgeID(e))
		u2, v2 := h.Edge(graph.EdgeID(e))
		if u1 != u2 || v1 != v2 {
			t.Fatal("PA not deterministic (edges differ)")
		}
	}
}

func TestRandomBipartite(t *testing.T) {
	nl, nr, p := 80, 120, 0.1
	g := RandomBipartite(2, nl, nr, p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Edge(graph.EdgeID(e))
		left := func(x graph.Vertex) bool { return int(x) < nl }
		if left(u) == left(v) {
			t.Fatalf("edge (%d,%d) not crossing the bipartition", u, v)
		}
	}
	expected := p * float64(nl) * float64(nr)
	stddev := math.Sqrt(expected * (1 - p))
	if d := math.Abs(float64(g.NumEdges()) - expected); d > 6*stddev {
		t.Fatalf("bipartite edge count %d deviates from %.0f", g.NumEdges(), expected)
	}
	if k := RandomBipartite(2, 3, 4, 1); k.NumEdges() != 12 {
		t.Fatalf("complete bipartite via p=1 has %d edges", k.NumEdges())
	}
}

func TestRandomRegular(t *testing.T) {
	n, d := 500, 8
	g := RandomRegular(21, n, d)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nearly all vertices should reach degree d; allow small deficit from
	// rejected self-loops/duplicates.
	short := 0
	for v := 0; v < n; v++ {
		dv := g.Degree(graph.Vertex(v))
		if dv > d {
			t.Fatalf("vertex %d degree %d exceeds d=%d", v, dv, d)
		}
		if dv < d {
			short++
		}
	}
	if short > n/10 {
		t.Fatalf("%d/%d vertices below target degree", short, n)
	}
}

func TestStructuredGraphs(t *testing.T) {
	if g := Grid(3, 4); g.NumVertices() != 12 || g.NumEdges() != 3*3+2*4 {
		t.Fatalf("grid sizes wrong: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g := Star(6); g.NumEdges() != 5 || g.Degree(0) != 5 {
		t.Fatal("star wrong")
	}
	if g := Clique(6); g.NumEdges() != 15 {
		t.Fatal("clique wrong")
	}
	if g := Path(5); g.NumEdges() != 4 {
		t.Fatal("path wrong")
	}
	if g := Cycle(5); g.NumEdges() != 5 || g.MaxDegree() != 2 {
		t.Fatal("cycle wrong")
	}
	if g := CompleteBipartite(3, 4); g.NumEdges() != 12 {
		t.Fatal("complete bipartite wrong")
	}
	for _, g := range []*graph.Graph{Grid(5, 5), Star(9), Clique(7), Path(9), Cycle(9), CompleteBipartite(4, 5)} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlantedCoverCovers(t *testing.T) {
	g, cover := PlantedCover(9, 400, 40, 2000, 1, 100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	in := make([]bool, g.NumVertices())
	for _, v := range cover {
		in[v] = true
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Edge(graph.EdgeID(e))
		if !in[u] && !in[v] {
			t.Fatalf("edge (%d,%d) not covered by planted set", u, v)
		}
	}
	// Planted vertices should be much cheaper on average.
	var inW, outW float64
	var inN, outN int
	for v := 0; v < g.NumVertices(); v++ {
		if in[v] {
			inW += g.Weight(graph.Vertex(v))
			inN++
		} else {
			outW += g.Weight(graph.Vertex(v))
			outN++
		}
	}
	if inW/float64(inN) > outW/float64(outN)/10 {
		t.Fatalf("planted cover not cheap: avg in=%.2f out=%.2f", inW/float64(inN), outW/float64(outN))
	}
}

func TestWeightModels(t *testing.T) {
	g := Gnp(4, 300, 0.05)
	for _, m := range StandardModels() {
		h := ApplyWeights(g, 77, m)
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: ApplyWeights changed structure", m.Name())
		}
		for v := 0; v < h.NumVertices(); v++ {
			w := h.Weight(graph.Vertex(v))
			if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
				t.Fatalf("%s: weight of %d is %v", m.Name(), v, w)
			}
		}
		// Deterministic per (seed, vertex).
		h2 := ApplyWeights(g, 77, m)
		for v := 0; v < h.NumVertices(); v++ {
			if h.Weight(graph.Vertex(v)) != h2.Weight(graph.Vertex(v)) {
				t.Fatalf("%s: weights not deterministic", m.Name())
			}
		}
	}
}

func TestUnitModel(t *testing.T) {
	g := ApplyWeights(Gnp(1, 50, 0.1), 1, Unit{})
	for v := 0; v < g.NumVertices(); v++ {
		if g.Weight(graph.Vertex(v)) != 1 {
			t.Fatal("unit model produced non-unit weight")
		}
	}
}

func TestPowerLawRange(t *testing.T) {
	m := PowerLaw{MaxWeight: 1e9}
	lo, hi := math.Inf(1), math.Inf(-1)
	for v := graph.Vertex(0); v < 20000; v++ {
		w := m.Sample(3, v, 0)
		if w < 1 || w >= 1e9 {
			t.Fatalf("PowerLaw weight %v out of [1, 1e9)", w)
		}
		lo, hi = math.Min(lo, w), math.Max(hi, w)
	}
	if lo > 10 || hi < 1e7 {
		t.Fatalf("PowerLaw range poorly spread: [%g, %g]", lo, hi)
	}
}

func TestDegreeCorrelated(t *testing.T) {
	m := DegreeCorrelated{Alpha: 1}
	wLow := m.Sample(1, 0, 1)
	wHigh := m.Sample(1, 0, 1000)
	if wHigh <= wLow {
		t.Fatalf("degree-correlated weights not increasing: %v vs %v", wLow, wHigh)
	}
	inv := DegreeCorrelated{Alpha: -1}
	if inv.Sample(1, 0, 1000) >= inv.Sample(1, 0, 1) {
		t.Fatal("negative alpha not decreasing")
	}
}
