package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// RMAT returns an R-MAT (recursive matrix) graph on 2^scale vertices with
// edgeFactor·2^scale edges, the generator behind the Graph500 benchmark and
// a staple of MPC evaluations. (a, b, c) are the recursive quadrant
// probabilities (d = 1−a−b−c); the canonical Graph500 values are
// (0.57, 0.19, 0.19). Self-loops and duplicates are dropped by the builder,
// so the realized edge count is slightly below the nominal one.
func RMAT(seed uint64, scale, edgeFactor int, a, b, c float64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("gen: RMAT scale %d out of [1,30]", scale))
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		panic(fmt.Sprintf("gen: RMAT probabilities (%v,%v,%v) invalid", a, b, c))
	}
	n := 1 << uint(scale)
	src := rng.New(seed).Split('r', 'm', 'a', 't')
	bld := graph.NewBuilder(n)
	for i := 0; i < edgeFactor*n; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := src.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u != v {
			bld.AddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	return bld.MustBuild()
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbors on each side, with each edge
// rewired to a random endpoint with probability beta. beta=0 is the pure
// lattice (high clustering, huge diameter); beta=1 is essentially random.
func WattsStrogatz(seed uint64, n, k int, beta float64) *graph.Graph {
	if k < 1 || 2*k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz k=%d invalid for n=%d", k, n))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("gen: WattsStrogatz beta=%v out of [0,1]", beta))
	}
	src := rng.New(seed).Split('w', 's')
	bld := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + j) % n
			if src.Float64() < beta {
				// Rewire the far endpoint uniformly (avoiding the trivial
				// self-loop; duplicate edges collapse in the builder).
				u = src.Intn(n)
				if u == v {
					u = (u + 1) % n
				}
			}
			bld.AddEdge(graph.Vertex(v), graph.Vertex(u))
		}
	}
	return bld.MustBuild()
}
