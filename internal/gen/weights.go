package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// WeightModel names a vertex-weight distribution. The weighted vertex-cover
// problem is sensitive to weight skew: the paper's key observation is that
// the classic uniform dual initialization costs O(log(Wn)) iterations where
// W = max weight, so models here deliberately include huge dynamic ranges.
type WeightModel interface {
	// Sample returns the weight of vertex v (degree deg) for the given seed.
	Sample(seed uint64, v graph.Vertex, deg int) float64
	// Name returns a short identifier used in experiment tables.
	Name() string
}

// Unit gives every vertex weight 1, reducing MWVC to minimum cardinality
// vertex cover (the GGK+18 setting).
type Unit struct{}

func (Unit) Sample(uint64, graph.Vertex, int) float64 { return 1 }
func (Unit) Name() string                             { return "unit" }

// UniformRange draws weights uniformly from [Lo, Hi).
type UniformRange struct{ Lo, Hi float64 }

func (m UniformRange) Sample(seed uint64, v graph.Vertex, _ int) float64 {
	return rng.UniformAt(seed, m.Lo, m.Hi, 'w', uint64(v))
}
func (m UniformRange) Name() string { return fmt.Sprintf("uniform[%g,%g)", m.Lo, m.Hi) }

// Exponential draws weights from an exponential distribution with the given
// mean (shifted by a small floor so weights stay strictly positive).
type Exponential struct{ Mean float64 }

func (m Exponential) Sample(seed uint64, v graph.Vertex, _ int) float64 {
	u := rng.UniformAt(seed, 0, 1, 'e', uint64(v))
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return 1e-6 + m.Mean*(-math.Log(1-u))
}
func (m Exponential) Name() string { return fmt.Sprintf("exp(mean=%g)", m.Mean) }

// PowerLaw draws weights as W^U for U uniform in [0,1), i.e. log-uniform
// over [1, W). With W=1e9 this exercises the weight ranges where the
// classic 1/n initialization needs Θ(log(nW)) iterations.
type PowerLaw struct{ MaxWeight float64 }

func (m PowerLaw) Sample(seed uint64, v graph.Vertex, _ int) float64 {
	u := rng.UniformAt(seed, 0, 1, 'p', uint64(v))
	return math.Pow(m.MaxWeight, u)
}
func (m PowerLaw) Name() string { return fmt.Sprintf("loguniform[1,%.0g)", m.MaxWeight) }

// DegreeCorrelated makes weight proportional to (1+deg)^Alpha, scaled by a
// uniform factor in [0.5, 1.5). Positive Alpha makes hubs expensive (covers
// prefer leaves); negative Alpha makes hubs cheap. Both directions stress
// the w/d orientation argument differently.
type DegreeCorrelated struct{ Alpha float64 }

func (m DegreeCorrelated) Sample(seed uint64, v graph.Vertex, deg int) float64 {
	jitter := rng.UniformAt(seed, 0.5, 1.5, 'd', uint64(v))
	return jitter * math.Pow(1+float64(deg), m.Alpha)
}
func (m DegreeCorrelated) Name() string { return fmt.Sprintf("degree^%g", m.Alpha) }

// ApplyWeights returns a copy of g whose vertex weights are drawn from the
// model with the given seed.
func ApplyWeights(g *graph.Graph, seed uint64, model WeightModel) *graph.Graph {
	w := make([]float64, g.NumVertices())
	for v := range w {
		w[v] = model.Sample(seed, graph.Vertex(v), g.Degree(graph.Vertex(v)))
	}
	h, err := g.WithWeights(w)
	if err != nil {
		panic(fmt.Sprintf("gen: weight model %s produced invalid weight: %v", model.Name(), err))
	}
	return h
}

// StandardModels returns the weight models used by the experiment sweeps.
func StandardModels() []WeightModel {
	return []WeightModel{
		Unit{},
		UniformRange{Lo: 1, Hi: 100},
		Exponential{Mean: 10},
		PowerLaw{MaxWeight: 1e9},
		DegreeCorrelated{Alpha: 1},
		DegreeCorrelated{Alpha: -1},
	}
}
