package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// EdgeEmitter receives one edge of a generator's edge stream per call.
type EdgeEmitter func(u, v graph.Vertex)

// Every generator in this package is deterministic given its seed, and the
// streamable ones below expose that determinism directly: an Emit* function
// produces the identical edge sequence every time it is called with the
// same arguments. That is exactly the contract the two-pass CSRBuilder
// wants, so buildStreamed assembles a Graph by simply running the emitter
// twice — no edge-list buffer exists at any point, for generation or for
// construction. The same emitters back `mwvc-gen -stream`, which writes the
// edge stream to disk without materializing the graph at all.

// buildStreamed builds a graph by replaying a deterministic edge stream
// through the two passes of a CSRBuilder. It panics on error: emitters are
// correct by construction (in-range endpoints, no self-loops).
func buildStreamed(n int, stream func(EdgeEmitter)) *graph.Graph {
	c := graph.NewCSRBuilder(n)
	var err error
	stream(func(u, v graph.Vertex) {
		if err == nil {
			err = c.CountEdge(u, v)
		}
	})
	if err == nil {
		err = c.EndCount()
	}
	stream(func(u, v graph.Vertex) {
		if err == nil {
			err = c.AddEdge(u, v)
		}
	})
	if err != nil {
		panic(fmt.Sprintf("gen: streamed build failed: %v", err))
	}
	g, err := c.Build()
	if err != nil {
		panic(fmt.Sprintf("gen: streamed build failed: %v", err))
	}
	return g
}

// EmitGnp streams the edges of the Erdős–Rényi graph G(n, p) for the given
// seed, using geometric skipping (O(n + m), no quadratic scan). The stream
// is deterministic: same arguments, same sequence.
func EmitGnp(seed uint64, n int, p float64, emit EdgeEmitter) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: Gnp probability %v out of [0,1]", p))
	}
	if p <= 0 || n <= 1 {
		return
	}
	src := rng.New(seed).Split('g', 'n', 'p')
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				emit(graph.Vertex(u), graph.Vertex(v))
			}
		}
		return
	}
	// Walk the strictly-upper-triangular adjacency matrix in row-major
	// order, jumping geometric(p) positions between successive edges.
	logq := math.Log1p(-p)
	u, v := 0, 0 // current column within row u is v (v>u required)
	for {
		skip := int(math.Floor(math.Log(1-src.Float64()) / logq))
		v += 1 + skip
		for v >= n {
			overflow := v - n
			u++
			v = u + 1 + overflow
			if u >= n-1 {
				return
			}
		}
		emit(graph.Vertex(u), graph.Vertex(v))
	}
}

// EmitRandomBipartite streams the edges of the random bipartite graph on
// nLeft+nRight vertices where each cross pair appears with probability p.
func EmitRandomBipartite(seed uint64, nLeft, nRight int, p float64, emit EdgeEmitter) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: RandomBipartite probability %v out of [0,1]", p))
	}
	if p <= 0 || nLeft == 0 || nRight == 0 {
		return
	}
	src := rng.New(seed).Split('b', 'i', 'p')
	if p == 1 {
		for u := 0; u < nLeft; u++ {
			for v := 0; v < nRight; v++ {
				emit(graph.Vertex(u), graph.Vertex(nLeft+v))
			}
		}
		return
	}
	// Geometric skipping over the nLeft×nRight grid.
	logq := math.Log1p(-p)
	idx := -1
	total := nLeft * nRight
	for {
		skip := int(math.Floor(math.Log(1-src.Float64()) / logq))
		idx += 1 + skip
		if idx >= total {
			return
		}
		u, v := idx/nRight, idx%nRight
		emit(graph.Vertex(u), graph.Vertex(nLeft+v))
	}
}

// EmitGrid streams the edges of the rows×cols grid graph.
func EmitGrid(rows, cols int, emit EdgeEmitter) {
	id := func(r, c int) graph.Vertex { return graph.Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				emit(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				emit(id(r, c), id(r+1, c))
			}
		}
	}
}

// EmitStar streams the edges of the star with center 0 and n-1 leaves.
func EmitStar(n int, emit EdgeEmitter) {
	for v := 1; v < n; v++ {
		emit(0, graph.Vertex(v))
	}
}
