package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestRMAT(t *testing.T) {
	g := RMAT(7, 12, 8, 0.57, 0.19, 0.19)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := 1 << 12
	if g.NumVertices() != n {
		t.Fatalf("n=%d, want %d", g.NumVertices(), n)
	}
	// Nominal 8n edges minus self-loops/dups: expect a substantial fraction.
	if g.NumEdges() < 4*n {
		t.Fatalf("only %d edges survived, want ≥ %d", g.NumEdges(), 4*n)
	}
	// R-MAT with skewed quadrants is heavy-tailed.
	if g.MaxDegree() < 4*int(g.AverageDegree()) {
		t.Fatalf("R-MAT not heavy-tailed: max %d avg %.1f", g.MaxDegree(), g.AverageDegree())
	}
	// Determinism.
	h := RMAT(7, 12, 8, 0.57, 0.19, 0.19)
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("R-MAT not deterministic")
	}
}

func TestRMATValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { RMAT(1, 0, 1, 0.5, 0.2, 0.2) },
		func() { RMAT(1, 31, 1, 0.5, 0.2, 0.2) },
		func() { RMAT(1, 4, 1, 0.6, 0.3, 0.3) }, // d < 0
		func() { RMAT(1, 4, 1, -0.1, 0.5, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid RMAT parameters accepted")
				}
			}()
			bad()
		}()
	}
}

func TestWattsStrogatz(t *testing.T) {
	// beta = 0: pure ring lattice, everyone has degree exactly 2k.
	g := WattsStrogatz(3, 100, 3, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 100; v++ {
		if d := g.Degree(graph.Vertex(v)); d != 6 {
			t.Fatalf("lattice vertex %d degree %d, want 6", v, d)
		}
	}
	// beta = 0.3: same edge budget (minus collapsed duplicates), degree
	// spread appears.
	h := WattsStrogatz(3, 100, 3, 0.3)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() > g.NumEdges() {
		t.Fatal("rewiring created edges")
	}
	if h.MaxDegree() <= 6 {
		t.Log("note: no degree spread after rewiring (possible but unusual)")
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { WattsStrogatz(1, 10, 0, 0.1) },
		func() { WattsStrogatz(1, 10, 5, 0.1) },
		func() { WattsStrogatz(1, 10, 2, -0.1) },
		func() { WattsStrogatz(1, 10, 2, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid WattsStrogatz parameters accepted")
				}
			}()
			bad()
		}()
	}
}
