// Package gen produces the synthetic graph instances and vertex-weight
// models used by the experiments. All generators are deterministic given a
// seed, so every table in EXPERIMENTS.md is exactly reproducible.
//
// The paper states its result for "any input graph with n vertices and
// average degree d"; the generators here sweep those two quantities across
// qualitatively different degree distributions (binomial, power-law,
// regular, bipartite, structured) because the round-compression argument is
// sensitive to degree spread (the V^high/V^inactive split exists precisely
// to handle skew).
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Gnp returns an Erdős–Rényi G(n, p) graph. Edges are generated with the
// geometric skipping method, so the cost is O(n + m) rather than O(n²), and
// the graph is assembled by replaying the EmitGnp edge stream through the
// streaming CSR builder — no edge-list buffer even for huge instances.
func Gnp(seed uint64, n int, p float64) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: Gnp probability %v out of [0,1]", p))
	}
	return buildStreamed(n, func(emit EdgeEmitter) { EmitGnp(seed, n, p, emit) })
}

// GnpAvgDegree returns G(n, p) with p chosen so the expected average degree
// is d, i.e. p = d/(n-1).
func GnpAvgDegree(seed uint64, n int, d float64) *graph.Graph {
	if n <= 1 {
		return graph.NewBuilder(n).MustBuild()
	}
	p := d / float64(n-1)
	if p > 1 {
		p = 1
	}
	return Gnp(seed, n, p)
}

// PreferentialAttachment returns a Barabási–Albert power-law graph: vertices
// arrive one at a time and attach k edges to existing vertices chosen with
// probability proportional to their degree (plus one, so isolated seeds can
// be chosen). The resulting degree distribution has a heavy tail, which is
// the adversarial case for the paper's sampling argument.
func PreferentialAttachment(seed uint64, n, k int) *graph.Graph {
	if k < 1 {
		panic("gen: PreferentialAttachment requires k >= 1")
	}
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.MustBuild()
	}
	src := rng.New(seed).Split('p', 'a')
	// targets holds one entry per half-edge endpoint (plus one per vertex),
	// so uniform sampling from it is degree-proportional sampling.
	targets := make([]graph.Vertex, 0, 2*n*k+n)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		attach := k
		if v < k {
			attach = v
		}
		chosen := make([]graph.Vertex, 0, attach)
		for len(chosen) < attach {
			c := targets[src.Intn(len(targets))]
			dup := false
			for _, x := range chosen {
				if x == c {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, c)
			}
		}
		for _, u := range chosen {
			b.AddEdge(graph.Vertex(v), u)
			targets = append(targets, u)
		}
		targets = append(targets, graph.Vertex(v))
	}
	return b.MustBuild()
}

// RandomBipartite returns a random bipartite graph on nLeft+nRight vertices
// where each cross pair is an edge independently with probability p. Left
// vertices are 0..nLeft-1, right vertices nLeft..nLeft+nRight-1.
func RandomBipartite(seed uint64, nLeft, nRight int, p float64) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: RandomBipartite probability %v out of [0,1]", p))
	}
	return buildStreamed(nLeft+nRight, func(emit EdgeEmitter) {
		EmitRandomBipartite(seed, nLeft, nRight, p, emit)
	})
}

// RandomRegular returns a (near-)d-regular graph via the configuration
// model: d half-edges per vertex are paired uniformly at random; self-loops
// and duplicate pairs are discarded, so a few vertices may fall short of
// degree d (the deficit is tiny for d ≪ n, and the experiments only need
// "essentially regular").
func RandomRegular(seed uint64, n, d int) *graph.Graph {
	if d < 0 || d >= n {
		panic(fmt.Sprintf("gen: RandomRegular d=%d out of range for n=%d", d, n))
	}
	stubs := make([]graph.Vertex, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.Vertex(v))
		}
	}
	src := rng.New(seed).Split('r', 'e', 'g')
	src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u != v {
			b.AddEdge(u, v) // duplicates merged by the builder
		}
	}
	return b.MustBuild()
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	return buildStreamed(rows*cols, func(emit EdgeEmitter) { EmitGrid(rows, cols, emit) })
}

// Star returns a star with one center (vertex 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	return buildStreamed(n, func(emit EdgeEmitter) { EmitStar(n, emit) })
}

// Clique returns the complete graph K_n.
func Clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	return b.MustBuild()
}

// Path returns the path graph P_n.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(graph.Vertex(v), graph.Vertex(v+1))
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph C_n (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle requires n >= 3")
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.Vertex(v), graph.Vertex((v+1)%n))
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bld.AddEdge(graph.Vertex(u), graph.Vertex(a+v))
		}
	}
	return bld.MustBuild()
}

// PlantedCover returns a graph with a planted vertex cover: a random subset
// C of size coverSize is chosen, every one of m edges gets at least one
// endpoint in C, vertices in C receive low weights and vertices outside C
// high weights, so the planted set is a near-optimal cover. Useful for
// ratio experiments at scales where exact OPT is unavailable: w(C_planted)
// upper-bounds OPT.
//
// It returns the graph and the planted cover as a vertex list.
func PlantedCover(seed uint64, n, coverSize, m int, lowW, highW float64) (*graph.Graph, []graph.Vertex) {
	if coverSize <= 0 || coverSize > n {
		panic(fmt.Sprintf("gen: PlantedCover coverSize=%d out of range for n=%d", coverSize, n))
	}
	src := rng.New(seed).Split('p', 'l', 'a', 'n', 't')
	perm := src.Perm(n)
	cover := make([]graph.Vertex, coverSize)
	inCover := make([]bool, n)
	for i := 0; i < coverSize; i++ {
		cover[i] = graph.Vertex(perm[i])
		inCover[perm[i]] = true
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if inCover[v] {
			b.SetWeight(graph.Vertex(v), lowW*(0.5+src.Float64()))
		} else {
			b.SetWeight(graph.Vertex(v), highW*(0.5+src.Float64()))
		}
	}
	for i := 0; i < m; i++ {
		c := cover[src.Intn(coverSize)]
		u := graph.Vertex(src.Intn(n))
		if u != c {
			b.AddEdge(c, u)
		}
	}
	return b.MustBuild(), cover
}
