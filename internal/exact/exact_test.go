package exact

import (
	"context"

	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/verify"
)

func TestSolveTriangle(t *testing.T) {
	g, err := graph.FromEdgeList(3, [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cover, w, err := Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 { // {0,1} with weights 1+2
		t.Fatalf("triangle OPT %v, want 3", w)
	}
	if ok, _ := verify.IsCover(g, cover); !ok {
		t.Fatal("not a cover")
	}
	if verify.CoverWeight(g, cover) != w {
		t.Fatal("reported weight mismatch")
	}
}

func TestSolveStar(t *testing.T) {
	// Cheap center: OPT = center.
	b := graph.NewBuilder(6)
	b.SetWeight(0, 2)
	for v := 1; v < 6; v++ {
		b.SetWeight(graph.Vertex(v), 1)
		b.AddEdge(0, graph.Vertex(v))
	}
	g := b.MustBuild()
	cover, w, err := Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 || !cover[0] {
		t.Fatalf("star OPT %v cover %v", w, cover)
	}
	// Expensive center: OPT = all leaves.
	b2 := graph.NewBuilder(6)
	b2.SetWeight(0, 100)
	for v := 1; v < 6; v++ {
		b2.SetWeight(graph.Vertex(v), 1)
		b2.AddEdge(0, graph.Vertex(v))
	}
	g2 := b2.MustBuild()
	_, w2, err := Solve(context.Background(), g2)
	if err != nil {
		t.Fatal(err)
	}
	if w2 != 5 {
		t.Fatalf("expensive star OPT %v, want 5", w2)
	}
}

func TestSolveEdgeless(t *testing.T) {
	g := graph.NewBuilder(7).MustBuild()
	cover, w, err := Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Fatalf("edgeless OPT %v", w)
	}
	for _, in := range cover {
		if in {
			t.Fatal("vertex chosen in edgeless graph")
		}
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 60; trial++ {
		n := 4 + src.Intn(9) // 4..12
		b := graph.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetWeight(graph.Vertex(v), 0.5+3*src.Float64())
		}
		edges := src.Intn(n * (n - 1) / 2)
		for i := 0; i < edges; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(graph.Vertex(u), graph.Vertex(v))
			}
		}
		g := b.MustBuild()
		cBB, wBB, err := Solve(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		_, wBF, err := BruteForce(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wBB-wBF) > 1e-9 {
			t.Fatalf("trial %d: branch-and-bound %v vs brute force %v", trial, wBB, wBF)
		}
		if ok, _ := verify.IsCover(g, cBB); !ok {
			t.Fatalf("trial %d: B&B result not a cover", trial)
		}
	}
}

func TestSolveCliqueAndBipartite(t *testing.T) {
	// Unit clique K_n: OPT = n-1.
	g := gen.Clique(8)
	_, w, err := Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 7 {
		t.Fatalf("K8 OPT %v, want 7", w)
	}
	// Unit K_{a,b}: OPT = min(a, b).
	kb := gen.CompleteBipartite(3, 5)
	_, w, err = Solve(context.Background(), kb)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		t.Fatalf("K_{3,5} OPT %v, want 3", w)
	}
}

func TestSolveMediumRandom(t *testing.T) {
	// n=40 exercises the bound pruning; validity + dual sandwich check.
	g := gen.ApplyWeights(gen.Gnp(9, 40, 0.15), 3, gen.UniformRange{Lo: 1, Hi: 5})
	cover, w, err := Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := verify.IsCover(g, cover); !ok {
		t.Fatal("not a cover")
	}
	if math.Abs(verify.CoverWeight(g, cover)-w) > 1e-9 {
		t.Fatal("weight mismatch")
	}
}

func TestSolveRejectsTooLarge(t *testing.T) {
	g := graph.NewBuilder(65).MustBuild()
	if _, _, err := Solve(context.Background(), g); err == nil {
		t.Fatal("65-vertex instance accepted")
	}
	big := graph.NewBuilder(25).MustBuild()
	if _, _, err := BruteForce(big); err == nil {
		t.Fatal("25-vertex brute force accepted")
	}
}

func TestSolveAtBitBoundary(t *testing.T) {
	// Exactly 64 vertices: a perfect matching of 32 unit edges, OPT = 32.
	b := graph.NewBuilder(64)
	for i := 0; i < 32; i++ {
		b.AddEdge(graph.Vertex(2*i), graph.Vertex(2*i+1))
	}
	g := b.MustBuild()
	_, w, err := Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 32 {
		t.Fatalf("matching OPT %v, want 32", w)
	}
}
