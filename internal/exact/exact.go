// Package exact computes optimal minimum-weight vertex covers for small
// graphs (n ≤ 64) by branch and bound over bitset-encoded subproblems. It
// supplies the OPT ground truth for the approximation-ratio experiments;
// at larger scales the experiments fall back to the weak-duality lower
// bound Σx_e (Lemma 3.2), which the algorithms certify themselves.
package exact

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/reduce"
	"repro/internal/solver"
)

// MaxVertices is the largest instance Solve accepts.
const MaxVertices = 64

// Solve returns an optimal vertex cover and its weight. It errors when the
// graph has more than MaxVertices vertices. The context is polled every few
// thousand branch-and-bound nodes, so a cancellation or deadline aborts the
// search promptly with ctx.Err().
func Solve(ctx context.Context, g *graph.Graph) ([]bool, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	if n > MaxVertices {
		return nil, 0, tooLarge(ctx, g)
	}
	s := &bb{
		n:       n,
		ctx:     ctx,
		weights: g.Weights(),
		adj:     make([]uint64, n),
		best:    math.Inf(1),
	}
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		s.adj[u] |= 1 << uint(v)
		s.adj[v] |= 1 << uint(u)
	}
	full := uint64(0)
	if n > 0 {
		full = ^uint64(0) >> uint(64-n)
	}
	s.search(full, 0, 0)
	if s.err != nil {
		return nil, 0, s.err
	}
	cover := make([]bool, n)
	for v := 0; v < n; v++ {
		if s.bestSet&(1<<uint(v)) != 0 {
			cover[v] = true
		}
	}
	return cover, s.best, nil
}

// maxProbeEdges caps the instance size tooLarge is willing to kernelize
// for a diagnostic: beyond it the probe could burn seconds of CPU (the
// domination sweep is the costly part) just to format an error string, so
// larger instances get the plain over-limit message instead.
const maxProbeEdges = 2_000_000

// tooLarge builds the over-limit error. For moderately sized instances it
// runs the kernelization once so the message can say whether the instance
// is actually out of reach: a graph whose kernel fits the solver is
// solvable — the caller just has to leave reduction enabled. When Solve was
// handed an already-reduced kernel (the pipeline's case), reducing again is
// a fixpoint no-op and the message correctly reports the kernel as still
// too large. An error-path-only cost, bounded by maxProbeEdges and the
// context.
func tooLarge(ctx context.Context, g *graph.Graph) error {
	n := g.NumVertices()
	if g.NumEdges() > maxProbeEdges {
		return fmt.Errorf("exact: %d vertices exceed the %d-vertex solver limit: %w", n, MaxVertices, solver.ErrUnsupported)
	}
	red, err := reduce.Run(ctx, g)
	if err != nil {
		return fmt.Errorf("exact: %d vertices exceed the %d-vertex solver limit: %w", n, MaxVertices, solver.ErrUnsupported)
	}
	k := red.Stats.KernelVertices
	if k < n && k <= MaxVertices {
		return fmt.Errorf("exact: %d vertices exceed the %d-vertex solver limit, but the instance reduces to a %d-vertex kernel — enable reduction (mwvc.WithReduction, the default; CLI -reduce) to solve it exactly: %w",
			n, MaxVertices, k, solver.ErrUnsupported)
	}
	return fmt.Errorf("exact: %d vertices exceed the %d-vertex solver limit and the kernel is still too large (%d vertices after reduction): %w",
		n, MaxVertices, k, solver.ErrUnsupported)
}

type bb struct {
	n       int
	ctx     context.Context
	weights []float64
	adj     []uint64
	best    float64
	bestSet uint64
	// nodes counts explored search nodes; every 4096th node polls ctx. err
	// latches the context error and unwinds the recursion.
	nodes uint64
	err   error
}

// search explores the subproblem where `active` vertices are undecided and
// `chosen` (weight `acc`) is the cover so far. All edges with an endpoint
// outside `active` are already covered.
func (s *bb) search(active uint64, chosen uint64, acc float64) {
	if s.err != nil {
		return
	}
	s.nodes++
	if s.nodes&0xFFF == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return
		}
	}
	if acc >= s.best {
		return
	}
	// Drop active vertices with no active neighbors: never needed.
	//lint:allow ctxloop every non-final pass clears >=1 of <=64 active bits, so <=65 trips; search polls ctx every 4096 nodes
	for {
		changed := false
		rest := active
		for rest != 0 {
			v := bits.TrailingZeros64(rest)
			rest &= rest - 1
			if s.adj[v]&active == 0 {
				active &^= 1 << uint(v)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if active == 0 {
		s.best = acc
		s.bestSet = chosen
		return
	}
	// Lower bound: Bar-Yehuda–Even duals on the active subgraph (a feasible
	// fractional matching, hence ≤ OPT of the subproblem by weak duality).
	if acc+s.dualBound(active) >= s.best {
		return
	}
	// Branch on the active vertex with the most active neighbors.
	v, maxDeg := -1, 0
	rest := active
	for rest != 0 {
		u := bits.TrailingZeros64(rest)
		rest &= rest - 1
		if d := bits.OnesCount64(s.adj[u] & active); d > maxDeg {
			maxDeg = d
			v = u
		}
	}
	nbrs := s.adj[v] & active
	// Branch 1: v joins the cover.
	s.search(active&^(1<<uint(v)), chosen|1<<uint(v), acc+s.weights[v])
	// Branch 2: v stays out, so all its active neighbors must join.
	wsum := 0.0
	rest = nbrs
	for rest != 0 {
		u := bits.TrailingZeros64(rest)
		rest &= rest - 1
		wsum += s.weights[u]
	}
	s.search(active&^(nbrs|1<<uint(v)), chosen|nbrs, acc+wsum)
}

// dualBound runs one Bar-Yehuda–Even pass over the active subgraph and
// returns the resulting fractional-matching value — a valid lower bound on
// the subproblem's optimum.
func (s *bb) dualBound(active uint64) float64 {
	residual := make([]float64, s.n)
	rest := active
	for rest != 0 {
		v := bits.TrailingZeros64(rest)
		rest &= rest - 1
		residual[v] = s.weights[v]
	}
	total := 0.0
	rest = active
	for rest != 0 {
		u := bits.TrailingZeros64(rest)
		rest &= rest - 1
		nb := s.adj[u] & active
		for nb != 0 {
			v := bits.TrailingZeros64(nb)
			nb &= nb - 1
			if v <= u { // each undirected edge once
				continue
			}
			d := math.Min(residual[u], residual[v])
			if d > 0 {
				residual[u] -= d
				residual[v] -= d
				total += d
			}
		}
	}
	return total
}

// BruteForce exhaustively minimizes over all 2^n subsets; for cross-checking
// the solver on tiny graphs (n ≤ 24 or it errors).
func BruteForce(g *graph.Graph) ([]bool, float64, error) {
	n := g.NumVertices()
	if n > 24 {
		return nil, 0, fmt.Errorf("exact: brute force limited to 24 vertices, got %d", n)
	}
	type edge struct{ u, v int }
	edges := make([]edge, g.NumEdges())
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		edges[e] = edge{int(u), int(v)}
	}
	best := math.Inf(1)
	bestSet := uint32(0)
	for set := uint32(0); set < 1<<uint(n); set++ {
		w := 0.0
		for v := 0; v < n; v++ {
			if set&(1<<uint(v)) != 0 {
				w += g.Weight(graph.Vertex(v))
			}
		}
		if w >= best {
			continue
		}
		ok := true
		for _, e := range edges {
			if set&(1<<uint(e.u)) == 0 && set&(1<<uint(e.v)) == 0 {
				ok = false
				break
			}
		}
		if ok {
			best = w
			bestSet = set
		}
	}
	cover := make([]bool, n)
	for v := 0; v < n; v++ {
		cover[v] = bestSet&(1<<uint(v)) != 0
	}
	return cover, best, nil
}
