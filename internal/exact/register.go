package exact

import (
	"context"

	"repro/internal/graph"
	"repro/internal/solver"
)

func init() {
	solver.Register(solver.Meta{
		Name:    "exact",
		Rank:    70,
		Tier:    solver.TierExact,
		Summary: "optimal branch-and-bound (n ≤ 64 only)",
	}, solver.Func(solve))
}

func solve(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	cover, _, err := Solve(ctx, g)
	if err != nil {
		return nil, err
	}
	return &solver.Outcome{Cover: cover, Exact: true}, nil
}
