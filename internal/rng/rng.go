// Package rng provides small, fast, deterministic pseudo-random number
// generators with explicit splitting.
//
// The MPC simulation needs randomness that is (a) reproducible from a single
// seed, (b) independently addressable per machine, per phase, per vertex and
// per iteration, and (c) identical between the MPC run and the centralized
// run it is compared against (the coupling experiments of Lemma 4.6 depend on
// both algorithms drawing the *same* thresholds T_{v,t}). A splittable
// generator derived from splitmix64 provides all three: any (seed, label...)
// tuple maps to a stable stream, so the thresholds become a pure function of
// their coordinates rather than a side effect of evaluation order.
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 is the canonical splitmix64 finalizer step. It is a bijection
// on uint64 with excellent avalanche behaviour, which makes it suitable both
// as a PRNG state-advance function and as a mixing/hashing primitive.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix hashes an arbitrary sequence of uint64 labels into a single uint64.
// It is the basis for all stream derivation: Mix(seed, labels...) is a
// stable, order-sensitive combination.
func Mix(seed uint64, labels ...uint64) uint64 {
	h := splitmix64(seed ^ 0x6a09e667f3bcc908)
	for _, l := range labels {
		h = splitmix64(h ^ l)
	}
	return h
}

// Source is a small deterministic PRNG (xoshiro256** seeded via splitmix64).
// The zero value is not useful; create Sources with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var s Source
	s.reseed(seed)
	return &s
}

func (s *Source) reseed(seed uint64) {
	// Expand the 64-bit seed into 256 bits of state with splitmix64, per the
	// xoshiro authors' recommendation. splitmix64 is a bijection, so at least
	// one of the four words is nonzero for every seed.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		return splitmix64(x - 0x9e3779b97f4a7c15)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1 // unreachable, but xoshiro must never be all-zero
	}
}

// Split derives an independent child Source labelled by labels. Children with
// different labels (or derived from different parents) produce independent
// streams; the parent is not advanced.
func (s *Source) Split(labels ...uint64) *Source {
	return New(Mix(s.s0^s.s2, append([]uint64{s.s1 ^ s.s3}, labels...)...))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	thresh := -n % n
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// InRange returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (s *Source) InRange(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: InRange called with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal float64 via the Box–Muller transform.
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		if u1 <= 0 {
			continue
		}
		u2 := s.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap, Fisher–Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// UniformAt returns a uniform float64 in [lo, hi) addressed purely by the
// label tuple: the same (seed, labels, lo, hi) always yields the same value,
// independent of any generator state. This is how the random thresholds
// T_{v,t} of the paper are realized, so that the MPC simulation and the
// centralized reference algorithm observe identical thresholds.
func UniformAt(seed uint64, lo, hi float64, labels ...uint64) float64 {
	u := float64(Mix(seed, labels...)>>11) / (1 << 53)
	return lo + (hi-lo)*u
}

// Bernoulli reports a coin flip with probability p addressed by the label
// tuple, again as a pure function of its arguments.
func Bernoulli(seed uint64, p float64, labels ...uint64) bool {
	u := float64(Mix(seed, labels...)>>11) / (1 << 53)
	return u < p
}

// ChooseAt returns a uniform integer in [0, n) addressed by the label tuple.
// It panics if n <= 0.
func ChooseAt(seed uint64, n int, labels ...uint64) int {
	if n <= 0 {
		panic("rng: ChooseAt called with n <= 0")
	}
	// 64-bit multiply-shift; bias is < 2^-53 for any practical n, and the
	// result remains a pure function of the labels, which is the property
	// the algorithm needs (exact uniformity is not load-bearing here).
	u := float64(Mix(seed, labels...)>>11) / (1 << 53)
	i := int(u * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}
