package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, x, y)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := New(7).Split(1)
	for i := 0; i < 100; i++ {
		v1, v2, v1b := c1.Uint64(), c2.Uint64(), c1again.Uint64()
		if v1 != v1b {
			t.Fatalf("draw %d: split stream not reproducible", i)
		}
		if v1 == v2 {
			t.Fatalf("draw %d: sibling splits collide", i)
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent state")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	s := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v", b, c, want)
		}
	}
}

func TestInRange(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		v := s.InRange(2.5, 3.5)
		if v < 2.5 || v >= 3.5 {
			t.Fatalf("InRange out of bounds: %v", v)
		}
	}
}

func TestInRangeDegenerate(t *testing.T) {
	s := New(8)
	if v := s.InRange(1.0, 1.0); v != 1.0 {
		t.Fatalf("InRange(1,1) = %v, want 1", v)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean %v too far from 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid entry %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestMixOrderSensitive(t *testing.T) {
	if Mix(1, 2, 3) == Mix(1, 3, 2) {
		t.Fatal("Mix is not order sensitive")
	}
	if Mix(1, 2) == Mix(2, 2) {
		t.Fatal("Mix ignores seed")
	}
}

func TestUniformAtPure(t *testing.T) {
	a := UniformAt(99, 0.6, 0.8, 1, 2, 3)
	b := UniformAt(99, 0.6, 0.8, 1, 2, 3)
	if a != b {
		t.Fatalf("UniformAt not pure: %v != %v", a, b)
	}
	if a < 0.6 || a >= 0.8 {
		t.Fatalf("UniformAt out of range: %v", a)
	}
	if c := UniformAt(99, 0.6, 0.8, 1, 2, 4); c == a {
		t.Fatal("UniformAt ignores labels")
	}
}

func TestUniformAtCoversRange(t *testing.T) {
	lo, hi := -4.0, -2.0
	minSeen, maxSeen := math.Inf(1), math.Inf(-1)
	for i := uint64(0); i < 10000; i++ {
		v := UniformAt(7, lo, hi, i)
		if v < lo || v >= hi {
			t.Fatalf("UniformAt(%d) = %v out of [%v,%v)", i, v, lo, hi)
		}
		minSeen = math.Min(minSeen, v)
		maxSeen = math.Max(maxSeen, v)
	}
	if minSeen > lo+0.02 || maxSeen < hi-0.02 {
		t.Fatalf("UniformAt poorly spread: [%v, %v]", minSeen, maxSeen)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	const p, n = 0.3, 100000
	hits := 0
	for i := uint64(0); i < n; i++ {
		if Bernoulli(5, p, i) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-p) > 0.01 {
		t.Fatalf("Bernoulli frequency %v too far from %v", freq, p)
	}
}

func TestChooseAtBounds(t *testing.T) {
	for _, n := range []int{1, 2, 5, 97} {
		counts := make([]int, n)
		for i := uint64(0); i < 2000; i++ {
			v := ChooseAt(13, n, i)
			if v < 0 || v >= n {
				t.Fatalf("ChooseAt(%d) = %d out of range", n, v)
			}
			counts[v]++
		}
		if n > 1 {
			for b, c := range counts {
				if c == 2000 {
					t.Fatalf("ChooseAt(%d) always picks %d", n, b)
				}
			}
		}
	}
}

func TestShuffleDegenerate(t *testing.T) {
	s := New(14)
	s.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	s.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

// Property: Mix is a pure function and collision-free over small structured
// label grids (a weak but fast sanity property).
func TestMixQuickPure(t *testing.T) {
	f := func(seed, a, b uint64) bool {
		return Mix(seed, a, b) == Mix(seed, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixGridCollisions(t *testing.T) {
	seen := make(map[uint64][2]uint64)
	for a := uint64(0); a < 200; a++ {
		for b := uint64(0); b < 200; b++ {
			h := Mix(1, a, b)
			if prev, ok := seen[h]; ok {
				t.Fatalf("Mix collision: (%d,%d) and (%d,%d)", a, b, prev[0], prev[1])
			}
			seen[h] = [2]uint64{a, b}
		}
	}
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	s := New(15)
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkUniformAt(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += UniformAt(1, 0, 1, uint64(i), 7)
	}
	_ = sink
}
