// Package pdfast implements the serve tier's fast path: an O(m) primal–dual
// MWVC 2-approximation over the flat CSR arrays, in a serial and a
// deterministic shared-memory parallel variant.
//
// The algorithm has two stages. Synchronized dual-raising rounds — the
// Khuller–Vishkin–Young deterministic parallel primal–dual technique
// (PAPERS.md, cs/0205037) — sweep the CSR rows in parallel: every live
// vertex posts the uniform per-edge bid gap(v)/liveDeg(v) against its
// residual weight, every live edge's dual rises by the smaller endpoint
// bid, and vertices whose residual is exhausted join the cover. A round
// retires exactly the vertices whose bid is a local minimum, so on
// weight-homogeneous instances one or two sweeps cover almost everything,
// while on weight-heterogeneous instances the retirement rate can stall
// near 1/Δ per round. The stage therefore runs only while productive —
// while a round retires at least a quarter of the live edges — and a
// serial local-ratio tail (the classic Bar-Yehuda–Even edge scan over the
// surviving subgraph, charging min(gap(u), gap(v)) per edge) finishes the
// stragglers in one pass. Total work is O(m) per executed stage and the
// productivity rule caps the synchronized stage at a constant number of
// full sweeps.
//
// Both registered variants (`pdfast`, `pdfast-par`) execute the identical
// computation: within a round every per-vertex step reads only state
// committed before the round (cover bits, bids) and writes only its own
// slots, each edge's dual is written by exactly one endpoint (the smaller
// vertex id), and the tail is serial in both variants. Work partitioning
// therefore cannot change any floating-point operation order, making the
// parallel output bit-for-bit identical to the serial output at any
// GOMAXPROCS. Every covered vertex is exactly saturated in exact
// arithmetic, so the primal weight is at most twice the dual value: the
// returned dual certifies ratio ≤ 2.
package pdfast

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/solver"
)

// parallelCutoff is the live-list length below which a sweep runs serially;
// spawning goroutines for a few hundred vertices costs more than the scan.
const parallelCutoff = 2048

// roundCutoff is the edge count below which the synchronized stage is
// skipped entirely: on small graphs the tail's single serial scan beats any
// round bookkeeping.
const roundCutoff = 4096

// Result bundles what one Run produces: the cover, the feasible fractional
// matching certifying it, and the round count.
type Result struct {
	// Cover marks the chosen vertices.
	Cover []bool
	// Duals is the feasible fractional matching raised alongside the cover;
	// by weak duality its sum lower-bounds OPT, certifying ratio ≤ 2.
	Duals []float64
	// Rounds is the number of synchronized dual-raising rounds executed
	// before the serial tail.
	Rounds int
}

// state is the solver's working memory: seven flat arrays allocated once at
// entry, none of which grow afterwards.
type state struct {
	g       *graph.Graph
	gap     []float64      // residual weight per vertex
	bid     []float64      // this round's uniform per-edge offer per vertex
	cover   []bool         // committed cover bits (stable within a round)
	sat     []bool         // saturation flags raised during the settle sweep
	liveDeg []int32        // uncovered-neighbor count, maintained incrementally
	live    []graph.Vertex // compacted list of undecided vertices
	x       []float64      // dual variable per edge
}

// Run executes the two-stage primal–dual algorithm on g with the given
// sweep parallelism (values < 1 mean GOMAXPROCS) and returns the cover with
// its dual certificate. The result is identical for every workers value.
// Cancellation is polled once per round and once before the tail.
func Run(ctx context.Context, g *graph.Graph, workers int, obs solver.Observer) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	s := &state{
		g:       g,
		gap:     make([]float64, n),
		bid:     make([]float64, n),
		cover:   make([]bool, n),
		sat:     make([]bool, n),
		liveDeg: make([]int32, n),
		live:    make([]graph.Vertex, 0, n),
		x:       make([]float64, g.NumEdges()),
	}
	copy(s.gap, g.Weights())
	liveEdges := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(graph.Vertex(v)); d > 0 {
			s.liveDeg[v] = int32(d)
			s.live = append(s.live, graph.Vertex(v))
			liveEdges += d
		}
	}
	liveEdges /= 2

	rounds := 0
	for liveEdges >= roundCutoff {
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Post this round's bids. liveDeg is maintained incrementally, so
		// this is O(live vertices), not an edge sweep.
		for _, v := range s.live {
			s.bid[v] = s.gap[v] / float64(s.liveDeg[v])
		}

		// Settle sweep (the parallel part): raise each live edge's dual by
		// the smaller endpoint bid and flag exhausted vertices.
		s.sweep(workers)
		rounds++

		// Commit: apply the saturation flags, retire the covered vertices'
		// edges from their neighbors' live degrees, and compact the live
		// list. Serial, so the next round's sweep reads a stable cover.
		for _, v := range s.live {
			if s.sat[v] {
				s.cover[v] = true
			}
		}
		for _, v := range s.live {
			if s.sat[v] {
				for _, u := range g.Neighbors(v) {
					if !s.cover[u] {
						s.liveDeg[u]--
					}
				}
			}
		}
		keep := s.live[:0]
		remaining := 0
		for _, v := range s.live {
			if !s.cover[v] && s.liveDeg[v] > 0 {
				keep = append(keep, v)
				remaining += int(s.liveDeg[v])
			}
		}
		s.live = keep
		remaining /= 2

		solver.Emit(obs, solver.Event{
			Kind:        solver.KindRound,
			Round:       rounds,
			ActiveEdges: int64(remaining),
		})

		// Productivity rule: another synchronized round must be earned by
		// this one retiring at least a quarter of the live edges; otherwise
		// the serial tail is cheaper. Instance-dependent only — workers
		// never influence the stage boundary.
		productive := remaining <= liveEdges-liveEdges/4
		liveEdges = remaining
		if !productive {
			break
		}
	}

	if len(s.live) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.tail()
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindFinalPhase,
			Round:       rounds,
			ActiveEdges: int64(liveEdges),
		})
	}
	return &Result{Cover: s.cover, Duals: s.x, Rounds: rounds}, nil
}

// sweep runs the settle kernel over the live list, split into contiguous
// chunks across workers. Every chunk writes only its own vertices' slots
// plus dual slots owned by exactly one endpoint, so the chunk boundaries
// cannot affect the result.
func (s *state) sweep(workers int) {
	m := len(s.live)
	if workers <= 1 || m < parallelCutoff {
		s.settleRange(0, m)
		return
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s.settleRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// settleRange is the synchronized-round kernel: for each live vertex it
// scans its CSR row in index order, charges min(bid[v], bid[u]) per live
// edge, and raises the edge dual from the smaller endpoint only (the
// single-writer rule that keeps chunked execution race-free and
// order-independent). A vertex whose every live edge charged its own bid is
// exactly saturated in exact arithmetic; the residual test backstops
// floating-point drift.
//
//mwvc:hotpath
func (s *state) settleRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		v := s.live[i]
		nbrs := s.g.Neighbors(v)
		ids := s.g.IncidentEdges(v)
		bv := s.bid[v]
		charge := 0.0
		full := true
		for j, u := range nbrs {
			if s.cover[u] {
				continue
			}
			d := bv
			if bu := s.bid[u]; bu < bv {
				d = bu
				full = false
			}
			charge += d
			if v < u {
				s.x[ids[j]] += d
			}
		}
		if full {
			s.sat[v] = true
			s.gap[v] = 0
			continue
		}
		rest := s.gap[v] - charge
		if rest > 0 {
			s.gap[v] = rest
		} else {
			s.sat[v] = true
			s.gap[v] = 0
		}
	}
}

// tail is the serial local-ratio finish: one Bar-Yehuda–Even pass over the
// surviving subgraph in vertex-id order, charging δ = min(gap[u], gap[v])
// per live edge. Subtracting the minimum zeroes the smaller residual
// exactly (a − a = 0 in floating point), so saturation here is bitwise
// exact. Both variants run this stage serially, which is what makes the
// parallel output identical to the serial one.
//
//mwvc:hotpath
func (s *state) tail() {
	for _, v := range s.live {
		if s.cover[v] {
			continue
		}
		nbrs := s.g.Neighbors(v)
		ids := s.g.IncidentEdges(v)
		for j, u := range nbrs {
			if u < v || s.cover[u] {
				continue
			}
			d := s.gap[v]
			if s.gap[u] < d {
				d = s.gap[u]
			}
			s.x[ids[j]] += d
			s.gap[v] -= d
			s.gap[u] -= d
			if s.gap[u] <= 0 {
				s.cover[u] = true
			}
			if s.gap[v] <= 0 {
				s.cover[v] = true
				break
			}
		}
	}
}
