package pdfast

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/verify"
)

func testGraph(seed uint64, n int, d float64) *graph.Graph {
	return gen.ApplyWeights(gen.GnpAvgDegree(seed, n, d), seed+1, gen.UniformRange{Lo: 1, Hi: 100})
}

func TestCoverAndCertificate(t *testing.T) {
	g := testGraph(3, 2000, 16)
	res, err := Run(context.Background(), g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := verify.NewCertificate(g, res.Cover, res.Duals)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Ratio() > 2+1e-9 {
		t.Fatalf("certified ratio %v exceeds 2", cert.Ratio())
	}
	if res.Rounds <= 0 || res.Rounds > g.NumVertices() {
		t.Fatalf("implausible round count %d", res.Rounds)
	}
}

func TestStarTakesCheapCenter(t *testing.T) {
	b := graph.NewBuilder(11)
	b.SetWeight(0, 1)
	for v := 1; v < 11; v++ {
		b.SetWeight(graph.Vertex(v), 100)
		b.AddEdge(0, graph.Vertex(v))
	}
	g := b.MustBuild()
	res, err := Run(context.Background(), g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cover[0] {
		t.Fatal("pdfast skipped the cheap star center")
	}
	if w := verify.CoverWeight(g, res.Cover); w > 2+1e-9 {
		t.Fatalf("star cover weight %v, want ≤ 2", w)
	}
}

func TestParallelBitIdentical(t *testing.T) {
	g := testGraph(7, 5000, 24)
	serial, err := Run(context.Background(), g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 13} {
		par, err := Run(context.Background(), g, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if par.Rounds != serial.Rounds {
			t.Fatalf("workers=%d: rounds %d != serial %d", workers, par.Rounds, serial.Rounds)
		}
		for v := range serial.Cover {
			if par.Cover[v] != serial.Cover[v] {
				t.Fatalf("workers=%d: cover differs at vertex %d", workers, v)
			}
		}
		for e := range serial.Duals {
			if math.Float64bits(par.Duals[e]) != math.Float64bits(serial.Duals[e]) {
				t.Fatalf("workers=%d: dual differs at edge %d: %v != %v",
					workers, e, par.Duals[e], serial.Duals[e])
			}
		}
	}
}

func TestEdgelessAndEmpty(t *testing.T) {
	empty, err := graph.FromEdgeList(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), empty, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 0 || res.Rounds != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
	lone, err := graph.FromEdgeList(5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Run(context.Background(), lone, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range res.Cover {
		if in {
			t.Fatalf("edgeless vertex %d in cover", v)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testGraph(1, 100, 4), 1, nil); err == nil {
		t.Fatal("cancelled Run returned nil error")
	}
}

func TestObserverRounds(t *testing.T) {
	// Big enough to clear roundCutoff, so both stages emit.
	g := testGraph(5, 4000, 16)
	var rounds, finals int
	obs := solver.ObserverFunc(func(e solver.Event) {
		switch e.Kind {
		case solver.KindRound:
			rounds++
			if e.Round != rounds {
				t.Fatalf("round event out of order: %+v", e)
			}
		case solver.KindFinalPhase:
			finals++
		default:
			t.Fatalf("unexpected event %+v", e)
		}
	})
	res, err := Run(context.Background(), g, 1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.Rounds || res.Rounds < 1 {
		t.Fatalf("%d round events for %d reported rounds", rounds, res.Rounds)
	}
	if finals > 1 {
		t.Fatalf("%d final-phase events", finals)
	}
}

// TestSteadyStateAllocations pins the near-zero-allocation claim: a solve
// allocates its seven flat arrays plus fixed bookkeeping, never per-edge or
// per-round memory on the serial path.
func TestSteadyStateAllocations(t *testing.T) {
	g := testGraph(9, 4000, 32)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(context.Background(), g, 1, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Fatalf("serial Run allocates %v objects per solve, want ≤ 12", allocs)
	}
}

func TestRegistered(t *testing.T) {
	for _, name := range []string{"pdfast", "pdfast-par"} {
		reg, ok := solver.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if reg.Tier != solver.TierFast {
			t.Fatalf("%s tier %q, want %q", name, reg.Tier, solver.TierFast)
		}
		g := testGraph(11, 300, 6)
		out, err := reg.Solver.Solve(context.Background(), g, solver.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := verify.NewCertificate(g, out.Cover, out.Duals); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
