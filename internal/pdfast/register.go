package pdfast

import (
	"context"
	"runtime"

	"repro/internal/graph"
	"repro/internal/solver"
)

func init() {
	solver.Register(solver.Meta{
		Name:    "pdfast",
		Rank:    25,
		Tier:    solver.TierFast,
		Summary: "O(m) primal–dual CSR sweep, certified 2-approximation (serve fast tier)",
	}, solver.Func(solveSerial))
	solver.Register(solver.Meta{
		Name:    "pdfast-par",
		Rank:    26,
		Tier:    solver.TierFast,
		Summary: "parallel pdfast (KVY sweeps, bit-identical to serial at any GOMAXPROCS)",
	}, solver.Func(solveParallel))
}

// solveSerial runs the round-synchronized sweep with plain serial loops.
func solveSerial(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	return solve(ctx, g, 1, cfg)
}

// solveParallel runs the identical computation with chunked sweeps across
// cfg.Parallelism workers (0 = GOMAXPROCS). Chunk boundaries cannot change
// any floating-point operation order, so the outcome matches solveSerial
// bit for bit.
func solveParallel(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return solve(ctx, g, workers, cfg)
}

func solve(ctx context.Context, g *graph.Graph, workers int, cfg solver.Config) (*solver.Outcome, error) {
	res, err := Run(ctx, g, workers, cfg.Observer)
	if err != nil {
		return nil, err
	}
	return &solver.Outcome{Cover: res.Cover, Duals: res.Duals, Rounds: res.Rounds}, nil
}
