package pdfast

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// benchGraph is the 1,047,265-edge instance of the n64k_d32_pdfast BENCH
// tier, shared across benchmark iterations.
var benchGraph *graph.Graph

func getBenchGraph(b *testing.B) *graph.Graph {
	if benchGraph == nil {
		benchGraph = gen.ApplyWeights(gen.GnpAvgDegree(1, 1<<16, 32), 2, gen.UniformRange{Lo: 1, Hi: 100})
	}
	return benchGraph
}

func BenchmarkRunSerial(b *testing.B) {
	g := getBenchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), g, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunParallel(b *testing.B) {
	g := getBenchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), g, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}
