package pdfast

import (
	"context"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/verify"
)

// FuzzPrimalDual decodes arbitrary bytes into a small weighted graph and
// pins the solver's safety invariants on it: the returned cover covers
// every edge, the dual is feasible on every vertex, the primal is within
// the certified 2× of the dual bound, and the parallel variant is
// bit-identical to serial. The decoder is total — every input maps to some
// valid instance — so the fuzzer spends its budget on solver states
// (ties, stars, near-saturated weights), not on parser rejections.
func FuzzPrimalDual(f *testing.F) {
	f.Add([]byte{7, 0, 1, 3, 1, 2, 9, 2, 3, 1})
	f.Add([]byte{200, 1, 2, 255, 2, 3, 255, 3, 4, 255, 4, 5, 255})
	f.Add([]byte{16, 0, 1, 1, 0, 2, 1, 0, 3, 1, 0, 4, 1}) // star, unit-ish weights
	f.Add([]byte{3, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})  // heavy duplicate edges
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		n := 2 + int(data[0])%96
		b := graph.NewBuilder(n)
		// Each 3-byte window contributes one edge; the third byte doubles as
		// a weight nudge so equal-weight ties and 2^k exact weights both
		// occur naturally.
		for i := 1; i+2 < len(data); i += 3 {
			u := graph.Vertex(int(data[i]) % n)
			v := graph.Vertex(int(data[i+1]) % n)
			if u != v {
				b.AddEdge(u, v)
			}
			w := 0.125 + float64(data[i+2])/16
			b.SetWeight(v, w)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("decoder produced an invalid instance: %v", err)
		}

		res, err := Run(context.Background(), g, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok, witness := verify.IsCover(g, res.Cover); !ok {
			t.Fatalf("edge %d uncovered", witness)
		}
		if err := verify.DualFeasible(g, res.Duals); err != nil {
			t.Fatal(err)
		}
		primal := verify.CoverWeight(g, res.Cover)
		dual := verify.DualValue(res.Duals)
		if primal > 2*dual*(1+verify.Tolerance)+verify.Tolerance {
			t.Fatalf("primal %v exceeds 2×dual %v", primal, 2*dual)
		}

		par, err := Run(context.Background(), g, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if par.Rounds != res.Rounds {
			t.Fatalf("parallel rounds %d != serial %d", par.Rounds, res.Rounds)
		}
		for v := range res.Cover {
			if par.Cover[v] != res.Cover[v] {
				t.Fatalf("parallel cover diverges at vertex %d", v)
			}
		}
		for e := range res.Duals {
			if math.Float64bits(par.Duals[e]) != math.Float64bits(res.Duals[e]) {
				t.Fatalf("parallel dual diverges at edge %d", e)
			}
		}
	})
}
