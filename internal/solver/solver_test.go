package solver

import (
	"context"
	"testing"

	"repro/internal/graph"
)

func noop(ctx context.Context, g *graph.Graph, cfg Config) (*Outcome, error) {
	return &Outcome{Cover: make([]bool, g.NumVertices())}, nil
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegisterRejectsBadRegistrations(t *testing.T) {
	mustPanic(t, "empty name", func() { Register(Meta{}, Func(noop)) })
	mustPanic(t, "nil solver", func() { Register(Meta{Name: "test-nil"}, nil) })

	mustPanic(t, "unknown tier", func() { Register(Meta{Name: "test-tierless"}, Func(noop)) })

	Register(Meta{Name: "test-dup", Rank: 1000, Tier: TierFast}, Func(noop))
	mustPanic(t, "duplicate name", func() {
		Register(Meta{Name: "test-dup", Tier: TierFast}, Func(noop))
	})
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-solver"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

func TestRegistrationsOrdered(t *testing.T) {
	Register(Meta{Name: "test-z", Rank: 2000, Tier: TierExact}, Func(noop))
	Register(Meta{Name: "test-a", Rank: 2001, Tier: TierAccurate}, Func(noop))
	regs := Registrations()
	for i := 1; i < len(regs); i++ {
		a, b := regs[i-1], regs[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Name > b.Name) {
			t.Fatalf("registrations out of order: %q(rank %d) before %q(rank %d)",
				a.Name, a.Rank, b.Name, b.Rank)
		}
	}
	if got, want := len(Names()), len(regs); got != want {
		t.Fatalf("Names() returned %d entries, Registrations() %d", got, want)
	}
}

func TestByTier(t *testing.T) {
	Register(Meta{Name: "test-fast-b", Rank: 3001, Tier: TierFast}, Func(noop))
	Register(Meta{Name: "test-fast-a", Rank: 3000, Tier: TierFast}, Func(noop))
	fast := ByTier(TierFast)
	var mine []string
	for _, r := range fast {
		if r.Tier != TierFast {
			t.Fatalf("ByTier(fast) returned %q with tier %q", r.Name, r.Tier)
		}
		if r.Name == "test-fast-a" || r.Name == "test-fast-b" {
			mine = append(mine, r.Name)
		}
	}
	if len(mine) != 2 || mine[0] != "test-fast-a" {
		t.Fatalf("ByTier order wrong: %v", mine)
	}
	if len(ByTier("no-such-tier")) != 0 {
		t.Fatal("ByTier invented registrations for an unknown tier")
	}
}

func TestMultiObserverAndEmit(t *testing.T) {
	var a, b int
	obs := MultiObserver(
		ObserverFunc(func(Event) { a++ }),
		nil,
		ObserverFunc(func(Event) { b++ }),
	)
	Emit(obs, Event{Kind: KindRound})
	Emit(nil, Event{Kind: KindRound}) // must not panic
	if a != 1 || b != 1 {
		t.Fatalf("fan-out counts a=%d b=%d, want 1/1", a, b)
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{KindPhaseStart, KindRound, KindPhaseEnd, KindFinalPhase} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}
