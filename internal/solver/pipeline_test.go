package solver

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/verify"
)

// pendantStar builds a >trivial instance the rules fully collapse: one cheap
// hub, many heavy leaves (unit hub weight, leaf weight 3).
func pendantStar(t *testing.T, leaves int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(leaves + 1)
	for l := 1; l <= leaves; l++ {
		b.SetWeight(graph.Vertex(l), 3)
		b.AddEdge(0, graph.Vertex(l))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// recordingSolver counts invocations and remembers the instance it saw.
type recordingSolver struct {
	calls int
	sawN  int
	out   *Outcome
	err   error
}

func (r *recordingSolver) Solve(ctx context.Context, g *graph.Graph, cfg Config) (*Outcome, error) {
	r.calls++
	r.sawN = g.NumVertices()
	if r.err != nil {
		return nil, r.err
	}
	if r.out != nil {
		return r.out, nil
	}
	cover := make([]bool, g.NumVertices())
	for i := range cover {
		cover[i] = true
	}
	return &Outcome{Cover: cover}, nil
}

func TestPipelineEmitsReduceEvents(t *testing.T) {
	g := pendantStar(t, 10)
	var kinds []EventKind
	var edges []int64
	cfg := Config{Observer: ObserverFunc(func(e Event) {
		kinds = append(kinds, e.Kind)
		edges = append(edges, e.ActiveEdges)
	})}
	rec := &recordingSolver{}
	res, err := Pipeline{Solver: rec, Reduce: true, Config: cfg}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 2 || kinds[0] != KindReduceStart || kinds[1] != KindReduceEnd {
		t.Fatalf("event kinds %v, want [reduce-start reduce-end]", kinds)
	}
	if edges[0] != 10 || edges[1] != 0 {
		t.Fatalf("event edge counts %v, want [10 0]", edges)
	}
	if rec.calls != 0 {
		t.Fatalf("solver ran %d times on a fully reduced instance, want 0", rec.calls)
	}
	if !res.Exact || res.Weight != 1 || res.CertifiedRatio != 1 {
		t.Fatalf("fully reduced star: exact=%v weight=%v ratio=%v, want true/1/1",
			res.Exact, res.Weight, res.CertifiedRatio)
	}
	if res.Reduction == nil || res.Reduction.Pendant == 0 || res.Reduction.ReduceNS <= 0 {
		t.Fatalf("reduction stats missing or incomplete: %+v", res.Reduction)
	}
}

func TestPipelineSolvesKernelNotOriginal(t *testing.T) {
	// A cheap hub with 20 heavy pendants (collapses) plus a disjoint
	// irreducible path weighted 1-10-10-1 (cheap ends refuse the pendant
	// rule, middle weights refuse neighborhood and domination): the solver
	// must see exactly the 4-vertex path.
	b := graph.NewBuilder(25)
	b.SetWeight(0, 2)
	for l := 1; l <= 20; l++ {
		b.SetWeight(graph.Vertex(l), 100)
		b.AddEdge(0, graph.Vertex(l))
	}
	pathW := []float64{1, 10, 10, 1}
	for i, w := range pathW {
		b.SetWeight(graph.Vertex(21+i), w)
	}
	b.AddEdge(21, 22).AddEdge(22, 23).AddEdge(23, 24)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingSolver{}
	res, err := Pipeline{Solver: rec, Reduce: true}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rec.calls != 1 || rec.sawN != 4 {
		t.Fatalf("solver saw n=%d (calls %d); want the 4-vertex kernel once", rec.sawN, rec.calls)
	}
	if ok, _ := verify.IsCover(g, res.Cover); !ok {
		t.Fatal("lifted cover does not cover the original")
	}
	if len(res.Cover) != 25 {
		t.Fatalf("cover length %d, want the original 25", len(res.Cover))
	}
}

func TestPipelineWithoutReduceIsDirect(t *testing.T) {
	g := pendantStar(t, 10)
	var sawEvent bool
	rec := &recordingSolver{}
	res, err := Pipeline{Solver: rec, Reduce: false, Config: Config{
		Observer: ObserverFunc(func(Event) { sawEvent = true }),
	}}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rec.calls != 1 || rec.sawN != 11 {
		t.Fatalf("solver saw n=%d (calls %d), want the raw 11", rec.sawN, rec.calls)
	}
	if sawEvent {
		t.Fatal("reduce events emitted with reduction disabled")
	}
	if res.Reduction != nil {
		t.Fatal("reduction stats attached with reduction disabled")
	}
	if !math.IsInf(res.CertifiedRatio, 1) {
		t.Fatalf("certificate-free ratio %v, want +Inf", res.CertifiedRatio)
	}
}

func TestPipelineRejectsInvalidLiftedCover(t *testing.T) {
	// The verify stage runs on the original graph: a solver returning a
	// non-cover must be caught. A 5-cycle with increasing weights resists
	// every rule, so the kernel is the original and an all-false "cover"
	// leaves every edge uncovered.
	b := graph.NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.SetWeight(graph.Vertex(i), float64(2+i))
		b.AddEdge(graph.Vertex(i), graph.Vertex((i+1)%5))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	empty := &recordingSolver{out: &Outcome{Cover: make([]bool, 5)}}
	if _, err := (Pipeline{Solver: empty, Reduce: true}).Run(context.Background(), g); err == nil {
		t.Fatal("non-cover passed verification")
	}
	if empty.sawN != 5 {
		t.Fatalf("solver saw n=%d, want the irreducible 5-cycle", empty.sawN)
	}
}

func TestPipelinePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := &recordingSolver{}
	if _, err := (Pipeline{Solver: rec, Reduce: true}).Run(ctx, pendantStar(t, 3)); err == nil {
		t.Fatal("pre-cancelled context accepted")
	}
	if rec.calls != 0 {
		t.Fatal("solver ran despite pre-cancelled context")
	}
}

// irreduciblePlusSlack builds an instance whose kernel is nontrivial and
// whose all-vertices solver cover leaves the improvement stage real work:
// an irreducible 5-cycle (increasing weights) — the rules keep it intact.
func irreducibleCycle(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.SetWeight(graph.Vertex(i), float64(2+i))
		b.AddEdge(graph.Vertex(i), graph.Vertex((i+1)%5))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPipelineImproveStage: with a budget set, the improvement stage runs on
// the kernel, the lifted cover weight drops below the unimproved solve, the
// dual-free result stays verified, and the event stream brackets strictly
// decreasing improve-step weights.
func TestPipelineImproveStage(t *testing.T) {
	g := irreducibleCycle(t)
	base, err := Pipeline{Solver: &recordingSolver{}, Reduce: true}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	cfg := Config{
		ImproveBudget: time.Minute,
		Observer:      ObserverFunc(func(e Event) { events = append(events, e) }),
	}
	res, err := Pipeline{Solver: &recordingSolver{}, Reduce: true, Config: cfg}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := verify.IsCover(g, res.Cover); !ok {
		t.Fatal("improved lifted cover invalid on the original")
	}
	if res.Weight >= base.Weight {
		t.Fatalf("improvement did not reduce the all-vertices cover: %v >= %v", res.Weight, base.Weight)
	}
	if math.Float64bits(res.Bound) != math.Float64bits(base.Bound) {
		t.Fatalf("improvement moved the dual bound: %v vs %v", res.Bound, base.Bound)
	}
	if res.Improvement == nil || res.Improvement.Steps == 0 {
		t.Fatalf("improvement stats missing: %+v", res.Improvement)
	}
	if res.Improvement.WeightAfter >= res.Improvement.WeightBefore {
		t.Fatalf("stats claim no improvement: %+v", res.Improvement)
	}

	// Event stream: reduce-start, reduce-end, improve-start, steps..., improve-end.
	var improveKinds []EventKind
	var stepWeights []float64
	for _, e := range events {
		switch e.Kind {
		case KindImproveStart, KindImproveStep, KindImproveEnd:
			improveKinds = append(improveKinds, e.Kind)
			if e.Kind == KindImproveStep {
				stepWeights = append(stepWeights, e.Weight)
			}
		}
	}
	if len(improveKinds) < 3 || improveKinds[0] != KindImproveStart ||
		improveKinds[len(improveKinds)-1] != KindImproveEnd {
		t.Fatalf("improve event bracket wrong: %v", improveKinds)
	}
	if len(stepWeights) != res.Improvement.Steps {
		t.Fatalf("%d step events, stats say %d steps", len(stepWeights), res.Improvement.Steps)
	}
	for i := 1; i < len(stepWeights); i++ {
		if stepWeights[i] >= stepWeights[i-1] {
			t.Fatalf("step weights not strictly decreasing: %v", stepWeights)
		}
	}
	if last := events[len(events)-1]; last.Kind != KindImproveEnd ||
		math.Float64bits(last.Weight) != math.Float64bits(res.Improvement.WeightAfter) {
		t.Fatalf("improve-end weight %v, want %v", last.Weight, res.Improvement.WeightAfter)
	}
}

// TestPipelineImproveSkipsExact: an exact outcome bypasses the improvement
// stage entirely — no events, no stats.
func TestPipelineImproveSkipsExact(t *testing.T) {
	g := pendantStar(t, 10) // fully reduced: empty kernel, Exact outcome
	var sawImprove bool
	cfg := Config{
		ImproveBudget: time.Minute,
		Observer: ObserverFunc(func(e Event) {
			switch e.Kind {
			case KindImproveStart, KindImproveStep, KindImproveEnd:
				sawImprove = true
			}
		}),
	}
	rec := &recordingSolver{}
	res, err := Pipeline{Solver: rec, Reduce: true, Config: cfg}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("star did not reduce to an exact result")
	}
	if sawImprove || res.Improvement != nil {
		t.Fatal("improvement stage ran on an exact result")
	}
}

// TestPipelineZeroBudgetIdentical: ImproveBudget zero is the PR 5 pipeline,
// bit for bit — no stats, no events, same floats.
func TestPipelineZeroBudgetIdentical(t *testing.T) {
	g := irreducibleCycle(t)
	want, err := Pipeline{Solver: &recordingSolver{}, Reduce: true}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Pipeline{Solver: &recordingSolver{}, Reduce: true, Config: Config{ImproveBudget: 0}}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Improvement != nil {
		t.Fatal("zero budget attached improvement stats")
	}
	if math.Float64bits(got.Weight) != math.Float64bits(want.Weight) ||
		math.Float64bits(got.Bound) != math.Float64bits(want.Bound) {
		t.Fatal("zero budget changed the result")
	}
	for v := range want.Cover {
		if got.Cover[v] != want.Cover[v] {
			t.Fatalf("cover bit %d differs", v)
		}
	}
}
