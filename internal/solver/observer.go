package solver

// EventKind tags a solve-progress event.
type EventKind int

const (
	// KindPhaseStart fires when a sampled phase of a round-compression
	// algorithm begins (AlgoMPC, AlgoGGK).
	KindPhaseStart EventKind = iota
	// KindRound fires after each accounted communication round (MPC cluster
	// round, congested-clique round) or, for the LOCAL baselines, after each
	// iteration — the two coincide there by definition. For solvers that
	// account rounds per communication step (mpc, centralized, local-uniform,
	// congested-clique) the number of KindRound events equals the final
	// Outcome.Rounds.
	KindRound
	// KindPhaseEnd fires when a sampled phase completes, carrying the
	// post-phase active-edge count and the running dual total.
	KindPhaseEnd
	// KindFinalPhase fires once, after the final (single-machine) phase of a
	// round-compression algorithm finishes.
	KindFinalPhase
	// KindReduceStart fires when the pipeline's kernelization stage begins,
	// carrying the original edge count in ActiveEdges.
	KindReduceStart
	// KindReduceEnd fires when the kernelization stage completes, carrying
	// the kernel edge count in ActiveEdges. Subsequent solve events refer to
	// the kernel instance.
	KindReduceEnd
	// KindImproveStart fires when the pipeline's anytime improvement stage
	// begins, carrying the cover weight entering the stage in Weight (on the
	// solved instance — the kernel when reduction ran).
	KindImproveStart
	// KindImproveStep fires after every accepted improvement move, carrying
	// the 1-based accepted-move count in Round and the cover weight after
	// the move in Weight. The stream is strictly decreasing in Weight.
	KindImproveStep
	// KindImproveEnd fires when the improvement stage completes (converged,
	// budget expired, or cancelled), carrying the final cover weight in
	// Weight and the total accepted-move count in Round.
	KindImproveEnd
	// KindCompress fires once per compressed MPC round of the
	// round-compressed solver (AlgoMPCCompress), after the round's sampled
	// LOCAL simulation has been reconciled: Iterations carries the number of
	// simulated LOCAL rounds executed inside the gathered groups, Machines
	// the group count, Phase the compressed-round index, Round the
	// cumulative cluster rounds, and ActiveEdges/DualBound the post-round
	// state.
	KindCompress
)

// String returns the kind's wire name (used by CLI traces and the solve
// service's SSE event names).
func (k EventKind) String() string {
	switch k {
	case KindPhaseStart:
		return "phase-start"
	case KindRound:
		return "round"
	case KindPhaseEnd:
		return "phase-end"
	case KindFinalPhase:
		return "final-phase"
	case KindReduceStart:
		return "reduce-start"
	case KindReduceEnd:
		return "reduce-end"
	case KindImproveStart:
		return "improve-start"
	case KindImproveStep:
		return "improve-step"
	case KindImproveEnd:
		return "improve-end"
	case KindCompress:
		return "compress"
	default:
		return "unknown"
	}
}

// Event is one solve-progress observation. Fields that do not apply to the
// emitting solver or kind are zero; ActiveEdges uses -1 for "not measured".
type Event struct {
	Kind EventKind
	// Phase is the phase index for phase-scoped events; -1 when the event is
	// not tied to a phase.
	Phase int
	// Round is the cumulative accounted round/iteration count at the time of
	// the event.
	Round int
	// ActiveEdges is the number of edges still active (nonfrozen) after the
	// event, or -1 when the emitting round does not measure it.
	ActiveEdges int64
	// DualBound is the running total Σ_e x_e over finalized dual variables.
	// It becomes the weak-duality lower bound after feasibility rescaling;
	// mid-solve it is a raw progress indicator, not a certified bound.
	DualBound float64
	// Degree is the degree scale driving a phase: average residual degree
	// for the MPC algorithm, maximum active degree for GGK.
	Degree float64
	// Machines and Iterations echo the phase parameters (m and I) for
	// phase-start events, and the final-phase iteration count for
	// KindFinalPhase.
	Machines   int
	Iterations int
	// Weight is the current cover weight for the improvement-stage events
	// (KindImproveStart/Step/End); 0 elsewhere.
	Weight float64
}

// Observer receives solve-progress events. Implementations must be fast and
// must not retain the Event past the call; solvers invoke them synchronously
// from the solve loop.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts an ordinary function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// MultiObserver fans events out to several observers in order, skipping nils.
func MultiObserver(obs ...Observer) Observer {
	return ObserverFunc(func(e Event) {
		for _, o := range obs {
			if o != nil {
				o.OnEvent(e)
			}
		}
	})
}

// Emit sends e to o when o is non-nil; the nil check keeps call sites in the
// solver hot loops branch-cheap and uncluttered.
func Emit(o Observer, e Event) {
	if o != nil {
		o.OnEvent(e)
	}
}
