// Package solver defines the pluggable-solver contract shared by every
// algorithm package in the repository and the registry the public facade
// dispatches through.
//
// Each algorithm package (core, centralized, baselines, cclique, ggk,
// exact) registers a named Solver from an init function in its
// register.go; the facade (package mwvc), the CLI -algo flag, and the
// Algorithms() listing all derive from the one registration table, so they
// cannot drift. Config carries the cross-algorithm parameters (ε, seed,
// parallelism, constants preset); Outcome is what a solver returns before
// the facade verifies it.
//
// Pipeline stages every facade solve: Reduce (weighted kernelization,
// internal/reduce) → Solve (the registered algorithm, on the kernel) →
// Lift (cover and duals back to original ids) → Verify (always against the
// original graph). With reduction disabled the pipeline is the direct
// solve path bit for bit; with it enabled, kernel stats thread through
// Outcome into the facade's Solution.
//
// The package sits below every algorithm package (it imports only
// internal/graph, internal/reduce and internal/verify), which is what lets
// the algorithm packages both implement the interface and emit Observer
// events without import cycles.
//
// # Observer stream
//
// Solvers report progress through the Observer/Event stream defined here:
// phase starts and ends, per-round active-edge counts, the running dual
// bound. The same events back `cmd/mwvc -trace`, the solve service's SSE
// trace endpoint, and the experiment tables — one instrumentation point,
// three consumers. See docs/ARCHITECTURE.md for where the registry sits in
// the system.
package solver
