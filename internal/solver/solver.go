package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/reduce"
)

// ErrUnsupported marks a solve error caused by the request itself — an
// instance or parameter outside the algorithm's domain (exact beyond its
// vertex limit, ggk on a weighted graph, ε out of range) rather than an
// internal failure. Solvers wrap it with %w at their input-validation
// sites; servers classify such failures as client errors via errors.Is.
var ErrUnsupported = errors.New("unsupported instance or parameters")

// Config carries the cross-algorithm solve parameters. Solvers ignore fields
// that do not apply to them (e.g. Parallelism outside the MPC simulation).
type Config struct {
	// Epsilon is the accuracy parameter for the primal–dual algorithms; the
	// facade defaults it to 0.1.
	Epsilon float64
	// Seed drives all randomness; same seed ⇒ same output.
	Seed uint64
	// Parallelism bounds concurrent simulated machines (0 = GOMAXPROCS).
	Parallelism int
	// PaperConstants selects the literal asymptotic constants of the paper
	// for the MPC algorithm (core.ParamsPaper); default is the practical
	// scaling.
	PaperConstants bool
	// Observer, when non-nil, receives solve-progress events (see Event).
	Observer Observer
	// ImproveBudget, when positive, enables the pipeline's anytime
	// local-search improvement stage (internal/improve) with that wall-clock
	// budget. Zero (the default) skips the stage entirely, keeping results
	// bit-for-bit identical to the pre-improvement pipeline. Solvers ignore
	// this field; only the Pipeline reads it.
	ImproveBudget time.Duration
}

// Outcome is what a Solver returns: the raw cover plus whatever certificate
// and round accounting the algorithm produces. The facade verifies the cover
// and turns the duals into a checked certificate.
type Outcome struct {
	// Cover marks the chosen vertices.
	Cover []bool
	// Duals is a feasible fractional matching certifying the cover weight
	// against OPT by weak LP duality, or nil when the algorithm provides no
	// certificate (greedy).
	Duals []float64
	// Rounds counts communication rounds for the distributed algorithms;
	// 0 for sequential ones.
	Rounds int
	// Phases counts sampled MPC phases (round-compression algorithms only).
	Phases int
	// Exact reports that the cover weight is the true optimum.
	Exact bool
	// Reduction carries the kernelization stats when the outcome was
	// produced by a Pipeline with reduction enabled; solvers themselves
	// leave it nil — the pipeline fills it after the lift stage.
	Reduction *reduce.Stats
}

// Solver is one registered algorithm.
type Solver interface {
	Solve(ctx context.Context, g *graph.Graph, cfg Config) (*Outcome, error)
}

// Func adapts an ordinary function to the Solver interface.
type Func func(ctx context.Context, g *graph.Graph, cfg Config) (*Outcome, error)

// Solve implements Solver.
func (f Func) Solve(ctx context.Context, g *graph.Graph, cfg Config) (*Outcome, error) {
	return f(ctx, g, cfg)
}

// Solver tiers: every registered algorithm belongs to exactly one quality/
// latency bucket. The serve layer resolves a request's `tier` hint to the
// lowest-ranked algorithm of that tier, and the CLI help table prints the
// tier column so the buckets stay visible in one place.
const (
	// TierFast marks near-zero-overhead solvers for latency-sensitive
	// requests (one or few linear passes, certified 2-approximation or
	// cheaper).
	TierFast = "fast"
	// TierAccurate marks the paper-faithful (2+ε)-approximation algorithms
	// and their distributed-model variants.
	TierAccurate = "accurate"
	// TierExact marks provably optimal solvers.
	TierExact = "exact"
)

// Meta describes a registered solver for listings and CLI help text.
type Meta struct {
	// Name is the registry key and the -algo flag value (e.g. "mpc").
	Name string
	// Rank orders listings; ties break by name.
	Rank int
	// Summary is a one-line description for help text.
	Summary string
	// Tier buckets the solver by quality/latency trade-off: TierFast,
	// TierAccurate or TierExact.
	Tier string
}

// Registration pairs a solver with its metadata.
type Registration struct {
	Meta
	Solver Solver
}

var (
	mu       sync.RWMutex
	registry = map[string]Registration{}
)

// Register adds a solver under meta.Name. It panics on an empty name, a nil
// solver, or a duplicate registration — all programmer errors in an init
// function, never runtime conditions.
func Register(meta Meta, s Solver) {
	if meta.Name == "" {
		panic("solver: Register with empty name")
	}
	if s == nil {
		panic(fmt.Sprintf("solver: Register(%q) with nil solver", meta.Name))
	}
	switch meta.Tier {
	case TierFast, TierAccurate, TierExact:
	default:
		panic(fmt.Sprintf("solver: Register(%q) with unknown tier %q", meta.Name, meta.Tier))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[meta.Name]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", meta.Name))
	}
	registry[meta.Name] = Registration{Meta: meta, Solver: s}
}

// Lookup returns the registration for name.
func Lookup(name string) (Registration, bool) {
	mu.RLock()
	defer mu.RUnlock()
	r, ok := registry[name]
	return r, ok
}

// Registrations returns every registration ordered by (Rank, Name).
func Registrations() []Registration {
	mu.RLock()
	out := make([]Registration, 0, len(registry))
	for _, r := range registry {
		out = append(out, r)
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByTier returns the registrations whose Meta.Tier equals tier, ordered by
// (Rank, Name). The first entry is the tier's preferred algorithm — the one
// a serve-layer `tier` hint resolves to.
func ByTier(tier string) []Registration {
	regs := Registrations()
	out := regs[:0:0]
	for _, r := range regs {
		if r.Tier == tier {
			out = append(out, r)
		}
	}
	return out
}

// Names returns the registered solver names ordered by (Rank, Name).
func Names() []string {
	regs := Registrations()
	names := make([]string, len(regs))
	for i, r := range regs {
		names[i] = r.Name
	}
	return names
}
