package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/improve"
	"repro/internal/reduce"
	"repro/internal/verify"
)

// Result is the verified outcome of a Pipeline run: the cover and
// certificate always refer to the original graph the pipeline was given,
// never to an internal kernel.
type Result struct {
	// Cover marks the chosen vertices of the original graph.
	Cover []bool
	// Weight is the total weight of the cover.
	Weight float64
	// Bound is a certified lower bound on OPT (weak LP duality on the
	// solved instance plus the reduction's forced weight), or 0 when the
	// algorithm provides no certificate.
	Bound float64
	// CertifiedRatio is Weight/Bound, following the facade's documented
	// convention for certificate-free and empty instances.
	CertifiedRatio float64
	// Rounds and Phases echo the solver's round accounting (measured on the
	// kernel when reduction ran — the honest cost of the solve that
	// actually executed).
	Rounds int
	Phases int
	// Exact reports that Weight is the true optimum.
	Exact bool
	// Reduction carries the kernelization stats, nil when the pipeline ran
	// without reduction.
	Reduction *reduce.Stats
	// Improvement carries the anytime local-search stats, nil when the
	// pipeline ran without an improvement budget (or the stage was skipped
	// because the solve was already exact).
	Improvement *improve.Stats
}

// Pipeline stages one solve: Reduce (optional kernelization) → Solve on the
// kernel through a registered solver → Improve (optional anytime local
// search on the kernel cover, under Config.ImproveBudget) → Lift the kernel
// cover and duals back to the original graph → Verify cover and certificate
// on the original. With Reduce false and ImproveBudget zero the pipeline is
// exactly the pre-kernelization solve path, bit for bit.
type Pipeline struct {
	// Solver executes the (possibly kernelized) instance.
	Solver Solver
	// Reduce enables the kernelization stage.
	Reduce bool
	// Config is passed through to the solver. Its Observer additionally
	// receives KindReduceStart/KindReduceEnd events around the
	// kernelization stage and KindImproveStart/Step/End events from the
	// improvement stage; its ImproveBudget enables that stage.
	Config Config
}

// Run executes the pipeline on g. The returned Result is fully verified
// against g: an invalid cover or infeasible certificate — from any solver,
// on any kernel — is an error, never a silently wrong answer.
func (p Pipeline) Run(ctx context.Context, g *graph.Graph) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	work := g
	var tr *reduce.Trace
	var stats *reduce.Stats
	if p.Reduce {
		Emit(p.Config.Observer, Event{Kind: KindReduceStart, Phase: -1, ActiveEdges: int64(g.NumEdges())})
		start := time.Now()
		red, err := reduce.Run(ctx, g)
		if err != nil {
			return nil, err
		}
		red.Stats.ReduceNS = time.Since(start).Nanoseconds()
		stats = &red.Stats
		Emit(p.Config.Observer, Event{Kind: KindReduceEnd, Phase: -1, ActiveEdges: int64(red.Kernel.NumEdges())})
		if red.Trace != nil {
			work, tr = red.Kernel, red.Trace
		}
		// A nil trace means nothing reduced; solve the original directly.
	}

	var out *Outcome
	if tr != nil && work.NumVertices() == 0 {
		// Fully reduced: the rules alone determined an optimal cover
		// (OPT(g) = forced weight + OPT(∅) = forced weight), so the solver
		// is skipped and the lifted cover is exact regardless of algorithm.
		out = &Outcome{Cover: []bool{}, Exact: true}
	} else {
		var err error
		out, err = p.Solver.Solve(ctx, work, p.Config)
		if err != nil {
			return nil, err
		}
	}

	var imp *improve.Stats
	if p.Config.ImproveBudget > 0 && !out.Exact {
		// Improve operates on the solved instance (the kernel when reduction
		// ran) so lifting happens exactly once, after the stage. The dual
		// certificate is deliberately untouched: the primal can only
		// decrease against the fixed bound, so CertifiedRatio only tightens.
		obs := p.Config.Observer
		Emit(obs, Event{Kind: KindImproveStart, Phase: -1,
			ActiveEdges: int64(work.NumEdges()), Weight: verify.CoverWeight(work, out.Cover)})
		improved, st, err := improve.Run(ctx, work, out.Cover, improve.Options{
			Budget: p.Config.ImproveBudget,
			Seed:   p.Config.Seed,
			OnStep: func(step int, weight float64) {
				Emit(obs, Event{Kind: KindImproveStep, Phase: -1, Round: step, Weight: weight})
			},
		})
		if err != nil {
			return nil, fmt.Errorf("solver: internal error: improvement rejected solver cover: %w", err)
		}
		Emit(obs, Event{Kind: KindImproveEnd, Phase: -1, Round: st.Steps,
			ActiveEdges: int64(work.NumEdges()), Weight: st.WeightAfter})
		out.Cover, imp = improved, st
	}

	cover, duals, forced := out.Cover, out.Duals, 0.0
	if tr != nil {
		cover, forced = tr.Lift(out.Cover)
		if out.Duals != nil {
			duals = tr.LiftDuals(out.Duals)
		}
	}
	out.Reduction = stats
	res, err := verifyStage(g, cover, duals, forced, out)
	if err != nil {
		return nil, err
	}
	res.Improvement = imp
	return res, nil
}

// verifyStage checks the (lifted) cover against the original graph, checks
// the (lifted) dual certificate when one is supplied, and fills the Result.
// CertifiedRatio follows the facade's convention: certificate ⇒
// Weight/Bound; exact ⇒ 1; empty cover ⇒ 1; otherwise +Inf.
func verifyStage(g *graph.Graph, cover []bool, duals []float64, forced float64, out *Outcome) (*Result, error) {
	if ok, e := verify.IsCover(g, cover); !ok {
		u, v := g.Edge(e)
		return nil, fmt.Errorf("solver: internal error: edge (%d,%d) uncovered", u, v)
	}
	res := &Result{
		Cover:     cover,
		Weight:    verify.CoverWeight(g, cover),
		Rounds:    out.Rounds,
		Phases:    out.Phases,
		Exact:     out.Exact,
		Reduction: out.Reduction,
	}
	if duals != nil {
		cert, err := verify.NewLiftedCertificate(g, cover, duals, forced)
		if err != nil {
			return nil, fmt.Errorf("solver: internal error: invalid certificate: %w", err)
		}
		res.Bound = cert.Bound
		res.CertifiedRatio = cert.Ratio()
	} else if out.Exact {
		res.Bound = res.Weight
		res.CertifiedRatio = 1
	} else if res.Weight == 0 {
		res.CertifiedRatio = 1
	} else {
		res.CertifiedRatio = math.Inf(1)
	}
	return res, nil
}
