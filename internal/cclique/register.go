package cclique

import (
	"context"

	"repro/internal/graph"
	"repro/internal/solver"
)

func init() {
	solver.Register(solver.Meta{
		Name:    "congested-clique",
		Rank:    50,
		Tier:    solver.TierAccurate,
		Summary: "primal–dual with one machine per vertex under congested-clique message caps",
	}, solver.Func(solve))
}

func solve(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	res, err := Run(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	return &solver.Outcome{Cover: res.Cover, Duals: res.X, Rounds: res.Rounds}, nil
}
