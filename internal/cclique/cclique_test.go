package cclique

import (
	"repro/internal/solver"

	"context"

	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestRunProducesCertifiedCover(t *testing.T) {
	eps := 0.1
	g := gen.ApplyWeights(gen.GnpAvgDegree(3, 300, 12), 5, gen.UniformRange{Lo: 1, Hi: 10})
	res, err := Run(context.Background(), g, solver.Config{Epsilon: eps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := verify.NewCertificate(g, res.Cover, res.X)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Ratio() > 2+10*eps+1e-9 {
		t.Fatalf("congested-clique ratio %v exceeds 2+10ε", cert.Ratio())
	}
}

func TestRoundsTrackLogDelta(t *testing.T) {
	eps := 0.1
	g := gen.GnpAvgDegree(4, 400, 16)
	res, err := Run(context.Background(), g, solver.Config{Epsilon: eps, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bound := 5 + int(math.Ceil(math.Log(float64(g.MaxDegree())+2)/math.Log(1/(1-eps))))
	if res.Rounds > bound {
		t.Fatalf("%d rounds exceed O(log Δ) bound %d", res.Rounds, bound)
	}
	if res.Rounds < 2 {
		t.Fatalf("implausibly few rounds: %d", res.Rounds)
	}
}

func TestPairCapsRespected(t *testing.T) {
	// Run must complete without tripping the substrate's per-pair cap —
	// i.e. the implementation really is a congested-clique algorithm.
	g := gen.ApplyWeights(gen.PreferentialAttachment(5, 200, 3), 2, gen.Exponential{Mean: 2})
	res, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalMessages == 0 {
		t.Fatal("no messages recorded")
	}
	if ok, _ := verify.IsCover(g, res.Cover); !ok {
		t.Fatal("not a cover")
	}
}

func TestEndpointDualsAgree(t *testing.T) {
	// The X reconstruction takes the max over the two endpoints' views;
	// feasibility of the result implies the views never diverged upward.
	g := gen.ApplyWeights(gen.GnpAvgDegree(6, 150, 8), 9, gen.UniformRange{Lo: 0.5, Hi: 5})
	res, err := Run(context.Background(), g, solver.Config{Epsilon: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DualFeasible(g, res.X); err != nil {
		t.Fatal(err)
	}
	for e, x := range res.X {
		if g.NumEdges() > 0 && !(x > 0) {
			t.Fatalf("edge %d has dual %v, want positive", e, x)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := Run(context.Background(), graph.NewBuilder(0).MustBuild(), solver.Config{Epsilon: 0.1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), graph.NewBuilder(3).MustBuild(), solver.Config{Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Cover {
		if in {
			t.Fatal("edgeless vertex covered")
		}
	}
	if _, err := Run(context.Background(), gen.Path(4), solver.Config{Epsilon: 0.5, Seed: 1}); err == nil {
		t.Fatal("bad epsilon accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := gen.ApplyWeights(gen.GnpAvgDegree(8, 200, 10), 3, gen.UniformRange{Lo: 1, Hi: 4})
	a, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Cover {
		if a.Cover[v] != b.Cover[v] {
			t.Fatal("same seed, different covers")
		}
	}
	if a.Rounds != b.Rounds {
		t.Fatal("same seed, different rounds")
	}
}
