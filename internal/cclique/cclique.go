// Package cclique runs the primal–dual vertex-cover algorithm in the
// congested clique model (Section 1.3 of the paper): one machine per vertex,
// all-to-all communication, O(log n)-bit (here: a few words) messages per
// ordered pair per round.
//
// The paper's congested-clique result is obtained by simulation: by [BDH18]
// the near-linear-memory MPC model and the congested clique are equivalent
// up to constant factors, so Algorithm 2 transfers and yields O(log log d)
// rounds. This package complements that argument with a *direct*
// implementation of the LOCAL primal–dual algorithm (Algorithm 1, one
// iteration per round) under mechanically enforced congested-clique
// constraints — each vertex-machine exchanges only a constant number of
// words per neighbor per round. That gives the O(log Δ) baseline the
// simulation argument improves on, with every message counted.
package cclique

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Result of a congested-clique run.
type Result struct {
	Cover []bool
	// X is the final fractional matching (one value per edge).
	X []float64
	// Rounds is the number of congested-clique communication rounds.
	Rounds int
	// Metrics exposes the substrate's accounting (per-pair caps included).
	Metrics mpc.Metrics
}

// Run executes the degree-aware primal–dual algorithm with one machine per
// vertex. Per round each machine sends at most PairWords=2 words to each
// neighbor: the setup round exchanges w(v)/d(v) ratios; each iteration
// round broadcasts the machine's new frozen status.
//
// The context is checked before every congested-clique round; cfg.Observer
// receives one KindRound event per accounted round (event count ==
// Result.Rounds).
func Run(ctx context.Context, g *graph.Graph, cfg solver.Config) (*Result, error) {
	epsilon, seed := cfg.Epsilon, cfg.Seed
	if epsilon <= 0 || epsilon > 0.125 {
		return nil, fmt.Errorf("cclique: epsilon %v out of (0, 0.125]", epsilon)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	if n == 0 {
		return &Result{Cover: nil, X: nil}, nil
	}
	// Memory: a vertex-machine stores its adjacency and per-edge duals.
	// The congested clique model does not constrain local memory, so the
	// budget is sized to the maximum degree plus slack.
	budget := int64(8*(g.MaxDegree()+4) + 64)
	cluster, err := mpc.NewCluster(mpc.Config{
		Machines:    n,
		MemoryWords: budget,
		PairWords:   2,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	growth := 1 / (1 - epsilon)
	lo, hi := 1-4*epsilon, 1-2*epsilon
	threshold := func(v graph.Vertex, t int) float64 {
		return rng.UniformAt(seed, lo, hi, 'T', uint64(v), uint64(t))
	}

	// Per-machine state, owned by machine v (index v). Slices are only
	// touched by their owning machine inside rounds, so access is race-free.
	type vertexState struct {
		ratio      []float64 // w(u)/d(u) of each neighbor, slot-aligned
		x          []float64 // current dual per incident edge, slot-aligned
		frozenEdge []bool
		active     bool
		y          float64
	}
	states := make([]vertexState, n)
	myRatio := make([]float64, n)
	for v := 0; v < n; v++ {
		deg := g.Degree(graph.Vertex(v))
		states[v] = vertexState{
			ratio:      make([]float64, deg),
			x:          make([]float64, deg),
			frozenEdge: make([]bool, deg),
			active:     deg > 0,
		}
		if deg > 0 {
			myRatio[v] = g.Weight(graph.Vertex(v)) / float64(deg)
		}
	}

	// step runs one congested-clique round with a context check before it
	// and a KindRound event after it. The active-edge recount happens inside
	// step, after the round's freezes landed, so events report the true
	// post-round count (it doubles as the driver's termination bookkeeping —
	// the constant-round aggregation a LOCAL scheduler would use, accounted
	// at the end).
	activeEdges := int64(g.NumEdges())
	recount := func() int64 {
		c := int64(0)
		ep := g.EdgeEndpoints()
		for e := 0; e < g.NumEdges(); e++ {
			u, w := ep[2*e], ep[2*e+1]
			if states[u].active && states[w].active {
				c++
			}
		}
		return c
	}
	step := func(fn mpc.StepFunc) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := cluster.Round(fn); err != nil {
			return err
		}
		activeEdges = recount()
		solver.Emit(cfg.Observer, solver.Event{
			Kind:        solver.KindRound,
			Phase:       -1,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: activeEdges,
		})
		return nil
	}

	// Setup round: every machine sends its w/d ratio to each neighbor.
	err = step(func(m *mpc.Machine) error {
		v := graph.Vertex(m.ID())
		if err := m.Charge(int64(8*g.Degree(v) + 16)); err != nil {
			return err
		}
		for _, u := range g.Neighbors(v) {
			if err := m.Send(int(u), []uint64{mpc.PutFloat(myRatio[v])}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Iteration rounds. Each machine: ingest neighbor ratios (first round)
	// or freeze notifications; test its threshold; send its status change.
	maxIter := 3 + int(math.Ceil(math.Log(float64(g.MaxDegree())+2)/math.Log(growth)))
	setup := true
	t := 0
	for ; activeEdges > 0 && t < maxIter; t++ {
		iter := t
		isSetup := setup
		err := step(func(m *mpc.Machine) error {
			v := graph.Vertex(m.ID())
			st := &states[v]
			nbrs := g.Neighbors(v)
			if isSetup {
				// Inbox: the neighbors' ratios, ordered by sender id —
				// match them to adjacency slots (also sorted by id).
				in := m.Inbox()
				if len(in) != len(nbrs) {
					return fmt.Errorf("cclique: vertex %d got %d ratio messages, want %d", v, len(in), len(nbrs))
				}
				st.y = 0
				for i, msg := range in {
					if graph.Vertex(msg.From) != nbrs[i] {
						return fmt.Errorf("cclique: vertex %d: message %d from %d, want %d", v, i, msg.From, nbrs[i])
					}
					st.ratio[i] = mpc.GetFloat(msg.Data[0])
					st.x[i] = math.Min(myRatio[v], st.ratio[i])
					st.y += st.x[i]
				}
			} else {
				// Complete the previous iteration in LOCAL order: first
				// ingest the freeze notifications its test produced — the
				// shared edges stop at their pre-growth value — and only
				// then grow the edges that are still active on both sides.
				for _, msg := range m.Inbox() {
					u := graph.Vertex(msg.From)
					for i, w := range nbrs {
						if w == u {
							st.frozenEdge[i] = true
						}
					}
				}
				if st.active {
					st.y = 0
					for i := range st.x {
						if !st.frozenEdge[i] {
							st.x[i] *= growth
						}
						st.y += st.x[i]
					}
				}
			}
			// Iteration `iter`'s simultaneous freeze test.
			if st.active && st.y >= threshold(v, iter)*g.Weight(v) {
				st.active = false
				for i := range st.frozenEdge {
					st.frozenEdge[i] = true
				}
				// Notify all neighbors with one word.
				for _, u := range nbrs {
					if err := m.Send(int(u), []uint64{1}); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		setup = false
	}
	if activeEdges > 0 {
		return nil, fmt.Errorf("cclique: %d active edges after %d rounds", activeEdges, t)
	}
	// One accounted aggregation round for global termination detection.
	cluster.AccountRounds(1)
	solver.Emit(cfg.Observer, solver.Event{
		Kind:        solver.KindRound,
		Phase:       -1,
		Round:       cluster.Metrics().Rounds,
		ActiveEdges: 0,
	})

	res := &Result{
		Cover: make([]bool, n),
		X:     make([]float64, g.NumEdges()),
	}
	for v := 0; v < n; v++ {
		res.Cover[v] = !states[v].active && g.Degree(graph.Vertex(v)) > 0
	}
	// Edge duals: the tail of each edge (min-ratio endpoint) knows the
	// authoritative value; reconstruct from the slot-aligned state.
	for v := 0; v < n; v++ {
		ids := g.IncidentEdges(graph.Vertex(v))
		for i, e := range ids {
			x := states[v].x[i]
			if x > res.X[e] {
				res.X[e] = x
			}
		}
	}
	res.Metrics = cluster.Metrics()
	res.Rounds = res.Metrics.Rounds
	return res, nil
}
