package compress

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func testGraph(seed uint64, n int, d float64) *graph.Graph {
	g := gen.GnpAvgDegree(seed, n, d)
	return gen.ApplyWeights(g, seed+1, gen.UniformRange{Lo: 1, Hi: 100})
}

func TestCompressedSolveIsValidAndCompressed(t *testing.T) {
	g := testGraph(7, 4000, 64)
	p := DefaultParams(0.1, 42)
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatal("unexpected native fallback on a comfortably sized instance")
	}
	if ok, e := verify.IsCover(g, res.Cover); !ok {
		t.Fatalf("not a cover: edge %d uncovered", e)
	}
	scaled, alpha := res.FeasibleDual(g)
	if err := verify.DualFeasible(g, scaled); err != nil {
		t.Fatalf("rescaled duals infeasible: %v", err)
	}
	if alpha > 2 {
		t.Fatalf("violation factor %v implausibly large", alpha)
	}
	cert, err := verify.NewCertificate(g, res.Cover, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if r := cert.Ratio(); r > 4.6 {
		t.Fatalf("certified ratio %v too weak", r)
	}

	// The compression accounting: 3 cluster rounds per compressed round
	// plus the final gather, and a simulated-LOCAL-round count per round.
	if res.Phases < 1 {
		t.Fatal("expected at least one compressed round")
	}
	if want := 3*res.Phases + 1; res.Rounds != want {
		t.Fatalf("rounds = %d, want 3·%d+1 = %d", res.Rounds, res.Phases, want)
	}
	if len(res.LocalRounds) != res.Phases || len(res.Groups) != res.Phases {
		t.Fatalf("per-round stats %d/%d, want %d", len(res.LocalRounds), len(res.Groups), res.Phases)
	}
	for i, k := range res.LocalRounds {
		native := core.ParamsPractical(0.1, 42).PhaseIterations(res.Groups[i], 0.1)
		if k != native {
			t.Fatalf("compressed round %d simulates %d LOCAL rounds, want the native budget %d (the guarantee depends on it)", i, k, native)
		}
		// The compression currency: simulated LOCAL rounds per accounted
		// communication round. Native spends 5 cluster rounds per phase on
		// the same k, so the compressed density must strictly exceed it.
		if k*5 <= native*3 {
			t.Fatalf("compressed round %d: %d LOCAL rounds over 3 cluster rounds does not beat native's %d over 5", i, k, native)
		}
	}
}

func TestCompressedFewerRoundsThanNative(t *testing.T) {
	g := testGraph(3, 3000, 48)
	cres, err := Run(context.Background(), g, DefaultParams(0.1, 9))
	if err != nil {
		t.Fatal(err)
	}
	nres, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if cres.Rounds >= nres.Rounds {
		t.Fatalf("compressed rounds %d not below native %d", cres.Rounds, nres.Rounds)
	}
}

func TestCompressedSplitsOversizedGroups(t *testing.T) {
	g := testGraph(11, 1200, 24)
	p := DefaultParams(0.1, 5)
	// Shrink the per-machine memory so the fleet grows well beyond the
	// √d group count (splitting can only double groups up to the fleet
	// size), then set a gather budget below the initial √d-group load but
	// above the per-group load after a doubling or two.
	p.MemoryWords = func(int) int64 { return 12000 }
	p.GatherWords = func(int) int64 { return 2200 }
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatal("splitting should have made the groups fit without falling back")
	}
	if res.Splits == 0 {
		t.Fatal("expected at least one partition split under the tightened gather budget")
	}
	if ok, e := verify.IsCover(g, res.Cover); !ok {
		t.Fatalf("not a cover after splits: edge %d uncovered", e)
	}
	if len(res.Groups) > 0 && res.Groups[0] <= DefaultParams(0.1, 5).NumGroups(24) {
		t.Fatalf("first round ran %d groups; splits should have increased it beyond √d", res.Groups[0])
	}
}

func TestCompressedFallsBackToNativeRounds(t *testing.T) {
	g := testGraph(13, 800, 32)
	p := DefaultParams(0.1, 4)
	// No partition can fit a 1-word gather budget, so after MaxSplits
	// redraws the solve must delegate to the native round structure.
	p.GatherWords = func(int) int64 { return 1 }
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatal("expected native fallback under an impossible gather budget")
	}
	if ok, e := verify.IsCover(g, res.Cover); !ok {
		t.Fatalf("fallback result not a cover: edge %d uncovered", e)
	}
	nres, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != nres.Rounds {
		t.Fatalf("fallback rounds %d, native rounds %d — fallback must use native round structure", res.Rounds, nres.Rounds)
	}
	if math.Float64bits(verify.CoverWeight(g, res.Cover)) != math.Float64bits(verify.CoverWeight(g, nres.Cover)) {
		t.Fatal("fallback cover differs from a direct native run with the same seed")
	}
}

func TestCompressedValidatesParams(t *testing.T) {
	g := testGraph(1, 100, 8)
	p := DefaultParams(0.1, 1)
	p.LocalRounds = nil
	if _, err := Run(context.Background(), g, p); err == nil {
		t.Fatal("nil LocalRounds accepted")
	}
	p = DefaultParams(0.1, 1)
	p.Epsilon = 0.5
	if _, err := Run(context.Background(), g, p); err == nil {
		t.Fatal("epsilon 0.5 accepted")
	}
	if _, err := Run(context.Background(), nil, DefaultParams(0.1, 1)); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestCompressedCancellation(t *testing.T) {
	g := testGraph(17, 20000, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, g, DefaultParams(0.1, 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}
