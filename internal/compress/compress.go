package compress

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/centralized"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Message tags distinguishing record kinds within a round's payloads (same
// wire convention as package core).
const (
	tagVertex uint64 = 1
	tagEdge   uint64 = 2
	tagResult uint64 = 3
	tagScalar uint64 = 4
)

// Labels for derived randomness. Group sampling draws are a pure function
// of (seed, label, phase, attempt, vertex) — the attempt counter is what
// makes a split's redraw produce a fresh partition — and thresholds reuse
// the same label convention as core so both solvers' draws are replica
// deterministic.
const (
	labelGroup     uint64 = 'G'
	labelThreshold uint64 = 'T'
)

// noFreeze marks a vertex that stayed active through a local simulation.
const noFreeze = -1

// Result is the outcome of a round-compressed run. It embeds core.Result —
// the cover, finalized duals, round/phase counts, and per-phase stats have
// identical semantics — and adds the compression measurements.
type Result struct {
	core.Result
	// Fallback reports that the memory precheck could not fit the sampled
	// groups even after MaxSplits splits, and the whole solve was delegated
	// to the native round structure (core.Run). When set, the round counts
	// and events are the native solver's.
	Fallback bool
	// LocalRounds[i] is k — the number of simulated LOCAL rounds executed
	// inside each gathered group — for compressed round i.
	LocalRounds []int
	// Groups[i] is the sampled group count of compressed round i, after
	// any splits.
	Groups []int
	// Splits counts the partition redraws forced by the memory precheck
	// across the whole run.
	Splits int
}

// machScratch is one simulated machine's reusable working set, mirroring
// core's: per-destination counters and arena-backed buffers for the scatter
// and result staging, the decoded local instance, and the simulation
// arrays. Messages are staged straight into the outgoing arena (count →
// Reserve → Alloc → fill), so steady-state rounds allocate nothing.
type machScratch struct {
	vCnt, eCnt []int32    // per-destination record counts, then write cursors
	vBuf, eBuf [][]uint64 // per-destination Alloc'd message buffers
	edgeIDs    []int32    // co-located edges found by the count pass
	li         core.LocalInstance
	sim        core.SimScratch
}

// ensure sizes the per-destination arrays for a fleet of `total` machines.
func (sc *machScratch) ensure(total int) {
	if sc.vCnt == nil {
		sc.vCnt = make([]int32, total)
		sc.eCnt = make([]int32, total)
		sc.vBuf = make([][]uint64, total)
		sc.eBuf = make([][]uint64, total)
	}
}

// Run executes the round-compressed Algorithm 2 on g. Each compressed MPC
// round costs three accounted cluster rounds (scatter, simulate, collect)
// instead of the native five, and simulates LocalRounds(k) LOCAL rounds
// inside each gathered group. The context is checked between phases,
// between cluster rounds, and inside the final centralized phase.
func Run(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, errors.New("compress: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	mEdges := g.NumEdges()
	epFlat := g.EdgeEndpoints()
	eps := p.Epsilon
	growth := 1 / (1 - eps)

	res := &Result{Result: core.Result{
		Cover: make([]bool, n),
		X:     make([]float64, mEdges),
	}}
	if n == 0 {
		return res, nil
	}

	// Algorithm state, as in core: frozenIncident[v] accumulates
	// Σ_{e∋v frozen} x_e so that w′(v) = w(v) − frozenIncident[v].
	frozen := res.Cover
	xFinal := res.X
	edgeFrozen := make([]bool, mEdges)
	frozenIncident := make([]float64, n)
	resDeg := g.DegreesWithinMaskInto(make([]int, n), nil)
	nonfrozenEdges := int64(mEdges)

	// Defensive freeze for a vertex whose residual weight has been
	// exhausted; its remaining nonfrozen edges finalize at 0 (Line 2j).
	// Like every edge freeze in this solver, it keeps the residual degrees
	// and the nonfrozen count current in place.
	zeroFreeze := func(v graph.Vertex) {
		frozen[v] = true
		if resDeg[v] == 0 {
			return
		}
		for _, e := range g.IncidentEdges(v) {
			if !edgeFrozen[e] {
				edgeFrozen[e] = true
				xFinal[e] = 0
				resDeg[epFlat[2*e]]--
				resDeg[epFlat[2*e+1]]--
				nonfrozenEdges--
			}
		}
	}

	// Cluster sizing, as in core: the cluster holds the input edges
	// round-robin, so no home machine's share may exceed a quarter of its
	// memory, and the fleet is capped so machine 0's scalar fan-in fits.
	memWords := p.MemoryWords(n)
	maxEdgesPerHome := memWords / (4 * mpc.EdgeRecordWords)
	if maxEdgesPerHome < 1 {
		return nil, fmt.Errorf("compress: machine memory %d words cannot hold any edges", memWords)
	}
	d0 := 2 * float64(nonfrozenEdges) / float64(n)
	mTotal := p.NumGroups(d0)
	if need := int((int64(mEdges) + maxEdgesPerHome - 1) / maxEdgesPerHome); need > mTotal {
		mTotal = need
	}
	if mTotal < 2 {
		mTotal = 2
	}
	if maxFleet := int(memWords / 8); mTotal > maxFleet {
		if need := int((int64(mEdges) + maxEdgesPerHome - 1) / maxEdgesPerHome); need > maxFleet {
			return nil, fmt.Errorf("compress: memory %d words per machine cannot host both the input (%d machines needed) and the scalar fan-in (max %d)", memWords, need, maxFleet)
		}
		mTotal = maxFleet
	}
	cluster, err := mpc.NewCluster(mpc.Config{
		Machines:    mTotal,
		MemoryWords: memWords,
		Parallelism: p.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	maxPhases := p.MaxPhases
	if maxPhases == 0 {
		maxPhases = 64
	}
	maxSplits := p.MaxSplits
	if maxSplits == 0 {
		maxSplits = 4
	}
	gatherBudget := memWords / 2
	if p.GatherWords != nil {
		gatherBudget = p.GatherWords(n)
	}

	obs := p.Observer
	dualSum := 0.0
	curPhase := -1
	// step executes one accounted cluster round with a context check before
	// it and a KindRound event after it, so the number of round events
	// equals Result.Rounds exactly.
	step := func(fn mpc.StepFunc) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := cluster.Round(fn); err != nil {
			return err
		}
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindRound,
			Phase:       curPhase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
		})
		return nil
	}

	// Reused per-phase scratch, carved from two backing allocations.
	f64Scratch := make([]float64, 2*n)
	wres, yMPC := f64Scratch[:n:n], f64Scratch[n:]
	i32Scratch := make([]int32, 3*n)
	groupOf, freezeIterShared, localIdx := i32Scratch[:n:n], i32Scratch[n:2*n:2*n], i32Scratch[2*n:]
	for v := range localIdx {
		localIdx[v] = -1
	}
	high := make([]bool, n)
	xPhase := make([]float64, mEdges)
	var highList []graph.Vertex
	var highEdges []int32
	var pow []float64
	var newlyFrozen []graph.Vertex
	groupWords := make([]int64, mTotal)
	localEdgeCount := make([]int64, mTotal)
	scratch := make([]machScratch, mTotal)

	phase := 0
	stalls := 0
	fallback := false
	for ; ; phase++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		curPhase = phase
		edgesBefore := nonfrozenEdges
		d := 2 * float64(nonfrozenEdges) / float64(n)
		if d <= p.SwitchThreshold(n) {
			break
		}
		if stalls >= 3 {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("compress: no convergence after %d phases (d=%.1f)", phase, d)
		}

		// Lines (2a)/(2b): classify nonfrozen vertices and compute residual
		// weights for V^high.
		dGamma := math.Pow(d, p.HighDegreeExponent)
		highList = highList[:0]
		numInactive := 0
		numNonfrozen := 0
		for v := 0; v < n; v++ {
			high[v] = false
			if frozen[v] {
				continue
			}
			numNonfrozen++
			if resDeg[v] == 0 {
				continue
			}
			w := g.Weight(graph.Vertex(v)) - frozenIncident[v]
			if w <= 1e-12*g.Weight(graph.Vertex(v)) {
				zeroFreeze(graph.Vertex(v))
				continue
			}
			if float64(resDeg[v]) >= dGamma {
				high[v] = true
				wres[v] = w
				highList = append(highList, graph.Vertex(v))
			} else {
				numInactive++
			}
		}
		if len(highList) == 0 {
			break
		}

		// Group sampling with the memory precheck: draw the seeded hash
		// partition, price each group's induced neighborhood (vertex and
		// co-located edge records), and split — double the group count and
		// redraw with a fresh attempt label — until the largest group fits
		// the gather budget (by default half the per-machine memory; the
		// rest is headroom for message framing, the scalar fan-in, and
		// result staging). If the partition still cannot fit after
		// maxSplits redraws, the whole solve falls back to the native
		// round structure. The attempt-0 edge pricing is fused into the
		// Line (2c) pass below so the common no-split phase prices its
		// partition without a second walk over the edge array.
		groups := p.NumGroups(d)
		if groups < 1 {
			groups = 1
		}
		if groups > mTotal {
			groups = mTotal
		}
		for i := 0; i < groups; i++ {
			groupWords[i] = 0
		}
		for _, v := range highList {
			gi := int32(rng.ChooseAt(p.Seed, groups, labelGroup, uint64(phase), 0, uint64(v)))
			groupOf[v] = gi
			groupWords[gi] += mpc.VertexRecordWords
		}

		// Line (2c): degree-aware initial duals on E[V^high], fused with the
		// attempt-0 co-located-edge pricing.
		highEdges = highEdges[:0]
		for e := 0; e < mEdges; e++ {
			if edgeFrozen[e] {
				continue
			}
			u, v := epFlat[2*e], epFlat[2*e+1]
			if !high[u] || !high[v] {
				continue
			}
			highEdges = append(highEdges, int32(e))
			xPhase[e] = math.Min(wres[u]/float64(resDeg[u]), wres[v]/float64(resDeg[v]))
			if groupOf[u] == groupOf[v] {
				groupWords[groupOf[u]] += mpc.EdgeRecordWords
			}
		}

		attempt := 0
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			maxGroup := int64(0)
			for i := 0; i < groups; i++ {
				if groupWords[i] > maxGroup {
					maxGroup = groupWords[i]
				}
			}
			if maxGroup <= gatherBudget {
				break
			}
			if attempt >= maxSplits || groups >= mTotal {
				fallback = true
				break
			}
			groups *= 2
			if groups > mTotal {
				groups = mTotal
			}
			attempt++
			res.Splits++
			for i := 0; i < groups; i++ {
				groupWords[i] = 0
			}
			for _, v := range highList {
				gi := int32(rng.ChooseAt(p.Seed, groups, labelGroup, uint64(phase), uint64(attempt), uint64(v)))
				groupOf[v] = gi
				groupWords[gi] += mpc.VertexRecordWords
			}
			for _, e := range highEdges {
				u, v := epFlat[2*e], epFlat[2*e+1]
				if groupOf[u] == groupOf[v] {
					groupWords[groupOf[u]] += mpc.EdgeRecordWords
				}
			}
		}
		if fallback {
			break
		}

		iters := p.LocalRounds(groups, eps)
		if iters < 1 {
			iters = 1
		}
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindPhaseStart,
			Phase:       phase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
			Degree:      d,
			Machines:    groups,
			Iterations:  iters,
		})

		// Line (2d): thresholds are a pure function of (seed, phase, v, t).
		lo, hi := 1-4*eps, 1-2*eps
		threshold := func(v graph.Vertex, t int) float64 {
			return rng.UniformAt(p.Seed, lo, hi, labelThreshold, uint64(phase), uint64(v), uint64(t))
		}

		// ---- compressed MPC execution of the phase: 3 cluster rounds ----
		cluster.ResetResident()

		// Round 1 (scatter): home machines route co-located induced edges
		// and vertex records to the owning group machine, and piggyback
		// their nonfrozen-edge counts to machine 0 — the degree aggregate
		// stays load-bearing without the native solver's two dedicated
		// aggregation rounds (machine 0 cross-checks it next round).
		err := step(func(mach *mpc.Machine) error {
			id := mach.ID()
			sc := &scratch[id]
			sc.ensure(mTotal)
			vCnt, eCnt := sc.vCnt, sc.eCnt
			vBuf, eBuf := sc.vBuf, sc.eBuf
			for dst := 0; dst < groups; dst++ {
				vCnt[dst] = 0
				eCnt[dst] = 0
			}
			homeNonfrozen := uint64(0)
			for v := id; v < n; v += mTotal {
				if high[v] {
					vCnt[groupOf[v]]++
				}
			}
			sc.edgeIDs = sc.edgeIDs[:0]
			for e := id; e < mEdges; e += mTotal {
				if edgeFrozen[e] {
					continue
				}
				homeNonfrozen++
				u, v := epFlat[2*e], epFlat[2*e+1]
				if high[u] && high[v] && groupOf[u] == groupOf[v] {
					eCnt[groupOf[u]]++
					sc.edgeIDs = append(sc.edgeIDs, int32(e))
				}
			}
			total := int64(2) // the scalar degree report to machine 0
			for dst := 0; dst < groups; dst++ {
				if vCnt[dst] > 0 {
					total += 1 + int64(vCnt[dst])*mpc.VertexRecordWords
				}
				if eCnt[dst] > 0 {
					total += 1 + int64(eCnt[dst])*mpc.EdgeRecordWords
				}
			}
			mach.Reserve(total)
			if err := mach.Send(0, []uint64{tagScalar, homeNonfrozen}); err != nil {
				return err
			}
			for dst := 0; dst < groups; dst++ {
				if vCnt[dst] > 0 {
					buf, err := mach.Alloc(dst, 1+int(vCnt[dst])*mpc.VertexRecordWords)
					if err != nil {
						return err
					}
					buf[0] = tagVertex
					vBuf[dst] = buf[1:]
				}
				if eCnt[dst] > 0 {
					buf, err := mach.Alloc(dst, 1+int(eCnt[dst])*mpc.EdgeRecordWords)
					if err != nil {
						return err
					}
					buf[0] = tagEdge
					eBuf[dst] = buf[1:]
				}
				vCnt[dst] = 0 // reuse as write cursor
				eCnt[dst] = 0
			}
			for v := id; v < n; v += mTotal {
				if !high[v] {
					continue
				}
				dst := groupOf[v]
				mpc.SetVertexRecord(vBuf[dst], int(vCnt[dst]), int32(v), wres[v])
				vCnt[dst]++
			}
			for _, e := range sc.edgeIDs {
				u, v := epFlat[2*e], epFlat[2*e+1]
				dst := groupOf[u]
				mpc.SetEdgeRecord(eBuf[dst], int(eCnt[dst]), u, v, xPhase[e])
				eCnt[dst]++
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("compress: round %d scatter: %w", phase, err)
		}

		// Round 2 (simulate): each group machine materializes its induced
		// subgraph (charged against its memory budget), runs k simulated
		// LOCAL rounds of Lines (2g i–iii), and routes the freeze results
		// to each vertex's home machine. Machine 0 additionally sums the
		// piggybacked degree reports and cross-checks the driver's count,
		// so the simulated aggregate is load-bearing.
		for i := range localEdgeCount {
			localEdgeCount[i] = 0
		}
		err = step(func(mach *mpc.Machine) error {
			id := mach.ID()
			inbox := mach.Inbox()
			if id == 0 {
				total := uint64(0)
				seen := 0
				for _, msg := range inbox {
					if len(msg.Data) == 2 && msg.Data[0] == tagScalar {
						total += msg.Data[1]
						seen++
					}
				}
				if seen != mTotal {
					return fmt.Errorf("compress: machine 0 received %d degree reports, want %d", seen, mTotal)
				}
				if total != uint64(nonfrozenEdges) {
					return fmt.Errorf("compress: aggregated %d nonfrozen edges, driver has %d", total, nonfrozenEdges)
				}
			}
			if id >= groups {
				for _, msg := range inbox {
					if len(msg.Data) == 0 || msg.Data[0] != tagScalar {
						return fmt.Errorf("compress: non-group machine %d received records", id)
					}
				}
				return nil
			}
			sc := &scratch[id]
			li := &sc.li
			li.Reset()
			nV, nE := 0, 0
			for _, msg := range inbox {
				if len(msg.Data) == 0 {
					continue
				}
				switch msg.Data[0] {
				case tagVertex:
					nV += (len(msg.Data) - 1) / mpc.VertexRecordWords
				case tagEdge:
					nE += (len(msg.Data) - 1) / mpc.EdgeRecordWords
				}
			}
			li.Grow(nV, nE)
			// localIdx is shared across machines but the group partition
			// makes the writes disjoint: only this machine's own vertices
			// are indexed, and they are reset before the step returns.
			for _, msg := range inbox {
				if len(msg.Data) == 0 || msg.Data[0] != tagVertex {
					continue
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.VertexRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					v, w := mpc.DecodeVertexRecord(body, i)
					localIdx[v] = int32(len(li.VertexIDs))
					li.VertexIDs = append(li.VertexIDs, v)
					li.ResWeight = append(li.ResWeight, w)
				}
			}
			for _, msg := range inbox {
				if len(msg.Data) == 0 || msg.Data[0] != tagEdge {
					continue
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.EdgeRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					u, v, x0 := mpc.DecodeEdgeRecord(body, i)
					lu, lv := localIdx[u], localIdx[v]
					if lu < 0 || lv < 0 {
						return fmt.Errorf("compress: machine %d received edge (%d,%d) without both endpoints", id, u, v)
					}
					li.Edges = append(li.Edges, [2]int32{lu, lv})
					li.X0 = append(li.X0, x0)
				}
			}
			if err := mach.Charge(li.Words()); err != nil {
				return err
			}
			localEdgeCount[id] = int64(len(li.Edges))
			freeze := core.RunLocalSim(li, groups, iters, eps, p.BiasCoefficient, p.BiasGrowth, threshold, &sc.sim)
			// Stage the freeze results per home machine, reusing the
			// scatter counters/buffers (count → Reserve → Alloc → fill).
			rCnt, rBuf := sc.vCnt, sc.vBuf
			for dst := 0; dst < mTotal; dst++ {
				rCnt[dst] = 0
			}
			for _, v := range li.VertexIDs {
				rCnt[int(v)%mTotal]++
			}
			total := int64(0)
			for dst := 0; dst < mTotal; dst++ {
				if rCnt[dst] > 0 {
					total += 1 + int64(rCnt[dst])*mpc.ResultRecordWords
				}
			}
			mach.Reserve(total)
			for dst := 0; dst < mTotal; dst++ {
				if rCnt[dst] > 0 {
					buf, err := mach.Alloc(dst, 1+int(rCnt[dst])*mpc.ResultRecordWords)
					if err != nil {
						return err
					}
					buf[0] = tagResult
					rBuf[dst] = buf[1:]
				}
				rCnt[dst] = 0 // reuse as write cursor
			}
			for i, v := range li.VertexIDs {
				home := int(v) % mTotal
				mpc.SetResultRecord(rBuf[home], int(rCnt[home]), v, freeze[i])
				rCnt[home]++
				localIdx[v] = -1
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("compress: round %d simulate: %w", phase, err)
		}

		// Round 3 (collect): home machines record the freeze iteration of
		// their vertices. Writes are disjoint by construction.
		for _, v := range highList {
			freezeIterShared[v] = noFreeze
		}
		err = step(func(mach *mpc.Machine) error {
			for _, msg := range mach.Inbox() {
				if len(msg.Data) == 0 || msg.Data[0] != tagResult {
					return fmt.Errorf("compress: machine %d: unexpected tag in collect round", mach.ID())
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.ResultRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					v, fi := mpc.DecodeResultRecord(body, i)
					if int(v)%mTotal != mach.ID() {
						return fmt.Errorf("compress: result for vertex %d misrouted to machine %d", v, mach.ID())
					}
					freezeIterShared[v] = int32(fi)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("compress: round %d collect: %w", phase, err)
		}

		// Line (2h): every edge of E[V^high] gets the weight implied by the
		// earliest endpoint freeze (t′ = k when both stayed active).
		if cap(pow) < iters+1 {
			pow = make([]float64, iters+1)
		} else {
			pow = pow[:iters+1]
		}
		pow[0] = 1
		for t := 1; t <= iters; t++ {
			pow[t] = pow[t-1] * growth
		}
		fiOf := func(v graph.Vertex) int {
			if fi := freezeIterShared[v]; fi >= 0 {
				return int(fi)
			}
			return iters
		}
		// The Line (2i) per-vertex sums accumulate in the same walk that
		// applies the (2h) growth factors (one pass over E[V^high] instead
		// of the native solver's two; identical edge order, so the float
		// sums are bit-for-bit the same).
		for _, v := range highList {
			yMPC[v] = 0
		}
		for _, e := range highEdges {
			u, v := epFlat[2*e], epFlat[2*e+1]
			t := fiOf(u)
			if tv := fiOf(v); tv < t {
				t = tv
			}
			x := xPhase[e] * pow[t]
			xPhase[e] = x
			yMPC[u] += x
			yMPC[v] += x
		}

		// Freeze set 1: vertices frozen by their local simulation.
		newlyFrozen = newlyFrozen[:0]
		for _, v := range highList {
			if freezeIterShared[v] >= 0 {
				newlyFrozen = append(newlyFrozen, v)
			}
		}
		frozenAtSim := len(newlyFrozen)

		// Line (2i): over-covered vertices freeze too (sums accumulated in
		// the fused walk above).
		frozenAt2i := 0
		for _, v := range highList {
			if freezeIterShared[v] < 0 && yMPC[v] >= wres[v]*(1-1e-12) {
				newlyFrozen = append(newlyFrozen, v)
				frozenAt2i++
			}
		}
		for _, v := range newlyFrozen {
			frozen[v] = true
		}

		// Finalize edges: E[V^high] edges with a frozen endpoint keep their
		// Line (2h) weight; Line (2j) freezes the rest of a frozen vertex's
		// edges at 0. Each freeze updates the residual degrees and the
		// nonfrozen count in place — that is Line (2k), paid once per edge
		// over the whole run instead of the native solver's full edge sweep
		// per phase.
		for _, e := range highEdges {
			u, v := epFlat[2*e], epFlat[2*e+1]
			if frozen[u] || frozen[v] {
				edgeFrozen[e] = true
				xFinal[e] = xPhase[e]
				frozenIncident[u] += xPhase[e]
				frozenIncident[v] += xPhase[e]
				dualSum += xPhase[e]
				resDeg[u]--
				resDeg[v]--
				nonfrozenEdges--
			}
		}
		for _, v := range newlyFrozen {
			// The maintained residual degree makes Line (2j) free for the
			// common case: a vertex whose edges were all finalized above has
			// nothing left to freeze, so its adjacency is never walked (the
			// native solver rescans every frozen vertex's full adjacency).
			if resDeg[v] == 0 {
				continue
			}
			for _, e := range g.IncidentEdges(v) {
				if !edgeFrozen[e] {
					edgeFrozen[e] = true
					xFinal[e] = 0
					resDeg[epFlat[2*e]]--
					resDeg[epFlat[2*e+1]]--
					nonfrozenEdges--
				}
			}
		}

		if float64(nonfrozenEdges) > 0.99*float64(edgesBefore) {
			stalls++
		} else {
			stalls = 0
		}

		maxLocalEdges, totalLocalEdges := int64(0), int64(0)
		for _, c := range localEdgeCount {
			totalLocalEdges += c
			if c > maxLocalEdges {
				maxLocalEdges = c
			}
		}
		res.PhaseStats = append(res.PhaseStats, core.PhaseStat{
			Phase:               phase,
			AvgDegree:           d,
			NumNonfrozen:        numNonfrozen,
			NumHigh:             len(highList),
			NumInactive:         numInactive,
			Machines:            groups,
			Iterations:          iters,
			MaxMachineEdges:     int(maxLocalEdges),
			TotalMachineEdges:   totalLocalEdges,
			MaxMachineWords:     cluster.Metrics().MaxResidentWords,
			EdgesBefore:         edgesBefore,
			EdgesAfter:          nonfrozenEdges,
			DecayBound:          float64(n)*d*math.Pow(1-eps, float64(iters)) + float64(n)*dGamma,
			NewlyFrozenVertices: frozenAtSim + frozenAt2i,
			FrozenAtLine2i:      frozenAt2i,
		})
		res.LocalRounds = append(res.LocalRounds, iters)
		res.Groups = append(res.Groups, groups)
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindCompress,
			Phase:       phase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
			Degree:      d,
			Machines:    groups,
			Iterations:  iters,
		})
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindPhaseEnd,
			Phase:       phase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
			Degree:      d,
			Machines:    groups,
			Iterations:  iters,
		})
	}
	curPhase = -1
	res.Phases = phase

	if fallback {
		// The sampled groups cannot fit the per-machine budget even after
		// splitting: delegate the whole solve to the native round
		// structure. Restarting from scratch keeps the native solver's
		// invariants intact (it owns its state from phase 0) at the cost
		// of discarding any compressed progress — in practice the
		// precheck fails on the first round or not at all, since groups
		// only shrink as the instance contracts.
		nres, err := core.Run(ctx, g, nativeParams(p))
		if err != nil {
			return nil, fmt.Errorf("compress: native fallback: %w", err)
		}
		return &Result{Result: *nres, Fallback: true, Splits: res.Splits}, nil
	}

	// Line (3): the residual instance moves to one machine (one more
	// accounted round, with the memory charge enforcing that it fits) and
	// the centralized algorithm finishes it.
	active := make([]bool, n)
	wresAll := make([]float64, n)
	numActive := 0
	for v := 0; v < n; v++ {
		if frozen[v] {
			continue
		}
		w := g.Weight(graph.Vertex(v)) - frozenIncident[v]
		if w <= 1e-12*g.Weight(graph.Vertex(v)) {
			zeroFreeze(graph.Vertex(v))
			continue
		}
		active[v] = true
		wresAll[v] = w
		numActive++
	}
	// The incremental Line (2k) bookkeeping makes the residual edge count
	// available without another sweep (the active-vertex build above has
	// already applied its zero-freezes to it).
	finalEdges := nonfrozenEdges
	res.FinalPhaseEdges = finalEdges
	cluster.ResetResident()
	err = step(func(mach *mpc.Machine) error {
		if mach.ID() == 0 {
			return mach.Charge(finalEdges*mpc.EdgeRecordWords + int64(numActive)*mpc.VertexRecordWords)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("compress: final gather: %w", err)
	}

	lo, hi := 1-4*eps, 1-2*eps
	fp := uint64(phase)
	finalThreshold := func(v graph.Vertex, t int) float64 {
		return rng.UniformAt(p.Seed, lo, hi, labelThreshold, fp, uint64(v), uint64(t))
	}
	cres, err := centralized.Run(ctx,
		centralized.Instance{G: g, Active: active, Weights: wresAll},
		centralized.Options{Epsilon: eps, Init: centralized.InitDegreeAware, Threshold: finalThreshold},
	)
	if err != nil {
		return nil, fmt.Errorf("compress: final centralized phase: %w", err)
	}
	res.FinalPhaseIterations = cres.Iterations
	for v := 0; v < n; v++ {
		if cres.Cover[v] {
			frozen[v] = true
		}
	}
	for e := 0; e < mEdges; e++ {
		if !edgeFrozen[e] {
			edgeFrozen[e] = true
			xFinal[e] = cres.X[e]
			dualSum += cres.X[e]
		}
	}
	solver.Emit(obs, solver.Event{
		Kind:       solver.KindFinalPhase,
		Phase:      -1,
		Round:      cluster.Metrics().Rounds,
		DualBound:  dualSum,
		Iterations: cres.Iterations,
	})

	res.ClusterMetrics = cluster.Metrics()
	res.Rounds = res.ClusterMetrics.Rounds
	return res, nil
}

// nativeParams maps a compress parameter set onto the native solver for
// the fallback path: the shared fields transfer, and the compression knob
// is dropped in favor of core's own PhaseIterations.
func nativeParams(p Params) core.Params {
	cp := core.ParamsPractical(p.Epsilon, p.Seed)
	cp.HighDegreeExponent = p.HighDegreeExponent
	cp.BiasCoefficient = p.BiasCoefficient
	cp.BiasGrowth = p.BiasGrowth
	cp.SwitchThreshold = p.SwitchThreshold
	cp.NumMachines = p.NumGroups
	cp.MemoryWords = p.MemoryWords
	cp.MaxPhases = p.MaxPhases
	cp.Parallelism = p.Parallelism
	cp.Observer = p.Observer
	return cp
}
