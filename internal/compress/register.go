package compress

import (
	"context"

	"repro/internal/graph"
	"repro/internal/solver"
)

func init() {
	solver.Register(solver.Meta{
		Name:    "mpc-compress",
		Rank:    1,
		Tier:    solver.TierAccurate,
		Summary: "round-compressed Algorithm 2: sampled LOCAL simulation, 3 cluster rounds per phase",
	}, solver.Func(solveCompress))
}

// solveCompress adapts the round-compressed solver to the registry
// contract. As with the native solver, the returned duals are rescaled to
// exact feasibility (FeasibleDual) on the original graph, so the facade can
// build a checked certificate from them directly.
func solveCompress(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	params := DefaultParams(cfg.Epsilon, cfg.Seed)
	if cfg.PaperConstants {
		params = PaperParams(cfg.Epsilon, cfg.Seed)
	}
	params.Parallelism = cfg.Parallelism
	params.Observer = cfg.Observer
	res, err := Run(ctx, g, params)
	if err != nil {
		return nil, err
	}
	scaled, _ := res.FeasibleDual(g)
	return &solver.Outcome{
		Cover:  res.Cover,
		Duals:  scaled,
		Rounds: res.Rounds,
		Phases: res.Phases,
	}, nil
}
