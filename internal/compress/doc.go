// Package compress implements the round-compressed variant of Algorithm 2:
// the same sampled primal–dual phase logic as package core, but with each
// phase collapsed from five accounted MPC cluster rounds to three by
// dropping the two degree-aggregation rounds — the driver computes the
// average residual degree, and the home machines piggyback their nonfrozen
// edge counts on the scatter round so the aggregate stays load-bearing.
// All k simulated LOCAL rounds of a phase then ride on 3 communication
// rounds instead of 5 (the Assadi-style round-compression currency:
// simulated LOCAL rounds per MPC round rises by 5/3 while each group's
// induced neighborhood still fits one machine's memory).
//
// Each compressed MPC round:
//
//  1. samples the high-degree vertices into machine-sized groups with a
//     seeded, replica-deterministic hash (rng.ChooseAt);
//  2. gathers each group's induced neighborhood state — residual weights
//     and co-located edges with their initial duals — into one machine via
//     the zero-allocation arena (count → Reserve → Alloc → fill), charging
//     the materialized instance against the per-machine budget s; a
//     partition whose largest group would not fit is split (group count
//     doubled, partition redrawn) before any message is staged, and if
//     splitting cannot make it fit the solve falls back to the native
//     round structure (core.Run);
//  3. locally runs k simulated LOCAL rounds of the GhaffariJN20 phase
//     logic (core.RunLocalSim) inside that machine — k itself is capped
//     by the estimator's deviation budget (raising it past the native
//     iteration formula measurably inflates the feasibility-violation
//     factor; see Params.LocalRounds), which is exactly why the win is
//     taken on the round bill rather than on k;
//  4. scatters the updated freeze/dual state back to the vertex home
//     machines and reconciles globally (Lines 2h–2k), exactly as core.
//
// The reconcile step is identical to the native solver, so the dual
// certificate quality is unchanged: the returned duals rescale to exact
// feasibility on the original graph via core.Result.FeasibleDual. What
// changes is the round bill — 3·phases+1 accounted rounds instead of
// 5·phases+1 — and with it the per-round arena routing and barrier cost
// that the rounds pay in the simulator (and that round counts price in the
// MPC model). Progress is observable through the standard round/phase
// events plus solver.KindCompress, which carries the simulated-LOCAL-round
// count of each compressed round.
package compress
