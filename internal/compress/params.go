package compress

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/solver"
)

// Params configures the round-compressed solver. Use DefaultParams or
// PaperParams and adjust fields; the zero value is invalid. The shared
// fields (Epsilon … MemoryWords) have the same meaning as in core.Params;
// the compression-specific knobs are LocalRounds and MaxSplits.
type Params struct {
	// Epsilon is the accuracy parameter ε; the cover weight is certified at
	// (2+O(ε))·OPT, exactly as for the native solver.
	Epsilon float64
	// Seed drives all randomness (group sampling, thresholds) reproducibly.
	Seed uint64
	// HighDegreeExponent is the γ in the V^high rule d(v) ≥ d^γ.
	HighDegreeExponent float64
	// BiasCoefficient and BiasGrowth define the one-sided estimator bias,
	// as in core.Params.
	BiasCoefficient float64
	// BiasGrowth is the per-iteration growth factor of the bias cushion.
	BiasGrowth float64
	// SwitchThreshold returns the average-degree level at which the
	// residual instance moves to one machine.
	SwitchThreshold func(n int) float64
	// LocalRounds returns k, the number of simulated LOCAL rounds run
	// inside each gathered group per compressed MPC round, given the group
	// count. The default matches the native per-phase iteration count
	// (core.Params.PhaseIterations): k is capped by the estimator's
	// deviation budget, so the compression is taken on the round bill —
	// all k LOCAL rounds ride on 3 cluster rounds instead of the native 5
	// — rather than by inflating k (see DefaultParams).
	LocalRounds func(groups int, epsilon float64) int
	// NumGroups returns the number of sampled groups for a compressed
	// round at average residual degree d (√d, as the native machine count).
	NumGroups func(d float64) int
	// MemoryWords returns s, the per-machine memory budget in words, for a
	// graph with n vertices.
	MemoryWords func(n int) int64
	// GatherWords returns the share of a machine's budget that one gathered
	// group may occupy (vertex plus co-located edge records); the remainder
	// is headroom for message framing, the scalar fan-in, and result
	// staging. Nil means MemoryWords(n)/2. The memory precheck splits any
	// partition whose largest group exceeds this.
	GatherWords func(n int) int64
	// MaxSplits bounds how many times an oversized partition is split
	// (group count doubled and redrawn) before the solve falls back to the
	// native round structure (0 = 4).
	MaxSplits int
	// MaxPhases caps the compressed-round loop as a safety net (0 = 64).
	MaxPhases int
	// Parallelism bounds concurrent machine execution (0 = GOMAXPROCS).
	Parallelism int
	// Observer, when non-nil, receives phase, round, and compression
	// events as the algorithm executes (see internal/solver).
	Observer solver.Observer
}

// DefaultParams returns the practical-scale parameter set: the shared
// fields mirror core.ParamsPractical, and LocalRounds matches the native
// PhaseIterations formula, k = max(2, ⌊0.5·ln(groups)/ln(1/(1−ε))⌋).
//
// Keeping k at the native value is deliberate: k is bounded by the
// estimator's deviation budget, not by communication. Raising it makes
// estimator-starved vertices (few co-located edges) freeze late at
// x·(1/(1−ε))^t values the one-sided bias no longer covers, and the
// measured feasibility-violation factor α — hence the certified ratio —
// grows roughly as the extra growth factor (measured: coefficient 0.65
// already costs ≈20% of the certified ratio; 2.0 costs a factor of 13).
// The compression win is therefore taken entirely on the round bill: the
// same k simulated LOCAL rounds ride on 3 accounted cluster rounds
// instead of the native 5, so the simulated-LOCAL-rounds-per-MPC-round
// density rises by 5/3 at an unchanged certificate.
func DefaultParams(epsilon float64, seed uint64) Params {
	cp := core.ParamsPractical(epsilon, seed)
	return Params{
		Epsilon:            cp.Epsilon,
		Seed:               cp.Seed,
		HighDegreeExponent: cp.HighDegreeExponent,
		BiasCoefficient:    cp.BiasCoefficient,
		BiasGrowth:         cp.BiasGrowth,
		SwitchThreshold:    cp.SwitchThreshold,
		NumGroups:          cp.NumMachines,
		MemoryWords:        cp.MemoryWords,
		LocalRounds:        defaultLocalRounds,
	}
}

// defaultLocalRounds matches the native per-phase iteration formula:
// max(2, ⌊0.5·ln(groups)/ln(1/(1−ε))⌋). See DefaultParams for why the
// coefficient must not be raised casually.
func defaultLocalRounds(groups int, epsilon float64) int {
	if groups < 2 {
		return 2
	}
	k := int(math.Floor(0.5 * math.Log(float64(groups)) / math.Log(1/(1-epsilon))))
	if k < 2 {
		return 2
	}
	return k
}

// PaperParams returns the paper-constant variant (core.ParamsPaper shared
// fields). As with the native solver, the log³⁰n switch-over makes every
// practically sized instance skip straight to the final centralized phase.
func PaperParams(epsilon float64, seed uint64) Params {
	cp := core.ParamsPaper(epsilon, seed)
	p := DefaultParams(epsilon, seed)
	p.HighDegreeExponent = cp.HighDegreeExponent
	p.BiasCoefficient = cp.BiasCoefficient
	p.BiasGrowth = cp.BiasGrowth
	p.SwitchThreshold = cp.SwitchThreshold
	return p
}

// Validate checks the parameter set.
func (p *Params) Validate() error {
	if p.Epsilon <= 0 || p.Epsilon > 0.125 {
		return fmt.Errorf("compress: epsilon %v out of (0, 0.125]: %w", p.Epsilon, solver.ErrUnsupported)
	}
	if p.HighDegreeExponent <= 0 || p.HighDegreeExponent >= 1 {
		return fmt.Errorf("compress: high-degree exponent %v out of (0, 1)", p.HighDegreeExponent)
	}
	if p.BiasCoefficient < 0 || p.BiasGrowth < 1 {
		return fmt.Errorf("compress: bias parameters (%v, %v) invalid", p.BiasCoefficient, p.BiasGrowth)
	}
	if p.SwitchThreshold == nil || p.LocalRounds == nil || p.NumGroups == nil || p.MemoryWords == nil {
		return fmt.Errorf("compress: nil parameter function (use DefaultParams/PaperParams as a base)")
	}
	if p.MaxSplits < 0 {
		return fmt.Errorf("compress: negative MaxSplits %d", p.MaxSplits)
	}
	if p.MaxPhases < 0 {
		return fmt.Errorf("compress: negative MaxPhases %d", p.MaxPhases)
	}
	return nil
}
