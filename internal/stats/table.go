package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of strings and renders them as an aligned,
// pipe-delimited text table (valid GitHub-flavoured markdown), which is how
// every experiment prints the series it reproduces. It can also emit CSV.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells are stringified with %v; float64 cells are
// formatted with 4 significant digits for readability.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v != v: // NaN
		return "NaN"
	case v >= 1e6 || v <= -1e6 || (v < 1e-3 && v > -1e-3):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the raw string rows (for tests).
func (t *Table) Rows() [][]string { return t.rows }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header row first). Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
