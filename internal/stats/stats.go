// Package stats provides the small statistical toolkit used by the
// experiment harness: summaries, quantiles, least-squares fits (for
// verifying growth rates such as "rounds grow like log log d"), and
// formatting of aligned text tables and CSV.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Stddev float64
	Median, P90  float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(varsum / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	s.P90 = Quantile(xs, 0.9)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation between order statistics. It copies the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// GeometricMean returns the geometric mean of strictly positive samples.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if !(x > 0) {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// LinearFit fits y = a + b·x by least squares and returns (a, b, r²).
// Degenerate inputs (fewer than 2 points, zero x-variance) return NaNs.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		// Perfectly constant y: the fit is exact.
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// LogLog returns log2(log2(x)) clamped below at 0, the natural abscissa for
// checking O(log log d) growth; defined for x > 1, else 0.
func LogLog(x float64) float64 {
	if x <= 2 {
		return 0
	}
	return math.Log2(math.Log2(x))
}
