package stats

import (
	"math"
	"strings"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Mean, 3) {
		t.Fatalf("summary %+v", s)
	}
	if !almost(s.Median, 3) {
		t.Fatalf("median %v", s.Median)
	}
	if !almost(s.Stddev, math.Sqrt(2.5)) {
		t.Fatalf("stddev %v", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N=%d", s.N)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Stddev != 0 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); !almost(q, 2.5) {
		t.Fatalf("median = %v", q)
	}
	// Input must be unmodified.
	if xs[0] != 4 {
		t.Fatal("Quantile modified its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) not NaN")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for q=2")
		}
	}()
	Quantile([]float64{1}, 2)
}

func TestGeometricMean(t *testing.T) {
	if g := GeometricMean([]float64{1, 4}); !almost(g, 2) {
		t.Fatalf("geomean %v", g)
	}
	if g := GeometricMean([]float64{2, 2, 2}); !almost(g, 2) {
		t.Fatalf("geomean %v", g)
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Fatal("geomean of empty not NaN")
	}
	if !math.IsNaN(GeometricMean([]float64{1, -1})) {
		t.Fatal("geomean with negative not NaN")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2 := LinearFit(x, y)
	if !almost(a, 1) || !almost(b, 2) || !almost(r2, 1) {
		t.Fatalf("fit a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitConstant(t *testing.T) {
	a, b, r2 := LinearFit([]float64{0, 1, 2}, []float64{5, 5, 5})
	if !almost(a, 5) || !almost(b, 0) || !almost(r2, 1) {
		t.Fatalf("constant fit a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if a, _, _ := LinearFit([]float64{1}, []float64{1}); !math.IsNaN(a) {
		t.Fatal("fit of one point not NaN")
	}
	if a, _, _ := LinearFit([]float64{2, 2}, []float64{1, 3}); !math.IsNaN(a) {
		t.Fatal("fit with zero x-variance not NaN")
	}
	if a, _, _ := LinearFit([]float64{1, 2}, []float64{1}); !math.IsNaN(a) {
		t.Fatal("length mismatch not NaN")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		y[i] = 2 + 0.5*float64(i) + math.Sin(float64(i)) // bounded noise
	}
	_, b, r2 := LinearFit(x, y)
	if math.Abs(b-0.5) > 0.05 {
		t.Fatalf("slope %v, want ~0.5", b)
	}
	if r2 < 0.98 {
		t.Fatalf("r2 %v too low", r2)
	}
}

func TestLogLog(t *testing.T) {
	if LogLog(2) != 0 || LogLog(1) != 0 || LogLog(0) != 0 {
		t.Fatal("LogLog not clamped at small x")
	}
	if !almost(LogLog(16), 2) { // log2(log2 16) = log2 4 = 2
		t.Fatalf("LogLog(16) = %v", LogLog(16))
	}
	if !almost(LogLog(256), 3) {
		t.Fatalf("LogLog(256) = %v", LogLog(256))
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-long-name", 12345678.0)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "### demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "| alpha") || !strings.Contains(out, "beta-long-name") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "1.235e+07") {
		t.Fatalf("large float not in scientific notation:\n%s", out)
	}
	// Alignment: every data line has the same length.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var widths []int
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			widths = append(widths, len(l))
		}
	}
	for _, w := range widths {
		if w != widths[0] {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.23456: "1.235",
		1e-5:    "1.000e-05",
		-2e7:    "-2.000e+07",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if formatFloat(math.NaN()) != "NaN" {
		t.Error("NaN formatting")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow("has\"quote", 2)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "a,b\n\"x,y\",plain\n\"has\"\"quote\",2\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestTableRowsAccessors(t *testing.T) {
	tb := NewTable("t", "c")
	if tb.NumRows() != 0 {
		t.Fatal("fresh table has rows")
	}
	tb.AddRow(1).AddRow(2)
	if tb.NumRows() != 2 || tb.Rows()[1][0] != "2" {
		t.Fatalf("rows %v", tb.Rows())
	}
}
