package stats

import (
	"math"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := NewChart("demo", "d", "rounds")
	c.AddSeries("mpc", []float64{1, 2, 3, 4}, []float64{5, 5, 6, 6})
	c.AddSeries("local", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "* mpc", "o local", "x: d", "y: rounds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Marks present in the plot body.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("marks missing:\n%s", out)
	}
	// Axis extremes labelled.
	if !strings.Contains(out, "40") || !strings.Contains(out, "5") {
		t.Fatalf("y labels missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("empty", "", "")
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(no data)") {
		t.Fatalf("empty chart output: %q", sb.String())
	}
}

func TestChartIgnoresNonFinite(t *testing.T) {
	c := NewChart("t", "", "")
	c.AddSeries("s", []float64{1, math.NaN(), 2, math.Inf(1)}, []float64{1, 2, math.Inf(-1), 4})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("non-finite point leaked into the chart")
	}
}

func TestChartDegenerateRange(t *testing.T) {
	c := NewChart("flat", "", "")
	c.AddSeries("s", []float64{1, 2, 3}, []float64{7, 7, 7}) // zero y-range
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("flat series not plotted")
	}
	c2 := NewChart("point", "", "")
	c2.AddSeries("s", []float64{5}, []float64{5}) // single point
	var sb2 strings.Builder
	if err := c2.Render(&sb2); err != nil {
		t.Fatal(err)
	}
}

func TestChartManySeriesMarksCycle(t *testing.T) {
	c := NewChart("cycle", "", "")
	for i := 0; i < 8; i++ {
		c.AddSeries("s", []float64{float64(i)}, []float64{float64(i)})
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestChartTinyDimensionsClamped(t *testing.T) {
	c := NewChart("tiny", "", "")
	c.Width, c.Height = 1, 1
	c.AddSeries("s", []float64{1, 2}, []float64{1, 2})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}
