package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders one or more named series as an ASCII scatter chart — the
// repository's stand-in for the figures a systems paper would plot. Series
// share the x axis; each gets a distinct mark.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)
	series []chartSeries
}

type chartSeries struct {
	name string
	mark byte
	xs   []float64
	ys   []float64
}

// NewChart returns an empty chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 60, Height: 16}
}

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// AddSeries appends a series; xs and ys must have equal length.
func (c *Chart) AddSeries(name string, xs, ys []float64) *Chart {
	mark := seriesMarks[len(c.series)%len(seriesMarks)]
	c.series = append(c.series, chartSeries{
		name: name,
		mark: mark,
		xs:   append([]float64(nil), xs...),
		ys:   append([]float64(nil), ys...),
	})
	return c
}

// Render draws the chart to w. Charts with no finite points render a
// placeholder line instead of failing.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.xs {
			x, y := s.xs[i], s.ys[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if points == 0 {
		b.WriteString("  (no data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.series {
		for i := range s.xs {
			x, y := s.xs[i], s.ys[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
			grid[row][col] = s.mark
		}
	}
	yLo, yHi := formatFloat(minY), formatFloat(maxY)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for r, rowBytes := range grid {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(rowBytes))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", margin), width-len(formatFloat(maxX)), formatFloat(minX), formatFloat(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s    y: %s\n", strings.Repeat(" ", margin), c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", margin), s.mark, s.name)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
