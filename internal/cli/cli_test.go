package cli

import (
	"testing"

	"repro/internal/graph"
)

func TestBuildGraphAllGenerators(t *testing.T) {
	for _, gen := range Generators() {
		g, err := BuildGraph(gen, 200, 8, "unit", 1)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if g.NumVertices() < 1 {
			t.Fatalf("%s: empty graph", gen)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
	}
}

func TestBuildGraphAllWeightModels(t *testing.T) {
	for _, w := range WeightModels() {
		g, err := BuildGraph("gnp", 100, 6, w, 2)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if !(g.Weight(graph.Vertex(v)) > 0) {
				t.Fatalf("%s: bad weight at %d", w, v)
			}
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := BuildGraph("nope", 10, 2, "unit", 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := BuildGraph("gnp", 10, 2, "nope", 1); err == nil {
		t.Fatal("unknown weight model accepted")
	}
	if _, err := BuildGraph("gnp", -1, 2, "unit", 1); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestBuildGraphEdgeCases(t *testing.T) {
	// Saturating degree on a clique request, tiny n, empty weight name.
	if _, err := BuildGraph("regular", 5, 100, "", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGraph("bipartite", 3, 100, "unit", 1); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph("grid", 10, 0, "unit", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 10 {
		t.Fatalf("grid smaller than requested: %d", g.NumVertices())
	}
	if _, err := BuildGraph("planted", 30, 4, "unit", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGraph("powerlaw", 50, 1, "unit", 1); err != nil {
		t.Fatal(err)
	}
}

func TestWeightModelDefault(t *testing.T) {
	m, err := WeightModel("")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "unit" {
		t.Fatalf("default model %q", m.Name())
	}
}
