package cli

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// TestStreamInstanceMatchesBuildGraph pins the contract that -stream output,
// read back through the two-pass CSR path, is the same instance BuildGraph
// constructs in memory — same structure, same edge ids, same weights.
func TestStreamInstanceMatchesBuildGraph(t *testing.T) {
	cases := []struct {
		generator string
		n         int
		d         float64
		weights   string
	}{
		{"gnp", 500, 8, "uniform"},
		{"gnp", 200, 4, "unit"},
		{"bipartite", 300, 6, "exp"},
		{"grid", 100, 0, "loguniform"},
		{"star", 64, 0, "uniform"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		nv, m, err := StreamInstance(&buf, c.generator, c.n, c.d, c.weights, 7)
		if err != nil {
			t.Fatalf("%s: %v", c.generator, err)
		}
		streamed, err := graph.ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: reading streamed output: %v", c.generator, err)
		}
		if streamed.NumVertices() != nv || int64(streamed.NumEdges()) != m {
			t.Fatalf("%s: reported (n=%d,m=%d) but parsed (n=%d,m=%d)",
				c.generator, nv, m, streamed.NumVertices(), streamed.NumEdges())
		}
		built, err := BuildGraph(c.generator, c.n, c.d, c.weights, 7)
		if err != nil {
			t.Fatal(err)
		}
		var want, got bytes.Buffer
		if err := graph.Write(&want, built); err != nil {
			t.Fatal(err)
		}
		if err := graph.Write(&got, streamed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("%s: streamed instance differs from BuildGraph instance", c.generator)
		}
	}
}

func TestStreamInstanceRejections(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := StreamInstance(&buf, "powerlaw", 100, 8, "unit", 1); err == nil {
		t.Fatal("non-streamable generator accepted")
	}
	if _, _, err := StreamInstance(&buf, "gnp", 100, 8, "degree", 1); err == nil {
		t.Fatal("degree-correlated weight model accepted for streaming")
	}
	if _, _, err := StreamInstance(&buf, "gnp", -1, 8, "unit", 1); err == nil {
		t.Fatal("negative n accepted")
	}
}
