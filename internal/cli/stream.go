package cli

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
)

// StreamableGenerators lists the -gen values whose edge stream can be
// written to disk without materializing the graph (mwvc-gen -stream).
func StreamableGenerators() []string {
	return []string{"gnp", "bipartite", "grid", "star"}
}

// streamSpec resolves generator parameters to the actual vertex count and a
// replayable edge stream, mirroring BuildGraph's parameter interpretation
// exactly so that `-stream` and in-memory generation describe the same
// instance.
func streamSpec(generator string, n int, d float64, seed uint64) (int, func(gen.EdgeEmitter), error) {
	switch strings.ToLower(generator) {
	case "gnp":
		p := 0.0
		if n > 1 {
			p = d / float64(n-1)
			if p > 1 {
				p = 1
			}
		}
		return n, func(emit gen.EdgeEmitter) { gen.EmitGnp(seed, n, p, emit) }, nil
	case "bipartite":
		p := d / float64(n)
		if p > 1 {
			p = 1
		}
		nLeft, nRight := n/2, n-n/2
		return n, func(emit gen.EdgeEmitter) { gen.EmitRandomBipartite(seed, nLeft, nRight, p, emit) }, nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return side * side, func(emit gen.EdgeEmitter) { gen.EmitGrid(side, side, emit) }, nil
	case "star":
		return n, func(emit gen.EdgeEmitter) { gen.EmitStar(n, emit) }, nil
	default:
		return 0, nil, fmt.Errorf("cli: generator %q is not streamable (options: %s)",
			generator, strings.Join(StreamableGenerators(), ", "))
	}
}

// StreamJob is a validated streaming-generation request: parameters have
// been checked, nothing has been written. Produced by PrepareStream, so
// callers can open (and possibly truncate) their output destination only
// after validation has succeeded.
type StreamJob struct {
	// Vertices is the instance's actual vertex count (generators like grid
	// may round the requested n up).
	Vertices int
	seed     uint64
	stream   func(gen.EdgeEmitter)
	model    gen.WeightModel
}

// PrepareStream validates a streaming-generation request (generator
// streamability, weight-model compatibility, parameter ranges) and returns
// the job to run. Weight models that depend on vertex degrees (degree,
// inverse-degree) require the built graph and are rejected.
func PrepareStream(generator string, n int, d float64, weights string, seed uint64) (*StreamJob, error) {
	if n < 0 {
		return nil, fmt.Errorf("cli: negative vertex count %d", n)
	}
	nv, stream, err := streamSpec(generator, n, d, seed)
	if err != nil {
		return nil, err
	}
	model, err := WeightModel(weights)
	if err != nil {
		return nil, err
	}
	if _, needsDegrees := model.(gen.DegreeCorrelated); needsDegrees {
		return nil, fmt.Errorf("cli: weight model %q requires vertex degrees and cannot stream; generate without -stream", weights)
	}
	return &StreamJob{Vertices: nv, seed: seed, stream: stream, model: model}, nil
}

// StreamInstance generates the requested instance and writes it to w in the
// streaming "mwvc-el 1" format without ever holding the graph in memory. It
// is PrepareStream + WriteTo in one call, returning the written vertex and
// edge counts.
func StreamInstance(w io.Writer, generator string, n int, d float64, weights string, seed uint64) (vertices int, edges int64, err error) {
	job, err := PrepareStream(generator, n, d, weights, seed)
	if err != nil {
		return 0, 0, err
	}
	m, err := job.WriteTo(w)
	return job.Vertices, m, err
}

// WriteTo streams the instance to w: weights are sampled per vertex and
// edges flow straight from the generator to the writer. The output, read
// back through ReadStream, is bit-identical to what BuildGraph would
// construct for the same parameters. It returns the edge count written.
func (job *StreamJob) WriteTo(w io.Writer) (int64, error) {
	nv, model, seed := job.Vertices, job.model, job.seed
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 64)
	buf = append(buf, "mwvc-el 1\n"...)
	buf = strconv.AppendInt(buf, int64(nv), 10)
	buf = append(buf, '\n')
	bw.Write(buf)
	// Same sampling rule as gen.ApplyWeights(g, seed+1, model) in BuildGraph;
	// the degree argument is irrelevant for every streamable model.
	for v := 0; v < nv; v++ {
		if wt := model.Sample(seed+1, graph.Vertex(v), 0); wt != 1 {
			buf = append(buf[:0], 'w', ' ')
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, wt, 'g', -1, 64)
			buf = append(buf, '\n')
			bw.Write(buf)
		}
	}
	var m int64
	job.stream(func(u, v graph.Vertex) {
		b := append(buf[:0], 'e', ' ')
		b = strconv.AppendInt(b, int64(u), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, '\n')
		bw.Write(b)
		m++
	})
	// bufio latches the first write error; one Flush check covers them all.
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return m, nil
}
