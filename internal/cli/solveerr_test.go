package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestDeadlineMessage(t *testing.T) {
	wrapped := fmt.Errorf("solving: %w", context.DeadlineExceeded)
	cases := []struct {
		err    error
		rounds int
		want   string
		ok     bool
	}{
		{nil, 3, "", false},
		{errors.New("boom"), 3, "", false},
		{context.Canceled, 3, "", false},
		{context.DeadlineExceeded, 12, "deadline exceeded after 12 rounds", true},
		{wrapped, 4, "deadline exceeded after 4 rounds", true},
		{wrapped, 0, "deadline exceeded before the first round completed", true},
	}
	for _, tc := range cases {
		msg, ok := DeadlineMessage(tc.err, tc.rounds)
		if ok != tc.ok || msg != tc.want {
			t.Errorf("DeadlineMessage(%v, %d) = (%q, %v), want (%q, %v)",
				tc.err, tc.rounds, msg, ok, tc.want, tc.ok)
		}
	}
}
