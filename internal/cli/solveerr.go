package cli

import (
	"context"
	"errors"
	"fmt"
)

// DeadlineMessage converts a solve error caused by a context deadline into
// the user-facing "deadline exceeded after N rounds" form shared by the CLI
// (cmd/mwvc -timeout) and the solve service (per-request deadlines in
// internal/serve). rounds is the number of communication rounds the solve
// completed before the deadline hit, as counted from KindRound observer
// events; sequential algorithms that emit no round events report 0 rounds,
// which the message words accordingly. ok is false when err is nil or not a
// deadline error — callers fall through to their generic error path.
func DeadlineMessage(err error, rounds int) (msg string, ok bool) {
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		return "", false
	}
	if rounds == 0 {
		return "deadline exceeded before the first round completed", true
	}
	return fmt.Sprintf("deadline exceeded after %d rounds", rounds), true
}
