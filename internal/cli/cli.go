// Package cli holds the instance-construction helpers shared by the
// command-line tools (cmd/mwvc, cmd/mwvc-gen, cmd/mwvc-bench).
package cli

import (
	"fmt"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Generators lists the accepted -gen values.
func Generators() []string {
	return []string{"gnp", "powerlaw", "bipartite", "regular", "grid", "star", "clique", "planted", "rmat", "smallworld"}
}

// WeightModels lists the accepted -weights values.
func WeightModels() []string {
	return []string{"unit", "uniform", "exp", "loguniform", "degree", "inverse-degree"}
}

// BuildGraph constructs the requested instance. n is the vertex count and d
// the target average degree (interpreted sensibly per generator).
func BuildGraph(generator string, n int, d float64, weights string, seed uint64) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("cli: negative vertex count %d", n)
	}
	var g *graph.Graph
	switch strings.ToLower(generator) {
	case "gnp":
		g = gen.GnpAvgDegree(seed, n, d)
	case "powerlaw":
		k := int(d / 2)
		if k < 1 {
			k = 1
		}
		g = gen.PreferentialAttachment(seed, n, k)
	case "bipartite":
		p := d / float64(n)
		if p > 1 {
			p = 1
		}
		g = gen.RandomBipartite(seed, n/2, n-n/2, p)
	case "regular":
		k := int(d)
		if k >= n {
			k = n - 1
		}
		if k < 0 {
			k = 0
		}
		g = gen.RandomRegular(seed, n, k)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		g = gen.Grid(side, side)
	case "star":
		g = gen.Star(n)
	case "clique":
		g = gen.Clique(n)
	case "planted":
		cover := n / 10
		if cover < 1 {
			cover = 1
		}
		g, _ = gen.PlantedCover(seed, n, cover, int(d*float64(n)/2), 1, 100)
	case "rmat":
		scale := 1
		for 1<<uint(scale) < n && scale < 30 {
			scale++
		}
		ef := int(d / 2)
		if ef < 1 {
			ef = 1
		}
		g = gen.RMAT(seed, scale, ef, 0.57, 0.19, 0.19)
	case "smallworld":
		k := int(d / 2)
		if k < 1 {
			k = 1
		}
		for 2*k >= n && k > 1 {
			k--
		}
		if n < 3 {
			return nil, fmt.Errorf("cli: smallworld needs n >= 3")
		}
		g = gen.WattsStrogatz(seed, n, k, 0.2)
	default:
		return nil, fmt.Errorf("cli: unknown generator %q (options: %s)", generator, strings.Join(Generators(), ", "))
	}
	model, err := WeightModel(weights)
	if err != nil {
		return nil, err
	}
	return gen.ApplyWeights(g, seed+1, model), nil
}

// WeightModel resolves a -weights flag value.
func WeightModel(name string) (gen.WeightModel, error) {
	switch strings.ToLower(name) {
	case "", "unit":
		return gen.Unit{}, nil
	case "uniform":
		return gen.UniformRange{Lo: 1, Hi: 100}, nil
	case "exp":
		return gen.Exponential{Mean: 10}, nil
	case "loguniform":
		return gen.PowerLaw{MaxWeight: 1e9}, nil
	case "degree":
		return gen.DegreeCorrelated{Alpha: 1}, nil
	case "inverse-degree":
		return gen.DegreeCorrelated{Alpha: -1}, nil
	default:
		return nil, fmt.Errorf("cli: unknown weight model %q (options: %s)", name, strings.Join(WeightModels(), ", "))
	}
}
