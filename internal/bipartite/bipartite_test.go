package bipartite

import (
	"context"

	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestSides(t *testing.T) {
	g := gen.CompleteBipartite(3, 4)
	left, err := Sides(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if !left[v] {
			t.Fatalf("vertex %d should be left", v)
		}
	}
	for v := 3; v < 7; v++ {
		if left[v] {
			t.Fatalf("vertex %d should be right", v)
		}
	}
}

func TestSidesRejectsOddCycle(t *testing.T) {
	if _, err := Sides(gen.Cycle(5)); err == nil {
		t.Fatal("odd cycle accepted as bipartite")
	}
	if _, err := Sides(gen.Cycle(6)); err != nil {
		t.Fatalf("even cycle rejected: %v", err)
	}
	if _, err := Sides(gen.Clique(4)); err == nil {
		t.Fatal("K4 accepted as bipartite")
	}
}

func TestSidesDisconnected(t *testing.T) {
	// Two disjoint edges plus an isolated vertex.
	g, err := graph.FromEdgeList(5, [][2]graph.Vertex{{0, 1}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sides(g); err != nil {
		t.Fatal(err)
	}
}

func TestMaximumMatchingCompleteBipartite(t *testing.T) {
	g := gen.CompleteBipartite(4, 6)
	left, _ := Sides(g)
	mate, size := MaximumMatching(g, left)
	if size != 4 {
		t.Fatalf("K_{4,6} matching size %d, want 4", size)
	}
	for v, u := range mate {
		if u >= 0 && mate[u] != graph.Vertex(v) {
			t.Fatalf("mate pointers inconsistent at %d", v)
		}
	}
}

func TestMaximumMatchingPath(t *testing.T) {
	// Path on 5 vertices: maximum matching 2.
	g := gen.Path(5)
	left, err := Sides(g)
	if err != nil {
		t.Fatal(err)
	}
	_, size := MaximumMatching(g, left)
	if size != 2 {
		t.Fatalf("P5 matching %d, want 2", size)
	}
}

func TestMinimumVertexCoverSmall(t *testing.T) {
	// K_{3,5}: cover = smaller side = 3.
	cover, size, err := MinimumVertexCover(gen.CompleteBipartite(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if size != 3 {
		t.Fatalf("K_{3,5} cover %d, want 3", size)
	}
	if ok, _ := verify.IsCover(gen.CompleteBipartite(3, 5), cover); !ok {
		t.Fatal("not a cover")
	}
	// Even cycle C6: cover 3.
	if _, size, err = MinimumVertexCover(gen.Cycle(6)); err != nil || size != 3 {
		t.Fatalf("C6 cover %d err %v, want 3", size, err)
	}
	// Star: cover 1.
	if _, size, err = MinimumVertexCover(gen.Star(9)); err != nil || size != 1 {
		t.Fatalf("star cover %d err %v, want 1", size, err)
	}
}

func TestMinimumVertexCoverMatchesBranchAndBound(t *testing.T) {
	f := func(seed uint64) bool {
		nl, nr := 3+int(seed%6), 3+int(seed%5)
		g := gen.RandomBipartite(seed, nl, nr, 0.4)
		cover, size, err := MinimumVertexCover(g)
		if err != nil {
			t.Log(err)
			return false
		}
		if ok, _ := verify.IsCover(g, cover); !ok {
			return false
		}
		_, opt, err := exact.Solve(context.Background(), g)
		if err != nil {
			t.Log(err)
			return false
		}
		return float64(size) == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumVertexCoverScale(t *testing.T) {
	g := gen.RandomBipartite(9, 2000, 2000, 0.002)
	cover, size, err := MinimumVertexCover(g)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := verify.IsCover(g, cover); !ok {
		t.Fatal("not a cover at scale")
	}
	count := 0
	for _, in := range cover {
		if in {
			count++
		}
	}
	if count != size {
		t.Fatalf("size %d but %d marked", size, count)
	}
}

func TestMinimumVertexCoverRejectsNonBipartite(t *testing.T) {
	if _, _, err := MinimumVertexCover(gen.Clique(5)); err == nil {
		t.Fatal("K5 accepted")
	}
}

func TestEdgeless(t *testing.T) {
	g := graph.NewBuilder(4).MustBuild()
	cover, size, err := MinimumVertexCover(g)
	if err != nil || size != 0 {
		t.Fatalf("edgeless cover %d err %v", size, err)
	}
	for _, in := range cover {
		if in {
			t.Fatal("edgeless vertex covered")
		}
	}
}
