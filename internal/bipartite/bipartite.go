// Package bipartite computes exact minimum (unweighted) vertex covers on
// bipartite graphs via König's theorem: in a bipartite graph the size of a
// minimum vertex cover equals the size of a maximum matching, and the cover
// can be extracted from the matching by an alternating-path search.
//
// This gives the experiment harness *exact* ground truth on an entire graph
// family at scales far beyond branch and bound (the general-graph exact
// solver caps at 64 vertices), so the true — not just certified —
// approximation ratio of the MPC algorithm can be measured at n = 10⁴⁺.
// Maximum matchings are found with Hopcroft–Karp in O(E·√V).
package bipartite

import (
	"fmt"

	"repro/internal/graph"
)

// Sides splits the vertices of g into two independent sets via BFS
// 2-coloring. It errors if g contains an odd cycle (not bipartite).
func Sides(g *graph.Graph) (left []bool, err error) {
	n := g.NumVertices()
	color := make([]int8, n) // 0 unvisited, 1 left, 2 right
	queue := make([]graph.Vertex, 0, n)
	for s := 0; s < n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue = append(queue[:0], graph.Vertex(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if color[u] == 0 {
					color[u] = 3 - color[v]
					queue = append(queue, u)
				} else if color[u] == color[v] {
					return nil, fmt.Errorf("bipartite: odd cycle through vertices %d and %d", v, u)
				}
			}
		}
	}
	left = make([]bool, n)
	for v := 0; v < n; v++ {
		left[v] = color[v] == 1
	}
	return left, nil
}

// MaximumMatching runs Hopcroft–Karp and returns mate[v] (or -1) and the
// matching size. left must be a valid bipartition (see Sides).
func MaximumMatching(g *graph.Graph, left []bool) (mate []graph.Vertex, size int) {
	n := g.NumVertices()
	mate = make([]graph.Vertex, n)
	for v := range mate {
		mate[v] = -1
	}
	const inf = int32(1) << 30
	dist := make([]int32, n)

	bfs := func() bool {
		queue := make([]graph.Vertex, 0, n)
		found := false
		for v := 0; v < n; v++ {
			if left[v] && mate[v] < 0 {
				dist[v] = 0
				queue = append(queue, graph.Vertex(v))
			} else {
				dist[v] = inf
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				w := mate[u]
				if w < 0 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}
	var dfs func(v graph.Vertex) bool
	dfs = func(v graph.Vertex) bool {
		for _, u := range g.Neighbors(v) {
			w := mate[u]
			if w < 0 || (dist[w] == dist[v]+1 && dfs(w)) {
				mate[v] = u
				mate[u] = v
				return true
			}
		}
		dist[v] = inf
		return false
	}
	for bfs() {
		for v := 0; v < n; v++ {
			if left[v] && mate[v] < 0 && dfs(graph.Vertex(v)) {
				size++
			}
		}
	}
	return mate, size
}

// MinimumVertexCover returns an exact minimum (cardinality) vertex cover of
// the bipartite graph g, via König's construction: starting from the
// unmatched left vertices, alternate unmatched/matched edges; the cover is
// (left \ reachable) ∪ (right ∩ reachable). It errors if g is not bipartite.
func MinimumVertexCover(g *graph.Graph) (cover []bool, size int, err error) {
	left, err := Sides(g)
	if err != nil {
		return nil, 0, err
	}
	mate, matchSize := MaximumMatching(g, left)
	n := g.NumVertices()
	reach := make([]bool, n)
	queue := make([]graph.Vertex, 0, n)
	for v := 0; v < n; v++ {
		if left[v] && mate[v] < 0 {
			reach[v] = true
			queue = append(queue, graph.Vertex(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if left[v] {
			// Traverse unmatched edges to the right side.
			for _, u := range g.Neighbors(v) {
				if mate[v] != u && !reach[u] {
					reach[u] = true
					queue = append(queue, u)
				}
			}
		} else if w := mate[v]; w >= 0 && !reach[w] {
			// Traverse the matched edge back to the left side.
			reach[w] = true
			queue = append(queue, w)
		}
	}
	cover = make([]bool, n)
	for v := 0; v < n; v++ {
		if left[v] && !reach[v] && mate[v] >= 0 {
			cover[v] = true
			size++
		} else if !left[v] && reach[v] {
			cover[v] = true
			size++
		}
	}
	if size != matchSize {
		return nil, 0, fmt.Errorf("bipartite: König mismatch: cover %d vs matching %d", size, matchSize)
	}
	return cover, size, nil
}
