package serve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestHTTPTierHint pins the tier request hint: `tier` resolves to the
// bucket's preferred algorithm (fast → pdfast, accurate → mpc), shares the
// solution-cache key with an explicit request for the same algorithm, and
// is rejected alongside an explicit `algorithm`.
func TestHTTPTierHint(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	gr := uploadGraph(t, srv, testGraph(t, 3, 60, 6))

	resp, sr := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Tier: "fast", Epsilon: 0.1, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tier fast status %d: %+v", resp.StatusCode, sr)
	}
	if sr.Algorithm != "pdfast" {
		t.Fatalf("tier fast resolved to %q, want pdfast", sr.Algorithm)
	}
	if sr.Solution == nil || sr.Solution.CertifiedRatio > 2+1e-9 {
		t.Fatalf("fast tier solution uncertified: %+v", sr.Solution)
	}
	if sr.Cached {
		t.Fatal("first fast-tier solve reported cached")
	}

	// The resolved algorithm is the cache key: an explicit pdfast request
	// with identical parameters must hit the tier request's cache entry.
	resp, sr = postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "pdfast", Epsilon: 0.1, Seed: 1})
	if resp.StatusCode != http.StatusOK || !sr.Cached {
		t.Fatalf("explicit pdfast after tier fast: status %d cached %v", resp.StatusCode, sr.Cached)
	}

	resp, sr = postSolve(t, srv, SolveRequest{Graph: gr.Graph, Tier: "accurate", Epsilon: 0.1, Seed: 1})
	if resp.StatusCode != http.StatusOK || sr.Algorithm != "mpc" {
		t.Fatalf("tier accurate: status %d algorithm %q, want mpc", resp.StatusCode, sr.Algorithm)
	}

	if resp, _ := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Tier: "fast", Algorithm: "mpc"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tier+algorithm conflict status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Tier: "blazing"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tier status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPDegradedCacheKey pins the degradation contract end to end: the
// degraded response echoes the original ask in requested_algorithm, runs
// the fast-tier fallback, and is cached under the fallback's key — a later
// identical request for the original algorithm solves fresh, while a
// request for the fallback algorithm hits the degraded entry.
func TestHTTPDegradedCacheKey(t *testing.T) {
	release := setGate(t)
	defer release()
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 8, DegradeEnabled: true})
	gr := uploadGraph(t, srv, testGraph(t, 2, 40, 4))

	// Occupy the worker and fill the queue to the degradation threshold
	// (0.75 × 8 = 6).
	wait := false
	for i := 0; i < 7; i++ {
		resp, sr := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "test-gated", Seed: uint64(100 + i), Wait: &wait})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("filler %d: status %d: %+v", i, resp.StatusCode, sr)
		}
	}

	resp, sr := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc", Epsilon: 0.1, Seed: 1, Wait: &wait})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("degraded submit status %d: %+v", resp.StatusCode, sr)
	}
	if !sr.Degraded || sr.Algorithm != "pdfast" || sr.RequestedAlgorithm != "mpc" {
		t.Fatalf("degraded response algorithm=%q requested=%q degraded=%v, want pdfast/mpc/true",
			sr.Algorithm, sr.RequestedAlgorithm, sr.Degraded)
	}

	release()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/solve/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got SolveResponse
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if got.Status == StatusDone {
			if !got.Degraded || got.RequestedAlgorithm != "mpc" {
				t.Fatalf("finished degraded request lost its markers: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded request never finished: %+v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The degraded result was cached under pdfast, not mpc: the original ask
	// must not be answered from the degraded entry…
	resp, sr = postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc", Epsilon: 0.1, Seed: 1})
	if resp.StatusCode != http.StatusOK || sr.Cached || sr.Degraded {
		t.Fatalf("post-overload mpc request: status %d cached %v degraded %v", resp.StatusCode, sr.Cached, sr.Degraded)
	}
	// …while the fallback's own key is a hit.
	resp, sr = postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "pdfast", Epsilon: 0.1, Seed: 1})
	if resp.StatusCode != http.StatusOK || !sr.Cached {
		t.Fatalf("pdfast request after degradation: status %d cached %v, want cache hit", resp.StatusCode, sr.Cached)
	}
}
