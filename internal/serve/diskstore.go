package serve

// The durable backing of GraphStore: content-addressed "mwvc-el 1" files,
// written atomically, verified and re-indexed by a startup recovery scan.
// Kept separate from store.go so the in-memory semantics stay readable on
// their own; everything here is reached only through OpenGraphStore.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fault"
	"repro/internal/graph"
)

// storeFileExt is the on-disk suffix of a persisted graph: the file body is
// the streaming "mwvc-el 1" format (docs/FORMATS.md), the file name is the
// hex sha256 of the graph's canonical serialization.
const storeFileExt = ".mwvc-el"

// quarantineExt is appended to a file that fails verification during the
// recovery scan. Quarantine renames rather than deletes: a false positive
// (or a file someone wants to autopsy) keeps its bytes.
const quarantineExt = ".quarantine"

// RecoveryStats reports what a durable store's startup scan found in its
// data directory.
type RecoveryStats struct {
	// Recovered counts graph files that verified (stored digest == recomputed
	// digest) and were re-indexed.
	Recovered int
	// Quarantined counts files that failed to load or verify and were
	// renamed aside with the ".quarantine" suffix.
	Quarantined int
	// TempsRemoved counts orphaned write temps (".tmp") deleted — the litter
	// of an Add interrupted before its atomic rename.
	TempsRemoved int
}

// OpenGraphStore opens (creating if needed) a durable store over dir,
// holding at most max graphs in memory (0 means the default of 1024).
//
// The startup recovery scan rebuilds the index from disk: every *.mwvc-el
// file is reloaded through the streaming CSR reader and its content hash
// recomputed; files whose digest matches their name are re-indexed, files
// that fail to parse or verify are quarantined (renamed, not deleted), and
// orphaned *.tmp files from writes the previous process never completed are
// removed. After OpenGraphStore returns, every graph acknowledged by the
// previous process is served under its original hash.
func OpenGraphStore(dir string, max int) (*GraphStore, error) {
	if max <= 0 {
		max = 1024
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening graph store: %w", err)
	}
	s := &GraphStore{graphs: make(map[string]*StoredGraph), max: max, dir: dir}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the durable store's data directory ("" for in-memory stores).
func (s *GraphStore) Dir() string { return s.dir }

// Recovery returns the startup scan's findings (zero for in-memory stores).
func (s *GraphStore) Recovery() RecoveryStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recovery
}

// recover is the startup scan behind OpenGraphStore. It runs before the
// store is shared, so it needs no locking.
func (s *GraphStore) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("serve: scanning graph store: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		path := filepath.Join(s.dir, name)
		switch {
		case ent.IsDir():
			continue
		case strings.HasSuffix(name, ".tmp"):
			// An Add that never reached its rename: the graph was never
			// acknowledged, so the partial bytes are garbage by contract.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("serve: removing orphaned temp %s: %w", name, err)
			}
			s.recovery.TempsRemoved++
		case strings.HasSuffix(name, storeFileExt):
			sg, err := loadGraphFile(path)
			if err != nil {
				// Corrupt (torn write that somehow reached the final name,
				// bit rot, truncation) — or unreadable. Quarantine either
				// way: serving a graph under a hash its bytes no longer
				// match would break content addressing silently.
				if qerr := os.Rename(path, path+quarantineExt); qerr != nil {
					return fmt.Errorf("serve: quarantining %s: %w", name, qerr)
				}
				s.recovery.Quarantined++
				continue
			}
			if wantHex := strings.TrimSuffix(name, storeFileExt); sg.Hash != "sha256:"+wantHex {
				if qerr := os.Rename(path, path+quarantineExt); qerr != nil {
					return fmt.Errorf("serve: quarantining %s: %w", name, qerr)
				}
				s.recovery.Quarantined++
				continue
			}
			if len(s.graphs) < s.max {
				s.graphs[sg.Hash] = sg
				s.recovery.Recovered++
			}
		}
	}
	return nil
}

// loadGraphFile reloads one persisted graph through the two-pass streaming
// reader and recomputes its content hash — the checksum verification that
// makes a recovered index trustworthy.
func loadGraphFile(path string) (*StoredGraph, error) {
	if err := fault.Hit(fault.StoreRead); err != nil {
		return nil, err
	}
	g, err := graph.OpenFile(path)
	if err != nil {
		return nil, err
	}
	hash, err := HashGraph(g)
	if err != nil {
		return nil, err
	}
	return &StoredGraph{Hash: hash, Graph: g, Vertices: g.NumVertices(), Edges: g.NumEdges()}, nil
}

// persist spills one graph to the data directory with the atomic
// write-temp-fsync-rename protocol. Called by Add with s.mu held, so two
// concurrent uploads of the same content never race on the file; the
// trade-off — uploads serialize against each other — is the price of "200
// means durable".
func (s *GraphStore) persist(sg *StoredGraph) error {
	hexDigest := strings.TrimPrefix(sg.Hash, "sha256:")
	final := filepath.Join(s.dir, hexDigest+storeFileExt)
	tmp, err := os.CreateTemp(s.dir, hexDigest+".*.tmp")
	if err != nil {
		return fmt.Errorf("%w: creating graph temp: %v", ErrRetryable, err)
	}
	tmpPath := tmp.Name()
	fail := func(stage string, err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("%w: %s %s: %v", ErrRetryable, stage, filepath.Base(tmpPath), err)
	}
	if err := fault.Hit(fault.StoreWrite); err != nil {
		return fail("writing", err)
	}
	if err := graph.WriteEdgeList(tmp, sg.Graph); err != nil {
		return fail("writing", err)
	}
	// fsync before rename: without it the rename can become durable before
	// the data, and a crash yields a complete-looking file of garbage under
	// the final (trusted) name.
	if err := tmp.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("closing", err)
	}
	if err := fault.Hit(fault.StoreRename); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("%w: publishing %s: %v", ErrRetryable, filepath.Base(final), err)
	}
	if err := os.Rename(tmpPath, final); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("%w: publishing %s: %v", ErrRetryable, filepath.Base(final), err)
	}
	// fsync the directory so the rename itself survives a crash.
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("%w: syncing store directory: %v", ErrRetryable, err)
	}
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
