package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// HashGraph returns the content address of g: "sha256:" plus the hex digest
// of its canonical text serialization (graph.Write is deterministic — header,
// weights in vertex order, edges in id order — so re-uploads of the same
// instance, whatever their on-wire format, record order, or duplicate edges,
// always collapse to one stored graph). The canonical bytes stream straight
// into the digest as they are produced; no serialization buffer is
// materialized. See docs/FORMATS.md for the canonicalization rule.
func HashGraph(g *graph.Graph) (string, error) {
	h := sha256.New()
	if err := graph.Write(h, g); err != nil {
		return "", fmt.Errorf("serve: hashing graph: %w", err)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// StoredGraph is a graph held by the store under its content hash.
type StoredGraph struct {
	Hash     string
	Graph    *graph.Graph
	Vertices int
	Edges    int
}

// GraphStore is the content-addressed graph repository behind POST
// /v1/graphs: clients upload a graph once and refer to it by hash in any
// number of solve requests, so repeated solves of the same instance never
// re-upload (or re-parse) it. All methods are safe for concurrent use.
//
// A store opened with OpenGraphStore is additionally durable: every Add is
// spilled to dir as an "mwvc-el 1" file named by the graph's sha256 digest
// before it is acknowledged, written atomically (temp file → fsync → rename
// → directory fsync), so a process killed at any instant either has the
// whole graph on disk or an orphaned temp the next startup deletes — never
// a torn file under the final name.
type GraphStore struct {
	mu       sync.RWMutex
	graphs   map[string]*StoredGraph
	max      int
	dir      string // "" = in-memory only
	recovery RecoveryStats
}

// NewGraphStore returns an in-memory store holding at most max graphs (0
// means the default of 1024). The cap is a guardrail against unbounded
// memory from hostile or runaway uploads, not an eviction policy: when
// full, Add returns ErrStoreFull and the client must reuse stored graphs.
func NewGraphStore(max int) *GraphStore {
	if max <= 0 {
		max = 1024
	}
	return &GraphStore{graphs: make(map[string]*StoredGraph), max: max}
}

// ErrStoreFull reports that the graph store reached its configured cap.
var ErrStoreFull = fmt.Errorf("serve: graph store full")

// Add stores g under its content hash and returns the stored entry plus
// whether the graph was new. Re-adding an existing graph is a cheap no-op
// returning the prior entry — that is the point of content addressing. On a
// durable store the graph is fsynced to disk before Add returns: a nil
// error is a durability acknowledgment, and a persist failure leaves the
// store (memory and disk) without the graph so the client can retry.
func (s *GraphStore) Add(g *graph.Graph) (sg *StoredGraph, isNew bool, err error) {
	hash, err := HashGraph(g)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.graphs[hash]; ok {
		return prev, false, nil
	}
	if len(s.graphs) >= s.max {
		return nil, false, fmt.Errorf("%w (cap %d)", ErrStoreFull, s.max)
	}
	sg = &StoredGraph{Hash: hash, Graph: g, Vertices: g.NumVertices(), Edges: g.NumEdges()}
	if s.dir != "" {
		if err := s.persist(sg); err != nil {
			return nil, false, err
		}
	}
	s.graphs[hash] = sg
	return sg, true, nil
}

// Get returns the stored graph with the given content hash.
func (s *GraphStore) Get(hash string) (*StoredGraph, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sg, ok := s.graphs[hash]
	return sg, ok
}

// Len returns the number of stored graphs.
func (s *GraphStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.graphs)
}
