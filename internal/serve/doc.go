// Package serve is the solve-as-a-service engine: a bounded worker pool
// pulling solve requests off a FIFO queue, fronted by a content-addressed
// graph store and a solution cache, with per-request deadlines, live
// round-by-round traces and aggregate metrics fed from the solver's
// Observer event stream.
//
// The engine is transport-agnostic; http.go exposes it over HTTP and
// cmd/mwvc-serve is the binary. The division of labor with the facade is
// strict: the engine never reimplements solving — every request goes
// through mwvc.Solve (registry dispatch, cover verification, certificate
// checking), which is safe for concurrent use; the engine adds admission
// control (backpressure via ErrQueueFull), resource partitioning (Workers
// × SolverParallelism ≈ GOMAXPROCS) and result reuse (the cache keyed by
// graph hash + solve parameters — solves are deterministic given a seed,
// so a cached solution is indistinguishable from a fresh one).
//
// # Pieces
//
//   - Engine (engine.go): queue, worker pool, request lifecycle
//     (queued → running → done|failed), per-request observer fan-out.
//   - GraphStore (store.go): graphs keyed by "sha256:" of their canonical
//     serialization (docs/FORMATS.md §content-hash canonicalization), so
//     repeat uploads and solve requests never re-parse an instance.
//   - Durable store (diskstore.go): with Config.DataDir, uploads are
//     fsynced to disk (atomic temp → rename) before they are
//     acknowledged, and a startup recovery scan rebuilds the index —
//     verifying every file's content hash, quarantining what fails.
//   - HTTP layer (http.go): POST /v1/graphs, POST /v1/solve (sync or
//     async), status polling, SSE traces, Prometheus metrics, health.
//   - Metrics (metrics.go): counters and gauges in Prometheus text form.
//
// # Robustness
//
// The request path is fault-isolated: a panic anywhere in one request
// fails that request with a typed retryable error (ErrRetryable → 503 +
// Retry-After) and the worker survives. Identical concurrent requests
// coalesce onto one solver execution (the solution-cache key doubles as
// the singleflight key). Under queue pressure, Config.DegradeEnabled
// downgrades eligible requests to the cheapest solver before shedding.
// StartDrain refuses new work (ErrDraining, /healthz 503) while admitted
// solves finish. internal/fault names the injection points a chaos suite
// replays deterministically; DESIGN.md §Fault injection and degradation
// has the full model.
//
// docs/ARCHITECTURE.md walks a request through all of it end to end.
package serve
