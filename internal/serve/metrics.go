package serve

import (
	"fmt"
	"io"
	"maps"
	"sort"
	"time"
)

// Metrics is a point-in-time snapshot of the engine's aggregate
// instrumentation, fed from two sources: the request lifecycle (admission,
// rejection, cache hits, completion) and the solver.Observer event stream
// that every in-engine solve is wired to (rounds and events totals).
type Metrics struct {
	// Request lifecycle counters.
	RequestsTotal int64 // admitted + rejected Submit calls
	Rejected      int64 // backpressure rejections (queue full)
	CacheHits     int64 // requests answered from the solution cache
	Done          int64 // successfully completed requests (incl. cache hits)
	Failed        int64 // failed requests (deadline, solver error, shutdown)

	// Robustness counters.
	Degraded     int64 // requests downgraded to the fallback solver under overload
	Coalesced    int64 // duplicate requests attached to an identical in-flight solve
	Abandoned    int64 // requests whose every waiting client disconnected
	SolverPanics int64 // panics recovered in the request path (request failed, worker survived)

	// Instantaneous gauges.
	InFlight     int64 // solves currently executing on workers
	Queued       int64 // requests waiting in the FIFO queue
	GraphsStored int64 // graphs in the content-addressed store
	Draining     bool  // engine refusing new work ahead of shutdown

	// Durable-store recovery findings from the startup scan (all zero for
	// in-memory stores).
	StoreRecovered    int64 // graph files verified and re-indexed at startup
	StoreQuarantined  int64 // files renamed aside after failing verification
	StoreTempsRemoved int64 // orphaned write temps deleted at startup

	// Observer-stream totals across all solves.
	RoundsTotal int64 // KindRound events observed
	EventsTotal int64 // all events observed

	// Solve-time accounting: actual solver executions, successful or failed
	// (a deadline-bound failure still burns worker time); cache hits
	// excluded.
	SolveCount   int64
	SolveSeconds float64

	// Kernelization accounting across successful solver executions that ran
	// the reduction stage (requests submitted with NoReduce, failed solves
	// — whose stats are lost with the errored solve — and cache hits
	// excluded; unlike SolveSeconds, which deliberately includes failures).
	ReduceCount           int64
	ReduceSeconds         float64
	ReduceVerticesRemoved int64
	ReduceEdgesRemoved    int64

	// Anytime-improvement accounting across successful solver executions
	// that ran the stage (requests without an improve budget, exact solves —
	// which skip the stage — failed solves and cache hits excluded).
	ImproveCount         int64
	ImproveSeconds       float64
	ImproveSteps         int64
	ImproveWeightRemoved float64

	// PerAlgorithm counts solver executions by algorithm (successful or
	// failed; cache hits excluded).
	PerAlgorithm map[string]int64
}

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		RequestsTotal: e.met.requestsTotal.Load(),
		Rejected:      e.met.rejected.Load(),
		CacheHits:     e.met.cacheHits.Load(),
		Done:          e.met.done.Load(),
		Failed:        e.met.failed.Load(),
		Degraded:      e.met.degraded.Load(),
		Coalesced:     e.met.coalesced.Load(),
		Abandoned:     e.met.abandoned.Load(),
		SolverPanics:  e.met.panics.Load(),
		InFlight:      e.met.inFlight.Load(),
		Queued:        int64(len(e.queue)),
		GraphsStored:  int64(e.store.Len()),
		Draining:      e.Draining(),
		RoundsTotal:   e.met.roundsTotal.Load(),
		EventsTotal:   e.met.eventsTotal.Load(),
		SolveCount:    e.met.solveCount.Load(),
		SolveSeconds:  time.Duration(e.met.solveNanos.Load()).Seconds(),

		ReduceCount:           e.met.reduceCount.Load(),
		ReduceSeconds:         time.Duration(e.met.reduceNanos.Load()).Seconds(),
		ReduceVerticesRemoved: e.met.reduceVerticesRemoved.Load(),
		ReduceEdgesRemoved:    e.met.reduceEdgesRemoved.Load(),

		ImproveCount:         e.met.improveCount.Load(),
		ImproveSeconds:       time.Duration(e.met.improveNanos.Load()).Seconds(),
		ImproveSteps:         e.met.improveSteps.Load(),
		ImproveWeightRemoved: e.met.improveWeightRemoved.Load(),
	}
	rec := e.store.Recovery()
	m.StoreRecovered = int64(rec.Recovered)
	m.StoreQuarantined = int64(rec.Quarantined)
	m.StoreTempsRemoved = int64(rec.TempsRemoved)
	e.met.algoMu.Lock()
	if len(e.met.perAlgo) > 0 {
		// maps.Copy instead of a range: the copy is order-insensitive and
		// the rendered output sorts its keys (below), so no map iteration
		// order reaches the wire.
		m.PerAlgorithm = make(map[string]int64, len(e.met.perAlgo))
		maps.Copy(m.PerAlgorithm, e.met.perAlgo)
	}
	e.met.algoMu.Unlock()
	return m
}

// boolGauge renders a bool as a 0/1 Prometheus gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WriteMetrics renders the snapshot in the Prometheus text exposition
// format (counters and gauges only — no client library dependency).
func WriteMetrics(w io.Writer, m Metrics) error {
	type row struct {
		name, help, kind string
		value            float64
	}
	rows := []row{
		{"mwvc_requests_total", "Solve requests submitted (admitted or rejected).", "counter", float64(m.RequestsTotal)},
		{"mwvc_requests_rejected_total", "Requests rejected by queue backpressure.", "counter", float64(m.Rejected)},
		{"mwvc_cache_hits_total", "Requests answered from the solution cache.", "counter", float64(m.CacheHits)},
		{"mwvc_requests_done_total", "Requests completed successfully.", "counter", float64(m.Done)},
		{"mwvc_requests_failed_total", "Requests failed (deadline, error, shutdown).", "counter", float64(m.Failed)},
		{"mwvc_requests_degraded_total", "Requests downgraded to the fallback solver under overload.", "counter", float64(m.Degraded)},
		{"mwvc_requests_coalesced_total", "Duplicate requests coalesced onto an identical in-flight solve.", "counter", float64(m.Coalesced)},
		{"mwvc_requests_abandoned_total", "Requests abandoned by every waiting client.", "counter", float64(m.Abandoned)},
		{"mwvc_solver_panics_total", "Panics recovered in the request path.", "counter", float64(m.SolverPanics)},
		{"mwvc_draining", "1 while the engine refuses new work ahead of shutdown.", "gauge", boolGauge(m.Draining)},
		{"mwvc_store_recovered_total", "Graph files verified and re-indexed by the startup recovery scan.", "counter", float64(m.StoreRecovered)},
		{"mwvc_store_quarantined_total", "Graph files quarantined by the startup recovery scan.", "counter", float64(m.StoreQuarantined)},
		{"mwvc_store_temps_removed_total", "Orphaned write temps removed by the startup recovery scan.", "counter", float64(m.StoreTempsRemoved)},
		{"mwvc_solves_in_flight", "Solves currently executing.", "gauge", float64(m.InFlight)},
		{"mwvc_queue_depth", "Requests waiting in the FIFO queue.", "gauge", float64(m.Queued)},
		{"mwvc_graphs_stored", "Graphs in the content-addressed store.", "gauge", float64(m.GraphsStored)},
		{"mwvc_rounds_total", "Communication rounds observed across all solves.", "counter", float64(m.RoundsTotal)},
		{"mwvc_observer_events_total", "Observer events fanned into the metrics stream.", "counter", float64(m.EventsTotal)},
		{"mwvc_solve_seconds_sum", "Total wall-clock seconds spent solving (failed solves included).", "counter", m.SolveSeconds},
		{"mwvc_solve_seconds_count", "Solver executions timed, successful or failed (cache hits excluded).", "counter", float64(m.SolveCount)},
		{"mwvc_reduce_total", "Successful solver executions that ran the kernelization stage.", "counter", float64(m.ReduceCount)},
		{"mwvc_reduce_seconds_sum", "Total wall-clock seconds spent kernelizing (successful solves).", "counter", m.ReduceSeconds},
		{"mwvc_reduce_vertices_removed_total", "Vertices removed by kernelization across successful solves.", "counter", float64(m.ReduceVerticesRemoved)},
		{"mwvc_reduce_edges_removed_total", "Edges removed by kernelization across successful solves.", "counter", float64(m.ReduceEdgesRemoved)},
		{"mwvc_improve_total", "Successful solver executions that ran the anytime improvement stage.", "counter", float64(m.ImproveCount)},
		{"mwvc_improve_seconds_sum", "Total wall-clock seconds spent improving (successful solves).", "counter", m.ImproveSeconds},
		{"mwvc_improve_steps_total", "Accepted improvement moves across successful solves.", "counter", float64(m.ImproveSteps)},
		{"mwvc_improve_weight_removed_total", "Cover weight removed by improvement across successful solves.", "counter", m.ImproveWeightRemoved},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", r.name, r.help, r.name, r.kind, r.name, r.value); err != nil {
			return err
		}
	}
	if len(m.PerAlgorithm) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP mwvc_solves_by_algorithm_total Solver executions by algorithm.\n# TYPE mwvc_solves_by_algorithm_total counter\n"); err != nil {
			return err
		}
		algos := make([]string, 0, len(m.PerAlgorithm))
		for a := range m.PerAlgorithm {
			algos = append(algos, a)
		}
		sort.Strings(algos)
		for _, a := range algos {
			if _, err := fmt.Fprintf(w, "mwvc_solves_by_algorithm_total{algorithm=%q} %d\n", a, m.PerAlgorithm[a]); err != nil {
				return err
			}
		}
	}
	return nil
}
