package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/fault"
)

// waitMetric polls one engine counter until it reaches want.
func waitMetric(t *testing.T, read func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if read() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s never reached %d (now %d)", what, want, read())
}

// TestCoalescing pins the singleflight contract: N concurrent identical
// requests — including more duplicates than the queue holds — share one
// solver execution and one Solution.
func TestCoalescing(t *testing.T) {
	release := setGate(t)
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 2})
	hash := addGraph(t, e, testGraph(t, 1, 30, 3))
	p := SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 9}

	leader, err := e.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, leader, StatusRunning) // holds the only worker at the gate

	// Duplicates well beyond QueueDepth: they attach to the leader instead
	// of taking queue slots, so none is rejected.
	const dups = 6
	followers := make([]*Request, dups)
	for i := range followers {
		f, err := e.Submit(p)
		if err != nil {
			t.Fatalf("duplicate %d rejected: %v", i, err)
		}
		if !f.IsCoalesced() {
			t.Fatalf("duplicate %d not coalesced", i)
		}
		followers[i] = f
	}
	release()

	if err := leader.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	leaderSol, err := leader.Result()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range followers {
		if err := f.Wait(context.Background()); err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
		sol, err := f.Result()
		if err != nil || sol != leaderSol {
			t.Fatalf("follower %d: sol=%p err=%v, want the leader's solution %p", i, sol, err, leaderSol)
		}
	}
	m := e.Metrics()
	if m.SolveCount != 1 || m.Coalesced != dups || m.Done != dups+1 {
		t.Fatalf("metrics %+v: want 1 solve, %d coalesced, %d done", m, dups, dups+1)
	}
}

// TestOverloadDegradation drives the queue past the threshold and checks that
// an eligible request is downgraded to the fallback solver with a tightened
// improvement budget — and that a request already asking for the fallback is
// left alone.
func TestOverloadDegradation(t *testing.T) {
	release := setGate(t)
	defer release()
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 8, DegradeEnabled: true})
	// degradeAt = 0.75 × 8 = 6.
	hash := addGraph(t, e, testGraph(t, 2, 40, 4))

	first, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, first, StatusRunning)
	for i := 0; i < 6; i++ { // fill the queue to the threshold
		if _, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: uint64(200 + i)}); err != nil {
			t.Fatalf("filler %d: %v", i, err)
		}
	}

	deg, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "mpc", Seed: 1, ImproveBudgetMS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded || deg.Params.Algorithm != "pdfast" || deg.RequestedAlgo != "mpc" {
		t.Fatalf("overloaded mpc request not degraded to pdfast: %+v", deg)
	}
	if deg.Params.ImproveBudgetMS != degradedImproveBudgetMS {
		t.Fatalf("degraded improve budget %d, want capped at %d", deg.Params.ImproveBudgetMS, degradedImproveBudgetMS)
	}

	plain, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "pdfast", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Degraded || plain.RequestedAlgo != "" {
		t.Fatalf("pdfast request marked degraded: %+v", plain)
	}

	release()
	if err := deg.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sol, err := deg.Result(); err != nil || sol == nil {
		t.Fatalf("degraded solve: sol=%v err=%v", sol, err)
	}
	if m := e.Metrics(); m.Degraded != 1 {
		t.Fatalf("metrics report %d degraded, want 1", m.Degraded)
	}
}

// TestDrain pins the shutdown sequence: /healthz flips 200 → 503 when the
// drain begins, new submits are refused with ErrDraining (HTTP 503 +
// Retry-After), and already-admitted work still completes.
func TestDrain(t *testing.T) {
	release := setGate(t)
	srv, e := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	hash := uploadGraph(t, srv, testGraph(t, 3, 30, 3)).Graph

	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	inflight, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, inflight, StatusRunning)

	e.StartDrain()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}

	if _, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "greedy"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: %v, want ErrDraining", err)
	}
	body, _ := json.Marshal(SolveRequest{Graph: hash, Algorithm: "greedy"})
	hresp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || hresp.Header.Get("Retry-After") == "" {
		t.Fatalf("solve during drain: %d (Retry-After %q) %s", hresp.StatusCode, hresp.Header.Get("Retry-After"), raw)
	}

	// Admitted work still completes across the drain.
	release()
	if err := inflight.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sol, err := inflight.Result(); err != nil || sol == nil {
		t.Fatalf("in-flight solve across drain: sol=%v err=%v", sol, err)
	}
}

// TestClientDisconnectCancelsSolve is the abandoned-request regression test:
// a synchronous HTTP client hanging up mid-solve must cancel the solve and
// free the worker slot — without the gate ever being released.
func TestClientDisconnectCancelsSolve(t *testing.T) {
	setGate(t) // never released: only cancellation can free the worker
	srv, e := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	hash := uploadGraph(t, srv, testGraph(t, 4, 30, 3)).Graph

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(SolveRequest{Graph: hash, Algorithm: "test-gated"})
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with %d despite disconnect", resp.StatusCode)
		}
		errc <- err
	}()

	waitMetric(t, func() int64 { return e.Metrics().InFlight }, 1, "in-flight gauge")
	cancel() // client hangs up mid-solve

	if err := <-errc; err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("client error %v, want context.Canceled", err)
	}
	// The abandoned solve fails and frees the only worker.
	waitMetric(t, func() int64 { return e.Metrics().Abandoned }, 1, "abandoned counter")
	waitMetric(t, func() int64 { return e.Metrics().Failed }, 1, "failed counter")

	after, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	if err := after.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sol, err := after.Result(); err != nil || sol == nil {
		t.Fatalf("worker not freed after disconnect: sol=%v err=%v", sol, err)
	}
}

// TestResponseEncodeFault pins the no-torn-body contract: an injected fault
// in the response encoder yields a clean JSON error with a retryable status
// and Retry-After — and the very next request succeeds.
func TestResponseEncodeFault(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	hash := uploadGraph(t, srv, testGraph(t, 5, 30, 3)).Graph
	body, _ := json.Marshal(SolveRequest{Graph: hash, Algorithm: "greedy"})

	restore := fault.Enable(fault.NewInjector(0, fault.Rule{Point: fault.ResponseEncode, Every: 1, Limit: 1}))
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	restore()
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("faulted encode: %d (Retry-After %q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	var er errorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
		t.Fatalf("faulted encode body %q is not a clean JSON error: %v", raw, err)
	}

	resp, err = http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var sr SolveResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(raw, &sr) != nil || sr.Status != StatusDone {
		t.Fatalf("retry after encode fault: %d %s", resp.StatusCode, raw)
	}
}
