package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	mwvc "repro"
	"repro/internal/graph"
	"repro/internal/solver"
)

// The gated test solver makes queue and deadline behavior deterministic: it
// blocks until the test releases its gate (or the request deadline fires),
// then returns the trivial all-vertices cover.
var gate struct {
	mu sync.Mutex
	ch chan struct{}
}

// setGate installs a fresh gate and returns its release function. Tests that
// use the gated solver must call setGate first; release is idempotent via
// sync.Once in the caller's hands (close once).
func setGate(t *testing.T) (release func()) {
	ch := make(chan struct{})
	gate.mu.Lock()
	gate.ch = ch
	gate.mu.Unlock()
	var once sync.Once
	release = func() { once.Do(func() { close(ch) }) }
	t.Cleanup(func() {
		release()
		gate.mu.Lock()
		gate.ch = nil
		gate.mu.Unlock()
	})
	return release
}

func init() {
	solver.Register(solver.Meta{
		Name:    "test-gated",
		Rank:    1000,
		Tier:    solver.TierAccurate,
		Summary: "test-only solver that blocks until released",
	}, solver.Func(func(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
		gate.mu.Lock()
		ch := gate.ch
		gate.mu.Unlock()
		if ch != nil {
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		cover := make([]bool, g.NumVertices())
		for i := range cover {
			cover[i] = true
		}
		return &solver.Outcome{Cover: cover}, nil
	}))
}

func testGraph(t *testing.T, seed uint64, n int, d float64) *graph.Graph {
	t.Helper()
	return mwvc.RandomGraph(seed, n, d)
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func addGraph(t *testing.T, e *Engine, g *graph.Graph) string {
	t.Helper()
	sg, _, err := e.Graphs().Add(g)
	if err != nil {
		t.Fatal(err)
	}
	return sg.Hash
}

func TestGraphStoreContentAddressing(t *testing.T) {
	s := NewGraphStore(10)
	g1 := testGraph(t, 1, 40, 4)
	g2 := testGraph(t, 2, 40, 4)

	a1, new1, err := s.Add(g1)
	if err != nil || !new1 {
		t.Fatalf("first add: new=%v err=%v", new1, err)
	}
	// The same content re-serialized hashes identically: round-trip through
	// the text format and re-add.
	var buf bytes.Buffer
	if err := graph.Write(&buf, g1); err != nil {
		t.Fatal(err)
	}
	g1b, err := graph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a1b, new1b, err := s.Add(g1b)
	if err != nil || new1b {
		t.Fatalf("re-add of identical content: new=%v err=%v", new1b, err)
	}
	if a1b.Hash != a1.Hash {
		t.Fatalf("content hash unstable: %s vs %s", a1.Hash, a1b.Hash)
	}
	a2, _, err := s.Add(g2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Hash == a1.Hash {
		t.Fatalf("distinct graphs collided on %s", a1.Hash)
	}
	if s.Len() != 2 {
		t.Fatalf("store len %d, want 2", s.Len())
	}
	if !strings.HasPrefix(a1.Hash, "sha256:") {
		t.Fatalf("hash %q missing scheme prefix", a1.Hash)
	}
}

func TestGraphStoreCap(t *testing.T) {
	s := NewGraphStore(2)
	for seed := uint64(1); seed <= 2; seed++ {
		if _, _, err := s.Add(testGraph(t, seed, 20, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Add(testGraph(t, 3, 20, 3)); !errors.Is(err, ErrStoreFull) {
		t.Fatalf("overfull add: %v, want ErrStoreFull", err)
	}
	// Re-adding stored content still works at cap (it is a lookup, not an add).
	if _, isNew, err := s.Add(testGraph(t, 1, 20, 3)); err != nil || isNew {
		t.Fatalf("re-add at cap: new=%v err=%v", isNew, err)
	}
}

func TestSolveAndCacheHit(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, QueueDepth: 8})
	hash := addGraph(t, e, testGraph(t, 1, 120, 6))
	params := SolveParams{GraphHash: hash, Algorithm: "mpc", Epsilon: 0.1, Seed: 7}

	req1, err := e.Submit(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := req1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sol1, err := req1.Result()
	if err != nil {
		t.Fatal(err)
	}
	if req1.IsCached() {
		t.Fatal("first solve reported cached")
	}
	if sol1.Weight <= 0 || sol1.Rounds == 0 {
		t.Fatalf("implausible solution: %+v", sol1)
	}

	req2, err := e.Submit(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := req2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sol2, err := req2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !req2.IsCached() {
		t.Fatal("identical request not served from cache")
	}
	if sol2 != sol1 {
		t.Fatal("cache returned a different solution object")
	}
	m := e.Metrics()
	if m.CacheHits != 1 || m.SolveCount != 1 || m.Done != 2 {
		t.Fatalf("metrics after cache hit: %+v", m)
	}

	// Any parameter change misses the cache.
	req3, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "mpc", Epsilon: 0.1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := req3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if req3.IsCached() {
		t.Fatal("different seed served from cache")
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 2})
	hash := addGraph(t, e, testGraph(t, 1, 30, 3))
	if _, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "no-such-algo"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := e.Submit(SolveParams{GraphHash: "sha256:feed", Algorithm: "mpc"}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: %v, want ErrUnknownGraph", err)
	}
}

func TestQueueBackpressure(t *testing.T) {
	release := setGate(t)
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 1})
	hash := addGraph(t, e, testGraph(t, 1, 30, 3))
	params := SolveParams{GraphHash: hash, Algorithm: "test-gated"}

	// First request occupies the single worker...
	req1, err := e.Submit(params)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, req1, StatusRunning)
	// ...second fills the queue (vary the seed so the cache never matches)...
	req2, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// ...third must be rejected immediately with backpressure.
	if _, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue: %v, want ErrQueueFull", err)
	}
	if m := e.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected count %d, want 1", m.Rejected)
	}

	release()
	for _, r := range []*Request{req1, req2} {
		if err := r.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Result(); err != nil {
			t.Fatal(err)
		}
	}
	// With the worker free again, new requests are admitted.
	req4, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 4})
	if err != nil {
		t.Fatalf("post-drain submit rejected: %v", err)
	}
	if err := req4.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// waitStatus polls until the request reaches the wanted state (observer-free
// states like "running" have no completion channel to block on).
func waitStatus(t *testing.T, r *Request, want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Status() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("request %s never reached %s (now %s)", r.ID, want, r.Status())
}

func TestPerRequestDeadline(t *testing.T) {
	setGate(t) // never released before cleanup: the deadline must fire
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 2})
	hash := addGraph(t, e, testGraph(t, 1, 30, 3))
	req, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err = req.Result()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error not surfaced: %v", err)
	}
	if req.Status() != StatusFailed {
		t.Fatalf("status %s, want failed", req.Status())
	}
	if msg := req.ErrorMessage(); !strings.Contains(msg, "deadline exceeded") {
		t.Fatalf("error message %q not unified", msg)
	}
	if m := e.Metrics(); m.Failed != 1 {
		t.Fatalf("failed count %d, want 1", m.Failed)
	}
}

// TestDeadlineCoversQueueWait pins that the per-request clock starts at
// admission: a request whose deadline expires while it waits in the queue
// fails with the deadline error when dequeued instead of starting a solve
// its client has already given up on.
func TestDeadlineCoversQueueWait(t *testing.T) {
	release := setGate(t)
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 2})
	hash := addGraph(t, e, testGraph(t, 1, 30, 3))
	// Occupy the single worker far beyond the second request's deadline.
	req1, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, req1, StatusRunning)
	req2, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 2, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // req2's deadline passes while queued
	release()
	if err := req2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := req2.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline request: %v, want DeadlineExceeded", err)
	}
	if msg := req2.ErrorMessage(); !strings.Contains(msg, "deadline exceeded") {
		t.Fatalf("error message %q not unified", msg)
	}
	// The worker stayed healthy: req1 completed normally.
	if err := req1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := req1.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestTraceObserved(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 2})
	hash := addGraph(t, e, testGraph(t, 3, 150, 8))
	req, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "mpc", Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sol, err := req.Result()
	if err != nil {
		t.Fatal(err)
	}
	past, live, cancel := req.Subscribe(16)
	defer cancel()
	if _, ok := <-live; ok {
		t.Fatal("live channel of finished request not closed")
	}
	rounds := 0
	for _, ev := range past {
		if ev.Kind == mwvc.KindRound {
			rounds++
		}
	}
	if rounds != sol.Rounds {
		t.Fatalf("trace has %d round events, solution says %d rounds", rounds, sol.Rounds)
	}
	if req.Rounds() != sol.Rounds {
		t.Fatalf("Rounds() %d != solution %d", req.Rounds(), sol.Rounds)
	}
	m := e.Metrics()
	if m.RoundsTotal != int64(sol.Rounds) || m.EventsTotal < int64(len(past)) {
		t.Fatalf("observer metrics not fed: %+v (rounds want %d)", m, sol.Rounds)
	}
}

func TestEngineCloseRejectsAndDrains(t *testing.T) {
	release := setGate(t)
	e, err := NewEngine(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	hash := addGraph(t, e, testGraph(t, 1, 30, 3))
	req1, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, req1, StatusRunning)
	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	release()
	<-closed
	if _, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := req1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := req1.Result(); err != nil {
		t.Fatalf("in-flight solve not completed on close: %v", err)
	}
	e.Close() // idempotent
}

func TestRequestRetention(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, QueueDepth: 8, RetainRequests: 3})
	hash := addGraph(t, e, testGraph(t, 1, 40, 4))
	var ids []string
	for seed := uint64(0); seed < 6; seed++ {
		req, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "greedy", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, req.ID)
	}
	// All six requests completed (distinct seeds, so distinct cache keys);
	// only the last RetainRequests stay addressable.
	retained := 0
	for _, id := range ids {
		if _, ok := e.Lookup(id); ok {
			retained++
		}
	}
	if retained != 3 {
		t.Fatalf("retained %d finished requests, want 3", retained)
	}
	if _, ok := e.Lookup(ids[len(ids)-1]); !ok {
		t.Fatal("most recent request evicted before older ones")
	}
}

func TestReductionCacheKeyAndMetrics(t *testing.T) {
	// The same (graph, algorithm, ε, seed) tuple with and without reduction
	// is two different solves: the kernelized run must not be answered from
	// the raw run's cache entry, and vice versa — only true repeats hit.
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 8})
	hash := addGraph(t, e, testGraph(t, 3, 60, 3)) // sparse: reduction bites
	run := func(noReduce bool) *mwvc.Solution {
		t.Helper()
		req, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "mpc", Seed: 5, NoReduce: noReduce})
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		sol, err := req.Result()
		if err != nil {
			t.Fatal(err)
		}
		if req.IsCached() {
			t.Fatalf("noReduce=%v answered from cache on first submission", noReduce)
		}
		return sol
	}
	reduced := run(false)
	raw := run(true)
	if reduced.Reduction == nil || raw.Reduction != nil {
		t.Fatalf("reduction stats: reduced=%v raw=%v", reduced.Reduction, raw.Reduction)
	}
	// Exact repeats (either flavor) are cache hits.
	for _, noReduce := range []bool{false, true} {
		req, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "mpc", Seed: 5, NoReduce: noReduce})
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if !req.IsCached() {
			t.Fatalf("repeat with noReduce=%v missed the cache", noReduce)
		}
	}
	m := e.Metrics()
	if m.CacheHits != 2 || m.SolveCount != 2 {
		t.Fatalf("cache hits %d / solves %d, want 2/2", m.CacheHits, m.SolveCount)
	}
	if m.ReduceCount != 1 {
		t.Fatalf("reduce count %d, want exactly the one kernelized solve", m.ReduceCount)
	}
	if m.ReduceVerticesRemoved <= 0 || m.ReduceSeconds < 0 {
		t.Fatalf("reduce metrics not threaded: %+v", m)
	}
	var b strings.Builder
	if err := WriteMetrics(&b, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mwvc_reduce_total 1") {
		t.Fatalf("Prometheus exposition lacks mwvc_reduce_total:\n%s", b.String())
	}
}

func TestImprovementCacheKeyAndMetrics(t *testing.T) {
	// The same tuple with and without an improvement budget is two different
	// solves; each flavor hits only its own cache entry, the improved run
	// surfaces stats and feeds the mwvc_improve_* metrics, and the improved
	// cover is never heavier than the plain one at an identical bound.
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 8})
	// The gated solver (no gate set: immediate) returns the all-vertices
	// cover, guaranteeing the improvement stage real redundancy to remove.
	hash := addGraph(t, e, testGraph(t, 4, 200, 8))
	run := func(budgetMS int64) *mwvc.Solution {
		t.Helper()
		req, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 5, ImproveBudgetMS: budgetMS})
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		sol, err := req.Result()
		if err != nil {
			t.Fatal(err)
		}
		if req.IsCached() {
			t.Fatalf("budget=%dms answered from cache on first submission", budgetMS)
		}
		return sol
	}
	plain := run(0)
	improved := run(5000)
	if plain.Improvement != nil {
		t.Fatal("no-budget solve attached improvement stats")
	}
	if improved.Improvement == nil {
		t.Fatal("budgeted solve lost its improvement stats")
	}
	if improved.Weight > plain.Weight {
		t.Fatalf("improved weight %v above plain %v", improved.Weight, plain.Weight)
	}
	if improved.Bound != plain.Bound {
		t.Fatalf("improvement moved the bound: %v vs %v", improved.Bound, plain.Bound)
	}
	// Exact repeats (either flavor) are cache hits.
	for _, budget := range []int64{0, 5000} {
		req, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "test-gated", Seed: 5, ImproveBudgetMS: budget})
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if !req.IsCached() {
			t.Fatalf("repeat with budget=%dms missed the cache", budget)
		}
	}
	m := e.Metrics()
	if m.CacheHits != 2 || m.SolveCount != 2 {
		t.Fatalf("cache hits %d / solves %d, want 2/2", m.CacheHits, m.SolveCount)
	}
	if m.ImproveCount != 1 {
		t.Fatalf("improve count %d, want exactly the one budgeted solve", m.ImproveCount)
	}
	if m.ImproveSteps <= 0 || m.ImproveWeightRemoved <= 0 {
		t.Fatalf("improve metrics not threaded: %+v", m)
	}
	var b strings.Builder
	if err := WriteMetrics(&b, m); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mwvc_improve_total 1", "mwvc_improve_steps_total", "mwvc_improve_weight_removed_total"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("Prometheus exposition lacks %s:\n%s", want, b.String())
		}
	}
}

func TestImproveBudgetClamped(t *testing.T) {
	// Negative budgets normalize to 0 (the same cache entry as "off");
	// budgets above MaxTimeout clamp to it so a request cannot buy more
	// improvement wall-clock than the engine allows a whole solve.
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 8, MaxTimeout: time.Second})
	hash := addGraph(t, e, testGraph(t, 4, 40, 3))
	req, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "greedy", ImproveBudgetMS: -7})
	if err != nil {
		t.Fatal(err)
	}
	if req.Params.ImproveBudgetMS != 0 {
		t.Fatalf("negative budget kept: %d", req.Params.ImproveBudgetMS)
	}
	if err := req.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	req2, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "greedy", ImproveBudgetMS: 3_600_000})
	if err != nil {
		t.Fatal(err)
	}
	if req2.Params.ImproveBudgetMS != 1000 {
		t.Fatalf("oversized budget not clamped to MaxTimeout: %d", req2.Params.ImproveBudgetMS)
	}
	if err := req2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The normalized (not the raw) value is the cache key: a repeat with a
	// different oversized budget that clamps to the same value must hit.
	req3, err := e.Submit(SolveParams{GraphHash: hash, Algorithm: "greedy", ImproveBudgetMS: 7_200_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := req3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !req3.IsCached() {
		t.Fatal("clamp-equivalent budget missed the cache")
	}
}
