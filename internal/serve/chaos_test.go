package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/verify"
)

// chaosSeeds returns the fault schedules to replay: the fixed CI triple, or
// a single seed from MWVC_CHAOS_SEED for reproducing one failing schedule
// locally.
func chaosSeeds(t *testing.T) []uint64 {
	if s := os.Getenv("MWVC_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("MWVC_CHAOS_SEED=%q: %v", s, err)
		}
		return []uint64{n}
	}
	return []uint64{1, 7, 42}
}

// TestChaosServe is the fault-injected acceptance suite: with every injection
// point armed probabilistically under a fixed seed, a concurrent mix of
// uploads and solves must end each request in a verified cover or a typed
// retryable error — valid JSON always, torn bodies and wedged workers never
// — and once the faults clear, everything acknowledged must still solve.
func TestChaosServe(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runChaos(t, seed) })
	}
}

func runChaos(t *testing.T, seed uint64) {
	dir := t.TempDir()
	e, err := NewEngine(Config{Workers: 4, QueueDepth: 16, SolverParallelism: 1, DataDir: dir, DegradeEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	defer func() {
		srv.Close()
		e.Close()
	}()

	// Two graphs uploaded fault-free: the known-acknowledged baseline the
	// storm solves against and the restart check asserts on.
	graphs := map[string]*graph.Graph{}
	var hashes []string
	for _, g := range []*graph.Graph{testGraph(t, 31, 60, 4), testGraph(t, 32, 90, 5)} {
		resp := uploadGraph(t, srv, g)
		graphs[resp.Graph] = g
		hashes = append(hashes, resp.Graph)
	}

	restore := fault.Enable(fault.NewInjector(seed,
		fault.Rule{Point: fault.StoreWrite, Prob: 0.5},
		fault.Rule{Point: fault.StoreRename, Prob: 0.3},
		fault.Rule{Point: fault.WorkerDequeue, Prob: 0.25},
		fault.Rule{Point: fault.SolverStep, Prob: 0.01}, // surfaces as a solver panic
		fault.Rule{Point: fault.ResponseEncode, Prob: 0.15},
	))
	defer restore()

	algos := []string{"mpc", "greedy", "centralized"}
	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients*4)
	var mu sync.Mutex
	acked := map[string]bool{} // uploads acknowledged mid-storm: must survive restart
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One upload attempt per client (new content, exercising the
			// store's fault points under concurrency)...
			g := testGraph(t, uint64(1000+i), 30+i, 3)
			var buf bytes.Buffer
			if err := graph.Write(&buf, g); err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(srv.URL+"/v1/graphs", "text/plain", &buf)
			if err != nil {
				errs <- err
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var gr GraphResponse
				if err := json.Unmarshal(raw, &gr); err != nil {
					errs <- fmt.Errorf("client %d: upload 200 with torn body %q: %v", i, raw, err)
					return
				}
				mu.Lock()
				acked[gr.Graph] = true
				mu.Unlock()
			case http.StatusServiceUnavailable:
				if err := checkTypedError(raw); err != nil {
					errs <- fmt.Errorf("client %d upload: %v", i, err)
					return
				}
			default:
				errs <- fmt.Errorf("client %d: upload status %d: %s", i, resp.StatusCode, raw)
				return
			}
			// ...then a few solves against the baseline graphs.
			for j := 0; j < 3; j++ {
				hash := hashes[(i+j)%len(hashes)]
				body, _ := json.Marshal(SolveRequest{
					Graph:        hash,
					Algorithm:    algos[(i+j)%len(algos)],
					Seed:         uint64(i % 4),
					IncludeCover: true,
				})
				resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := checkChaosSolveResponse(resp, raw, graphs[hash]); err != nil {
					errs <- fmt.Errorf("client %d solve %d: %v", i, j, err)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Faults off: everything acknowledged still solves — the storm corrupted
	// nothing.
	restore()
	for _, hash := range hashes {
		body, _ := json.Marshal(SolveRequest{Graph: hash, Algorithm: "greedy", IncludeCover: true})
		resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var sr SolveResponse
		if resp.StatusCode != http.StatusOK || json.Unmarshal(raw, &sr) != nil || sr.Solution == nil {
			t.Fatalf("post-storm solve of %s: %d %s", hash, resp.StatusCode, raw)
		}
		if ok, witness := verify.IsCover(graphs[hash], sr.Solution.Cover); !ok {
			t.Fatalf("post-storm cover for %s leaves edge %d uncovered", hash, witness)
		}
	}

	// Restart on the same data directory: every acknowledged upload — the
	// fault-free baseline and every 200 from inside the storm — recovers.
	srv.Close()
	e.Close()
	e2 := newTestEngine(t, Config{Workers: 2, QueueDepth: 8, DataDir: dir})
	for _, hash := range hashes {
		if _, ok := e2.Graphs().Get(hash); !ok {
			t.Fatalf("baseline graph %s lost across restart", hash)
		}
	}
	for hash := range acked {
		if _, ok := e2.Graphs().Get(hash); !ok {
			t.Fatalf("storm-acknowledged graph %s lost across restart", hash)
		}
	}
	if rec := e2.Graphs().Recovery(); rec.Quarantined != 0 {
		t.Fatalf("restart quarantined %d file(s): the storm tore a write", rec.Quarantined)
	}
}

// checkTypedError asserts an error response body is clean JSON with a
// non-empty error field.
func checkTypedError(raw []byte) error {
	var er errorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
		return fmt.Errorf("torn error body %q: %v", raw, err)
	}
	return nil
}

// checkChaosSolveResponse enforces the chaos contract on one solve response:
// 200 carries a verified cover; 429/503/504 carry a clean typed error;
// nothing else is acceptable.
func checkChaosSolveResponse(resp *http.Response, raw []byte, g *graph.Graph) error {
	switch resp.StatusCode {
	case http.StatusOK:
		var sr SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			return fmt.Errorf("200 with torn body %q: %v", raw, err)
		}
		if sr.Status != StatusDone || sr.Solution == nil || sr.Solution.Cover == nil {
			return fmt.Errorf("200 without a solution: %s", raw)
		}
		if ok, witness := verify.IsCover(g, sr.Solution.Cover); !ok {
			return fmt.Errorf("cover leaves edge %d uncovered", witness)
		}
		return nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
			return fmt.Errorf("503 without Retry-After")
		}
		return checkTypedError(raw)
	default:
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
}
