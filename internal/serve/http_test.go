package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	mwvc "repro"
	"repro/internal/graph"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Engine) {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv, e
}

func uploadGraph(t *testing.T, srv *httptest.Server, g *graph.Graph) GraphResponse {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/graphs", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var gr GraphResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	return gr
}

func postSolve(t *testing.T, srv *httptest.Server, body SolveRequest) (*http.Response, SolveResponse) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SolveResponse
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &sr); err != nil && resp.StatusCode < 400 {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return resp, sr
}

func TestHTTPUploadSolveRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	g := mwvc.RandomGraph(1, 100, 6)
	gr := uploadGraph(t, srv, g)
	if !gr.New || gr.Vertices != 100 {
		t.Fatalf("upload response %+v", gr)
	}
	// Idempotent re-upload.
	gr2 := uploadGraph(t, srv, g)
	if gr2.New || gr2.Graph != gr.Graph {
		t.Fatalf("re-upload response %+v (want existing %s)", gr2, gr.Graph)
	}

	resp, sr := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc", Epsilon: 0.1, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %+v", resp.StatusCode, sr)
	}
	if sr.Status != StatusDone || sr.Solution == nil || sr.Cached {
		t.Fatalf("solve response %+v", sr)
	}
	if sr.Solution.Cover != nil {
		t.Fatal("cover included without include_cover")
	}
	if sr.Solution.Weight <= 0 || sr.CoverSize == 0 {
		t.Fatalf("implausible solution %+v", sr.Solution)
	}
	if sr.Solution.CertifiedRatio > 2.5 {
		t.Fatalf("mpc certified ratio %v > 2+O(ε)", sr.Solution.CertifiedRatio)
	}

	// The identical request is a cache hit and can carry the cover.
	resp2, sr2 := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc", Epsilon: 0.1, Seed: 3, IncludeCover: true})
	if resp2.StatusCode != http.StatusOK || !sr2.Cached {
		t.Fatalf("repeat solve not cached: %d %+v", resp2.StatusCode, sr2)
	}
	if len(sr2.Solution.Cover) != 100 {
		t.Fatalf("include_cover returned %d bits", len(sr2.Solution.Cover))
	}
	if sr2.Solution.Weight != sr.Solution.Weight {
		t.Fatalf("cached weight %v != original %v", sr2.Solution.Weight, sr.Solution.Weight)
	}

	// An async submit of an already-cached tuple is complete at admission:
	// it must answer 200 with the result, not 202-go-poll.
	waitFalse := false
	resp2b, sr2b := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc", Epsilon: 0.1, Seed: 3, Wait: &waitFalse})
	if resp2b.StatusCode != http.StatusOK || !sr2b.Cached || sr2b.Solution == nil {
		t.Fatalf("async cached solve: status %d %+v, want 200 with solution", resp2b.StatusCode, sr2b)
	}

	// A certificate-free algorithm encodes certified_ratio as null and
	// decodes as +Inf — the JSON bugfix exercised end to end over HTTP.
	resp3, sr3 := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "greedy"})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("greedy solve status %d", resp3.StatusCode)
	}
	if !math.IsInf(sr3.Solution.CertifiedRatio, 1) {
		t.Fatalf("greedy ratio decoded as %v, want +Inf", sr3.Solution.CertifiedRatio)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"grpah":"x"}`, http.StatusBadRequest},
		{"unknown graph", `{"graph":"sha256:beef"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	g := mwvc.RandomGraph(1, 20, 3)
	gr := uploadGraph(t, srv, g)
	resp, _ := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "no-such"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown algorithm: status %d, want 400", resp.StatusCode)
	}
	// Parameters outside the algorithm's domain are the client's mistake:
	// exact beyond its 64-vertex limit (reduction disabled, so the raw graph
	// reaches the solver) must answer 422, not 500.
	noReduce := false
	big := uploadGraph(t, srv, mwvc.RandomGraph(2, 100, 4))
	resp, sr := postSolve(t, srv, SolveRequest{Graph: big.Graph, Algorithm: "exact", Reduce: &noReduce})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("exact on 100 raw vertices: status %d, want 422", resp.StatusCode)
	}
	if !strings.Contains(sr.Error, "vertices exceed") {
		t.Errorf("422 error %q lacks the solver's explanation", sr.Error)
	}
	if resp, _ := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc", Epsilon: 0.4}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("mpc with epsilon 0.4: status %d, want 422", resp.StatusCode)
	}
	if resp, err := http.Get(srv.URL + "/v1/solve/s-999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader("not a graph")); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad graph upload: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	release := setGate(t)
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	g := mwvc.RandomGraph(1, 20, 3)
	gr := uploadGraph(t, srv, g)

	// Occupy the single worker with a gated async solve; wait until it has
	// been dequeued so the queue slot is demonstrably free again.
	wait := false
	resp, sr := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "test-gated", Seed: 1, Wait: &wait})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d %+v", resp.StatusCode, sr)
	}
	inFlight := false
	for i := 0; i < 5000 && !inFlight; i++ {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inFlight = strings.Contains(string(body), "mwvc_solves_in_flight 1")
		if !inFlight {
			time.Sleep(time.Millisecond)
		}
	}
	if !inFlight {
		t.Fatal("gated solve never entered a worker")
	}
	// Fill the one queue slot...
	resp, sr = postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "test-gated", Seed: 2, Wait: &wait})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling submit: status %d %+v", resp.StatusCode, sr)
	}
	// ...and the next request must bounce with backpressure.
	resp, _ = postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "test-gated", Seed: 3, Wait: &wait})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	release()
}

func TestHTTPDeadline504(t *testing.T) {
	setGate(t) // never released: the per-request deadline must fire
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	g := mwvc.RandomGraph(1, 20, 3)
	gr := uploadGraph(t, srv, g)
	resp, sr := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "test-gated", TimeoutMS: 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("blown deadline: status %d %+v, want 504", resp.StatusCode, sr)
	}
	if !strings.Contains(sr.Error, "deadline exceeded") {
		t.Fatalf("504 error %q not the unified deadline form", sr.Error)
	}
}

func TestHTTPTraceSSE(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	g := mwvc.RandomGraph(5, 200, 8)
	gr := uploadGraph(t, srv, g)

	wait := false
	resp, sr := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc", Seed: 2, Wait: &wait})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d", resp.StatusCode)
	}

	traceResp, err := http.Get(srv.URL + "/v1/solve/" + sr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if ct := traceResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("trace content type %q", ct)
	}
	rounds, done := 0, false
	var finalStatus string
	sc := bufio.NewScanner(traceResp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "round" {
				rounds++
			}
			if event == "done" {
				done = true
				var final struct {
					Status string `json:"status"`
					Rounds int    `json:"rounds"`
				}
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("bad done payload %q: %v", data, err)
				}
				finalStatus = final.Status
				if final.Rounds != rounds {
					t.Fatalf("done reports %d rounds, streamed %d round events", final.Rounds, rounds)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done || finalStatus != "done" || rounds == 0 {
		t.Fatalf("trace stream: done=%v status=%q rounds=%d", done, finalStatus, rounds)
	}
}

// TestHTTP256ConcurrentSolves is the acceptance load test: 256 concurrent
// solve requests across algorithms and seeds against one server, all
// admitted (the queue is sized for the burst) and all answered with verified
// solutions. Run under -race in CI, it doubles as a concurrency stress of
// the facade, the registry, the observer fan-out and the MPC message plane.
func TestHTTP256ConcurrentSolves(t *testing.T) {
	const clients = 256
	srv, e := newTestServer(t, Config{Workers: 8, QueueDepth: clients, SolverParallelism: 1})
	graphs := []GraphResponse{
		uploadGraph(t, srv, mwvc.RandomGraph(1, 80, 5)),
		uploadGraph(t, srv, mwvc.RandomGraph(2, 120, 7)),
	}
	algos := []string{"mpc", "centralized", "local-uniform", "bye", "greedy"}

	httpClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(SolveRequest{
				Graph:     graphs[i%len(graphs)].Graph,
				Algorithm: algos[i%len(algos)],
				Seed:      uint64(i % 16),
			})
			resp, err := httpClient.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			var sr SolveResponse
			if err := json.Unmarshal(raw, &sr); err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			if sr.Status != StatusDone || sr.Solution == nil || sr.Solution.Weight <= 0 {
				errs <- fmt.Errorf("client %d: bad response %+v", i, sr)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := e.Metrics()
	if m.RequestsTotal != clients || m.Done != clients || m.Rejected != 0 || m.Failed != 0 {
		t.Fatalf("metrics after burst: %+v", m)
	}
	// Every request was answered exactly once: by a solver execution, from
	// the cache, or by coalescing onto an identical in-flight solve (the
	// split between the three is timing-dependent — only the sum is exact).
	if m.SolveCount+m.CacheHits+m.Coalesced != clients {
		t.Fatalf("solves %d + hits %d + coalesced %d != %d", m.SolveCount, m.CacheHits, m.Coalesced, clients)
	}
	if m.RoundsTotal == 0 || m.EventsTotal == 0 {
		t.Fatalf("observer totals not fed under load: %+v", m)
	}
}
