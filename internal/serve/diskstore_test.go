package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

func listWithSuffix(t *testing.T, dir, suffix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), suffix) {
			names = append(names, ent.Name())
		}
	}
	return names
}

// TestDiskStoreRoundTrip is the durability contract: a graph acknowledged by
// one store is recovered bit-identically (same content hash) by a fresh
// store over the same directory.
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 3, 60, 4)
	sg, isNew, err := s1.Add(g)
	if err != nil || !isNew {
		t.Fatalf("add: new=%v err=%v", isNew, err)
	}
	if files := listWithSuffix(t, dir, storeFileExt); len(files) != 1 {
		t.Fatalf("data dir has %v, want one %s file", files, storeFileExt)
	}

	s2, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rec := s2.Recovery(); rec.Recovered != 1 || rec.Quarantined != 0 || rec.TempsRemoved != 0 {
		t.Fatalf("recovery stats %+v, want exactly one recovered graph", rec)
	}
	got, ok := s2.Get(sg.Hash)
	if !ok {
		t.Fatalf("recovered store does not serve %s", sg.Hash)
	}
	if got.Hash != sg.Hash || got.Vertices != sg.Vertices || got.Edges != sg.Edges {
		t.Fatalf("recovered graph %+v differs from stored %+v", got, sg)
	}
	// Re-uploading the same content is recognized, not duplicated.
	if _, isNew, err := s2.Add(g); err != nil || isNew {
		t.Fatalf("re-add after recovery: new=%v err=%v, want existing graph", isNew, err)
	}
}

// TestDiskStoreQuarantinesCorruptFile covers bit rot / truncation under the
// final name: the recovery scan must rename the file aside — never delete
// it, never serve it.
func TestDiskStoreQuarantinesCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	sg, _, err := s1.Add(testGraph(t, 4, 50, 4))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, strings.TrimPrefix(sg.Hash, "sha256:")+storeFileExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil { // truncate: torn write
		t.Fatal(err)
	}

	s2, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rec := s2.Recovery(); rec.Recovered != 0 || rec.Quarantined != 1 {
		t.Fatalf("recovery stats %+v, want one quarantined file", rec)
	}
	if _, ok := s2.Get(sg.Hash); ok {
		t.Fatal("corrupt graph served after recovery")
	}
	if q := listWithSuffix(t, dir, quarantineExt); len(q) != 1 {
		t.Fatalf("quarantine files %v, want exactly one", q)
	}
	if live := listWithSuffix(t, dir, storeFileExt); len(live) != 0 {
		t.Fatalf("corrupt file still under trusted name: %v", live)
	}
}

// TestDiskStoreQuarantinesHashMismatch covers a well-formed file stored under
// the wrong name — content addressing must not trust the filename.
func TestDiskStoreQuarantinesHashMismatch(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 5, 40, 3)
	wrong := filepath.Join(dir, strings.Repeat("ab", 32)+storeFileExt)
	f, err := os.Create(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rec := s.Recovery(); rec.Recovered != 0 || rec.Quarantined != 1 {
		t.Fatalf("recovery stats %+v, want the misnamed file quarantined", rec)
	}
	if s.Len() != 0 {
		t.Fatalf("store indexed %d graphs from a misnamed file", s.Len())
	}
}

// TestDiskStoreCrashMidWrite simulates a SIGKILL between writing the temp
// file and the atomic rename (an injected panic leaves the temp on disk just
// as a dead process would): Add must not have acknowledged, the next startup
// must sweep the temp, and re-uploading must round-trip bit-identically.
func TestDiskStoreCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 6, 70, 5)

	restore := fault.Enable(fault.NewInjector(0, fault.Rule{Point: fault.StoreRename, Every: 1, Limit: 1, Action: fault.ActPanic}))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		s1.Add(g)
	}()
	restore()

	if tmps := listWithSuffix(t, dir, ".tmp"); len(tmps) != 1 {
		t.Fatalf("crash left %v, want exactly one orphaned temp", tmps)
	}
	if live := listWithSuffix(t, dir, storeFileExt); len(live) != 0 {
		t.Fatalf("crash published %v without the rename", live)
	}

	s2, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rec := s2.Recovery(); rec.TempsRemoved != 1 || rec.Recovered != 0 || rec.Quarantined != 0 {
		t.Fatalf("recovery stats %+v, want one temp removed", rec)
	}
	if tmps := listWithSuffix(t, dir, ".tmp"); len(tmps) != 0 {
		t.Fatalf("temps survived recovery: %v", tmps)
	}
	// The graph was never acknowledged; the retry must succeed and persist.
	sg, isNew, err := s2.Add(g)
	if err != nil || !isNew {
		t.Fatalf("re-upload after crash: new=%v err=%v", isNew, err)
	}
	s3, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s3.Get(sg.Hash)
	if !ok || got.Hash != sg.Hash {
		t.Fatalf("re-uploaded graph not recovered bit-identically (ok=%v)", ok)
	}
}

// TestDiskStoreWriteFaultIsRetryable pins the client contract for persist
// failures: a typed retryable error, no acknowledgment, no litter, and a
// clean retry once the fault clears.
func TestDiskStoreWriteFaultIsRetryable(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenGraphStore(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 7, 30, 3)

	restore := fault.Enable(fault.NewInjector(0, fault.Rule{Point: fault.StoreWrite, Every: 1, Limit: 1}))
	_, _, err = s.Add(g)
	restore()
	if !errors.Is(err, ErrRetryable) || s.Len() != 0 {
		t.Fatalf("faulted add: err=%v len=%d, want ErrRetryable and empty store", err, s.Len())
	}
	if tmps := listWithSuffix(t, dir, ".tmp"); len(tmps) != 0 {
		t.Fatalf("failed add littered temps: %v", tmps)
	}
	if _, isNew, err := s.Add(g); err != nil || !isNew {
		t.Fatalf("retry after fault: new=%v err=%v", isNew, err)
	}
}

// TestEngineRecoversDataDir is the engine-level restart test: graphs
// acknowledged before a shutdown solve after a restart on the same data
// directory, without re-upload.
func TestEngineRecoversDataDir(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(Config{Workers: 1, QueueDepth: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hash := addGraph(t, e1, testGraph(t, 8, 50, 4))
	e1.Close()

	e2 := newTestEngine(t, Config{Workers: 1, QueueDepth: 4, DataDir: dir})
	req, err := e2.Submit(SolveParams{GraphHash: hash, Algorithm: "greedy"})
	if err != nil {
		t.Fatalf("solve against recovered graph: %v", err)
	}
	if err := req.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	sol, err := req.Result()
	if err != nil || sol == nil {
		t.Fatalf("recovered solve: sol=%v err=%v", sol, err)
	}
	if m := e2.Metrics(); m.StoreRecovered != 1 {
		t.Fatalf("metrics report %d recovered graphs, want 1", m.StoreRecovered)
	}
}
