package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestHTTPCompressedSolver pins the serve integration of the round-compressed
// solver: "mpc-compress" resolves through the registry, returns a certified
// solution, caches under its own key — distinct from the native "mpc" entry
// with identical parameters — and shows up in the per-algorithm metrics.
func TestHTTPCompressedSolver(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	gr := uploadGraph(t, srv, testGraph(t, 5, 120, 8))

	resp, sr := postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc-compress", Epsilon: 0.1, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mpc-compress status %d: %+v", resp.StatusCode, sr)
	}
	if sr.Algorithm != "mpc-compress" || sr.Cached {
		t.Fatalf("first compressed solve: algorithm %q cached %v", sr.Algorithm, sr.Cached)
	}
	if sr.Solution == nil || sr.Solution.CertifiedRatio > 2.5 {
		t.Fatalf("compressed solution uncertified or too weak: %+v", sr.Solution)
	}

	// Identical repeat request: the compressed entry must be a cache hit.
	resp, sr = postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc-compress", Epsilon: 0.1, Seed: 1})
	if resp.StatusCode != http.StatusOK || !sr.Cached {
		t.Fatalf("repeat compressed solve: status %d cached %v, want cache hit", resp.StatusCode, sr.Cached)
	}

	// The algorithm is part of the cache key: the native solver with the
	// same graph/epsilon/seed must solve fresh, not read the compressed
	// entry.
	resp, sr = postSolve(t, srv, SolveRequest{Graph: gr.Graph, Algorithm: "mpc", Epsilon: 0.1, Seed: 1})
	if resp.StatusCode != http.StatusOK || sr.Cached {
		t.Fatalf("native solve after compressed: status %d cached %v, want fresh solve", resp.StatusCode, sr.Cached)
	}

	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `mwvc_solves_by_algorithm_total{algorithm="mpc-compress"} 1`) {
		t.Fatalf("metrics missing the compressed solver's execution count:\n%s", body)
	}
}
