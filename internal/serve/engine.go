package serve

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	mwvc "repro"
	"repro/internal/cli"
	"repro/internal/fault"
	"repro/internal/solver"
)

// Config sizes the engine. The zero value is usable: every field has a
// default chosen so a fresh engine saturates the machine without
// oversubscribing it.
type Config struct {
	// Workers is the number of solve workers — the maximum number of solves
	// in flight at once. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO request queue; a Submit beyond it fails
	// fast with ErrQueueFull (HTTP 429) instead of queueing unboundedly.
	// Default: 4 × Workers.
	QueueDepth int
	// SolverParallelism is the WithParallelism passed to each solve, so that
	// Workers concurrent solves share the machine instead of each grabbing
	// GOMAXPROCS worth of simulated machines. Default: GOMAXPROCS/Workers,
	// at least 1.
	SolverParallelism int
	// DefaultTimeout applies to requests that specify no deadline (default
	// 60s); MaxTimeout caps what a request may ask for (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxGraphs caps the graph store (see NewGraphStore; default 1024).
	MaxGraphs int
	// MaxTraceEvents bounds the per-request trace buffer; events beyond it
	// are counted but not retained (default 65536).
	MaxTraceEvents int
	// MaxCacheEntries bounds the solution cache; when full an arbitrary
	// entry is evicted to admit the new one (default 4096).
	MaxCacheEntries int
	// RetainRequests bounds how many finished requests stay addressable for
	// GET /v1/solve/{id} after completion (default 1024, FIFO eviction).
	RetainRequests int
	// DataDir, when non-empty, makes the graph store durable: uploads are
	// fsynced to this directory before they are acknowledged, and a restart
	// recovers every acknowledged graph (see OpenGraphStore). Empty keeps
	// the store in-memory only.
	DataDir string
	// DegradeEnabled turns on overload-aware degradation: once the queue
	// passes DegradeThreshold of its depth, eligible new requests are
	// downgraded to DegradeAlgorithm with a tightened improvement budget
	// instead of waiting full-cost in a deep queue, and their responses are
	// marked degraded. Requests already asking for DegradeAlgorithm are not
	// eligible (there is nothing cheaper to fall back to).
	DegradeEnabled bool
	// DegradeAlgorithm is the fallback solver for degraded requests
	// (default "pdfast" — the O(m) fast-tier sweep, which still returns a
	// certified 2-approximation at a fraction of the full solve cost).
	DegradeAlgorithm string
	// DegradeThreshold is the queue-fullness fraction past which degradation
	// engages (default 0.75; clamped to (0, 1]).
	DegradeThreshold float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.SolverParallelism <= 0 {
		c.SolverParallelism = runtime.GOMAXPROCS(0) / c.Workers
		if c.SolverParallelism < 1 {
			c.SolverParallelism = 1
		}
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxTraceEvents <= 0 {
		c.MaxTraceEvents = 65536
	}
	if c.MaxCacheEntries <= 0 {
		c.MaxCacheEntries = 4096
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 1024
	}
	if c.RetainRequests <= 0 {
		c.RetainRequests = 1024
	}
	if c.DegradeAlgorithm == "" {
		c.DegradeAlgorithm = "pdfast"
	}
	if c.DegradeThreshold <= 0 || c.DegradeThreshold > 1 {
		c.DegradeThreshold = 0.75
	}
	return c
}

// degradedImproveBudgetMS caps the anytime-improvement budget of a degraded
// request: under overload the engine still honors the anytime contract
// (some improvement is better than none) but refuses to spend a generous
// budget per request while a queue is backing up.
const degradedImproveBudgetMS = 50

// SolveParams identifies one solve: the graph (by content hash) plus the
// parameters that determine the solver's output. Together with the
// determinism of seeded solves, that makes the tuple a complete cache key.
type SolveParams struct {
	GraphHash      string
	Algorithm      string
	Epsilon        float64
	Seed           uint64
	PaperConstants bool
	// NoReduce skips the kernelization stage (mwvc.WithoutReduction); the
	// zero value keeps the facade default of reduction on. The flag changes
	// the solver's input — and thus potentially its output — so it is part
	// of the solution-cache key.
	NoReduce bool
	// ImproveBudgetMS, when positive, enables the anytime local-search
	// improvement stage (mwvc.WithImprovement) with that many milliseconds
	// of wall-clock budget; 0 keeps the facade default of improvement off.
	// The budget changes the returned cover, so it is part of the
	// solution-cache key; values above Config.MaxTimeout are clamped to it.
	ImproveBudgetMS int64
	// Timeout is the per-request deadline; 0 means the engine default, and
	// values above Config.MaxTimeout are clamped to it. The clock starts at
	// admission, so time spent waiting in the queue counts against it — a
	// request with a 1s deadline cannot silently block for minutes behind a
	// deep queue. The deadline is not part of the cache key: a cached
	// solution satisfies any deadline.
	Timeout time.Duration
}

type cacheKey struct {
	hash      string
	algo      string
	eps       float64
	seed      uint64
	paper     bool
	noReduce  bool
	improveMS int64
}

// Status is a request's lifecycle state.
type Status string

// The request lifecycle: queued → running → done | failed. A cache hit at
// admission goes straight to done.
const (
	// StatusQueued marks a request admitted to the FIFO queue, not yet
	// picked up by a worker.
	StatusQueued Status = "queued"
	// StatusRunning marks a request whose solve is in flight.
	StatusRunning Status = "running"
	// StatusDone marks a completed request whose Solution is available.
	StatusDone Status = "done"
	// StatusFailed marks a request that ended in an error (including a
	// blown deadline or engine shutdown).
	StatusFailed Status = "failed"
)

// Engine errors surfaced by Submit and by failing requests.
var (
	ErrQueueFull    = errors.New("serve: solve queue full")
	ErrUnknownGraph = errors.New("serve: unknown graph hash")
	ErrClosed       = errors.New("serve: engine closed")
	// ErrDraining rejects new work while the engine drains for shutdown;
	// in-flight and queued solves still complete. HTTP maps it to 503 with
	// Retry-After so load balancers route elsewhere.
	ErrDraining = errors.New("serve: engine draining")
	// ErrRetryable classifies transient internal failures — an injected or
	// real fault in the durable store, a recovered solver panic, a tripped
	// worker — that a client may simply retry. HTTP maps it to 503 with
	// Retry-After. The wrapped detail never includes partial results: a
	// request ends in a verified solution or a typed error, nothing between.
	ErrRetryable = errors.New("serve: transient failure, retry")
)

// Request is one admitted solve. Its exported methods are safe for
// concurrent use; the HTTP layer, trace subscribers and the solving worker
// all hold the same *Request.
type Request struct {
	// ID addresses the request in GET /v1/solve/{id}.
	ID string
	// Params are the effective solve parameters. Under degradation they may
	// differ from what the client asked for (see Degraded).
	Params SolveParams
	// Degraded marks a request the overloaded engine downgraded to the
	// cheap fallback solver; RequestedAlgo preserves the original ask.
	// Both are immutable after Submit.
	Degraded      bool
	RequestedAlgo string

	engine *Engine
	done   chan struct{}

	// deadline is the absolute per-request deadline, fixed at admission
	// (queuedAt + Params.Timeout); immutable after Submit.
	deadline time.Time

	// leader, for a coalesced request, is the in-flight twin whose outcome
	// this request shares; followers (guarded by engine.mu, not r.mu) are
	// the coalesced requests riding on this one. leader is immutable after
	// Submit.
	leader    *Request
	followers []*Request

	mu        sync.Mutex
	completed bool // finish ran; all later finishes are no-ops
	cached    bool
	coalesced bool
	// interest counts attached waiters that may still cancel: the submitter
	// plus one per coalesced follower. When every sync waiter abandons
	// (client disconnect) it reaches zero and the solve is cancelled.
	interest    int
	abandoned   bool
	cancelSolve context.CancelFunc
	status      Status
	sol         *mwvc.Solution
	coverSize   int
	err         error
	errMsg      string
	rounds      int
	events      []mwvc.Event
	dropped     int
	subs        []chan mwvc.Event
	queuedAt    time.Time
	startedAt   time.Time
	doneAt      time.Time
}

// Status returns the request's current lifecycle state.
func (r *Request) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// IsCached reports that the request was answered from the solution cache —
// either at admission or at dequeue (a duplicate whose twin finished while
// this request waited in the queue) — without running the solver.
func (r *Request) IsCached() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cached
}

// IsCoalesced reports that the request was admitted as a follower of an
// identical in-flight request (same cache key) and shares its outcome
// instead of occupying a queue slot of its own.
func (r *Request) IsCoalesced() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coalesced
}

// Wait blocks until the request finishes or ctx is done. A ctx error
// abandons the wait, not the solve: the request keeps running and its
// result still lands in the cache — unless the caller also signals real
// client disconnection via Abandon.
func (r *Request) Wait(ctx context.Context) error {
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Abandon withdraws one waiter's interest in the request — the HTTP layer
// calls it when a synchronous client disconnects mid-solve. When the last
// interested waiter abandons (coalesced followers each hold interest in
// their leader), the solve's context is cancelled so the worker slot stops
// burning on a request nobody will read; an abandoned request still queued
// is failed at dequeue without running. Asynchronous submitters never call
// Abandon, so fire-and-poll requests keep running and caching as before.
func (r *Request) Abandon() {
	t := r
	if r.leader != nil {
		t = r.leader
	}
	t.mu.Lock()
	if t.completed {
		t.mu.Unlock()
		return
	}
	t.interest--
	var cancel context.CancelFunc
	if t.interest <= 0 {
		t.abandoned = true
		cancel = t.cancelSolve
	}
	t.mu.Unlock()
	if cancel != nil {
		t.engine.met.abandoned.Add(1)
		cancel()
	}
}

// Result returns the solution or error of a finished request (nil, nil
// while it is still queued or running).
func (r *Request) Result() (*mwvc.Solution, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sol, r.err
}

// ErrorMessage is the user-facing failure description: the unified
// "deadline exceeded after N rounds" form for deadline errors (shared with
// cmd/mwvc -timeout via internal/cli), the raw error otherwise, "" on
// success.
func (r *Request) ErrorMessage() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errMsg
}

// Rounds returns the number of communication rounds observed so far — live
// while running, final after completion (for cached requests, the cached
// solution's round count).
func (r *Request) Rounds() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rounds
}

// CoverSize returns the cardinality of the finished request's cover (0
// while unfinished), computed once at completion.
func (r *Request) CoverSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.coverSize
}

// TraceDropped returns how many observer events were discarded beyond the
// MaxTraceEvents trace-buffer cap — nonzero means replayed traces are
// truncated (live subscribers may additionally drop on their own buffers).
func (r *Request) TraceDropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot is a consistent point-in-time view of a request's mutable state,
// taken under one lock. Renderers must use it instead of stitching together
// individual accessors — a request can finish between two accessor calls,
// producing contradictory output (status "running" with a solution
// attached).
type Snapshot struct {
	Status       Status
	Cached       bool
	Coalesced    bool
	Sol          *mwvc.Solution
	Err          error
	ErrMsg       string
	Rounds       int
	CoverSize    int
	TraceDropped int
	QueuedAt     time.Time
	StartedAt    time.Time
	DoneAt       time.Time
}

// Snapshot returns an atomic view of the request's state.
func (r *Request) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Snapshot{
		Status:       r.status,
		Cached:       r.cached,
		Coalesced:    r.coalesced,
		Sol:          r.sol,
		Err:          r.err,
		ErrMsg:       r.errMsg,
		Rounds:       r.rounds,
		CoverSize:    r.coverSize,
		TraceDropped: r.dropped,
		QueuedAt:     r.queuedAt,
		StartedAt:    r.startedAt,
		DoneAt:       r.doneAt,
	}
}

func coverSize(sol *mwvc.Solution) int {
	n := 0
	for _, in := range sol.Cover {
		if in {
			n++
		}
	}
	return n
}

// Times returns when the request was queued, started and finished (zero
// values for stages not reached).
func (r *Request) Times() (queued, started, done time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queuedAt, r.startedAt, r.doneAt
}

// Subscribe returns the trace so far plus a live channel of subsequent
// events; the channel is closed when the request finishes (immediately for
// an already-finished request). Slow subscribers do not block the solve:
// events beyond the channel's buffer are dropped. Call the returned cancel
// function when done reading.
func (r *Request) Subscribe(buffer int) (past []mwvc.Event, live <-chan mwvc.Event, cancel func()) {
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan mwvc.Event, buffer)
	r.mu.Lock()
	past = append([]mwvc.Event(nil), r.events...)
	finished := r.status == StatusDone || r.status == StatusFailed
	if finished {
		close(ch)
	} else {
		r.subs = append(r.subs, ch)
	}
	r.mu.Unlock()
	return past, ch, func() { r.unsubscribe(ch) }
}

func (r *Request) unsubscribe(ch chan mwvc.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.subs {
		if s == ch {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			return
		}
	}
}

// observe is the request's Observer: it feeds the trace buffer, the live
// subscribers and the engine's aggregate metrics. It runs synchronously on
// the solving worker's goroutine.
func (r *Request) observe(e mwvc.Event) {
	if err := fault.Hit(fault.SolverStep); err != nil {
		// The observer has no error channel; an injected step fault surfaces
		// as a panic, deliberately exercising the per-solve panic guard.
		panic(fmt.Sprintf("fault: solver step: %v", err))
	}
	r.mu.Lock()
	if e.Kind == mwvc.KindRound {
		r.rounds = e.Round
	}
	if len(r.events) < r.engine.cfg.MaxTraceEvents {
		r.events = append(r.events, e)
	} else {
		r.dropped++
	}
	for _, ch := range r.subs {
		select {
		case ch <- e:
		default: // slow subscriber: drop rather than stall the solve
		}
	}
	r.mu.Unlock()
	r.engine.met.eventsTotal.Add(1)
	if e.Kind == mwvc.KindRound {
		r.engine.met.roundsTotal.Add(1)
	}
}

// finish records the outcome, closes subscriber channels and releases
// waiters. It is idempotent — the first call wins and returns true, later
// calls (a worker's panic guard firing after a normal completion path, a
// racing Close) are no-ops returning false. The cover cardinality is
// computed once here, not on every status poll.
func (r *Request) finish(sol *mwvc.Solution, err error, errMsg string) bool {
	r.mu.Lock()
	if r.completed {
		r.mu.Unlock()
		return false
	}
	r.completed = true
	r.sol = sol
	r.err = err
	r.errMsg = errMsg
	if err == nil {
		r.status = StatusDone
		if sol != nil && sol.Rounds > 0 {
			r.rounds = sol.Rounds
		}
	} else {
		r.status = StatusFailed
	}
	if sol != nil {
		r.coverSize = coverSize(sol)
	}
	r.doneAt = time.Now()
	if r.startedAt.IsZero() {
		r.startedAt = r.doneAt // never ran (drain, coalesced, abandoned)
	}
	subs := r.subs
	r.subs = nil
	r.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
	close(r.done)
	return true
}

// Engine runs solves. Create with NewEngine, stop with Close.
type Engine struct {
	cfg       Config
	store     *GraphStore
	queue     chan *Request
	stop      chan struct{}
	wg        sync.WaitGroup
	degradeAt int // queue length at which degradation engages

	mu       sync.Mutex
	closed   bool
	draining bool
	requests map[string]*Request
	finished []string // completed request ids, oldest first (retention ring)
	cache    map[cacheKey]*mwvc.Solution
	inflight map[cacheKey]*Request // enqueued/running leaders, for coalescing
	nextID   uint64

	met engineMetrics
}

// NewEngine builds the engine and starts its worker pool. With
// Config.DataDir set it opens the durable graph store, running the startup
// recovery scan before any request is admitted; an unusable data directory
// or an unknown Config.DegradeAlgorithm is an error.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	var store *GraphStore
	if cfg.DataDir != "" {
		var err error
		if store, err = OpenGraphStore(cfg.DataDir, cfg.MaxGraphs); err != nil {
			return nil, err
		}
	} else {
		store = NewGraphStore(cfg.MaxGraphs)
	}
	if cfg.DegradeEnabled {
		if _, ok := solver.Lookup(cfg.DegradeAlgorithm); !ok {
			return nil, fmt.Errorf("serve: unknown degrade algorithm %q", cfg.DegradeAlgorithm)
		}
	}
	e := &Engine{
		cfg:       cfg,
		store:     store,
		queue:     make(chan *Request, cfg.QueueDepth),
		stop:      make(chan struct{}),
		requests:  make(map[string]*Request),
		cache:     make(map[cacheKey]*mwvc.Solution),
		inflight:  make(map[cacheKey]*Request),
		degradeAt: int(cfg.DegradeThreshold * float64(cfg.QueueDepth)),
	}
	if e.degradeAt < 1 {
		e.degradeAt = 1
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Graphs returns the engine's graph store.
func (e *Engine) Graphs() *GraphStore { return e.store }

// StartDrain flips the engine into drain mode ahead of shutdown: new
// Submits fail with ErrDraining (HTTP 503 + Retry-After) and /healthz goes
// unhealthy so load balancers stop routing here, while queued and in-flight
// solves keep running to completion. Close implies StartDrain.
func (e *Engine) StartDrain() {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
}

// Draining reports whether the engine is refusing new work (drain or close).
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining || e.closed
}

// Close stops the workers, fails every still-queued request with ErrClosed
// and waits for in-flight solves to finish. Subsequent Submits fail with
// ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.draining = true
	e.mu.Unlock()
	close(e.stop)
	e.wg.Wait()
	for {
		select {
		case req := <-e.queue:
			e.complete(req, nil, ErrClosed, ErrClosed.Error())
		default:
			return
		}
	}
}

// Lookup returns a live or retained request by id.
func (e *Engine) Lookup(id string) (*Request, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.requests[id]
	return r, ok
}

// Submit admits one solve request. It validates the algorithm and graph,
// answers from the solution cache when the exact (graph, algorithm, ε, seed,
// constants) tuple has already been solved, coalesces onto an identical
// in-flight request (N concurrent duplicates share one solver execution),
// and otherwise enqueues — degrading eligible requests to the cheap
// fallback solver first when the queue is past the overload threshold. It
// never blocks: a full queue returns ErrQueueFull immediately — that is the
// backpressure signal (HTTP 429 + Retry-After).
func (e *Engine) Submit(p SolveParams) (*Request, error) {
	if p.Epsilon == 0 {
		p.Epsilon = 0.1 // the facade default; normalized so cache keys agree
	}
	if p.Algorithm == "" {
		p.Algorithm = string(mwvc.AlgoMPC)
	}
	if _, ok := solver.Lookup(p.Algorithm); !ok {
		return nil, fmt.Errorf("serve: unknown algorithm %q", p.Algorithm)
	}
	if _, ok := e.store.Get(p.GraphHash); !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, p.GraphHash)
	}
	if p.Timeout <= 0 {
		p.Timeout = e.cfg.DefaultTimeout
	}
	if p.Timeout > e.cfg.MaxTimeout {
		p.Timeout = e.cfg.MaxTimeout
	}
	if p.ImproveBudgetMS < 0 {
		p.ImproveBudgetMS = 0 // normalized so cache keys agree
	}
	if lim := e.cfg.MaxTimeout.Milliseconds(); p.ImproveBudgetMS > lim {
		p.ImproveBudgetMS = lim
	}
	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if e.draining {
		return nil, ErrDraining
	}
	e.met.requestsTotal.Add(1)
	e.nextID++
	req := &Request{
		ID:       fmt.Sprintf("s-%06d", e.nextID),
		Params:   p,
		engine:   e,
		done:     make(chan struct{}),
		deadline: now.Add(p.Timeout),
		status:   StatusQueued,
		queuedAt: now,
		interest: 1,
	}
	if sol, ok := e.cache[keyOf(p)]; ok {
		// Cache hit: the request completes without ever entering the queue.
		e.completeCacheHitLocked(req, sol, now)
		return req, nil
	}
	// Overload degradation: with the queue past the threshold, downgrade
	// the request to the cheap fallback before considering rejection. The
	// degraded tuple gets its own cache and coalescing checks — under
	// sustained identical load the fallback answer is usually already there.
	if e.cfg.DegradeEnabled && p.Algorithm != e.cfg.DegradeAlgorithm && len(e.queue) >= e.degradeAt {
		req.Degraded = true
		req.RequestedAlgo = p.Algorithm
		p.Algorithm = e.cfg.DegradeAlgorithm
		if p.ImproveBudgetMS > degradedImproveBudgetMS {
			p.ImproveBudgetMS = degradedImproveBudgetMS
		}
		req.Params = p
		e.met.degraded.Add(1)
		if sol, ok := e.cache[keyOf(p)]; ok {
			e.completeCacheHitLocked(req, sol, now)
			return req, nil
		}
	}
	// Admission coalescing: an identical tuple already enqueued or solving
	// makes this request a follower sharing the leader's outcome — no queue
	// slot, no duplicate solver execution.
	if leader, ok := e.inflight[keyOf(p)]; ok {
		req.leader = leader
		req.coalesced = true
		leader.followers = append(leader.followers, req)
		leader.mu.Lock()
		leader.interest++
		leader.mu.Unlock()
		e.met.coalesced.Add(1)
		e.requests[req.ID] = req
		return req, nil
	}
	select {
	case e.queue <- req:
		e.inflight[keyOf(p)] = req
	default:
		e.met.rejected.Add(1)
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, e.cfg.QueueDepth)
	}
	e.requests[req.ID] = req
	return req, nil
}

// completeCacheHitLocked finishes a request from the solution cache at
// admission time. Caller holds e.mu.
func (e *Engine) completeCacheHitLocked(req *Request, sol *mwvc.Solution, now time.Time) {
	req.completed = true
	req.cached = true
	req.status = StatusDone
	req.sol = sol
	req.coverSize = coverSize(sol)
	req.rounds = sol.Rounds
	req.startedAt = now
	req.doneAt = now
	close(req.done)
	e.met.cacheHits.Add(1)
	e.met.done.Add(1)
	e.requests[req.ID] = req
	e.retainLocked(req.ID)
}

// retainLocked records a finished request id and evicts beyond the retention
// cap. Caller holds e.mu.
func (e *Engine) retainLocked(id string) {
	e.finished = append(e.finished, id)
	for len(e.finished) > e.cfg.RetainRequests {
		delete(e.requests, e.finished[0])
		e.finished = e.finished[1:]
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		// Prioritized stop check: when Close has fired, exit instead of
		// racing it for queued requests — Close drains and fails those with
		// ErrClosed. Without the priority, a select with both channels ready
		// picks randomly and shutdown would solve half the backlog.
		select {
		case <-e.stop:
			return
		default:
		}
		select {
		case <-e.stop:
			return
		case req := <-e.queue:
			e.dispatch(req)
		}
	}
}

// dispatch runs one dequeued request behind the worker's panic guard: a
// panic anywhere in the request path (store access, trace fan-out, the
// solver itself past its own guard) fails that one request with a typed
// retryable error instead of killing the worker goroutine and silently
// shrinking the pool.
func (e *Engine) dispatch(req *Request) {
	defer func() {
		if v := recover(); v != nil {
			e.met.panics.Add(1)
			e.complete(req, nil, fmt.Errorf("%w: panic in request path: %v", ErrRetryable, v),
				fmt.Sprintf("transient failure (recovered panic: %v); retry", v))
		}
	}()
	if err := fault.Hit(fault.WorkerDequeue); err != nil {
		e.complete(req, nil, fmt.Errorf("%w: %v", ErrRetryable, err),
			"transient failure at dequeue; retry")
		return
	}
	e.run(req)
}

// complete finalizes a request — and every coalesced follower riding on it
// — with one outcome, updating metrics, the in-flight index and the
// retention ring. It is idempotent per request (finish's first-call-wins
// contract), so the dispatch panic guard can call it unconditionally.
func (e *Engine) complete(req *Request, sol *mwvc.Solution, err error, errMsg string) {
	if !req.finish(sol, err, errMsg) {
		return
	}
	if err == nil {
		e.met.done.Add(1)
	} else {
		e.met.failed.Add(1)
	}
	e.mu.Lock()
	key := keyOf(req.Params)
	if cur, ok := e.inflight[key]; ok && cur == req {
		delete(e.inflight, key)
	}
	followers := req.followers
	req.followers = nil
	e.retainLocked(req.ID)
	for _, f := range followers {
		e.retainLocked(f.ID)
	}
	e.mu.Unlock()
	for _, f := range followers {
		if f.finish(sol, err, errMsg) {
			if err == nil {
				e.met.done.Add(1)
			} else {
				e.met.failed.Add(1)
			}
		}
	}
}

func keyOf(p SolveParams) cacheKey {
	return cacheKey{hash: p.GraphHash, algo: p.Algorithm, eps: p.Epsilon, seed: p.Seed,
		paper: p.PaperConstants, noReduce: p.NoReduce, improveMS: p.ImproveBudgetMS}
}

// compareCacheKeys orders cache keys field by field; epsilon compares by
// its bit pattern (the key is an exact tuple, not a tolerance).
func compareCacheKeys(a, b cacheKey) int {
	if c := cmp.Compare(a.hash, b.hash); c != 0 {
		return c
	}
	if c := cmp.Compare(a.algo, b.algo); c != 0 {
		return c
	}
	if c := cmp.Compare(math.Float64bits(a.eps), math.Float64bits(b.eps)); c != 0 {
		return c
	}
	if c := cmp.Compare(a.seed, b.seed); c != 0 {
		return c
	}
	if c := boolCompare(a.paper, b.paper); c != 0 {
		return c
	}
	if c := boolCompare(a.noReduce, b.noReduce); c != 0 {
		return c
	}
	return cmp.Compare(a.improveMS, b.improveMS)
}

// boolCompare orders false before true.
func boolCompare(a, b bool) int {
	switch {
	case a == b:
		return 0
	case b:
		return -1
	default:
		return 1
	}
}

// run executes one dequeued request end to end: deadline context, observed
// solve through the facade, outcome classification, cache fill. The cache is
// rechecked at dequeue time — a duplicate that slipped past coalescing (its
// twin finished between this request's admission and dequeue) is served
// from the cache without re-running the solver.
func (e *Engine) run(req *Request) {
	e.mu.Lock()
	sol, hit := e.cache[keyOf(req.Params)]
	e.mu.Unlock()
	if hit {
		req.mu.Lock()
		req.cached = true
		req.startedAt = time.Now()
		req.mu.Unlock()
		e.met.cacheHits.Add(1)
		e.complete(req, sol, nil, "")
		return
	}
	req.mu.Lock()
	if req.abandoned {
		// Every attached client disconnected while the request waited; do
		// not burn a solver execution on a result nobody will read.
		req.mu.Unlock()
		e.met.abandoned.Add(1)
		e.complete(req, nil, context.Canceled, "abandoned: client disconnected while queued")
		return
	}
	req.status = StatusRunning
	req.startedAt = time.Now()
	req.mu.Unlock()
	e.met.inFlight.Add(1)
	defer e.met.inFlight.Add(-1)

	// The deadline was fixed at admission; a request that exhausted it in
	// the queue fails here without wasting a solver execution on it.
	ctx, cancel := context.WithDeadline(context.Background(), req.deadline)
	defer cancel()
	// Expose the cancel to Abandon so a client disconnect mid-solve frees
	// the worker; re-check abandonment in case it raced the handoff.
	req.mu.Lock()
	req.cancelSolve = cancel
	abandoned := req.abandoned
	req.mu.Unlock()
	if abandoned {
		cancel()
	}
	if err := ctx.Err(); err != nil {
		msg, _ := cli.DeadlineMessage(err, 0)
		e.complete(req, nil, err, msg)
		return
	}
	p := req.Params
	sg, ok := e.store.Get(p.GraphHash)
	if !ok { // validated at Submit; the store never evicts, so unreachable
		e.complete(req, nil, ErrUnknownGraph, ErrUnknownGraph.Error())
		return
	}
	opts := []mwvc.Option{
		mwvc.WithAlgorithm(mwvc.Algorithm(p.Algorithm)),
		mwvc.WithEpsilon(p.Epsilon),
		mwvc.WithSeed(p.Seed),
		mwvc.WithParallelism(e.cfg.SolverParallelism),
		mwvc.WithObserver(mwvc.ObserverFunc(req.observe)),
	}
	if p.PaperConstants {
		opts = append(opts, mwvc.WithPaperConstants())
	}
	if p.NoReduce {
		opts = append(opts, mwvc.WithoutReduction())
	}
	if p.ImproveBudgetMS > 0 {
		opts = append(opts, mwvc.WithImprovement(time.Duration(p.ImproveBudgetMS)*time.Millisecond))
	}
	start := time.Now()
	sol, err := e.solveGuarded(ctx, sg, opts)
	elapsed := time.Since(start)
	req.mu.Lock()
	req.cancelSolve = nil
	req.mu.Unlock()
	// Solver-execution accounting covers failures too: a deadline-bound
	// overload burns full worker time per request, and metrics that only
	// count successes would show an idle solver during the incident.
	e.met.solveCount.Add(1)
	e.met.solveNanos.Add(int64(elapsed))
	e.met.algoCount(p.Algorithm)
	if err == nil && sol.Reduction != nil {
		r := sol.Reduction
		e.met.reduceCount.Add(1)
		e.met.reduceNanos.Add(r.ReduceNS)
		e.met.reduceVerticesRemoved.Add(int64(r.OriginalVertices - r.KernelVertices))
		e.met.reduceEdgesRemoved.Add(int64(r.OriginalEdges - r.KernelEdges))
	}
	if err == nil && sol.Improvement != nil {
		imp := sol.Improvement
		e.met.improveCount.Add(1)
		e.met.improveNanos.Add(imp.ImproveNS)
		e.met.improveSteps.Add(int64(imp.Steps))
		e.met.improveWeightRemoved.Add(imp.WeightBefore - imp.WeightAfter)
	}

	if err != nil {
		msg := err.Error()
		if m, ok := cli.DeadlineMessage(err, req.Rounds()); ok {
			msg = m
		}
		e.complete(req, nil, err, msg)
		return
	}
	key := keyOf(p)
	e.mu.Lock()
	if _, exists := e.cache[key]; !exists && len(e.cache) >= e.cfg.MaxCacheEntries {
		// Evict the smallest key under a total order so which tuples stay
		// warm never depends on map iteration order: two replicas replaying
		// the same request log keep identical caches. Eviction only runs at
		// capacity, so the O(n) scan is off the common path.
		var keys []cacheKey
		for k := range e.cache {
			keys = append(keys, k)
		}
		slices.SortFunc(keys, compareCacheKeys)
		delete(e.cache, keys[0])
	}
	e.cache[key] = sol
	e.mu.Unlock()
	e.complete(req, sol, nil, "")
}

// solveGuarded runs mwvc.Solve behind its own recover guard, so a panic in
// solver code (including an injected SolverStep panic surfacing through the
// observer) fails the one request with a typed retryable error instead of
// unwinding into the worker loop.
func (e *Engine) solveGuarded(ctx context.Context, sg *StoredGraph, opts []mwvc.Option) (sol *mwvc.Solution, err error) {
	defer func() {
		if v := recover(); v != nil {
			e.met.panics.Add(1)
			sol = nil
			err = fmt.Errorf("%w: solver panic: %v", ErrRetryable, v)
		}
	}()
	return mwvc.Solve(ctx, sg.Graph, opts...)
}

// engineMetrics is the engine's aggregate instrumentation; see metrics.go
// for the exported snapshot and the Prometheus exposition.
type engineMetrics struct {
	requestsTotal atomic.Int64
	rejected      atomic.Int64
	cacheHits     atomic.Int64
	done          atomic.Int64
	failed        atomic.Int64
	inFlight      atomic.Int64
	roundsTotal   atomic.Int64
	eventsTotal   atomic.Int64
	solveCount    atomic.Int64
	solveNanos    atomic.Int64

	// Robustness accounting: overload degradations, coalesced duplicate
	// admissions, abandoned (client-disconnected) requests and recovered
	// panics in the request path.
	degraded  atomic.Int64
	coalesced atomic.Int64
	abandoned atomic.Int64
	panics    atomic.Int64

	// Kernelization accounting across *successful* solver executions that
	// ran the reduction stage. Failed solves are excluded by necessity, not
	// by choice: the stats travel on the Solution, which an errored
	// mwvc.Solve does not return. Cache hits re-run nothing and are
	// likewise excluded.
	reduceCount           atomic.Int64
	reduceNanos           atomic.Int64
	reduceVerticesRemoved atomic.Int64
	reduceEdgesRemoved    atomic.Int64

	// Anytime-improvement accounting across successful solver executions
	// that ran the stage (same exclusions as the reduce counters).
	improveCount         atomic.Int64
	improveNanos         atomic.Int64
	improveSteps         atomic.Int64
	improveWeightRemoved atomicFloat64

	algoMu  sync.Mutex
	perAlgo map[string]int64
}

// atomicFloat64 accumulates a float64 sum via compare-and-swap on the bit
// pattern; the cover weight removed per solve is not an integer, and
// Prometheus counters are float-valued anyway.
type atomicFloat64 struct{ bits atomic.Uint64 }

// Add accumulates v into the sum.
func (a *atomicFloat64) Add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Load returns the current sum.
func (a *atomicFloat64) Load() float64 { return math.Float64frombits(a.bits.Load()) }

func (m *engineMetrics) algoCount(algo string) {
	m.algoMu.Lock()
	if m.perAlgo == nil {
		m.perAlgo = make(map[string]int64)
	}
	m.perAlgo[algo]++
	m.algoMu.Unlock()
}
