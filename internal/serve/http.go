package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	mwvc "repro"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/solver"
)

// maxGraphUpload bounds a POST /v1/graphs body; the text formats run about
// 12 bytes per edge, so this admits graphs into the hundred-million-edge
// range while keeping a hostile upload from exhausting memory. Uploads may
// use either the canonical "mwvc-graph 1" format or the streaming
// "mwvc-el 1" edge-list format (docs/FORMATS.md); the stored graph and its
// content hash are canonical regardless.
const maxGraphUpload = 1 << 31

// NewHandler exposes the engine over HTTP:
//
//	POST /v1/graphs          upload a graph (text format) → its content hash
//	POST /v1/solve           solve {graph, algorithm, epsilon, seed, ...}
//	GET  /v1/solve/{id}      request status / result
//	GET  /v1/solve/{id}/trace  live round-by-round events (SSE)
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            readiness: 200 serving, 503 draining
func NewHandler(e *Engine) http.Handler {
	s := &server{engine: e}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.uploadGraph)
	mux.HandleFunc("POST /v1/solve", s.solve)
	mux.HandleFunc("GET /v1/solve/{id}", s.status)
	mux.HandleFunc("GET /v1/solve/{id}/trace", s.trace)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", s.healthz)
	return mux
}

// healthz is the readiness probe: 200 while the engine accepts work, 503
// once a drain (or close) begins so load balancers stop routing here while
// queued and in-flight solves finish.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.engine.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

type server struct {
	engine *Engine
}

// GraphResponse answers POST /v1/graphs.
type GraphResponse struct {
	Graph    string `json:"graph"` // content hash; the id solve requests use
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	New      bool   `json:"new"` // false when the graph was already stored
}

// SolveRequest is the POST /v1/solve body. Zero-valued fields take the
// engine defaults (algorithm mpc, ε 0.1, seed 0, default deadline).
type SolveRequest struct {
	Graph     string `json:"graph"` // content hash from POST /v1/graphs
	Algorithm string `json:"algorithm,omitempty"`
	// Tier picks an algorithm by quality/latency bucket instead of by name:
	// "fast", "accurate" or "exact" resolves to the bucket's preferred
	// (lowest-ranked) registered solver — e.g. tier "fast" is the pdfast
	// primal–dual sweep. Mutually exclusive with Algorithm; the response's
	// algorithm field reports what the tier resolved to, and the resolved
	// algorithm is what enters the solution-cache key.
	Tier           string  `json:"tier,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	PaperConstants bool    `json:"paper_constants,omitempty"`
	// Reduce toggles the kernelization stage; omitted or true runs it (the
	// facade default), false solves the raw graph. It is part of the
	// solution-cache key.
	Reduce *bool `json:"reduce,omitempty"`
	// ImproveBudgetMS, when positive, runs the anytime improvement stage
	// with that wall-clock budget after the solve; improvement statistics
	// appear under solution.improvement. It is part of the solution-cache
	// key.
	ImproveBudgetMS int64 `json:"improve_budget_ms,omitempty"`
	TimeoutMS       int64 `json:"timeout_ms,omitempty"`
	// IncludeCover adds the cover bitmap to the response (omitted by default:
	// it is n booleans, usually the bulk of the payload).
	IncludeCover bool `json:"include_cover,omitempty"`
	// Wait false turns the call asynchronous: respond 202 with the request
	// id immediately; poll GET /v1/solve/{id} or stream .../trace.
	Wait *bool `json:"wait,omitempty"`
}

// SolveResponse answers POST /v1/solve and GET /v1/solve/{id}.
type SolveResponse struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	// Coalesced marks a request that shared an identical in-flight solve
	// instead of running its own.
	Coalesced bool   `json:"coalesced,omitempty"`
	Graph     string `json:"graph"`
	// Algorithm is the solver that actually ran. Under overload degradation
	// it may be the cheap fallback rather than what the client asked for —
	// Degraded is set and RequestedAlgorithm preserves the original ask.
	Algorithm          string  `json:"algorithm"`
	Degraded           bool    `json:"degraded,omitempty"`
	RequestedAlgorithm string  `json:"requested_algorithm,omitempty"`
	Epsilon            float64 `json:"epsilon"`
	Seed               uint64  `json:"seed"`
	// Reduce echoes whether the kernelization stage was enabled for this
	// request; kernel statistics appear under solution.reduction.
	Reduce bool `json:"reduce"`
	// ImproveBudgetMS echoes the effective (clamped) improvement budget; 0
	// means the stage was off. Stage statistics appear under
	// solution.improvement.
	ImproveBudgetMS int64          `json:"improve_budget_ms,omitempty"`
	Solution        *mwvc.Solution `json:"solution,omitempty"`
	CoverSize       int            `json:"cover_size,omitempty"`
	Error           string         `json:"error,omitempty"`
	Rounds          int            `json:"rounds,omitempty"` // live count while running
	// TraceDropped is nonzero when the round-by-round trace was truncated
	// beyond the per-request buffer cap.
	TraceDropped int   `json:"trace_dropped,omitempty"`
	QueueMS      int64 `json:"queue_ms"`
	SolveMS      int64 `json:"solve_ms,omitempty"`
}

func (s *server) uploadGraph(w http.ResponseWriter, r *http.Request) {
	g, err := graph.Read(http.MaxBytesReader(w, r.Body, maxGraphUpload))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("graph upload exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing graph: %v", err))
		return
	}
	sg, isNew, err := s.engine.Graphs().Add(g)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrStoreFull):
			code = http.StatusInsufficientStorage
		case errors.Is(err, ErrRetryable):
			// A durable-store persist failure: nothing was acknowledged, the
			// client may simply retry the upload.
			w.Header().Set("Retry-After", "1")
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, GraphResponse{Graph: sg.Hash, Vertices: sg.Vertices, Edges: sg.Edges, New: isNew})
}

func (s *server) solve(w http.ResponseWriter, r *http.Request) {
	var body SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing request: %v", err))
		return
	}
	algo := body.Algorithm
	if body.Tier != "" {
		if body.Algorithm != "" {
			httpError(w, http.StatusBadRequest, `"algorithm" and "tier" are mutually exclusive; name one or the other`)
			return
		}
		regs := solver.ByTier(body.Tier)
		if len(regs) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown tier %q (want fast, accurate or exact)", body.Tier))
			return
		}
		algo = regs[0].Name
	}
	req, err := s.engine.Submit(SolveParams{
		GraphHash:       body.Graph,
		Algorithm:       algo,
		Epsilon:         body.Epsilon,
		Seed:            body.Seed,
		PaperConstants:  body.PaperConstants,
		NoReduce:        body.Reduce != nil && !*body.Reduce,
		ImproveBudgetMS: body.ImproveBudgetMS,
		Timeout:         time.Duration(body.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrUnknownGraph):
			httpError(w, http.StatusNotFound, err.Error())
		case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, err.Error())
		default: // unknown algorithm, malformed params
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	if body.Wait != nil && !*body.Wait {
		// 202 while the work is pending — but a cache hit completes inside
		// Submit, and answering 202 for it would send the client off to poll
		// for a result it already holds.
		snap := req.Snapshot()
		code := http.StatusAccepted
		if snap.Status == StatusDone {
			code = http.StatusOK
		}
		writeJSON(w, code, s.response(req, snap, body.IncludeCover))
		return
	}
	if err := req.Wait(r.Context()); err != nil {
		// Client gone. Withdraw this waiter's interest: when no one else is
		// attached (no coalesced twin, no poller), the solve is cancelled so
		// the worker slot stops burning on a result nobody will read.
		req.Abandon()
		return
	}
	snap := req.Snapshot()
	code := solveStatusCode(snap.Err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, s.response(req, snap, body.IncludeCover))
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	req, ok := s.engine.Lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown solve id")
		return
	}
	writeJSON(w, http.StatusOK, s.response(req, req.Snapshot(), r.URL.Query().Get("cover") == "1"))
}

// solveStatusCode maps a finished request's error to its HTTP status: 200
// on success, 504 for a blown per-request deadline (the unified deadline
// handling shared with cmd/mwvc -timeout), 422 for parameters outside the
// algorithm's domain (exact beyond its vertex limit, ggk on a weighted
// graph, ε out of range — a client mistake, not a server fault), 503 with
// Retry-After for typed transient failures (recovered panic, tripped
// worker, shutdown), 500 otherwise.
func solveStatusCode(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, solver.ErrUnsupported):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrClosed), errors.Is(err, ErrRetryable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// response renders one consistent snapshot of a request (see
// Request.Snapshot). The cover bitmap is stripped unless asked for;
// CoverSize always reports its cardinality.
func (s *server) response(req *Request, snap Snapshot, includeCover bool) SolveResponse {
	resp := SolveResponse{
		ID:                 req.ID,
		Status:             snap.Status,
		Cached:             snap.Cached,
		Coalesced:          snap.Coalesced,
		Graph:              req.Params.GraphHash,
		Algorithm:          req.Params.Algorithm,
		Degraded:           req.Degraded,
		RequestedAlgorithm: req.RequestedAlgo,
		Epsilon:            req.Params.Epsilon,
		Seed:               req.Params.Seed,
		Reduce:             !req.Params.NoReduce,
		ImproveBudgetMS:    req.Params.ImproveBudgetMS,
		Error:              snap.ErrMsg,
		Rounds:             snap.Rounds,
		TraceDropped:       snap.TraceDropped,
	}
	if !snap.StartedAt.IsZero() {
		resp.QueueMS = snap.StartedAt.Sub(snap.QueuedAt).Milliseconds()
	}
	if !snap.DoneAt.IsZero() && !snap.StartedAt.IsZero() {
		resp.SolveMS = snap.DoneAt.Sub(snap.StartedAt).Milliseconds()
	}
	if snap.Sol != nil {
		resp.CoverSize = snap.CoverSize
		if !includeCover {
			trimmed := *snap.Sol // shallow copy; the cached Solution stays intact
			trimmed.Cover = nil
			resp.Solution = &trimmed
		} else {
			resp.Solution = snap.Sol
		}
	}
	return resp
}

// traceEventJSON is the SSE data payload for one observer event.
type traceEventJSON struct {
	Kind        string  `json:"kind"`
	Phase       int     `json:"phase"`
	Round       int     `json:"round"`
	ActiveEdges int64   `json:"active_edges"`
	DualBound   float64 `json:"dual_bound"`
	Degree      float64 `json:"degree,omitempty"`
	Machines    int     `json:"machines,omitempty"`
	Iterations  int     `json:"iterations,omitempty"`
	// Weight is the current cover weight for improvement-stage events.
	Weight float64 `json:"weight,omitempty"`
}

func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	req, ok := s.engine.Lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown solve id")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	past, live, cancel := req.Subscribe(1024)
	defer cancel()
	for i := range past {
		writeSSE(w, &past[i])
	}
	fl.Flush()
	for {
		select {
		case e, ok := <-live:
			if !ok {
				// Request finished: emit the terminal event and stop.
				snap := req.Snapshot()
				final := struct {
					Status  Status `json:"status"`
					Cached  bool   `json:"cached,omitempty"`
					Error   string `json:"error,omitempty"`
					Rounds  int    `json:"rounds"`
					Dropped int    `json:"dropped_events,omitempty"` // trace truncated beyond the buffer cap
				}{Status: snap.Status, Cached: snap.Cached, Error: snap.ErrMsg, Rounds: snap.Rounds, Dropped: snap.TraceDropped}
				data, _ := json.Marshal(final)
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
				fl.Flush()
				return
			}
			writeSSE(w, &e)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, e *mwvc.Event) {
	data, _ := json.Marshal(traceEventJSON{
		Kind:        e.Kind.String(),
		Phase:       e.Phase,
		Round:       e.Round,
		ActiveEdges: e.ActiveEdges,
		DualBound:   e.DualBound,
		Degree:      e.Degree,
		Machines:    e.Machines,
		Iterations:  e.Iterations,
		Weight:      e.Weight,
	})
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind.String(), data)
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	if err := WriteMetrics(&b, s.engine.Metrics()); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	fmt.Fprint(w, b.String())
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	if err := fault.Hit(fault.ResponseEncode); err != nil {
		// Encoder fault: replace the payload with a clean typed error before
		// any body byte is written — the client sees valid JSON and a
		// retryable status, never a torn response. Written inline (not via a
		// recursive writeJSON) so the error path cannot itself trip.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"error\":%q}\n", ErrRetryable.Error()+": encoding response")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
