package ggk

import (
	"repro/internal/solver"

	"context"

	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestRunCertifiedCover(t *testing.T) {
	g := gen.GnpAvgDegree(3, 3000, 64)
	res, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := verify.NewCertificate(g, res.Cover, res.FeasibleDual())
	if err != nil {
		t.Fatal(err)
	}
	if cert.Ratio() > 5 {
		t.Fatalf("ggk certified ratio %v", cert.Ratio())
	}
	if res.Phases == 0 {
		t.Fatal("expected sampled phases at d=64")
	}
	if res.Rounds != res.Phases*5+1 {
		t.Fatalf("round accounting broken: %d rounds, %d phases", res.Rounds, res.Phases)
	}
}

func TestRunRejectsWeights(t *testing.T) {
	g := gen.ApplyWeights(gen.Gnp(1, 20, 0.2), 2, gen.UniformRange{Lo: 1, Hi: 2})
	if _, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 1}); err == nil {
		t.Fatal("weighted graph accepted")
	}
	if _, err := Run(context.Background(), nil, solver.Config{Epsilon: 0.1, Seed: 1}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Run(context.Background(), gen.Path(4), solver.Config{Epsilon: 0.5, Seed: 1}); err == nil {
		t.Fatal("bad epsilon accepted")
	}
}

func TestRunDegenerate(t *testing.T) {
	res, err := Run(context.Background(), graph.NewBuilder(5).MustBuild(), solver.Config{Epsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Cover {
		if in {
			t.Fatal("edgeless vertex covered")
		}
	}
	empty, err := Run(context.Background(), graph.NewBuilder(0).MustBuild(), solver.Config{Epsilon: 0.1, Seed: 1})
	if err != nil || len(empty.Cover) != 0 {
		t.Fatal("empty graph mishandled")
	}
}

func TestRunSparseSkipsPhases(t *testing.T) {
	g := gen.GnpAvgDegree(7, 2000, 4)
	res, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 0 {
		t.Fatalf("sparse graph ran %d phases", res.Phases)
	}
	if ok, _ := verify.IsCover(g, res.Cover); !ok {
		t.Fatal("not a cover")
	}
}

func TestRunDeterministic(t *testing.T) {
	g := gen.GnpAvgDegree(11, 1000, 48)
	a, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Cover {
		if a.Cover[v] != b.Cover[v] {
			t.Fatal("same seed, different covers")
		}
	}
	if a.GlobalIterations != b.GlobalIterations {
		t.Fatal("same seed, different iteration counts")
	}
}

func TestRunTrueRatioOnBipartite(t *testing.T) {
	// Exact OPT via König: the unweighted ancestor must land within its
	// (2+O(ε)) guarantee in truth, not just certificate.
	g := gen.RandomBipartite(13, 1500, 1500, 0.02)
	res, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := verify.IsCover(g, res.Cover); !ok {
		t.Fatal("not a cover")
	}
	_, opt, err := bipartite.MinimumVertexCover(g)
	if err != nil {
		t.Fatal(err)
	}
	w := verify.CoverWeight(g, res.Cover)
	if opt > 0 && w > 2.6*float64(opt) {
		t.Fatalf("ggk true ratio %v beyond 2+O(ε)", w/float64(opt))
	}
}

func TestPowerLawHeavyTail(t *testing.T) {
	g := gen.PreferentialAttachment(17, 2000, 24)
	res, err := Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := verify.NewCertificate(g, res.Cover, res.FeasibleDual())
	if err != nil {
		t.Fatal(err)
	}
	if cert.Ratio() > 5 {
		t.Fatalf("heavy-tail ratio %v", cert.Ratio())
	}
}
