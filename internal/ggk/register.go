package ggk

import (
	"context"

	"repro/internal/graph"
	"repro/internal/solver"
)

func init() {
	solver.Register(solver.Meta{
		Name:    "ggk",
		Rank:    60,
		Tier:    solver.TierAccurate,
		Summary: "unweighted GGK+18 round compression (unit-weight graphs only)",
	}, solver.Func(solve))
}

func solve(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	res, err := Run(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	return &solver.Outcome{
		Cover:  res.Cover,
		Duals:  res.FeasibleDual(),
		Rounds: res.Rounds,
		Phases: res.Phases,
	}, nil
}
