// Package ggk implements the unweighted (2+ε)-approximate vertex cover
// round-compression algorithm of Ghaffari, Gouleakis, Konrad, Mitrović and
// Rubinfeld (PODC 2018) as recapped in Section 3.2 of the paper. It is the
// direct ancestor of Algorithm 2 and the baseline that defines what the
// weighted generalization had to preserve.
//
// Structure (everything per the paper's recap):
//
//   - dual variables start at x_e = 1/n and *keep growing across phases*:
//     all active edges share the weight x_t = (1/n)/(1−ε)^t for a global
//     iteration counter t. (Contrast with the weighted Algorithm 2, which
//     re-initializes duals per phase from residual weights — re-initializing
//     uniform duals would discard all progress, which is why the "uniform
//     init" ablation of the weighted algorithm stalls while this algorithm
//     does not.)
//   - a vertex's behaviour depends only on its active degree: with unit
//     weights, y_{v,t} = activeDeg(v)·x_t, so the freeze test
//     y ≥ T_{v,t}·1 is a degree threshold.
//   - phases: while the maximum active degree δ exceeds polylog(n),
//     partition the vertices over m = √δ machines and locally simulate
//     Θ(log m) iterations, estimating the active degree by m× the local
//     active degree; then reconcile freezes globally and repeat. The
//     maximum degree drops polynomially per phase ⇒ O(log log δ) phases.
//
// The phase schedule and communication pattern are identical to the
// weighted algorithm's (aggregate, share, scatter, simulate, collect), so
// rounds are accounted on the same 5-per-phase + 1 schedule that
// internal/core executes through the substrate.
package ggk

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Result of a run.
type Result struct {
	// Cover marks the frozen vertices.
	Cover []bool
	// X holds the finalized dual weights (a near-feasible fractional
	// matching; rescale by Alpha for exact feasibility).
	X []float64
	// Alpha is the dual violation factor max_v Σ_{e∋v} x_e (unit weights).
	Alpha float64
	// Phases and Rounds use the same accounting as the weighted algorithm.
	Phases int
	Rounds int
	// GlobalIterations is the final value of the cross-phase counter t.
	GlobalIterations int
}

// Run executes the unweighted round-compression algorithm. The graph must
// have unit weights (the algorithm's analysis is degree-based).
//
// The context is checked between phases and between final-phase iterations;
// cfg.Observer receives KindPhaseStart/KindPhaseEnd per sampled phase and one
// KindFinalPhase event (round events are not emitted — rounds here are the
// accounted 5-per-phase schedule, not individually executed steps).
func Run(ctx context.Context, g *graph.Graph, cfg solver.Config) (*Result, error) {
	epsilon, seed := cfg.Epsilon, cfg.Seed
	if g == nil {
		return nil, errors.New("ggk: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if epsilon <= 0 || epsilon > 0.125 {
		return nil, fmt.Errorf("ggk: epsilon %v out of (0, 0.125]: %w", epsilon, solver.ErrUnsupported)
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.Weight(graph.Vertex(v)) != 1 {
			return nil, fmt.Errorf("ggk: vertex %d has weight %v; the unweighted algorithm requires unit weights: %w", v, g.Weight(graph.Vertex(v)), solver.ErrUnsupported)
		}
	}
	m := g.NumEdges()
	epFlat := g.EdgeEndpoints() // flat (u,v) pairs; epFlat[2e], epFlat[2e+1] = endpoints of e
	res := &Result{
		Cover: make([]bool, n),
		X:     make([]float64, m),
		Alpha: 1,
	}
	if n == 0 || m == 0 {
		return res, nil
	}

	growth := 1 / (1 - epsilon)
	lo, hi := 1-4*epsilon, 1-2*epsilon
	frozen := res.Cover
	edgeFrozen := make([]bool, m)
	activeDeg := make([]int, n)
	for v := 0; v < n; v++ {
		activeDeg[v] = g.Degree(graph.Vertex(v))
	}
	maxDeg := func() int {
		d := 0
		for v := 0; v < n; v++ {
			if !frozen[v] && activeDeg[v] > d {
				d = activeDeg[v]
			}
		}
		return d
	}
	// Freeze v at global iteration t: finalize its active edges at x_t.
	// dualSum tracks Σ x_e over finalized edges for observer events.
	dualSum := 0.0
	xAt := func(t int) float64 { return math.Pow(growth, float64(t)) / float64(n) }
	freeze := func(v graph.Vertex, t int) {
		frozen[v] = true
		for _, e := range g.IncidentEdges(v) {
			if edgeFrozen[e] {
				continue
			}
			edgeFrozen[e] = true
			res.X[e] = xAt(t)
			dualSum += res.X[e]
			u := g.Other(e, v)
			activeDeg[u]--
			activeDeg[v]--
		}
	}
	activeEdgeCount := func() int64 {
		c := int64(0)
		for e := 0; e < m; e++ {
			if !edgeFrozen[e] {
				c++
			}
		}
		return c
	}

	switchAt := math.Max(8, 2*math.Log2(math.Max(2, float64(n))))
	t := 0
	phase := 0
	maxPhases := 64
	// Per-phase working arrays, allocated once and recycled: the phase loop
	// itself runs allocation-free at steady state.
	machineOf := make([]int32, n)
	localDeg := make([]int, n)
	freezeIter := make([]int32, n)
	localActive := make([]bool, n)
	var toFreeze []graph.Vertex
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		delta := maxDeg()
		if float64(delta) <= switchAt {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("ggk: no convergence after %d phases (δ=%d)", phase, delta)
		}
		mMach := int(math.Round(math.Sqrt(float64(delta))))
		if mMach < 2 {
			mMach = 2
		}
		iters := int(math.Floor(0.5 * math.Log(float64(mMach)) / math.Log(growth)))
		if iters < 2 {
			iters = 2
		}
		// Guarded so the O(m) active-edge scan only runs for an observer.
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(solver.Event{
				Kind:        solver.KindPhaseStart,
				Phase:       phase,
				ActiveEdges: activeEdgeCount(),
				DualBound:   dualSum,
				Degree:      float64(delta),
				Machines:    mMach,
				Iterations:  iters,
			})
		}

		// Partition the nonfrozen vertices; each machine simulates `iters`
		// iterations on its induced subgraph with the scaled-degree
		// estimator. Machine-local work is reproduced faithfully; the
		// communication pattern matches internal/core's measured 5-round
		// schedule, accounted below.
		for v := 0; v < n; v++ {
			if !frozen[v] {
				machineOf[v] = int32(rng.ChooseAt(seed, mMach, 'G', uint64(phase), uint64(v)))
			} else {
				machineOf[v] = -1
			}
		}
		// localDeg[v]: active neighbors on v's own machine.
		for v := range localDeg {
			localDeg[v] = 0
		}
		for e := 0; e < m; e++ {
			if edgeFrozen[e] {
				continue
			}
			u, v := epFlat[2*e], epFlat[2*e+1]
			if machineOf[u] >= 0 && machineOf[u] == machineOf[v] {
				localDeg[u]++
				localDeg[v]++
			}
		}
		// Local simulation: I iterations of the degree-threshold test with
		// the m-scaled estimator ŷ = m·localDeg·x_t.
		for v := range freezeIter {
			freezeIter[v] = -1
		}
		for v := 0; v < n; v++ {
			localActive[v] = !frozen[v]
		}
		for it := 0; it < iters; it++ {
			x := xAt(t + it)
			toFreeze = toFreeze[:0]
			for v := 0; v < n; v++ {
				if !localActive[v] || machineOf[v] < 0 {
					continue
				}
				est := float64(mMach) * float64(localDeg[v]) * x
				th := rng.UniformAt(seed, lo, hi, 'T', uint64(phase), uint64(v), uint64(it))
				if est >= th {
					toFreeze = append(toFreeze, graph.Vertex(v))
				}
			}
			for _, v := range toFreeze {
				localActive[v] = false
				freezeIter[v] = int32(it)
			}
			// Local degree updates: frozen vertices remove their local
			// edges (only same-machine edges are visible locally).
			for _, v := range toFreeze {
				for _, u := range g.Neighbors(v) {
					if machineOf[u] == machineOf[v] && localActive[u] {
						localDeg[u]--
					}
				}
			}
		}

		// Reconciliation: edges of E with a locally frozen endpoint are
		// finalized at the earliest endpoint freeze — vertices are processed
		// in freeze-iteration order so a shared edge takes the earlier
		// endpoint's weight. Over-covered vertices freeze too (the
		// unweighted Line (2i) analogue: active degree at the post-phase
		// weight already implies y ≥ 1).
		for it := 0; it < iters; it++ {
			for v := 0; v < n; v++ {
				if freezeIter[v] == int32(it) {
					freeze(graph.Vertex(v), t+it)
				}
			}
		}
		tEnd := t + iters
		xEnd := xAt(tEnd)
		for v := 0; v < n; v++ {
			if !frozen[v] && float64(activeDeg[v])*xEnd >= 1 {
				freeze(graph.Vertex(v), tEnd)
			}
		}
		t = tEnd
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(solver.Event{
				Kind:        solver.KindPhaseEnd,
				Phase:       phase,
				ActiveEdges: activeEdgeCount(),
				DualBound:   dualSum,
				Degree:      float64(delta),
				Machines:    mMach,
				Iterations:  iters,
			})
		}
		phase++
	}
	res.Phases = phase
	res.Rounds = phase*5 + 1

	// Final phase: run the remaining iterations centrally until no active
	// edges remain.
	remaining := 0
	for e := 0; e < m; e++ {
		if !edgeFrozen[e] {
			remaining++
		}
	}
	maxT := t + 10 + int(math.Ceil(math.Log(float64(n))/math.Log(growth)))
	for remaining > 0 && t < maxT {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := xAt(t)
		toFreeze = toFreeze[:0]
		for v := 0; v < n; v++ {
			if frozen[v] || activeDeg[v] == 0 {
				continue
			}
			th := rng.UniformAt(seed, lo, hi, 'F', uint64(v), uint64(t))
			if float64(activeDeg[v])*x >= th {
				toFreeze = append(toFreeze, graph.Vertex(v))
			}
		}
		for _, v := range toFreeze {
			if !frozen[v] {
				freeze(v, t)
			}
		}
		remaining = 0
		for e := 0; e < m; e++ {
			if !edgeFrozen[e] {
				remaining++
			}
		}
		t++
	}
	if remaining > 0 {
		return nil, fmt.Errorf("ggk: %d active edges after %d global iterations", remaining, t)
	}
	res.GlobalIterations = t
	solver.Emit(cfg.Observer, solver.Event{
		Kind:       solver.KindFinalPhase,
		Phase:      -1,
		Round:      res.Rounds,
		DualBound:  dualSum,
		Iterations: t,
	})

	// Dual violation factor (unit weights: α = max incident sum).
	incident := make([]float64, n)
	for e := 0; e < m; e++ {
		u, v := epFlat[2*e], epFlat[2*e+1]
		incident[u] += res.X[e]
		incident[v] += res.X[e]
	}
	for v := 0; v < n; v++ {
		if incident[v] > res.Alpha {
			res.Alpha = incident[v]
		}
	}
	return res, nil
}

// FeasibleDual returns the duals rescaled to exact feasibility.
func (r *Result) FeasibleDual() []float64 {
	scaled := make([]float64, len(r.X))
	inv := 1 / r.Alpha
	for e, x := range r.X {
		scaled[e] = x * inv
	}
	return scaled
}
