// Package baselines implements the comparison algorithms the paper measures
// itself against (Section 1.2):
//
//   - the classic sequential 2-approximation of Bar-Yehuda–Even [BYE81]
//     (the paper's primal–dual ancestor), which doubles as a cheap
//     certified lower bound for branch-and-bound;
//   - the LOCAL/PRAM primal–dual baseline — Algorithm 1 run one iteration
//     per communication round — in both initializations: degree-aware
//     (O(log Δ) rounds) and the classic uniform x_e = 1/n (O(log nW)
//     rounds, the "best known O(log n)" the paper improves on, cf. [KY09]);
//   - greedy weighted vertex cover (price-per-uncovered-edge), a quality
//     reference without approximation guarantee for the weighted case;
//   - the maximal-matching 2-approximation for the unweighted special case
//     (the [II86] building block used by the unweighted MPC literature).
package baselines

import (
	"context"
	"errors"
	"math"

	"repro/internal/centralized"
	"repro/internal/graph"
)

// Solution is a vertex cover together with, when available, a feasible dual
// certificate and round accounting.
type Solution struct {
	Cover []bool
	// Duals is a feasible fractional matching certifying Weight ≤ 2·OPT
	// style bounds; nil for algorithms that do not produce one (greedy).
	Duals []float64
	// Rounds is the number of communication rounds the algorithm would take
	// in a LOCAL/MPC execution; 0 for inherently sequential algorithms.
	Rounds int
}

// BarYehudaEven runs the linear-time local-ratio 2-approximation: edges are
// scanned once; each edge charges δ = min(residual(u), residual(v)) to both
// endpoints; vertices whose residual reaches zero join the cover. The edge
// charges form a feasible fractional matching, so the solution carries its
// own ≤2 certificate.
func BarYehudaEven(g *graph.Graph) *Solution {
	n := g.NumVertices()
	residual := make([]float64, n)
	for v := 0; v < n; v++ {
		residual[v] = g.Weight(graph.Vertex(v))
	}
	duals := make([]float64, g.NumEdges())
	cover := make([]bool, n)
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		if cover[u] || cover[v] {
			continue
		}
		delta := math.Min(residual[u], residual[v])
		duals[e] = delta
		residual[u] -= delta
		residual[v] -= delta
		if residual[u] <= 0 {
			cover[u] = true
		}
		if residual[v] <= 0 {
			cover[v] = true
		}
	}
	return &Solution{Cover: cover, Duals: duals}
}

// LocalPrimalDual runs Algorithm 1 with one iteration per round — the
// LOCAL-model baseline. With the degree-aware initialization it terminates
// in O(log Δ) rounds; with InitUniform in O(log(n·W/w_min)) rounds. The
// returned Rounds is the iteration count.
func LocalPrimalDual(ctx context.Context, g *graph.Graph, epsilon float64, seed uint64, init centralized.InitPolicy) (*Solution, error) {
	res, err := centralized.Run(ctx,
		centralized.Instance{G: g},
		centralized.Options{Epsilon: epsilon, Seed: seed, Init: init},
	)
	if err != nil {
		return nil, err
	}
	return &Solution{Cover: res.Cover, Duals: res.X, Rounds: res.Iterations}, nil
}

// Greedy repeatedly selects the vertex minimizing weight per newly covered
// edge until all edges are covered. No constant-factor guarantee in the
// weighted case (Θ(log n) in the worst case); included as the natural
// "what a practitioner would try first" reference.
func Greedy(g *graph.Graph) *Solution {
	n := g.NumVertices()
	uncovered := make([]int, n) // uncovered incident edges per vertex
	covered := make([]bool, g.NumEdges())
	for v := 0; v < n; v++ {
		uncovered[v] = g.Degree(graph.Vertex(v))
	}
	cover := make([]bool, n)
	remaining := g.NumEdges()
	for remaining > 0 {
		best := -1
		bestScore := math.Inf(1)
		for v := 0; v < n; v++ {
			if cover[v] || uncovered[v] == 0 {
				continue
			}
			score := g.Weight(graph.Vertex(v)) / float64(uncovered[v])
			if score < bestScore {
				bestScore = score
				best = v
			}
		}
		if best < 0 {
			break // cannot happen on a consistent state
		}
		cover[best] = true
		ids := g.IncidentEdges(graph.Vertex(best))
		for _, e := range ids {
			if covered[e] {
				continue
			}
			covered[e] = true
			remaining--
			u, w := g.Edge(e)
			uncovered[u]--
			uncovered[w]--
		}
	}
	return &Solution{Cover: cover}
}

// MaximalMatchingCover computes a greedy maximal matching and returns both
// endpoints of every matched edge — the textbook 2-approximation for
// *unweighted* vertex cover. The matching itself (x_e = 1 on matched edges)
// is a feasible dual for unit weights, so the certificate is carried along.
// It errors on non-unit weights, where the guarantee does not hold.
func MaximalMatchingCover(g *graph.Graph) (*Solution, error) {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Weight(graph.Vertex(v)) != 1 {
			return nil, errors.New("baselines: maximal-matching cover requires unit weights")
		}
	}
	cover := make([]bool, g.NumVertices())
	duals := make([]float64, g.NumEdges())
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		if !cover[u] && !cover[v] {
			cover[u], cover[v] = true, true
			duals[e] = 1
		}
	}
	return &Solution{Cover: cover, Duals: duals}, nil
}
