package baselines

import (
	"context"

	"repro/internal/graph"
	"repro/internal/solver"
)

func init() {
	solver.Register(solver.Meta{
		Name:    "bye",
		Rank:    30,
		Tier:    solver.TierFast,
		Summary: "sequential Bar-Yehuda–Even 2-approximation (single pass, self-certifying)",
	}, solver.Func(solveBYE))
	solver.Register(solver.Meta{
		Name:    "greedy",
		Rank:    40,
		Tier:    solver.TierFast,
		Summary: "weighted greedy (no constant-factor guarantee, no certificate)",
	}, solver.Func(solveGreedy))
}

// The sequential baselines finish in one linear pass, so they only honor a
// cancellation observed at entry; there is no iterative loop to interrupt.

func solveBYE(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sol := BarYehudaEven(g)
	return &solver.Outcome{Cover: sol.Cover, Duals: sol.Duals}, nil
}

func solveGreedy(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sol := Greedy(g)
	return &solver.Outcome{Cover: sol.Cover}, nil
}
