package baselines

import (
	"context"

	"math"
	"testing"
	"testing/quick"

	"repro/internal/centralized"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestBYECoverAndCertificate(t *testing.T) {
	g := gen.ApplyWeights(gen.Gnp(3, 200, 0.05), 5, gen.UniformRange{Lo: 1, Hi: 10})
	sol := BarYehudaEven(g)
	cert, err := verify.NewCertificate(g, sol.Cover, sol.Duals)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Ratio() > 2+1e-9 {
		t.Fatalf("BYE certified ratio %v exceeds 2", cert.Ratio())
	}
}

func TestBYEAgainstExact(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%10)
		g := gen.ApplyWeights(gen.Gnp(seed, n, 0.3), seed+1, gen.UniformRange{Lo: 0.5, Hi: 4})
		sol := BarYehudaEven(g)
		if ok, _ := verify.IsCover(g, sol.Cover); !ok {
			return false
		}
		_, opt, err := exact.Solve(context.Background(), g)
		if err != nil {
			t.Log(err)
			return false
		}
		return verify.CoverWeight(g, sol.Cover) <= 2*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBYEStar(t *testing.T) {
	// Cheap center: BYE must take the center, not the leaves.
	b := graph.NewBuilder(11)
	b.SetWeight(0, 1)
	for v := 1; v < 11; v++ {
		b.SetWeight(graph.Vertex(v), 100)
		b.AddEdge(0, graph.Vertex(v))
	}
	g := b.MustBuild()
	sol := BarYehudaEven(g)
	if !sol.Cover[0] {
		t.Fatal("BYE skipped the cheap center")
	}
	if verify.CoverWeight(g, sol.Cover) > 2+1e-9 {
		t.Fatalf("BYE star weight %v", verify.CoverWeight(g, sol.Cover))
	}
}

func TestLocalPrimalDualRounds(t *testing.T) {
	eps := 0.1
	g := gen.ApplyWeights(gen.GnpAvgDegree(7, 1000, 32), 2, gen.PowerLaw{MaxWeight: 1e6})
	aware, err := LocalPrimalDual(context.Background(), g, eps, 1, centralized.InitDegreeAware)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := LocalPrimalDual(context.Background(), g, eps, 1, centralized.InitUniform)
	if err != nil {
		t.Fatal(err)
	}
	for name, sol := range map[string]*Solution{"aware": aware, "uniform": uniform} {
		cert, err := verify.NewCertificate(g, sol.Cover, sol.Duals)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cert.Ratio() > 2+10*eps+1e-9 {
			t.Fatalf("%s: ratio %v", name, cert.Ratio())
		}
		if sol.Rounds <= 0 {
			t.Fatalf("%s: no rounds", name)
		}
	}
	// The weight range of 1e6 must hurt the uniform baseline, not the
	// degree-aware one — this is the gap the paper's initialization closes.
	if uniform.Rounds <= aware.Rounds {
		t.Fatalf("uniform (%d rounds) should exceed degree-aware (%d)", uniform.Rounds, aware.Rounds)
	}
}

func TestGreedyCovers(t *testing.T) {
	g := gen.ApplyWeights(gen.PreferentialAttachment(4, 500, 4), 9, gen.Exponential{Mean: 2})
	sol := Greedy(g)
	if ok, e := verify.IsCover(g, sol.Cover); !ok {
		t.Fatalf("greedy left edge %d uncovered", e)
	}
	if sol.Duals != nil {
		t.Fatal("greedy should not claim a certificate")
	}
}

func TestGreedyPrefersCheapHub(t *testing.T) {
	b := graph.NewBuilder(6)
	b.SetWeight(0, 1)
	for v := 1; v < 6; v++ {
		b.SetWeight(graph.Vertex(v), 10)
		b.AddEdge(0, graph.Vertex(v))
	}
	sol := Greedy(b.MustBuild())
	if !sol.Cover[0] || sol.Cover[1] {
		t.Fatalf("greedy cover %v, want just the hub", sol.Cover)
	}
}

func TestMaximalMatchingCover(t *testing.T) {
	g := gen.Gnp(11, 300, 0.03)
	sol, err := MaximalMatchingCover(g)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := verify.NewCertificate(g, sol.Cover, sol.Duals)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Ratio() > 2+1e-9 {
		t.Fatalf("matching cover ratio %v", cert.Ratio())
	}
	// Cover size is exactly twice the matching size.
	if int(cert.Weight) != 2*int(cert.Bound) {
		t.Fatalf("cover %v vs matching %v", cert.Weight, cert.Bound)
	}
}

func TestMaximalMatchingRejectsWeights(t *testing.T) {
	g := gen.ApplyWeights(gen.Gnp(1, 20, 0.2), 1, gen.UniformRange{Lo: 1, Hi: 2})
	if _, err := MaximalMatchingCover(g); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

func TestBaselinesOnEdgeless(t *testing.T) {
	g := graph.NewBuilder(4).MustBuild()
	if w := verify.CoverWeight(g, BarYehudaEven(g).Cover); w != 0 {
		t.Fatalf("BYE edgeless weight %v", w)
	}
	if w := verify.CoverWeight(g, Greedy(g).Cover); w != 0 {
		t.Fatalf("greedy edgeless weight %v", w)
	}
	mm, err := MaximalMatchingCover(g)
	if err != nil {
		t.Fatal(err)
	}
	if w := verify.CoverWeight(g, mm.Cover); w != 0 {
		t.Fatalf("matching edgeless weight %v", w)
	}
}

func TestBYEDualFeasibleAlways(t *testing.T) {
	f := func(seed uint64) bool {
		n := 3 + int(seed%40)
		g := gen.ApplyWeights(gen.Gnp(seed, n, 0.2), seed+3, gen.Exponential{Mean: 1})
		sol := BarYehudaEven(g)
		if err := verify.DualFeasible(g, sol.Duals); err != nil {
			t.Log(err)
			return false
		}
		w := verify.CoverWeight(g, sol.Cover)
		return w <= 2*verify.DualValue(sol.Duals)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyVsBYEQuality(t *testing.T) {
	// Neither dominates universally, but both should be within a small
	// factor of the dual bound on benign random instances.
	g := gen.ApplyWeights(gen.GnpAvgDegree(21, 400, 12), 4, gen.UniformRange{Lo: 1, Hi: 6})
	bye := BarYehudaEven(g)
	greedy := Greedy(g)
	bound := verify.DualValue(bye.Duals)
	wb := verify.CoverWeight(g, bye.Cover)
	wg := verify.CoverWeight(g, greedy.Cover)
	if wb > 2*bound+1e-9 {
		t.Fatalf("BYE weight %v exceeds 2x bound %v", wb, bound)
	}
	if wg > 4*bound {
		t.Fatalf("greedy weight %v implausibly poor vs bound %v", wg, bound)
	}
	if math.IsInf(wg, 0) || math.IsNaN(wg) {
		t.Fatal("greedy weight not finite")
	}
}
