// Package verify provides the correctness checks shared by tests,
// experiments, and the CLI: cover validity, dual feasibility (the invariant
// of Observation 3.1), and certified approximation ratios via weak LP
// duality (Lemma 3.2).
package verify

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Tolerance is the absolute/relative slack allowed in floating-point
// feasibility comparisons. The algorithms accumulate at most a few thousand
// multiplies per dual variable, so 1e-9 relative slack is generous.
const Tolerance = 1e-9

// IsCover reports whether the vertex set marked true in cover touches every
// edge of g. If not, it returns one uncovered edge id as a witness.
func IsCover(g *graph.Graph, cover []bool) (ok bool, witness graph.EdgeID) {
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		if !cover[u] && !cover[v] {
			return false, graph.EdgeID(e)
		}
	}
	return true, -1
}

// CoverWeight returns the total weight of the vertices marked true.
func CoverWeight(g *graph.Graph, cover []bool) float64 {
	t := 0.0
	for v := 0; v < g.NumVertices(); v++ {
		if cover[v] {
			t += g.Weight(graph.Vertex(v))
		}
	}
	return t
}

// CoverSet converts a boolean cover mask into a vertex list.
func CoverSet(cover []bool) []graph.Vertex {
	var s []graph.Vertex
	for v, in := range cover {
		if in {
			s = append(s, graph.Vertex(v))
		}
	}
	return s
}

// DualFeasible checks the fractional-matching constraints of Observation
// 3.1: x_e >= 0 for all e and sum_{e∋v} x_e <= w(v) (with tolerance) for all
// v. It returns a descriptive error naming the first violated constraint.
func DualFeasible(g *graph.Graph, x []float64) error {
	if len(x) != g.NumEdges() {
		return fmt.Errorf("verify: dual vector length %d, want %d", len(x), g.NumEdges())
	}
	for e, xe := range x {
		if xe < -Tolerance || math.IsNaN(xe) || math.IsInf(xe, 0) {
			return fmt.Errorf("verify: x[%d] = %v violates nonnegativity", e, xe)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		sum := 0.0
		for _, e := range g.IncidentEdges(graph.Vertex(v)) {
			sum += x[e]
		}
		w := g.Weight(graph.Vertex(v))
		if sum > w*(1+Tolerance)+Tolerance {
			return fmt.Errorf("verify: vertex %d dual constraint violated: sum=%v > w=%v", v, sum, w)
		}
	}
	return nil
}

// DualValue returns the fractional-matching value sum_e x_e, which by weak
// duality (Lemma 3.2) lower-bounds the weight of every vertex cover.
func DualValue(x []float64) float64 {
	t := 0.0
	for _, xe := range x {
		t += xe
	}
	return t
}

// Certificate bundles a cover with a feasible dual solution, yielding a
// machine-checkable approximation guarantee with no reference to OPT:
// OPT >= DualValue, so Ratio = weight/DualValue >= weight/OPT.
type Certificate struct {
	Cover  []bool
	Duals  []float64
	Weight float64 // cover weight
	Bound  float64 // dual value: certified lower bound on OPT
}

// NewCertificate validates the pair and computes the certified ratio fields.
func NewCertificate(g *graph.Graph, cover []bool, x []float64) (*Certificate, error) {
	if len(cover) != g.NumVertices() {
		return nil, fmt.Errorf("verify: cover length %d, want %d", len(cover), g.NumVertices())
	}
	if ok, e := IsCover(g, cover); !ok {
		u, v := g.Edge(e)
		return nil, fmt.Errorf("verify: edge %d=(%d,%d) uncovered", e, u, v)
	}
	if err := DualFeasible(g, x); err != nil {
		return nil, err
	}
	return &Certificate{
		Cover:  cover,
		Duals:  x,
		Weight: CoverWeight(g, cover),
		Bound:  DualValue(x),
	}, nil
}

// NewLiftedCertificate validates (cover, x) against g exactly like
// NewCertificate and then adds forcedWeight — the weight of vertices a sound
// kernelization committed to the cover — to the certified lower bound. The
// addition is sound because each reduction rule preserves the optimum
// exactly: OPT(g) = forcedWeight + OPT(kernel) ≥ forcedWeight + Σx, where x
// is feasible on the kernel (and, re-indexed with zeros elsewhere, on g).
// With forcedWeight 0 this is NewCertificate bit for bit.
func NewLiftedCertificate(g *graph.Graph, cover []bool, x []float64, forcedWeight float64) (*Certificate, error) {
	c, err := NewCertificate(g, cover, x)
	if err != nil {
		return nil, err
	}
	if forcedWeight != 0 {
		c.Bound += forcedWeight
	}
	return c, nil
}

// Ratio returns the certified approximation ratio Weight/Bound. For an
// edgeless graph both are zero and the ratio is defined as 1.
func (c *Certificate) Ratio() float64 {
	if c.Bound == 0 {
		if c.Weight == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return c.Weight / c.Bound
}
