package verify

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
)

func triangle(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdgeList(3, [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIsCover(t *testing.T) {
	g := triangle(t)
	if ok, _ := IsCover(g, []bool{true, true, false}); !ok {
		t.Fatal("{0,1} should cover the triangle")
	}
	ok, e := IsCover(g, []bool{true, false, false})
	if ok {
		t.Fatal("{0} covers the triangle?")
	}
	u, v := g.Edge(e)
	if u != 1 || v != 2 {
		t.Fatalf("witness edge (%d,%d), want (1,2)", u, v)
	}
	if ok, _ := IsCover(g, []bool{false, false, false}); ok {
		t.Fatal("empty set covers the triangle?")
	}
}

func TestIsCoverEdgeless(t *testing.T) {
	g := graph.NewBuilder(4).MustBuild()
	if ok, _ := IsCover(g, make([]bool, 4)); !ok {
		t.Fatal("empty set should cover the edgeless graph")
	}
}

func TestCoverWeight(t *testing.T) {
	g := triangle(t)
	if w := CoverWeight(g, []bool{true, false, true}); w != 4 {
		t.Fatalf("cover weight %v, want 4", w)
	}
	if w := CoverWeight(g, []bool{false, false, false}); w != 0 {
		t.Fatalf("empty cover weight %v", w)
	}
}

func TestCoverSet(t *testing.T) {
	s := CoverSet([]bool{true, false, true, false})
	if len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Fatalf("CoverSet = %v", s)
	}
	if s := CoverSet(nil); s != nil {
		t.Fatal("CoverSet(nil) != nil")
	}
}

func TestDualFeasible(t *testing.T) {
	g := triangle(t)
	// Feasible: each vertex's incident sum within its weight.
	x := []float64{0.4, 0.5, 0.5} // edges (0,1), (0,2), (1,2)
	if err := DualFeasible(g, x); err != nil {
		t.Fatalf("feasible dual rejected: %v", err)
	}
	// Vertex 0 has weight 1; incident edges (0,1) and (0,2).
	bad := []float64{0.7, 0.7, 0}
	if err := DualFeasible(g, bad); err == nil {
		t.Fatal("infeasible dual accepted")
	} else if !strings.Contains(err.Error(), "vertex 0") {
		t.Fatalf("error does not name vertex 0: %v", err)
	}
	if err := DualFeasible(g, []float64{-0.1, 0, 0}); err == nil {
		t.Fatal("negative dual accepted")
	}
	if err := DualFeasible(g, []float64{math.NaN(), 0, 0}); err == nil {
		t.Fatal("NaN dual accepted")
	}
	if err := DualFeasible(g, []float64{0, 0}); err == nil {
		t.Fatal("wrong-length dual accepted")
	}
}

func TestDualFeasibleTolerance(t *testing.T) {
	g := triangle(t)
	// Just over the constraint by far less than tolerance: accepted.
	x := []float64{0.5, 0.5 + 1e-12, 0}
	if err := DualFeasible(g, x); err != nil {
		t.Fatalf("within-tolerance dual rejected: %v", err)
	}
}

func TestDualValue(t *testing.T) {
	if v := DualValue([]float64{0.5, 1.5, 2}); v != 4 {
		t.Fatalf("DualValue = %v", v)
	}
	if v := DualValue(nil); v != 0 {
		t.Fatalf("DualValue(nil) = %v", v)
	}
}

func TestCertificate(t *testing.T) {
	g := triangle(t)
	cover := []bool{true, true, false}
	x := []float64{0.4, 0.5, 0.5}
	c, err := NewCertificate(g, cover, x)
	if err != nil {
		t.Fatal(err)
	}
	if c.Weight != 3 {
		t.Fatalf("certificate weight %v, want 3", c.Weight)
	}
	if c.Bound != 1.4 {
		t.Fatalf("certificate bound %v, want 1.4", c.Bound)
	}
	if r := c.Ratio(); math.Abs(r-3/1.4) > 1e-12 {
		t.Fatalf("ratio %v", r)
	}
}

func TestCertificateRejectsNonCover(t *testing.T) {
	g := triangle(t)
	if _, err := NewCertificate(g, []bool{true, false, false}, []float64{0, 0, 0}); err == nil {
		t.Fatal("non-cover accepted")
	}
	if _, err := NewCertificate(g, []bool{true}, []float64{0, 0, 0}); err == nil {
		t.Fatal("wrong-length cover accepted")
	}
	if _, err := NewCertificate(g, []bool{true, true, true}, []float64{9, 9, 9}); err == nil {
		t.Fatal("infeasible dual accepted")
	}
}

func TestCertificateEdgelessRatio(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	c, err := NewCertificate(g, make([]bool, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratio() != 1 {
		t.Fatalf("edgeless ratio %v, want 1", c.Ratio())
	}
}

func TestCertificateZeroBoundNonzeroWeight(t *testing.T) {
	g := graph.NewBuilder(2).MustBuild()
	c, err := NewCertificate(g, []bool{true, false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c.Ratio(), 1) {
		t.Fatalf("ratio %v, want +Inf", c.Ratio())
	}
}
