// Package matching implements maximal-matching algorithms. Matching is the
// LP dual of vertex cover and the paper frames its contribution inside the
// MPC matching/vertex-cover literature (Section 1.2): the unweighted
// 2-approximate vertex cover baseline is "take both endpoints of a maximal
// matching", and the distributed maximal-matching algorithm of Israeli–Itai
// [II86] is the O(log n)-round building block the pre-round-compression
// algorithms rest on.
//
// Two implementations are provided: a sequential greedy pass (reference,
// used by tests and the exact solver's bounds) and a randomized
// Israeli–Itai-style distributed algorithm executed on the MPC substrate
// with one vertex-machine per vertex, whose round count is O(log n) w.h.p.
package matching

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
)

// Matching is a set of pairwise non-adjacent edges.
type Matching struct {
	// Edges flags the matched edge ids.
	Edges []bool
	// Mate[v] is the matched partner of v, or -1.
	Mate []graph.Vertex
	// Size is the number of matched edges.
	Size int
}

// Greedy computes a maximal matching by a single edge scan.
func Greedy(g *graph.Graph) *Matching {
	m := newMatching(g)
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		if m.Mate[u] < 0 && m.Mate[v] < 0 {
			m.add(g, graph.EdgeID(e))
		}
	}
	return m
}

func newMatching(g *graph.Graph) *Matching {
	m := &Matching{
		Edges: make([]bool, g.NumEdges()),
		Mate:  make([]graph.Vertex, g.NumVertices()),
	}
	for v := range m.Mate {
		m.Mate[v] = -1
	}
	return m
}

func (m *Matching) add(g *graph.Graph, e graph.EdgeID) {
	u, v := g.Edge(e)
	m.Edges[e] = true
	m.Mate[u] = v
	m.Mate[v] = u
	m.Size++
}

// Verify checks the matching and (optionally) its maximality.
func (m *Matching) Verify(g *graph.Graph, requireMaximal bool) error {
	count := 0
	deg := make([]int, g.NumVertices())
	for e, in := range m.Edges {
		if !in {
			continue
		}
		count++
		u, v := g.Edge(graph.EdgeID(e))
		deg[u]++
		deg[v]++
		if m.Mate[u] != v || m.Mate[v] != u {
			return fmt.Errorf("matching: mate pointers broken at edge %d", e)
		}
	}
	if count != m.Size {
		return fmt.Errorf("matching: size %d, flagged %d", m.Size, count)
	}
	for v, d := range deg {
		if d > 1 {
			return fmt.Errorf("matching: vertex %d matched %d times", v, d)
		}
	}
	if requireMaximal {
		ep := g.EdgeEndpoints()
		for e := 0; e < g.NumEdges(); e++ {
			u, v := ep[2*e], ep[2*e+1]
			if m.Mate[u] < 0 && m.Mate[v] < 0 {
				return fmt.Errorf("matching: edge %d could be added (not maximal)", e)
			}
		}
	}
	return nil
}

// DistributedResult carries the matching plus the substrate's accounting.
type DistributedResult struct {
	*Matching
	Rounds  int
	Metrics mpc.Metrics
}

// Distributed computes a maximal matching with an Israeli–Itai-style
// randomized proposal protocol on the MPC substrate, one machine per
// vertex, O(1) words per edge per round:
//
//	per round: every unmatched vertex proposes to one random unmatched
//	neighbor; a vertex receiving proposals accepts one (the smallest
//	sender id among them, if it proposed nobody better); mutual agreement
//	matches the pair. In expectation a constant fraction of edges is
//	removed per round, giving O(log n) rounds w.h.p.
//
// The context is polled once per proposal round; cancellation surfaces as
// ctx.Err() without waiting out the remaining rounds.
func Distributed(ctx context.Context, g *graph.Graph, seed uint64) (*DistributedResult, error) {
	n := g.NumVertices()
	m := newMatching(g)
	if n == 0 || g.NumEdges() == 0 {
		return &DistributedResult{Matching: m}, nil
	}
	budget := int64(8*(g.MaxDegree()+4) + 64)
	cluster, err := mpc.NewCluster(mpc.Config{Machines: n, MemoryWords: budget})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	matched := make([]bool, n)
	// proposals[v] holds, during a round pair, the neighbor v proposed to.
	proposals := make([]graph.Vertex, n)
	remaining := g.NumEdges()
	maxRounds := 40 + 8*bitsLen(n)
	round := 0
	for remaining > 0 && round < maxRounds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Each round, unmatched vertices flip a coin: heads propose, tails
		// accept. The split is what keeps the round's matched pairs
		// disjoint — without it a vertex could be confirmed as a proposer
		// and simultaneously accept a different neighbor's proposal.
		heads := func(v graph.Vertex) bool {
			return rng.Bernoulli(seed, 0.5, 'C', uint64(round), uint64(v))
		}
		// Proposal round: every unmatched heads-vertex with an unmatched
		// neighbor sends one proposal (1 word) to a random such neighbor.
		err := cluster.Round(func(mach *mpc.Machine) error {
			v := graph.Vertex(mach.ID())
			proposals[v] = -1
			if matched[v] || !heads(v) {
				return nil
			}
			// Pick a uniform unmatched neighbor without materializing the
			// candidate list: count, draw an index, then walk to it.
			candidates := 0
			for _, u := range g.Neighbors(v) {
				if !matched[u] {
					candidates++
				}
			}
			if candidates == 0 {
				return nil
			}
			k := rng.ChooseAt(seed, candidates, 'M', uint64(round), uint64(v))
			pick := graph.Vertex(-1)
			for _, u := range g.Neighbors(v) {
				if !matched[u] {
					if k == 0 {
						pick = u
						break
					}
					k--
				}
			}
			proposals[v] = pick
			return mach.Send(int(pick), []uint64{uint64(uint32(v))})
		})
		if err != nil {
			return nil, err
		}
		// Acceptance round: each unmatched tails-vertex accepts its
		// smallest proposer and tells it so (1 word).
		accepted := make([]graph.Vertex, n)
		err = cluster.Round(func(mach *mpc.Machine) error {
			u := graph.Vertex(mach.ID())
			accepted[u] = -1
			if matched[u] || heads(u) {
				return nil
			}
			best := graph.Vertex(-1)
			for _, msg := range mach.Inbox() {
				from := graph.Vertex(uint32(msg.Data[0]))
				if best < 0 || from < best {
					best = from
				}
			}
			if best < 0 {
				return nil
			}
			accepted[u] = best
			return mach.Send(int(best), []uint64{uint64(uint32(u))})
		})
		if err != nil {
			return nil, err
		}
		// Match confirmation round: proposers that received an acceptance
		// from the vertex they proposed to are matched. Each machine only
		// writes its own confirmation slot; the driver applies the pairs
		// after the barrier (u accepted exactly one proposer, so pairs are
		// disjoint by construction).
		confirmed := make([]graph.Vertex, n)
		for i := range confirmed {
			confirmed[i] = -1
		}
		err = cluster.Round(func(mach *mpc.Machine) error {
			v := graph.Vertex(mach.ID())
			for _, msg := range mach.Inbox() {
				from := graph.Vertex(uint32(msg.Data[0]))
				if proposals[v] == from && accepted[from] == v {
					confirmed[v] = from
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			u := confirmed[v]
			if u < 0 {
				continue
			}
			matched[v] = true
			matched[u] = true
			m.add(g, g.EdgeBetween(graph.Vertex(v), u))
		}
		// Driver bookkeeping: count remaining active edges (termination is
		// a constant-round aggregation in a real deployment; accounted).
		remaining = 0
		ep := g.EdgeEndpoints()
		for e := 0; e < g.NumEdges(); e++ {
			u, v := ep[2*e], ep[2*e+1]
			if !matched[u] && !matched[v] {
				remaining++
			}
		}
		round++
	}
	if remaining > 0 {
		return nil, fmt.Errorf("matching: %d active edges after %d rounds", remaining, round)
	}
	cluster.AccountRounds(1) // termination detection
	return &DistributedResult{
		Matching: m,
		Rounds:   cluster.Metrics().Rounds,
		Metrics:  cluster.Metrics(),
	}, nil
}

func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// CoverFromMatching returns the classic 2-approximate unweighted vertex
// cover: both endpoints of every matched edge.
func CoverFromMatching(g *graph.Graph, m *Matching) []bool {
	cover := make([]bool, g.NumVertices())
	for e, in := range m.Edges {
		if in {
			u, v := g.Edge(graph.EdgeID(e))
			cover[u], cover[v] = true, true
		}
	}
	return cover
}
