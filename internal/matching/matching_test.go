package matching

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestGreedyMaximal(t *testing.T) {
	g := gen.Gnp(3, 300, 0.03)
	m := Greedy(g)
	if err := m.Verify(g, true); err != nil {
		t.Fatal(err)
	}
	if m.Size == 0 && g.NumEdges() > 0 {
		t.Fatal("empty matching on a graph with edges")
	}
}

func TestGreedyPath(t *testing.T) {
	// Path 0-1-2-3: greedy (edge order (0,1),(1,2),(2,3)) takes (0,1),(2,3).
	g := gen.Path(4)
	m := Greedy(g)
	if m.Size != 2 {
		t.Fatalf("path matching size %d, want 2", m.Size)
	}
	if m.Mate[0] != 1 || m.Mate[2] != 3 {
		t.Fatalf("mates %v", m.Mate)
	}
}

func TestDistributedMaximal(t *testing.T) {
	g := gen.Gnp(5, 400, 0.02)
	res, err := Distributed(context.Background(), g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(g, true); err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestDistributedRoundsLogarithmic(t *testing.T) {
	// O(log n) w.h.p.: allow a generous constant.
	for _, n := range []int{100, 400, 1600} {
		g := gen.GnpAvgDegree(9, n, 8)
		res, err := Distributed(context.Background(), g, 3)
		if err != nil {
			t.Fatal(err)
		}
		bound := 12 * (1 + int(math.Log2(float64(n))))
		if res.Rounds > bound {
			t.Fatalf("n=%d: %d rounds exceed %d", n, res.Rounds, bound)
		}
	}
}

func TestDistributedDeterministic(t *testing.T) {
	g := gen.GnpAvgDegree(11, 200, 6)
	a, err := Distributed(context.Background(), g, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Distributed(context.Background(), g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != b.Size {
		t.Fatal("same seed, different matching sizes")
	}
	for e := range a.Edges {
		if a.Edges[e] != b.Edges[e] {
			t.Fatal("same seed, different matchings")
		}
	}
}

func TestDistributedDegenerate(t *testing.T) {
	if _, err := Distributed(context.Background(), graph.NewBuilder(0).MustBuild(), 1); err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(context.Background(), graph.NewBuilder(5).MustBuild(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 0 {
		t.Fatal("matched edges in an edgeless graph")
	}
	single, _ := graph.FromEdgeList(2, [][2]graph.Vertex{{0, 1}}, nil)
	res, err = Distributed(context.Background(), single, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 1 {
		t.Fatalf("single edge matching size %d", res.Size)
	}
}

func TestCoverFromMatching(t *testing.T) {
	g := gen.Gnp(13, 200, 0.05)
	m := Greedy(g)
	cover := CoverFromMatching(g, m)
	if ok, e := verify.IsCover(g, cover); !ok {
		t.Fatalf("matching cover misses edge %d", e)
	}
	// Unweighted 2-approximation: |C| = 2·|M| and |M| ≤ OPT.
	size := 0
	for _, in := range cover {
		if in {
			size++
		}
	}
	if size != 2*m.Size {
		t.Fatalf("cover size %d, want %d", size, 2*m.Size)
	}
}

func TestMatchingQuickProperties(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%100)
		g := gen.Gnp(seed, n, 0.1)
		greedy := Greedy(g)
		if err := greedy.Verify(g, true); err != nil {
			t.Log(err)
			return false
		}
		dist, err := Distributed(context.Background(), g, seed+1)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := dist.Verify(g, true); err != nil {
			t.Log(err)
			return false
		}
		// Any two maximal matchings are within a factor 2 of each other.
		if greedy.Size > 2*dist.Size || dist.Size > 2*greedy.Size {
			t.Logf("sizes %d vs %d", greedy.Size, dist.Size)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesBadMatchings(t *testing.T) {
	g := gen.Path(4)
	m := Greedy(g)
	// Break mate pointers.
	bad := &Matching{Edges: append([]bool(nil), m.Edges...), Mate: append([]graph.Vertex(nil), m.Mate...), Size: m.Size}
	bad.Mate[0] = 2
	if err := bad.Verify(g, false); err == nil {
		t.Fatal("broken mates accepted")
	}
	// Non-maximal.
	empty := newMatching(g)
	if err := empty.Verify(g, true); err == nil {
		t.Fatal("empty matching accepted as maximal")
	}
	if err := empty.Verify(g, false); err != nil {
		t.Fatal("empty matching rejected as a matching")
	}
	// Adjacent matched edges.
	adj := newMatching(g)
	adj.add(g, g.EdgeBetween(0, 1))
	adj.add(g, g.EdgeBetween(1, 2))
	if err := adj.Verify(g, false); err == nil {
		t.Fatal("adjacent matched edges accepted")
	}
}
