// Package mpcalg implements the standard O(1)-round MPC primitives the
// paper's phase structure presumes (Goodrich–Sitchinava–Zhang [GSZ11]):
// tree aggregation, broadcast, and sample sort. Algorithm 2 uses constant-
// round aggregations to compute the average residual degree and to attach
// per-vertex data to edges; these are their mechanically-accounted
// realizations on the cluster substrate — every message crosses the
// simulated network and is charged against the send/receive budgets.
//
// Round counts (M machines, fan-in/out f):
//
//	Aggregate:  ⌈log_f M⌉ send levels + 1 ingest round
//	Broadcast:  ⌈log_f M⌉ send levels + 1 ingest round
//	SampleSort: 4 rounds (sample, splitters, route, final ingest)
//
// With f = Θ(M^δ) — machines have memory for M^δ messages — the depths are
// O(1/δ) = O(1), which is the constant the paper's "each phase takes O(1)
// MPC rounds" hides.
package mpcalg

import (
	"fmt"
	"sort"

	"repro/internal/mpc"
)

// Op is an associative, commutative combiner over word values.
type Op func(a, b uint64) uint64

// Sum combines by addition.
func Sum(a, b uint64) uint64 { return a + b }

// Max combines by maximum.
func Max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Aggregate combines one word per machine up a fan-in tree to machine 0 and
// returns the total. locals must have one entry per machine. fanIn ≥ 2.
func Aggregate(c *mpc.Cluster, locals []uint64, op Op, fanIn int) (uint64, error) {
	m := c.Machines()
	if len(locals) != m {
		return 0, fmt.Errorf("mpcalg: %d locals for %d machines", len(locals), m)
	}
	if fanIn < 2 {
		return 0, fmt.Errorf("mpcalg: fan-in %d, want >= 2", fanIn)
	}
	cur := append([]uint64(nil), locals...)
	stride := 1
	//lint:allow ctxloop stride multiplies by fanIn >= 2 each level, so <=log2(machines) trips; callers poll ctx between phases
	for stride < m {
		next := stride * fanIn
		s, nx := stride, next
		err := c.Round(func(mach *mpc.Machine) error {
			id := mach.ID()
			// Combine what the previous level delivered.
			for _, msg := range mach.Inbox() {
				cur[id] = op(cur[id], msg.Data[0])
			}
			// Non-leaders of the new, coarser level report to their leader.
			if id%s == 0 && id%nx != 0 {
				return mach.Send(id-id%nx, []uint64{cur[id]})
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		stride = next
	}
	// Final ingest at the root.
	err := c.Round(func(mach *mpc.Machine) error {
		if mach.ID() != 0 {
			return nil
		}
		for _, msg := range mach.Inbox() {
			cur[0] = op(cur[0], msg.Data[0])
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return cur[0], nil
}

// Broadcast distributes machine 0's value down a fan-out tree; the returned
// slice holds every machine's received copy. fanOut ≥ 2.
func Broadcast(c *mpc.Cluster, value uint64, fanOut int) ([]uint64, error) {
	m := c.Machines()
	if fanOut < 2 {
		return nil, fmt.Errorf("mpcalg: fan-out %d, want >= 2", fanOut)
	}
	got := make([]bool, m)
	out := make([]uint64, m)
	got[0] = true
	out[0] = value
	// Level strides from coarse to fine, mirroring Aggregate in reverse.
	var strides []int
	for s := 1; s < m; s *= fanOut {
		strides = append(strides, s)
	}
	for i := len(strides) - 1; i >= 0; i-- {
		s := strides[i]
		nx := s * fanOut
		err := c.Round(func(mach *mpc.Machine) error {
			id := mach.ID()
			for _, msg := range mach.Inbox() {
				out[id] = msg.Data[0]
				got[id] = true
			}
			if got[id] && id%nx == 0 {
				// Send to the children of this level.
				for child := id + s; child < id+nx && child < m; child += s {
					if err := mach.Send(child, []uint64{out[id]}); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Final ingest for the deepest level.
	err := c.Round(func(mach *mpc.Machine) error {
		id := mach.ID()
		for _, msg := range mach.Inbox() {
			out[id] = msg.Data[0]
			got[id] = true
		}
		if !got[id] {
			return fmt.Errorf("mpcalg: machine %d never received the broadcast", id)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SampleSort globally sorts word keys spread across machines: on return,
// machine i's slice is sorted and every key on machine i precedes every key
// on machine i+1 (TeraSort-style range partitioning by sampled splitters).
// samplesPerMachine controls splitter quality (≥ 1).
func SampleSort(c *mpc.Cluster, locals [][]uint64, samplesPerMachine int) ([][]uint64, error) {
	m := c.Machines()
	if len(locals) != m {
		return nil, fmt.Errorf("mpcalg: %d locals for %d machines", len(locals), m)
	}
	if samplesPerMachine < 1 {
		return nil, fmt.Errorf("mpcalg: samplesPerMachine %d, want >= 1", samplesPerMachine)
	}
	// Work on copies; locals are caller-owned.
	data := make([][]uint64, m)
	for i := range locals {
		data[i] = append([]uint64(nil), locals[i]...)
		sort.Slice(data[i], func(a, b int) bool { return data[i][a] < data[i][b] })
	}

	// Round 1: evenly spaced local samples to machine 0.
	err := c.Round(func(mach *mpc.Machine) error {
		id := mach.ID()
		n := len(data[id])
		if n == 0 {
			return nil
		}
		samples := make([]uint64, 0, samplesPerMachine)
		for k := 1; k <= samplesPerMachine; k++ {
			samples = append(samples, data[id][(n*k-1)/(samplesPerMachine+1)])
		}
		return mach.Send(0, samples)
	})
	if err != nil {
		return nil, err
	}

	// Round 2: machine 0 picks M−1 splitters and sends them to everyone.
	splitters := make([]uint64, 0, m-1)
	err = c.Round(func(mach *mpc.Machine) error {
		if mach.ID() != 0 {
			return nil
		}
		var all []uint64
		for _, msg := range mach.Inbox() {
			all = append(all, msg.Data...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		for k := 1; k < m; k++ {
			if len(all) == 0 {
				splitters = append(splitters, ^uint64(0))
				continue
			}
			splitters = append(splitters, all[(len(all)*k-1)/m])
		}
		// Send copies the payload into the arena, so one splitter buffer
		// serves every destination.
		for dst := 0; dst < m; dst++ {
			if err := mach.Send(dst, splitters); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Round 3: route each key to its range owner.
	err = c.Round(func(mach *mpc.Machine) error {
		id := mach.ID()
		var spl []uint64
		for _, msg := range mach.Inbox() {
			spl = msg.Data
		}
		if spl == nil {
			return fmt.Errorf("mpcalg: machine %d missing splitters", id)
		}
		buckets := make([][]uint64, m)
		for _, key := range data[id] {
			b := sort.Search(len(spl), func(i int) bool { return key <= spl[i] })
			buckets[b] = append(buckets[b], key)
		}
		for dst, bucket := range buckets {
			if len(bucket) > 0 {
				if err := mach.Send(dst, bucket); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Round 4: ingest and final local sort.
	result := make([][]uint64, m)
	err = c.Round(func(mach *mpc.Machine) error {
		id := mach.ID()
		var mine []uint64
		for _, msg := range mach.Inbox() {
			mine = append(mine, msg.Data...)
		}
		if err := mach.Charge(int64(len(mine))); err != nil {
			return err
		}
		sort.Slice(mine, func(a, b int) bool { return mine[a] < mine[b] })
		result[id] = mine
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}
