package mpcalg

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mpc"
	"repro/internal/rng"
)

func cluster(t *testing.T, machines int, memory int64) *mpc.Cluster {
	t.Helper()
	c, err := mpc.NewCluster(mpc.Config{Machines: machines, MemoryWords: memory})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAggregateSum(t *testing.T) {
	for _, m := range []int{1, 2, 3, 7, 16, 33} {
		c := cluster(t, m, 1<<20)
		locals := make([]uint64, m)
		want := uint64(0)
		for i := range locals {
			locals[i] = uint64(i * i)
			want += locals[i]
		}
		got, err := Aggregate(c, locals, Sum, 4)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if got != want {
			t.Fatalf("m=%d: sum %d, want %d", m, got, want)
		}
	}
}

func TestAggregateMax(t *testing.T) {
	c := cluster(t, 10, 1<<20)
	locals := []uint64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	got, err := Aggregate(c, locals, Max, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("max %d, want 9", got)
	}
}

func TestAggregateRoundCount(t *testing.T) {
	// With fan-in f, ⌈log_f M⌉ send levels + 1 ingest.
	cases := []struct {
		machines, fanIn, wantRounds int
	}{
		{16, 16, 2}, // one level + ingest
		{16, 4, 3},  // two levels + ingest
		{16, 2, 5},  // four levels + ingest
		{1, 2, 1},   // no levels, just the ingest round
	}
	for _, tc := range cases {
		c := cluster(t, tc.machines, 1<<20)
		if _, err := Aggregate(c, make([]uint64, tc.machines), Sum, tc.fanIn); err != nil {
			t.Fatal(err)
		}
		if got := c.Metrics().Rounds; got != tc.wantRounds {
			t.Errorf("M=%d f=%d: %d rounds, want %d", tc.machines, tc.fanIn, got, tc.wantRounds)
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	c := cluster(t, 4, 1<<20)
	if _, err := Aggregate(c, make([]uint64, 3), Sum, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Aggregate(c, make([]uint64, 4), Sum, 1); err == nil {
		t.Fatal("fan-in 1 accepted")
	}
}

func TestBroadcast(t *testing.T) {
	for _, m := range []int{1, 2, 5, 16, 31} {
		for _, fan := range []int{2, 3, 8} {
			c := cluster(t, m, 1<<20)
			out, err := Broadcast(c, 0xDEADBEEF, fan)
			if err != nil {
				t.Fatalf("m=%d fan=%d: %v", m, fan, err)
			}
			for i, v := range out {
				if v != 0xDEADBEEF {
					t.Fatalf("m=%d fan=%d: machine %d got %x", m, fan, i, v)
				}
			}
		}
	}
}

func TestBroadcastValidation(t *testing.T) {
	c := cluster(t, 4, 1<<20)
	if _, err := Broadcast(c, 1, 1); err == nil {
		t.Fatal("fan-out 1 accepted")
	}
}

func TestSampleSortBasic(t *testing.T) {
	const m = 8
	c := cluster(t, m, 1<<20)
	src := rng.New(5)
	locals := make([][]uint64, m)
	var all []uint64
	for i := range locals {
		n := 50 + src.Intn(100)
		for j := 0; j < n; j++ {
			v := src.Uint64() % 10000
			locals[i] = append(locals[i], v)
			all = append(all, v)
		}
	}
	sorted, err := SampleSort(c, locals, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Flattened result is globally sorted and a permutation of the input.
	var flat []uint64
	for i, part := range sorted {
		for j := 1; j < len(part); j++ {
			if part[j-1] > part[j] {
				t.Fatalf("machine %d not locally sorted", i)
			}
		}
		if i > 0 && len(part) > 0 {
			for k := i - 1; k >= 0; k-- {
				if len(sorted[k]) > 0 {
					if sorted[k][len(sorted[k])-1] > part[0] {
						t.Fatalf("machine boundary %d/%d out of order", k, i)
					}
					break
				}
			}
		}
		flat = append(flat, part...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	if len(flat) != len(all) {
		t.Fatalf("lost keys: %d vs %d", len(flat), len(all))
	}
	for i := range all {
		if flat[i] != all[i] {
			t.Fatalf("not a permutation at %d", i)
		}
	}
}

func TestSampleSortRounds(t *testing.T) {
	c := cluster(t, 4, 1<<20)
	locals := [][]uint64{{3, 1}, {2}, {9, 7, 5}, {}}
	if _, err := SampleSort(c, locals, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Rounds; got != 4 {
		t.Fatalf("%d rounds, want 4", got)
	}
}

func TestSampleSortEmptyAndSkewed(t *testing.T) {
	c := cluster(t, 4, 1<<20)
	// All data on one machine, duplicates everywhere.
	locals := [][]uint64{{5, 5, 5, 5, 1, 1, 9, 9, 3}, {}, {}, {}}
	sorted, err := SampleSort(c, locals, 3)
	if err != nil {
		t.Fatal(err)
	}
	var flat []uint64
	for _, p := range sorted {
		flat = append(flat, p...)
	}
	if len(flat) != 9 {
		t.Fatalf("lost keys: %d", len(flat))
	}
	for i := 1; i < len(flat); i++ {
		if flat[i-1] > flat[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSampleSortDoesNotMutateInput(t *testing.T) {
	c := cluster(t, 2, 1<<20)
	locals := [][]uint64{{3, 1, 2}, {9, 0}}
	if _, err := SampleSort(c, locals, 2); err != nil {
		t.Fatal(err)
	}
	if locals[0][0] != 3 || locals[1][1] != 0 {
		t.Fatal("input mutated")
	}
}

func TestSampleSortValidation(t *testing.T) {
	c := cluster(t, 2, 1<<20)
	if _, err := SampleSort(c, make([][]uint64, 1), 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SampleSort(c, make([][]uint64, 2), 0); err == nil {
		t.Fatal("zero samples accepted")
	}
}

// Property: Aggregate(Sum) equals the sequential sum for arbitrary inputs.
func TestAggregateQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			vals = []uint64{0}
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		c, err := mpc.NewCluster(mpc.Config{Machines: len(vals), MemoryWords: 1 << 20})
		if err != nil {
			return false
		}
		want := uint64(0)
		for _, v := range vals {
			want += v
		}
		got, err := Aggregate(c, vals, Sum, 3)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
