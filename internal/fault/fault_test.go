package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledHitIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() true with no injector")
	}
	for _, p := range Points() {
		if err := Hit(p); err != nil {
			t.Fatalf("Hit(%s) with no injector: %v", p, err)
		}
	}
}

func TestEveryAfterLimit(t *testing.T) {
	in := NewInjector(0, Rule{Point: StoreWrite, Every: 2, After: 3, Limit: 2})
	restore := Enable(in)
	defer restore()

	var errs []int
	for i := 1; i <= 12; i++ {
		if err := Hit(StoreWrite); err != nil {
			errs = append(errs, i)
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v not ErrInjected", i, err)
			}
		}
	}
	// After=3 skips hits 1-3; Every=2 trips hits 5, 7, ... (offsets 2, 4, …
	// past After); Limit=2 stops after two trips.
	want := []int{5, 7}
	if len(errs) != len(want) || errs[0] != want[0] || errs[1] != want[1] {
		t.Fatalf("tripped on hits %v, want %v", errs, want)
	}
	if in.Hits(StoreWrite) != 12 || in.Trips(StoreWrite) != 2 {
		t.Fatalf("counters: hits=%d trips=%d, want 12/2", in.Hits(StoreWrite), in.Trips(StoreWrite))
	}
}

// TestSeededScheduleDeterministic pins the replay property: the kth hit of a
// point gets the same trip decision for a given seed, and a different seed
// gives a different schedule.
func TestSeededScheduleDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		in := NewInjector(seed, Rule{Point: WorkerDequeue, Prob: 0.4})
		restore := Enable(in)
		defer restore()
		var b strings.Builder
		for i := 0; i < 200; i++ {
			if Hit(WorkerDequeue) != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	p1a, p1b, p2 := pattern(1), pattern(1), pattern(2)
	if p1a != p1b {
		t.Fatalf("same seed, different schedules:\n%s\n%s", p1a, p1b)
	}
	if p1a == p2 {
		t.Fatal("different seeds produced identical schedules")
	}
	trips := strings.Count(p1a, "x")
	if trips < 40 || trips > 160 {
		t.Fatalf("prob 0.4 tripped %d/200 hits — implausible", trips)
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	restore := Enable(NewInjector(0, Rule{Point: StoreRead, Every: 1, Err: sentinel}))
	defer restore()
	if err := Hit(StoreRead); !errors.Is(err, sentinel) {
		t.Fatalf("custom error not returned: %v", err)
	}
}

func TestDelayAction(t *testing.T) {
	restore := Enable(NewInjector(0, Rule{Point: SolverStep, Every: 1, Action: ActDelay, Delay: 20 * time.Millisecond}))
	defer restore()
	start := time.Now()
	if err := Hit(SolverStep); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay rule stalled only %v", d)
	}
}

func TestPanicAction(t *testing.T) {
	restore := Enable(NewInjector(0, Rule{Point: ResponseEncode, Every: 1, Action: ActPanic}))
	defer restore()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic rule did not panic")
		}
		if msg, ok := v.(string); !ok || !strings.Contains(msg, string(ResponseEncode)) {
			t.Fatalf("panic payload %v does not name the point", v)
		}
	}()
	Hit(ResponseEncode)
}

func TestEnableRestoresPrevious(t *testing.T) {
	outer := NewInjector(0, Rule{Point: StoreWrite, Every: 1})
	restoreOuter := Enable(outer)
	defer restoreOuter()
	restoreInner := Enable(NewInjector(0)) // no rules: everything passes
	if err := Hit(StoreWrite); err != nil {
		t.Fatalf("inner injector has no rules, got %v", err)
	}
	restoreInner()
	if err := Hit(StoreWrite); err == nil {
		t.Fatal("outer injector not restored")
	}
}
