// Package fault provides deterministic fault injection for robustness
// testing. Production code marks interesting failure sites with named
// injection points (fault.Hit); a test arms an Injector — a seeded schedule
// of rules — and every hit on an armed point may trip an error, a latency
// stall, or a panic. With no injector enabled, Hit is a single atomic load
// returning nil, so the points cost nothing in production.
//
// Determinism: each rule's trip decision for the kth hit of a point is a
// pure function of (schedule seed, point name, k). Replaying a workload
// against the same seed trips the same hits, whatever the goroutine
// interleaving — the per-point decision sequence is bit-deterministic,
// which is what lets the chaos suite in internal/serve replay failures.
package fault

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Point names one injection site in production code. Points are arranged by
// subsystem: the serve tier's durable store, worker pool, solver observer
// path, and HTTP response encoder.
type Point string

// The registered injection points. A Hit on a point not named in the active
// injector's rules is a no-op.
const (
	// StoreWrite fires inside GraphStore's durable Add, before the graph
	// bytes are written and fsynced to the temp file; a trip exercises the
	// upload 503 path — no acknowledgment, nothing stored, no litter.
	StoreWrite Point = "store.write"
	// StoreRead fires when the store loads a graph file from disk (the
	// startup recovery scan); a trip exercises the quarantine path.
	StoreRead Point = "store.read"
	// StoreRename fires after the temp file is durable, before the atomic
	// rename publishes it — the window a crash leaves an orphaned temp; a
	// trip exercises that crash window and the clean retry after it.
	StoreRename Point = "store.rename"
	// WorkerDequeue fires when a serve worker picks a request off the queue,
	// before any solve work starts; a trip exercises the typed retryable
	// failure path ahead of any solver run.
	WorkerDequeue Point = "worker.dequeue"
	// SolverStep fires on every observer event inside a running solve. Error
	// rules at this point surface as panics (the observer callback has no
	// error channel), exercising the engine's per-solve panic isolation.
	SolverStep Point = "solver.step"
	// ResponseEncode fires before an HTTP response body is encoded; a trip
	// replaces the payload with a clean, typed retryable error — never a
	// torn body.
	ResponseEncode Point = "response.encode"
)

// Points returns every named injection point, for schedules that arm
// "everything".
func Points() []Point {
	return []Point{StoreWrite, StoreRead, StoreRename, WorkerDequeue, SolverStep, ResponseEncode}
}

// ErrInjected is the base error returned by tripped ActError rules; callers
// classify injected failures with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Action selects what a tripped rule does to the hitting goroutine.
type Action uint8

// The rule actions.
const (
	// ActError makes Hit return an error wrapping ErrInjected.
	ActError Action = iota
	// ActDelay makes Hit sleep for Rule.Delay and then proceed normally
	// (Hit returns nil unless another rule also trips).
	ActDelay
	// ActPanic makes Hit panic with a message naming the point and hit
	// index.
	ActPanic
)

// Rule arms one injection point with one behavior. Trigger selection is
// either counting (Every) or probabilistic (Prob); After and Limit bound
// the trips on both.
type Rule struct {
	// Point is the injection site this rule arms.
	Point Point
	// Action is what a trip does (error, delay, panic).
	Action Action
	// Prob trips the rule on each hit with this probability, decided by a
	// PRNG keyed on (seed, point, hit index): the kth hit of a point always
	// gets the same decision for a given seed. Ignored when Every is set.
	Prob float64
	// Every trips on every Every-th hit past After (1 = every hit). When
	// nonzero it takes precedence over Prob.
	Every int
	// After skips the first After hits of the point entirely.
	After int
	// Limit caps the total trips of this rule (0 = unlimited).
	Limit int
	// Delay is the stall duration for ActDelay rules.
	Delay time.Duration
	// Err overrides the error returned by ActError trips; nil means a
	// wrapped ErrInjected naming the point.
	Err error
}

// armedRule is a Rule plus its mutable trip counter.
type armedRule struct {
	Rule
	tripped atomic.Int64
}

// pointState tracks one point's hit counter and the rules armed on it.
type pointState struct {
	hits  atomic.Int64
	rules []*armedRule
}

// Injector evaluates a seeded schedule of rules. Arm it process-wide with
// Enable; observe it with Hits and Trips. All methods are safe for
// concurrent use.
type Injector struct {
	seed   uint64
	points map[Point]*pointState
}

// NewInjector builds an injector evaluating rules under the given schedule
// seed. The seed only matters to probabilistic (Prob) rules.
func NewInjector(seed uint64, rules ...Rule) *Injector {
	in := &Injector{seed: seed, points: make(map[Point]*pointState)}
	for _, r := range rules {
		st := in.points[r.Point]
		if st == nil {
			st = &pointState{}
			in.points[r.Point] = st
		}
		st.rules = append(st.rules, &armedRule{Rule: r})
	}
	return in
}

// Hits returns how many times the point has been hit while this injector
// was active.
func (in *Injector) Hits(p Point) int64 {
	if st := in.points[p]; st != nil {
		return st.hits.Load()
	}
	return 0
}

// Trips returns how many times any rule on the point has tripped.
func (in *Injector) Trips(p Point) int64 {
	var n int64
	if st := in.points[p]; st != nil {
		for _, r := range st.rules {
			t := r.tripped.Load()
			if r.Limit > 0 && t > int64(r.Limit) {
				t = int64(r.Limit) // over-count from concurrent limit races
			}
			n += t
		}
	}
	return n
}

// active is the process-wide injector; nil (the common case) makes Hit a
// single atomic load.
var active atomic.Pointer[Injector]

// Enable installs in as the process-wide injector and returns a restore
// function reinstating whatever was active before. Tests that enable
// injection must not run in parallel with each other.
func Enable(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Disable removes any active injector.
func Disable() { active.Store(nil) }

// Enabled reports whether an injector is active.
func Enabled() bool { return active.Load() != nil }

// Hit marks one pass through the named injection point. With no active
// injector it returns nil after a single atomic load. Otherwise the point's
// hit counter advances and each armed rule may stall the caller (ActDelay),
// panic (ActPanic), or make Hit return an injected error (ActError).
func Hit(p Point) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.hit(p)
}

func (in *Injector) hit(p Point) error {
	st := in.points[p]
	if st == nil {
		return nil
	}
	n := st.hits.Add(1) // 1-based hit index
	for _, r := range st.rules {
		if !r.shouldTrip(in.seed, n) {
			continue
		}
		switch r.Action {
		case ActDelay:
			time.Sleep(r.Delay)
		case ActPanic:
			panic(fmt.Sprintf("fault: injected panic at %s (hit %d)", p, n))
		default:
			if r.Err != nil {
				return r.Err
			}
			return fmt.Errorf("%w at %s (hit %d)", ErrInjected, p, n)
		}
	}
	return nil
}

// shouldTrip decides — deterministically in (seed, point, n) — whether the
// rule trips on the point's nth hit, and accounts the trip against Limit.
func (r *armedRule) shouldTrip(seed uint64, n int64) bool {
	if n <= int64(r.After) {
		return false
	}
	if r.Limit > 0 && r.tripped.Load() >= int64(r.Limit) {
		return false
	}
	var trip bool
	if r.Every > 0 {
		trip = (n-int64(r.After))%int64(r.Every) == 0
	} else {
		trip = unitFloat(mix(seed, hashPoint(r.Point), uint64(n))) < r.Prob
	}
	if !trip {
		return false
	}
	if r.Limit > 0 && r.tripped.Add(1) > int64(r.Limit) {
		return false // concurrent racers past the cap lose their trip
	}
	if r.Limit == 0 {
		r.tripped.Add(1)
	}
	return true
}

// hashPoint folds the point name into a 64-bit key (FNV-1a).
func hashPoint(p Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// mix combines the schedule seed, point key and hit index through a
// splitmix64 finalizer; the result is the rule's per-hit random word.
func mix(seed, point, n uint64) uint64 {
	z := seed ^ point ^ (n * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps a random 64-bit word to [0, 1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
