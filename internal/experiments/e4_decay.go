package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "per-phase nonfrozen-edge decay vs Lemma 4.4 bound",
		Claim: "Observation 4.3 / Lemma 4.4: after a phase, nonfrozen edges ≤ n·d·(1−ε)^I + n·d^γ",
		Run:   runE4,
	})
}

func runE4(cfg Config) ([]Renderable, error) {
	n, d := 16000, 512.0
	if cfg.Quick {
		n, d = 3000, 128.0
	}
	g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+8, n, d), cfg.Seed+9, gen.UniformRange{Lo: 1, Hi: 10})
	res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, cfg.Seed+10))
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("E4: edge decay per phase (G(n,p), n="+itoa(n)+", d0="+itoa(int(d))+")",
		"phase", "d", "iters", "edges_before", "edges_after", "lemma_bound", "after/bound", "frozen_2i")
	for _, st := range res.PhaseStats {
		frac := 0.0
		if st.DecayBound > 0 {
			frac = float64(st.EdgesAfter) / st.DecayBound
		}
		tb.AddRow(st.Phase, st.AvgDegree, st.Iterations, st.EdgesBefore, st.EdgesAfter,
			st.DecayBound, frac, st.FrozenAtLine2i)
	}
	return renderables(tb), nil
}
