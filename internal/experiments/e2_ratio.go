package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "approximation ratio across families, weight models and ε",
		Claim: "Theorem 4.7: w(C) ≤ (2+30ε)·OPT w.h.p.",
		Run:   runE2,
	})
}

func runE2(cfg Config) ([]Renderable, error) {
	n := 4000
	d := 48.0
	epsilons := []float64{0.1, 0.05}
	if cfg.Quick {
		n = 800
		epsilons = []float64{0.1}
	}
	families := []struct {
		name  string
		build func(seed uint64) *graph.Graph
	}{
		{"gnp", func(s uint64) *graph.Graph { return gen.GnpAvgDegree(s, n, d) }},
		{"powerlaw", func(s uint64) *graph.Graph { return gen.PreferentialAttachment(s, n, int(d/2)) }},
		{"bipartite", func(s uint64) *graph.Graph { return gen.RandomBipartite(s, n/2, n/2, 2*d/float64(n)) }},
	}
	models := []gen.WeightModel{
		gen.Unit{},
		gen.UniformRange{Lo: 1, Hi: 100},
		gen.PowerLaw{MaxWeight: 1e9},
		gen.DegreeCorrelated{Alpha: 1},
	}
	tb := stats.NewTable("E2: certified approximation ratio (vs LP dual bound)",
		"family", "weights", "eps", "ratio", "bound(2+30e)", "alpha", "tightness")
	for _, fam := range families {
		for _, model := range models {
			for _, eps := range epsilons {
				g := gen.ApplyWeights(fam.build(cfg.Seed+3), cfg.Seed+4, model)
				res, err := core.Run(context.Background(), g, core.ParamsPractical(eps, cfg.Seed+5))
				if err != nil {
					return nil, err
				}
				ratio, err := certifiedRatio(g, res)
				if err != nil {
					return nil, err
				}
				tb.AddRow(fam.name, model.Name(), eps, ratio, 2+30*eps,
					alphaOf(g, res), res.CoverTightness(g))
			}
		}
	}

	// Against exact OPT on small instances, where the true ratio (not just
	// the certified upper bound on it) is observable.
	small := stats.NewTable("E2b: true ratio vs exact OPT (small instances)",
		"family", "n", "opt", "mpc_weight", "true_ratio", "cert_ratio")
	smallN := 48
	trials := 6
	if cfg.Quick {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		seed := cfg.Seed + uint64(trial)*101
		g := gen.ApplyWeights(gen.Gnp(seed, smallN, 0.2), seed+1, gen.UniformRange{Lo: 1, Hi: 10})
		res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, seed+2))
		if err != nil {
			return nil, err
		}
		_, opt, err := exact.Solve(context.Background(), g)
		if err != nil {
			return nil, err
		}
		w := verify.CoverWeight(g, res.Cover)
		ratio, err := certifiedRatio(g, res)
		if err != nil {
			return nil, err
		}
		trueRatio := 1.0
		if opt > 0 {
			trueRatio = w / opt
		}
		small.AddRow("gnp", smallN, opt, w, trueRatio, ratio)
	}
	return renderables(tb, small), nil
}
