package experiments

import (
	"context"

	"repro/internal/baselines"
	"repro/internal/centralized"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "rounds: Algorithm 2 vs LOCAL one-iteration-per-round baselines",
		Claim: "Section 1.2: prior best for weighted vertex cover was O(log n) rounds; Algorithm 2 needs O(log log d)",
		Run:   runE7,
	})
}

func runE7(cfg Config) ([]Renderable, error) {
	n := 8000
	degrees := []float64{16, 64, 256, 1024}
	if cfg.Quick {
		n = 2000
		degrees = []float64{16, 256}
	}
	eps := 0.1
	tb := stats.NewTable("E7: communication rounds by algorithm (weights loguniform[1,1e6))",
		"d", "mpc_rounds", "mpc_phases", "local_degree_aware", "local_uniform")
	var ds, mpcR, awareR, uniformR []float64
	for _, d := range degrees {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(d)+18, n, d), cfg.Seed+19, gen.PowerLaw{MaxWeight: 1e6})
		res, err := core.Run(context.Background(), g, core.ParamsPractical(eps, cfg.Seed+20))
		if err != nil {
			return nil, err
		}
		aware, err := baselines.LocalPrimalDual(context.Background(), g, eps, cfg.Seed+21, centralized.InitDegreeAware)
		if err != nil {
			return nil, err
		}
		uniform, err := baselines.LocalPrimalDual(context.Background(), g, eps, cfg.Seed+21, centralized.InitUniform)
		if err != nil {
			return nil, err
		}
		tb.AddRow(d, res.Rounds, res.Phases, aware.Rounds, uniform.Rounds)
		ds = append(ds, log2(d))
		mpcR = append(mpcR, float64(res.Rounds))
		awareR = append(awareR, float64(aware.Rounds))
		uniformR = append(uniformR, float64(uniform.Rounds))
	}
	chart := stats.NewChart("E7 figure: rounds vs log2 d", "log2 d", "rounds")
	chart.AddSeries("mpc (this paper)", ds, mpcR)
	chart.AddSeries("LOCAL degree-aware", ds, awareR)
	chart.AddSeries("LOCAL uniform 1/n", ds, uniformR)
	return renderables(tb, chart), nil
}
