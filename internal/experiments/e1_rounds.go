package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "MPC rounds vs average degree",
		Claim: "Theorems 1.1/4.5: the number of phases (hence rounds) grows as O(log log d), not O(log d)",
		Run:   runE1,
	})
}

func runE1(cfg Config) ([]Renderable, error) {
	n := 1 << 14
	degrees := []float64{8, 16, 32, 64, 128, 256, 512, 1024}
	if cfg.Quick {
		n = 1 << 11
		degrees = []float64{8, 32, 128, 512}
	}
	tb := stats.NewTable("E1: phases and rounds vs average degree (G(n,p), n="+itoa(n)+")",
		"d", "log2(log2 d)", "phases", "mpc_rounds", "final_iters", "cert_ratio")
	var xs, ys []float64
	var logxs []float64
	for _, d := range degrees {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(d), n, d), cfg.Seed+1, gen.UniformRange{Lo: 1, Hi: 100})
		// The round/phase trajectory is measured through the observer event
		// stream (the API a production consumer would watch), cross-checked
		// against the result's own accounting.
		var tr roundTrace
		params := core.ParamsPractical(0.1, cfg.Seed+2)
		params.Observer = tr.observer()
		res, err := core.Run(context.Background(), g, params)
		if err != nil {
			return nil, err
		}
		if err := tr.check(res); err != nil {
			return nil, err
		}
		ratio, err := certifiedRatio(g, res)
		if err != nil {
			return nil, err
		}
		ll := stats.LogLog(d)
		tb.AddRow(d, ll, tr.Phases, tr.Rounds, tr.FinalIters, ratio)
		xs = append(xs, ll)
		logxs = append(logxs, log2(d))
		ys = append(ys, float64(tr.Phases))
	}
	// With the practical iteration count (I ∝ 0.5·log m) a single phase
	// already collapses the graph, so the phase count is flat in d —
	// trivially within O(log log d) but shapeless. To expose the growth
	// shape the theorem describes, re-run with the theory's slack
	// coefficient (I ∝ 0.1·log m, the (1/(1−ε))^I ≤ m^0.1 constraint of
	// Lemma 4.11): phases then climb slowly with d, tracking log log d.
	tb2 := stats.NewTable("E1b: same sweep with theory-slack iterations (I = max(1, ⌊0.1·ln m/ln(1/(1−ε))⌋))",
		"d", "log2(log2 d)", "phases", "mpc_rounds", "cert_ratio")
	var xs2, logxs2, ys2 []float64
	for _, d := range degrees {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(d), n, d), cfg.Seed+1, gen.UniformRange{Lo: 1, Hi: 100})
		params := core.ParamsPractical(0.1, cfg.Seed+2)
		params.PhaseIterations = func(machines int, eps float64) int {
			if machines < 2 {
				return 1
			}
			i := int(0.1 * logf(float64(machines)) / logf(1/(1-eps)))
			if i < 1 {
				return 1
			}
			return i
		}
		var tr roundTrace
		params.Observer = tr.observer()
		res, err := core.Run(context.Background(), g, params)
		if err != nil {
			return nil, err
		}
		if err := tr.check(res); err != nil {
			return nil, err
		}
		ratio, err := certifiedRatio(g, res)
		if err != nil {
			return nil, err
		}
		ll := stats.LogLog(d)
		tb2.AddRow(d, ll, tr.Phases, tr.Rounds, ratio)
		xs2 = append(xs2, ll)
		logxs2 = append(logxs2, log2(d))
		ys2 = append(ys2, float64(tr.Phases))
	}

	fit := stats.NewTable("E1 fits: phases as a function of degree",
		"series", "model", "slope", "intercept", "r2")
	aLL, bLL, r2LL := stats.LinearFit(xs, ys)
	aL, bL, r2L := stats.LinearFit(logxs, ys)
	fit.AddRow("practical-I", "phases ~ log2(log2 d)", bLL, aLL, r2LL)
	fit.AddRow("practical-I", "phases ~ log2 d", bL, aL, r2L)
	aLL2, bLL2, r2LL2 := stats.LinearFit(xs2, ys2)
	aL2, bL2, r2L2 := stats.LinearFit(logxs2, ys2)
	fit.AddRow("theory-slack-I", "phases ~ log2(log2 d)", bLL2, aLL2, r2LL2)
	fit.AddRow("theory-slack-I", "phases ~ log2 d", bL2, aL2, r2L2)

	chart := stats.NewChart("E1 figure: sampled phases vs log2(log2 d)", "log2(log2 d)", "phases")
	chart.AddSeries("practical-I", xs, ys)
	chart.AddSeries("theory-slack-I", xs2, ys2)
	return renderables(tb, tb2, fit, chart), nil
}
