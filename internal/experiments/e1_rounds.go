package experiments

import (
	"context"
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "MPC rounds vs average degree",
		Claim: "Theorems 1.1/4.5: the number of phases (hence rounds) grows as O(log log d), not O(log d)",
		Run:   runE1,
	})
}

func runE1(cfg Config) ([]Renderable, error) {
	n := 1 << 14
	degrees := []float64{8, 16, 32, 64, 128, 256, 512, 1024}
	if cfg.Quick {
		n = 1 << 11
		degrees = []float64{8, 32, 128, 512}
	}
	tb := stats.NewTable("E1: phases and rounds vs average degree (G(n,p), n="+itoa(n)+")",
		"d", "log2(log2 d)", "phases", "mpc_rounds", "final_iters", "cert_ratio")
	var xs, ys []float64
	var logxs []float64
	for _, d := range degrees {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(d), n, d), cfg.Seed+1, gen.UniformRange{Lo: 1, Hi: 100})
		// The round/phase trajectory is measured through the observer event
		// stream (the API a production consumer would watch), cross-checked
		// against the result's own accounting.
		var tr roundTrace
		params := core.ParamsPractical(0.1, cfg.Seed+2)
		params.Observer = tr.observer()
		res, err := core.Run(context.Background(), g, params)
		if err != nil {
			return nil, err
		}
		if err := tr.check(res); err != nil {
			return nil, err
		}
		ratio, err := certifiedRatio(g, res)
		if err != nil {
			return nil, err
		}
		ll := stats.LogLog(d)
		tb.AddRow(d, ll, tr.Phases, tr.Rounds, tr.FinalIters, ratio)
		xs = append(xs, ll)
		logxs = append(logxs, log2(d))
		ys = append(ys, float64(tr.Phases))
	}
	// With the practical iteration count (I ∝ 0.5·log m) a single phase
	// already collapses the graph, so the phase count is flat in d —
	// trivially within O(log log d) but shapeless. To expose the growth
	// shape the theorem describes, re-run with the theory's slack
	// coefficient (I ∝ 0.1·log m, the (1/(1−ε))^I ≤ m^0.1 constraint of
	// Lemma 4.11): phases then climb slowly with d, tracking log log d.
	tb2 := stats.NewTable("E1b: same sweep with theory-slack iterations (I = max(1, ⌊0.1·ln m/ln(1/(1−ε))⌋))",
		"d", "log2(log2 d)", "phases", "mpc_rounds", "cert_ratio")
	var xs2, logxs2, ys2 []float64
	for _, d := range degrees {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(d), n, d), cfg.Seed+1, gen.UniformRange{Lo: 1, Hi: 100})
		params := core.ParamsPractical(0.1, cfg.Seed+2)
		params.PhaseIterations = func(machines int, eps float64) int {
			if machines < 2 {
				return 1
			}
			i := int(0.1 * logf(float64(machines)) / logf(1/(1-eps)))
			if i < 1 {
				return 1
			}
			return i
		}
		var tr roundTrace
		params.Observer = tr.observer()
		res, err := core.Run(context.Background(), g, params)
		if err != nil {
			return nil, err
		}
		if err := tr.check(res); err != nil {
			return nil, err
		}
		ratio, err := certifiedRatio(g, res)
		if err != nil {
			return nil, err
		}
		ll := stats.LogLog(d)
		tb2.AddRow(d, ll, tr.Phases, tr.Rounds, ratio)
		xs2 = append(xs2, ll)
		logxs2 = append(logxs2, log2(d))
		ys2 = append(ys2, float64(tr.Phases))
	}

	fit := stats.NewTable("E1 fits: phases as a function of degree",
		"series", "model", "slope", "intercept", "r2")
	aLL, bLL, r2LL := stats.LinearFit(xs, ys)
	aL, bL, r2L := stats.LinearFit(logxs, ys)
	fit.AddRow("practical-I", "phases ~ log2(log2 d)", bLL, aLL, r2LL)
	fit.AddRow("practical-I", "phases ~ log2 d", bL, aL, r2L)
	aLL2, bLL2, r2LL2 := stats.LinearFit(xs2, ys2)
	aL2, bL2, r2L2 := stats.LinearFit(logxs2, ys2)
	fit.AddRow("theory-slack-I", "phases ~ log2(log2 d)", bLL2, aLL2, r2LL2)
	fit.AddRow("theory-slack-I", "phases ~ log2 d", bL2, aL2, r2L2)

	chart := stats.NewChart("E1 figure: sampled phases vs log2(log2 d)", "log2(log2 d)", "phases")
	chart.AddSeries("practical-I", xs, ys)
	chart.AddSeries("theory-slack-I", xs2, ys2)

	// E1c: the round-compressed solver on the same sweep. Both solvers run
	// the identical phase logic (same k simulated LOCAL rounds per phase);
	// the compressed variant spends 3 accounted cluster rounds per phase
	// instead of the native 5, so on every degree point that runs at least
	// one sampled phase its round bill must be strictly lower.
	pts, err := e1RoundsComparison(cfg)
	if err != nil {
		return nil, err
	}
	tbc := stats.NewTable("E1c: accounted MPC rounds, native vs round-compressed (same sweep)",
		"d", "native_phases", "native_rounds", "compressed_rounds", "local_rounds_per_mpc_round", "native_ratio", "compressed_ratio")
	var dxs, natYs, cmpYs []float64
	for _, p := range pts {
		tbc.AddRow(p.Degree, p.NativePhases, p.NativeRounds, p.CompressedRounds, p.Density, p.NativeRatio, p.CompressedRatio)
		dxs = append(dxs, log2(p.Degree))
		natYs = append(natYs, float64(p.NativeRounds))
		cmpYs = append(cmpYs, float64(p.CompressedRounds))
	}
	chartc := stats.NewChart("E1c figure: accounted MPC rounds vs log2 d", "log2 d", "mpc_rounds")
	chartc.AddSeries("native", dxs, natYs)
	chartc.AddSeries("compressed", dxs, cmpYs)
	return renderables(tb, tb2, fit, chart, tbc, chartc), nil
}

// e1Point is one degree point of the native-vs-compressed round comparison.
type e1Point struct {
	Degree           float64
	NativePhases     int
	NativeRounds     int
	CompressedRounds int
	// Density is the compression currency: simulated LOCAL rounds carried
	// per accounted MPC round across the compressed rounds (0 when the
	// instance skips straight to the final centralized phase).
	Density         float64
	NativeRatio     float64
	CompressedRatio float64
}

// e1RoundsComparison runs E1's instance family through both the native and
// the round-compressed solver and returns the per-degree round accounting.
// It is shared by runE1 (which tabulates it) and the experiments test
// (which asserts the compressed series stays strictly below the native one
// wherever sampled phases run at all).
func e1RoundsComparison(cfg Config) ([]e1Point, error) {
	n := 1 << 14
	degrees := []float64{8, 16, 32, 64, 128, 256, 512, 1024}
	if cfg.Quick {
		n = 1 << 11
		degrees = []float64{8, 32, 128, 512}
	}
	pts := make([]e1Point, 0, len(degrees))
	for _, d := range degrees {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(d), n, d), cfg.Seed+1, gen.UniformRange{Lo: 1, Hi: 100})
		nres, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, cfg.Seed+2))
		if err != nil {
			return nil, err
		}
		nratio, err := certifiedRatio(g, nres)
		if err != nil {
			return nil, err
		}
		cres, err := compress.Run(context.Background(), g, compress.DefaultParams(0.1, cfg.Seed+2))
		if err != nil {
			return nil, err
		}
		if cres.Fallback {
			return nil, fmt.Errorf("E1c: d=%v fell back to native rounds; the comparison would be vacuous", d)
		}
		cratio, err := compressedRatio(g, cres)
		if err != nil {
			return nil, err
		}
		density := 0.0
		if cres.Phases > 0 {
			local := 0
			for _, k := range cres.LocalRounds {
				local += k
			}
			density = float64(local) / float64(3*cres.Phases)
		}
		pts = append(pts, e1Point{
			Degree:           d,
			NativePhases:     nres.Phases,
			NativeRounds:     nres.Rounds,
			CompressedRounds: cres.Rounds,
			Density:          density,
			NativeRatio:      nratio,
			CompressedRatio:  cratio,
		})
	}
	return pts, nil
}

// compressedRatio is certifiedRatio for the compressed solver's result.
func compressedRatio(g *graph.Graph, res *compress.Result) (float64, error) {
	scaled, _ := res.FeasibleDual(g)
	cert, err := verify.NewCertificate(g, res.Cover, scaled)
	if err != nil {
		return 0, err
	}
	return cert.Ratio(), nil
}
