package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "MPC-vs-centralized coupling: estimator deviations and bad vertices",
		Claim: "Lemmas 4.6/4.13: |y − ỹ^MPC| ≤ 6ε·w′(v) w.h.p., the bias keeps the estimator error one-sided, and few vertices diverge ('bad')",
		Run:   runE6,
	})
}

func runE6(cfg Config) ([]Renderable, error) {
	eps := 0.1
	type pt struct {
		n int
		d float64
	}
	pts := []pt{{4000, 64}, {8000, 256}, {16000, 1024}}
	if cfg.Quick {
		pts = []pt{{2000, 64}, {4000, 256}}
	}
	tb := stats.NewTable("E6: coupled-run deviations per phase (6ε = 0.6)",
		"n", "d0", "phase", "machines", "iters", "max|y-est|/w", "max|y-yMPC|/w", "min_onesided", "bad", "vertices")
	for _, p := range pts {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(p.n), p.n, p.d), cfg.Seed+14, gen.UniformRange{Lo: 1, Hi: 10})
		params := core.ParamsPractical(eps, cfg.Seed+15)
		params.CollectCoupling = true
		res, err := core.Run(context.Background(), g, params)
		if err != nil {
			return nil, err
		}
		for _, cp := range res.Coupling {
			rep, err := core.AnalyzeCoupling(cp, params)
			if err != nil {
				return nil, err
			}
			tb.AddRow(p.n, p.d, rep.Phase, rep.Machines, rep.Iterations,
				rep.MaxDevEstimate, rep.MaxDevY, rep.MinOneSided, rep.BadVertices, rep.Vertices)
		}
	}

	// Bias ablation on the same workload: without the bias term the
	// estimator error is two-sided (MinOneSided goes clearly negative).
	n, d := 4000, 256.0
	if cfg.Quick {
		n, d = 2000, 64.0
	}
	ab := stats.NewTable("E6b: one-sidedness with and without the bias term",
		"variant", "phase", "min_onesided", "bad", "vertices")
	for _, disable := range []bool{false, true} {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+99, n, d), cfg.Seed+16, gen.UniformRange{Lo: 1, Hi: 10})
		params := core.ParamsPractical(eps, cfg.Seed+17)
		params.CollectCoupling = true
		params.DisableBias = disable
		res, err := core.Run(context.Background(), g, params)
		if err != nil {
			return nil, err
		}
		name := "with-bias"
		if disable {
			name = "no-bias"
		}
		for _, cp := range res.Coupling {
			rep, err := core.AnalyzeCoupling(cp, params)
			if err != nil {
				return nil, err
			}
			ab.AddRow(name, rep.Phase, rep.MinOneSided, rep.BadVertices, rep.Vertices)
		}
	}
	return renderables(tb, ab), nil
}
