package experiments

import (
	"repro/internal/solver"

	"context"

	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "congested clique: direct primal–dual vs simulated MPC rounds",
		Claim: "Section 1.3: via [BDH18], Algorithm 2 yields O(log log d) congested-clique rounds; the direct LOCAL execution costs O(log Δ) rounds with O(1) words per pair",
		Run:   runE9,
	})
}

func runE9(cfg Config) ([]Renderable, error) {
	sizes := []struct {
		n int
		d float64
	}{{500, 16}, {1000, 32}, {2000, 64}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	tb := stats.NewTable("E9: congested-clique execution (per-pair cap 2 words, enforced)",
		"n", "d", "cc_rounds", "cc_ratio", "mpc_rounds(=BDH18 cc bound x O(1))", "max_pair_words")
	for _, s := range sizes {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(s.n), s.n, s.d), cfg.Seed+30, gen.UniformRange{Lo: 1, Hi: 10})
		cc, err := cclique.Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: cfg.Seed + 31})
		if err != nil {
			return nil, err
		}
		cert, err := verify.NewCertificate(g, cc.Cover, cc.X)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, cfg.Seed+32))
		if err != nil {
			return nil, err
		}
		tb.AddRow(s.n, s.d, cc.Rounds, cert.Ratio(), res.Rounds, 2)
	}
	return renderables(tb), nil
}
