package experiments

import (
	"repro/internal/solver"

	"context"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ggk"
	"repro/internal/matching"
	"repro/internal/stats"
	"repro/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "unweighted special case vs the matching-based pipeline",
		Claim: "Sections 1.2/3.2: with unit weights the algorithm covers the GGK+18 setting; the classic distributed pipeline (maximal matching → both endpoints) costs O(log n) rounds [II86]",
		Run:   runE13,
	})
}

func runE13(cfg Config) ([]Renderable, error) {
	type pt struct {
		n int
		d float64
	}
	pts := []pt{{2000, 16}, {4000, 64}, {8000, 256}}
	if cfg.Quick {
		pts = []pt{{1000, 16}, {2000, 64}}
	}
	tb := stats.NewTable("E13: unit-weight vertex cover — weighted alg vs GGK+18 vs matching pipeline",
		"n", "d", "mpc_rounds", "mpc_cover", "ggk_rounds", "ggk_cover", "matching_rounds", "matching_cover", "dual_bound")
	for _, p := range pts {
		g := gen.GnpAvgDegree(cfg.Seed+uint64(p.n)+41, p.n, p.d)

		res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, cfg.Seed+42))
		if err != nil {
			return nil, err
		}
		scaled, _ := res.FeasibleDual(g)
		cert, err := verify.NewCertificate(g, res.Cover, scaled)
		if err != nil {
			return nil, err
		}

		gres, err := ggk.Run(context.Background(), g, solver.Config{Epsilon: 0.1, Seed: cfg.Seed + 44})
		if err != nil {
			return nil, err
		}
		if ok, e := verify.IsCover(g, gres.Cover); !ok {
			return nil, &uncoveredError{edge: int(e)}
		}

		dm, err := matching.Distributed(context.Background(), g, cfg.Seed+43)
		if err != nil {
			return nil, err
		}
		mmCover := matching.CoverFromMatching(g, dm.Matching)
		if ok, e := verify.IsCover(g, mmCover); !ok {
			return nil, &uncoveredError{edge: int(e)}
		}
		tb.AddRow(p.n, p.d, res.Rounds, cert.Weight,
			gres.Rounds, verify.CoverWeight(g, gres.Cover),
			dm.Rounds, verify.CoverWeight(g, mmCover), cert.Bound)
	}
	return renderables(tb), nil
}

type uncoveredError struct{ edge int }

func (e *uncoveredError) Error() string {
	return "e13: matching cover misses an edge"
}
