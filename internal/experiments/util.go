package experiments

import (
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/verify"
)

func itoa(n int) string { return strconv.Itoa(n) }

func log2(x float64) float64 { return math.Log2(x) }

func logf(x float64) float64 { return math.Log(x) }

// certifiedRatio validates an Algorithm 2 result against g and returns the
// certified approximation ratio (cover weight over the rescaled feasible
// dual value).
func certifiedRatio(g *graph.Graph, res *core.Result) (float64, error) {
	scaled, _ := res.FeasibleDual(g)
	cert, err := verify.NewCertificate(g, res.Cover, scaled)
	if err != nil {
		return 0, err
	}
	return cert.Ratio(), nil
}

// alphaOf returns the dual violation factor of an Algorithm 2 result.
func alphaOf(g *graph.Graph, res *core.Result) float64 {
	_, alpha := res.FeasibleDual(g)
	return alpha
}
