package experiments

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/verify"
)

func itoa(n int) string { return strconv.Itoa(n) }

func log2(x float64) float64 { return math.Log2(x) }

func logf(x float64) float64 { return math.Log(x) }

// certifiedRatio validates an Algorithm 2 result against g and returns the
// certified approximation ratio (cover weight over the rescaled feasible
// dual value).
func certifiedRatio(g *graph.Graph, res *core.Result) (float64, error) {
	scaled, _ := res.FeasibleDual(g)
	cert, err := verify.NewCertificate(g, res.Cover, scaled)
	if err != nil {
		return 0, err
	}
	return cert.Ratio(), nil
}

// alphaOf returns the dual violation factor of an Algorithm 2 result.
func alphaOf(g *graph.Graph, res *core.Result) float64 {
	_, alpha := res.FeasibleDual(g)
	return alpha
}

// roundTrace accumulates a solve's observer event stream — the round/phase
// trajectory experiments tabulate. It replaces the pre-registry pattern of
// digging the counts out of result structs after the fact: the experiments
// now measure the same stream a production observer would see.
type roundTrace struct {
	Phases     int
	Rounds     int
	FinalIters int
}

// observer returns the solver.Observer that feeds the trace.
func (tr *roundTrace) observer() solver.Observer {
	return solver.ObserverFunc(func(e solver.Event) {
		switch e.Kind {
		case solver.KindPhaseStart:
			tr.Phases++
		case solver.KindRound:
			tr.Rounds++
		case solver.KindFinalPhase:
			tr.FinalIters = e.Iterations
		}
	})
}

// check cross-validates the trace against the result's own accounting; a
// mismatch means the observer pipeline drifted from the round accounting and
// the experiment's numbers cannot be trusted.
func (tr *roundTrace) check(res *core.Result) error {
	if tr.Rounds != res.Rounds || tr.Phases != res.Phases || tr.FinalIters != res.FinalPhaseIterations {
		return fmt.Errorf("observer trace (rounds=%d phases=%d final=%d) disagrees with result (rounds=%d phases=%d final=%d)",
			tr.Rounds, tr.Phases, tr.FinalIters, res.Rounds, res.Phases, res.FinalPhaseIterations)
	}
	return nil
}
