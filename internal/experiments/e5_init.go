package experiments

import (
	"context"

	"repro/internal/centralized"
	"repro/internal/gen"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "centralized iterations: degree-aware vs uniform initialization",
		Claim: "Proposition 3.4: degree-aware init terminates in O(log Δ) iterations independent of weights; uniform 1/n init needs O(log(nW))",
		Run:   runE5,
	})
}

func runE5(cfg Config) ([]Renderable, error) {
	n := 4000
	degrees := []float64{16, 64, 256}
	weights := []float64{1, 1e3, 1e6, 1e9}
	if cfg.Quick {
		n = 1000
		degrees = []float64{16, 64}
		weights = []float64{1, 1e6}
	}
	tb := stats.NewTable("E5: Algorithm 1 iterations by initialization (ε=0.1)",
		"d", "maxΔ", "W", "iters_degree_aware", "iters_uniform", "uniform/aware")
	for _, d := range degrees {
		base := gen.GnpAvgDegree(cfg.Seed+uint64(d)+11, n, d)
		for _, w := range weights {
			var g = base
			if w > 1 {
				g = gen.ApplyWeights(base, cfg.Seed+12, gen.PowerLaw{MaxWeight: w})
			}
			run := func(init centralized.InitPolicy) (int, error) {
				res, err := centralized.Run(context.Background(),
					centralized.Instance{G: g},
					centralized.Options{Epsilon: 0.1, Seed: cfg.Seed + 13, Init: init},
				)
				if err != nil {
					return 0, err
				}
				return res.Iterations, nil
			}
			aware, err := run(centralized.InitDegreeAware)
			if err != nil {
				return nil, err
			}
			uniform, err := run(centralized.InitUniform)
			if err != nil {
				return nil, err
			}
			tb.AddRow(d, g.MaxDegree(), w, aware, uniform, float64(uniform)/float64(aware))
		}
	}
	return renderables(tb), nil
}
