package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "ablations of the paper's weighted-case design choices",
		Claim: "Section 3.2: each of (a) degree-aware init, (b) estimator bias, (c) V^inactive split, (d) random thresholds plays a role in the weighted case",
		Run:   runE10,
	})
}

func runE10(cfg Config) ([]Renderable, error) {
	n, d := 6000, 128.0
	if cfg.Quick {
		n, d = 1500, 48.0
	}
	eps := 0.1
	g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+33, n, d), cfg.Seed+34, gen.UniformRange{Lo: 1, Hi: 100})

	variants := []struct {
		name   string
		mutate func(*core.Params)
	}{
		{"paper-design", func(*core.Params) {}},
		{"uniform-init", func(p *core.Params) { p.UniformInit = true }},
		{"no-bias", func(p *core.Params) { p.DisableBias = true }},
		{"no-inactive-split", func(p *core.Params) { p.DisableInactiveSplit = true }},
		{"fixed-thresholds", func(p *core.Params) { p.FixedThresholds = true }},
	}
	tb := stats.NewTable("E10: design ablations (G(n,p), n="+itoa(n)+", d="+itoa(int(d))+", ε=0.1)",
		"variant", "phases", "rounds", "cert_ratio", "alpha", "tightness", "stalled")
	for _, v := range variants {
		params := core.ParamsPractical(eps, cfg.Seed+35)
		v.mutate(&params)
		res, err := core.Run(context.Background(), g, params)
		if err != nil {
			// An ablation failing *is* a result: the uniform-init variant
			// stalls (duals reset every phase, so no vertex ever reaches a
			// threshold) and the residual instance then exceeds the Õ(n)
			// final-machine budget — which is precisely why the paper's
			// degree-aware initialization is load-bearing.
			tb.AddRow(v.name, "-", "-", "-", "-", "-", "FAILED: "+shortErr(err))
			continue
		}
		ratio, err := certifiedRatio(g, res)
		if err != nil {
			return nil, err
		}
		tb.AddRow(v.name, res.Phases, res.Rounds, ratio, alphaOf(g, res),
			res.CoverTightness(g), stalled(res))
	}
	return renderables(tb), nil
}

// shortErr trims an error chain to its last segment for table cells.
func shortErr(err error) string {
	s := err.Error()
	if i := lastIndex(s, ": "); i >= 0 {
		return s[i+2:]
	}
	return s
}

func lastIndex(s, sub string) int {
	for i := len(s) - len(sub); i >= 0; i-- {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// stalled reports whether the run hit the stall fallback: a sampled phase
// made (almost) no progress, so the residual instance was handed to the
// final centralized phase early. The uniform-init ablation does this by
// construction — re-initializing the duals every phase discards all growth,
// which is exactly why the paper's degree-aware initialization is needed
// for round compression.
func stalled(res *core.Result) string {
	count := 0
	for _, st := range res.PhaseStats {
		if float64(st.EdgesAfter) > 0.99*float64(st.EdgesBefore) {
			count++
		} else {
			count = 0
		}
	}
	if count >= 3 {
		return "yes"
	}
	return "no"
}
