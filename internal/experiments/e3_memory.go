package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "per-machine memory (max |E[V_i]|) stays O(n)",
		Claim: "Lemma 4.1: with high probability |E[V_i]| ∈ O(n) for all machines i",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E11",
		Title: "global memory stays Õ(√d·n) ≤ Õ(|E|)",
		Claim: "Section 4.1 (remark after Lemma 4.1): total memory used is Õ(√d·n) ≤ Õ(|E|)",
		Run:   runE11,
	})
}

func runE3(cfg Config) ([]Renderable, error) {
	type pt struct{ n, d int }
	pts := []pt{{4000, 32}, {4000, 128}, {8000, 64}, {8000, 256}, {16000, 128}}
	if cfg.Quick {
		pts = []pt{{2000, 32}, {2000, 128}}
	}
	tb := stats.NewTable("E3: maximum machine load per phase",
		"n", "d0", "phase", "machines", "max|E[Vi]|", "max|E[Vi]|/n", "budget_words", "max_words")
	for _, p := range pts {
		g := gen.GnpAvgDegree(cfg.Seed+uint64(p.n+p.d), p.n, float64(p.d))
		params := core.ParamsPractical(0.1, cfg.Seed+6)
		res, err := core.Run(context.Background(), g, params)
		if err != nil {
			return nil, err
		}
		budget := params.MemoryWords(p.n)
		for _, st := range res.PhaseStats {
			tb.AddRow(p.n, p.d, st.Phase, st.Machines, st.MaxMachineEdges,
				float64(st.MaxMachineEdges)/float64(p.n), budget, st.MaxMachineWords)
		}
	}
	return renderables(tb), nil
}

func runE11(cfg Config) ([]Renderable, error) {
	n := 8000
	degrees := []float64{32, 128, 512}
	if cfg.Quick {
		n = 2000
		degrees = []float64{32, 128}
	}
	tb := stats.NewTable("E11: globally materialized edges per phase vs bounds",
		"d0", "phase", "machines", "sum|E[Vi]|", "sqrt(d)*n", "|E|")
	for _, d := range degrees {
		g := gen.GnpAvgDegree(cfg.Seed+uint64(d)+77, n, d)
		res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, cfg.Seed+7))
		if err != nil {
			return nil, err
		}
		for _, st := range res.PhaseStats {
			sqrtDN := float64(st.Machines) * float64(n)
			tb.AddRow(d, st.Phase, st.Machines, st.TotalMachineEdges, sqrtDN, g.NumEdges())
		}
	}
	return renderables(tb), nil
}
