package experiments

import (
	"context"

	"repro/internal/centralized"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "the weak-duality sandwich on exactly solvable instances",
		Claim: "Lemma 3.2 / Proposition 3.3: Σx_e ≤ OPT ≤ w(C) ≤ (2+10ε)·Σx_e for Algorithm 1",
		Run:   runE8,
	})
}

func runE8(cfg Config) ([]Renderable, error) {
	eps := 0.1
	type inst struct {
		name string
		g    *graph.Graph
	}
	mk := func() []inst {
		return []inst{
			{"gnp-unit", gen.Gnp(cfg.Seed+22, 40, 0.2)},
			{"gnp-weighted", gen.ApplyWeights(gen.Gnp(cfg.Seed+23, 40, 0.2), cfg.Seed+24, gen.UniformRange{Lo: 1, Hi: 10})},
			{"clique", gen.ApplyWeights(gen.Clique(18), cfg.Seed+25, gen.Exponential{Mean: 3})},
			{"bipartite", gen.ApplyWeights(gen.CompleteBipartite(9, 14), cfg.Seed+26, gen.UniformRange{Lo: 1, Hi: 5})},
			{"star", gen.ApplyWeights(gen.Star(30), cfg.Seed+27, gen.UniformRange{Lo: 1, Hi: 4})},
			{"grid", gen.ApplyWeights(gen.Grid(5, 8), cfg.Seed+28, gen.PowerLaw{MaxWeight: 100})},
		}
	}
	tb := stats.NewTable("E8: dual ≤ OPT ≤ cover ≤ (2+10ε)·dual",
		"instance", "n", "m", "dual", "opt", "cover", "cover/opt", "cover/dual", "sandwich")
	for _, in := range mk() {
		res, err := centralized.Run(context.Background(), centralized.Instance{G: in.g}, centralized.Options{Epsilon: eps, Seed: cfg.Seed + 29})
		if err != nil {
			return nil, err
		}
		cert, err := verify.NewCertificate(in.g, res.Cover, res.X)
		if err != nil {
			return nil, err
		}
		_, opt, err := exact.Solve(context.Background(), in.g)
		if err != nil {
			return nil, err
		}
		ok := cert.Bound <= opt+1e-9 && opt <= cert.Weight+1e-9 && cert.Weight <= (2+10*eps)*cert.Bound+1e-9
		verdict := "ok"
		if !ok {
			verdict = "VIOLATED"
		}
		ratioOpt := 1.0
		if opt > 0 {
			ratioOpt = cert.Weight / opt
		}
		tb.AddRow(in.name, in.g.NumVertices(), in.g.NumEdges(),
			cert.Bound, opt, cert.Weight, ratioOpt, cert.Ratio(), verdict)
	}
	return renderables(tb), nil
}
