package experiments

import (
	"context"

	"repro/internal/baselines"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "true ratio at scale: exact bipartite OPT via König's theorem",
		Claim: "Theorem 4.7 (tightness probe): the certified ratio is an upper bound; on unweighted bipartite graphs König's theorem gives exact OPT at any scale, exposing the true ratio",
		Run:   runE14,
	})
}

func runE14(cfg Config) ([]Renderable, error) {
	type pt struct {
		n int
		p float64
	}
	pts := []pt{{4000, 0.002}, {10000, 0.001}, {20000, 0.0008}}
	if cfg.Quick {
		pts = []pt{{2000, 0.003}}
	}
	tb := stats.NewTable("E14: unweighted bipartite — true vs certified ratio (exact OPT by König)",
		"n", "m", "opt", "mpc_cover", "mpc_true_ratio", "mpc_cert_ratio", "bye_cover", "bye_true_ratio")
	for _, s := range pts {
		g := gen.RandomBipartite(cfg.Seed+uint64(s.n)+51, s.n/2, s.n/2, s.p)
		_, opt, err := bipartite.MinimumVertexCover(g)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, cfg.Seed+52))
		if err != nil {
			return nil, err
		}
		certRatio, err := certifiedRatio(g, res)
		if err != nil {
			return nil, err
		}
		mpcW := verify.CoverWeight(g, res.Cover)
		bye := baselines.BarYehudaEven(g)
		byeW := verify.CoverWeight(g, bye.Cover)
		trueMPC, trueBYE := 1.0, 1.0
		if opt > 0 {
			trueMPC = mpcW / float64(opt)
			trueBYE = byeW / float64(opt)
		}
		tb.AddRow(s.n, g.NumEdges(), opt, mpcW, trueMPC, certRatio, byeW, trueBYE)
	}
	return renderables(tb), nil
}
