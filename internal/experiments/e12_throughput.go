package experiments

import (
	"context"

	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "wall-clock and quality vs sequential references",
		Claim: "Sanity scope: the simulated-MPC implementation matches sequential 2-approximations on quality while exposing parallel structure",
		Run:   runE12,
	})
}

func runE12(cfg Config) ([]Renderable, error) {
	sizes := []struct {
		n int
		d float64
	}{{4000, 32}, {16000, 64}, {32000, 64}}
	if cfg.Quick {
		sizes = []struct {
			n int
			d float64
		}{{2000, 24}}
	}
	tb := stats.NewTable("E12: wall-clock and certified quality",
		"n", "m", "algo", "millis", "weight", "cert_ratio")
	for _, s := range sizes {
		g := gen.ApplyWeights(gen.GnpAvgDegree(cfg.Seed+uint64(s.n), s.n, s.d), cfg.Seed+36, gen.UniformRange{Lo: 1, Hi: 50})

		start := time.Now()
		res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, cfg.Seed+37))
		if err != nil {
			return nil, err
		}
		mpcMS := time.Since(start).Milliseconds()
		ratio, err := certifiedRatio(g, res)
		if err != nil {
			return nil, err
		}
		tb.AddRow(s.n, g.NumEdges(), "mpc", mpcMS, verify.CoverWeight(g, res.Cover), ratio)

		start = time.Now()
		bye := baselines.BarYehudaEven(g)
		byeMS := time.Since(start).Milliseconds()
		byeCert, err := verify.NewCertificate(g, bye.Cover, bye.Duals)
		if err != nil {
			return nil, err
		}
		tb.AddRow(s.n, g.NumEdges(), "bar-yehuda-even", byeMS, byeCert.Weight, byeCert.Ratio())

		start = time.Now()
		greedy := baselines.Greedy(g)
		greedyMS := time.Since(start).Milliseconds()
		tb.AddRow(s.n, g.NumEdges(), "greedy", greedyMS, verify.CoverWeight(g, greedy.Cover), "-")
	}
	return renderables(tb), nil
}
