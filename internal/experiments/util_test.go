package experiments

import (
	"context"

	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestShortErr(t *testing.T) {
	if got := shortErr(errors.New("a: b: the tail")); got != "the tail" {
		t.Fatalf("shortErr = %q", got)
	}
	if got := shortErr(errors.New("no colons")); got != "no colons" {
		t.Fatalf("shortErr = %q", got)
	}
}

func TestLastIndex(t *testing.T) {
	if lastIndex("a: b: c", ": ") != 4 {
		t.Fatal("lastIndex wrong")
	}
	if lastIndex("abc", ": ") != -1 {
		t.Fatal("lastIndex should be -1")
	}
	if lastIndex("", "x") != -1 {
		t.Fatal("empty haystack")
	}
}

func TestCertifiedRatioHelpers(t *testing.T) {
	g := gen.GnpAvgDegree(1, 300, 12)
	res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := certifiedRatio(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1 || ratio > 5 {
		t.Fatalf("ratio %v implausible", ratio)
	}
	if a := alphaOf(g, res); a < 1 || a > 3 {
		t.Fatalf("alpha %v implausible", a)
	}
}

func TestStalledHelper(t *testing.T) {
	res := &core.Result{PhaseStats: []core.PhaseStat{
		{EdgesBefore: 100, EdgesAfter: 100},
		{EdgesBefore: 100, EdgesAfter: 100},
		{EdgesBefore: 100, EdgesAfter: 100},
	}}
	if stalled(res) != "yes" {
		t.Fatal("three no-progress phases not flagged")
	}
	res2 := &core.Result{PhaseStats: []core.PhaseStat{
		{EdgesBefore: 100, EdgesAfter: 10},
	}}
	if stalled(res2) != "no" {
		t.Fatal("productive run flagged as stalled")
	}
}

func TestUncoveredError(t *testing.T) {
	e := &uncoveredError{edge: 3}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}
