// Package experiments contains the evaluation harness. The paper is a
// theory paper — it proves claims instead of tabulating measurements — so
// every theorem and lemma of its analysis becomes a registered experiment
// that regenerates a table. EXPERIMENTS.md records paper-claim vs measured
// for each; `cmd/mwvc-bench` reruns any or all of them, and the root
// bench_test.go exposes each as a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Config controls an experiment run.
type Config struct {
	// Quick shrinks instance sizes so the whole suite finishes in seconds —
	// used by unit tests and the bench harness's default mode. Full-size
	// runs are what EXPERIMENTS.md records.
	Quick bool
	// Seed makes the whole suite reproducible.
	Seed uint64
}

// Experiment is one registered reproduction target.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the paper statement being reproduced.
	Claim string
	// Run executes the experiment and returns the result artifacts: tables
	// and, for the claims a paper would plot, ASCII charts.
	Run func(cfg Config) ([]Renderable, error)
}

// Renderable is anything an experiment can emit — *stats.Table and
// *stats.Chart both satisfy it.
type Renderable interface {
	Render(w io.Writer) error
}

// renderables packs artifacts for an experiment's return.
func renderables(items ...Renderable) []Renderable { return items }

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11: compare by numeric suffix.
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndRender executes the experiment and renders its tables to w.
func (e Experiment) RunAndRender(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "## %s — %s\n\nClaim (%s)\n\n", e.ID, e.Title, e.Claim)
	arts, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	for _, a := range arts {
		if err := a.Render(w); err != nil {
			return err
		}
	}
	return nil
}
