package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("position %d: %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Claim == "" || all[i].Run == nil {
			t.Fatalf("%s: incomplete registration", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 found")
	}
}

// TestAllExperimentsQuick runs every experiment in quick mode: the tables
// must be produced without error and contain data rows. This is the
// integration test of the whole stack (generators → algorithms → metrics).
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite skipped in -short mode")
	}
	cfg := Config{Quick: true, Seed: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			arts, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			nTables := 0
			for _, a := range arts {
				if tb, ok := a.(*stats.Table); ok {
					nTables++
					if tb.NumRows() == 0 {
						t.Fatalf("table %q has no rows", tb.Title)
					}
				}
			}
			if nTables == 0 {
				t.Fatal("no tables")
			}
		})
	}
}

func TestRunAndRender(t *testing.T) {
	e, _ := ByID("E8") // fast even in full mode
	var sb strings.Builder
	if err := e.RunAndRender(&sb, Config{Quick: true, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## E8", "Lemma 3.2", "| instance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("duality sandwich violated:\n%s", out)
	}
}

// TestE1CompressedSeriesFewerRounds pins E1c's headline: on the standard
// E1 instance family, wherever the degree is high enough for sampled
// phases to run at all, the round-compressed solver's accounted MPC round
// count is strictly below the native solver's, and the compressed rounds
// carry more than one simulated LOCAL round each.
func TestE1CompressedSeriesFewerRounds(t *testing.T) {
	pts, err := e1RoundsComparison(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, p := range pts {
		if p.NativePhases == 0 {
			// Below the switch-over threshold both solvers jump straight to
			// the final centralized phase; the round bills coincide there.
			if p.CompressedRounds != p.NativeRounds {
				t.Fatalf("d=%v: no sampled phases, yet rounds differ (%d vs %d)",
					p.Degree, p.CompressedRounds, p.NativeRounds)
			}
			continue
		}
		compared++
		if p.CompressedRounds >= p.NativeRounds {
			t.Fatalf("d=%v: compressed rounds %d not strictly below native %d",
				p.Degree, p.CompressedRounds, p.NativeRounds)
		}
		if p.Density <= 1 {
			t.Fatalf("d=%v: compressed rounds carry %.2f simulated LOCAL rounds each, want > 1",
				p.Degree, p.Density)
		}
	}
	if compared == 0 {
		t.Fatal("no degree point ran sampled phases; the comparison is vacuous")
	}
}

func TestIDNum(t *testing.T) {
	if idNum("E2") != 2 || idNum("E11") != 11 {
		t.Fatal("idNum broken")
	}
}
