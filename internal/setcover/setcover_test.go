package setcover

import (
	"context"

	"math"
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/verify"
)

func TestValidate(t *testing.T) {
	good := &Instance{Weights: []float64{1, 2}, Elements: [][]int{{0, 1}, {1}}}
	f, err := good.Validate()
	if err != nil || f != 2 {
		t.Fatalf("f=%d err=%v", f, err)
	}
	bad := []*Instance{
		{Weights: []float64{0}, Elements: [][]int{{0}}},
		{Weights: []float64{1}, Elements: [][]int{{}}},
		{Weights: []float64{1}, Elements: [][]int{{1}}},
		{Weights: []float64{1}, Elements: [][]int{{0, 0}}},
		{Weights: []float64{math.Inf(1)}, Elements: [][]int{{0}}},
	}
	for i, in := range bad {
		if _, err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestSolveSimple(t *testing.T) {
	// Two elements; set 1 covers both cheaply.
	in := &Instance{
		Weights:  []float64{10, 3, 10},
		Elements: [][]int{{0, 1}, {1, 2}},
	}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(in, sol); err != nil {
		t.Fatal(err)
	}
	if !sol.Chosen[1] || sol.Chosen[0] || sol.Chosen[2] {
		t.Fatalf("chosen %v, want only set 1", sol.Chosen)
	}
	if sol.Weight != 3 {
		t.Fatalf("weight %v", sol.Weight)
	}
}

func TestSolveHighFrequency(t *testing.T) {
	// f = 3: elements covered by triples.
	in := &Instance{
		Weights:  []float64{1, 1, 1, 1},
		Elements: [][]int{{0, 1, 2}, {1, 2, 3}, {0, 2, 3}},
	}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Frequency != 3 {
		t.Fatalf("frequency %d, want 3", sol.Frequency)
	}
	if err := Verify(in, sol); err != nil {
		t.Fatal(err)
	}
	if sol.Weight > 3*sol.Bound+1e-9 {
		t.Fatalf("certificate broken: %v > 3·%v", sol.Weight, sol.Bound)
	}
}

func TestFromGraphAgreesWithBYE(t *testing.T) {
	// The f=2 projection and the direct BYE implementation execute the same
	// local-ratio scheme in the same edge order, so they must agree exactly.
	g := gen.ApplyWeights(gen.Gnp(7, 150, 0.06), 3, gen.UniformRange{Lo: 1, Hi: 10})
	in := FromGraph(g)
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(in, sol); err != nil {
		t.Fatal(err)
	}
	bye := baselines.BarYehudaEven(g)
	for v := range bye.Cover {
		if bye.Cover[v] != sol.Chosen[v] {
			t.Fatalf("set-cover projection disagrees with BYE at vertex %d", v)
		}
	}
	if math.Abs(verify.CoverWeight(g, bye.Cover)-sol.Weight) > 1e-9 {
		t.Fatal("weights disagree")
	}
}

func TestFromGraphWithinTwiceOpt(t *testing.T) {
	f := func(seed uint64) bool {
		n := 6 + int(seed%10)
		g := gen.ApplyWeights(gen.Gnp(seed, n, 0.3), seed+1, gen.UniformRange{Lo: 0.5, Hi: 5})
		in := FromGraph(g)
		if g.NumEdges() == 0 {
			return true
		}
		sol, err := Solve(in)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := Verify(in, sol); err != nil {
			t.Log(err)
			return false
		}
		_, opt, err := exact.Solve(context.Background(), g)
		if err != nil {
			t.Log(err)
			return false
		}
		return sol.Weight <= 2*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesBrokenSolutions(t *testing.T) {
	in := &Instance{Weights: []float64{1, 1}, Elements: [][]int{{0, 1}}}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Uncover.
	broken := *sol
	broken.Chosen = []bool{false, false}
	if err := Verify(in, &broken); err == nil {
		t.Fatal("uncovered solution passed")
	}
	// Infeasible dual.
	broken2 := *sol
	broken2.Duals = []float64{5}
	if err := Verify(in, &broken2); err == nil {
		t.Fatal("infeasible dual passed")
	}
	// Negative dual.
	broken3 := *sol
	broken3.Duals = []float64{-1}
	if err := Verify(in, &broken3); err == nil {
		t.Fatal("negative dual passed")
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	in := &Instance{}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 0 || sol.Bound != 0 {
		t.Fatal("empty instance nonzero")
	}
}

func TestRandomHypergraphs(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 30; trial++ {
		nSets := 3 + src.Intn(20)
		nElems := 1 + src.Intn(40)
		in := &Instance{Weights: make([]float64, nSets), Elements: make([][]int, nElems)}
		for s := range in.Weights {
			in.Weights[s] = 0.5 + 4*src.Float64()
		}
		for j := range in.Elements {
			k := 1 + src.Intn(4)
			perm := src.Perm(nSets)
			in.Elements[j] = append([]int(nil), perm[:k]...)
		}
		sol, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(in, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
