package setcover

import "repro/internal/graph"

// FromGraph encodes a minimum-weight vertex-cover instance as set cover:
// sets are vertices (with their weights), elements are edges, and each
// element is covered by exactly its two endpoints, so the frequency is 2
// and Solve gives the classic 2-approximation.
func FromGraph(g *graph.Graph) *Instance {
	in := &Instance{
		Weights:  append([]float64(nil), g.Weights()...),
		Elements: make([][]int, g.NumEdges()),
	}
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		in.Elements[e] = []int{int(u), int(v)}
	}
	return in
}
