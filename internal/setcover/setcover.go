// Package setcover implements the weighted set-cover primal–dual
// f-approximation that the paper's centralized algorithm descends from
// (Section 3.1 traces Algorithm 1 to Hochbaum [Hoc82] and Bar-Yehuda–Even
// [BYE81], whose algorithms are stated for set cover; vertex cover is the
// special case where every element — an edge — is covered by exactly f = 2
// sets — its endpoints).
//
// Having the general algorithm in the repository serves two purposes:
// it cross-validates the vertex-cover implementations (the f=2 projection
// must agree with them), and it marks the extension point a downstream
// user would reach for first (covering constraints with frequency > 2).
package setcover

import (
	"fmt"
	"math"
)

// Instance is a weighted set-cover instance: Sets[i] has weight Weights[i];
// Elements[j] lists the indices of the sets that cover element j. Every
// element must be coverable (nonempty list) and weights must be positive.
type Instance struct {
	Weights  []float64
	Elements [][]int
}

// Validate checks structural sanity and returns the frequency f = the
// maximum number of sets covering any single element.
func (in *Instance) Validate() (f int, err error) {
	for s, w := range in.Weights {
		if !(w > 0) || math.IsInf(w, 0) {
			return 0, fmt.Errorf("setcover: set %d has weight %v, want positive finite", s, w)
		}
	}
	for j, sets := range in.Elements {
		if len(sets) == 0 {
			return 0, fmt.Errorf("setcover: element %d is uncoverable", j)
		}
		seen := make(map[int]bool, len(sets))
		for _, s := range sets {
			if s < 0 || s >= len(in.Weights) {
				return 0, fmt.Errorf("setcover: element %d references set %d out of range", j, s)
			}
			if seen[s] {
				return 0, fmt.Errorf("setcover: element %d lists set %d twice", j, s)
			}
			seen[s] = true
		}
		if len(sets) > f {
			f = len(sets)
		}
	}
	return f, nil
}

// Solution is a cover with its dual certificate.
type Solution struct {
	// Chosen[s] reports whether set s is in the cover.
	Chosen []bool
	// Weight is the total weight of chosen sets.
	Weight float64
	// Duals[j] is element j's dual value y_j; feasibility
	// (Σ_{j covered by s} y_j ≤ w(s) for all s) holds by construction, so
	// Σ y_j lower-bounds OPT and Weight ≤ f·Σ y_j.
	Duals []float64
	// Bound is Σ y_j.
	Bound float64
	// Frequency is f, the certified approximation factor.
	Frequency int
}

// Solve runs the Bar-Yehuda–Even local-ratio scheme: scan elements once;
// for each uncovered element raise its dual until some containing set goes
// tight; tight sets join the cover. The result is an f-approximation with
// a self-contained weak-duality certificate.
func Solve(in *Instance) (*Solution, error) {
	f, err := in.Validate()
	if err != nil {
		return nil, err
	}
	residual := append([]float64(nil), in.Weights...)
	chosen := make([]bool, len(in.Weights))
	duals := make([]float64, len(in.Elements))
	for j, sets := range in.Elements {
		covered := false
		for _, s := range sets {
			if chosen[s] {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		// Raise y_j by the smallest residual among its sets.
		delta := math.Inf(1)
		for _, s := range sets {
			if residual[s] < delta {
				delta = residual[s]
			}
		}
		duals[j] = delta
		for _, s := range sets {
			residual[s] -= delta
			if residual[s] <= 0 {
				chosen[s] = true
			}
		}
	}
	sol := &Solution{Chosen: chosen, Duals: duals, Frequency: f}
	for s, c := range chosen {
		if c {
			sol.Weight += in.Weights[s]
		}
	}
	for _, y := range duals {
		sol.Bound += y
	}
	return sol, nil
}

// Verify checks that the solution covers every element, that the duals are
// feasible, and that Weight ≤ f·Bound (the certificate); it returns a
// descriptive error on the first violation.
func Verify(in *Instance, sol *Solution) error {
	f, err := in.Validate()
	if err != nil {
		return err
	}
	for j, sets := range in.Elements {
		covered := false
		for _, s := range sets {
			if sol.Chosen[s] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("setcover: element %d uncovered", j)
		}
	}
	load := make([]float64, len(in.Weights))
	for j, sets := range in.Elements {
		if sol.Duals[j] < -1e-12 {
			return fmt.Errorf("setcover: negative dual at element %d", j)
		}
		for _, s := range sets {
			load[s] += sol.Duals[j]
		}
	}
	for s, l := range load {
		if l > in.Weights[s]*(1+1e-9) {
			return fmt.Errorf("setcover: dual constraint of set %d violated: %v > %v", s, l, in.Weights[s])
		}
	}
	if sol.Weight > float64(f)*sol.Bound*(1+1e-9) {
		return fmt.Errorf("setcover: weight %v exceeds f·bound = %d·%v", sol.Weight, f, sol.Bound)
	}
	return nil
}
