package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/centralized"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Message tags distinguishing record kinds within a round's payloads.
const (
	tagVertex uint64 = 1
	tagEdge   uint64 = 2
	tagResult uint64 = 3
	tagScalar uint64 = 4
)

// Labels for derived randomness. Partition and threshold draws are pure
// functions of (seed, label, phase, vertex[, iteration]), which is what lets
// the coupling experiments replay a phase with identical randomness.
const (
	labelPartition uint64 = 'P'
	labelThreshold uint64 = 'T'
)

// noFreeze marks a vertex that stayed active through a local simulation.
const noFreeze = -1

// machScratch is one simulated machine's reusable working set: the
// per-destination counters and arena-backed message buffers of the scatter
// and result rounds, the decoded local instance, and the local-simulation
// arrays. One machScratch per machine id lives for the whole run; messages
// are staged straight into the machine's outgoing arena (count → Reserve →
// Alloc → fill), so the per-phase MPC rounds allocate nothing at steady
// state and only arena growth on the first phase.
type machScratch struct {
	vCnt, eCnt []int32    // per-destination record counts, then write cursors
	vBuf, eBuf [][]uint64 // per-destination Alloc'd message buffers
	edgeIDs    []int32    // co-located edges found by the count pass
	li         LocalInstance
	sim        SimScratch
}

// ensure sizes the per-destination arrays for a fleet of `total` machines.
func (sc *machScratch) ensure(total int) {
	if sc.vCnt == nil {
		sc.vCnt = make([]int32, total)
		sc.eCnt = make([]int32, total)
		sc.vBuf = make([][]uint64, total)
		sc.eBuf = make([][]uint64, total)
	}
}

// Run executes Algorithm 2 on g and returns the cover, the finalized dual
// weights, and the per-phase measurements. The context is checked between
// phases, between cluster rounds, and inside the final centralized phase, so
// a cancellation or deadline ends the solve promptly with ctx.Err().
func Run(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	mEdges := g.NumEdges()
	epFlat := g.EdgeEndpoints() // flat (u,v) pairs; epFlat[2e], epFlat[2e+1] = endpoints of e
	eps := p.Epsilon
	growth := 1 / (1 - eps)

	res := &Result{
		Cover: make([]bool, n),
		X:     make([]float64, mEdges),
	}
	if n == 0 {
		return res, nil
	}

	// Algorithm state. frozenIncident[v] accumulates Σ_{e∋v frozen} x_e so
	// that w′(v) = w(v) − frozenIncident[v] (Line 2b).
	frozen := res.Cover
	xFinal := res.X
	edgeFrozen := make([]bool, mEdges)
	frozenIncident := make([]float64, n)
	resDeg := g.DegreesWithinMaskInto(make([]int, n), nil)
	nonfrozenEdges := int64(mEdges)

	// Defensive freeze for a vertex whose residual weight has been exhausted
	// (mathematically prevented by Line 2i; guarded against float drift).
	// Its remaining nonfrozen edges finalize at 0, like Line 2j.
	zeroFreeze := func(v graph.Vertex) {
		frozen[v] = true
		for _, e := range g.IncidentEdges(v) {
			if !edgeFrozen[e] {
				edgeFrozen[e] = true
				xFinal[e] = 0
			}
		}
	}

	// Cluster sizing: the simulation uses m = √d machines per phase, but the
	// cluster also holds the input edges (round-robin), so it needs enough
	// machines that no home machine's share exceeds a quarter of its memory.
	memWords := p.MemoryWords(n)
	maxEdgesPerHome := memWords / (4 * mpc.EdgeRecordWords)
	if maxEdgesPerHome < 1 {
		return nil, fmt.Errorf("core: machine memory %d words cannot hold any edges", memWords)
	}
	d0 := 2 * float64(nonfrozenEdges) / float64(n)
	mTotal := p.NumMachines(d0)
	if need := int((int64(mEdges) + maxEdgesPerHome - 1) / maxEdgesPerHome); need > mTotal {
		mTotal = need
	}
	if mTotal < 2 {
		mTotal = 2
	}
	// The per-phase degree aggregation is a single fan-in-M tree level, so
	// machine 0 receives 2·M words; cap the fleet so that always fits in a
	// quarter of its budget. The cap can only bind below the edge-holding
	// requirement when S² < 96·|E|, which Õ(n) memory always avoids.
	if maxFleet := int(memWords / 8); mTotal > maxFleet {
		if need := int((int64(mEdges) + maxEdgesPerHome - 1) / maxEdgesPerHome); need > maxFleet {
			return nil, fmt.Errorf("core: memory %d words per machine cannot host both the input (%d machines needed) and the aggregation fan-in (max %d)", memWords, need, maxFleet)
		}
		mTotal = maxFleet
	}
	cluster, err := mpc.NewCluster(mpc.Config{
		Machines:    mTotal,
		MemoryWords: memWords,
		Parallelism: p.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	maxPhases := p.MaxPhases
	if maxPhases == 0 {
		maxPhases = 64
	}

	// Observability: dualSum accumulates Σ x_e over finalized edges (the raw
	// dual total that FeasibleDual later rescales into a certified bound);
	// curPhase scopes round events to the running phase (-1 outside phases).
	obs := p.Observer
	dualSum := 0.0
	curPhase := -1
	// step executes one accounted cluster round with a context check before
	// it and a KindRound event after it, so the number of round events equals
	// Result.Rounds exactly.
	step := func(fn mpc.StepFunc) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := cluster.Round(fn); err != nil {
			return err
		}
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindRound,
			Phase:       curPhase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
		})
		return nil
	}

	// Reused per-phase scratch. The n-sized arrays are carved out of two
	// backing allocations (one per element type).
	f64Scratch := make([]float64, 2*n)
	wres, yMPC := f64Scratch[:n:n], f64Scratch[n:]
	i32Scratch := make([]int32, 4*n)
	highIndex, machineOf, freezeIterShared, localIdx := i32Scratch[:n:n], i32Scratch[n:2*n:2*n], i32Scratch[2*n:3*n:3*n], i32Scratch[3*n:]
	for v := range localIdx {
		localIdx[v] = -1
	}
	high := make([]bool, n)
	xPhase := make([]float64, mEdges)
	var highList []graph.Vertex
	var highEdges []int32
	var pow []float64
	var newlyFrozen []graph.Vertex
	localEdgeCount := make([]int64, mTotal)

	// Per-machine communication and simulation scratch, reused across all
	// phases and rounds so the steady-state message plane allocates nothing:
	// staging buffers grow once, then recycle.
	scratch := make([]machScratch, mTotal)
	// localIdx (carved from i32Scratch above) maps a global vertex id to its
	// index on the simulation machine that owns it this phase (-1 otherwise).
	// The partition assigns each vertex to exactly one machine and the
	// scatter only ships co-located edges, so concurrent machines touch
	// disjoint entries; each machine resets its own entries after its
	// simulation.

	phase := 0
	stalls := 0
	for ; ; phase++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		curPhase = phase
		d := 2 * float64(nonfrozenEdges) / float64(n)
		if d <= p.SwitchThreshold(n) {
			break
		}
		// Stall fallback: if sampled phases stop making progress (which the
		// ablations deliberately provoke — e.g. uniform initialization
		// resets the duals every phase and can never reach any threshold
		// within I iterations), hand the residual instance to the final
		// centralized phase instead of spinning. The memory charge there
		// still enforces that the fallback is legitimate.
		if stalls >= 3 {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("core: no convergence after %d phases (d=%.1f)", phase, d)
		}

		// Lines (2a)/(2b): classify nonfrozen vertices and compute residual
		// weights for V^high.
		dGamma := math.Pow(d, p.HighDegreeExponent)
		if p.DisableInactiveSplit {
			dGamma = 1 // every nonfrozen vertex with an edge is "high"
		}
		highList = highList[:0]
		numInactive := 0
		numNonfrozen := 0
		for v := 0; v < n; v++ {
			high[v] = false
			if frozen[v] {
				continue
			}
			numNonfrozen++
			if resDeg[v] == 0 {
				continue
			}
			w := g.Weight(graph.Vertex(v)) - frozenIncident[v]
			if w <= 1e-12*g.Weight(graph.Vertex(v)) {
				zeroFreeze(graph.Vertex(v))
				continue
			}
			if float64(resDeg[v]) >= dGamma {
				high[v] = true
				wres[v] = w
				highIndex[v] = int32(len(highList))
				highList = append(highList, graph.Vertex(v))
			} else {
				numInactive++
			}
		}
		if len(highList) == 0 {
			// Cannot happen while d > 1 (some vertex has degree ≥ d ≥ d^γ),
			// but guard so a degenerate configuration falls through to the
			// final centralized phase instead of looping.
			break
		}

		// Line (2e): machines and iterations for this phase.
		mMach := p.NumMachines(d)
		if mMach < 1 {
			mMach = 1
		}
		if mMach > mTotal {
			mMach = mTotal
		}
		iters := p.PhaseIterations(mMach, eps)
		if iters < 1 {
			iters = 1
		}
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindPhaseStart,
			Phase:       phase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
			Degree:      d,
			Machines:    mMach,
			Iterations:  iters,
		})

		// Line (2c): initial duals on E[V^high] (degree-aware, or the
		// uniform-init ablation).
		highEdges = highEdges[:0]
		uniformBase := 0.0
		if p.UniformInit {
			wmin := math.Inf(1)
			for _, v := range highList {
				wmin = math.Min(wmin, wres[v])
			}
			uniformBase = wmin / float64(n)
		}
		for e := 0; e < mEdges; e++ {
			if edgeFrozen[e] {
				continue
			}
			u, v := epFlat[2*e], epFlat[2*e+1]
			if !high[u] || !high[v] {
				continue
			}
			highEdges = append(highEdges, int32(e))
			if p.UniformInit {
				xPhase[e] = uniformBase
			} else {
				xPhase[e] = math.Min(wres[u]/float64(resDeg[u]), wres[v]/float64(resDeg[v]))
			}
		}

		// Line (2d): thresholds are a pure function of (seed, phase, v, t);
		// Line (2f): so is the partition.
		lo, hi := 1-4*eps, 1-2*eps
		threshold := func(v graph.Vertex, t int) float64 {
			return rng.UniformAt(p.Seed, lo, hi, labelThreshold, uint64(phase), uint64(v), uint64(t))
		}
		if p.FixedThresholds {
			fixed := 1 - 3*eps
			threshold = func(graph.Vertex, int) float64 { return fixed }
		}
		for _, v := range highList {
			machineOf[v] = int32(rng.ChooseAt(p.Seed, mMach, labelPartition, uint64(phase), uint64(v)))
		}

		// ---- MPC execution of the phase ----
		cluster.ResetResident()

		biasCoeff := p.BiasCoefficient
		if p.DisableBias {
			biasCoeff = 0
		}

		// Rounds A0/A1 (aggregate + share): the average residual degree is
		// computed *through the cluster* — each home machine counts its
		// nonfrozen edges, a single fan-in-M tree level combines the counts
		// at machine 0 (the [GSZ11] O(1)-round aggregation primitive; see
		// internal/mpcalg for the general-depth version), and machine 0
		// shares the result with the fleet. The driver cross-checks the
		// aggregated value against its own bookkeeping, so the simulated
		// data path is load-bearing, not decorative.
		err := step(func(mach *mpc.Machine) error {
			id := mach.ID()
			cnt := uint64(0)
			for e := id; e < mEdges; e += mTotal {
				if !edgeFrozen[e] {
					cnt++
				}
			}
			return mach.Send(0, []uint64{tagScalar, cnt})
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d degree aggregation: %w", phase, err)
		}
		err = step(func(mach *mpc.Machine) error {
			if mach.ID() != 0 {
				return nil
			}
			total := uint64(0)
			for _, msg := range mach.Inbox() {
				if len(msg.Data) != 2 || msg.Data[0] != tagScalar {
					return fmt.Errorf("core: malformed degree report from machine %d", msg.From)
				}
				total += msg.Data[1]
			}
			if total != uint64(nonfrozenEdges) {
				return fmt.Errorf("core: aggregated %d nonfrozen edges, driver has %d", total, nonfrozenEdges)
			}
			dv := 2 * float64(total) / float64(n)
			for dst := 0; dst < mTotal; dst++ {
				if err := mach.Send(dst, []uint64{tagScalar, mpc.PutFloat(dv)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d degree share: %w", phase, err)
		}

		// Round A (scatter): home machines verify the shared degree and
		// route co-located induced edges and vertex records to the owning
		// simulation machine.
		err = step(func(mach *mpc.Machine) error {
			id := mach.ID()
			sawScalar := false
			for _, msg := range mach.Inbox() {
				if len(msg.Data) == 2 && msg.Data[0] == tagScalar {
					if got := mpc.GetFloat(msg.Data[1]); math.Abs(got-d) > 1e-9*d {
						return fmt.Errorf("core: machine %d received d=%v, phase uses %v", id, got, d)
					}
					sawScalar = true
				}
			}
			if !sawScalar {
				return fmt.Errorf("core: machine %d missing the shared average degree", id)
			}
			sc := &scratch[id]
			sc.ensure(mTotal)
			vCnt, eCnt := sc.vCnt, sc.eCnt
			vBuf, eBuf := sc.vBuf, sc.eBuf
			// Count records per destination, reserve the total arena volume,
			// then stage each destination's message in place — no
			// intermediate buffers, no copies.
			for dst := 0; dst < mMach; dst++ {
				vCnt[dst] = 0
				eCnt[dst] = 0
			}
			for v := id; v < n; v += mTotal {
				if high[v] {
					vCnt[machineOf[v]]++
				}
			}
			sc.edgeIDs = sc.edgeIDs[:0]
			for e := id; e < mEdges; e += mTotal {
				if edgeFrozen[e] {
					continue
				}
				u, v := epFlat[2*e], epFlat[2*e+1]
				if high[u] && high[v] && machineOf[u] == machineOf[v] {
					eCnt[machineOf[u]]++
					sc.edgeIDs = append(sc.edgeIDs, int32(e))
				}
			}
			total := int64(0)
			for dst := 0; dst < mMach; dst++ {
				if vCnt[dst] > 0 {
					total += 1 + int64(vCnt[dst])*mpc.VertexRecordWords
				}
				if eCnt[dst] > 0 {
					total += 1 + int64(eCnt[dst])*mpc.EdgeRecordWords
				}
			}
			mach.Reserve(total)
			for dst := 0; dst < mMach; dst++ {
				if vCnt[dst] > 0 {
					buf, err := mach.Alloc(dst, 1+int(vCnt[dst])*mpc.VertexRecordWords)
					if err != nil {
						return err
					}
					buf[0] = tagVertex
					vBuf[dst] = buf[1:]
				}
				if eCnt[dst] > 0 {
					buf, err := mach.Alloc(dst, 1+int(eCnt[dst])*mpc.EdgeRecordWords)
					if err != nil {
						return err
					}
					buf[0] = tagEdge
					eBuf[dst] = buf[1:]
				}
				vCnt[dst] = 0 // reuse as write cursor
				eCnt[dst] = 0
			}
			for v := id; v < n; v += mTotal {
				if !high[v] {
					continue
				}
				dst := machineOf[v]
				mpc.SetVertexRecord(vBuf[dst], int(vCnt[dst]), int32(v), wres[v])
				vCnt[dst]++
			}
			for _, e := range sc.edgeIDs {
				u, v := epFlat[2*e], epFlat[2*e+1]
				dst := machineOf[u]
				mpc.SetEdgeRecord(eBuf[dst], int(eCnt[dst]), u, v, xPhase[e])
				eCnt[dst]++
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d scatter: %w", phase, err)
		}

		// Round B (local simulation): each simulation machine materializes
		// its induced subgraph (charged against its memory budget — this is
		// the Lemma 4.1 constraint), runs Lines (2g i–iii), and routes the
		// freeze results to each vertex's home machine.
		for i := range localEdgeCount {
			localEdgeCount[i] = 0
		}
		err = step(func(mach *mpc.Machine) error {
			id := mach.ID()
			inbox := mach.Inbox()
			if id >= mMach {
				if len(inbox) != 0 {
					return fmt.Errorf("core: non-simulation machine %d received %d messages", id, len(inbox))
				}
				return nil
			}
			sc := &scratch[id]
			li := &sc.li
			li.Reset()
			nV, nE := 0, 0
			for _, msg := range inbox {
				if len(msg.Data) == 0 {
					continue
				}
				switch msg.Data[0] {
				case tagVertex:
					nV += (len(msg.Data) - 1) / mpc.VertexRecordWords
				case tagEdge:
					nE += (len(msg.Data) - 1) / mpc.EdgeRecordWords
				}
			}
			li.Grow(nV, nE)
			// localIdx is shared across machines but the partition makes the
			// writes disjoint: only this machine's own vertices are indexed,
			// and they are reset below before the step returns.
			for _, msg := range inbox {
				if len(msg.Data) == 0 || msg.Data[0] != tagVertex {
					continue
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.VertexRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					v, w := mpc.DecodeVertexRecord(body, i)
					localIdx[v] = int32(len(li.VertexIDs))
					li.VertexIDs = append(li.VertexIDs, v)
					li.ResWeight = append(li.ResWeight, w)
				}
			}
			for _, msg := range inbox {
				if len(msg.Data) == 0 || msg.Data[0] != tagEdge {
					continue
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.EdgeRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					u, v, x0 := mpc.DecodeEdgeRecord(body, i)
					lu, lv := localIdx[u], localIdx[v]
					if lu < 0 || lv < 0 {
						return fmt.Errorf("core: machine %d received edge (%d,%d) without both endpoints", id, u, v)
					}
					li.Edges = append(li.Edges, [2]int32{lu, lv})
					li.X0 = append(li.X0, x0)
				}
			}
			if err := mach.Charge(li.Words()); err != nil {
				return err
			}
			localEdgeCount[id] = int64(len(li.Edges))
			freeze := RunLocalSim(li, mMach, iters, eps, biasCoeff, p.BiasGrowth, threshold, &sc.sim)
			// Stage the freeze results per home machine, reusing the scatter
			// counters/buffers (count → Reserve → Alloc → fill, as above).
			rCnt, rBuf := sc.vCnt, sc.vBuf
			for dst := 0; dst < mTotal; dst++ {
				rCnt[dst] = 0
			}
			for _, v := range li.VertexIDs {
				rCnt[int(v)%mTotal]++
			}
			total := int64(0)
			for dst := 0; dst < mTotal; dst++ {
				if rCnt[dst] > 0 {
					total += 1 + int64(rCnt[dst])*mpc.ResultRecordWords
				}
			}
			mach.Reserve(total)
			for dst := 0; dst < mTotal; dst++ {
				if rCnt[dst] > 0 {
					buf, err := mach.Alloc(dst, 1+int(rCnt[dst])*mpc.ResultRecordWords)
					if err != nil {
						return err
					}
					buf[0] = tagResult
					rBuf[dst] = buf[1:]
				}
				rCnt[dst] = 0 // reuse as write cursor
			}
			for i, v := range li.VertexIDs {
				home := int(v) % mTotal
				mpc.SetResultRecord(rBuf[home], int(rCnt[home]), v, freeze[i])
				rCnt[home]++
				localIdx[v] = -1
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d local simulation: %w", phase, err)
		}

		// Round C (collect): home machines record the freeze iteration of
		// their vertices. Writes are disjoint by construction (one home per
		// vertex), so the shared slice is race-free.
		for _, v := range highList {
			freezeIterShared[v] = noFreeze
		}
		err = step(func(mach *mpc.Machine) error {
			for _, msg := range mach.Inbox() {
				if len(msg.Data) == 0 || msg.Data[0] != tagResult {
					return fmt.Errorf("core: machine %d: unexpected tag in collect round", mach.ID())
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.ResultRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					v, fi := mpc.DecodeResultRecord(body, i)
					if int(v)%mTotal != mach.ID() {
						return fmt.Errorf("core: result for vertex %d misrouted to machine %d", v, mach.ID())
					}
					freezeIterShared[v] = int32(fi)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d collect: %w", phase, err)
		}

		// Optional coupling capture — must happen before Line (2h) rescales
		// xPhase in place.
		if p.CollectCoupling {
			cp := CouplingPhase{
				Phase:      phase,
				Machines:   mMach,
				Iterations: iters,
				High:       append([]graph.Vertex(nil), highList...),
			}
			cp.ResidualWeight = make([]float64, len(highList))
			cp.MachineOf = make([]int, len(highList))
			cp.FreezeIter = make([]int, len(highList))
			for i, v := range highList {
				cp.ResidualWeight[i] = wres[v]
				cp.MachineOf[i] = int(machineOf[v])
				cp.FreezeIter[i] = int(freezeIterShared[v])
			}
			cp.Edges = make([][2]int32, len(highEdges))
			cp.X0 = make([]float64, len(highEdges))
			for i, e := range highEdges {
				u, v := epFlat[2*e], epFlat[2*e+1]
				cp.Edges[i] = [2]int32{highIndex[u], highIndex[v]}
				cp.X0[i] = xPhase[e]
			}
			res.Coupling = append(res.Coupling, cp)
		}

		// Line (2h): every edge of E[V^high] gets the weight implied by the
		// earliest endpoint freeze (t′ = I when both stayed active).
		if cap(pow) < iters+1 {
			pow = make([]float64, iters+1)
		} else {
			pow = pow[:iters+1]
		}
		pow[0] = 1
		for t := 1; t <= iters; t++ {
			pow[t] = pow[t-1] * growth
		}
		fiOf := func(v graph.Vertex) int {
			if fi := freezeIterShared[v]; fi >= 0 {
				return int(fi)
			}
			return iters
		}
		for _, e := range highEdges {
			u, v := epFlat[2*e], epFlat[2*e+1]
			t := fiOf(u)
			if tv := fiOf(v); tv < t {
				t = tv
			}
			xPhase[e] *= pow[t]
		}

		// Freeze set 1: vertices frozen by their local simulation.
		newlyFrozen = newlyFrozen[:0]
		for _, v := range highList {
			if freezeIterShared[v] >= 0 {
				newlyFrozen = append(newlyFrozen, v)
			}
		}
		frozenAtSim := len(newlyFrozen)

		// Line (2i): vertices whose incident E[V^high] weight already
		// exceeds their residual weight freeze too, so residuals stay
		// nonnegative in later phases.
		for _, v := range highList {
			yMPC[v] = 0
		}
		for _, e := range highEdges {
			u, v := epFlat[2*e], epFlat[2*e+1]
			yMPC[u] += xPhase[e]
			yMPC[v] += xPhase[e]
		}
		frozenAt2i := 0
		for _, v := range highList {
			if freezeIterShared[v] < 0 && yMPC[v] >= wres[v]*(1-1e-12) {
				newlyFrozen = append(newlyFrozen, v)
				frozenAt2i++
			}
		}
		for _, v := range newlyFrozen {
			frozen[v] = true
		}

		// Finalize edges: E[V^high] edges with a frozen endpoint keep their
		// Line (2h) weight; Line (2j) freezes V^inactive-side edges at 0.
		for _, e := range highEdges {
			u, v := epFlat[2*e], epFlat[2*e+1]
			if frozen[u] || frozen[v] {
				edgeFrozen[e] = true
				xFinal[e] = xPhase[e]
				frozenIncident[u] += xPhase[e]
				frozenIncident[v] += xPhase[e]
				dualSum += xPhase[e]
			}
		}
		for _, v := range newlyFrozen {
			for _, e := range g.IncidentEdges(v) {
				if !edgeFrozen[e] {
					edgeFrozen[e] = true
					xFinal[e] = 0
				}
			}
		}

		// Line (2k): recompute residual degrees and the nonfrozen edge count.
		edgesBefore := nonfrozenEdges
		for v := 0; v < n; v++ {
			resDeg[v] = 0
		}
		nonfrozenEdges = 0
		for e := 0; e < mEdges; e++ {
			if edgeFrozen[e] {
				continue
			}
			u, v := epFlat[2*e], epFlat[2*e+1]
			resDeg[u]++
			resDeg[v]++
			nonfrozenEdges++
		}

		if float64(nonfrozenEdges) > 0.99*float64(edgesBefore) {
			stalls++
		} else {
			stalls = 0
		}

		maxLocalEdges, totalLocalEdges := int64(0), int64(0)
		for _, c := range localEdgeCount {
			totalLocalEdges += c
			if c > maxLocalEdges {
				maxLocalEdges = c
			}
		}
		res.PhaseStats = append(res.PhaseStats, PhaseStat{
			Phase:               phase,
			AvgDegree:           d,
			NumNonfrozen:        numNonfrozen,
			NumHigh:             len(highList),
			NumInactive:         numInactive,
			Machines:            mMach,
			Iterations:          iters,
			MaxMachineEdges:     int(maxLocalEdges),
			TotalMachineEdges:   totalLocalEdges,
			MaxMachineWords:     cluster.Metrics().MaxResidentWords,
			EdgesBefore:         edgesBefore,
			EdgesAfter:          nonfrozenEdges,
			DecayBound:          float64(n)*d*math.Pow(1-eps, float64(iters)) + float64(n)*dGamma,
			NewlyFrozenVertices: frozenAtSim + frozenAt2i,
			FrozenAtLine2i:      frozenAt2i,
		})
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindPhaseEnd,
			Phase:       phase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
			Degree:      d,
			Machines:    mMach,
			Iterations:  iters,
		})
	}
	curPhase = -1
	res.Phases = phase

	// Line (3): the residual instance moves to one machine (the gather is
	// one more round, and the memory charge enforces that it fits) and the
	// centralized algorithm finishes it.
	active := make([]bool, n)
	wresAll := make([]float64, n)
	numActive := 0
	for v := 0; v < n; v++ {
		if frozen[v] {
			continue
		}
		w := g.Weight(graph.Vertex(v)) - frozenIncident[v]
		if w <= 1e-12*g.Weight(graph.Vertex(v)) {
			zeroFreeze(graph.Vertex(v))
			continue
		}
		active[v] = true
		wresAll[v] = w
		numActive++
	}
	var finalEdges int64
	for e := 0; e < mEdges; e++ {
		if !edgeFrozen[e] {
			finalEdges++
		}
	}
	res.FinalPhaseEdges = finalEdges
	cluster.ResetResident()
	err = step(func(mach *mpc.Machine) error {
		if mach.ID() == 0 {
			return mach.Charge(finalEdges*mpc.EdgeRecordWords + int64(numActive)*mpc.VertexRecordWords)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: final gather: %w", err)
	}

	finalInit := centralized.InitDegreeAware
	if p.UniformInit {
		finalInit = centralized.InitUniform
	}
	var finalThreshold centralized.ThresholdFunc
	if p.FixedThresholds {
		finalThreshold = centralized.FixedThreshold(eps)
	} else {
		lo, hi := 1-4*eps, 1-2*eps
		fp := uint64(phase)
		finalThreshold = func(v graph.Vertex, t int) float64 {
			return rng.UniformAt(p.Seed, lo, hi, labelThreshold, fp, uint64(v), uint64(t))
		}
	}
	cres, err := centralized.Run(ctx,
		centralized.Instance{G: g, Active: active, Weights: wresAll},
		centralized.Options{Epsilon: eps, Init: finalInit, Threshold: finalThreshold},
	)
	if err != nil {
		return nil, fmt.Errorf("core: final centralized phase: %w", err)
	}
	res.FinalPhaseIterations = cres.Iterations
	// The LOCAL algorithm runs inside one machine, so its iterations cost no
	// additional communication rounds.
	for v := 0; v < n; v++ {
		if cres.Cover[v] {
			frozen[v] = true
		}
	}
	for e := 0; e < mEdges; e++ {
		if !edgeFrozen[e] {
			edgeFrozen[e] = true
			xFinal[e] = cres.X[e]
			dualSum += cres.X[e]
		}
	}
	solver.Emit(obs, solver.Event{
		Kind:       solver.KindFinalPhase,
		Phase:      -1,
		Round:      cluster.Metrics().Rounds,
		DualBound:  dualSum,
		Iterations: cres.Iterations,
	})

	res.ClusterMetrics = cluster.Metrics()
	res.Rounds = res.ClusterMetrics.Rounds
	sortPhaseStats(res.PhaseStats)
	return res, nil
}

func sortPhaseStats(ps []PhaseStat) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Phase < ps[j].Phase })
}
