package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/centralized"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Message tags distinguishing record kinds within a round's payloads.
const (
	tagVertex uint64 = 1
	tagEdge   uint64 = 2
	tagResult uint64 = 3
	tagScalar uint64 = 4
)

// Labels for derived randomness. Partition and threshold draws are pure
// functions of (seed, label, phase, vertex[, iteration]), which is what lets
// the coupling experiments replay a phase with identical randomness.
const (
	labelPartition uint64 = 'P'
	labelThreshold uint64 = 'T'
)

// noFreeze marks a vertex that stayed active through a local simulation.
const noFreeze = -1

// Run executes Algorithm 2 on g and returns the cover, the finalized dual
// weights, and the per-phase measurements. The context is checked between
// phases, between cluster rounds, and inside the final centralized phase, so
// a cancellation or deadline ends the solve promptly with ctx.Err().
func Run(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	mEdges := g.NumEdges()
	eps := p.Epsilon
	growth := 1 / (1 - eps)

	res := &Result{
		Cover: make([]bool, n),
		X:     make([]float64, mEdges),
	}
	if n == 0 {
		return res, nil
	}

	// Algorithm state. frozenIncident[v] accumulates Σ_{e∋v frozen} x_e so
	// that w′(v) = w(v) − frozenIncident[v] (Line 2b).
	frozen := res.Cover
	xFinal := res.X
	edgeFrozen := make([]bool, mEdges)
	frozenIncident := make([]float64, n)
	resDeg := make([]int, n)
	nonfrozenEdges := int64(mEdges)
	for v := 0; v < n; v++ {
		resDeg[v] = g.Degree(graph.Vertex(v))
	}

	// Defensive freeze for a vertex whose residual weight has been exhausted
	// (mathematically prevented by Line 2i; guarded against float drift).
	// Its remaining nonfrozen edges finalize at 0, like Line 2j.
	zeroFreeze := func(v graph.Vertex) {
		frozen[v] = true
		for _, e := range g.IncidentEdges(v) {
			if !edgeFrozen[e] {
				edgeFrozen[e] = true
				xFinal[e] = 0
			}
		}
	}

	// Cluster sizing: the simulation uses m = √d machines per phase, but the
	// cluster also holds the input edges (round-robin), so it needs enough
	// machines that no home machine's share exceeds a quarter of its memory.
	memWords := p.MemoryWords(n)
	maxEdgesPerHome := memWords / (4 * mpc.EdgeRecordWords)
	if maxEdgesPerHome < 1 {
		return nil, fmt.Errorf("core: machine memory %d words cannot hold any edges", memWords)
	}
	d0 := 2 * float64(nonfrozenEdges) / float64(n)
	mTotal := p.NumMachines(d0)
	if need := int((int64(mEdges) + maxEdgesPerHome - 1) / maxEdgesPerHome); need > mTotal {
		mTotal = need
	}
	if mTotal < 2 {
		mTotal = 2
	}
	// The per-phase degree aggregation is a single fan-in-M tree level, so
	// machine 0 receives 2·M words; cap the fleet so that always fits in a
	// quarter of its budget. The cap can only bind below the edge-holding
	// requirement when S² < 96·|E|, which Õ(n) memory always avoids.
	if maxFleet := int(memWords / 8); mTotal > maxFleet {
		if need := int((int64(mEdges) + maxEdgesPerHome - 1) / maxEdgesPerHome); need > maxFleet {
			return nil, fmt.Errorf("core: memory %d words per machine cannot host both the input (%d machines needed) and the aggregation fan-in (max %d)", memWords, need, maxFleet)
		}
		mTotal = maxFleet
	}
	cluster, err := mpc.NewCluster(mpc.Config{
		Machines:    mTotal,
		MemoryWords: memWords,
		Parallelism: p.Parallelism,
	})
	if err != nil {
		return nil, err
	}

	maxPhases := p.MaxPhases
	if maxPhases == 0 {
		maxPhases = 64
	}

	// Observability: dualSum accumulates Σ x_e over finalized edges (the raw
	// dual total that FeasibleDual later rescales into a certified bound);
	// curPhase scopes round events to the running phase (-1 outside phases).
	obs := p.Observer
	dualSum := 0.0
	curPhase := -1
	// step executes one accounted cluster round with a context check before
	// it and a KindRound event after it, so the number of round events equals
	// Result.Rounds exactly.
	step := func(fn mpc.StepFunc) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := cluster.Round(fn); err != nil {
			return err
		}
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindRound,
			Phase:       curPhase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
		})
		return nil
	}

	// Reused per-phase scratch.
	high := make([]bool, n)
	highIndex := make([]int32, n)
	wres := make([]float64, n)
	machineOf := make([]int32, n)
	freezeIterShared := make([]int32, n)
	yMPC := make([]float64, n)
	xPhase := make([]float64, mEdges)
	var highList []graph.Vertex
	var highEdges []int32

	phase := 0
	stalls := 0
	for ; ; phase++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		curPhase = phase
		d := 2 * float64(nonfrozenEdges) / float64(n)
		if d <= p.SwitchThreshold(n) {
			break
		}
		// Stall fallback: if sampled phases stop making progress (which the
		// ablations deliberately provoke — e.g. uniform initialization
		// resets the duals every phase and can never reach any threshold
		// within I iterations), hand the residual instance to the final
		// centralized phase instead of spinning. The memory charge there
		// still enforces that the fallback is legitimate.
		if stalls >= 3 {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("core: no convergence after %d phases (d=%.1f)", phase, d)
		}

		// Lines (2a)/(2b): classify nonfrozen vertices and compute residual
		// weights for V^high.
		dGamma := math.Pow(d, p.HighDegreeExponent)
		if p.DisableInactiveSplit {
			dGamma = 1 // every nonfrozen vertex with an edge is "high"
		}
		highList = highList[:0]
		numInactive := 0
		numNonfrozen := 0
		for v := 0; v < n; v++ {
			high[v] = false
			if frozen[v] {
				continue
			}
			numNonfrozen++
			if resDeg[v] == 0 {
				continue
			}
			w := g.Weight(graph.Vertex(v)) - frozenIncident[v]
			if w <= 1e-12*g.Weight(graph.Vertex(v)) {
				zeroFreeze(graph.Vertex(v))
				continue
			}
			if float64(resDeg[v]) >= dGamma {
				high[v] = true
				wres[v] = w
				highIndex[v] = int32(len(highList))
				highList = append(highList, graph.Vertex(v))
			} else {
				numInactive++
			}
		}
		if len(highList) == 0 {
			// Cannot happen while d > 1 (some vertex has degree ≥ d ≥ d^γ),
			// but guard so a degenerate configuration falls through to the
			// final centralized phase instead of looping.
			break
		}

		// Line (2e): machines and iterations for this phase.
		mMach := p.NumMachines(d)
		if mMach < 1 {
			mMach = 1
		}
		if mMach > mTotal {
			mMach = mTotal
		}
		iters := p.PhaseIterations(mMach, eps)
		if iters < 1 {
			iters = 1
		}
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindPhaseStart,
			Phase:       phase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
			Degree:      d,
			Machines:    mMach,
			Iterations:  iters,
		})

		// Line (2c): initial duals on E[V^high] (degree-aware, or the
		// uniform-init ablation).
		highEdges = highEdges[:0]
		uniformBase := 0.0
		if p.UniformInit {
			wmin := math.Inf(1)
			for _, v := range highList {
				wmin = math.Min(wmin, wres[v])
			}
			uniformBase = wmin / float64(n)
		}
		for e := 0; e < mEdges; e++ {
			if edgeFrozen[e] {
				continue
			}
			u, v := g.Edge(graph.EdgeID(e))
			if !high[u] || !high[v] {
				continue
			}
			highEdges = append(highEdges, int32(e))
			if p.UniformInit {
				xPhase[e] = uniformBase
			} else {
				xPhase[e] = math.Min(wres[u]/float64(resDeg[u]), wres[v]/float64(resDeg[v]))
			}
		}

		// Line (2d): thresholds are a pure function of (seed, phase, v, t);
		// Line (2f): so is the partition.
		lo, hi := 1-4*eps, 1-2*eps
		threshold := func(v graph.Vertex, t int) float64 {
			return rng.UniformAt(p.Seed, lo, hi, labelThreshold, uint64(phase), uint64(v), uint64(t))
		}
		if p.FixedThresholds {
			fixed := 1 - 3*eps
			threshold = func(graph.Vertex, int) float64 { return fixed }
		}
		for _, v := range highList {
			machineOf[v] = int32(rng.ChooseAt(p.Seed, mMach, labelPartition, uint64(phase), uint64(v)))
		}

		// ---- MPC execution of the phase ----
		cluster.ResetResident()

		biasCoeff := p.BiasCoefficient
		if p.DisableBias {
			biasCoeff = 0
		}

		// Rounds A0/A1 (aggregate + share): the average residual degree is
		// computed *through the cluster* — each home machine counts its
		// nonfrozen edges, a single fan-in-M tree level combines the counts
		// at machine 0 (the [GSZ11] O(1)-round aggregation primitive; see
		// internal/mpcalg for the general-depth version), and machine 0
		// shares the result with the fleet. The driver cross-checks the
		// aggregated value against its own bookkeeping, so the simulated
		// data path is load-bearing, not decorative.
		err := step(func(mach *mpc.Machine) error {
			id := mach.ID()
			cnt := uint64(0)
			for e := id; e < mEdges; e += mTotal {
				if !edgeFrozen[e] {
					cnt++
				}
			}
			return mach.Send(0, []uint64{tagScalar, cnt})
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d degree aggregation: %w", phase, err)
		}
		err = step(func(mach *mpc.Machine) error {
			if mach.ID() != 0 {
				return nil
			}
			total := uint64(0)
			for _, msg := range mach.Inbox() {
				if len(msg.Data) != 2 || msg.Data[0] != tagScalar {
					return fmt.Errorf("core: malformed degree report from machine %d", msg.From)
				}
				total += msg.Data[1]
			}
			if total != uint64(nonfrozenEdges) {
				return fmt.Errorf("core: aggregated %d nonfrozen edges, driver has %d", total, nonfrozenEdges)
			}
			dv := 2 * float64(total) / float64(n)
			for dst := 0; dst < mTotal; dst++ {
				if err := mach.Send(dst, []uint64{tagScalar, mpc.PutFloat(dv)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d degree share: %w", phase, err)
		}

		// Round A (scatter): home machines verify the shared degree and
		// route co-located induced edges and vertex records to the owning
		// simulation machine.
		err = step(func(mach *mpc.Machine) error {
			id := mach.ID()
			sawScalar := false
			for _, msg := range mach.Inbox() {
				if len(msg.Data) == 2 && msg.Data[0] == tagScalar {
					if got := mpc.GetFloat(msg.Data[1]); math.Abs(got-d) > 1e-9*d {
						return fmt.Errorf("core: machine %d received d=%v, phase uses %v", id, got, d)
					}
					sawScalar = true
				}
			}
			if !sawScalar {
				return fmt.Errorf("core: machine %d missing the shared average degree", id)
			}
			vb := make([][]uint64, mMach)
			for v := id; v < n; v += mTotal {
				if !high[v] {
					continue
				}
				dst := machineOf[v]
				if vb[dst] == nil {
					vb[dst] = append(make([]uint64, 0, 64), tagVertex)
				}
				vb[dst] = mpc.AppendVertexRecord(vb[dst], int32(v), wres[v])
			}
			eb := make([][]uint64, mMach)
			for e := id; e < mEdges; e += mTotal {
				if edgeFrozen[e] {
					continue
				}
				u, v := g.Edge(graph.EdgeID(e))
				if !high[u] || !high[v] || machineOf[u] != machineOf[v] {
					continue
				}
				dst := machineOf[u]
				if eb[dst] == nil {
					eb[dst] = append(make([]uint64, 0, 64), tagEdge)
				}
				eb[dst] = mpc.AppendEdgeRecord(eb[dst], u, v, xPhase[e])
			}
			for dst := 0; dst < mMach; dst++ {
				if vb[dst] != nil {
					if err := mach.Send(dst, vb[dst]); err != nil {
						return err
					}
				}
				if eb[dst] != nil {
					if err := mach.Send(dst, eb[dst]); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d scatter: %w", phase, err)
		}

		// Round B (local simulation): each simulation machine materializes
		// its induced subgraph (charged against its memory budget — this is
		// the Lemma 4.1 constraint), runs Lines (2g i–iii), and routes the
		// freeze results to each vertex's home machine.
		localEdgeCount := make([]int64, mTotal)
		err = step(func(mach *mpc.Machine) error {
			id := mach.ID()
			inbox := mach.Inbox()
			if id >= mMach {
				if len(inbox) != 0 {
					return fmt.Errorf("core: non-simulation machine %d received %d messages", id, len(inbox))
				}
				return nil
			}
			li := &localInstance{}
			local := make(map[graph.Vertex]int32)
			for _, msg := range inbox {
				if len(msg.Data) == 0 || msg.Data[0] != tagVertex {
					continue
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.VertexRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					v, w := mpc.DecodeVertexRecord(body, i)
					local[v] = int32(len(li.vertexIDs))
					li.vertexIDs = append(li.vertexIDs, v)
					li.resWeight = append(li.resWeight, w)
				}
			}
			for _, msg := range inbox {
				if len(msg.Data) == 0 || msg.Data[0] != tagEdge {
					continue
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.EdgeRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					u, v, x0 := mpc.DecodeEdgeRecord(body, i)
					lu, ok1 := local[u]
					lv, ok2 := local[v]
					if !ok1 || !ok2 {
						return fmt.Errorf("core: machine %d received edge (%d,%d) without both endpoints", id, u, v)
					}
					li.edges = append(li.edges, [2]int32{lu, lv})
					li.x0 = append(li.x0, x0)
				}
			}
			if err := mach.Charge(li.words()); err != nil {
				return err
			}
			localEdgeCount[id] = int64(len(li.edges))
			freeze := runLocalSim(li, mMach, iters, eps, biasCoeff, p.BiasGrowth, threshold)
			out := make([][]uint64, mTotal)
			for i, v := range li.vertexIDs {
				home := int(v) % mTotal
				if out[home] == nil {
					out[home] = append(make([]uint64, 0, 32), tagResult)
				}
				out[home] = mpc.AppendResultRecord(out[home], v, freeze[i])
			}
			for dst, data := range out {
				if data != nil {
					if err := mach.Send(dst, data); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d local simulation: %w", phase, err)
		}

		// Round C (collect): home machines record the freeze iteration of
		// their vertices. Writes are disjoint by construction (one home per
		// vertex), so the shared slice is race-free.
		for _, v := range highList {
			freezeIterShared[v] = noFreeze
		}
		err = step(func(mach *mpc.Machine) error {
			for _, msg := range mach.Inbox() {
				if len(msg.Data) == 0 || msg.Data[0] != tagResult {
					return fmt.Errorf("core: machine %d: unexpected tag in collect round", mach.ID())
				}
				body := msg.Data[1:]
				cnt, err := mpc.CheckRecordCount(body, mpc.ResultRecordWords)
				if err != nil {
					return err
				}
				for i := 0; i < cnt; i++ {
					v, fi := mpc.DecodeResultRecord(body, i)
					if int(v)%mTotal != mach.ID() {
						return fmt.Errorf("core: result for vertex %d misrouted to machine %d", v, mach.ID())
					}
					freezeIterShared[v] = int32(fi)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase %d collect: %w", phase, err)
		}

		// Optional coupling capture — must happen before Line (2h) rescales
		// xPhase in place.
		if p.CollectCoupling {
			cp := CouplingPhase{
				Phase:      phase,
				Machines:   mMach,
				Iterations: iters,
				High:       append([]graph.Vertex(nil), highList...),
			}
			cp.ResidualWeight = make([]float64, len(highList))
			cp.MachineOf = make([]int, len(highList))
			cp.FreezeIter = make([]int, len(highList))
			for i, v := range highList {
				cp.ResidualWeight[i] = wres[v]
				cp.MachineOf[i] = int(machineOf[v])
				cp.FreezeIter[i] = int(freezeIterShared[v])
			}
			cp.Edges = make([][2]int32, len(highEdges))
			cp.X0 = make([]float64, len(highEdges))
			for i, e := range highEdges {
				u, v := g.Edge(graph.EdgeID(e))
				cp.Edges[i] = [2]int32{highIndex[u], highIndex[v]}
				cp.X0[i] = xPhase[e]
			}
			res.Coupling = append(res.Coupling, cp)
		}

		// Line (2h): every edge of E[V^high] gets the weight implied by the
		// earliest endpoint freeze (t′ = I when both stayed active).
		pow := make([]float64, iters+1)
		pow[0] = 1
		for t := 1; t <= iters; t++ {
			pow[t] = pow[t-1] * growth
		}
		fiOf := func(v graph.Vertex) int {
			if fi := freezeIterShared[v]; fi >= 0 {
				return int(fi)
			}
			return iters
		}
		for _, e := range highEdges {
			u, v := g.Edge(graph.EdgeID(e))
			t := fiOf(u)
			if tv := fiOf(v); tv < t {
				t = tv
			}
			xPhase[e] *= pow[t]
		}

		// Freeze set 1: vertices frozen by their local simulation.
		var newlyFrozen []graph.Vertex
		for _, v := range highList {
			if freezeIterShared[v] >= 0 {
				newlyFrozen = append(newlyFrozen, v)
			}
		}
		frozenAtSim := len(newlyFrozen)

		// Line (2i): vertices whose incident E[V^high] weight already
		// exceeds their residual weight freeze too, so residuals stay
		// nonnegative in later phases.
		for _, v := range highList {
			yMPC[v] = 0
		}
		for _, e := range highEdges {
			u, v := g.Edge(graph.EdgeID(e))
			yMPC[u] += xPhase[e]
			yMPC[v] += xPhase[e]
		}
		frozenAt2i := 0
		for _, v := range highList {
			if freezeIterShared[v] < 0 && yMPC[v] >= wres[v]*(1-1e-12) {
				newlyFrozen = append(newlyFrozen, v)
				frozenAt2i++
			}
		}
		for _, v := range newlyFrozen {
			frozen[v] = true
		}

		// Finalize edges: E[V^high] edges with a frozen endpoint keep their
		// Line (2h) weight; Line (2j) freezes V^inactive-side edges at 0.
		for _, e := range highEdges {
			u, v := g.Edge(graph.EdgeID(e))
			if frozen[u] || frozen[v] {
				edgeFrozen[e] = true
				xFinal[e] = xPhase[e]
				frozenIncident[u] += xPhase[e]
				frozenIncident[v] += xPhase[e]
				dualSum += xPhase[e]
			}
		}
		for _, v := range newlyFrozen {
			for _, e := range g.IncidentEdges(v) {
				if !edgeFrozen[e] {
					edgeFrozen[e] = true
					xFinal[e] = 0
				}
			}
		}

		// Line (2k): recompute residual degrees and the nonfrozen edge count.
		edgesBefore := nonfrozenEdges
		for v := 0; v < n; v++ {
			resDeg[v] = 0
		}
		nonfrozenEdges = 0
		for e := 0; e < mEdges; e++ {
			if edgeFrozen[e] {
				continue
			}
			u, v := g.Edge(graph.EdgeID(e))
			resDeg[u]++
			resDeg[v]++
			nonfrozenEdges++
		}

		if float64(nonfrozenEdges) > 0.99*float64(edgesBefore) {
			stalls++
		} else {
			stalls = 0
		}

		maxLocalEdges, totalLocalEdges := int64(0), int64(0)
		for _, c := range localEdgeCount {
			totalLocalEdges += c
			if c > maxLocalEdges {
				maxLocalEdges = c
			}
		}
		res.PhaseStats = append(res.PhaseStats, PhaseStat{
			Phase:               phase,
			AvgDegree:           d,
			NumNonfrozen:        numNonfrozen,
			NumHigh:             len(highList),
			NumInactive:         numInactive,
			Machines:            mMach,
			Iterations:          iters,
			MaxMachineEdges:     int(maxLocalEdges),
			TotalMachineEdges:   totalLocalEdges,
			MaxMachineWords:     cluster.Metrics().MaxResidentWords,
			EdgesBefore:         edgesBefore,
			EdgesAfter:          nonfrozenEdges,
			DecayBound:          float64(n)*d*math.Pow(1-eps, float64(iters)) + float64(n)*dGamma,
			NewlyFrozenVertices: frozenAtSim + frozenAt2i,
			FrozenAtLine2i:      frozenAt2i,
		})
		solver.Emit(obs, solver.Event{
			Kind:        solver.KindPhaseEnd,
			Phase:       phase,
			Round:       cluster.Metrics().Rounds,
			ActiveEdges: nonfrozenEdges,
			DualBound:   dualSum,
			Degree:      d,
			Machines:    mMach,
			Iterations:  iters,
		})
	}
	curPhase = -1
	res.Phases = phase

	// Line (3): the residual instance moves to one machine (the gather is
	// one more round, and the memory charge enforces that it fits) and the
	// centralized algorithm finishes it.
	active := make([]bool, n)
	wresAll := make([]float64, n)
	numActive := 0
	for v := 0; v < n; v++ {
		if frozen[v] {
			continue
		}
		w := g.Weight(graph.Vertex(v)) - frozenIncident[v]
		if w <= 1e-12*g.Weight(graph.Vertex(v)) {
			zeroFreeze(graph.Vertex(v))
			continue
		}
		active[v] = true
		wresAll[v] = w
		numActive++
	}
	var finalEdges int64
	for e := 0; e < mEdges; e++ {
		if !edgeFrozen[e] {
			finalEdges++
		}
	}
	res.FinalPhaseEdges = finalEdges
	cluster.ResetResident()
	err = step(func(mach *mpc.Machine) error {
		if mach.ID() == 0 {
			return mach.Charge(finalEdges*mpc.EdgeRecordWords + int64(numActive)*mpc.VertexRecordWords)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: final gather: %w", err)
	}

	finalInit := centralized.InitDegreeAware
	if p.UniformInit {
		finalInit = centralized.InitUniform
	}
	var finalThreshold centralized.ThresholdFunc
	if p.FixedThresholds {
		finalThreshold = centralized.FixedThreshold(eps)
	} else {
		lo, hi := 1-4*eps, 1-2*eps
		fp := uint64(phase)
		finalThreshold = func(v graph.Vertex, t int) float64 {
			return rng.UniformAt(p.Seed, lo, hi, labelThreshold, fp, uint64(v), uint64(t))
		}
	}
	cres, err := centralized.Run(ctx,
		centralized.Instance{G: g, Active: active, Weights: wresAll},
		centralized.Options{Epsilon: eps, Init: finalInit, Threshold: finalThreshold},
	)
	if err != nil {
		return nil, fmt.Errorf("core: final centralized phase: %w", err)
	}
	res.FinalPhaseIterations = cres.Iterations
	// The LOCAL algorithm runs inside one machine, so its iterations cost no
	// additional communication rounds.
	for v := 0; v < n; v++ {
		if cres.Cover[v] {
			frozen[v] = true
		}
	}
	for e := 0; e < mEdges; e++ {
		if !edgeFrozen[e] {
			edgeFrozen[e] = true
			xFinal[e] = cres.X[e]
			dualSum += cres.X[e]
		}
	}
	solver.Emit(obs, solver.Event{
		Kind:       solver.KindFinalPhase,
		Phase:      -1,
		Round:      cluster.Metrics().Rounds,
		DualBound:  dualSum,
		Iterations: cres.Iterations,
	})

	res.ClusterMetrics = cluster.Metrics()
	res.Rounds = res.ClusterMetrics.Rounds
	sortPhaseStats(res.PhaseStats)
	return res, nil
}

func sortPhaseStats(ps []PhaseStat) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Phase < ps[j].Phase })
}
