package core

import (
	"math"

	"repro/internal/graph"
)

// localInstance is the subproblem one machine simulates in a phase: the
// subgraph induced by its partition class V_i, with residual weights and
// initial duals computed at the phase start.
type localInstance struct {
	// vertexIDs holds the global ids of the machine's vertices; all other
	// slices are indexed by position in this list.
	vertexIDs []graph.Vertex
	// resWeight[i] is w′(vertexIDs[i]).
	resWeight []float64
	// edges are local index pairs; x0 their initial dual values.
	edges [][2]int32
	x0    []float64
}

// words returns the MPC memory footprint of the instance.
func (li *localInstance) words() int64 {
	return int64(len(li.edges))*3 + int64(len(li.vertexIDs))*2
}

// runLocalSim executes Lines (2g i–iii): I iterations of the centralized
// primal–dual scheme on the local subgraph, with the freeze test replaced by
// the biased estimator
//
//	ỹ_{v,t} = biasCoeff·m^{−0.2}·biasGrowth^t·w′(v) + m·Σ_{e∋v, e∈E[V_i]} x_{e,t}.
//
// The m· factor turns the local incident sum into an (essentially unbiased)
// estimate of the full-graph incident sum — each incident edge of v survives
// the partition with probability 1/m — and the additive bias makes the
// error one-sided w.h.p. (Section 3.2, "Other changes in our analysis").
//
// Note the w′(v) factor: the paper's Line (2g i) prints the bias as the
// absolute quantity 2m^{−0.2}·15^t, but its own analysis (Definition 4.9 is
// compared against thresholds T·w′(v); Corollary 4.12 and Lemma 4.13 bound
// ỹ−y by multiples of m^{−0.2}·15^t·w′(v)) requires the bias to scale with
// the residual weight — with vertex weights all equal to 1 the two forms
// coincide, which is presumably how the omission slipped through. We
// implement the w′(v)-scaled form; DESIGN.md records the correction.
//
// It returns, per local vertex, the iteration at which it froze (or -1).
func runLocalSim(li *localInstance, machines, iterations int, epsilon, biasCoeff, biasGrowth float64,
	threshold func(v graph.Vertex, t int) float64) []int {

	nv := len(li.vertexIDs)
	freezeIter := make([]int, nv)
	for i := range freezeIter {
		freezeIter[i] = -1
	}
	if iterations <= 0 {
		return freezeIter
	}

	// Adjacency over local edges.
	type slot struct {
		edge  int32
		other int32
	}
	adjOff := make([]int32, nv+1)
	for _, e := range li.edges {
		adjOff[e[0]+1]++
		adjOff[e[1]+1]++
	}
	for i := 0; i < nv; i++ {
		adjOff[i+1] += adjOff[i]
	}
	adj := make([]slot, len(li.edges)*2)
	cursor := make([]int32, nv)
	copy(cursor, adjOff[:nv])
	for ei, e := range li.edges {
		u, v := e[0], e[1]
		adj[cursor[u]] = slot{edge: int32(ei), other: v}
		cursor[u]++
		adj[cursor[v]] = slot{edge: int32(ei), other: u}
		cursor[v]++
	}

	growth := 1 / (1 - epsilon)
	mf := float64(machines)
	biasBase := biasCoeff * math.Pow(mf, -0.2)

	// Incremental incident sums, split into the part that still grows and
	// the part frozen at its final value (same scheme as the centralized
	// implementation).
	x := append([]float64(nil), li.x0...)
	edgeActive := make([]bool, len(li.edges))
	sumActive := make([]float64, nv)
	sumFrozen := make([]float64, nv)
	for ei, e := range li.edges {
		edgeActive[ei] = true
		sumActive[e[0]] += x[ei]
		sumActive[e[1]] += x[ei]
	}
	active := make([]bool, nv)
	for i := range active {
		active[i] = true
	}

	var freezeList []int32
	bias := biasBase
	for t := 0; t < iterations; t++ {
		// Line (2g i): simultaneous freeze test with the biased estimator.
		freezeList = freezeList[:0]
		for i := 0; i < nv; i++ {
			if !active[i] {
				continue
			}
			est := bias*li.resWeight[i] + mf*(sumActive[i]+sumFrozen[i])
			if est >= threshold(li.vertexIDs[i], t)*li.resWeight[i] {
				freezeList = append(freezeList, int32(i))
			}
		}
		for _, i := range freezeList {
			active[i] = false
			freezeIter[i] = t
		}
		for _, i := range freezeList {
			for _, s := range adj[adjOff[i]:adjOff[i+1]] {
				if !edgeActive[s.edge] {
					continue
				}
				edgeActive[s.edge] = false
				xe := x[s.edge]
				sumActive[i] -= xe
				sumFrozen[i] += xe
				sumActive[s.other] -= xe
				sumFrozen[s.other] += xe
			}
		}
		// Lines (2g ii–iii): active edges grow, frozen edges stay.
		for ei := range li.edges {
			if edgeActive[ei] {
				x[ei] *= growth
			}
		}
		for i := 0; i < nv; i++ {
			if active[i] {
				sumActive[i] *= growth
			}
		}
		bias *= biasGrowth
	}
	return freezeIter
}
