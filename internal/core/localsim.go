package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/mpc"
)

// LocalInstance is the subproblem one machine simulates in a phase: the
// subgraph induced by its partition class V_i, with residual weights and
// initial duals computed at the phase start. Instances are reused across
// phases (see Reset), so a machine's decode buffers are allocated once and
// recycled. The round-compressed solver (internal/compress) builds the same
// instances from its sampled vertex groups, which is why the type and
// RunLocalSim are exported.
type LocalInstance struct {
	// VertexIDs holds the global ids of the machine's vertices; all other
	// slices are indexed by position in this list.
	VertexIDs []graph.Vertex
	// ResWeight[i] is w′(VertexIDs[i]).
	ResWeight []float64
	// Edges are local index pairs; X0 their initial dual values.
	Edges [][2]int32
	// X0 holds the initial dual value of each local edge.
	X0 []float64
}

// Reset empties the instance for reuse, keeping the allocated capacity.
func (li *LocalInstance) Reset() {
	li.VertexIDs = li.VertexIDs[:0]
	li.ResWeight = li.ResWeight[:0]
	li.Edges = li.Edges[:0]
	li.X0 = li.X0[:0]
}

// Grow ensures capacity for nv vertices and ne edges (lengths unchanged),
// so record ingestion appends without intermediate reallocations.
func (li *LocalInstance) Grow(nv, ne int) {
	if cap(li.VertexIDs) < nv {
		li.VertexIDs = append(make([]graph.Vertex, 0, nv), li.VertexIDs...)
		li.ResWeight = append(make([]float64, 0, nv), li.ResWeight...)
	}
	if cap(li.Edges) < ne {
		li.Edges = append(make([][2]int32, 0, ne), li.Edges...)
		li.X0 = append(make([]float64, 0, ne), li.X0...)
	}
}

// Words returns the MPC memory footprint of the instance.
func (li *LocalInstance) Words() int64 {
	return int64(len(li.Edges))*3 + int64(len(li.VertexIDs))*2
}

// simSlot is one adjacency entry of the local subgraph.
type simSlot struct {
	edge  int32
	other int32
}

// SimScratch holds the per-machine working arrays of RunLocalSim, recycled
// across phases so a steady-state phase allocates nothing per simulation.
// The freezeIter result slice is part of the scratch: it is valid until the
// machine's next RunLocalSim call.
type SimScratch struct {
	freezeIter []int
	adjOff     []int32
	adj        []simSlot
	cursor     []int32
	x          []float64
	edgeActive []bool
	sumActive  []float64
	sumFrozen  []float64
	active     []bool
	freezeList []int32
}

// RunLocalSim executes Lines (2g i–iii): I iterations of the centralized
// primal–dual scheme on the local subgraph, with the freeze test replaced by
// the biased estimator
//
//	ỹ_{v,t} = biasCoeff·m^{−0.2}·biasGrowth^t·w′(v) + m·Σ_{e∋v, e∈E[V_i]} x_{e,t}.
//
// The m· factor turns the local incident sum into an (essentially unbiased)
// estimate of the full-graph incident sum — each incident edge of v survives
// the partition with probability 1/m — and the additive bias makes the
// error one-sided w.h.p. (Section 3.2, "Other changes in our analysis").
//
// Note the w′(v) factor: the paper's Line (2g i) prints the bias as the
// absolute quantity 2m^{−0.2}·15^t, but its own analysis (Definition 4.9 is
// compared against thresholds T·w′(v); Corollary 4.12 and Lemma 4.13 bound
// ỹ−y by multiples of m^{−0.2}·15^t·w′(v)) requires the bias to scale with
// the residual weight — with vertex weights all equal to 1 the two forms
// coincide, which is presumably how the omission slipped through. We
// implement the w′(v)-scaled form; DESIGN.md records the correction.
//
// It returns, per local vertex, the iteration at which it froze (or -1).
// The returned slice aliases sc and is valid until sc's next use.
func RunLocalSim(li *LocalInstance, machines, iterations int, epsilon, biasCoeff, biasGrowth float64,
	threshold func(v graph.Vertex, t int) float64, sc *SimScratch) []int {

	nv := len(li.VertexIDs)
	sc.freezeIter = mpc.Grow(sc.freezeIter, nv)
	freezeIter := sc.freezeIter
	for i := range freezeIter {
		freezeIter[i] = -1
	}
	if iterations <= 0 {
		return freezeIter
	}

	// Adjacency over local edges.
	sc.adjOff = mpc.Grow(sc.adjOff, nv+1)
	adjOff := sc.adjOff
	for i := range adjOff {
		adjOff[i] = 0
	}
	for _, e := range li.Edges {
		adjOff[e[0]+1]++
		adjOff[e[1]+1]++
	}
	for i := 0; i < nv; i++ {
		adjOff[i+1] += adjOff[i]
	}
	sc.adj = mpc.Grow(sc.adj, len(li.Edges)*2)
	adj := sc.adj
	sc.cursor = mpc.Grow(sc.cursor, nv)
	cursor := sc.cursor
	copy(cursor, adjOff[:nv])
	for ei, e := range li.Edges {
		u, v := e[0], e[1]
		adj[cursor[u]] = simSlot{edge: int32(ei), other: v}
		cursor[u]++
		adj[cursor[v]] = simSlot{edge: int32(ei), other: u}
		cursor[v]++
	}

	growth := 1 / (1 - epsilon)
	mf := float64(machines)
	biasBase := biasCoeff * math.Pow(mf, -0.2)

	// Incremental incident sums, split into the part that still grows and
	// the part frozen at its final value (same scheme as the centralized
	// implementation).
	sc.x = mpc.Grow(sc.x, len(li.X0))
	x := sc.x
	copy(x, li.X0)
	sc.edgeActive = mpc.Grow(sc.edgeActive, len(li.Edges))
	edgeActive := sc.edgeActive
	sc.sumActive = mpc.Grow(sc.sumActive, nv)
	sumActive := sc.sumActive
	sc.sumFrozen = mpc.Grow(sc.sumFrozen, nv)
	sumFrozen := sc.sumFrozen
	for i := 0; i < nv; i++ {
		sumActive[i] = 0
		sumFrozen[i] = 0
	}
	for ei, e := range li.Edges {
		edgeActive[ei] = true
		sumActive[e[0]] += x[ei]
		sumActive[e[1]] += x[ei]
	}
	sc.active = mpc.Grow(sc.active, nv)
	active := sc.active
	for i := range active {
		active[i] = true
	}

	freezeList := sc.freezeList
	bias := biasBase
	for t := 0; t < iterations; t++ {
		// Line (2g i): simultaneous freeze test with the biased estimator.
		freezeList = freezeList[:0]
		for i := 0; i < nv; i++ {
			if !active[i] {
				continue
			}
			est := bias*li.ResWeight[i] + mf*(sumActive[i]+sumFrozen[i])
			if est >= threshold(li.VertexIDs[i], t)*li.ResWeight[i] {
				freezeList = append(freezeList, int32(i))
			}
		}
		for _, i := range freezeList {
			active[i] = false
			freezeIter[i] = t
		}
		for _, i := range freezeList {
			for _, s := range adj[adjOff[i]:adjOff[i+1]] {
				if !edgeActive[s.edge] {
					continue
				}
				edgeActive[s.edge] = false
				xe := x[s.edge]
				sumActive[i] -= xe
				sumFrozen[i] += xe
				sumActive[s.other] -= xe
				sumFrozen[s.other] += xe
			}
		}
		// Lines (2g ii–iii): active edges grow, frozen edges stay.
		for ei := range li.Edges {
			if edgeActive[ei] {
				x[ei] *= growth
			}
		}
		for i := 0; i < nv; i++ {
			if active[i] {
				sumActive[i] *= growth
			}
		}
		bias *= biasGrowth
	}
	sc.freezeList = freezeList
	return freezeIter
}
