package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/centralized"
	"repro/internal/graph"
	"repro/internal/rng"
)

// CouplingReport quantifies, for one phase, how closely the MPC simulation
// tracked the centralized algorithm run on the same induced subgraph with
// identical residual weights, initial duals and thresholds — the exact
// comparison of Lemma 4.6. All deviations are normalized by w′(v).
type CouplingReport struct {
	Phase      int
	Vertices   int
	Edges      int
	Machines   int
	Iterations int
	// MaxDevEstimate = max_{v,t} |y_{v,t} − ỹ^MPC_{v,t}| / w′(v); the lemma
	// proves ≤ 6ε w.h.p.
	MaxDevEstimate float64
	// MaxDevY = max_{v,t} |y_{v,t} − y^MPC_{v,t}| / w′(v); also ≤ 6ε.
	MaxDevY float64
	// MinOneSided = min over good (v,t) of (ỹ^MPC_{v,t} − y_{v,t}) / w′(v).
	// With the bias term, Lemma 4.13(3) proves this is ≥ 0 w.h.p.; the
	// DisableBias ablation shows it going negative.
	MinOneSided float64
	// BadVertices counts vertices whose freeze behaviour diverged between
	// the two algorithms at any point in the phase.
	BadVertices int
	// Bound is the lemma's bound 6ε, for direct table comparison.
	Bound float64
}

// AnalyzeCoupling replays the captured phase: it runs the centralized
// algorithm for the same number of iterations on the V^high subgraph with
// the same randomness, reconstructs the MPC trajectories x^MPC_{e,t} /
// y^MPC_{v,t} / ỹ^MPC_{v,t} from the recorded freeze iterations, and
// reports the deviations.
func AnalyzeCoupling(cp CouplingPhase, p Params) (*CouplingReport, error) {
	nv := len(cp.High)
	b := graph.NewBuilder(nv)
	for i := 0; i < nv; i++ {
		b.SetWeight(graph.Vertex(i), cp.ResidualWeight[i])
	}
	for _, e := range cp.Edges {
		b.AddEdge(e[0], e[1])
	}
	localG, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: coupling graph: %w", err)
	}
	if localG.NumEdges() != len(cp.Edges) {
		return nil, fmt.Errorf("core: coupling phase has duplicate edges")
	}
	// Map the captured edge order onto the built graph's edge ids.
	x0 := make([]float64, localG.NumEdges())
	edgeIdx := make([]graph.EdgeID, len(cp.Edges))
	for i, e := range cp.Edges {
		id := localG.EdgeBetween(e[0], e[1])
		if id < 0 {
			return nil, fmt.Errorf("core: coupling edge (%d,%d) missing after build", e[0], e[1])
		}
		edgeIdx[i] = id
		x0[id] = cp.X0[i]
	}

	eps := p.Epsilon
	lo, hi := 1-4*eps, 1-2*eps
	threshold := func(v graph.Vertex, t int) float64 {
		return rng.UniformAt(p.Seed, lo, hi, labelThreshold, uint64(cp.Phase), uint64(cp.High[v]), uint64(t))
	}
	if p.FixedThresholds {
		fixed := 1 - 3*eps
		threshold = func(graph.Vertex, int) float64 { return fixed }
	}
	// The replay is an offline analysis step, not a serving path; it runs
	// uncancellable on a background context.
	cres, err := centralized.Run(context.Background(),
		centralized.Instance{G: localG, X0: x0},
		centralized.Options{
			Epsilon:     eps,
			Threshold:   threshold,
			StopAfter:   cp.Iterations,
			RecordTrace: true,
		},
	)
	if err != nil {
		return nil, fmt.Errorf("core: coupling centralized run: %w", err)
	}
	traceAt := func(t int) []float64 {
		if t >= len(cres.YTrace) {
			t = len(cres.YTrace) - 1
		}
		return cres.YTrace[t]
	}

	growth := 1 / (1 - eps)
	iters := cp.Iterations
	mf := float64(cp.Machines)
	biasCoeff := p.BiasCoefficient
	if p.DisableBias {
		biasCoeff = 0
	}
	biasBase := biasCoeff * math.Pow(mf, -0.2)

	// t′_e per captured edge: earliest endpoint freeze in the MPC run.
	fiOf := func(i int32) int {
		if fi := cp.FreezeIter[i]; fi >= 0 {
			return fi
		}
		return iters
	}
	edgeStop := make([]int, len(cp.Edges))
	for i, e := range cp.Edges {
		t := fiOf(e[0])
		if tv := fiOf(e[1]); tv < t {
			t = tv
		}
		edgeStop[i] = t
	}

	rep := &CouplingReport{
		Phase:       cp.Phase,
		Vertices:    nv,
		Edges:       len(cp.Edges),
		Machines:    cp.Machines,
		Iterations:  iters,
		MinOneSided: math.Inf(1),
		Bound:       6 * eps,
	}

	yMPC := make([]float64, nv)
	yTilde := make([]float64, nv)
	pow := 1.0
	bias := biasBase
	for t := 0; t <= iters; t++ {
		for i := range yMPC {
			yMPC[i] = 0
			yTilde[i] = 0
		}
		for i, e := range cp.Edges {
			stop := edgeStop[i]
			x := cp.X0[i]
			if t <= stop {
				x *= pow
			} else {
				x *= math.Pow(growth, float64(stop))
			}
			yMPC[e[0]] += x
			yMPC[e[1]] += x
			if cp.MachineOf[e[0]] == cp.MachineOf[e[1]] {
				yTilde[e[0]] += x
				yTilde[e[1]] += x
			}
		}
		yCent := traceAt(t)
		for i := 0; i < nv; i++ {
			w := cp.ResidualWeight[i]
			est := bias*w + mf*yTilde[i]
			devEst := math.Abs(yCent[i]-est) / w
			devY := math.Abs(yCent[i]-yMPC[i]) / w
			if devEst > rep.MaxDevEstimate {
				rep.MaxDevEstimate = devEst
			}
			if devY > rep.MaxDevY {
				rep.MaxDevY = devY
			}
			// Good at t: the freeze behaviour has not diverged before t.
			cf, mpcF := cres.FreezeIter[i], cp.FreezeIter[i]
			goodAtT := cf == mpcF || (cf < 0 || cf >= t) && (mpcF < 0 || mpcF >= t)
			if goodAtT {
				if side := (est - yCent[i]) / w; side < rep.MinOneSided {
					rep.MinOneSided = side
				}
			}
		}
		pow *= growth
		bias *= p.BiasGrowth
	}
	for i := 0; i < nv; i++ {
		if cres.FreezeIter[i] != cp.FreezeIter[i] {
			rep.BadVertices++
		}
	}
	return rep, nil
}
