package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// constThreshold returns a threshold function fixed at th for all (v, t).
func constThreshold(th float64) func(graph.Vertex, int) float64 {
	return func(graph.Vertex, int) float64 { return th }
}

func TestLocalSimEmptyInstance(t *testing.T) {
	li := &LocalInstance{}
	out := RunLocalSim(li, 4, 3, 0.1, 0, 1, constThreshold(0.7), &SimScratch{})
	if len(out) != 0 {
		t.Fatal("nonempty result for empty instance")
	}
}

func TestLocalSimZeroIterations(t *testing.T) {
	li := &LocalInstance{
		VertexIDs: []graph.Vertex{10, 11},
		ResWeight: []float64{1, 1},
		Edges:     [][2]int32{{0, 1}},
		X0:        []float64{0.5},
	}
	out := RunLocalSim(li, 4, 0, 0.1, 0, 1, constThreshold(0.7), &SimScratch{})
	for i, f := range out {
		if f != -1 {
			t.Fatalf("vertex %d froze with zero iterations", i)
		}
	}
}

func TestLocalSimImmediateFreeze(t *testing.T) {
	// m·x0 = 4·0.5 = 2 ≥ 0.7·w for w=1: both endpoints freeze at t=0.
	li := &LocalInstance{
		VertexIDs: []graph.Vertex{10, 11},
		ResWeight: []float64{1, 1},
		Edges:     [][2]int32{{0, 1}},
		X0:        []float64{0.5},
	}
	out := RunLocalSim(li, 4, 3, 0.1, 0, 1, constThreshold(0.7), &SimScratch{})
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("freeze iterations %v, want [0 0]", out)
	}
}

func TestLocalSimGrowthThenFreeze(t *testing.T) {
	// m=1 machine: estimate = x exactly. x0 = 0.5, threshold 0.7·1.
	// x grows by 1/0.9 per iteration: crosses 0.7 at t=4
	// (0.5·1.111⁴ = 0.762).
	li := &LocalInstance{
		VertexIDs: []graph.Vertex{5, 6},
		ResWeight: []float64{1, 1},
		Edges:     [][2]int32{{0, 1}},
		X0:        []float64{0.5},
	}
	out := RunLocalSim(li, 1, 10, 0.1, 0, 1, constThreshold(0.7), &SimScratch{})
	if out[0] != 4 || out[1] != 4 {
		t.Fatalf("freeze iterations %v, want [4 4]", out)
	}
}

func TestLocalSimFrozenEdgesStopGrowing(t *testing.T) {
	// Path a–b–c. b has two incident edges; a freezes first (tiny weight:
	// 0.05·(1/0.9)^t ≥ 0.7·0.1 first holds at t=4), freezing edge (a,b) at
	// its then-current value. c has a huge weight and never freezes; b's y
	// afterwards only grows through edge (b,c).
	li := &LocalInstance{
		VertexIDs: []graph.Vertex{1, 2, 3},
		ResWeight: []float64{0.1, 10, 1000},
		Edges:     [][2]int32{{0, 1}, {1, 2}},
		X0:        []float64{0.05, 0.05},
	}
	out := RunLocalSim(li, 1, 30, 0.1, 0, 1, constThreshold(0.7), &SimScratch{})
	if out[0] != 4 {
		t.Fatalf("cheap vertex froze at %d, want 4", out[0])
	}
	if out[2] != -1 {
		t.Fatalf("huge vertex froze at %d", out[2])
	}
	// b would need y ≥ 7; its frozen edge contributes 0.05 forever and the
	// active one at most 0.05·(1/0.9)^30 ≈ 1.2 — so b must stay active.
	if out[1] != -1 {
		t.Fatalf("middle vertex froze at %d, want never", out[1])
	}
}

func TestLocalSimBiasAloneCanFreeze(t *testing.T) {
	// No edges; the bias term alone crosses the threshold when
	// biasCoeff·m^{-0.2}·w ≥ th·w, i.e. biasCoeff ≥ th·m^{0.2}.
	li := &LocalInstance{
		VertexIDs: []graph.Vertex{9},
		ResWeight: []float64{2},
	}
	m := 4
	needed := 0.7 * math.Pow(float64(m), 0.2)
	out := RunLocalSim(li, m, 2, 0.1, needed+0.01, 1, constThreshold(0.7), &SimScratch{})
	if out[0] != 0 {
		t.Fatalf("bias did not freeze the isolated vertex: %v", out)
	}
	out = RunLocalSim(li, m, 2, 0.1, needed-0.01, 1, constThreshold(0.7), &SimScratch{})
	if out[0] != -1 {
		t.Fatalf("sub-threshold bias froze the vertex: %v", out)
	}
}

func TestLocalSimBiasGrowthCompounds(t *testing.T) {
	// Bias below threshold at t=0, above at t=2 thanks to growth 15:
	// bias(t) = c·m^{-0.2}·15^t.
	li := &LocalInstance{
		VertexIDs: []graph.Vertex{9},
		ResWeight: []float64{1},
	}
	m := 4
	c := 0.7 * math.Pow(float64(m), 0.2) / 100 // bias(0) = th/100
	out := RunLocalSim(li, m, 5, 0.1, c, 15, constThreshold(0.7), &SimScratch{})
	// 15^2 = 225 ≥ 100 ⇒ freeze at t=2.
	if out[0] != 2 {
		t.Fatalf("freeze at %v, want 2", out[0])
	}
}

func TestLocalSimSimultaneousFreezeConsistency(t *testing.T) {
	// A triangle of identical vertices: all three freeze at the same
	// iteration (symmetric state, same threshold).
	li := &LocalInstance{
		VertexIDs: []graph.Vertex{1, 2, 3},
		ResWeight: []float64{1, 1, 1},
		Edges:     [][2]int32{{0, 1}, {1, 2}, {0, 2}},
		X0:        []float64{0.2, 0.2, 0.2},
	}
	out := RunLocalSim(li, 1, 10, 0.1, 0, 1, constThreshold(0.7), &SimScratch{})
	if out[0] != out[1] || out[1] != out[2] {
		t.Fatalf("symmetric vertices froze at different times: %v", out)
	}
	if out[0] < 0 {
		t.Fatal("triangle never froze")
	}
}

func TestLocalSimWords(t *testing.T) {
	li := &LocalInstance{
		VertexIDs: []graph.Vertex{1, 2, 3},
		ResWeight: []float64{1, 1, 1},
		Edges:     [][2]int32{{0, 1}},
		X0:        []float64{0.1},
	}
	if w := li.Words(); w != 3+6 {
		t.Fatalf("words = %d, want 9", w)
	}
}
