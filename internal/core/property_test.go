package core

// Property-based tests of the full Algorithm 2 pipeline, per the testing
// strategy in DESIGN.md: on arbitrary random instances, the result is a
// valid cover, the rescaled duals are feasible, weak duality sandwiches
// every algorithm's bound below the others' weights, and the residual
// bookkeeping never goes negative.

import (
	"context"

	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestQuickFullPipeline(t *testing.T) {
	f := func(seed uint64) bool {
		n := 50 + int(seed%400)
		d := 4 + float64(seed%40)
		g := gen.ApplyWeights(gen.GnpAvgDegree(seed, n, d), seed+1, gen.Exponential{Mean: 3})
		res, err := Run(context.Background(), g, ParamsPractical(0.1, seed+2))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		scaled, alpha := res.FeasibleDual(g)
		cert, err := verify.NewCertificate(g, res.Cover, scaled)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if alpha > 3 {
			t.Logf("seed %d: alpha %v", seed, alpha)
			return false
		}
		// Weak duality across algorithms: our certified bound must not
		// exceed any other valid cover's weight.
		bye := baselines.BarYehudaEven(g)
		if cert.Bound > verify.CoverWeight(g, bye.Cover)+1e-9 {
			t.Logf("seed %d: bound above BYE cover", seed)
			return false
		}
		return cert.Ratio() <= 2+30*0.1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickResidualWeightsStayPositive(t *testing.T) {
	// After any run, Σ_{e∋v} x_e ≤ alpha·w(v) and the per-vertex frozen
	// incident weight reconstructed from X never exceeds alpha·w(v) —
	// i.e. no vertex was charged into negative residual territory beyond
	// the known estimator overshoot.
	f := func(seed uint64) bool {
		n := 100 + int(seed%200)
		g := gen.ApplyWeights(gen.GnpAvgDegree(seed+7, n, 24), seed+8, gen.UniformRange{Lo: 0.5, Hi: 50})
		res, err := Run(context.Background(), g, ParamsPractical(0.1, seed+9))
		if err != nil {
			t.Log(err)
			return false
		}
		_, alpha := res.FeasibleDual(g)
		incident := make([]float64, n)
		for e := 0; e < g.NumEdges(); e++ {
			u, v := g.Edge(graph.EdgeID(e))
			incident[u] += res.X[e]
			incident[v] += res.X[e]
		}
		for v := 0; v < n; v++ {
			if incident[v] > alpha*g.Weight(graph.Vertex(v))*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnitWeightsMatchUnweightedSemantics(t *testing.T) {
	// With unit weights the dual bound is at most the matching number, so
	// bound ≤ n/2 always; and the cover size is an integer-weight sum.
	f := func(seed uint64) bool {
		n := 60 + int(seed%200)
		g := gen.GnpAvgDegree(seed+11, n, 12)
		res, err := Run(context.Background(), g, ParamsPractical(0.1, seed+12))
		if err != nil {
			t.Log(err)
			return false
		}
		scaled, _ := res.FeasibleDual(g)
		return verify.DualValue(scaled) <= float64(n)/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
