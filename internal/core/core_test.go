package core

import (
	"context"

	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// certify runs the full validity pipeline on a result: cover validity,
// rescaled dual feasibility, certified ratio within the theorem bound.
func certify(t *testing.T, g *graph.Graph, res *Result, eps float64) *verify.Certificate {
	t.Helper()
	scaled, alpha := res.FeasibleDual(g)
	cert, err := verify.NewCertificate(g, res.Cover, scaled)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4.7 proves alpha ≤ 1+6ε w.h.p., but the w.h.p. constants only
	// close at asymptotic machine counts; at practical m the per-phase dual
	// over-growth can exceed it somewhat (observed ≤ ~1.9). The end-to-end
	// guarantee — certified ratio ≤ 2+30ε — is asserted exactly; alpha gets
	// a sanity cap and is tabulated by experiment E6.
	if alpha > 2.2 {
		t.Errorf("dual violation factor %v far beyond 1+6ε = %v", alpha, 1+6*eps)
	}
	if r := cert.Ratio(); r > 2+30*eps+1e-9 {
		t.Errorf("certified ratio %v exceeds 2+30ε = %v", r, 2+30*eps)
	}
	return cert
}

func TestRunSmallDense(t *testing.T) {
	eps := 0.1
	g := gen.ApplyWeights(gen.GnpAvgDegree(1, 2000, 64), 2, gen.UniformRange{Lo: 1, Hi: 100})
	res, err := Run(context.Background(), g, ParamsPractical(eps, 7))
	if err != nil {
		t.Fatal(err)
	}
	certify(t, g, res, eps)
	if res.Phases == 0 {
		t.Fatal("expected at least one sampled phase at d=64, n=2000")
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestRunUnitWeights(t *testing.T) {
	// Unit weights = the GGK+18 unweighted setting.
	eps := 0.1
	g := gen.GnpAvgDegree(3, 3000, 48)
	res, err := Run(context.Background(), g, ParamsPractical(eps, 5))
	if err != nil {
		t.Fatal(err)
	}
	certify(t, g, res, eps)
}

func TestRunHugeWeightRange(t *testing.T) {
	eps := 0.1
	g := gen.ApplyWeights(gen.GnpAvgDegree(4, 2000, 40), 9, gen.PowerLaw{MaxWeight: 1e9})
	res, err := Run(context.Background(), g, ParamsPractical(eps, 11))
	if err != nil {
		t.Fatal(err)
	}
	certify(t, g, res, eps)
}

func TestRunPowerLawGraph(t *testing.T) {
	eps := 0.1
	g := gen.ApplyWeights(gen.PreferentialAttachment(6, 3000, 16), 3, gen.Exponential{Mean: 5})
	res, err := Run(context.Background(), g, ParamsPractical(eps, 13))
	if err != nil {
		t.Fatal(err)
	}
	certify(t, g, res, eps)
}

func TestRunEmptyAndTiny(t *testing.T) {
	p := ParamsPractical(0.1, 1)
	empty := graph.NewBuilder(0).MustBuild()
	res, err := Run(context.Background(), empty, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 0 {
		t.Fatal("empty graph nonempty cover")
	}

	isolated := graph.NewBuilder(5).MustBuild()
	res, err = Run(context.Background(), isolated, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Cover {
		if in {
			t.Fatal("isolated vertex in cover")
		}
	}

	single, _ := graph.FromEdgeList(2, [][2]graph.Vertex{{0, 1}}, []float64{3, 5})
	res, err = Run(context.Background(), single, p)
	if err != nil {
		t.Fatal(err)
	}
	certify(t, single, res, 0.1)
	if !res.Cover[0] && !res.Cover[1] {
		t.Fatal("single edge uncovered")
	}
}

func TestRunParamsPaperDegenerates(t *testing.T) {
	// The literal paper constants make the switch-over hold immediately at
	// this scale: zero sampled phases, everything solved centrally.
	eps := 0.1
	g := gen.GnpAvgDegree(2, 500, 32)
	res, err := Run(context.Background(), g, ParamsPaper(eps, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 0 {
		t.Fatalf("paper params ran %d sampled phases at n=500", res.Phases)
	}
	certify(t, g, res, eps)
}

func TestDeterminism(t *testing.T) {
	g := gen.ApplyWeights(gen.GnpAvgDegree(5, 1500, 50), 1, gen.UniformRange{Lo: 1, Hi: 10})
	p := ParamsPractical(0.1, 99)
	a, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Cover {
		if a.Cover[v] != b.Cover[v] {
			t.Fatalf("same seed, cover differs at %d", v)
		}
	}
	for e := range a.X {
		if a.X[e] != b.X[e] {
			t.Fatalf("same seed, duals differ at edge %d", e)
		}
	}
	if a.Rounds != b.Rounds || a.Phases != b.Phases {
		t.Fatal("same seed, different phase/round counts")
	}
}

func TestPhaseStatsConsistency(t *testing.T) {
	g := gen.GnpAvgDegree(8, 4000, 100)
	res, err := Run(context.Background(), g, ParamsPractical(0.1, 21))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseStats) != res.Phases {
		t.Fatalf("%d stats for %d phases", len(res.PhaseStats), res.Phases)
	}
	prevEdges := int64(g.NumEdges())
	for i, st := range res.PhaseStats {
		if st.Phase != i {
			t.Fatalf("phase index %d at position %d", st.Phase, i)
		}
		if st.EdgesBefore != prevEdges {
			t.Fatalf("phase %d: EdgesBefore %d, want %d", i, st.EdgesBefore, prevEdges)
		}
		if st.EdgesAfter > st.EdgesBefore {
			t.Fatalf("phase %d: edges increased", i)
		}
		if st.NumHigh+st.NumInactive > st.NumNonfrozen {
			t.Fatalf("phase %d: high+inactive exceeds nonfrozen", i)
		}
		if st.Machines < 1 || st.Iterations < 1 {
			t.Fatalf("phase %d: machines=%d iterations=%d", i, st.Machines, st.Iterations)
		}
		wantM := int(math.Round(math.Sqrt(st.AvgDegree)))
		if st.Machines != wantM {
			t.Fatalf("phase %d: machines %d, want √d = %d", i, st.Machines, wantM)
		}
		prevEdges = st.EdgesAfter
	}
	if res.FinalPhaseEdges != prevEdges {
		t.Fatalf("final phase edges %d, want %d", res.FinalPhaseEdges, prevEdges)
	}
}

func TestDegreeDecayBound(t *testing.T) {
	// Lemma 4.4: after each phase, nonfrozen edges ≤ n·d·(1−ε)^I + n·d^γ
	// (the two-term form its proof establishes; see PhaseStat.DecayBound).
	g := gen.GnpAvgDegree(12, 4000, 128)
	res, err := Run(context.Background(), g, ParamsPractical(0.1, 33))
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases == 0 {
		t.Fatal("no phases executed")
	}
	for _, st := range res.PhaseStats {
		if float64(st.EdgesAfter) > st.DecayBound {
			t.Errorf("phase %d: %d edges remain, Lemma 4.4 bound %.0f", st.Phase, st.EdgesAfter, st.DecayBound)
		}
	}
}

func TestMachineMemoryWithinBudget(t *testing.T) {
	// Lemma 4.1: |E[V_i]| = O(n). The substrate would error if the charge
	// exceeded S; here we also check the measured maximum explicitly.
	g := gen.GnpAvgDegree(13, 2000, 80)
	p := ParamsPractical(0.1, 17)
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	budget := p.MemoryWords(g.NumVertices())
	for _, st := range res.PhaseStats {
		if st.MaxMachineWords > budget {
			t.Fatalf("phase %d: machine used %d words, budget %d", st.Phase, st.MaxMachineWords, budget)
		}
		if int64(st.MaxMachineEdges)*3 > budget {
			t.Fatalf("phase %d: %d local edges cannot fit budget", st.Phase, st.MaxMachineEdges)
		}
	}
}

func TestCoverTightness(t *testing.T) {
	// Theorem 4.7's other half: cover vertices have Σx ≥ (1−16ε)·w(v).
	eps := 0.1
	g := gen.ApplyWeights(gen.GnpAvgDegree(14, 2000, 60), 4, gen.UniformRange{Lo: 1, Hi: 20})
	res, err := Run(context.Background(), g, ParamsPractical(eps, 8))
	if err != nil {
		t.Fatal(err)
	}
	if tight := res.CoverTightness(g); tight < 1-16*eps-1e-9 {
		t.Fatalf("cover tightness %v below 1−16ε = %v", tight, 1-16*eps)
	}
}

func TestValidateParams(t *testing.T) {
	good := ParamsPractical(0.1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Epsilon = 0 },
		func(p *Params) { p.Epsilon = 0.2 },
		func(p *Params) { p.HighDegreeExponent = 0 },
		func(p *Params) { p.HighDegreeExponent = 1 },
		func(p *Params) { p.BiasCoefficient = -1 },
		func(p *Params) { p.BiasGrowth = 0.5 },
		func(p *Params) { p.SwitchThreshold = nil },
		func(p *Params) { p.PhaseIterations = nil },
		func(p *Params) { p.NumMachines = nil },
		func(p *Params) { p.MemoryWords = nil },
		func(p *Params) { p.MaxPhases = -1 },
	}
	for i, mutate := range cases {
		p := ParamsPractical(0.1, 1)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, err := Run(context.Background(), nil, good); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestAblationsStillProduceCovers(t *testing.T) {
	eps := 0.1
	g := gen.ApplyWeights(gen.GnpAvgDegree(15, 1500, 48), 6, gen.UniformRange{Lo: 1, Hi: 10})
	mutations := map[string]func(*Params){
		"no-bias":      func(p *Params) { p.DisableBias = true },
		"no-split":     func(p *Params) { p.DisableInactiveSplit = true },
		"fixed-thresh": func(p *Params) { p.FixedThresholds = true },
		"uniform-init": func(p *Params) { p.UniformInit = true },
		"all-ablations": func(p *Params) {
			p.DisableBias = true
			p.DisableInactiveSplit = true
			p.FixedThresholds = true
			p.UniformInit = true
		},
	}
	for name, mutate := range mutations {
		p := ParamsPractical(eps, 31)
		mutate(&p)
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ok, e := verify.IsCover(g, res.Cover); !ok {
			t.Fatalf("%s: edge %d uncovered", name, e)
		}
		// Ablations may lose the 6ε guarantee, but the rescaled certificate
		// must still be valid and the ratio finite.
		scaled, _ := res.FeasibleDual(g)
		cert, err := verify.NewCertificate(g, res.Cover, scaled)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsInf(cert.Ratio(), 1) {
			t.Fatalf("%s: infinite ratio", name)
		}
	}
}

func TestCouplingDeviationsWithinBound(t *testing.T) {
	eps := 0.1
	g := gen.ApplyWeights(gen.GnpAvgDegree(16, 3000, 80), 7, gen.UniformRange{Lo: 1, Hi: 10})
	p := ParamsPractical(eps, 12)
	p.CollectCoupling = true
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coupling) != res.Phases {
		t.Fatalf("%d coupling captures for %d phases", len(res.Coupling), res.Phases)
	}
	if res.Phases == 0 {
		t.Fatal("no phases to couple")
	}
	for _, cp := range res.Coupling {
		rep, err := AnalyzeCoupling(cp, p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Vertices != len(cp.High) || rep.Edges != len(cp.Edges) {
			t.Fatalf("phase %d: report sizes inconsistent", cp.Phase)
		}
		// The lemma's 6ε bound is asymptotic (it needs m ≥ (4/ε)^10
		// machines before the concentration slack closes); at m ≈ √80 ≈ 9
		// the per-vertex sampling noise is ~m^{-1/2}, so the checkable
		// property here is boundedness at the practical scale. Experiment
		// E6 tabulates how the deviations shrink as m grows.
		if rep.MaxDevEstimate > 2.5 {
			t.Errorf("phase %d: estimator deviation %v unexpectedly large", cp.Phase, rep.MaxDevEstimate)
		}
		if rep.MaxDevY > 2.5 {
			t.Errorf("phase %d: |y−y^MPC| deviation %v unexpectedly large", cp.Phase, rep.MaxDevY)
		}
		if rep.BadVertices > rep.Vertices/2 {
			t.Errorf("phase %d: %d/%d bad vertices", cp.Phase, rep.BadVertices, rep.Vertices)
		}
		if math.Abs(rep.Bound-6*eps) > 1e-12 {
			t.Errorf("phase %d: bound %v, want 6ε", cp.Phase, rep.Bound)
		}
	}
}

func TestFeasibleDualScaling(t *testing.T) {
	g := gen.GnpAvgDegree(17, 800, 40)
	res, err := Run(context.Background(), g, ParamsPractical(0.1, 2))
	if err != nil {
		t.Fatal(err)
	}
	scaled, alpha := res.FeasibleDual(g)
	if alpha < 1 {
		t.Fatalf("alpha %v < 1", alpha)
	}
	if err := verify.DualFeasible(g, scaled); err != nil {
		t.Fatalf("scaled duals infeasible: %v", err)
	}
	for e := range scaled {
		if math.Abs(scaled[e]*alpha-res.X[e]) > 1e-9*math.Max(1, res.X[e]) {
			t.Fatal("scaling inconsistent")
		}
	}
}

func TestMaxPhasesGuard(t *testing.T) {
	g := gen.GnpAvgDegree(18, 2000, 64)
	p := ParamsPractical(0.1, 3)
	p.MaxPhases = 1
	// Either it finishes within 1 phase or errors cleanly — never loops.
	res, err := Run(context.Background(), g, p)
	if err == nil && res.Phases > 1 {
		t.Fatalf("ran %d phases with MaxPhases=1", res.Phases)
	}
}

func TestRoundsGrowSlowlyWithDegree(t *testing.T) {
	// The headline claim (E1 in miniature): phases grow like log log d, so
	// going from d=32 to d=1024 (²⁵ times denser) should add only a few
	// phases.
	p := ParamsPractical(0.1, 4)
	phasesAt := func(d float64) int {
		g := gen.GnpAvgDegree(19, 3000, d)
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases
	}
	p32, p1024 := phasesAt(32), phasesAt(1024)
	if p1024 < p32 {
		t.Fatalf("phases decreased with density: %d vs %d", p32, p1024)
	}
	if p1024 > p32+6 {
		t.Fatalf("phases grew too fast: %d at d=32, %d at d=1024", p32, p1024)
	}
}
