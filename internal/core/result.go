package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/mpc"
)

// PhaseStat records what one phase of Algorithm 2 did — the raw material
// for experiments E1 (rounds), E3 (machine memory) and E4 (degree decay).
type PhaseStat struct {
	// Phase is the phase index, starting at 0.
	Phase int
	// AvgDegree is d at the start of the phase: (1/n)·Σ_{v nonfrozen} d(v).
	AvgDegree float64
	// NumNonfrozen, NumHigh, NumInactive count vertices at the phase start.
	NumNonfrozen int
	NumHigh      int
	NumInactive  int
	// Machines is m = √d for the phase; Iterations is I.
	Machines   int
	Iterations int
	// MaxMachineEdges is max_i |E[V_i]|, the Lemma 4.1 quantity.
	MaxMachineEdges int
	// TotalMachineEdges is Σ_i |E[V_i]| — the globally materialized edges,
	// bounded by Õ(√d·n) ≤ Õ(|E|) in Lemma 4.1's global-memory remark.
	TotalMachineEdges int64
	// MaxMachineWords is the largest resident memory of any machine.
	MaxMachineWords int64
	// EdgesBefore / EdgesAfter count nonfrozen edges at phase boundaries.
	EdgesBefore int64
	EdgesAfter  int64
	// DecayBound is Lemma 4.4's two-term bound on EdgesAfter:
	// n·d·(1−ε)^I (surviving active out-edges, Observation 4.3) plus
	// n·d^γ (edges parked at V^inactive). The paper folds the second term
	// into the first — valid when (1−ε)^I ≥ d^{γ−1}, which its constants
	// guarantee asymptotically — so it states the single term 2·n·d·(1−ε)^I;
	// the two-term form is the inequality its proof actually establishes
	// and the one that is checkable at finite scale.
	DecayBound float64
	// NewlyFrozenVertices counts vertices frozen during the phase
	// (including the Line 2i safety freeze, reported separately too).
	NewlyFrozenVertices int
	FrozenAtLine2i      int
}

// CouplingPhase retains everything needed to replay one phase against the
// centralized reference with identical randomness (Lemma 4.6 experiments).
type CouplingPhase struct {
	Phase int
	// High lists V^high in ascending vertex order.
	High []graph.Vertex
	// ResidualWeight[i] is w′(High[i]).
	ResidualWeight []float64
	// MachineOf[i] is the machine High[i] was assigned to.
	MachineOf []int
	// Machines and Iterations echo the phase parameters.
	Machines   int
	Iterations int
	// Edges lists E[V^high] as index pairs into High, with initial duals.
	Edges [][2]int32
	X0    []float64
	// FreezeIter[i] is the local-simulation freeze iteration of High[i] in
	// [0, Iterations), or -1 if it stayed active through the simulation.
	FreezeIter []int
}

// Result is the outcome of a run of Algorithm 2.
type Result struct {
	// Cover[v] reports whether v is in the returned vertex cover.
	Cover []bool
	// X holds the finalized edge weights x^MPC_e. They form a fractional
	// matching that is feasible up to the (1+6ε) one-sided estimator error
	// of Lemma 4.6; FeasibleDual rescales them into an exactly feasible
	// certificate and reports the violation factor actually observed.
	X []float64
	// Phases is the number of sampled phases executed (excluding the final
	// centralized phase).
	Phases int
	// FinalPhaseIterations is the iteration count of the final centralized
	// phase (Line 3).
	FinalPhaseIterations int
	// FinalPhaseEdges is the number of edges moved to one machine at Line 3.
	FinalPhaseEdges int64
	// Rounds is the total number of MPC communication rounds, including the
	// accounted O(1)-round aggregation primitives per phase.
	Rounds int
	// ClusterMetrics snapshots the substrate's accounting.
	ClusterMetrics mpc.Metrics
	// PhaseStats has one entry per sampled phase.
	PhaseStats []PhaseStat
	// Coupling is non-nil when Params.CollectCoupling was set.
	Coupling []CouplingPhase
}

// FeasibleDual returns duals scaled to exact feasibility together with the
// violation factor alpha = max(1, max_v Σ_{e∋v} x_e / w(v)). Theorem 4.7
// proves alpha ≤ 1+6ε w.h.p.; experiments record the measured value.
func (r *Result) FeasibleDual(g *graph.Graph) (scaled []float64, alpha float64) {
	alpha = 1.0
	incident := make([]float64, g.NumVertices())
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		incident[u] += r.X[e]
		incident[v] += r.X[e]
	}
	for v := 0; v < g.NumVertices(); v++ {
		if w := g.Weight(graph.Vertex(v)); w > 0 {
			if f := incident[v] / w; f > alpha {
				alpha = f
			}
		}
	}
	scaled = make([]float64, len(r.X))
	inv := 1 / alpha
	for e, x := range r.X {
		scaled[e] = x * inv
	}
	return scaled, alpha
}

// CoverTightness returns the minimum over cover vertices of
// Σ_{e∋v} x_e / w(v) — the paper proves ≥ 1−16ε w.h.p. (Theorem 4.7), which
// is what makes the cover weight chargeable to the dual. Returns +Inf for an
// empty cover.
func (r *Result) CoverTightness(g *graph.Graph) float64 {
	incident := make([]float64, g.NumVertices())
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		incident[u] += r.X[e]
		incident[v] += r.X[e]
	}
	minTight := math.Inf(1)
	for v := 0; v < g.NumVertices(); v++ {
		if r.Cover[v] {
			if t := incident[v] / g.Weight(graph.Vertex(v)); t < minTight {
				minTight = t
			}
		}
	}
	return minTight
}
