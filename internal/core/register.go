package core

import (
	"context"

	"repro/internal/graph"
	"repro/internal/solver"
)

func init() {
	solver.Register(solver.Meta{
		Name:    "mpc",
		Rank:    0,
		Tier:    solver.TierAccurate,
		Summary: "the paper's Algorithm 2: O(log log d)-round MPC simulation (default)",
	}, solver.Func(solveMPC))
}

// solveMPC adapts Algorithm 2 to the registry contract. The returned duals
// are rescaled to exact feasibility (FeasibleDual), so the facade can build a
// checked certificate from them directly.
func solveMPC(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
	params := ParamsPractical(cfg.Epsilon, cfg.Seed)
	if cfg.PaperConstants {
		params = ParamsPaper(cfg.Epsilon, cfg.Seed)
	}
	params.Parallelism = cfg.Parallelism
	params.Observer = cfg.Observer
	res, err := Run(ctx, g, params)
	if err != nil {
		return nil, err
	}
	scaled, _ := res.FeasibleDual(g)
	return &solver.Outcome{
		Cover:  res.Cover,
		Duals:  scaled,
		Rounds: res.Rounds,
		Phases: res.Phases,
	}, nil
}
