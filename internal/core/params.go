// Package core implements Algorithm 2 of the paper: the MPC simulation that
// computes a (2+ε)-approximate minimum-weight vertex cover in O(log log d)
// rounds with Õ(n) memory per machine.
//
// Each phase of the algorithm:
//
//	(2a) splits the nonfrozen vertices into V^high (residual degree ≥ d^0.95)
//	     and V^inactive;
//	(2b) computes residual weights w′(v) = w(v) − Σ_{e∋v frozen} x_e;
//	(2c) initializes duals x_e = min{w′(u)/d(u), w′(v)/d(v)} on E[V^high];
//	(2d–2f) draws random thresholds, sets m = √d machines and
//	     I = log m/(10·log 15) iterations, and partitions V^high uniformly;
//	(2g) simulates the centralized algorithm locally on each machine, using
//	     the biased estimator ỹ = 2m^{−0.2}·15^t + m·Σ_{local e∋v} x_{e,t};
//	(2h–2j) reconciles: every edge of E[V^high] gets the weight implied by
//	     the earliest endpoint freeze, over-covered vertices freeze, and
//	     frozen V^inactive–V^high edges finalize at 0;
//	(2k) updates residual degrees.
//
// When the average residual degree drops below the switch-over threshold,
// the remaining Õ(n)-edge instance is solved on one machine by the
// centralized algorithm (package centralized).
package core

import (
	"fmt"
	"math"

	"repro/internal/solver"
)

// Params configures Algorithm 2. Use ParamsPractical or ParamsPaper and
// adjust fields; the zero value is invalid.
//
// The paper's constants (log³⁰n switch-over, I = log m/(10 log 15)) are
// sized for asymptotic proofs and would execute zero phases on any graph
// that fits in memory; ParamsPractical keeps every formula but scales the
// proof-slack constants so phases actually run at laptop scale (see
// DESIGN.md, "Constant-scaling"). Every experiment records which preset it
// used.
type Params struct {
	// Epsilon is the accuracy parameter ε; the cover weight is certified at
	// (2+O(ε))·OPT (Theorem 4.7 proves 2+30ε).
	Epsilon float64
	// Seed drives all randomness (partitions, thresholds) reproducibly.
	Seed uint64
	// HighDegreeExponent is the γ in the V^high rule d(v) ≥ d^γ; paper: 0.95.
	HighDegreeExponent float64
	// BiasCoefficient and BiasGrowth define the one-sided estimator bias
	// b(t) = BiasCoefficient·m^{−0.2}·BiasGrowth^t·w′(v). The paper's
	// constants are 2 and 15 (ParamsPaper); they are sized so the bias
	// dominates the worst-case deviation recursion of Lemma 4.13, which
	// needs m ≥ (4/ε)^10 machines before the bias itself drops below ε·w′.
	// ParamsPractical uses ε/4 and 2: the same functional form with the
	// cushion scaled to finite machine counts, so the estimator stays
	// one-sided against observed (not worst-case) sampling noise without
	// freezing every vertex outright.
	BiasCoefficient float64
	BiasGrowth      float64
	// SwitchThreshold returns the average-degree level at which the
	// algorithm moves the residual instance to one machine (paper: log³⁰n).
	SwitchThreshold func(n int) float64
	// PhaseIterations returns I, the number of locally simulated iterations,
	// given the machine count m for the phase (paper: log m/(10·log 15)).
	PhaseIterations func(machines int, epsilon float64) int
	// NumMachines returns the number of simulation machines for a phase with
	// average residual degree d (paper: √d).
	NumMachines func(d float64) int
	// MemoryWords returns S, the per-machine memory budget in words, for a
	// graph with n vertices (paper: Õ(n)).
	MemoryWords func(n int) int64
	// MaxPhases caps the phase loop as a safety net (0 = 10·log₂log₂n + 20).
	MaxPhases int
	// Parallelism bounds concurrent machine execution (0 = GOMAXPROCS).
	Parallelism int
	// Observer, when non-nil, receives phase and round events as the
	// algorithm executes (see internal/solver). The per-round event count
	// matches Result.Rounds exactly: one KindRound per accounted cluster
	// round, including the final gather.
	Observer solver.Observer

	// Ablation switches (experiment E10). All default off = paper behaviour.

	// DisableBias removes the one-sided bias term from the estimator.
	DisableBias bool
	// DisableInactiveSplit simulates every nonfrozen vertex instead of
	// excluding low-degree vertices.
	DisableInactiveSplit bool
	// FixedThresholds replaces random T_{v,t} with the constant 1−3ε.
	FixedThresholds bool
	// UniformInit replaces the degree-aware initialization with the classic
	// x_e = w′_min/n.
	UniformInit bool

	// CollectCoupling retains per-phase data (partition, initial duals,
	// freeze iterations) and runs the coupled centralized reference, so the
	// Lemma 4.6 deviations can be measured. Costs memory; off by default.
	CollectCoupling bool
}

// ParamsPractical returns parameters that follow the paper's formulas with
// proof-slack constants scaled for finite inputs:
//
//   - switch-over at d ≤ max(8, 2·log₂ n) — the residual instance then has
//     O(n log n) edges and fits one machine, mirroring the paper's
//     "d ≤ log³⁰ n ⇒ Õ(n) edges" switch;
//   - I = max(2, ⌊0.5·ln m / ln(1/(1−ε))⌋). The theory's coefficient is
//     0.1 (so (1/(1−ε))^I ≤ m^0.1, the slack Lemma 4.11 consumes), but
//     at finite m that yields I ∈ {1, 2}, and a phase with (1−ε)^I ≈ 0.9
//     freezes too little to beat the edges parked at V^inactive — the
//     phase recursion only contracts asymptotically. Coefficient 0.5 keeps
//     I ∝ log m (preserving the O(log log d) phase count) while making
//     (1−ε)^I = m^{−0.5} small enough that each phase visibly shrinks
//     the graph at laptop scale;
//   - V^high cutoff d^0.8 rather than d^0.95: at practical d the gap
//     between d^0.95 and d is under 20%, which starves high-degree
//     vertices whose neighbors are mostly inactive (their E[V^high]
//     incident weight never reaches the threshold, so their edges never
//     freeze). Asymptotically the d^0.05 gap is enormous and starvation
//     vanishes; 0.8 restores the intended "only a vanishing fraction is
//     inactive" behaviour at finite d;
//   - m = max(1, round(√d)) and S = Õ(n): max(4096, 8·n·(1+log₂ n)) words;
//   - bias cushion (ε/4)·m^{−0.2}·w′(v), constant across iterations
//     (growth 1): the worst-case 15^t error recursion of Lemma 4.13 does
//     not materialize over I ≈ 10 practical iterations, and any
//     exponentially growing cushion would cross every threshold by itself.
func ParamsPractical(epsilon float64, seed uint64) Params {
	return Params{
		Epsilon:            epsilon,
		Seed:               seed,
		HighDegreeExponent: 0.8,
		BiasCoefficient:    epsilon / 4,
		BiasGrowth:         1,
		SwitchThreshold: func(n int) float64 {
			return math.Max(8, 2*math.Log2(math.Max(2, float64(n))))
		},
		PhaseIterations: func(machines int, eps float64) int {
			if machines < 2 {
				return 2
			}
			i := int(math.Floor(0.5 * math.Log(float64(machines)) / math.Log(1/(1-eps))))
			if i < 2 {
				return 2
			}
			return i
		},
		NumMachines: func(d float64) int {
			m := int(math.Round(math.Sqrt(math.Max(1, d))))
			if m < 1 {
				return 1
			}
			return m
		},
		MemoryWords: func(n int) int64 {
			nf := math.Max(2, float64(n))
			s := int64(8 * nf * (1 + math.Log2(nf)))
			if s < 4096 {
				return 4096
			}
			return s
		},
	}
}

// ParamsPaper returns the literal constants of Algorithm 2: switch-over at
// d ≤ log³⁰ n and I = log m / (10·log 15). On any graph of practical size
// the switch-over condition holds immediately, so the algorithm runs zero
// sampled phases and solves everything in the final centralized phase —
// which is the mathematically correct (if degenerate) behaviour at these
// scales; tests pin it down.
func ParamsPaper(epsilon float64, seed uint64) Params {
	p := ParamsPractical(epsilon, seed)
	p.HighDegreeExponent = 0.95
	p.BiasCoefficient = 2
	p.BiasGrowth = 15
	p.SwitchThreshold = func(n int) float64 {
		return math.Pow(math.Log2(math.Max(2, float64(n))), 30)
	}
	p.PhaseIterations = func(machines int, _ float64) int {
		if machines < 2 {
			return 1
		}
		i := int(math.Floor(math.Log(float64(machines)) / (10 * math.Log(15))))
		if i < 1 {
			return 1
		}
		return i
	}
	return p
}

// Validate checks the parameter set.
func (p *Params) Validate() error {
	if p.Epsilon <= 0 || p.Epsilon > 0.125 {
		return fmt.Errorf("core: epsilon %v out of (0, 0.125]: %w", p.Epsilon, solver.ErrUnsupported)
	}
	if p.HighDegreeExponent <= 0 || p.HighDegreeExponent >= 1 {
		return fmt.Errorf("core: high-degree exponent %v out of (0, 1)", p.HighDegreeExponent)
	}
	if p.BiasCoefficient < 0 || p.BiasGrowth < 1 {
		return fmt.Errorf("core: bias parameters (%v, %v) invalid", p.BiasCoefficient, p.BiasGrowth)
	}
	if p.SwitchThreshold == nil || p.PhaseIterations == nil || p.NumMachines == nil || p.MemoryWords == nil {
		return fmt.Errorf("core: nil parameter function (use ParamsPractical/ParamsPaper as a base)")
	}
	if p.MaxPhases < 0 {
		return fmt.Errorf("core: negative MaxPhases %d", p.MaxPhases)
	}
	return nil
}
