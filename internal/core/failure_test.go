package core

// Failure-injection tests: the algorithm must fail loudly and cleanly when
// its resources are taken away or its parameter functions misbehave — and
// must clamp, not crash, on degenerate-but-legal configurations.

import (
	"context"

	"strings"
	"testing"

	"repro/internal/gen"
)

func TestFailureTinyMachineMemory(t *testing.T) {
	g := gen.GnpAvgDegree(1, 500, 32)
	p := ParamsPractical(0.1, 1)
	p.MemoryWords = func(int) int64 { return 64 } // can hold ~5 edges
	_, err := Run(context.Background(), g, p)
	if err == nil {
		t.Fatal("ran with 64 words of machine memory")
	}
	if !strings.Contains(err.Error(), "words") && !strings.Contains(err.Error(), "memory") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestFailureMemoryTooSmallForAnyEdge(t *testing.T) {
	g := gen.GnpAvgDegree(1, 100, 16)
	p := ParamsPractical(0.1, 1)
	p.MemoryWords = func(int) int64 { return 4 }
	if _, err := Run(context.Background(), g, p); err == nil {
		t.Fatal("accepted a memory budget below one edge record")
	}
}

func TestClampsPathologicalParameterFunctions(t *testing.T) {
	g := gen.GnpAvgDegree(2, 600, 32)
	p := ParamsPractical(0.1, 2)
	// Machine function returning nonsense values must be clamped, not obeyed.
	p.NumMachines = func(float64) int { return 0 }
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatalf("zero machines not clamped: %v", err)
	}
	for _, st := range res.PhaseStats {
		if st.Machines < 1 {
			t.Fatal("phase ran with zero machines")
		}
	}
	p2 := ParamsPractical(0.1, 2)
	p2.PhaseIterations = func(int, float64) int { return -5 }
	res, err = Run(context.Background(), g, p2)
	if err != nil {
		t.Fatalf("negative iterations not clamped: %v", err)
	}
	for _, st := range res.PhaseStats {
		if st.Iterations < 1 {
			t.Fatal("phase ran with zero iterations")
		}
	}
}

func TestManyMachinesRequested(t *testing.T) {
	// NumMachines larger than the cluster must be clamped to the fleet.
	g := gen.GnpAvgDegree(3, 800, 48)
	p := ParamsPractical(0.1, 3)
	p.NumMachines = func(float64) int { return 1 << 20 }
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.PhaseStats {
		if st.Machines > 1<<20 {
			t.Fatal("machine count exploded")
		}
	}
}

func TestSwitchThresholdHuge(t *testing.T) {
	// A switch threshold above the initial degree means zero sampled phases:
	// everything goes to the final centralized phase.
	g := gen.GnpAvgDegree(4, 400, 16)
	p := ParamsPractical(0.1, 4)
	p.SwitchThreshold = func(int) float64 { return 1e18 }
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 0 {
		t.Fatalf("phases %d with an unreachable switch threshold", res.Phases)
	}
	if res.FinalPhaseEdges != int64(g.NumEdges()) {
		t.Fatalf("final phase got %d edges, want all %d", res.FinalPhaseEdges, g.NumEdges())
	}
}

func TestSwitchThresholdZeroStillTerminates(t *testing.T) {
	// A switch threshold of 0 forces sampling phases all the way down;
	// isolated-vertex cleanup and the stall guard must still terminate the
	// run (possibly via MaxPhases) rather than hang.
	g := gen.GnpAvgDegree(5, 300, 12)
	p := ParamsPractical(0.1, 5)
	p.SwitchThreshold = func(int) float64 { return 0 }
	p.MaxPhases = 30
	res, err := Run(context.Background(), g, p)
	if err != nil {
		// A clean non-convergence error is acceptable; hanging is not.
		if !strings.Contains(err.Error(), "phases") {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if ok := res.Phases <= 30; !ok {
		t.Fatalf("ran %d phases", res.Phases)
	}
}

func TestCouplingOnAblatedRuns(t *testing.T) {
	// AnalyzeCoupling must work for ablated parameter sets too (it re-derives
	// thresholds from the same switches).
	g := gen.GnpAvgDegree(6, 1000, 48)
	for _, mutate := range []func(*Params){
		func(p *Params) { p.FixedThresholds = true },
		func(p *Params) { p.DisableBias = true },
	} {
		p := ParamsPractical(0.1, 6)
		p.CollectCoupling = true
		mutate(&p)
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, cp := range res.Coupling {
			if _, err := AnalyzeCoupling(cp, p); err != nil {
				t.Fatal(err)
			}
		}
	}
}
