// Package centralized implements Algorithm 1 of the paper: the generic
// centralized/LOCAL primal–dual scheme for (2+ε)-approximate minimum-weight
// vertex cover.
//
// The algorithm maintains dual variables x_e forming a fractional matching.
// Every vertex is active or frozen. Each iteration t:
//
//  1. every active vertex v with y_{v,t} = Σ_{e∋v} x_{e,t} ≥ T_{v,t}·w(v)
//     freezes, together with its incident edges;
//  2. every still-active edge multiplies its weight by 1/(1−ε).
//
// Frozen vertices form the cover; weak LP duality (Lemma 3.2) certifies the
// (2+O(ε)) ratio (Proposition 3.3).
//
// The same code serves four roles in this repository: the paper's final
// "solve the remainder on one machine" phase (Algorithm 2 Line 3); the
// centralized reference run that the MPC simulation is coupled against in
// the Lemma 4.6 experiments; the O(log Δ) / O(log nW) LOCAL baselines
// (one iteration = one round); and the approximation-quality workhorse for
// small instances.
package centralized

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/solver"
)

// InitPolicy selects the initial fractional matching {x_{e,0}}.
type InitPolicy int

const (
	// InitDegreeAware is the paper's initialization (Section 3.2):
	// x_(u,v) = min{w(u)/d(u), w(v)/d(v)}, where d counts active neighbors.
	// Proposition 3.4: termination within O(log Δ) iterations.
	InitDegreeAware InitPolicy = iota
	// InitUniform is the classic initialization x_e = w_min/n. Termination
	// needs O(log(n·W/w_min)) iterations, i.e. it degrades with the weight
	// range — exactly the behaviour experiment E5 measures.
	InitUniform
)

func (p InitPolicy) String() string {
	switch p {
	case InitDegreeAware:
		return "degree-aware"
	case InitUniform:
		return "uniform"
	default:
		return fmt.Sprintf("InitPolicy(%d)", int(p))
	}
}

// ThresholdFunc returns the freeze threshold T_{v,t} ∈ [1−4ε, 1−2ε] for
// vertex v at iteration t. Vertices compare y_{v,t} against T_{v,t}·w(v).
type ThresholdFunc func(v graph.Vertex, t int) float64

// RandomThresholds returns the paper's choice: T_{v,t} drawn independently
// and uniformly from [1−4ε, 1−2ε], realized as a pure function of
// (seed, v, t) so coupled runs see identical draws.
func RandomThresholds(seed uint64, epsilon float64) ThresholdFunc {
	lo, hi := 1-4*epsilon, 1-2*epsilon
	return func(v graph.Vertex, t int) float64 {
		return rng.UniformAt(seed, lo, hi, 'T', uint64(v), uint64(t))
	}
}

// FixedThreshold returns the deterministic threshold 1−3ε for every vertex
// and iteration. The paper needs randomness to decorrelate simulation errors
// (see [GGK+18] §4.2); this is the ablation knob for experiment E10.
func FixedThreshold(epsilon float64) ThresholdFunc {
	th := 1 - 3*epsilon
	return func(graph.Vertex, int) float64 { return th }
}

// Options configures a run of Algorithm 1.
type Options struct {
	// Epsilon is the accuracy parameter ε ∈ (0, 1/8]; the returned cover has
	// weight ≤ (2+10ε)·OPT (Proposition 3.3).
	Epsilon float64
	// Init selects the initial fractional matching. Ignored if the instance
	// supplies explicit X0.
	Init InitPolicy
	// Threshold supplies T_{v,t}. If nil, RandomThresholds(Seed, Epsilon).
	Threshold ThresholdFunc
	// Seed feeds the default threshold function.
	Seed uint64
	// MaxIterations caps the main loop as a safety net. 0 means "derive the
	// provable bound from the instance" (log_{1/(1−ε)} of the largest
	// weight-to-initial-dual ratio, plus slack).
	MaxIterations int
	// StopAfter, when positive, ends the run after exactly StopAfter
	// iterations even if active edges remain (no error). This is how the
	// Lemma 4.6 coupling runs the centralized algorithm "for I iterations on
	// the graph induced by V^high".
	StopAfter int
	// RecordTrace, when set, stores y_{v,t} for every vertex and iteration
	// (O(n·T) memory) — needed by the Lemma 4.6 coupling experiments.
	RecordTrace bool
	// Observer, when non-nil, receives one KindRound event per executed
	// iteration (iteration = communication round in the LOCAL reading), so
	// the round-event count equals Result.Iterations.
	Observer solver.Observer
}

// Instance is a (possibly residual) problem: a graph, an active-vertex mask,
// per-vertex residual weights, and optionally an explicit initial matching.
// Zero-valued fields take defaults: all vertices active, graph weights,
// policy-derived X0.
type Instance struct {
	G       *graph.Graph
	Active  []bool    // nil ⇒ all active
	Weights []float64 // nil ⇒ G.Weights()
	X0      []float64 // nil ⇒ derived from Options.Init; entries for inactive edges ignored
}

// Result is the outcome of a run.
type Result struct {
	// Cover[v] reports whether v was frozen (selected into the cover).
	Cover []bool
	// X holds the final dual variables (a feasible fractional matching).
	X []float64
	// FreezeIter[v] is the iteration at which v froze, or -1.
	FreezeIter []int
	// EdgeFreezeIter[e] is the iteration at which e froze, or -1 (only
	// possible for edges with an inactive endpoint, which never participate).
	EdgeFreezeIter []int
	// Iterations is the number of executed iterations of the main loop
	// (equivalently: rounds when the algorithm is read as a LOCAL/PRAM
	// baseline, one iteration per communication round).
	Iterations int
	// ActiveEdgesPerIter[t] is the number of active edges at the start of
	// iteration t (a progress trace used by the decay experiments).
	ActiveEdgesPerIter []int
	// YTrace[t][v] is y_{v,t} when Options.RecordTrace is set, else nil.
	// It has Iterations+1 entries: one per executed iteration plus a final
	// snapshot of the state after the last growth step.
	YTrace [][]float64
}

// DeriveX0 computes the initial fractional matching for the instance per the
// policy. Degrees are counted with respect to active vertices only, matching
// the paper's residual-degree convention (Remark 4.2).
func DeriveX0(inst Instance, policy InitPolicy) ([]float64, error) {
	g := inst.G
	active := inst.Active
	isActive := func(v graph.Vertex) bool { return active == nil || active[v] }
	w := inst.Weights
	if w == nil {
		w = g.Weights()
	}
	x0 := make([]float64, g.NumEdges())
	switch policy {
	case InitDegreeAware:
		deg := g.DegreesWithinMask(active)
		ep := g.EdgeEndpoints()
		for e := 0; e < g.NumEdges(); e++ {
			u, v := ep[2*e], ep[2*e+1]
			if !isActive(u) || !isActive(v) {
				continue
			}
			ru := w[u] / float64(deg[u])
			rv := w[v] / float64(deg[v])
			x0[e] = math.Min(ru, rv)
		}
	case InitUniform:
		// x_e = w_min/n is feasible: Σ_{e∋v} x_e ≤ d(v)·w_min/n ≤ w_min ≤ w(v).
		wmin := math.Inf(1)
		anyActive := false
		for v := 0; v < g.NumVertices(); v++ {
			if isActive(graph.Vertex(v)) {
				anyActive = true
				wmin = math.Min(wmin, w[v])
			}
		}
		if !anyActive {
			return x0, nil
		}
		base := wmin / float64(g.NumVertices())
		ep := g.EdgeEndpoints()
		for e := 0; e < g.NumEdges(); e++ {
			u, v := ep[2*e], ep[2*e+1]
			if isActive(u) && isActive(v) {
				x0[e] = base
			}
		}
	default:
		return nil, fmt.Errorf("centralized: unknown init policy %v", policy)
	}
	return x0, nil
}

// Run executes Algorithm 1 on the instance. The context is checked once per
// iteration; cancellation ends the run with ctx.Err().
func Run(ctx context.Context, inst Instance, opts Options) (*Result, error) {
	g := inst.G
	if g == nil {
		return nil, errors.New("centralized: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Epsilon <= 0 || opts.Epsilon > 0.125 {
		return nil, fmt.Errorf("centralized: epsilon %v out of (0, 0.125]", opts.Epsilon)
	}
	n, m := g.NumVertices(), g.NumEdges()
	active := make([]bool, n)
	if inst.Active == nil {
		for v := range active {
			active[v] = true
		}
	} else {
		if len(inst.Active) != n {
			return nil, fmt.Errorf("centralized: active mask length %d, want %d", len(inst.Active), n)
		}
		copy(active, inst.Active)
	}
	w := inst.Weights
	if w == nil {
		w = g.Weights()
	} else if len(w) != n {
		return nil, fmt.Errorf("centralized: weight vector length %d, want %d", len(w), n)
	}
	for v := 0; v < n; v++ {
		if active[v] && !(w[v] > 0) {
			return nil, fmt.Errorf("centralized: active vertex %d has non-positive weight %v", v, w[v])
		}
	}

	x0 := inst.X0
	if x0 == nil {
		var err error
		if x0, err = DeriveX0(Instance{G: g, Active: active, Weights: w}, opts.Init); err != nil {
			return nil, err
		}
	} else if len(x0) != m {
		return nil, fmt.Errorf("centralized: X0 length %d, want %d", len(x0), m)
	}

	threshold := opts.Threshold
	if threshold == nil {
		threshold = RandomThresholds(opts.Seed, opts.Epsilon)
	}

	growth := 1 / (1 - opts.Epsilon)

	// Edge activity and the incremental incident sums.
	// yActive[v] = Σ over active incident edges of the *current* x_e;
	// yFrozen[v] = Σ over frozen incident edges of their final x_e.
	x := make([]float64, m)
	edgeActive := make([]bool, m)
	edgeFreeze := make([]int, m)
	yActive := make([]float64, n)
	yFrozen := make([]float64, n)
	activeEdges := 0
	maxRatio := 1.0
	for e := 0; e < m; e++ {
		edgeFreeze[e] = -1
		u, v := g.Edge(graph.EdgeID(e))
		if !active[u] || !active[v] {
			continue
		}
		if !(x0[e] > 0) {
			return nil, fmt.Errorf("centralized: initial x[%d] = %v, want positive", e, x0[e])
		}
		x[e] = x0[e]
		edgeActive[e] = true
		activeEdges++
		yActive[u] += x0[e]
		yActive[v] += x0[e]
		if r := math.Min(w[u], w[v]) / x0[e]; r > maxRatio {
			maxRatio = r
		}
	}
	for v := 0; v < n; v++ {
		if active[v] && yActive[v] > w[v]*(1+1e-9) {
			return nil, fmt.Errorf("centralized: initial matching infeasible at vertex %d: %v > %v", v, yActive[v], w[v])
		}
	}

	maxIter := opts.MaxIterations
	if maxIter == 0 {
		// An active edge e=(u,v) reaches x_e ≥ min(w(u), w(v)) after at most
		// log_growth(maxRatio) iterations, at which point an endpoint must
		// have frozen (its threshold is at most (1−2ε) < 1). +3 for slack.
		maxIter = int(math.Ceil(math.Log(maxRatio)/math.Log(growth))) + 3
	}

	res := &Result{
		Cover:          make([]bool, n),
		FreezeIter:     make([]int, n),
		EdgeFreezeIter: edgeFreeze,
	}
	for v := range res.FreezeIter {
		res.FreezeIter[v] = -1
	}

	// frozenDualSum tracks Σ x_e over frozen (finalized) edges for observer
	// events; it is the raw dual total the certificate later builds on.
	frozenDualSum := 0.0
	var freezeList []graph.Vertex
	t := 0
	for ; activeEdges > 0; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.StopAfter > 0 && t >= opts.StopAfter {
			break
		}
		if t >= maxIter {
			return nil, fmt.Errorf("centralized: no termination after %d iterations (%d active edges remain)", t, activeEdges)
		}
		res.ActiveEdgesPerIter = append(res.ActiveEdgesPerIter, activeEdges)
		if opts.RecordTrace {
			snap := make([]float64, n)
			for v := 0; v < n; v++ {
				snap[v] = yActive[v] + yFrozen[v]
			}
			res.YTrace = append(res.YTrace, snap)
		}

		// Line (4a): simultaneous freeze test against start-of-iteration y.
		freezeList = freezeList[:0]
		for v := 0; v < n; v++ {
			if active[v] && yActive[v]+yFrozen[v] >= threshold(graph.Vertex(v), t)*w[v] {
				freezeList = append(freezeList, graph.Vertex(v))
			}
		}
		for _, v := range freezeList {
			active[v] = false
			res.Cover[v] = true
			res.FreezeIter[v] = t
		}
		for _, v := range freezeList {
			ids := g.IncidentEdges(v)
			for _, e := range ids {
				if !edgeActive[e] {
					continue
				}
				edgeActive[e] = false
				edgeFreeze[e] = t
				activeEdges--
				frozenDualSum += x[e]
				u := g.Other(e, v)
				// Move the edge's weight from the active to the frozen sum of
				// the surviving endpoint (and of v itself, harmlessly).
				yActive[u] -= x[e]
				yFrozen[u] += x[e]
				yActive[v] -= x[e]
				yFrozen[v] += x[e]
			}
		}

		// Lines (4b)/(4c): active edges grow by 1/(1−ε); frozen stay.
		if activeEdges > 0 {
			for e := 0; e < m; e++ {
				if edgeActive[e] {
					x[e] *= growth
				}
			}
			for v := 0; v < n; v++ {
				if active[v] {
					yActive[v] *= growth
				}
			}
		}
		solver.Emit(opts.Observer, solver.Event{
			Kind:        solver.KindRound,
			Phase:       -1,
			Round:       t + 1,
			ActiveEdges: int64(activeEdges),
			DualBound:   frozenDualSum,
		})
	}
	if opts.RecordTrace {
		// One extra snapshot so YTrace[t] is defined for t = Iterations as
		// well (the state after the last growth step), which the Lemma 4.6
		// coupling compares against.
		snap := make([]float64, n)
		for v := 0; v < n; v++ {
			snap[v] = yActive[v] + yFrozen[v]
		}
		res.YTrace = append(res.YTrace, snap)
	}
	res.Iterations = t
	res.X = x
	return res, nil
}
