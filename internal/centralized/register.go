package centralized

import (
	"context"

	"repro/internal/graph"
	"repro/internal/solver"
)

// The registry ranks mirror the pre-registry Algorithms() listing order:
// mpc(0), centralized(10), local-uniform(20), bye(30), greedy(40),
// congested-clique(50), ggk(60), exact(70).
func init() {
	solver.Register(solver.Meta{
		Name:    "centralized",
		Rank:    10,
		Tier:    solver.TierAccurate,
		Summary: "Algorithm 1 with degree-aware initialization (O(log Δ) iterations)",
	}, solverFor(InitDegreeAware))
	solver.Register(solver.Meta{
		Name:    "local-uniform",
		Rank:    20,
		Tier:    solver.TierAccurate,
		Summary: "Algorithm 1 with uniform initialization (O(log nW) iterations, pre-paper baseline)",
	}, solverFor(InitUniform))
}

// solverFor adapts Algorithm 1 under the given initialization policy to the
// registry contract. Iterations double as LOCAL communication rounds.
func solverFor(init InitPolicy) solver.Func {
	return func(ctx context.Context, g *graph.Graph, cfg solver.Config) (*solver.Outcome, error) {
		res, err := Run(ctx, Instance{G: g}, Options{
			Epsilon:  cfg.Epsilon,
			Seed:     cfg.Seed,
			Init:     init,
			Observer: cfg.Observer,
		})
		if err != nil {
			return nil, err
		}
		return &solver.Outcome{Cover: res.Cover, Duals: res.X, Rounds: res.Iterations}, nil
	}
}
