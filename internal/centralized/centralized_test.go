package centralized

import (
	"context"

	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func run(t *testing.T, g *graph.Graph, opts Options) *Result {
	t.Helper()
	res, err := Run(context.Background(), Instance{G: g}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func defaultOpts() Options { return Options{Epsilon: 0.1, Seed: 1} }

func TestTriangleCover(t *testing.T) {
	g, err := graph.FromEdgeList(3, [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, g, defaultOpts())
	cert, err := verify.NewCertificate(g, res.Cover, res.X)
	if err != nil {
		t.Fatal(err)
	}
	// OPT = 2 for the unit triangle; Proposition 3.3: ratio ≤ 2+10ε = 3.
	if cert.Weight > 3*2+1e-9 {
		t.Fatalf("cover weight %v too large", cert.Weight)
	}
	if cert.Ratio() > 2+10*0.1+1e-9 {
		t.Fatalf("certified ratio %v exceeds 2+10ε", cert.Ratio())
	}
}

func TestStarPrefersCenterWhenCheap(t *testing.T) {
	// Star with cheap center: the cover should be {center} (weight 1)
	// rather than the 50 leaves (weight 50).
	n := 51
	b := graph.NewBuilder(n)
	b.SetWeight(0, 1)
	for v := 1; v < n; v++ {
		b.SetWeight(graph.Vertex(v), 1)
		b.AddEdge(0, graph.Vertex(v))
	}
	g := b.MustBuild()
	res := run(t, g, defaultOpts())
	cert, err := verify.NewCertificate(g, res.Cover, res.X)
	if err != nil {
		t.Fatal(err)
	}
	// OPT = 1 (the center); allow the 2+10ε slack.
	if cert.Weight > (2+10*0.1)*1+1e-9 {
		t.Fatalf("star cover weight %v", cert.Weight)
	}
}

func TestExpensiveCenterStar(t *testing.T) {
	// Star with a very expensive center: OPT is the center anyway only if
	// leaves cost more. Here leaves are cheap, so OPT = all leaves = 5.
	n := 6
	b := graph.NewBuilder(n)
	b.SetWeight(0, 1000)
	for v := 1; v < n; v++ {
		b.SetWeight(graph.Vertex(v), 1)
		b.AddEdge(0, graph.Vertex(v))
	}
	g := b.MustBuild()
	res := run(t, g, defaultOpts())
	cert, err := verify.NewCertificate(g, res.Cover, res.X)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Weight > (2+1)*5+1e-9 {
		t.Fatalf("expensive-center cover weight %v, OPT=5", cert.Weight)
	}
	if res.Cover[0] {
		t.Fatal("algorithm picked the 1000-weight center over 5 unit leaves")
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(10).MustBuild()
	res := run(t, g, defaultOpts())
	if res.Iterations != 0 {
		t.Fatalf("edgeless run took %d iterations", res.Iterations)
	}
	for v, in := range res.Cover {
		if in {
			t.Fatalf("vertex %d in cover of edgeless graph", v)
		}
	}
}

func TestDualFeasibleThroughout(t *testing.T) {
	// Feasibility of the *final* duals is checked by the certificate in
	// every other test; here we re-run with traces and verify y never
	// exceeds w (Observation 3.1) at any iteration.
	g := gen.ApplyWeights(gen.Gnp(3, 200, 0.05), 9, gen.UniformRange{Lo: 1, Hi: 50})
	opts := defaultOpts()
	opts.RecordTrace = true
	res := run(t, g, opts)
	for it, snap := range res.YTrace {
		for v, y := range snap {
			if y > g.Weight(graph.Vertex(v))*(1+1e-9) {
				t.Fatalf("iteration %d: y[%d]=%v exceeds weight %v", it, v, y, g.Weight(graph.Vertex(v)))
			}
		}
	}
}

func TestPropositionRatioAcrossFamilies(t *testing.T) {
	eps := 0.1
	families := map[string]*graph.Graph{
		"gnp":       gen.ApplyWeights(gen.Gnp(1, 300, 0.03), 5, gen.UniformRange{Lo: 1, Hi: 100}),
		"powerlaw":  gen.ApplyWeights(gen.PreferentialAttachment(2, 300, 3), 6, gen.Exponential{Mean: 4}),
		"bipartite": gen.ApplyWeights(gen.RandomBipartite(3, 150, 150, 0.05), 7, gen.PowerLaw{MaxWeight: 1e6}),
		"grid":      gen.ApplyWeights(gen.Grid(15, 20), 8, gen.UniformRange{Lo: 1, Hi: 10}),
		"clique":    gen.Clique(40),
	}
	for name, g := range families {
		res, err := Run(context.Background(), Instance{G: g}, Options{Epsilon: eps, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cert, err := verify.NewCertificate(g, res.Cover, res.X)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r := cert.Ratio(); r > 2+10*eps+1e-9 {
			t.Fatalf("%s: certified ratio %v exceeds 2+10ε", name, r)
		}
	}
}

func TestProposition34IterationBound(t *testing.T) {
	// Degree-aware init: iterations ≤ log_{1/(1−ε)} Δ + O(1), independent of
	// the weight range.
	eps := 0.1
	growth := 1 / (1 - eps)
	for _, wmax := range []float64{1, 1e3, 1e9} {
		g := gen.ApplyWeights(gen.Gnp(4, 400, 0.05), 3, gen.PowerLaw{MaxWeight: math.Max(wmax, 2)})
		res, err := Run(context.Background(), Instance{G: g}, Options{Epsilon: eps, Seed: 2, Init: InitDegreeAware})
		if err != nil {
			t.Fatal(err)
		}
		bound := math.Log(float64(g.MaxDegree()))/math.Log(growth) + 3
		if float64(res.Iterations) > bound {
			t.Fatalf("wmax=%g: %d iterations exceed O(log Δ) bound %.1f", wmax, res.Iterations, bound)
		}
	}
}

func TestUniformInitDegradesWithWeightRange(t *testing.T) {
	// Uniform 1/n init: iterations grow with the weight range; degree-aware
	// stays flat. This is the heart of experiment E5.
	eps := 0.1
	base := gen.Gnp(4, 300, 0.05)
	iters := func(wmax float64, policy InitPolicy) int {
		g := gen.ApplyWeights(base, 3, gen.PowerLaw{MaxWeight: wmax})
		res, err := Run(context.Background(), Instance{G: g}, Options{Epsilon: eps, Seed: 2, Init: policy})
		if err != nil {
			t.Fatal(err)
		}
		return res.Iterations
	}
	uniSmall, uniBig := iters(2, InitUniform), iters(1e9, InitUniform)
	awareBig := iters(1e9, InitDegreeAware)
	// Uniform init needs Θ(log(nW)) iterations: W ×5e8 ⇒ ≥ 50 extra
	// iterations at ε=0.1.
	if uniBig-uniSmall < 50 {
		t.Fatalf("uniform init did not degrade with weight range: %d vs %d", uniSmall, uniBig)
	}
	// Degree-aware init stays within the weight-independent O(log Δ) bound
	// even at W=1e9 (Proposition 3.4).
	g := gen.ApplyWeights(base, 3, gen.PowerLaw{MaxWeight: 1e9})
	bound := math.Log(float64(g.MaxDegree()))/math.Log(1/(1-eps)) + 3
	if float64(awareBig) > bound {
		t.Fatalf("degree-aware init took %d iterations, exceeds O(log Δ) bound %.1f", awareBig, bound)
	}
	if uniBig <= 2*awareBig {
		t.Fatalf("uniform (%d iters) should be ≫ degree-aware (%d) at W=1e9", uniBig, awareBig)
	}
}

func TestActiveSubsetRun(t *testing.T) {
	// Path 0-1-2-3 with vertex 3 inactive: the run must only cover edges
	// within {0,1,2} and never freeze 3.
	g, err := graph.FromEdgeList(4, [][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true, true, true, false}
	res, err := Run(context.Background(), Instance{G: g, Active: active}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover[3] {
		t.Fatal("inactive vertex frozen")
	}
	// Edges (0,1) and (1,2) must be covered.
	for _, e := range []graph.EdgeID{g.EdgeBetween(0, 1), g.EdgeBetween(1, 2)} {
		u, v := g.Edge(e)
		if !res.Cover[u] && !res.Cover[v] {
			t.Fatalf("active edge (%d,%d) uncovered", u, v)
		}
	}
	// Edge (2,3) never participates.
	if e := g.EdgeBetween(2, 3); res.X[e] != 0 || res.EdgeFreezeIter[e] != -1 {
		t.Fatal("inactive edge received dual weight")
	}
}

func TestResidualWeights(t *testing.T) {
	g, err := graph.FromEdgeList(2, [][2]graph.Vertex{{0, 1}}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Residual weights much smaller than graph weights: duals must respect
	// the residual, not the original.
	res, err := Run(context.Background(), Instance{G: g, Weights: []float64{1, 2}}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] > 1*(1+1e-9) {
		t.Fatalf("dual %v exceeds residual weight 1", res.X[0])
	}
	if !res.Cover[0] && !res.Cover[1] {
		t.Fatal("edge uncovered")
	}
}

func TestExplicitX0(t *testing.T) {
	g, err := graph.FromEdgeList(3, [][2]graph.Vertex{{0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Instance{G: g, X0: []float64{0.25, 0.25}}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := verify.IsCover(g, res.Cover); !ok {
		t.Fatal("not a cover")
	}
	// Infeasible X0 must be rejected.
	if _, err := Run(context.Background(), Instance{G: g, X0: []float64{0.9, 0.9}}, defaultOpts()); err == nil {
		t.Fatal("infeasible X0 accepted")
	}
	// Non-positive X0 on an active edge must be rejected.
	if _, err := Run(context.Background(), Instance{G: g, X0: []float64{0, 0.1}}, defaultOpts()); err == nil {
		t.Fatal("zero X0 accepted")
	}
}

func TestOptionValidation(t *testing.T) {
	g, _ := graph.FromEdgeList(2, [][2]graph.Vertex{{0, 1}}, nil)
	if _, err := Run(context.Background(), Instance{G: g}, Options{Epsilon: 0}); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := Run(context.Background(), Instance{G: g}, Options{Epsilon: 0.5}); err == nil {
		t.Fatal("epsilon 0.5 accepted")
	}
	if _, err := Run(context.Background(), Instance{G: nil}, defaultOpts()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Run(context.Background(), Instance{G: g, Active: []bool{true}}, defaultOpts()); err == nil {
		t.Fatal("bad active length accepted")
	}
	if _, err := Run(context.Background(), Instance{G: g, Weights: []float64{1}}, defaultOpts()); err == nil {
		t.Fatal("bad weights length accepted")
	}
	if _, err := Run(context.Background(), Instance{G: g, X0: []float64{1, 2, 3}}, defaultOpts()); err == nil {
		t.Fatal("bad X0 length accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := gen.ApplyWeights(gen.Gnp(8, 150, 0.08), 2, gen.Exponential{Mean: 3})
	a := run(t, g, Options{Epsilon: 0.05, Seed: 42})
	b := run(t, g, Options{Epsilon: 0.05, Seed: 42})
	for v := range a.Cover {
		if a.Cover[v] != b.Cover[v] {
			t.Fatal("same seed, different covers")
		}
	}
	for e := range a.X {
		if a.X[e] != b.X[e] {
			t.Fatal("same seed, different duals")
		}
	}
	c := run(t, g, Options{Epsilon: 0.05, Seed: 43})
	diff := false
	for v := range a.Cover {
		if a.Cover[v] != c.Cover[v] {
			diff = true
			break
		}
	}
	// Different seeds usually give (slightly) different covers; tolerate
	// coincidence only if the duals differ somewhere.
	if !diff {
		sameX := true
		for e := range a.X {
			if a.X[e] != c.X[e] {
				sameX = false
				break
			}
		}
		if sameX {
			t.Log("warning: different seeds produced identical runs (possible but unlikely)")
		}
	}
}

func TestFixedThresholdAblation(t *testing.T) {
	g := gen.Gnp(5, 100, 0.1)
	res, err := Run(context.Background(), Instance{G: g}, Options{Epsilon: 0.1, Threshold: FixedThreshold(0.1)})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := verify.NewCertificate(g, res.Cover, res.X)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Ratio() > 3+1e-9 {
		t.Fatalf("fixed-threshold ratio %v", cert.Ratio())
	}
}

func TestActiveEdgeTraceMonotone(t *testing.T) {
	g := gen.Gnp(6, 200, 0.05)
	res := run(t, g, defaultOpts())
	for i := 1; i < len(res.ActiveEdgesPerIter); i++ {
		if res.ActiveEdgesPerIter[i] > res.ActiveEdgesPerIter[i-1] {
			t.Fatalf("active edges increased at iteration %d", i)
		}
	}
	if len(res.ActiveEdgesPerIter) != res.Iterations {
		t.Fatalf("trace length %d vs iterations %d", len(res.ActiveEdgesPerIter), res.Iterations)
	}
}

func TestFreezeIterConsistency(t *testing.T) {
	g := gen.ApplyWeights(gen.Gnp(7, 120, 0.08), 3, gen.UniformRange{Lo: 1, Hi: 9})
	res := run(t, g, defaultOpts())
	for v := 0; v < g.NumVertices(); v++ {
		if res.Cover[v] != (res.FreezeIter[v] >= 0) {
			t.Fatalf("vertex %d cover/freeze mismatch", v)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Edge(graph.EdgeID(e))
		fe := res.EdgeFreezeIter[e]
		if fe < 0 {
			t.Fatalf("edge %d never froze", e)
		}
		fu, fv := res.FreezeIter[u], res.FreezeIter[v]
		earliest := -1
		if fu >= 0 {
			earliest = fu
		}
		if fv >= 0 && (earliest < 0 || fv < earliest) {
			earliest = fv
		}
		if fe != earliest {
			t.Fatalf("edge %d froze at %d, endpoints froze at %d/%d", e, fe, fu, fv)
		}
	}
}

// Property: on random instances the result is always a cover with feasible
// duals and certified ratio within 2+10ε.
func TestQuickCoverAndRatio(t *testing.T) {
	eps := 0.1
	f := func(seed uint64) bool {
		n := 10 + int(seed%80)
		g := gen.ApplyWeights(gen.Gnp(seed, n, 0.15), seed+1, gen.UniformRange{Lo: 0.5, Hi: 20})
		res, err := Run(context.Background(), Instance{G: g}, Options{Epsilon: eps, Seed: seed + 2})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		cert, err := verify.NewCertificate(g, res.Cover, res.X)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return cert.Ratio() <= 2+10*eps+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdFuncsInRange(t *testing.T) {
	eps := 0.08
	th := RandomThresholds(5, eps)
	for v := graph.Vertex(0); v < 100; v++ {
		for it := 0; it < 10; it++ {
			x := th(v, it)
			if x < 1-4*eps || x >= 1-2*eps {
				t.Fatalf("threshold %v out of [%v,%v)", x, 1-4*eps, 1-2*eps)
			}
		}
	}
	if FixedThreshold(eps)(3, 7) != 1-3*eps {
		t.Fatal("fixed threshold wrong")
	}
	// Same (seed,v,t) must give the same threshold (coupling requirement).
	if th(5, 2) != RandomThresholds(5, eps)(5, 2) {
		t.Fatal("thresholds not pure")
	}
}

func TestInitPolicyString(t *testing.T) {
	if InitDegreeAware.String() != "degree-aware" || InitUniform.String() != "uniform" {
		t.Fatal("InitPolicy.String broken")
	}
	if InitPolicy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestDeriveX0Feasible(t *testing.T) {
	g := gen.ApplyWeights(gen.PreferentialAttachment(9, 200, 4), 4, gen.Exponential{Mean: 2})
	for _, policy := range []InitPolicy{InitDegreeAware, InitUniform} {
		x0, err := DeriveX0(Instance{G: g}, policy)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.DualFeasible(g, x0); err != nil {
			t.Fatalf("%v: infeasible init: %v", policy, err)
		}
		for e, x := range x0 {
			if !(x > 0) {
				t.Fatalf("%v: x0[%d] = %v", policy, e, x)
			}
		}
	}
	if _, err := DeriveX0(Instance{G: g}, InitPolicy(42)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
