package reduce_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/reduce"
	"repro/internal/verify"
)

func mustRun(t *testing.T, g *graph.Graph) *reduce.Result {
	t.Helper()
	res, err := reduce.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func build(t *testing.T, n int, edges [][2]graph.Vertex, weights []float64) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdgeList(n, edges, weights)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIsolatedRule(t *testing.T) {
	g := build(t, 4, [][2]graph.Vertex{{0, 1}}, []float64{5, 1, 3, 3})
	res := mustRun(t, g)
	if res.Stats.Isolated != 2 {
		t.Fatalf("isolated count %d, want 2 (vertices 2 and 3)", res.Stats.Isolated)
	}
	if res.Stats.KernelVertices != 0 {
		t.Fatalf("kernel not empty: %d vertices", res.Stats.KernelVertices)
	}
}

func TestPendantRuleFiresOnHeavyLeaf(t *testing.T) {
	// Leaf 1 (weight 5) ≥ hub 0 (weight 2): the hub is forced, leaf dropped.
	g := build(t, 2, [][2]graph.Vertex{{0, 1}}, []float64{2, 5})
	res := mustRun(t, g)
	if res.Stats.Pendant != 1 || res.Stats.ForcedWeight != 2 {
		t.Fatalf("pendant=%d forced=%v, want 1/2", res.Stats.Pendant, res.Stats.ForcedWeight)
	}
	cover, forced := res.Trace.Lift([]bool{})
	if forced != 2 || !cover[0] || cover[1] {
		t.Fatalf("lifted cover %v forced %v, want [true false] / 2", cover, forced)
	}
}

func TestPendantRuleRefusesCheapLeaf(t *testing.T) {
	// Leaf 1 (weight 1) < hub 0 (weight 5) and the hub has other business:
	// the local rules cannot decide, so the pair must survive in the kernel.
	// A triangle on {0,2,3} keeps domination from resolving the hub.
	g := build(t, 4, [][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {2, 3}},
		[]float64{5, 1, 4, 4})
	res := mustRun(t, g)
	if res.Stats.Pendant != 0 {
		t.Fatalf("pendant fired %d times on a cheap leaf", res.Stats.Pendant)
	}
}

func TestNeighborhoodWeightRule(t *testing.T) {
	// w(0) = 10 ≥ w(1)+w(2) = 3: both neighbors forced, 0 dropped.
	g := build(t, 3, [][2]graph.Vertex{{0, 1}, {0, 2}}, []float64{10, 1, 2})
	res := mustRun(t, g)
	if res.Stats.NeighborhoodWeight != 1 {
		t.Fatalf("neighborhood rule fired %d times, want 1", res.Stats.NeighborhoodWeight)
	}
	cover, forced := res.Trace.Lift([]bool{})
	if forced != 3 || cover[0] || !cover[1] || !cover[2] {
		t.Fatalf("lifted cover %v forced %v, want [false true true] / 3", cover, forced)
	}
}

func TestDominationRule(t *testing.T) {
	// Two triangles sharing the edge (1, 2): N[0] = {0,1,2} ⊆ N[1] and
	// w(1) ≤ w(0), so 1 is forced — and no degree or weight-sum rule applies
	// anywhere (every degree ≥ 2, every weight below its neighborhood sum).
	g := build(t, 4, [][2]graph.Vertex{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}},
		[]float64{3, 2, 4, 3})
	res := mustRun(t, g)
	if res.Stats.Domination == 0 {
		t.Fatal("domination never fired on a dominated triangle vertex")
	}
	kernelCover := make([]bool, res.Stats.KernelVertices)
	for i := range kernelCover {
		kernelCover[i] = true // any kernel cover works for validity
	}
	cover, _ := res.Trace.Lift(kernelCover)
	if ok, _ := verify.IsCover(g, cover); !ok {
		t.Fatal("lifted cover is not a cover")
	}
}

func TestDominationRespectsWeights(t *testing.T) {
	// Same shape, but the dominating vertex is more expensive than every
	// neighbor it would replace — forcing it would be unsound to claim, so
	// the weighted rule must not fire on it.
	g := build(t, 3, [][2]graph.Vertex{{0, 1}, {0, 2}, {1, 2}}, []float64{1, 1, 100})
	res := mustRun(t, g)
	cover, forced := res.Trace.Lift(make([]bool, res.Stats.KernelVertices))
	if cover[2] {
		t.Fatalf("weight-100 vertex forced into the cover (forced weight %v)", forced)
	}
}

func TestUnitTreeCollapsesCompletely(t *testing.T) {
	// Pendant + isolated alone must collapse any unit-weight tree.
	g := gen.PreferentialAttachment(3, 2000, 1)
	res := mustRun(t, g)
	if res.Stats.KernelVertices != 0 {
		t.Fatalf("unit tree left a %d-vertex kernel", res.Stats.KernelVertices)
	}
	cover, _ := res.Trace.Lift([]bool{})
	if ok, _ := verify.IsCover(g, cover); !ok {
		t.Fatal("lifted cover of the collapsed tree is not a cover")
	}
}

func TestNothingToReduceAliasesInput(t *testing.T) {
	// A 5-cycle with increasing weights resists every rule; Run must return
	// the input graph itself (no copy) and a nil trace.
	g := build(t, 5, [][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}},
		[]float64{2, 3, 4, 5, 6})
	res := mustRun(t, g)
	if res.Kernel != g {
		t.Fatal("irreducible instance did not alias the input graph")
	}
	if res.Trace != nil {
		t.Fatal("irreducible instance returned a non-nil trace")
	}
	if res.Stats.KernelVertices != 5 || res.Stats.KernelEdges != 5 {
		t.Fatalf("stats %+v do not report the unchanged size", res.Stats)
	}
}

// TestOptimumPreservedOnRandomInstances is the core soundness property:
// OPT(G) = ForcedWeight + OPT(kernel) on a matrix of small random graphs,
// with the optimum computed independently by brute force on both sides.
func TestOptimumPreservedOnRandomInstances(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		for _, d := range []float64{1, 2.5, 5} {
			g := gen.ApplyWeights(gen.GnpAvgDegree(seed, 18, d), seed+7,
				gen.UniformRange{Lo: 1, Hi: 10})
			_, opt, err := exact.BruteForce(g)
			if err != nil {
				t.Fatal(err)
			}
			res := mustRun(t, g)
			kernelOpt := 0.0
			kernelCover := []bool{}
			if res.Stats.KernelVertices > 0 {
				kernelCover, kernelOpt, err = exact.BruteForce(res.Kernel)
				if err != nil {
					t.Fatal(err)
				}
			}
			forcedW := 0.0
			cover := kernelCover
			if res.Trace != nil {
				cover, forcedW = res.Trace.Lift(kernelCover)
			}
			if math.Abs(forcedW+kernelOpt-opt) > 1e-9 {
				t.Fatalf("seed %d d %v: forced %v + kernel OPT %v != OPT %v (stats %+v)",
					seed, d, forcedW, kernelOpt, opt, res.Stats)
			}
			if ok, e := verify.IsCover(g, cover); !ok {
				t.Fatalf("seed %d d %v: lifted optimal cover misses edge %d", seed, d, e)
			}
			if w := verify.CoverWeight(g, cover); math.Abs(w-opt) > 1e-9 {
				t.Fatalf("seed %d d %v: lifted cover weight %v, OPT %v", seed, d, w, opt)
			}
		}
	}
}

func TestLiftDualsFeasibleOnOriginal(t *testing.T) {
	// Any feasible kernel dual must lift to a feasible dual on the original.
	g := gen.ApplyWeights(gen.GnpAvgDegree(9, 60, 3), 2, gen.UniformRange{Lo: 1, Hi: 10})
	res := mustRun(t, g)
	if res.Trace == nil || res.Stats.KernelEdges == 0 {
		t.Skip("instance reduced to an edgeless kernel; nothing to lift")
	}
	// A trivially feasible kernel dual: every edge gets a tiny value.
	x := make([]float64, res.Stats.KernelEdges)
	for i := range x {
		x[i] = 1e-3
	}
	if err := verify.DualFeasible(res.Kernel, x); err != nil {
		t.Fatal(err)
	}
	lifted := res.Trace.LiftDuals(x)
	if err := verify.DualFeasible(g, lifted); err != nil {
		t.Fatalf("lifted dual infeasible on the original: %v", err)
	}
	if math.Abs(verify.DualValue(lifted)-verify.DualValue(x)) > 1e-12 {
		t.Fatal("lifting changed the dual value")
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.ApplyWeights(gen.GnpAvgDegree(5, 300, 3), 6, gen.UniformRange{Lo: 1, Hi: 100})
	a, b := mustRun(t, g), mustRun(t, g)
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
	ca, _ := a.Trace.Lift(make([]bool, a.Stats.KernelVertices))
	cb, _ := b.Trace.Lift(make([]bool, b.Stats.KernelVertices))
	if !reflect.DeepEqual(ca, cb) {
		t.Fatal("forced sets differ across identical runs")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.GnpAvgDegree(1, 20000, 4)
	if _, err := reduce.Run(ctx, g); err == nil {
		t.Fatal("cancelled reduction returned no error")
	}
}

func TestEmptyGraph(t *testing.T) {
	res := mustRun(t, graph.NewBuilder(0).MustBuild())
	if res.Stats.KernelVertices != 0 || res.Trace != nil {
		t.Fatalf("empty graph: %+v", res.Stats)
	}
}
