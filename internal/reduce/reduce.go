// Package reduce implements weighted kernelization for minimum-weight
// vertex cover: reduction rules that shrink an instance before any solver
// runs, plus a replayable trace that lifts a kernel cover back to a cover
// of the original graph with exact weight accounting.
//
// Four rules run to a fixpoint over a worklist, all operating directly on
// the immutable CSR graph with flat per-vertex state (alive mask, residual
// degrees) — no mutable graph copy is ever built:
//
//   - isolated: a vertex with no uncovered incident edge is never needed.
//   - pendant (weighted degree-1): a degree-1 vertex u with neighbor v and
//     w(u) ≥ w(v) lets v join the cover and u leave the instance.
//   - domination (weighted): for an edge (u, v) with N[v] ⊆ N[u] and
//     w(u) ≤ w(v), some optimal cover contains u.
//   - neighborhood weight: if w(v) ≥ Σ w(N(v)), taking all of N(v) is never
//     worse than taking v, so N(v) joins the cover and v leaves.
//
// Every rule preserves the optimum exactly: OPT(G) = ForcedWeight +
// OPT(kernel), so the forced weight is a sound additive term for both the
// lifted cover weight (primal) and any lower bound certified on the kernel
// (dual) — certified ratios survive lifting. DESIGN.md §"Kernelization"
// carries the per-rule soundness arguments.
package reduce

import (
	"context"

	"repro/internal/graph"
)

// Stats reports what one reduction pass did; it travels through
// solver.Outcome and mwvc.Solution so every layer can account for the
// kernelization stage honestly.
type Stats struct {
	// OriginalVertices and OriginalEdges are the instance size before
	// reduction; KernelVertices and KernelEdges after.
	OriginalVertices int `json:"original_vertices"`
	OriginalEdges    int `json:"original_edges"`
	KernelVertices   int `json:"kernel_vertices"`
	KernelEdges      int `json:"kernel_edges"`

	// Per-rule application counts (cascaded applications included).
	Isolated           int `json:"isolated,omitempty"`
	Pendant            int `json:"pendant,omitempty"`
	Domination         int `json:"domination,omitempty"`
	NeighborhoodWeight int `json:"neighborhood_weight,omitempty"`

	// ForcedVertices and ForcedWeight describe the vertices the rules
	// committed to the cover; ForcedWeight adds exactly to both the lifted
	// cover weight and the kernel's certified lower bound.
	ForcedVertices int     `json:"forced_vertices,omitempty"`
	ForcedWeight   float64 `json:"forced_weight,omitempty"`

	// ReduceNS is the wall-clock cost of the reduction stage, filled by the
	// pipeline that invoked it.
	ReduceNS int64 `json:"reduce_ns,omitempty"`
}

// Trace records how a graph was reduced, replayably: Lift reconstructs a
// cover of the original graph from any cover of the kernel, and LiftDuals
// re-indexes a kernel dual vector onto the original edge ids. A nil Trace
// (returned when nothing reduced) means the kernel is the original graph.
type Trace struct {
	orig    *graph.Graph
	kernel  *graph.Graph
	forced  []graph.Vertex // original ids committed to the cover
	forcedW float64
	toOrig  []graph.Vertex // kernel vertex id → original vertex id
}

// ForcedWeight returns the total weight of the vertices the reduction
// committed to the cover.
func (t *Trace) ForcedWeight() float64 { return t.forcedW }

// Lift maps a cover of the kernel back to a cover of the original graph:
// the forced vertices plus the kernel cover translated through the vertex
// mapping. The returned forced weight is the exact additive difference
// between the kernel cover's weight and the lifted cover's weight, and is
// likewise a sound additive term for the kernel's dual lower bound.
func (t *Trace) Lift(kernelCover []bool) (cover []bool, forcedWeight float64) {
	if len(kernelCover) != len(t.toOrig) {
		panic("reduce: Lift cover length does not match kernel")
	}
	cover = make([]bool, t.orig.NumVertices())
	for _, v := range t.forced {
		cover[v] = true
	}
	for i, in := range kernelCover {
		if in {
			cover[t.toOrig[i]] = true
		}
	}
	return cover, t.forcedW
}

// Restrict inverts Lift on the kernel coordinates: it projects a cover of
// the original graph down to the kernel's vertex ids, dropping the forced
// and eliminated vertices. Restrict(Lift(c)) == c for every kernel cover c,
// which lets tests and tools audit exactly what a downstream stage (e.g.
// the anytime improvement) did to the kernel cover after lifting.
func (t *Trace) Restrict(cover []bool) []bool {
	if len(cover) != t.orig.NumVertices() {
		panic("reduce: Restrict cover length does not match original")
	}
	out := make([]bool, len(t.toOrig))
	for i, v := range t.toOrig {
		out[i] = cover[v]
	}
	return out
}

// LiftDuals re-indexes a feasible fractional matching on the kernel onto
// the original graph's edge ids (zero on every non-kernel edge). The result
// is feasible on the original graph: kernel vertices keep their incident
// sums, and forced or dropped vertices carry zero.
func (t *Trace) LiftDuals(kernelDuals []float64) []float64 {
	if len(kernelDuals) != t.kernel.NumEdges() {
		panic("reduce: LiftDuals vector length does not match kernel")
	}
	out := make([]float64, t.orig.NumEdges())
	ep := t.kernel.EdgeEndpoints()
	for e := 0; e < t.kernel.NumEdges(); e++ {
		u, v := t.toOrig[ep[2*e]], t.toOrig[ep[2*e+1]]
		out[t.orig.EdgeBetween(u, v)] = kernelDuals[e]
	}
	return out
}

// Result is the outcome of Run: the kernel graph, the trace that lifts
// kernel covers back (nil when nothing reduced and Kernel aliases the
// input), and the accounting stats.
type Result struct {
	Kernel *graph.Graph
	Trace  *Trace
	Stats  Stats
}

// Run applies all reduction rules to a fixpoint and assembles the kernel.
// It is deterministic (worklist and sweeps run in vertex order) and only
// reads g. The context is polled throughout, so cancellation aborts a
// long reduction promptly.
func Run(ctx context.Context, g *graph.Graph) (*Result, error) {
	n := g.NumVertices()
	st := Stats{
		OriginalVertices: n,
		OriginalEdges:    g.NumEdges(),
	}
	r := &reducer{g: g, ctx: ctx, st: &st}
	if err := r.fixpoint(); err != nil {
		return nil, err
	}
	st.ForcedWeight = r.forcedW

	removed := 0
	for v := 0; v < n; v++ {
		if !r.alive[v] {
			removed++
		}
	}
	if removed == 0 {
		st.KernelVertices = n
		st.KernelEdges = g.NumEdges()
		return &Result{Kernel: g, Stats: st}, nil
	}

	aliveList := make([]graph.Vertex, 0, n-removed)
	var forced []graph.Vertex
	for v := 0; v < n; v++ {
		switch {
		case r.alive[v]:
			aliveList = append(aliveList, graph.Vertex(v))
		case r.inCover[v]:
			forced = append(forced, graph.Vertex(v))
		}
	}
	kernel, toOrig, err := g.Induced(aliveList)
	if err != nil {
		return nil, err
	}
	st.KernelVertices = kernel.NumVertices()
	st.KernelEdges = kernel.NumEdges()
	tr := &Trace{orig: g, kernel: kernel, forced: forced, forcedW: r.forcedW, toOrig: toOrig}
	return &Result{Kernel: kernel, Trace: tr, Stats: st}, nil
}

// reducer is the mutable fixpoint state over one immutable graph.
type reducer struct {
	g   *graph.Graph
	ctx context.Context
	st  *Stats

	alive   []bool // vertex still in the residual instance
	inCover []bool // vertex forced into the cover
	deg     []int32
	forcedW float64

	queue   []graph.Vertex
	inQueue []bool
	polls   uint
}

// poll checks the context every 4096th call so the rule loops stay cheap.
func (r *reducer) poll() error {
	r.polls++
	if r.polls&0xFFF == 0 {
		return r.ctx.Err()
	}
	return nil
}

func (r *reducer) push(v graph.Vertex) {
	if r.alive[v] && !r.inQueue[v] {
		r.inQueue[v] = true
		r.queue = append(r.queue, v)
	}
}

// force commits u to the cover and removes it from the residual instance;
// its uncovered incident edges disappear, so every alive neighbor loses a
// degree and re-enters the worklist.
func (r *reducer) force(u graph.Vertex) {
	r.alive[u] = false
	r.inCover[u] = true
	r.st.ForcedVertices++
	r.forcedW += r.g.Weight(u)
	for _, x := range r.g.Neighbors(u) {
		if r.alive[x] {
			r.deg[x]--
			r.push(x)
		}
	}
}

// fixpoint alternates the cheap worklist rules (isolated, pendant,
// neighborhood weight) with domination sweeps until neither changes
// anything.
func (r *reducer) fixpoint() error {
	n := r.g.NumVertices()
	r.alive = make([]bool, n)
	r.inCover = make([]bool, n)
	r.inQueue = make([]bool, n)
	r.deg = make([]int32, n)
	r.queue = make([]graph.Vertex, 0, n)
	for v := 0; v < n; v++ {
		r.alive[v] = true
		r.inQueue[v] = true
		r.deg[v] = int32(r.g.Degree(graph.Vertex(v)))
		r.queue = append(r.queue, graph.Vertex(v))
	}
	for {
		if err := r.drain(); err != nil {
			return err
		}
		changed, err := r.dominationSweep()
		if err != nil {
			return err
		}
		if !changed {
			return nil
		}
	}
}

// drain runs the worklist rules to exhaustion.
func (r *reducer) drain() error {
	for len(r.queue) > 0 {
		v := r.queue[0]
		r.queue = r.queue[1:]
		r.inQueue[v] = false
		if !r.alive[v] {
			continue
		}
		if err := r.poll(); err != nil {
			return err
		}
		switch {
		case r.deg[v] == 0:
			// Isolated: every incident edge already has a forced endpoint
			// (or never existed), so v is never needed.
			r.alive[v] = false
			r.st.Isolated++
		case r.deg[v] == 1:
			u := r.soleAliveNeighbor(v)
			if r.g.Weight(v) >= r.g.Weight(u) {
				// Pendant: covering the single edge (v, u) from the u side
				// costs no more and covers at least as much.
				r.force(u)
				r.alive[v] = false
				r.st.Pendant++
			}
		default:
			s := 0.0
			for _, u := range r.g.Neighbors(v) {
				if r.alive[u] {
					s += r.g.Weight(u)
				}
			}
			if r.g.Weight(v) >= s {
				// Neighborhood weight: swapping v for all of N(v) in any
				// cover never costs more, so N(v) is forced and v dropped.
				for _, u := range r.g.Neighbors(v) {
					if r.alive[u] {
						r.force(u)
					}
				}
				r.alive[v] = false
				r.st.NeighborhoodWeight++
			}
		}
	}
	return nil
}

// soleAliveNeighbor returns the single alive neighbor of a residual
// degree-1 vertex.
func (r *reducer) soleAliveNeighbor(v graph.Vertex) graph.Vertex {
	for _, u := range r.g.Neighbors(v) {
		if r.alive[u] {
			return u
		}
	}
	panic("reduce: residual degree-1 vertex has no alive neighbor")
}

// dominationSweep scans every alive vertex v for an alive neighbor u with
// w(u) ≤ w(v) whose closed residual neighborhood contains v's — then some
// optimal cover contains u, and u is forced. Returns whether anything
// changed (follow-up cheap rules are queued by force itself).
func (r *reducer) dominationSweep() (bool, error) {
	changed := false
	for v := 0; v < r.g.NumVertices(); v++ {
		if !r.alive[v] {
			continue
		}
		if err := r.poll(); err != nil {
			return false, err
		}
		wv := r.g.Weight(graph.Vertex(v))
		for _, u := range r.g.Neighbors(graph.Vertex(v)) {
			if !r.alive[u] || r.g.Weight(u) > wv {
				continue
			}
			if r.dominates(u, graph.Vertex(v)) {
				r.force(u)
				r.st.Domination++
				changed = true
				break // v's residual degree changed; the worklist revisits it
			}
		}
	}
	return changed, nil
}

// dominates reports whether every alive neighbor of v other than u is also
// adjacent to u, i.e. N_res[v] ⊆ N_res[u] for the adjacent pair (u, v).
// Adjacency in the original graph suffices: an edge between two alive
// vertices is by definition still uncovered.
func (r *reducer) dominates(u, v graph.Vertex) bool {
	for _, x := range r.g.Neighbors(v) {
		if x == u || !r.alive[x] {
			continue
		}
		if !r.g.HasEdge(u, x) {
			return false
		}
	}
	return true
}
