package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := randomGraph(123, 50, 300)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: (%d,%d) vs (%d,%d)",
			h.NumVertices(), h.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if h.Weight(Vertex(v)) != g.Weight(Vertex(v)) {
			t.Fatalf("weight of %d changed: %v vs %v", v, h.Weight(Vertex(v)), g.Weight(Vertex(v)))
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		u1, v1 := g.Edge(EdgeID(e))
		u2, v2 := h.Edge(EdgeID(e))
		if u1 != u2 || v1 != v2 {
			t.Fatalf("edge %d changed: (%d,%d) vs (%d,%d)", e, u1, v1, u2, v2)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("not-a-graph\n1 0\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadRejectsEdgeCountMismatch(t *testing.T) {
	in := "mwvc-graph 1\n3 2\ne 0 1\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("edge-count mismatch accepted")
	}
}

func TestReadRejectsMalformedRecords(t *testing.T) {
	cases := []string{
		"mwvc-graph 1\n2 1\ne 0\n",
		"mwvc-graph 1\n2 1\nq 0 1\n",
		"mwvc-graph 1\n2 1\ne 0 x\n",
		"mwvc-graph 1\n2 1\nw 5 1.0\ne 0 1\n",
		"mwvc-graph 1\n2 1\nw 0 oops\ne 0 1\n",
		"mwvc-graph 1\n-1 0\n",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("malformed input accepted: %q", in)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\nmwvc-graph 1\n\n2 1\n# another\nw 0 2.5\ne 0 1\n\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 || g.Weight(0) != 2.5 {
		t.Fatalf("parsed wrong graph: %v w0=%v", g, g.Weight(0))
	}
}

func TestWriteEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 0 || h.NumEdges() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}

func TestReadRejectsDuplicateEdgesVsHeader(t *testing.T) {
	// Header says 2 edges but they dedup to 1.
	in := "mwvc-graph 1\n2 2\ne 0 1\ne 1 0\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("dedup mismatch accepted")
	}
}
