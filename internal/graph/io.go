package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The serialization format is a line-oriented text format:
//
//	mwvc-graph 1
//	<n> <m>
//	w <v> <weight>        (one line per vertex whose weight differs from 1)
//	e <u> <v>             (one line per undirected edge)
//
// Weights are written with full float64 round-trip precision. The format is
// deliberately simple so instances can be produced or inspected with
// standard text tools.

const formatHeader = "mwvc-graph 1"

// Write serializes g to w in the text format above.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n", formatHeader, g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if wt := g.Weight(Vertex(v)); wt != 1 {
			if _, err := fmt.Fprintf(bw, "w %d %s\n", v, strconv.FormatFloat(wt, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Edge(EdgeID(e))
		if _, err := fmt.Fprintf(bw, "e %d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	line := func() (string, bool) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s != "" && !strings.HasPrefix(s, "#") {
				return s, true
			}
		}
		return "", false
	}
	hdr, ok := line()
	if !ok {
		return nil, fmt.Errorf("graph: empty input")
	}
	if hdr != formatHeader {
		return nil, fmt.Errorf("graph: bad header %q, want %q", hdr, formatHeader)
	}
	sizes, ok := line()
	if !ok {
		return nil, fmt.Errorf("graph: missing size line")
	}
	var n, m int
	if _, err := fmt.Sscanf(sizes, "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad size line %q: %w", sizes, err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative sizes in %q", sizes)
	}
	b := NewBuilder(n)
	edgesSeen := 0
	for {
		s, ok := line()
		if !ok {
			break
		}
		fields := strings.Fields(s)
		switch fields[0] {
		case "w":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: bad weight line %q", s)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: bad vertex in %q: %w", s, err)
			}
			if v < 0 || v >= n {
				return nil, fmt.Errorf("graph: vertex %d out of range in %q", v, s)
			}
			wt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad weight in %q: %w", s, err)
			}
			b.SetWeight(Vertex(v), wt)
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: bad edge line %q", s)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: bad endpoint in %q: %w", s, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: bad endpoint in %q: %w", s, err)
			}
			b.AddEdge(Vertex(u), Vertex(v))
			edgesSeen++
		default:
			return nil, fmt.Errorf("graph: unknown record %q", s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if edgesSeen != m {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", m, edgesSeen)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: %d edges after dedup, header declares %d", g.NumEdges(), m)
	}
	return g, nil
}
