package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// Two line-oriented text formats are supported (specified in
// docs/FORMATS.md):
//
//	mwvc-graph 1          canonical format, written by Write
//	<n> <m>
//	w <v> <weight>        (one line per vertex whose weight differs from 1)
//	e <u> <v>             (one line per undirected edge)
//
//	mwvc-el 1             streaming edge-list format, written by WriteEdgeList
//	<n>
//	w <v> <weight>        (w and e records in any order)
//	e <u> <v>
//
// The canonical format declares the exact post-dedup edge count up front and
// Read enforces it; the edge-list format omits it so producers can stream
// edges without knowing the final count (duplicates are merged on read).
// Weights are written with full float64 round-trip precision. Both formats
// are deliberately simple so instances can be produced or inspected with
// standard text tools.

const (
	formatHeader   = "mwvc-graph 1"
	elFormatHeader = "mwvc-el 1"
)

// Write serializes g in the canonical "mwvc-graph 1" text format. The output
// is deterministic — header, weights in vertex order, edges in edge-id order
// — which is what makes it usable as the content-hash preimage of the serve
// store. The writer allocates one small scratch buffer regardless of graph
// size.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 64)
	buf = append(buf, formatHeader...)
	buf = append(buf, '\n')
	buf = strconv.AppendInt(buf, int64(g.NumVertices()), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(g.NumEdges()), 10)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	if err := writeRecords(bw, g, buf); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteEdgeList serializes g in the streaming "mwvc-el 1" text format (no
// edge count in the header). Readable back by Read and ReadStream.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 64)
	buf = append(buf, elFormatHeader...)
	buf = append(buf, '\n')
	buf = strconv.AppendInt(buf, int64(g.NumVertices()), 10)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	if err := writeRecords(bw, g, buf); err != nil {
		return err
	}
	return bw.Flush()
}

// writeRecords emits the weight and edge records shared by both formats.
func writeRecords(bw *bufio.Writer, g *Graph, buf []byte) error {
	for v := 0; v < g.NumVertices(); v++ {
		if wt := g.Weight(Vertex(v)); wt != 1 {
			buf = append(buf[:0], 'w', ' ')
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, wt, 'g', -1, 64)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	ep := g.EdgeEndpoints()
	for i := 0; i < len(ep); i += 2 {
		buf = append(buf[:0], 'e', ' ')
		buf = strconv.AppendInt(buf, int64(ep[i]), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(ep[i+1]), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// recordSink receives the records of one scan over a graph file. sizes is
// called exactly once (haveM reports whether the format carries an edge
// count); weight and edge are called per record in file order. A nil weight
// makes the scanner skip weight records without parsing their value (used
// by ReadStream's second pass).
type recordSink struct {
	sizes  func(n, m int, haveM bool) error
	weight func(v Vertex, wt float64) error
	edge   func(u, v Vertex) error
}

// scanRecords parses either text format from r, feeding records to s. It
// reads the input in one chunked pass (bufio, no full-file buffer) and
// performs no per-line allocations on the hot edge-record path.
func scanRecords(r io.Reader, s recordSink) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	next := func() ([]byte, bool) {
		for sc.Scan() {
			b := bytes.TrimSpace(sc.Bytes())
			if len(b) != 0 && b[0] != '#' {
				return b, true
			}
		}
		return nil, false
	}
	hdr, ok := next()
	if !ok {
		if err := sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("graph: empty input")
	}
	var haveM bool
	switch {
	case bytes.Equal(hdr, []byte(formatHeader)):
		haveM = true
	case bytes.Equal(hdr, []byte(elFormatHeader)):
		haveM = false
	default:
		return fmt.Errorf("graph: bad header %q, want %q or %q", hdr, formatHeader, elFormatHeader)
	}
	sizes, ok := next()
	if !ok {
		return fmt.Errorf("graph: missing size line")
	}
	var f0, f1, f2 []byte
	nf, err := splitFields3(sizes, &f0, &f1, &f2)
	if err != nil {
		return fmt.Errorf("graph: bad size line %q", sizes)
	}
	var n, m int64
	if haveM {
		if nf != 2 {
			return fmt.Errorf("graph: bad size line %q, want \"<n> <m>\"", sizes)
		}
		if n, ok = parseInt(f0); !ok {
			return fmt.Errorf("graph: bad size line %q", sizes)
		}
		if m, ok = parseInt(f1); !ok {
			return fmt.Errorf("graph: bad size line %q", sizes)
		}
	} else {
		if nf != 1 {
			return fmt.Errorf("graph: bad size line %q, want \"<n>\"", sizes)
		}
		if n, ok = parseInt(f0); !ok {
			return fmt.Errorf("graph: bad size line %q", sizes)
		}
	}
	if n < 0 || m < 0 {
		return fmt.Errorf("graph: negative sizes in %q", sizes)
	}
	// Vertex ids are int32, so a header declaring more vertices than int32
	// can address is unusable — and sizing builder arrays from it would turn
	// a hostile one-line header into a multi-gigabyte allocation.
	if n > math.MaxInt32 {
		return fmt.Errorf("graph: vertex count %d exceeds the int32 id space", n)
	}
	if err := s.sizes(int(n), int(m), haveM); err != nil {
		return err
	}
	for {
		line, ok := next()
		if !ok {
			break
		}
		nf, err := splitFields3(line, &f0, &f1, &f2)
		if err != nil || nf != 3 {
			return fmt.Errorf("graph: bad record %q", line)
		}
		switch {
		case len(f0) == 1 && f0[0] == 'e':
			// Vertex must fit int32 before the cast; ids beyond that would
			// silently truncate. The [0, n) range check is the sink's job.
			u, ok1 := parseInt(f1)
			v, ok2 := parseInt(f2)
			if !ok1 || !ok2 || u > math.MaxInt32 || v > math.MaxInt32 || u < math.MinInt32 || v < math.MinInt32 {
				return fmt.Errorf("graph: bad endpoint in %q", line)
			}
			if err := s.edge(Vertex(u), Vertex(v)); err != nil {
				return err
			}
		case len(f0) == 1 && f0[0] == 'w':
			v, ok1 := parseInt(f1)
			if !ok1 || v > math.MaxInt32 || v < math.MinInt32 {
				return fmt.Errorf("graph: bad vertex in %q", line)
			}
			if s.weight == nil {
				continue // pass-2 rescan: weights already collected
			}
			wt, err := strconv.ParseFloat(string(f2), 64)
			if err != nil {
				return fmt.Errorf("graph: bad weight in %q: %w", line, err)
			}
			if err := s.weight(Vertex(v), wt); err != nil {
				return err
			}
		default:
			return fmt.Errorf("graph: unknown record %q", line)
		}
	}
	return sc.Err()
}

// splitFields3 splits line on ASCII whitespace into at most three fields
// without allocating. It returns the field count, or an error for more than
// three fields.
func splitFields3(line []byte, f0, f1, f2 *[]byte) (int, error) {
	n := 0
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		switch n {
		case 0:
			*f0 = line[start:i]
		case 1:
			*f1 = line[start:i]
		case 2:
			*f2 = line[start:i]
		default:
			return n, fmt.Errorf("too many fields")
		}
		n++
	}
	return n, nil
}

// parseInt parses a decimal integer (with optional leading '-') from b
// without allocating.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, false
		}
	}
	var x int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		if x > (1<<62)/10 {
			return 0, false
		}
		x = x*10 + int64(c-'0')
	}
	if neg {
		x = -x
	}
	return x, true
}

// Read parses a graph in either text format from a one-shot stream. It
// buffers the edge list in a Builder, so it works for non-seekable sources
// (network bodies, pipes); for on-disk instances prefer ReadStream or
// OpenFile, which build the CSR arrays in two passes with no edge-list
// buffer.
func Read(r io.Reader) (*Graph, error) {
	var b *Builder
	declaredM := -1
	edgesSeen := 0
	err := scanRecords(r, recordSink{
		sizes: func(n, m int, haveM bool) error {
			b = NewBuilder(n)
			if haveM {
				declaredM = m
			}
			return nil
		},
		weight: func(v Vertex, wt float64) error {
			if v < 0 || int(v) >= b.NumVertices() {
				return fmt.Errorf("graph: weight vertex %d out of range [0,%d)", v, b.NumVertices())
			}
			b.SetWeight(v, wt)
			return nil
		},
		edge: func(u, v Vertex) error {
			b.AddEdge(u, v)
			edgesSeen++
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if declaredM >= 0 && edgesSeen != declaredM {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", declaredM, edgesSeen)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if declaredM >= 0 && g.NumEdges() != declaredM {
		return nil, fmt.Errorf("graph: %d edges after dedup, header declares %d", g.NumEdges(), declaredM)
	}
	return g, nil
}

// ReadStream parses a graph in either text format from a seekable source by
// scanning it twice: pass 1 counts degrees and collects weights, pass 2
// places every edge at its final CSR position. Peak memory is the final
// graph plus one n-sized scratch array — there is no intermediate edge-list
// buffer, which is what admits instances in the paper's regime (millions of
// edges) on ordinary machines.
func ReadStream(rs io.ReadSeeker) (*Graph, error) {
	var c *CSRBuilder
	declaredM := -1
	counted := 0
	err := scanRecords(rs, recordSink{
		sizes: func(n, m int, haveM bool) error {
			c = NewCSRBuilder(n)
			if haveM {
				declaredM = m
			}
			return nil
		},
		weight: func(v Vertex, wt float64) error {
			if v < 0 || int(v) >= c.NumVertices() {
				return fmt.Errorf("graph: weight vertex %d out of range [0,%d)", v, c.NumVertices())
			}
			c.SetWeight(v, wt)
			return nil
		},
		edge: func(u, v Vertex) error {
			counted++
			return c.CountEdge(u, v)
		},
	})
	if err != nil {
		return nil, err
	}
	if declaredM >= 0 && counted != declaredM {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", declaredM, counted)
	}
	if err := c.EndCount(); err != nil {
		return nil, err
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("graph: rewinding for pass 2: %w", err)
	}
	// A nil weight sink tells the scanner to skip weight records entirely
	// (no float re-parsing on the rescan).
	err = scanRecords(rs, recordSink{
		sizes: func(n, m int, haveM bool) error { return nil },
		edge:  c.AddEdge,
	})
	if err != nil {
		return nil, err
	}
	g, err := c.Build()
	if err != nil {
		return nil, err
	}
	if declaredM >= 0 && g.NumEdges() != declaredM {
		return nil, fmt.Errorf("graph: %d edges after dedup, header declares %d", g.NumEdges(), declaredM)
	}
	return g, nil
}

// OpenFile reads a graph file (either text format) via the two-pass
// streaming path.
func OpenFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStream(f)
}
