package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// CSRBuilder assembles a Graph directly into its final CSR arrays from two
// passes over an edge stream, using O(n + m) memory with no intermediate
// edge-list buffer. It is the ingestion path for instances too large to
// mirror as an in-memory pair list (Builder's job): the caller streams every
// edge once through CountEdge, calls EndCount, streams the same edges again
// through AddEdge, and calls Build.
//
// The two passes must induce the same degree sequence (replaying the same
// stream — a file read twice, a deterministic generator run twice — always
// does); violations are detected and reported. Duplicate edges are merged
// and self-loops rejected, matching Builder semantics, so for a given edge
// set both builders produce bit-identical graphs.
//
// A CSRBuilder is single-use: Build transfers ownership of its arrays to
// the returned Graph.
type CSRBuilder struct {
	n       int
	weights []float64
	// deg holds per-vertex counts during pass 1, the per-vertex fill
	// cursors during pass 2, and the reverse-slot cursors during Build —
	// one n-sized array wearing three hats so the builder's overhead
	// beyond the final graph is a single scratch array.
	deg       []uint32
	offsets   []uint32
	neighbors []Vertex
	counted   int64
	filled    int64
	state     csrState
}

type csrState uint8

const (
	csrCounting csrState = iota
	csrFilling
	csrBuilt
)

// NewCSRBuilder returns a streaming builder for a graph on n vertices, all
// with weight 1.
func NewCSRBuilder(n int) *CSRBuilder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return &CSRBuilder{n: n, weights: w, deg: make([]uint32, n)}
}

// NumVertices returns the declared vertex count.
func (b *CSRBuilder) NumVertices() int { return b.n }

// SetWeight sets the weight of vertex v; callable at any point before Build.
// Weights must be positive and finite; violations surface at Build time.
func (b *CSRBuilder) SetWeight(v Vertex, w float64) *CSRBuilder {
	b.weights[v] = w
	return b
}

// SetWeights copies the given weights (which must have length n).
func (b *CSRBuilder) SetWeights(w []float64) *CSRBuilder {
	if len(w) != b.n {
		panic(fmt.Sprintf("graph: SetWeights length %d, want %d", len(w), b.n))
	}
	copy(b.weights, w)
	return b
}

func (b *CSRBuilder) checkEndpoints(u, v Vertex) error {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) has endpoint out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	return nil
}

// CountEdge records one edge of the first pass. Endpoint order is
// irrelevant; duplicates may be counted (they are merged at Build).
func (b *CSRBuilder) CountEdge(u, v Vertex) error {
	if b.state != csrCounting {
		return errors.New("graph: CountEdge after EndCount")
	}
	if err := b.checkEndpoints(u, v); err != nil {
		return err
	}
	if b.counted >= math.MaxInt32 {
		return fmt.Errorf("graph: edge count exceeds %d", math.MaxInt32)
	}
	b.deg[u]++
	b.deg[v]++
	b.counted++
	return nil
}

// EndCount finishes the first pass: it prefix-sums the degree counts into
// the CSR offsets and allocates the adjacency array (the only O(m)
// allocation the builder performs).
func (b *CSRBuilder) EndCount() error {
	if b.state != csrCounting {
		return errors.New("graph: EndCount called twice")
	}
	b.offsets = make([]uint32, b.n+1)
	var sum uint32
	for v := 0; v < b.n; v++ {
		b.offsets[v] = sum
		sum += b.deg[v]
		b.deg[v] = b.offsets[v] // becomes the pass-2 fill cursor
	}
	b.offsets[b.n] = sum
	b.neighbors = make([]Vertex, sum)
	b.state = csrFilling
	return nil
}

// AddEdge records one edge of the second pass, placing both directed slots
// at their final CSR positions. The second pass must induce the same degree
// sequence as the first; an excess at either endpoint is reported here and
// a shortfall at Build.
func (b *CSRBuilder) AddEdge(u, v Vertex) error {
	if b.state != csrFilling {
		if b.state == csrCounting {
			return errors.New("graph: AddEdge before EndCount")
		}
		return errors.New("graph: AddEdge after Build")
	}
	if err := b.checkEndpoints(u, v); err != nil {
		return err
	}
	cu := b.deg[u]
	if cu >= b.offsets[u+1] {
		return fmt.Errorf("graph: pass 2 has more edges at vertex %d than pass 1 counted", u)
	}
	cv := b.deg[v]
	if cv >= b.offsets[v+1] {
		return fmt.Errorf("graph: pass 2 has more edges at vertex %d than pass 1 counted", v)
	}
	b.neighbors[cu] = v
	b.deg[u] = cu + 1
	b.neighbors[cv] = u
	b.deg[v] = cv + 1
	b.filled++
	return nil
}

// Build sorts each adjacency row in place, merges duplicate edges, assigns
// edge ids in lexicographic (min, max) order, validates weights, and
// freezes the arrays into a Graph. The builder must not be used afterwards.
func (b *CSRBuilder) Build() (*Graph, error) {
	switch b.state {
	case csrCounting:
		// A zero-edge caller may go straight to Build.
		if err := b.EndCount(); err != nil {
			return nil, err
		}
	case csrFilling:
	default:
		return nil, errors.New("graph: CSRBuilder already built")
	}
	if b.filled != b.counted {
		return nil, fmt.Errorf("graph: pass 2 delivered %d edges, pass 1 counted %d", b.filled, b.counted)
	}
	for v, w := range b.weights {
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: vertex %d has weight %v, want positive finite", v, w)
		}
	}

	// Sort rows, then merge duplicate slots in place, rebuilding offsets as
	// the write cursor advances (offsets[v] is rewritten only after both of
	// its reads, so the compaction is safe front-to-back).
	var w uint32
	for v := 0; v < b.n; v++ {
		lo, hi := b.offsets[v], b.offsets[v+1]
		slices.Sort(b.neighbors[lo:hi])
		start := w
		var prev Vertex = -1
		for i := lo; i < hi; i++ {
			if x := b.neighbors[i]; x != prev {
				b.neighbors[w] = x
				prev = x
				w++
			}
		}
		b.offsets[v] = start
	}
	b.offsets[b.n] = w
	slots := int(w)
	if slots%2 != 0 {
		return nil, errors.New("graph: internal error: odd adjacency slot count")
	}
	neighbors := b.neighbors[:slots]
	if slots <= cap(b.neighbors)*3/4 {
		neighbors = slices.Clone(neighbors) // heavy dedup: release the slack
	}

	// Assign edge ids by scanning rows in vertex order: every slot with
	// neighbor > row vertex opens the next id; its mirror slot is the first
	// unassigned slot of the neighbor's row (rows are sorted, and smaller
	// endpoints are visited in increasing order), tracked by reusing deg as
	// per-row cursors.
	m := slots / 2
	slotEdges := make([]EdgeID, slots)
	endpoints := make([]Vertex, slots)
	cursor := b.deg
	copy(cursor, b.offsets[:b.n])
	next := EdgeID(0)
	for u := 0; u < b.n; u++ {
		for i := b.offsets[u]; i < b.offsets[u+1]; i++ {
			v := neighbors[i]
			if v <= Vertex(u) {
				continue
			}
			j := cursor[v]
			if neighbors[j] != Vertex(u) {
				return nil, fmt.Errorf("graph: internal error: mirror slot mismatch at edge (%d,%d)", u, v)
			}
			endpoints[2*next] = Vertex(u)
			endpoints[2*next+1] = v
			slotEdges[i] = next
			slotEdges[j] = next
			cursor[v] = j + 1
			next++
		}
	}
	if int(next) != m {
		return nil, errors.New("graph: internal error: edge id count mismatch")
	}

	g := &Graph{
		weights:   b.weights,
		offsets:   b.offsets,
		neighbors: neighbors,
		slotEdges: slotEdges,
		endpoints: endpoints,
	}
	b.state = csrBuilt
	b.weights, b.offsets, b.neighbors, b.deg = nil, nil, nil, nil
	return g, nil
}
