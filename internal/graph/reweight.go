package graph

import (
	"fmt"
	"math"
)

// WithWeights returns a graph that shares this graph's structure but carries
// the given vertex weights. The adjacency arrays are shared (they are
// immutable), so the copy is O(n).
func (g *Graph) WithWeights(w []float64) (*Graph, error) {
	if len(w) != g.NumVertices() {
		return nil, fmt.Errorf("graph: WithWeights length %d, want %d", len(w), g.NumVertices())
	}
	weights := make([]float64, len(w))
	for v, x := range w {
		if !(x > 0) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("graph: vertex %d weight %v, want positive finite", v, x)
		}
		weights[v] = x
	}
	h := *g
	h.weights = weights
	return &h, nil
}
