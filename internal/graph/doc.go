// Package graph provides the immutable weighted-graph representation shared
// by every algorithm in this repository.
//
// A Graph is an undirected simple graph in CSR (compressed sparse row) form
// with positive float64 vertex weights: a flat uint32 offset array, a flat
// neighbor array, a slot-aligned edge-id array, and a flat edge-endpoint
// array — no per-vertex slices, no pointers, ~12 bytes per edge of
// structure. Each undirected edge has a stable edge id in [0, NumEdges());
// the adjacency structure stores, for every directed slot, both the
// neighbor and the id of the underlying undirected edge, so per-edge state
// (such as the dual variables x_e of the primal–dual algorithm) can live in
// flat slices indexed by edge id. Edge ids are assigned in lexicographic
// (min, max) endpoint order, which makes graph construction deterministic:
// the same edge set always yields the same ids regardless of insertion
// order.
//
// # Construction
//
// Two builders produce a Graph:
//
//   - Builder buffers an in-memory edge list (AddEdge in any order,
//     duplicates merged) and is the convenience path used by generators,
//     tests, and small instances.
//   - CSRBuilder is the bounded-memory streaming path: the caller streams
//     the edge list twice (CountEdge… EndCount, then AddEdge…), and the
//     builder assembles the CSR arrays in place — no edge-list buffer, no
//     comparison sort over m edges. ReadStream builds graphs from seekable
//     files this way, and deterministic generators replay their edge
//     stream for the two passes with no buffering at all.
//
// # Serialization
//
// io.go implements the two on-disk text formats ("mwvc-graph 1" with an
// edge-count header, and the streaming-friendly "mwvc-el 1" without one)
// plus the canonical writer whose byte stream defines the content hash used
// by the serve store. See docs/FORMATS.md for the format specification.
package graph
