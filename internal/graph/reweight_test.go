package graph

import (
	"math"
	"testing"
)

func TestWithWeights(t *testing.T) {
	g := mustTriangle(t)
	h, err := g.WithWeights([]float64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if h.Weight(0) != 5 || h.Weight(1) != 6 || h.Weight(2) != 7 {
		t.Fatal("weights not applied")
	}
	// Original untouched.
	if g.Weight(0) != 1 {
		t.Fatal("WithWeights mutated the original")
	}
	// Structure shared and identical.
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("structure changed")
	}
	for v := Vertex(0); v < 3; v++ {
		if len(h.Neighbors(v)) != len(g.Neighbors(v)) {
			t.Fatal("adjacency changed")
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithWeightsRejectsBadInput(t *testing.T) {
	g := mustTriangle(t)
	if _, err := g.WithWeights([]float64{1, 2}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := g.WithWeights([]float64{1, 2, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := g.WithWeights([]float64{1, 2, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := g.WithWeights([]float64{1, 2, math.Inf(1)}); err == nil {
		t.Fatal("infinite weight accepted")
	}
	if _, err := g.WithWeights([]float64{1, 2, math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestWithWeightsCopiesInput(t *testing.T) {
	g := mustTriangle(t)
	w := []float64{1, 2, 3}
	h, err := g.WithWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	w[0] = 99
	if h.Weight(0) != 1 {
		t.Fatal("WithWeights aliased the caller's slice")
	}
}
