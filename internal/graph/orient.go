package graph

// Orientation holds the w/d edge orientation used by the paper's progress
// argument (Section 3.2, "Analysis of progress via orienting edges"): edge
// (u, v) is directed from u to v when w(u)/d(u) < w(v)/d(v), with ties broken
// toward the smaller vertex id. Out-edges of u then all have initial dual
// weight w(u)/d(u), which upper-bounds the out-degree of active vertices as
// the algorithm progresses (Observation 4.3).
type Orientation struct {
	g *Graph
	// tail[e] is the vertex the edge leaves (the endpoint with the smaller
	// weight/degree ratio).
	tail []Vertex
}

// Orient computes the orientation induced by the vertex values ratio[v]
// (normally w'(v)/d(v)). Edges incident to vertices with ratio NaN or the
// degenerate d(v)=0 case never arise because such vertices have no edges.
func Orient(g *Graph, ratio []float64) *Orientation {
	tail := make([]Vertex, g.NumEdges())
	ep := g.EdgeEndpoints()
	for e := 0; e < g.NumEdges(); e++ {
		u, v := ep[2*e], ep[2*e+1]
		switch {
		case ratio[u] < ratio[v]:
			tail[e] = u
		case ratio[v] < ratio[u]:
			tail[e] = v
		default: // tie: deterministic break toward the smaller id (u < v always)
			tail[e] = u
		}
	}
	return &Orientation{g: g, tail: tail}
}

// Tail returns the vertex edge e is directed away from.
func (o *Orientation) Tail(e EdgeID) Vertex { return o.tail[e] }

// Head returns the vertex edge e is directed toward.
func (o *Orientation) Head(e EdgeID) Vertex { return o.g.Other(e, o.tail[e]) }

// OutDegrees returns the out-degree of every vertex.
func (o *Orientation) OutDegrees() []int {
	out := make([]int, o.g.NumVertices())
	for _, t := range o.tail {
		out[t]++
	}
	return out
}

// OutDegreesWhere returns, for every vertex, the number of out-edges e whose
// head satisfies include (used to measure the "active out-degree" of
// Observation 4.3, where include is "endpoint still active").
func (o *Orientation) OutDegreesWhere(include func(Vertex) bool) []int {
	out := make([]int, o.g.NumVertices())
	for e, t := range o.tail {
		if include(o.g.Other(EdgeID(e), t)) {
			out[t]++
		}
	}
	return out
}
