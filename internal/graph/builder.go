package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// Vertices are pre-declared by count; weights default to 1 and may be
// overridden with SetWeight. Duplicate edges are merged; self-loops are
// rejected at Build time.
type Builder struct {
	n       int
	weights []float64
	pairs   [][2]Vertex
}

// NewBuilder returns a Builder for a graph on n vertices, all with weight 1.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return &Builder{n: n, weights: w}
}

// NumVertices returns the declared vertex count.
func (b *Builder) NumVertices() int { return b.n }

// SetWeight sets the weight of vertex v. Weights must be positive and finite;
// violations surface at Build time.
func (b *Builder) SetWeight(v Vertex, w float64) *Builder {
	b.weights[v] = w
	return b
}

// SetWeights copies the given weights (which must have length n).
func (b *Builder) SetWeights(w []float64) *Builder {
	if len(w) != b.n {
		panic(fmt.Sprintf("graph: SetWeights length %d, want %d", len(w), b.n))
	}
	copy(b.weights, w)
	return b
}

// AddEdge records an undirected edge between u and v. Order of endpoints is
// irrelevant; duplicates are merged at Build time.
func (b *Builder) AddEdge(u, v Vertex) *Builder {
	b.pairs = append(b.pairs, [2]Vertex{u, v})
	return b
}

// NumPendingEdges returns the number of edges recorded so far (before
// deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.pairs) }

// Build validates and freezes the accumulated data into a Graph.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	for v, w := range b.weights {
		if !(w > 0) {
			return nil, fmt.Errorf("graph: vertex %d has non-positive weight %v", v, w)
		}
	}
	norm := make([][2]Vertex, 0, len(b.pairs))
	for _, p := range b.pairs {
		u, v := p[0], p[1]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) has endpoint out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", u)
		}
		if u > v {
			u, v = v, u
		}
		norm = append(norm, [2]Vertex{u, v})
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i][0] != norm[j][0] {
			return norm[i][0] < norm[j][0]
		}
		return norm[i][1] < norm[j][1]
	})
	edges := norm[:0]
	for i, p := range norm {
		if i == 0 || p != norm[i-1] {
			edges = append(edges, p)
		}
	}
	m := len(edges)

	deg := make([]int64, n)
	for _, p := range edges {
		deg[p[0]]++
		deg[p[1]]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	neighbors := make([]Vertex, 2*m)
	slotEdges := make([]EdgeID, 2*m)
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	// Edges are sorted by (min, max); inserting in edge order yields sorted
	// adjacency for the min endpoint but not the max, so sort rows afterward.
	for e, p := range edges {
		u, v := p[0], p[1]
		neighbors[cursor[u]], slotEdges[cursor[u]] = v, EdgeID(e)
		cursor[u]++
		neighbors[cursor[v]], slotEdges[cursor[v]] = u, EdgeID(e)
		cursor[v]++
	}
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		row := neighbors[lo:hi]
		ids := slotEdges[lo:hi]
		sort.Sort(&adjacencyRow{row, ids})
	}

	weights := make([]float64, n)
	copy(weights, b.weights)
	edgeCopy := make([][2]Vertex, m)
	copy(edgeCopy, edges)
	g := &Graph{
		weights:   weights,
		offsets:   offsets,
		neighbors: neighbors,
		slotEdges: slotEdges,
		edges:     edgeCopy,
	}
	return g, nil
}

// MustBuild is Build but panics on error; for tests and generators whose
// inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

type adjacencyRow struct {
	nbr []Vertex
	ids []EdgeID
}

func (r *adjacencyRow) Len() int           { return len(r.nbr) }
func (r *adjacencyRow) Less(i, j int) bool { return r.nbr[i] < r.nbr[j] }
func (r *adjacencyRow) Swap(i, j int) {
	r.nbr[i], r.nbr[j] = r.nbr[j], r.nbr[i]
	r.ids[i], r.ids[j] = r.ids[j], r.ids[i]
}

// FromEdgeList builds a graph directly from an edge list and weights; a
// convenience wrapper used throughout tests and examples.
func FromEdgeList(n int, edges [][2]Vertex, weights []float64) (*Graph, error) {
	b := NewBuilder(n)
	if weights != nil {
		b.SetWeights(weights)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
