package graph

import (
	"fmt"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// Vertices are pre-declared by count; weights default to 1 and may be
// overridden with SetWeight. Duplicate edges are merged; self-loops are
// rejected at Build time.
//
// Builder buffers the edge list in memory and is the convenience path for
// generators and tests; Build replays the buffered list through a
// CSRBuilder, so the assembled arrays are identical to the streaming path's
// and no comparison sort over the m edges is performed. For instances too
// large to buffer, stream edges through a CSRBuilder directly (or
// ReadStream, for on-disk instances).
type Builder struct {
	n       int
	weights []float64
	pairs   [][2]Vertex
}

// NewBuilder returns a Builder for a graph on n vertices, all with weight 1.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return &Builder{n: n, weights: w}
}

// NumVertices returns the declared vertex count.
func (b *Builder) NumVertices() int { return b.n }

// SetWeight sets the weight of vertex v. Weights must be positive and finite;
// violations surface at Build time.
func (b *Builder) SetWeight(v Vertex, w float64) *Builder {
	b.weights[v] = w
	return b
}

// SetWeights copies the given weights (which must have length n).
func (b *Builder) SetWeights(w []float64) *Builder {
	if len(w) != b.n {
		panic(fmt.Sprintf("graph: SetWeights length %d, want %d", len(w), b.n))
	}
	copy(b.weights, w)
	return b
}

// AddEdge records an undirected edge between u and v. Order of endpoints is
// irrelevant; duplicates are merged at Build time.
func (b *Builder) AddEdge(u, v Vertex) *Builder {
	b.pairs = append(b.pairs, [2]Vertex{u, v})
	return b
}

// NumPendingEdges returns the number of edges recorded so far (before
// deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.pairs) }

// Build validates and freezes the accumulated data into a Graph by replaying
// the buffered edge list through a two-pass CSRBuilder.
func (b *Builder) Build() (*Graph, error) {
	c := NewCSRBuilder(b.n)
	c.SetWeights(b.weights)
	for _, p := range b.pairs {
		if err := c.CountEdge(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	if err := c.EndCount(); err != nil {
		return nil, err
	}
	for _, p := range b.pairs {
		if err := c.AddEdge(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return c.Build()
}

// MustBuild is Build but panics on error; for tests and generators whose
// inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdgeList builds a graph directly from an edge list and weights; a
// convenience wrapper used throughout tests and examples.
func FromEdgeList(n int, edges [][2]Vertex, weights []float64) (*Graph, error) {
	b := NewBuilder(n)
	if weights != nil {
		b.SetWeights(weights)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
