package graph_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/graph"
)

// declaredVertexCount extracts the vertex count an input's size line claims,
// mirroring the scanner's skip rules (blank lines, '#' comments). The fuzz
// harness uses it as an out-of-memory guard: a syntactically valid header
// may declare up to MaxInt32 vertices — which Read would dutifully allocate
// — so inputs whose claim cannot be positively bounded are skipped rather
// than parsed. ok is false when no small bound could be established.
func declaredVertexCount(data []byte) (n int64, ok bool) {
	lines := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		if nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		lines++
		if lines < 2 {
			continue // header line
		}
		f := bytes.Fields(line)
		if len(f) == 0 {
			return 0, false
		}
		var x int64
		for _, c := range f[0] {
			if c < '0' || c > '9' || x > math.MaxInt32 {
				return 0, false
			}
			x = x*10 + int64(c-'0')
		}
		return x, true
	}
	return 0, false
}

// FuzzReadGraph feeds arbitrary bytes through both parse paths (the
// buffering Read and the two-pass ReadStream) and pins two properties:
// parsing never panics, and any accepted graph round-trips through
// WriteEdgeList→ReadStream bit-identically — same serialized bytes, same
// weight bit patterns, same edge-id order.
func FuzzReadGraph(f *testing.F) {
	f.Add([]byte("mwvc-graph 1\n3 2\nw 0 2.5\ne 0 1\ne 1 2\n"))
	f.Add([]byte("mwvc-el 1\n4\ne 0 1\nw 3 0.25\ne 2 3\ne 0 1\n"))
	f.Add([]byte("mwvc-graph 1\n2 1\ne 1 0\n"))
	f.Add([]byte("# comment\nmwvc-el 1\n5\nw 4 1e-3\ne 0 4\n"))
	f.Add([]byte("mwvc-graph 1\n1 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if n, ok := declaredVertexCount(data); !ok || n > 1<<20 {
			t.Skip("vertex-count claim unbounded or over the harness cap")
		}
		g, err := graph.Read(bytes.NewReader(data))
		gs, errS := graph.ReadStream(bytes.NewReader(data))
		if (err == nil) != (errS == nil) {
			t.Fatalf("Read err=%v but ReadStream err=%v on the same input", err, errS)
		}
		if err != nil {
			return // rejected cleanly by both paths
		}

		// Round-trip: serialize, re-ingest through the streaming path, and
		// serialize again. Accepted inputs must survive bit-identically.
		var first bytes.Buffer
		if err := graph.WriteEdgeList(&first, g); err != nil {
			t.Fatal(err)
		}
		g2, err := graph.ReadStream(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading serialized accepted graph: %v", err)
		}
		var second bytes.Buffer
		if err := graph.WriteEdgeList(&second, g2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("WriteEdgeList → ReadStream → WriteEdgeList is not a fixed point")
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip changed sizes: n %d→%d m %d→%d",
				g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Weight(graph.Vertex(v)), g2.Weight(graph.Vertex(v))
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("round-trip changed weight of %d: %v → %v", v, a, b)
			}
		}
		ea, eb := g.EdgeEndpoints(), gs.EdgeEndpoints()
		if len(ea) != len(eb) {
			t.Fatalf("Read and ReadStream disagree on edge count: %d vs %d", len(ea)/2, len(eb)/2)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("Read and ReadStream disagree at endpoint slot %d", i)
			}
		}
	})
}
