package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(77, 40, 200)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), elFormatHeader+"\n") {
		t.Fatalf("edge-list output missing header: %q", buf.String()[:20])
	}
	h, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, h)
}

// TestReadStreamMatchesRead pins that the two-pass CSR path and the one-pass
// Builder path parse every input to the identical graph, for both formats.
func TestReadStreamMatchesRead(t *testing.T) {
	g := randomGraph(99, 60, 340)
	for _, write := range []struct {
		name string
		fn   func(*bytes.Buffer) error
	}{
		{"mwvc-graph", func(b *bytes.Buffer) error { return Write(b, g) }},
		{"mwvc-el", func(b *bytes.Buffer) error { return WriteEdgeList(b, g) }},
	} {
		t.Run(write.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := write.fn(&buf); err != nil {
				t.Fatal(err)
			}
			one, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			two, err := ReadStream(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if err := two.Validate(); err != nil {
				t.Fatal(err)
			}
			assertSameGraph(t, one, two)
			assertSameGraph(t, g, two)
		})
	}
}

func TestEdgeListToleratesDuplicatesAndInterleaving(t *testing.T) {
	in := "mwvc-el 1\n3\ne 0 1\nw 2 5.5\ne 1 0\n# dup above\ne 1 2\nw 0 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.Weight(0) != 2 || g.Weight(2) != 5.5 {
		t.Fatalf("parsed wrong graph: %v", g)
	}
	h, err := ReadStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, h)
}

func TestEdgeListRejectsEdgeCountInHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("mwvc-el 1\n3 2\ne 0 1\n")); err == nil {
		t.Fatal("mwvc-el size line with edge count accepted")
	}
}

func TestReadStreamRejectsWhatReadRejects(t *testing.T) {
	cases := []string{
		"",
		"bogus 1\n2 1\ne 0 1\n",
		"mwvc-graph 1\n3 2\ne 0 1\n",        // count mismatch
		"mwvc-graph 1\n2 2\ne 0 1\ne 1 0\n", // dedup mismatch vs header
		"mwvc-graph 1\n2 1\ne 0 0\n",        // self-loop
		"mwvc-graph 1\n2 1\ne 0 7\n",        // out of range
		"mwvc-el 1\n2\nw 9 1.5\ne 0 1\n",    // weight vertex out of range
		// Ids beyond int32 must be rejected, not silently truncated by the
		// Vertex cast (4294967297 ≡ 1 mod 2^32 would otherwise parse as 1).
		"mwvc-el 1\n10\ne 4294967297 2\n",
		"mwvc-el 1\n10\nw 4294967299 5\ne 0 1\n",
	}
	for _, in := range cases {
		if _, err := ReadStream(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadStream accepted malformed input %q", in)
		}
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("Read accepted malformed input %q", in)
		}
	}
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)", a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Weight(Vertex(v)) != b.Weight(Vertex(v)) {
			t.Fatalf("weight of %d differs: %v vs %v", v, a.Weight(Vertex(v)), b.Weight(Vertex(v)))
		}
	}
	for e := 0; e < a.NumEdges(); e++ {
		au, av := a.Edge(EdgeID(e))
		bu, bv := b.Edge(EdgeID(e))
		if au != bu || av != bv {
			t.Fatalf("edge %d differs: (%d,%d) vs (%d,%d)", e, au, av, bu, bv)
		}
	}
}
