package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustTriangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdgeList(3, [][2]Vertex{{0, 1}, {1, 2}, {0, 2}}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.AverageDegree() != 0 {
		t.Fatalf("empty graph average degree %v", g.AverageDegree())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("empty graph max degree %v", g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := NewBuilder(5).MustBuild()
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := Vertex(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("vertex %d degree %d", v, g.Degree(v))
		}
		if g.Weight(v) != 1 {
			t.Fatalf("default weight %v", g.Weight(v))
		}
	}
}

func TestTriangleBasics(t *testing.T) {
	g := mustTriangle(t)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := Vertex(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("vertex %d degree %d", v, g.Degree(v))
		}
	}
	if g.TotalWeight() != 6 {
		t.Fatalf("total weight %v", g.TotalWeight())
	}
	if g.AverageDegree() != 2 {
		t.Fatalf("average degree %v", g.AverageDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEdgesMerged(t *testing.T) {
	g, err := FromEdgeList(3, [][2]Vertex{{0, 1}, {1, 0}, {0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("got %d edges, want 2", g.NumEdges())
	}
}

func TestSelfLoopRejected(t *testing.T) {
	_, err := FromEdgeList(2, [][2]Vertex{{1, 1}}, nil)
	if err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestOutOfRangeEndpointRejected(t *testing.T) {
	if _, err := FromEdgeList(2, [][2]Vertex{{0, 2}}, nil); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := FromEdgeList(2, [][2]Vertex{{-1, 0}}, nil); err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

func TestNonPositiveWeightRejected(t *testing.T) {
	b := NewBuilder(2)
	b.SetWeight(0, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("zero weight accepted")
	}
	b2 := NewBuilder(2)
	b2.SetWeight(1, -3)
	if _, err := b2.Build(); err == nil {
		t.Fatal("negative weight accepted")
	}
	b3 := NewBuilder(1)
	b3.SetWeight(0, math.NaN())
	if _, err := b3.Build(); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestHasEdgeAndEdgeBetween(t *testing.T) {
	g := mustTriangle(t)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("missing triangle edges")
	}
	star, err := FromEdgeList(4, [][2]Vertex{{0, 1}, {0, 2}, {0, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if star.HasEdge(1, 2) {
		t.Fatal("HasEdge(1,2) true on star")
	}
	e := star.EdgeBetween(0, 3)
	if e < 0 {
		t.Fatal("EdgeBetween(0,3) not found")
	}
	u, v := star.Edge(e)
	if u != 0 || v != 3 {
		t.Fatalf("edge %d endpoints (%d,%d)", e, u, v)
	}
	if star.EdgeBetween(1, 2) != -1 {
		t.Fatal("EdgeBetween(1,2) found on star")
	}
}

func TestOther(t *testing.T) {
	g := mustTriangle(t)
	e := g.EdgeBetween(1, 2)
	if g.Other(e, 1) != 2 || g.Other(e, 2) != 1 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	g.Other(e, 0)
}

func TestSlotAlignment(t *testing.T) {
	g := mustTriangle(t)
	for v := Vertex(0); v < 3; v++ {
		nbrs := g.Neighbors(v)
		ids := g.IncidentEdges(v)
		if len(nbrs) != len(ids) {
			t.Fatalf("vertex %d slot mismatch", v)
		}
		for i := range nbrs {
			a, b := g.Edge(ids[i])
			if !(a == v && b == nbrs[i]) && !(b == v && a == nbrs[i]) {
				t.Fatalf("vertex %d slot %d: edge %d=(%d,%d) vs neighbor %d", v, i, ids[i], a, b, nbrs[i])
			}
		}
	}
}

func TestInduced(t *testing.T) {
	// Path 0-1-2-3 plus chord 0-2.
	g, err := FromEdgeList(4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {0, 2}}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	sub, orig, err := g.Induced([]Vertex{2, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("induced n=%d", sub.NumVertices())
	}
	// Surviving edges: (0,2) and (2,3) → 2 edges.
	if sub.NumEdges() != 2 {
		t.Fatalf("induced m=%d, want 2", sub.NumEdges())
	}
	if orig[0] != 2 || orig[1] != 0 || orig[2] != 3 {
		t.Fatalf("orig mapping %v", orig)
	}
	if sub.Weight(0) != 3 || sub.Weight(1) != 1 || sub.Weight(2) != 4 {
		t.Fatal("induced weights not carried over")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedRejectsDuplicates(t *testing.T) {
	g := mustTriangle(t)
	if _, _, err := g.Induced([]Vertex{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, _, err := g.Induced([]Vertex{0, 5}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestDegreesWithin(t *testing.T) {
	g := mustTriangle(t)
	deg := g.DegreesWithin(func(v Vertex) bool { return v != 2 })
	if deg[0] != 1 || deg[1] != 1 || deg[2] != 2 {
		t.Fatalf("DegreesWithin = %v", deg)
	}
	all := g.DegreesWithin(func(Vertex) bool { return true })
	for v, d := range all {
		if d != g.Degree(Vertex(v)) {
			t.Fatalf("DegreesWithin(all) mismatch at %d", v)
		}
	}
}

func TestDegreesWithinMaskAgreesWithPredicate(t *testing.T) {
	g := randomGraph(7, 200, 1500)
	mask := make([]bool, g.NumVertices())
	for v := range mask {
		mask[v] = v%3 != 0
	}
	want := g.DegreesWithin(func(v Vertex) bool { return mask[v] })
	got := g.DegreesWithinMask(mask)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("mask fast path disagrees at vertex %d: %d vs %d", v, got[v], want[v])
		}
	}
	// nil mask counts every neighbor.
	for v, d := range g.DegreesWithinMask(nil) {
		if d != g.Degree(Vertex(v)) {
			t.Fatalf("DegreesWithinMask(nil) mismatch at %d", v)
		}
	}
	// The Into variant writes into caller storage and returns it.
	dst := make([]int, g.NumVertices())
	if &g.DegreesWithinMaskInto(dst, mask)[0] != &dst[0] {
		t.Fatal("Into variant did not reuse caller storage")
	}
	for v := range want {
		if dst[v] != want[v] {
			t.Fatalf("Into variant disagrees at vertex %d", v)
		}
	}
}

func TestDegreesWithinMaskIntoPanicsOnBadLength(t *testing.T) {
	g := mustTriangle(t)
	defer func() {
		if recover() == nil {
			t.Fatal("short dst accepted")
		}
	}()
	g.DegreesWithinMaskInto(make([]int, 1), nil)
}

func TestInducedScratchReuseKeepsResultsIndependent(t *testing.T) {
	// Back-to-back Induced calls share the pooled index scratch; results
	// must be independent and the scratch reset between calls (a stale
	// entry would leak an edge or a false duplicate into the second call).
	g := randomGraph(11, 300, 3000)
	vs1 := []Vertex{5, 10, 15, 20, 25, 30}
	vs2 := []Vertex{5, 11, 16, 21, 26, 31} // overlaps vs1 at vertex 5
	sub1a, _, err := g.Induced(vs1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Induced(vs2); err != nil {
		t.Fatal(err)
	}
	sub1b, _, err := g.Induced(vs1)
	if err != nil {
		t.Fatal(err)
	}
	if sub1a.NumEdges() != sub1b.NumEdges() || sub1a.String() != sub1b.String() {
		t.Fatalf("induced subgraph changed across pooled calls: %v vs %v", sub1a, sub1b)
	}
	if err := sub1b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Error paths must reset the scratch too.
	if _, _, err := g.Induced([]Vertex{1, 2, 1}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, _, err := g.Induced([]Vertex{1, 2, Vertex(g.NumVertices())}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	sub1c, _, err := g.Induced(vs1)
	if err != nil {
		t.Fatal(err)
	}
	if sub1c.NumEdges() != sub1a.NumEdges() {
		t.Fatalf("scratch corrupted by error path: %v vs %v", sub1c, sub1a)
	}
}

// BenchmarkInduced measures the per-call cost of Induced; the pooled index
// scratch removes the per-call map that used to dominate allocations.
func BenchmarkInduced(b *testing.B) {
	g := randomGraph(3, 20000, 200000)
	vertices := make([]Vertex, 0, 2000)
	for v := 0; v < 20000; v += 10 {
		vertices = append(vertices, Vertex(v))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Induced(vertices); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegreesWithin compares the predicate and mask paths.
func BenchmarkDegreesWithin(b *testing.B) {
	g := randomGraph(3, 20000, 400000)
	mask := make([]bool, g.NumVertices())
	for v := range mask {
		mask[v] = v%4 != 0
	}
	b.Run("predicate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.DegreesWithin(func(v Vertex) bool { return mask[v] })
		}
	})
	b.Run("mask", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.DegreesWithinMask(mask)
		}
	})
	b.Run("mask-into", func(b *testing.B) {
		dst := make([]int, g.NumVertices())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.DegreesWithinMaskInto(dst, mask)
		}
	})
}

// randomGraph builds a random graph for property tests.
func randomGraph(seed uint64, n, m int) *Graph {
	src := rng.New(seed)
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(Vertex(v), 0.1+10*src.Float64())
	}
	for i := 0; i < m; i++ {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			b.AddEdge(Vertex(u), Vertex(v))
		}
	}
	return b.MustBuild()
}

func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 2+int(seed%60), int(seed%300))
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Degree sum equals 2m.
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.Degree(Vertex(v))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeIDsCoverAllEdges(t *testing.T) {
	g := randomGraph(17, 40, 200)
	seen := make([]int, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.IncidentEdges(Vertex(v)) {
			seen[e]++
		}
	}
	for e, c := range seen {
		if c != 2 {
			t.Fatalf("edge %d appears in %d adjacency slots, want 2", e, c)
		}
	}
}

func TestOrientation(t *testing.T) {
	// Star: center 0 with leaves 1..4. ratio[0] lowest → all edges leave 0.
	g, err := FromEdgeList(5, [][2]Vertex{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := []float64{0.1, 1, 1, 1, 1}
	o := Orient(g, ratio)
	out := o.OutDegrees()
	if out[0] != 4 {
		t.Fatalf("center out-degree %d, want 4", out[0])
	}
	for v := 1; v < 5; v++ {
		if out[v] != 0 {
			t.Fatalf("leaf %d out-degree %d", v, out[v])
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if o.Tail(EdgeID(e)) != 0 {
			t.Fatalf("edge %d tail %d", e, o.Tail(EdgeID(e)))
		}
		if o.Head(EdgeID(e)) == 0 {
			t.Fatalf("edge %d head is the center", e)
		}
	}
}

func TestOrientationTieBreak(t *testing.T) {
	g, err := FromEdgeList(2, [][2]Vertex{{0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := Orient(g, []float64{0.5, 0.5})
	if o.Tail(0) != 0 {
		t.Fatalf("tie should orient from smaller id, got tail %d", o.Tail(0))
	}
}

func TestOrientationOutDegreeSum(t *testing.T) {
	g := randomGraph(99, 30, 120)
	ratio := make([]float64, g.NumVertices())
	src := rng.New(1)
	for v := range ratio {
		ratio[v] = src.Float64()
	}
	o := Orient(g, ratio)
	sum := 0
	for _, d := range o.OutDegrees() {
		sum += d
	}
	if sum != g.NumEdges() {
		t.Fatalf("out-degree sum %d != m %d", sum, g.NumEdges())
	}
}

func TestOutDegreesWhere(t *testing.T) {
	g := randomGraph(5, 20, 60)
	ratio := make([]float64, g.NumVertices())
	for v := range ratio {
		ratio[v] = float64(v)
	}
	o := Orient(g, ratio)
	all := o.OutDegreesWhere(func(Vertex) bool { return true })
	plain := o.OutDegrees()
	for v := range all {
		if all[v] != plain[v] {
			t.Fatalf("OutDegreesWhere(all) mismatch at %d", v)
		}
	}
	none := o.OutDegreesWhere(func(Vertex) bool { return false })
	for v, d := range none {
		if d != 0 {
			t.Fatalf("OutDegreesWhere(none)[%d] = %d", v, d)
		}
	}
}
