package graph

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Vertex is the integer id of a vertex, in [0, NumVertices()).
type Vertex = int32

// EdgeID is the integer id of an undirected edge, in [0, NumEdges()).
type EdgeID = int32

// Graph is an immutable undirected simple graph with vertex weights, stored
// in CSR (compressed sparse row) form: four flat arrays and nothing else.
// Construct one with a Builder or a CSRBuilder; the zero value is an empty
// graph.
//
// Memory layout (n vertices, m undirected edges):
//
//	weights    n  × 8 bytes   vertex weights
//	offsets  n+1  × 4 bytes   row offsets into neighbors/slotEdges
//	neighbors 2m  × 4 bytes   adjacency targets, sorted per row
//	slotEdges 2m  × 4 bytes   undirected edge id per adjacency slot
//	endpoints 2m  × 4 bytes   edge id → (u, v) with u < v
//
// i.e. 8n + 12m + O(1) bytes for an unweighted graph's structure — about
// 12 MB per million edges — with no per-vertex slice headers or pointers
// for the garbage collector to trace.
type Graph struct {
	weights   []float64 // len n; positive vertex weights
	offsets   []uint32  // len n+1; CSR row offsets into neighbors/slotEdges
	neighbors []Vertex  // len 2m; adjacency targets
	slotEdges []EdgeID  // len 2m; undirected edge id per adjacency slot
	endpoints []Vertex  // len 2m; endpoints[2e], endpoints[2e+1] = (u, v), u < v
}

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int { return len(g.weights) }

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.endpoints) / 2 }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v Vertex) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// IncidentEdges returns, slot-aligned with Neighbors(v), the undirected edge
// ids of the edges incident to v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) IncidentEdges(v Vertex) []EdgeID {
	return g.slotEdges[g.offsets[v]:g.offsets[v+1]]
}

// Edge returns the endpoints (u, v) of edge e with u < v.
func (g *Graph) Edge(e EdgeID) (Vertex, Vertex) {
	return g.endpoints[2*e], g.endpoints[2*e+1]
}

// EdgeEndpoints returns the flat endpoint array: entry 2e is the smaller
// endpoint of edge e and entry 2e+1 the larger. Edge ids are assigned in
// lexicographic (min, max) order, so the array is sorted by pairs. It
// aliases internal storage and must not be modified; per-edge hot loops
// iterate it directly instead of calling Edge per id.
func (g *Graph) EdgeEndpoints() []Vertex { return g.endpoints }

// Weight returns the weight of vertex v.
func (g *Graph) Weight(v Vertex) float64 { return g.weights[v] }

// Weights returns the full weight slice. It aliases internal storage and
// must not be modified.
func (g *Graph) Weights() []float64 { return g.weights }

// TotalWeight returns the sum of all vertex weights.
func (g *Graph) TotalWeight() float64 {
	t := 0.0
	for _, w := range g.weights {
		t += w
	}
	return t
}

// AverageDegree returns 2m/n, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(g.NumVertices())
}

// MaxDegree returns the maximum degree Δ, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(Vertex(v)); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// HasEdge reports whether u and v are adjacent. It runs a binary search over
// u's (sorted) adjacency list, so it costs O(log deg(u)).
//
//mwvc:hotpath
func (g *Graph) HasEdge(u, v Vertex) bool {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// EdgeBetween returns the edge id joining u and v, or -1 if none exists.
func (g *Graph) EdgeBetween(u, v Vertex) EdgeID {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(adj) && adj[lo] == v {
		return g.IncidentEdges(u)[lo]
	}
	return -1
}

// Other returns the endpoint of edge e that is not v. It panics if v is not
// an endpoint of e.
func (g *Graph) Other(e EdgeID, v Vertex) Vertex {
	a, b := g.endpoints[2*e], g.endpoints[2*e+1]
	switch v {
	case a:
		return b
	case b:
		return a
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d", v, e))
}

// Validate checks structural invariants: offsets monotone, adjacency sorted,
// edge ids consistent with endpoints, weights positive and finite. It is
// primarily used by tests and by deserialization.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), n+1)
	}
	if g.offsets[0] != 0 {
		return errors.New("graph: offsets[0] != 0")
	}
	if g.offsets[n] != uint32(len(g.neighbors)) {
		return errors.New("graph: offsets[n] != len(neighbors)")
	}
	if len(g.neighbors) != len(g.slotEdges) {
		return errors.New("graph: neighbors/slotEdges length mismatch")
	}
	if len(g.neighbors) != 2*g.NumEdges() {
		return errors.New("graph: adjacency slot count != 2m")
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		w := g.weights[v]
		if !(w > 0) || math.IsInf(w, 0) {
			return fmt.Errorf("graph: weight of vertex %d is %v, want positive finite", v, w)
		}
		adj := g.Neighbors(Vertex(v))
		ids := g.IncidentEdges(Vertex(v))
		for i, u := range adj {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: neighbor %d of vertex %d out of range", u, v)
			}
			if u == Vertex(v) {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && adj[i-1] >= u {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted", v)
			}
			e := ids[i]
			if e < 0 || int(e) >= g.NumEdges() {
				return fmt.Errorf("graph: edge id %d out of range at vertex %d", e, v)
			}
			a, b := g.endpoints[2*e], g.endpoints[2*e+1]
			if !(a == Vertex(v) && b == u) && !(b == Vertex(v) && a == u) {
				return fmt.Errorf("graph: edge %d endpoints (%d,%d) do not match slot (%d,%d)", e, a, b, v, u)
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if g.endpoints[2*e] >= g.endpoints[2*e+1] {
			return fmt.Errorf("graph: edge %d endpoints not ordered: (%d,%d)", e, g.endpoints[2*e], g.endpoints[2*e+1])
		}
	}
	return nil
}

// inducedScratch pools the n-sized old→new index arrays used by Induced.
// Pooled slices uphold the invariant that every entry is -1; borrowers reset
// the entries they touched before returning a slice (O(|vertices|), not
// O(n)), so repeated Induced calls allocate no per-call index map.
var inducedScratch sync.Pool

// borrowIndex returns an all -1 index slice of length ≥ n.
func borrowIndex(n int) []Vertex {
	if p, _ := inducedScratch.Get().(*[]Vertex); p != nil && cap(*p) >= n {
		return (*p)[:cap(*p)]
	}
	s := make([]Vertex, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// returnIndex resets the touched entries of s (the first `used` entries of
// vertices, all in range) and returns it to the pool.
func returnIndex(s []Vertex, vertices []Vertex, used int) {
	for _, v := range vertices[:used] {
		s[v] = -1
	}
	inducedScratch.Put(&s)
}

// Induced returns the subgraph induced by the given vertex set together with
// a mapping from new vertex ids to original ids. Vertices may be listed in
// any order; duplicates are rejected.
func (g *Graph) Induced(vertices []Vertex) (*Graph, []Vertex, error) {
	toNew := borrowIndex(g.NumVertices())
	for i, v := range vertices {
		if v < 0 || int(v) >= g.NumVertices() {
			returnIndex(toNew, vertices, i)
			return nil, nil, fmt.Errorf("graph: induced vertex %d out of range", v)
		}
		if toNew[v] >= 0 {
			returnIndex(toNew, vertices, i)
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		toNew[v] = Vertex(i)
	}
	b := NewBuilder(len(vertices))
	orig := make([]Vertex, len(vertices))
	for i, v := range vertices {
		orig[i] = v
		b.SetWeight(Vertex(i), g.Weight(v))
	}
	for _, v := range vertices {
		nv := toNew[v]
		for _, u := range g.Neighbors(v) {
			if nu := toNew[u]; nu >= 0 && nv < nu {
				b.AddEdge(nv, nu)
			}
		}
	}
	returnIndex(toNew, vertices, len(vertices))
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// DegreesWithin returns, for every vertex, the number of neighbors u for
// which include(u) is true. It is the residual-degree primitive of
// Algorithm 2 Line (2k), where include is "u is nonfrozen". When the
// predicate is backed by a []bool, DegreesWithinMask avoids the indirect
// call per adjacency slot.
func (g *Graph) DegreesWithin(include func(Vertex) bool) []int {
	deg := make([]int, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(Vertex(v)) {
			if include(u) {
				deg[v]++
			}
		}
	}
	return deg
}

// DegreesWithinMask is the []bool fast path of DegreesWithin: deg[v] counts
// the neighbors u with mask[u]. A nil mask counts every neighbor. It is the
// form used by the residual-degree computations of the core and centralized
// algorithms, where the membership set is already a flat boolean slice.
func (g *Graph) DegreesWithinMask(mask []bool) []int {
	return g.DegreesWithinMaskInto(make([]int, g.NumVertices()), mask)
}

// DegreesWithinMaskInto is DegreesWithinMask writing into caller-provided
// storage (len must be NumVertices), for callers that recycle the slice.
//
//mwvc:hotpath
func (g *Graph) DegreesWithinMaskInto(deg []int, mask []bool) []int {
	if len(deg) != g.NumVertices() {
		panic(badDstLen(len(deg), g.NumVertices()))
	}
	if mask == nil {
		for v := range deg {
			deg[v] = g.Degree(Vertex(v))
		}
		return deg
	}
	for v := range deg {
		d := 0
		for _, u := range g.Neighbors(Vertex(v)) {
			if mask[u] {
				d++
			}
		}
		deg[v] = d
	}
	return deg
}

// badDstLen formats the DegreesWithinMaskInto length-mismatch panic message
// outside the hot path, keeping fmt out of the annotated function.
func badDstLen(got, want int) string {
	return fmt.Sprintf("graph: DegreesWithinMaskInto dst length %d, want %d", got, want)
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d, avg_deg=%.2f)", g.NumVertices(), g.NumEdges(), g.AverageDegree())
}
