package graph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

// randomPairs returns a deterministic edge stream with duplicates and both
// orientations represented.
func randomPairs(seed uint64, n, count int) [][2]Vertex {
	src := rng.New(seed).Split('c', 's', 'r')
	pairs := make([][2]Vertex, 0, count)
	for len(pairs) < count {
		u := Vertex(src.Intn(n))
		v := Vertex(src.Intn(n))
		if u == v {
			continue
		}
		pairs = append(pairs, [2]Vertex{u, v})
		if src.Intn(4) == 0 { // sprinkle duplicates, sometimes flipped
			if src.Intn(2) == 0 {
				u, v = v, u
			}
			pairs = append(pairs, [2]Vertex{u, v})
		}
	}
	return pairs
}

func buildViaCSR(t *testing.T, n int, pairs [][2]Vertex, weights []float64) *Graph {
	t.Helper()
	c := NewCSRBuilder(n)
	if weights != nil {
		c.SetWeights(weights)
	}
	for _, p := range pairs {
		if err := c.CountEdge(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.EndCount(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := c.AddEdge(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCSRBuilderMatchesBuilder pins the bit-for-bit equivalence of the
// streaming and buffered construction paths: same edge multiset in, same
// serialized graph out — including edge id assignment, which downstream
// per-edge state depends on.
func TestCSRBuilderMatchesBuilder(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		n := 50 + int(seed)*37
		pairs := randomPairs(seed, n, 400)
		weights := make([]float64, n)
		wsrc := rng.New(seed).Split('w')
		for i := range weights {
			weights[i] = 0.5 + 10*wsrc.Float64()
		}

		ref, err := FromEdgeList(n, pairs, weights)
		if err != nil {
			t.Fatal(err)
		}
		got := buildViaCSR(t, n, pairs, weights)

		if err := got.Validate(); err != nil {
			t.Fatalf("seed %d: CSR-built graph invalid: %v", seed, err)
		}
		var refBuf, gotBuf bytes.Buffer
		if err := Write(&refBuf, ref); err != nil {
			t.Fatal(err)
		}
		if err := Write(&gotBuf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refBuf.Bytes(), gotBuf.Bytes()) {
			t.Fatalf("seed %d: CSR-built graph differs from Builder-built graph", seed)
		}
		// Edge ids must agree slot-for-slot, not just the serialized edges.
		for v := 0; v < n; v++ {
			refIDs, gotIDs := ref.IncidentEdges(Vertex(v)), got.IncidentEdges(Vertex(v))
			for i := range refIDs {
				if refIDs[i] != gotIDs[i] {
					t.Fatalf("seed %d: vertex %d slot %d edge id %d != %d", seed, v, i, gotIDs[i], refIDs[i])
				}
			}
		}
	}
}

func TestCSRBuilderEmptyAndEdgeless(t *testing.T) {
	g, err := NewCSRBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	g, err = NewCSRBuilder(3).Build() // Build without EndCount is allowed
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 0 {
		t.Fatalf("edgeless graph got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRBuilderErrors(t *testing.T) {
	t.Run("self-loop", func(t *testing.T) {
		if err := NewCSRBuilder(3).CountEdge(1, 1); err == nil {
			t.Fatal("self-loop not rejected")
		}
	})
	t.Run("out-of-range", func(t *testing.T) {
		if err := NewCSRBuilder(3).CountEdge(0, 3); err == nil {
			t.Fatal("out-of-range endpoint not rejected")
		}
	})
	t.Run("add-before-endcount", func(t *testing.T) {
		b := NewCSRBuilder(3)
		if err := b.AddEdge(0, 1); err == nil {
			t.Fatal("AddEdge before EndCount not rejected")
		}
	})
	t.Run("count-after-endcount", func(t *testing.T) {
		b := NewCSRBuilder(3)
		if err := b.EndCount(); err != nil {
			t.Fatal(err)
		}
		if err := b.CountEdge(0, 1); err == nil {
			t.Fatal("CountEdge after EndCount not rejected")
		}
	})
	t.Run("pass-mismatch-extra", func(t *testing.T) {
		b := NewCSRBuilder(3)
		if err := b.CountEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.EndCount(); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(0, 1); err == nil {
			t.Fatal("excess pass-2 edge not rejected")
		}
	})
	t.Run("pass-mismatch-missing", func(t *testing.T) {
		b := NewCSRBuilder(3)
		if err := b.CountEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.EndCount(); err != nil {
			t.Fatal(err)
		}
		_, err := b.Build()
		if err == nil || !strings.Contains(err.Error(), "pass 2") {
			t.Fatalf("missing pass-2 edges: got %v", err)
		}
	})
	t.Run("bad-weight", func(t *testing.T) {
		b := NewCSRBuilder(2)
		b.SetWeight(1, -3)
		if _, err := b.Build(); err == nil {
			t.Fatal("negative weight not rejected")
		}
	})
	t.Run("build-twice", func(t *testing.T) {
		b := NewCSRBuilder(2)
		if _, err := b.Build(); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Build(); err == nil {
			t.Fatal("second Build not rejected")
		}
	})
}

// emitChordRing streams the deterministic ~4n-edge instance used by the
// build benchmarks; it is the "generator run twice" pattern of the
// streaming path.
func emitChordRing(n int, emit func(u, v Vertex)) {
	for v := 0; v < n; v++ {
		for k := 1; k <= 4; k++ {
			emit(Vertex(v), Vertex((v+k)%n))
		}
	}
}

// BenchmarkGraphBuildSlice measures the buffered edge-list path (Builder):
// the pair slice is the input representation, so its cost is charged here.
func BenchmarkGraphBuildSlice(b *testing.B) {
	n := 250000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n)
		emitChordRing(n, func(u, v Vertex) { bld.AddEdge(u, v) })
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuildCSRStream measures the streaming two-pass path
// (CSRBuilder) fed by replaying a deterministic generator — no edge buffer
// at all, only the final CSR arrays are allocated.
func BenchmarkGraphBuildCSRStream(b *testing.B) {
	n := 250000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewCSRBuilder(n)
		emitChordRing(n, func(u, v Vertex) {
			if err := c.CountEdge(u, v); err != nil {
				b.Fatal(err)
			}
		})
		if err := c.EndCount(); err != nil {
			b.Fatal(err)
		}
		emitChordRing(n, func(u, v Vertex) {
			if err := c.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
		})
		if _, err := c.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
