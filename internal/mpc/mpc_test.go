package mpc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Machines: 0, MemoryWords: 10},
		{Machines: 2, MemoryWords: 0},
		{Machines: 2, MemoryWords: 10, PairWords: -1},
		{Machines: 2, MemoryWords: 10, Parallelism: -1},
	}
	for _, cfg := range bad {
		if _, err := NewCluster(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := NewCluster(Config{Machines: 1, MemoryWords: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageDelivery(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 3, MemoryWords: 100})
	// Round 1: everyone sends its id to machine 0.
	err := c.Round(func(m *Machine) error {
		return m.Send(0, []uint64{uint64(m.ID()) + 10})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: machine 0 checks its inbox (ordered by sender).
	err = c.Round(func(m *Machine) error {
		if m.ID() != 0 {
			if len(m.Inbox()) != 0 {
				t.Errorf("machine %d has unexpected inbox", m.ID())
			}
			return nil
		}
		in := m.Inbox()
		if len(in) != 3 {
			t.Errorf("machine 0 inbox size %d", len(in))
			return nil
		}
		for i, msg := range in {
			if msg.From != i || msg.Data[0] != uint64(i)+10 {
				t.Errorf("inbox[%d] = from %d data %v", i, msg.From, msg.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Rounds; got != 2 {
		t.Fatalf("rounds %d, want 2", got)
	}
}

func TestSendBudgetEnforced(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 2, MemoryWords: 4})
	err := c.Round(func(m *Machine) error {
		if m.ID() == 0 {
			return m.Send(1, make([]uint64, 5))
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "sent") {
		t.Fatalf("oversend not rejected: %v", err)
	}
}

func TestReceiveBudgetEnforced(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 5, MemoryWords: 4})
	// Four machines each send 2 words to machine 0: 8 > 4.
	err := c.Round(func(m *Machine) error {
		if m.ID() != 0 {
			return m.Send(0, make([]uint64, 2))
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "received") {
		t.Fatalf("overreceive not rejected: %v", err)
	}
}

func TestInvalidDestination(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 2, MemoryWords: 10})
	err := c.Round(func(m *Machine) error {
		return m.Send(7, []uint64{1})
	})
	if err == nil {
		t.Fatal("invalid destination accepted")
	}
}

func TestCongestedCliquePairCap(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 2, MemoryWords: 100, PairWords: 1})
	// Two one-word messages on the same ordered pair exceed the cap.
	err := c.Round(func(m *Machine) error {
		if m.ID() == 0 {
			if err := m.Send(1, []uint64{1}); err != nil {
				return err
			}
			return m.Send(1, []uint64{2})
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "congested clique") {
		t.Fatalf("pair cap not enforced: %v", err)
	}
	// One word per ordered pair is fine, both directions.
	c2 := newTestCluster(t, Config{Machines: 2, MemoryWords: 100, PairWords: 1})
	err = c2.Round(func(m *Machine) error {
		return m.Send(1-m.ID(), []uint64{uint64(m.ID())})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChargeAndRelease(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 1, MemoryWords: 10})
	err := c.Round(func(m *Machine) error {
		if err := m.Charge(8); err != nil {
			return err
		}
		if m.Resident() != 8 {
			t.Errorf("resident %d, want 8", m.Resident())
		}
		m.Release(3)
		if m.Resident() != 5 {
			t.Errorf("resident %d, want 5", m.Resident())
		}
		return m.Charge(5) // back to 10, exactly at budget
	})
	if err != nil {
		t.Fatal(err)
	}
	if hw := c.Metrics().MaxResidentWords; hw != 10 {
		t.Fatalf("high water %d, want 10", hw)
	}
	err = c.Round(func(m *Machine) error { return m.Charge(1) })
	if err == nil {
		t.Fatal("memory budget not enforced")
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 1, MemoryWords: 10})
	_ = c.Round(func(m *Machine) error {
		m.Release(100)
		if m.Resident() != 0 {
			t.Errorf("resident %d, want 0", m.Resident())
		}
		return nil
	})
}

func TestParallelExecution(t *testing.T) {
	const machines = 32
	c := newTestCluster(t, Config{Machines: machines, MemoryWords: 1000, Parallelism: 8})
	var running, peak int64
	err := c.Round(func(m *Machine) error {
		cur := atomic.AddInt64(&running, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		// Busy-wait a moment so overlap is observable.
		for i := 0; i < 10000; i++ {
			_ = i * i
		}
		atomic.AddInt64(&running, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 8 {
		t.Fatalf("parallelism bound violated: peak %d > 8", peak)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 3, MemoryWords: 100})
	for r := 0; r < 4; r++ {
		err := c.Round(func(m *Machine) error {
			return m.Send((m.ID()+1)%3, []uint64{1, 2})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	got := c.Metrics()
	if got.Rounds != 4 {
		t.Fatalf("rounds %d", got.Rounds)
	}
	if got.TotalMessages != 12 {
		t.Fatalf("messages %d, want 12", got.TotalMessages)
	}
	if got.TotalWords != 24 {
		t.Fatalf("words %d, want 24", got.TotalWords)
	}
	if got.MaxSentWords != 2 || got.MaxRecvWords != 2 {
		t.Fatalf("per-round maxima %d/%d, want 2/2", got.MaxSentWords, got.MaxRecvWords)
	}
}

func TestAccountRounds(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 1, MemoryWords: 1})
	c.AccountRounds(3)
	if c.Metrics().Rounds != 3 {
		t.Fatalf("rounds %d, want 3", c.Metrics().Rounds)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative AccountRounds did not panic")
		}
	}()
	c.AccountRounds(-1)
}

func TestResetResident(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 2, MemoryWords: 10})
	_ = c.Round(func(m *Machine) error { return m.Charge(5) })
	c.ResetResident()
	_ = c.Round(func(m *Machine) error {
		if m.Resident() != 0 {
			t.Errorf("machine %d resident %d after reset", m.ID(), m.Resident())
		}
		return nil
	})
}

func TestStepErrorsCombined(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 4, MemoryWords: 10})
	err := c.Round(func(m *Machine) error {
		if m.ID()%2 == 1 {
			return &machineErr{m.ID()}
		}
		return nil
	})
	if err == nil {
		t.Fatal("step errors swallowed")
	}
	if !strings.Contains(err.Error(), "machine 1") || !strings.Contains(err.Error(), "machine 3") {
		t.Fatalf("combined error missing parts: %v", err)
	}
}

type machineErr struct{ id int }

func (e *machineErr) Error() string { return "machine " + string(rune('0'+e.id)) + " failed" }

// TestStepGoexitFailsRoundAndKeepsPoolAlive pins the abnormal-exit
// contract: a step that never returns (runtime.Goexit — what
// testing.T.Fatalf does inside a step) must fail the round rather than
// route its partial messages as a success, and must not shrink the worker
// pool — with Parallelism 1 a lost worker would deadlock every later
// Round.
func TestStepGoexitFailsRoundAndKeepsPoolAlive(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 2, MemoryWords: 100, Parallelism: 1})
	defer c.Close()
	err := c.Round(func(m *Machine) error {
		if m.ID() == 1 {
			if sendErr := m.Send(0, []uint64{7}); sendErr != nil {
				return sendErr
			}
			runtime.Goexit()
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("Goexit step not reported as aborted: %v", err)
	}
	// The pool survived: later rounds execute, and the aborted round's
	// staged message was dropped.
	if err := c.Round(func(m *Machine) error { return nil }); err != nil {
		t.Fatalf("round after Goexit: %v", err)
	}
	err = c.Round(func(m *Machine) error {
		if n := len(m.Inbox()); n != 0 {
			t.Errorf("machine %d received %d messages from the aborted round", m.ID(), n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFailedRoundDropsStagedMessages is the regression test for the
// stale-envelope bug: a round that errors after staging sends must not leave
// those messages behind — the next round's inboxes reflect only the next
// round's traffic. Exercised for every error path: step error, send-budget,
// receive-budget and congested-clique pair-cap violations.
func TestFailedRoundDropsStagedMessages(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		step StepFunc // the failing round; stages messages then errors
	}{
		{
			name: "step error",
			cfg:  Config{Machines: 3, MemoryWords: 100},
			step: func(m *Machine) error {
				if err := m.Send(0, []uint64{uint64(m.ID()) + 10}); err != nil {
					return err
				}
				if m.ID() == 2 {
					return &machineErr{m.ID()}
				}
				return nil
			},
		},
		{
			name: "send budget",
			cfg:  Config{Machines: 3, MemoryWords: 4},
			step: func(m *Machine) error {
				if m.ID() == 2 {
					return m.Send(0, make([]uint64, 5)) // 5 > 4: route rejects
				}
				return m.Send(0, []uint64{uint64(m.ID()) + 10})
			},
		},
		{
			name: "receive budget",
			cfg:  Config{Machines: 3, MemoryWords: 4},
			step: func(m *Machine) error {
				if m.ID() != 0 {
					return m.Send(0, make([]uint64, 3)) // 6 > 4 at machine 0
				}
				return nil
			},
		},
		{
			name: "pair cap",
			cfg:  Config{Machines: 3, MemoryWords: 100, PairWords: 1},
			step: func(m *Machine) error {
				if m.ID() == 2 {
					if err := m.Send(0, []uint64{1}); err != nil {
						return err
					}
					return m.Send(0, []uint64{2}) // 2 words on pair (2→0), cap 1
				}
				return m.Send(0, []uint64{uint64(m.ID()) + 10})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCluster(t, tc.cfg)
			defer c.Close()
			if err := c.Round(tc.step); err == nil {
				t.Fatal("failing round reported no error")
			}
			// Recovery round: nobody sends. Before the fix, the messages
			// staged into the aborted round's out-arenas were still routed
			// here and delivered in the round after. The inbox must already
			// be empty in this round too: a mid-pass route() failure had
			// resized some inbox views for counts it never delivered, so a
			// step here would otherwise read unfilled (nil-Data) messages.
			err := c.Round(func(m *Machine) error {
				if n := len(m.Inbox()); n != 0 {
					t.Errorf("machine %d inbox not cleared by failed round: %d messages", m.ID(), n)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("recovery round: %v", err)
			}
			err = c.Round(func(m *Machine) error {
				if n := len(m.Inbox()); n != 0 {
					t.Errorf("machine %d inbox has %d stale messages: %v", m.ID(), n, m.Inbox())
				}
				return nil
			})
			if err != nil {
				t.Fatalf("inspection round: %v", err)
			}
			// The cluster stays usable: fresh traffic routes normally.
			if err := c.Round(func(m *Machine) error { return m.Send(0, []uint64{uint64(m.ID()) + 100}) }); err != nil {
				t.Fatalf("post-recovery send round: %v", err)
			}
			err = c.Round(func(m *Machine) error {
				if m.ID() != 0 {
					return nil
				}
				in := m.Inbox()
				if len(in) != c.Machines() {
					t.Errorf("inbox size %d, want %d", len(in), c.Machines())
					return nil
				}
				for i, msg := range in {
					if msg.From != i || msg.Data[0] != uint64(i)+100 {
						t.Errorf("inbox[%d] = from %d data %v", i, msg.From, msg.Data)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("post-recovery inspection round: %v", err)
			}
		})
	}
}

func TestDeterministicInboxOrder(t *testing.T) {
	// Many senders to one receiver: inbox must be ordered by sender id and,
	// within a sender, by send order — independent of goroutine scheduling.
	for trial := 0; trial < 5; trial++ {
		c := newTestCluster(t, Config{Machines: 16, MemoryWords: 1000})
		err := c.Round(func(m *Machine) error {
			if err := m.Send(0, []uint64{uint64(m.ID()), 0}); err != nil {
				return err
			}
			return m.Send(0, []uint64{uint64(m.ID()), 1})
		})
		if err != nil {
			t.Fatal(err)
		}
		err = c.Round(func(m *Machine) error {
			if m.ID() != 0 {
				return nil
			}
			in := m.Inbox()
			if len(in) != 32 {
				t.Errorf("inbox size %d", len(in))
				return nil
			}
			for i, msg := range in {
				wantFrom := i / 2
				wantSeq := uint64(i % 2)
				if msg.From != wantFrom || msg.Data[1] != wantSeq {
					t.Errorf("trial %d: inbox[%d] from %d seq %d, want %d/%d",
						trial, i, msg.From, msg.Data[1], wantFrom, wantSeq)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 2, MemoryWords: 10})
	if err := c.Round(func(m *Machine) error { return nil }); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // second Close must be a no-op
}

// TestRoundSteadyStateZeroAllocs pins the message plane's allocation budget:
// after warm-up on a fixed workload, a full Round — step execution, budget
// enforcement, counting-sort routing, inbox assembly — performs zero heap
// allocations. Arenas, envelope tables and routing scratch must all recycle.
func TestRoundSteadyStateZeroAllocs(t *testing.T) {
	const machines = 8
	c := newTestCluster(t, Config{Machines: machines, MemoryWords: 4096, Parallelism: 4})
	defer c.Close()
	// Fixed workload: every machine sends two multi-word payloads.
	payloads := make([][]uint64, machines)
	for i := range payloads {
		payloads[i] = make([]uint64, 16+i)
		for k := range payloads[i] {
			payloads[i][k] = uint64(i*100 + k)
		}
	}
	step := StepFunc(func(m *Machine) error {
		if err := m.Send((m.ID()+1)%machines, payloads[m.ID()]); err != nil {
			return err
		}
		return m.Send((m.ID()+3)%machines, payloads[m.ID()])
	})
	for i := 0; i < 5; i++ { // warm-up: grow arenas to steady state
		if err := c.Round(step); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := c.Round(step); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Round allocates %v times per round, want 0", avg)
	}
}

// TestInboxMatchesReferenceDeliveryOrder replays a pseudo-random traffic
// matrix against an in-test reference model of the pre-arena delivery
// semantics (append per destination in sender-id order, then a stable sort
// by sender — i.e. (sender, send-order)) and asserts the inbox contents are
// byte-identical, message by message.
func TestInboxMatchesReferenceDeliveryOrder(t *testing.T) {
	const machines = 13
	rng := rand.New(rand.NewSource(42))
	c := newTestCluster(t, Config{Machines: machines, MemoryWords: 1 << 16})
	defer c.Close()
	for round := 0; round < 6; round++ {
		// Script this round's sends: traffic[sender] is a list of (to, data).
		type send struct {
			to   int
			data []uint64
		}
		traffic := make([][]send, machines)
		for s := 0; s < machines; s++ {
			for k := rng.Intn(8); k > 0; k-- {
				data := make([]uint64, 1+rng.Intn(5))
				for i := range data {
					data[i] = rng.Uint64()
				}
				traffic[s] = append(traffic[s], send{to: rng.Intn(machines), data: data})
			}
		}
		// Reference inboxes: gather in sender-id order, stable-sort by From
		// (the exact delivery rule of the pre-arena route implementation).
		ref := make([][]Message, machines)
		for s := 0; s < machines; s++ {
			for _, sd := range traffic[s] {
				ref[sd.to] = append(ref[sd.to], Message{From: s, To: sd.to, Data: sd.data})
			}
		}
		for d := range ref {
			sort.SliceStable(ref[d], func(a, b int) bool { return ref[d][a].From < ref[d][b].From })
		}
		err := c.Round(func(m *Machine) error {
			for _, sd := range traffic[m.ID()] {
				if err := m.Send(sd.to, sd.data); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		err = c.Round(func(m *Machine) error {
			in := m.Inbox()
			want := ref[m.ID()]
			if len(in) != len(want) {
				t.Errorf("round %d machine %d: %d messages, want %d", round, m.ID(), len(in), len(want))
				return nil
			}
			for i := range in {
				if in[i].From != want[i].From || in[i].To != want[i].To ||
					!bytes.Equal(wordBytes(in[i].Data), wordBytes(want[i].Data)) {
					t.Errorf("round %d machine %d message %d: got from=%d %v, want from=%d %v",
						round, m.ID(), i, in[i].From, in[i].Data, want[i].From, want[i].Data)
				}
			}
			// Absorb this round's deliveries so the next scripted round
			// starts from empty inboxes.
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func wordBytes(words []uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}

// TestSendCopiesPayload pins the arena-plane ownership contract: the caller
// may reuse its buffer immediately after Send.
func TestSendCopiesPayload(t *testing.T) {
	c := newTestCluster(t, Config{Machines: 2, MemoryWords: 100})
	defer c.Close()
	err := c.Round(func(m *Machine) error {
		if m.ID() != 0 {
			return nil
		}
		buf := []uint64{1, 2, 3}
		if err := m.Send(1, buf); err != nil {
			return err
		}
		buf[0], buf[1], buf[2] = 9, 9, 9 // must not affect the staged message
		return m.Send(1, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Round(func(m *Machine) error {
		if m.ID() != 1 {
			return nil
		}
		in := m.Inbox()
		if len(in) != 2 {
			t.Fatalf("inbox size %d, want 2", len(in))
		}
		if in[0].Data[0] != 1 || in[0].Data[2] != 3 {
			t.Errorf("first message mutated after send: %v", in[0].Data)
		}
		if in[1].Data[0] != 9 {
			t.Errorf("second message %v, want 9s", in[1].Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf []uint64
	buf = AppendEdgeRecord(buf, 5, 9, 3.25)
	buf = AppendEdgeRecord(buf, -1, 2, -0.5)
	n, err := CheckRecordCount(buf, EdgeRecordWords)
	if err != nil || n != 2 {
		t.Fatalf("record count %d err %v", n, err)
	}
	u, v, w := DecodeEdgeRecord(buf, 0)
	if u != 5 || v != 9 || w != 3.25 {
		t.Fatalf("decoded (%d,%d,%v)", u, v, w)
	}
	u, v, w = DecodeEdgeRecord(buf, 1)
	if u != -1 || v != 2 || w != -0.5 {
		t.Fatalf("decoded (%d,%d,%v)", u, v, w)
	}

	var vb []uint64
	vb = AppendVertexRecord(vb, 7, 1.5)
	id, val := DecodeVertexRecord(vb, 0)
	if id != 7 || val != 1.5 {
		t.Fatalf("vertex record (%d,%v)", id, val)
	}

	var rb []uint64
	rb = AppendResultRecord(rb, 3, -1)
	rv, fi := DecodeResultRecord(rb, 0)
	if rv != 3 || fi != -1 {
		t.Fatalf("result record (%d,%d)", rv, fi)
	}

	if _, err := CheckRecordCount(make([]uint64, 4), EdgeRecordWords); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

func TestFloatWordRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 3.141592653589793, 1e-300, 1e300} {
		if GetFloat(PutFloat(f)) != f {
			t.Fatalf("float round trip failed for %v", f)
		}
	}
}
