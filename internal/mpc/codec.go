package mpc

import (
	"fmt"
	"math"
)

// Word-level encoding helpers. The MPC model counts communication in words;
// algorithms in this repository encode their records as []uint64 so the
// accounting is exact. Conventions:
//
//   - a vertex id or integer field is one word;
//   - a float64 field is one word (its IEEE-754 bits).

// PutFloat encodes a float64 as a word.
func PutFloat(f float64) uint64 { return math.Float64bits(f) }

// GetFloat decodes a word written by PutFloat.
func GetFloat(w uint64) float64 { return math.Float64frombits(w) }

// EdgeRecordWords is the size of an encoded edge record: two endpoints and
// one weight.
const EdgeRecordWords = 3

// AppendEdgeRecord appends (u, v, weight) to buf.
func AppendEdgeRecord(buf []uint64, u, v int32, weight float64) []uint64 {
	return append(buf, uint64(uint32(u)), uint64(uint32(v)), PutFloat(weight))
}

// SetEdgeRecord writes (u, v, weight) at record index i of a pre-sized
// buffer (the in-place counterpart of AppendEdgeRecord, for arena-backed
// message buffers obtained from Machine.Alloc).
func SetEdgeRecord(buf []uint64, i int, u, v int32, weight float64) {
	o := i * EdgeRecordWords
	buf[o] = uint64(uint32(u))
	buf[o+1] = uint64(uint32(v))
	buf[o+2] = PutFloat(weight)
}

// DecodeEdgeRecord reads the record at offset i*EdgeRecordWords.
func DecodeEdgeRecord(buf []uint64, i int) (u, v int32, weight float64) {
	o := i * EdgeRecordWords
	return int32(uint32(buf[o])), int32(uint32(buf[o+1])), GetFloat(buf[o+2])
}

// VertexRecordWords is the size of an encoded vertex record: id and value.
const VertexRecordWords = 2

// AppendVertexRecord appends (v, value) to buf.
func AppendVertexRecord(buf []uint64, v int32, value float64) []uint64 {
	return append(buf, uint64(uint32(v)), PutFloat(value))
}

// SetVertexRecord writes (v, value) at record index i of a pre-sized buffer.
func SetVertexRecord(buf []uint64, i int, v int32, value float64) {
	o := i * VertexRecordWords
	buf[o] = uint64(uint32(v))
	buf[o+1] = PutFloat(value)
}

// DecodeVertexRecord reads the record at offset i*VertexRecordWords.
func DecodeVertexRecord(buf []uint64, i int) (v int32, value float64) {
	o := i * VertexRecordWords
	return int32(uint32(buf[o])), GetFloat(buf[o+1])
}

// ResultRecordWords is the size of a local-simulation result record:
// vertex id and the iteration at which it froze (or sentinel).
const ResultRecordWords = 2

// AppendResultRecord appends (v, freezeIter) to buf.
func AppendResultRecord(buf []uint64, v int32, freezeIter int) []uint64 {
	return append(buf, uint64(uint32(v)), uint64(int64(freezeIter)))
}

// SetResultRecord writes (v, freezeIter) at record index i of a pre-sized
// buffer.
func SetResultRecord(buf []uint64, i int, v int32, freezeIter int) {
	o := i * ResultRecordWords
	buf[o] = uint64(uint32(v))
	buf[o+1] = uint64(int64(freezeIter))
}

// DecodeResultRecord reads the record at offset i*ResultRecordWords.
func DecodeResultRecord(buf []uint64, i int) (v int32, freezeIter int) {
	o := i * ResultRecordWords
	return int32(uint32(buf[o])), int(int64(buf[o+1]))
}

// CheckRecordCount validates that buf holds an integral number of records of
// the given size.
func CheckRecordCount(buf []uint64, recordWords int) (int, error) {
	if len(buf)%recordWords != 0 {
		return 0, fmt.Errorf("mpc: payload of %d words is not a multiple of record size %d", len(buf), recordWords)
	}
	return len(buf) / recordWords, nil
}
