// Package mpc simulates the Massively Parallel Computation model of
// Karloff–Suri–Vassilvitskii (as refined by Beame–Koutris–Suciu and
// Andoni–Nikolov–Onak–Yaroslavtsev, the formulation in Section 1.1 of the
// paper): M machines, each with S words of memory, computing in synchronous
// rounds. Per round every machine performs local computation and then
// exchanges messages, subject to the model's constraints:
//
//   - a machine's resident data never exceeds S words;
//   - the total data a machine sends in one round is at most S words;
//   - the total data a machine receives in one round is at most S words.
//
// The simulator enforces all three mechanically and records the metrics the
// paper's analysis speaks about (rounds, maximum machine load, total
// communication). Machine-local computation executes concurrently on real
// OS threads — a persistent worker pool bounded by Config.Parallelism —
// which is what makes the repository's larger experiments tractable.
//
// A congested-clique mode (per Section 1.3's [BDH18] equivalence) adds the
// stricter constraint of that model: per round, each ordered pair of
// machines may exchange at most PairWords words (O(log n) bits ≈ O(1)
// words per pair).
//
// # Message plane
//
// Communication is arena-backed and allocation-free at steady state: Send
// copies the payload into the sender's reusable outgoing arena and records a
// compact (to, offset, length) envelope; route() delivers by a counting sort
// over senders into per-machine inbox arenas that are recycled across
// rounds, with the word copies parallelized across the worker pool (each
// destination's inbox is assembled by exactly one worker). Delivery order is
// deterministic — by (sender id, send order) — regardless of scheduling.
// Inbox views are valid only until the next Round; see Machine.Inbox.
//
// # Place in the system
//
// The plane sits between the CSR graph core (internal/graph) below and the
// algorithm packages above: internal/core partitions the graph's vertices
// and edges over simulated machines and runs the paper's phases here, with
// internal/mpcalg providing the O(1)-round aggregation primitives. See
// docs/ARCHITECTURE.md for the full layer tour and DESIGN.md §"Performance
// model of the simulator" for the cost model.
package mpc
