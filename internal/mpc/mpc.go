package mpc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Config describes a cluster.
type Config struct {
	// Machines is M, the number of machines (≥ 1).
	Machines int
	// MemoryWords is S, the per-machine memory budget in 8-byte words.
	MemoryWords int64
	// PairWords, when positive, switches on congested-clique accounting:
	// at most PairWords words per ordered machine pair per round.
	PairWords int64
	// Parallelism bounds the number of concurrently executing machines.
	// 0 means GOMAXPROCS.
	Parallelism int
}

// Metrics aggregates the quantities the model's analysis is about.
type Metrics struct {
	// Rounds is the number of communication rounds elapsed, including
	// rounds accounted via AccountRounds.
	Rounds int
	// MaxResidentWords is the high-water mark of any machine's memory.
	MaxResidentWords int64
	// MaxSentWords / MaxRecvWords are the per-round per-machine maxima.
	MaxSentWords int64
	MaxRecvWords int64
	// TotalWords / TotalMessages count all routed traffic.
	TotalWords    int64
	TotalMessages int64
}

// Message is a routed unit of communication. Data is counted word-for-word
// against the sender's and receiver's budgets. Messages obtained from
// Machine.Inbox alias cluster-internal arenas: they are valid only until the
// next Round and must not be modified or retained.
type Message struct {
	From, To int
	Data     []uint64
}

// outEnv is a staged outgoing message: `n` words at `off` in the sender's
// outgoing arena, addressed to machine `to`.
type outEnv struct {
	to  int32
	off int64
	n   int64
}

// copyTask is one inbox-assembly work item produced by the counting sort:
// copy `n` words from machine `from`'s outgoing arena at srcOff into the
// destination's inbox arena at dstOff. Tasks are grouped contiguously by
// destination so each destination is assembled by exactly one worker.
type copyTask struct {
	srcOff int64
	dstOff int64
	n      int64
	from   int32
}

// Machine is the per-machine handle visible to a StepFunc. Its methods must
// only be called from within the step executing on this machine.
type Machine struct {
	id      int
	cluster *Cluster
	// inbox/inArena hold this round's delivered messages; both are recycled
	// across rounds (inbox Data fields alias inArena).
	inbox   []Message
	inArena []uint64
	// outEnv/outArena stage this round's sends, recycled across rounds.
	outEnv   []outEnv
	outArena []uint64
	sent     int64
	resident int64
	// maxResident is this machine's lifetime high-water mark. It is only
	// written by the machine's own step (no lock needed) and merged into
	// Metrics.MaxResidentWords at the round barrier.
	maxResident int64
}

// ID returns the machine's index in [0, M).
func (m *Machine) ID() int { return m.id }

// Inbox returns a view of the messages delivered at the start of this round,
// ordered by (sender, send order) — a deterministic order regardless of
// scheduling. The view and the Data slices of its messages alias recycled
// arenas: they are invalidated by the next Round and must not be retained
// or modified.
func (m *Machine) Inbox() []Message { return m.inbox }

// Send stages a message of len(data) words to machine `to`. The data is
// copied into the machine's outgoing arena, so the caller may reuse the
// slice immediately after Send returns.
func (m *Machine) Send(to int, data []uint64) error {
	if to < 0 || to >= m.cluster.cfg.Machines {
		return fmt.Errorf("mpc: machine %d sending to invalid machine %d", m.id, to)
	}
	off := int64(len(m.outArena))
	m.outArena = append(m.outArena, data...)
	m.outEnv = append(m.outEnv, outEnv{to: int32(to), off: off, n: int64(len(data))})
	m.sent += int64(len(data))
	return nil
}

// Reserve pre-grows the machine's outgoing arena so that at least `words`
// further words can be staged without reallocation. After a Reserve, slices
// returned by Alloc stay valid for the rest of the round as long as the
// total staged volume stays within the reservation. Reserve itself does not
// stage anything and does not count against the send budget.
func (m *Machine) Reserve(words int64) {
	need := int64(len(m.outArena)) + words
	if int64(cap(m.outArena)) >= need {
		return
	}
	newCap := 2 * int64(cap(m.outArena))
	if newCap < need {
		newCap = need
	}
	na := make([]uint64, len(m.outArena), newCap)
	copy(na, m.outArena)
	m.outArena = na
}

// Alloc stages an outgoing message of exactly n zeroed words to machine `to`
// and returns the arena-backed buffer for the caller to fill in place before
// the step returns — the zero-copy alternative to Send. Growing the arena
// may move it, which invalidates buffers returned by earlier Alloc calls in
// the same round; callers staging several messages should Reserve the total
// volume first (after which Alloc never reallocates within the round).
func (m *Machine) Alloc(to int, n int) ([]uint64, error) {
	if to < 0 || to >= m.cluster.cfg.Machines {
		return nil, fmt.Errorf("mpc: machine %d sending to invalid machine %d", m.id, to)
	}
	if n < 0 {
		return nil, fmt.Errorf("mpc: machine %d staging negative message size %d", m.id, n)
	}
	m.Reserve(int64(n))
	off := int64(len(m.outArena))
	need := off + int64(n)
	m.outArena = m.outArena[:need]
	buf := m.outArena[off:need:need]
	for i := range buf {
		buf[i] = 0
	}
	m.outEnv = append(m.outEnv, outEnv{to: int32(to), off: off, n: int64(n)})
	m.sent += int64(n)
	return buf, nil
}

// Charge registers words of resident memory on this machine (e.g. when it
// materializes an induced subgraph). It errors immediately when the budget
// is exceeded, mirroring an out-of-memory machine. The cluster-wide
// high-water mark is maintained without locking: each machine tracks its own
// maximum, merged into Metrics at the round barrier.
func (m *Machine) Charge(words int64) error {
	m.resident += words
	if m.resident > m.cluster.cfg.MemoryWords {
		return fmt.Errorf("mpc: machine %d resident %d words exceeds budget %d",
			m.id, m.resident, m.cluster.cfg.MemoryWords)
	}
	if m.resident > m.maxResident {
		m.maxResident = m.resident
	}
	return nil
}

// Release returns words of resident memory to the budget.
func (m *Machine) Release(words int64) {
	m.resident -= words
	if m.resident < 0 {
		m.resident = 0
	}
}

// Resident returns the machine's current resident words.
func (m *Machine) Resident() int64 { return m.resident }

// StepFunc is one machine's work within a round.
type StepFunc func(m *Machine) error

const (
	jobStep = iota
	jobRoute
)

// job is one unit of work handed to the persistent worker pool: either
// "execute the step on machine idx" or "assemble the inboxes of destination
// chunk idx". Jobs are plain values; dispatching them allocates nothing.
type job struct {
	c    *Cluster
	idx  int32
	kind int8
}

// worker is the body of a pool goroutine. It deliberately references only
// the job channel — never the cluster — so an abandoned cluster becomes
// unreachable, its finalizer closes the channel, and the pool exits.
func worker(jobs <-chan job) {
	for j := range jobs {
		runJob(j)
	}
}

// errStepAborted marks a step that never returned: it exited via panic or
// runtime.Goexit (testing.T.Fatalf inside a step). The slot is pre-filled
// with it and overwritten on normal return, so an aborted step surfaces as
// a failed round — not as a silent success whose partial messages route.
var errStepAborted = errors.New("mpc: step aborted before returning (runtime.Goexit or panic)")

// runJob executes one job with cleanup deferred, so a step that exits via
// panic or runtime.Goexit still unblocks the Round instead of deadlocking
// it: the barrier is always released, and the abnormal exit both reports
// errStepAborted for the machine and spawns a replacement worker (Goexit
// kills the current pool goroutine; without a replacement the next Round
// would enqueue jobs nothing drains).
func runJob(j job) {
	completed := false
	defer func() {
		if !completed {
			go worker(j.c.jobs)
		}
		j.c.wg.Done()
	}()
	switch j.kind {
	case jobStep:
		c := j.c
		c.stepErrs[j.idx] = errStepAborted
		err := c.curStep(c.machines[j.idx])
		c.stepErrs[j.idx] = err
	case jobRoute:
		j.c.routeChunk(int(j.idx))
	}
	completed = true
}

// poolCloser owns the worker pool's job channel. It is deliberately a
// separate object outside the Cluster↔Machine reference cycle: finalizers
// on cycle members are not guaranteed to run, but nothing points from the
// closer back to the cluster, so when an un-Closed cluster becomes
// unreachable the closer does too and its finalizer shuts the pool down.
type poolCloser struct {
	jobs chan job
	once sync.Once
}

func (p *poolCloser) close() {
	p.once.Do(func() {
		runtime.SetFinalizer(p, nil)
		close(p.jobs)
	})
}

// Cluster is a simulated MPC cluster.
type Cluster struct {
	cfg      Config
	machines []*Machine
	metrics  Metrics

	// Worker pool (persistent; see Close).
	jobs     chan job
	pool     *poolCloser
	workers  int
	wg       sync.WaitGroup
	curStep  StepFunc
	stepErrs []error

	// Routing scratch, allocated once and recycled every round.
	recvW    []int64    // words inbound per destination this round
	msgCnt   []int32    // messages inbound per destination this round
	taskOff  []int32    // per-destination start offset into tasks (len M+1)
	taskCur  []int32    // fill cursor per destination
	wordCur  []int64    // inbox-arena word cursor per destination
	tasks    []copyTask // flat task list, grouped by destination
	chunkLen int        // destinations per routing chunk this round

	// Congested-clique pair accounting: epoch-stamped per-destination
	// scratch, reset in O(1) per sender by bumping the epoch.
	pairW     []int64
	pairStamp []int64
	pairEpoch int64
}

// NewCluster validates the configuration and builds the cluster. The cluster
// owns a pool of Parallelism worker goroutines; call Close when done with it
// (a finalizer reclaims the pool of abandoned clusters as a safety net).
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("mpc: need at least 1 machine, got %d", cfg.Machines)
	}
	if cfg.MemoryWords < 1 {
		return nil, fmt.Errorf("mpc: per-machine memory %d words, want >= 1", cfg.MemoryWords)
	}
	if cfg.PairWords < 0 {
		return nil, fmt.Errorf("mpc: negative PairWords %d", cfg.PairWords)
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Parallelism < 1 {
		return nil, fmt.Errorf("mpc: parallelism %d, want >= 1", cfg.Parallelism)
	}
	m := cfg.Machines
	c := &Cluster{
		cfg:      cfg,
		stepErrs: make([]error, m),
		recvW:    make([]int64, m),
		msgCnt:   make([]int32, m),
		taskOff:  make([]int32, m+1),
		taskCur:  make([]int32, m),
		wordCur:  make([]int64, m),
	}
	if cfg.PairWords > 0 {
		c.pairW = make([]int64, m)
		c.pairStamp = make([]int64, m)
	}
	c.machines = make([]*Machine, m)
	for i := range c.machines {
		c.machines[i] = &Machine{id: i, cluster: c}
	}
	c.workers = cfg.Parallelism
	if c.workers > m {
		c.workers = m
	}
	c.jobs = make(chan job, c.workers)
	for i := 0; i < c.workers; i++ {
		go worker(c.jobs)
	}
	c.pool = &poolCloser{jobs: c.jobs}
	runtime.SetFinalizer(c.pool, (*poolCloser).close)
	return c, nil
}

// Close releases the cluster's worker pool. It is idempotent and safe to
// call at any point after the last Round; calling Round after Close panics.
func (c *Cluster) Close() {
	c.pool.close()
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Metrics returns a snapshot of the accumulated metrics.
func (c *Cluster) Metrics() Metrics { return c.metrics }

// Machines returns M.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// Round executes step concurrently on every machine, then routes the staged
// messages, enforcing the send, receive and (in congested-clique mode)
// per-pair budgets. Messages become visible in inboxes at the start of the
// next round. Any machine error aborts the round with a combined error.
//
// After the first few rounds of a fixed workload Round reaches steady state
// and performs no heap allocations: arenas, envelope tables and routing
// scratch are all recycled.
func (c *Cluster) Round(step StepFunc) error {
	c.curStep = step
	c.wg.Add(len(c.machines))
	for i := range c.machines {
		c.jobs <- job{c: c, idx: int32(i), kind: jobStep}
	}
	c.wg.Wait()
	c.curStep = nil
	if err := errors.Join(c.stepErrs...); err != nil {
		for i := range c.stepErrs {
			c.stepErrs[i] = nil
		}
		// The round failed before the barrier, but resident-memory peaks
		// reached during the failing steps still belong in the metrics
		// (they are exactly what a memory experiment wants to see).
		c.mergeResidentPeaks()
		// Messages staged by the aborted round must not survive it: without
		// this, the next Round would route them as if they had been sent by
		// its own step, delivering stale envelopes from the failed round.
		c.clearStaged()
		return err
	}
	return c.route()
}

// clearOutgoing drops every machine's staged outgoing messages — envelope
// tables, arena cursors and the per-round sent counter. route() calls it
// after a successful delivery; the arenas keep their capacity.
func (c *Cluster) clearOutgoing() {
	for _, m := range c.machines {
		m.outEnv = m.outEnv[:0]
		m.outArena = m.outArena[:0]
		m.sent = 0
	}
}

// clearStaged cleans up after a failed round (step error or budget
// violation): staged outgoing messages must not survive it — the next Round
// would deliver stale envelopes from the aborted round — and inboxes are
// emptied too, because a route() that fails mid-pass has already resized
// some destinations' inbox views for counts it never delivered. All arenas
// keep their capacity; only the cursors reset.
func (c *Cluster) clearStaged() {
	c.clearOutgoing()
	for _, m := range c.machines {
		m.inbox = m.inbox[:0]
		m.inArena = m.inArena[:0]
	}
}

// mergeResidentPeaks folds each machine's lock-free high-water mark into the
// cluster metric.
func (c *Cluster) mergeResidentPeaks() {
	for _, m := range c.machines {
		if m.maxResident > c.metrics.MaxResidentWords {
			c.metrics.MaxResidentWords = m.maxResident
		}
	}
}

// route is the round barrier: it enforces the send/receive/pair budgets,
// merges per-machine metrics, and delivers every staged message in
// deterministic (sender, send-order) order via a counting sort over senders.
// The word copies — the O(total traffic) part — run on the worker pool, one
// destination per worker.
func (c *Cluster) route() error {
	c.metrics.Rounds++
	c.mergeResidentPeaks()
	machines := c.machines
	for i := range c.recvW {
		c.recvW[i] = 0
		c.msgCnt[i] = 0
	}
	totalMsgs := 0
	for _, m := range machines {
		if m.sent > c.cfg.MemoryWords {
			c.clearStaged()
			return fmt.Errorf("mpc: machine %d sent %d words in one round, budget %d",
				m.id, m.sent, c.cfg.MemoryWords)
		}
		if m.sent > c.metrics.MaxSentWords {
			c.metrics.MaxSentWords = m.sent
		}
		if c.cfg.PairWords > 0 {
			c.pairEpoch++
			for i := range m.outEnv {
				env := &m.outEnv[i]
				if c.pairStamp[env.to] != c.pairEpoch {
					c.pairStamp[env.to] = c.pairEpoch
					c.pairW[env.to] = 0
				}
				c.pairW[env.to] += env.n
				if c.pairW[env.to] > c.cfg.PairWords {
					c.clearStaged()
					return fmt.Errorf("mpc: congested clique: pair (%d→%d) exchanged %d words in one round, cap %d",
						m.id, env.to, c.pairW[env.to], c.cfg.PairWords)
				}
			}
		}
		for i := range m.outEnv {
			env := &m.outEnv[i]
			c.recvW[env.to] += env.n
			c.msgCnt[env.to]++
			c.metrics.TotalWords += env.n
			c.metrics.TotalMessages++
		}
		totalMsgs += len(m.outEnv)
	}

	// Size the inbox arenas and views (recycled across rounds) and lay out
	// the per-destination task ranges.
	c.taskOff[0] = 0
	for d, m := range machines {
		if c.recvW[d] > c.cfg.MemoryWords {
			c.clearStaged()
			return fmt.Errorf("mpc: machine %d received %d words in one round, budget %d",
				d, c.recvW[d], c.cfg.MemoryWords)
		}
		if c.recvW[d] > c.metrics.MaxRecvWords {
			c.metrics.MaxRecvWords = c.recvW[d]
		}
		m.inArena = Grow(m.inArena, int(c.recvW[d]))
		m.inbox = Grow(m.inbox, int(c.msgCnt[d]))
		c.taskOff[d+1] = c.taskOff[d] + c.msgCnt[d]
		c.taskCur[d] = c.taskOff[d]
		c.wordCur[d] = 0
	}
	c.tasks = Grow(c.tasks, totalMsgs)

	// Counting-sort fill: senders in id order, envelopes in send order, so
	// each destination's task range is already in delivery order.
	for _, m := range machines {
		for i := range m.outEnv {
			env := &m.outEnv[i]
			t := c.taskCur[env.to]
			c.taskCur[env.to] = t + 1
			c.tasks[t] = copyTask{from: int32(m.id), srcOff: env.off, dstOff: c.wordCur[env.to], n: env.n}
			c.wordCur[env.to] += env.n
		}
	}

	// Assemble inboxes. Each destination is owned by exactly one chunk, so
	// workers write disjoint arenas.
	if c.workers > 1 && len(machines) > 1 && totalMsgs >= 64 {
		chunks := c.workers
		if chunks > len(machines) {
			chunks = len(machines)
		}
		c.chunkLen = (len(machines) + chunks - 1) / chunks
		c.wg.Add(chunks)
		for k := 0; k < chunks; k++ {
			c.jobs <- job{c: c, idx: int32(k), kind: jobRoute}
		}
		c.wg.Wait()
	} else {
		for d := range machines {
			c.deliver(d)
		}
	}

	c.clearOutgoing()
	return nil
}

// routeChunk assembles the inboxes of one contiguous chunk of destinations.
//
//mwvc:hotpath
func (c *Cluster) routeChunk(k int) {
	lo := k * c.chunkLen
	hi := lo + c.chunkLen
	if hi > len(c.machines) {
		hi = len(c.machines)
	}
	for d := lo; d < hi; d++ {
		c.deliver(d)
	}
}

// deliver copies destination d's messages into its inbox arena and writes
// the inbox view, in (sender, send-order) order.
//
//mwvc:hotpath
func (c *Cluster) deliver(d int) {
	m := c.machines[d]
	tasks := c.tasks[c.taskOff[d]:c.taskOff[d+1]]
	for k := range tasks {
		t := &tasks[k]
		data := m.inArena[t.dstOff : t.dstOff+t.n : t.dstOff+t.n]
		copy(data, c.machines[t.from].outArena[t.srcOff:t.srcOff+t.n])
		m.inbox[k] = Message{From: int(t.from), To: d, Data: data}
	}
}

// Grow resizes s to n elements without preserving contents, reusing
// capacity and doubling on growth — the recycling primitive behind every
// per-round buffer in the message plane, exported for consumers (e.g.
// internal/core's per-phase scratch) that follow the same allocate-once,
// re-slice-forever discipline.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	newCap := 2 * cap(s)
	if newCap < n {
		newCap = n
	}
	return make([]T, n, newCap)
}

// AccountRounds adds k rounds to the metrics without executing steps. The
// paper's phase structure relies on standard O(1)-round MPC primitives
// (aggregation trees, sorting [GSZ11]) whose bit-level simulation would add
// nothing to the reproduction; algorithms use this to account for them
// explicitly instead of hiding them.
func (c *Cluster) AccountRounds(k int) {
	if k < 0 {
		panic("mpc: negative round count")
	}
	c.metrics.Rounds += k
}

// ResetResident zeroes every machine's resident memory, for algorithms that
// rebuild machine state from scratch each phase (the partition is fresh per
// phase in Algorithm 2). The high-water metric is unaffected.
func (c *Cluster) ResetResident() {
	for _, m := range c.machines {
		m.resident = 0
	}
}
