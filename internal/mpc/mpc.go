// Package mpc simulates the Massively Parallel Computation model of
// Karloff–Suri–Vassilvitskii (as refined by Beame–Koutris–Suciu and
// Andoni–Nikolov–Onak–Yaroslavtsev, the formulation in Section 1.1 of the
// paper): M machines, each with S words of memory, computing in synchronous
// rounds. Per round every machine performs local computation and then
// exchanges messages, subject to the model's constraints:
//
//   - a machine's resident data never exceeds S words;
//   - the total data a machine sends in one round is at most S words;
//   - the total data a machine receives in one round is at most S words.
//
// The simulator enforces all three mechanically and records the metrics the
// paper's analysis speaks about (rounds, maximum machine load, total
// communication). Machine-local computation executes concurrently on real
// OS threads — one goroutine per machine, bounded by a worker pool — which
// is what makes the repository's larger experiments tractable.
//
// A congested-clique mode (per Section 1.3's [BDH18] equivalence) adds the
// stricter constraint of that model: per round, each ordered pair of
// machines may exchange at most PairWords words (O(log n) bits ≈ O(1)
// words per pair).
package mpc

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Config describes a cluster.
type Config struct {
	// Machines is M, the number of machines (≥ 1).
	Machines int
	// MemoryWords is S, the per-machine memory budget in 8-byte words.
	MemoryWords int64
	// PairWords, when positive, switches on congested-clique accounting:
	// at most PairWords words per ordered machine pair per round.
	PairWords int64
	// Parallelism bounds the number of concurrently executing machines.
	// 0 means GOMAXPROCS.
	Parallelism int
}

// Metrics aggregates the quantities the model's analysis is about.
type Metrics struct {
	// Rounds is the number of communication rounds elapsed, including
	// rounds accounted via AccountRounds.
	Rounds int
	// MaxResidentWords is the high-water mark of any machine's memory.
	MaxResidentWords int64
	// MaxSentWords / MaxRecvWords are the per-round per-machine maxima.
	MaxSentWords int64
	MaxRecvWords int64
	// TotalWords / TotalMessages count all routed traffic.
	TotalWords    int64
	TotalMessages int64
}

// Message is a routed unit of communication. Data is counted word-for-word
// against the sender's and receiver's budgets.
type Message struct {
	From, To int
	Data     []uint64
}

// Machine is the per-machine handle visible to a StepFunc. Its methods must
// only be called from within the step executing on this machine.
type Machine struct {
	id       int
	cluster  *Cluster
	inbox    []Message
	outbox   []Message
	sent     int64
	resident int64
}

// ID returns the machine's index in [0, M).
func (m *Machine) ID() int { return m.id }

// Inbox returns the messages delivered at the start of this round, ordered
// by (sender, send order) — a deterministic order regardless of scheduling.
func (m *Machine) Inbox() []Message { return m.inbox }

// Send stages a message of len(data) words to machine `to`. The data slice
// is retained; callers must not modify it afterwards.
func (m *Machine) Send(to int, data []uint64) error {
	if to < 0 || to >= m.cluster.cfg.Machines {
		return fmt.Errorf("mpc: machine %d sending to invalid machine %d", m.id, to)
	}
	m.outbox = append(m.outbox, Message{From: m.id, To: to, Data: data})
	m.sent += int64(len(data))
	return nil
}

// Charge registers words of resident memory on this machine (e.g. when it
// materializes an induced subgraph). It errors immediately when the budget
// is exceeded, mirroring an out-of-memory machine.
func (m *Machine) Charge(words int64) error {
	m.resident += words
	if m.resident > m.cluster.cfg.MemoryWords {
		return fmt.Errorf("mpc: machine %d resident %d words exceeds budget %d",
			m.id, m.resident, m.cluster.cfg.MemoryWords)
	}
	m.cluster.mu.Lock()
	if m.resident > m.cluster.metrics.MaxResidentWords {
		m.cluster.metrics.MaxResidentWords = m.resident
	}
	m.cluster.mu.Unlock()
	return nil
}

// Release returns words of resident memory to the budget.
func (m *Machine) Release(words int64) {
	m.resident -= words
	if m.resident < 0 {
		m.resident = 0
	}
}

// Resident returns the machine's current resident words.
func (m *Machine) Resident() int64 { return m.resident }

// StepFunc is one machine's work within a round.
type StepFunc func(m *Machine) error

// Cluster is a simulated MPC cluster.
type Cluster struct {
	cfg      Config
	machines []*Machine
	metrics  Metrics
	mu       sync.Mutex // guards metrics updates from Charge during steps
}

// NewCluster validates the configuration and builds the cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("mpc: need at least 1 machine, got %d", cfg.Machines)
	}
	if cfg.MemoryWords < 1 {
		return nil, fmt.Errorf("mpc: per-machine memory %d words, want >= 1", cfg.MemoryWords)
	}
	if cfg.PairWords < 0 {
		return nil, fmt.Errorf("mpc: negative PairWords %d", cfg.PairWords)
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Parallelism < 1 {
		return nil, fmt.Errorf("mpc: parallelism %d, want >= 1", cfg.Parallelism)
	}
	c := &Cluster{cfg: cfg}
	c.machines = make([]*Machine, cfg.Machines)
	for i := range c.machines {
		c.machines[i] = &Machine{id: i, cluster: c}
	}
	return c, nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Metrics returns a snapshot of the accumulated metrics.
func (c *Cluster) Metrics() Metrics { return c.metrics }

// Machines returns M.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// Round executes step concurrently on every machine, then routes the staged
// messages, enforcing the send, receive and (in congested-clique mode)
// per-pair budgets. Messages become visible in inboxes at the start of the
// next round. Any machine error aborts the round with a combined error.
func (c *Cluster) Round(step StepFunc) error {
	errs := make([]error, len(c.machines))
	sem := make(chan struct{}, c.cfg.Parallelism)
	var wg sync.WaitGroup
	for i, m := range c.machines {
		// Inbox from the previous round is consumed by this step; its memory
		// stays charged until the step releases or the round ends.
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, m *Machine) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = step(m)
		}(i, m)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return c.route()
}

func (c *Cluster) route() error {
	c.metrics.Rounds++
	recv := make([]int64, len(c.machines))
	var pair map[[2]int]int64
	if c.cfg.PairWords > 0 {
		pair = make(map[[2]int]int64)
	}
	inboxes := make([][]Message, len(c.machines))
	for _, m := range c.machines {
		if m.sent > c.cfg.MemoryWords {
			return fmt.Errorf("mpc: machine %d sent %d words in one round, budget %d",
				m.id, m.sent, c.cfg.MemoryWords)
		}
		if m.sent > c.metrics.MaxSentWords {
			c.metrics.MaxSentWords = m.sent
		}
		for _, msg := range m.outbox {
			words := int64(len(msg.Data))
			recv[msg.To] += words
			c.metrics.TotalWords += words
			c.metrics.TotalMessages++
			if pair != nil {
				key := [2]int{msg.From, msg.To}
				pair[key] += words
				if pair[key] > c.cfg.PairWords {
					return fmt.Errorf("mpc: congested clique: pair (%d→%d) exchanged %d words in one round, cap %d",
						msg.From, msg.To, pair[key], c.cfg.PairWords)
				}
			}
			inboxes[msg.To] = append(inboxes[msg.To], msg)
		}
	}
	for i, m := range c.machines {
		if recv[i] > c.cfg.MemoryWords {
			return fmt.Errorf("mpc: machine %d received %d words in one round, budget %d",
				i, recv[i], c.cfg.MemoryWords)
		}
		if recv[i] > c.metrics.MaxRecvWords {
			c.metrics.MaxRecvWords = recv[i]
		}
		// Deterministic delivery order: by sender, then send order (stable).
		sort.SliceStable(inboxes[i], func(a, b int) bool {
			return inboxes[i][a].From < inboxes[i][b].From
		})
		m.inbox = inboxes[i]
		m.outbox = nil
		m.sent = 0
	}
	return nil
}

// AccountRounds adds k rounds to the metrics without executing steps. The
// paper's phase structure relies on standard O(1)-round MPC primitives
// (aggregation trees, sorting [GSZ11]) whose bit-level simulation would add
// nothing to the reproduction; algorithms use this to account for them
// explicitly instead of hiding them.
func (c *Cluster) AccountRounds(k int) {
	if k < 0 {
		panic("mpc: negative round count")
	}
	c.metrics.Rounds += k
}

// ResetResident zeroes every machine's resident memory, for algorithms that
// rebuild machine state from scratch each phase (the partition is fresh per
// phase in Algorithm 2).
func (c *Cluster) ResetResident() {
	for _, m := range c.machines {
		m.resident = 0
	}
}
