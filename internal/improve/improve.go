// Package improve implements the anytime local-search improvement stage of
// the solve pipeline: it takes any valid vertex cover of a CSR graph and
// monotonically reduces its weight under a wall-clock budget and context
// cancellation, FastVC-style (Cai, arXiv:1509.05870), adapted to vertex
// weights.
//
// Two move families run over flat per-vertex state — no maps, no mutable
// graph copy:
//
//   - Redundant removal: a cover vertex whose incident edges are all covered
//     by their other endpoint contributes nothing; dropping it is a pure
//     weight win. Candidates are processed heaviest-first. Removal only
//     destroys redundancy (the shared-edge counters decrease), so one sorted
//     pass reaches a cover in which every vertex covers at least one edge
//     alone.
//   - Weighted two-improvement swaps: for a cover vertex u, the edges only u
//     covers run exactly to its non-cover neighbors, so removing u while
//     inserting N(u)\C keeps the cover valid; it is accepted when the insert
//     cost is strictly below w(u). Candidates are drawn by best-from-multiple
//     selection (BMS) from the seeded RNG, and each accepted swap triggers a
//     local redundancy sweep around the inserted vertices.
//
// Every accepted move strictly decreases the cover weight and the cover is
// valid between moves, so the state is its own best-so-far snapshot: on
// budget expiry or cancellation Run simply stops and returns the current
// cover — never a worse or invalid one. The dual certificate of the solve
// is untouched, so the certified ratio of the pipeline only tightens.
//
// Determinism: all tie-breaking (equal weights, equal gains) uses priorities
// derived from the seeded RNG, and the RNG is consumed in a fixed per-step
// sequence. Two runs with the same seed that execute the same number of
// steps produce identical covers; a run that converges (reaches a state
// with no improving move) before the budget expires is therefore fully
// reproducible regardless of wall-clock speed.
package improve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/verify"
)

// DefaultSampleSize is the number of cover vertices the swap loop samples
// per step (FastVC's best-from-multiple-selection width) when
// Options.SampleSize is zero.
const DefaultSampleSize = 64

// Options configures one improvement run.
type Options struct {
	// Budget is the wall-clock budget for the whole run, measured from the
	// Run call. Zero or negative means no budget of its own — the run then
	// ends only at a local optimum or on context cancellation.
	Budget time.Duration
	// Seed drives candidate sampling and all tie-breaking; same seed and
	// step count ⇒ same output.
	Seed uint64
	// SampleSize is the BMS width of the swap loop (default
	// DefaultSampleSize).
	SampleSize int
	// OnStep, when non-nil, is invoked synchronously after every accepted
	// move with the 1-based accepted-move count and the cover weight after
	// the move. It must be fast; the caller turns these into observer
	// events.
	OnStep func(step int, weight float64)
}

// Stats reports what one improvement run did; it travels through the solve
// pipeline into mwvc.Solution so every layer can account for the stage.
type Stats struct {
	// WeightBefore and WeightAfter are the cover weights entering and
	// leaving the run, each recomputed as a full ascending-id sweep over the
	// instance (not the incrementally maintained running weight), so they
	// are bit-for-bit comparable with verify.CoverWeight on the same graph.
	WeightBefore float64 `json:"weight_before"`
	WeightAfter  float64 `json:"weight_after"`
	// RedundantRemoved counts vertices dropped by redundancy elimination
	// (the initial pass and the local sweeps after swaps); Swaps counts
	// accepted two-improvement swaps. Steps is their total — the number of
	// accepted strictly-improving moves.
	RedundantRemoved int `json:"redundant_removed,omitempty"`
	Swaps            int `json:"swaps,omitempty"`
	Steps            int `json:"steps,omitempty"`
	// TimeToFirstNS is the wall-clock time from the start of the run to the
	// first accepted move, 0 when no move was accepted.
	TimeToFirstNS int64 `json:"time_to_first_ns,omitempty"`
	// ImproveNS is the wall-clock cost of the whole run.
	ImproveNS int64 `json:"improve_ns,omitempty"`
	// Converged reports that the run reached a local optimum (no redundant
	// vertex, no improving swap) before the budget or context stopped it;
	// a converged run is fully deterministic for its seed.
	Converged bool `json:"converged,omitempty"`
}

// Run improves a valid cover of g under opts and returns the improved cover
// (a fresh slice; the input is not mutated) together with the run's
// accounting. The only error condition is an invalid input: a cover slice of
// the wrong length or one that leaves an edge uncovered. Budget expiry and
// context cancellation are not errors — the anytime contract is that Run
// then returns the best (= current) cover reached so far, which is always
// valid and never heavier than the input.
func Run(ctx context.Context, g *graph.Graph, cover []bool, opts Options) ([]bool, *Stats, error) {
	if len(cover) != g.NumVertices() {
		return nil, nil, fmt.Errorf("improve: cover length %d, want %d", len(cover), g.NumVertices())
	}
	if ok, e := verify.IsCover(g, cover); !ok {
		u, v := g.Edge(e)
		return nil, nil, fmt.Errorf("improve: input is not a cover: edge (%d,%d) uncovered", u, v)
	}
	start := time.Now()
	st := &Stats{WeightBefore: verify.CoverWeight(g, cover)}
	s := newState(ctx, g, cover, opts, start, st)
	if !s.stoppedNow() {
		s.eliminateRedundant(s.initialRedundant())
	}
	if !s.stoppedNow() {
		s.swapLoop()
	}
	st.Steps = st.RedundantRemoved + st.Swaps
	st.WeightAfter = verify.CoverWeight(g, s.in)
	st.ImproveNS = time.Since(start).Nanoseconds()
	return s.in, st, nil
}

// state is the mutable local-search state over one immutable graph: the
// cover mask, the per-vertex shared-edge counters (the edge-incidence
// "covered by the other endpoint too" count), the per-vertex insert cost of
// the two-improvement swap, and the cover membership list for O(1) sampling.
type state struct {
	g    *graph.Graph
	ctx  context.Context
	opts Options
	st   *Stats

	start    time.Time
	deadline time.Time // zero when no budget
	done     bool      // budget or context fired; stop accepting work
	polls    uint

	in []bool // cover membership
	// shared[v] counts v's incident edges whose other endpoint is in the
	// cover (= |N(v) ∩ C|). A cover vertex u is redundant iff
	// shared[u] == deg(u): every incident edge is covered from the other
	// side too.
	shared []int32
	// outW[v] is Σ w(x) over x ∈ N(v) \ C — for a cover vertex the exact
	// insert cost of the two-improvement swap, so the swap gain
	// w(u) − outW[u] is an O(1) read.
	outW []float64
	// weight is the running cover weight, updated incrementally per move and
	// reported through OnStep. (Stats recomputes the end weights exactly.)
	weight float64

	// coverList holds the cover members in arbitrary order with pos[v] the
	// index of v (−1 outside the cover): O(1) membership updates, O(1)
	// uniform sampling.
	coverList []graph.Vertex
	pos       []int32

	// prio[v] is a per-run random priority from the seeded RNG, the
	// deterministic tie-breaker for equal weights and equal gains.
	prio []uint64
	rnd  *rng.Source

	scratch []graph.Vertex // reusable candidate buffer
}

func newState(ctx context.Context, g *graph.Graph, cover []bool, opts Options, start time.Time, st *Stats) *state {
	n := g.NumVertices()
	s := &state{
		g: g, ctx: ctx, opts: opts, st: st, start: start,
		in:     append([]bool(nil), cover...),
		shared: make([]int32, n),
		outW:   make([]float64, n),
		pos:    make([]int32, n),
		prio:   make([]uint64, n),
		rnd:    rng.New(rng.Mix(opts.Seed, 0x1a5e)),
	}
	if opts.Budget > 0 {
		s.deadline = start.Add(opts.Budget)
	}
	if s.opts.SampleSize <= 0 {
		s.opts.SampleSize = DefaultSampleSize
	}
	for v := 0; v < n; v++ {
		s.pos[v] = -1
		s.prio[v] = rng.Mix(opts.Seed, 0x9d, uint64(v))
	}
	for v := 0; v < n; v++ {
		if s.in[v] {
			s.pos[v] = int32(len(s.coverList))
			s.coverList = append(s.coverList, graph.Vertex(v))
			s.weight += g.Weight(graph.Vertex(v))
		}
		var sh int32
		var ow float64
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if s.in[u] {
				sh++
			} else {
				ow += g.Weight(u)
			}
		}
		s.shared[v] = sh
		s.outW[v] = ow
	}
	return s
}

// stopped reports (and latches) whether the budget or the context has
// fired; the time and ctx checks are amortized over calls.
func (s *state) stopped() bool {
	if s.done {
		return true
	}
	s.polls++
	if s.polls&0x3F != 0 {
		return false
	}
	if s.ctx.Err() != nil || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
		s.done = true
	}
	return s.done
}

// stoppedNow is the unamortized form, used at phase boundaries and after
// accepted moves so cancellation lands between moves, never inside one.
func (s *state) stoppedNow() bool {
	if s.done {
		return true
	}
	if s.ctx.Err() != nil || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
		s.done = true
	}
	return s.done
}

// add inserts v into the cover and updates the flat counters of its
// neighborhood. O(deg v).
func (s *state) add(v graph.Vertex) {
	s.in[v] = true
	s.pos[v] = int32(len(s.coverList))
	s.coverList = append(s.coverList, v)
	s.weight += s.g.Weight(v)
	w := s.g.Weight(v)
	for _, u := range s.g.Neighbors(v) {
		s.shared[u]++
		s.outW[u] -= w
	}
}

// remove drops v from the cover and updates the neighborhood counters.
// O(deg v). The caller guarantees validity (v redundant, or its uncovered
// edges re-covered first).
func (s *state) remove(v graph.Vertex) {
	s.in[v] = false
	last := len(s.coverList) - 1
	moved := s.coverList[last]
	s.coverList[s.pos[v]] = moved
	s.pos[moved] = s.pos[v]
	s.coverList = s.coverList[:last]
	s.pos[v] = -1
	s.weight -= s.g.Weight(v)
	w := s.g.Weight(v)
	for _, u := range s.g.Neighbors(v) {
		s.shared[u]--
		s.outW[u] += w
	}
}

// accepted records one strictly-improving move and streams it to OnStep.
func (s *state) accepted() {
	if s.st.TimeToFirstNS == 0 {
		s.st.TimeToFirstNS = time.Since(s.start).Nanoseconds()
		if s.st.TimeToFirstNS == 0 {
			s.st.TimeToFirstNS = 1 // sub-resolution clock; "a move happened" must survive
		}
	}
	if s.opts.OnStep != nil {
		s.opts.OnStep(s.st.RedundantRemoved+s.st.Swaps, s.weight)
	}
}

// redundant reports whether cover vertex v covers no edge alone.
func (s *state) redundant(v graph.Vertex) bool {
	return s.in[v] && s.shared[v] == int32(s.g.Degree(v))
}

// initialRedundant collects every redundant cover vertex.
func (s *state) initialRedundant() []graph.Vertex {
	var cand []graph.Vertex
	for _, v := range s.coverList {
		if s.redundant(v) {
			cand = append(cand, v)
		}
	}
	return cand
}

// eliminateRedundant drops redundant candidates heaviest-first (ties by RNG
// priority, then id). Removal only decreases shared counters, so it never
// creates new redundancy among vertices outside the candidate set — one
// sorted pass with a re-check at pop suffices.
func (s *state) eliminateRedundant(cand []graph.Vertex) {
	if len(cand) == 0 {
		return
	}
	sort.Slice(cand, func(i, j int) bool {
		vi, vj := cand[i], cand[j]
		wi, wj := s.g.Weight(vi), s.g.Weight(vj)
		if math.Float64bits(wi) != math.Float64bits(wj) {
			return wi > wj
		}
		if s.prio[vi] != s.prio[vj] {
			return s.prio[vi] > s.prio[vj]
		}
		return vi < vj
	})
	for _, v := range cand {
		if s.stopped() {
			return
		}
		if !s.redundant(v) {
			continue
		}
		s.remove(v)
		s.st.RedundantRemoved++
		s.accepted()
	}
}

// gain is the weight saved by the two-improvement swap at cover vertex u:
// remove u, insert every non-cover neighbor. Positive means strictly
// improving.
func (s *state) gain(u graph.Vertex) float64 {
	return s.g.Weight(u) - s.outW[u]
}

// swapLoop runs BMS-sampled two-improvement swaps until the budget expires,
// the context fires, or a full deterministic sweep certifies a local
// optimum.
//
//mwvc:hotpath
func (s *state) swapLoop() {
	// After this many consecutive sample steps without an improving
	// candidate, fall back to one exhaustive sweep to either find a move the
	// sampler keeps missing or certify convergence.
	failLimit := 4 * s.opts.SampleSize
	fails := 0
	for {
		if s.stoppedNow() {
			return
		}
		if len(s.coverList) == 0 {
			s.st.Converged = true
			return
		}
		if fails >= failLimit {
			if !s.sweep() {
				s.st.Converged = !s.done
				return
			}
			fails = 0
			continue
		}
		if u, ok := s.sample(); ok {
			s.applySwap(u)
			fails = 0
		} else {
			fails++
		}
	}
}

// sample draws up to SampleSize cover vertices from the seeded RNG and
// returns the one with the best positive gain (ties by RNG priority, then
// id).
//
//mwvc:hotpath
func (s *state) sample() (graph.Vertex, bool) {
	var best graph.Vertex = -1
	bestGain := 0.0
	for i := 0; i < s.opts.SampleSize; i++ {
		u := s.coverList[s.rnd.Intn(len(s.coverList))]
		g := s.gain(u)
		if g <= 0 {
			continue
		}
		if best < 0 || g > bestGain ||
			(math.Float64bits(g) == math.Float64bits(bestGain) &&
				(s.prio[u] > s.prio[best] || (s.prio[u] == s.prio[best] && u < best))) {
			best, bestGain = u, g
		}
	}
	return best, best >= 0
}

// sweep scans the whole cover in ascending id order and applies the first
// improving swap (first-improvement). It returns whether it accepted a
// move; a false return with the run still live certifies a local optimum:
// no redundant vertex (gain would be w(u) > 0) and no improving swap exist.
//
//mwvc:hotpath
func (s *state) sweep() bool {
	n := s.g.NumVertices()
	for v := 0; v < n; v++ {
		if s.stopped() {
			return false
		}
		if s.in[v] && s.gain(graph.Vertex(v)) > 0 {
			s.applySwap(graph.Vertex(v))
			return true
		}
	}
	return false
}

// applySwap executes the two-improvement at u atomically with respect to
// cancellation: insert every non-cover neighbor, drop u, then sweep the
// inserted vertices' cover neighborhoods for new redundancy. The cover is
// valid after every individual add/remove, so a stop signal observed after
// the swap still leaves a valid, strictly lighter cover.
//
//mwvc:hotpath
func (s *state) applySwap(u graph.Vertex) {
	s.scratch = s.scratch[:0]
	for _, v := range s.g.Neighbors(u) {
		if !s.in[v] {
			s.scratch = append(s.scratch, v)
		}
	}
	for _, v := range s.scratch {
		s.add(v)
	}
	s.remove(u)
	s.st.Swaps++
	s.accepted()

	// Inserting S may have made cover vertices around S redundant (their
	// shared counters grew); collect and drop them. u itself cannot be a
	// candidate (just removed), and removals cascade no new candidates.
	var cand []graph.Vertex
	for _, v := range s.scratch {
		for _, x := range s.g.Neighbors(v) {
			if s.in[x] && s.redundant(x) && s.pos[x] >= 0 {
				cand = appendUnique(cand, x)
			}
		}
	}
	s.eliminateRedundant(cand)
}

// appendUnique appends v if it is not already present; candidate sets here
// are tiny (a swap neighborhood), so the linear scan beats any set
// structure.
func appendUnique(list []graph.Vertex, v graph.Vertex) []graph.Vertex {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
