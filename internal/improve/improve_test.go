package improve

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/verify"
)

// fullCover marks every vertex — the maximally redundant starting point.
func fullCover(g *graph.Graph) []bool {
	c := make([]bool, g.NumVertices())
	for v := range c {
		c[v] = true
	}
	return c
}

func mustGraph(t *testing.T, gen string, n int, d float64, weights string, seed uint64) *graph.Graph {
	t.Helper()
	g, err := cli.BuildGraph(gen, n, d, weights, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunRejectsInvalidInput(t *testing.T) {
	g := mustGraph(t, "gnp", 50, 4, "uniform", 1)
	if _, _, err := Run(context.Background(), g, make([]bool, 3), Options{}); err == nil {
		t.Fatal("wrong-length cover accepted")
	}
	if _, _, err := Run(context.Background(), g, make([]bool, g.NumVertices()), Options{}); err == nil {
		t.Fatal("empty non-cover accepted")
	}
}

// TestImprovesAndStaysValid is the core contract: on a range of instances,
// starting from the all-vertices cover, the result is a valid cover that is
// never heavier, and the Stats weights are bitwise recomputed sums.
func TestImprovesAndStaysValid(t *testing.T) {
	for _, spec := range []struct {
		name, gen, weights string
		n                  int
		d                  float64
	}{
		{"gnp-uniform", "gnp", "uniform", 400, 6},
		{"powerlaw-unit", "powerlaw", "unit", 400, 3},
		{"star", "star", "uniform", 200, 0},
		{"grid", "grid", "uniform", 144, 4},
	} {
		t.Run(spec.name, func(t *testing.T) {
			g := mustGraph(t, spec.gen, spec.n, spec.d, spec.weights, 7)
			in := fullCover(g)
			out, st, err := Run(context.Background(), g, in, Options{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if ok, e := verify.IsCover(g, out); !ok {
				t.Fatalf("improved cover misses edge %d", e)
			}
			if math.Float64bits(st.WeightBefore) != math.Float64bits(verify.CoverWeight(g, in)) {
				t.Fatalf("WeightBefore %v != recomputed %v", st.WeightBefore, verify.CoverWeight(g, in))
			}
			if math.Float64bits(st.WeightAfter) != math.Float64bits(verify.CoverWeight(g, out)) {
				t.Fatalf("WeightAfter %v != recomputed %v", st.WeightAfter, verify.CoverWeight(g, out))
			}
			if st.WeightAfter > st.WeightBefore {
				t.Fatalf("weight increased: %v -> %v", st.WeightBefore, st.WeightAfter)
			}
			if g.NumEdges() > 0 && st.WeightAfter == st.WeightBefore {
				t.Fatal("full cover of a non-empty graph not improved at all")
			}
			if !st.Converged {
				t.Fatal("unbudgeted run did not converge")
			}
			if st.Steps != st.RedundantRemoved+st.Swaps {
				t.Fatalf("step accounting inconsistent: %+v", st)
			}
			// Input must not be mutated.
			for v := range in {
				if !in[v] {
					t.Fatal("input cover mutated")
				}
			}
		})
	}
}

// TestNoRedundancyAtConvergence: a converged cover has no redundant vertex —
// every cover vertex covers at least one edge alone.
func TestNoRedundancyAtConvergence(t *testing.T) {
	g := mustGraph(t, "gnp", 300, 8, "uniform", 9)
	out, st, err := Run(context.Background(), g, fullCover(g), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("run did not converge")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !out[v] {
			continue
		}
		alone := false
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if !out[u] {
				alone = true
				break
			}
		}
		if !alone && g.Degree(graph.Vertex(v)) > 0 {
			t.Fatalf("vertex %d is redundant at convergence", v)
		}
	}
}

// TestSwapBeatsRedundancyOnly pins that phase 2 earns its keep: on a star
// with a heavy hub and cheap leaves, the hub-only cover has no redundant
// vertex, yet swapping the hub for the leaves wins.
func TestSwapBeatsRedundancyOnly(t *testing.T) {
	b := graph.NewBuilder(6)
	b.SetWeight(0, 100)
	for l := graph.Vertex(1); l < 6; l++ {
		b.SetWeight(l, 1)
		b.AddEdge(0, l)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cover := make([]bool, 6)
	cover[0] = true // valid, irredundant, and 20x too heavy
	out, st, err := Run(context.Background(), g, cover, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] || st.WeightAfter != 5 {
		t.Fatalf("swap not applied: cover[0]=%v weight=%v", out[0], st.WeightAfter)
	}
	if st.Swaps == 0 {
		t.Fatal("no swap recorded")
	}
	if st.TimeToFirstNS <= 0 {
		t.Fatalf("TimeToFirstNS = %d, want > 0", st.TimeToFirstNS)
	}
}

// TestDeterministicForSeed: converged runs are a pure function of the seed.
func TestDeterministicForSeed(t *testing.T) {
	g := mustGraph(t, "powerlaw", 500, 4, "uniform", 13)
	a, sa, err := Run(context.Background(), g, fullCover(g), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Run(context.Background(), g, fullCover(g), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sa.WeightAfter) != math.Float64bits(sb.WeightAfter) {
		t.Fatalf("weights differ across identical runs: %v vs %v", sa.WeightAfter, sb.WeightAfter)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("cover bit %d differs across identical runs", v)
		}
	}
}

// TestMidStepCancellation pins the anytime bugfix contract: cancelling the
// context between accepted swaps must stop the run without ever returning a
// worse or invalid cover. OnStep fires synchronously after each accepted
// move, so cancelling from inside it is exactly "between accepted swaps".
func TestMidStepCancellation(t *testing.T) {
	g := mustGraph(t, "gnp", 600, 10, "uniform", 21)
	in := fullCover(g)
	// Reference run: how many moves a full convergence takes.
	_, full, err := Run(context.Background(), g, in, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if full.Steps < 4 {
		t.Fatalf("instance too easy to exercise cancellation: %d steps", full.Steps)
	}
	for _, cutAt := range []int{1, 2, full.Steps / 2} {
		ctx, cancel := context.WithCancel(context.Background())
		var weights []float64
		out, st, err := Run(ctx, g, in, Options{
			Seed: 8,
			OnStep: func(step int, weight float64) {
				weights = append(weights, weight)
				if step == cutAt {
					cancel()
				}
			},
		})
		cancel()
		if err != nil {
			t.Fatalf("cutAt=%d: cancellation surfaced as error: %v", cutAt, err)
		}
		if ok, e := verify.IsCover(g, out); !ok {
			t.Fatalf("cutAt=%d: cover after cancellation misses edge %d", cutAt, e)
		}
		if st.Converged {
			t.Fatalf("cutAt=%d: cancelled run claims convergence", cutAt)
		}
		if st.WeightAfter > st.WeightBefore {
			t.Fatalf("cutAt=%d: cancelled run got worse: %v -> %v", cutAt, st.WeightBefore, st.WeightAfter)
		}
		if math.Float64bits(st.WeightAfter) != math.Float64bits(verify.CoverWeight(g, out)) {
			t.Fatalf("cutAt=%d: WeightAfter not the recomputed weight", cutAt)
		}
		// The streamed weights are strictly decreasing: every accepted move
		// is a strict improvement, also under cancellation.
		for i := 1; i < len(weights); i++ {
			if weights[i] >= weights[i-1] {
				t.Fatalf("cutAt=%d: step %d weight %v not below %v", cutAt, i, weights[i], weights[i-1])
			}
		}
		if len(weights) < cutAt {
			t.Fatalf("cutAt=%d: only %d steps streamed", cutAt, len(weights))
		}
	}
}

// TestBudgetExpiry: an already-expired budget returns the input cover
// unchanged (no moves), still as a valid non-error result.
func TestBudgetExpiry(t *testing.T) {
	g := mustGraph(t, "gnp", 400, 8, "uniform", 2)
	in := fullCover(g)
	out, st, err := Run(context.Background(), g, in, Options{Seed: 1, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := verify.IsCover(g, out); !ok {
		t.Fatal("cover invalid after immediate budget expiry")
	}
	if st.WeightAfter > st.WeightBefore {
		t.Fatal("budget expiry made the cover heavier")
	}
	// A generous budget on a small instance converges like the unbudgeted run.
	out2, st2, err := Run(context.Background(), g, in, Options{Seed: 1, Budget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Converged {
		t.Fatal("generous budget did not converge")
	}
	ref, _, err := Run(context.Background(), g, in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref {
		if out2[v] != ref[v] {
			t.Fatalf("budgeted converged run differs from unbudgeted at %d", v)
		}
	}
}

// TestAlreadyCancelledContext: a pre-cancelled context is not an error; the
// input comes back untouched.
func TestAlreadyCancelledContext(t *testing.T) {
	g := mustGraph(t, "grid", 100, 4, "unit", 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := fullCover(g)
	out, st, err := Run(ctx, g, in, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 0 {
		t.Fatalf("pre-cancelled run accepted %d moves", st.Steps)
	}
	if ok, _ := verify.IsCover(g, out); !ok {
		t.Fatal("cover invalid")
	}
	if math.Float64bits(st.WeightAfter) != math.Float64bits(st.WeightBefore) {
		t.Fatal("pre-cancelled run changed the weight")
	}
}

// TestEdgelessGraph: the empty cover of an edgeless graph converges to
// weight 0 immediately.
func TestEdgelessGraph(t *testing.T) {
	b := graph.NewBuilder(5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := Run(context.Background(), g, fullCover(g), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.WeightAfter != 0 || !st.Converged {
		t.Fatalf("edgeless: %+v", st)
	}
	for v := range out {
		if out[v] {
			t.Fatal("edgeless cover kept a vertex")
		}
	}
}
