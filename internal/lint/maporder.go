package lint

import (
	"go/ast"
	"go/types"
)

// checkMapOrder flags every range over a map (or over a maps.Keys /
// maps.Values / maps.All iterator) in a deterministic package, except the
// one blessed idiom: a loop whose body only appends the keys/values to
// local slices that are passed to a sort call later in the same function.
// Anything else makes program output depend on map iteration order, which
// breaks bit-for-bit seed reproducibility.
func checkMapOrder(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		// Walk function by function so the "sorted later" check can see the
		// rest of the enclosing body.
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapOrderBody(p, info, fn.Body)
			return true
		})
	}
}

// checkMapOrderBody inspects one function body for map ranges.
func checkMapOrderBody(p *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if isMapIterCall(info, rng.X) {
			p.Reportf(rng.For, "range over %s iterates in nondeterministic map order; collect and sort instead", callName(rng.X))
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		collected := collectOnlyAppends(info, rng)
		if collected == nil {
			p.Reportf(rng.For, "map iteration order is nondeterministic here; collect the keys, sort them, and range over the slice")
			return true
		}
		for _, obj := range collected {
			if !sortedAfter(info, body, rng, obj) {
				p.Reportf(rng.For, "map keys are collected into %s but never sorted in this function; sort before any order-dependent use", obj.Name())
			}
		}
		return true
	})
}

// isMapIterCall reports whether e is a call to maps.Keys, maps.Values or
// maps.All — iterator forms of a map range, equally unordered.
func isMapIterCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
		return false
	}
	switch fn.Name() {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// callName renders a range operand that is a call, for diagnostics.
func callName(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "call"
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
	}
	return "call"
}

// collectOnlyAppends returns the slice objects a map-range body appends
// into, when every statement of the body is of the blessed collection form
// `s = append(s, expr)`; it returns nil when the body does anything else.
func collectOnlyAppends(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var objs []types.Object
	for _, stmt := range rng.Body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return nil
		}
		lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
		if !ok {
			return nil
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return nil
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" || info.Uses[fun] != types.Universe.Lookup("append") {
			return nil
		}
		base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || base.Name != lhs.Name {
			return nil
		}
		obj := info.Uses[base]
		if obj == nil {
			return nil
		}
		objs = append(objs, obj)
	}
	if len(objs) == 0 {
		return nil
	}
	return objs
}

// sortedAfter reports whether, after the range statement, the enclosing
// body contains a call to a sort.* or slices.Sort* function with obj among
// its arguments.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
