package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"strings"
)

// Markers delimiting the generated injection-point table in DESIGN.md;
// everything between them is owned by `mwvc-lint -write-fault-table`.
const (
	// FaultTableBegin opens the generated region.
	FaultTableBegin = "<!-- faultpoints:begin (generated from internal/fault by `go run ./cmd/mwvc-lint -write-fault-table`; do not edit) -->"
	// FaultTableEnd closes the generated region.
	FaultTableEnd = "<!-- faultpoints:end -->"
)

// FaultTable renders the registry's injection points as a markdown table:
// one row per package-level Point constant of the fault package, in
// declaration order, with the row text taken from the constant's doc
// comment. This is the single source the DESIGN.md table is generated
// from, so the docs cannot drift from the registry.
func FaultTable(pkg *Package) (string, error) {
	var b strings.Builder
	b.WriteString("| Point | Constant | Fires |\n")
	b.WriteString("|-------|----------|-------|\n")
	rows := 0
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 {
					continue
				}
				c, ok := pkg.Info.Defs[vs.Names[0]].(*types.Const)
				if !ok {
					continue
				}
				named, ok := c.Type().(*types.Named)
				if !ok || named.Obj().Name() != "Point" || c.Parent() != pkg.Pkg.Scope() {
					continue
				}
				doc := vs.Doc
				if doc == nil {
					return "", fmt.Errorf("lint: fault point constant %s lacks the doc comment the table is generated from", c.Name())
				}
				fmt.Fprintf(&b, "| `%s` | `%s` | %s |\n",
					constant.StringVal(c.Val()), c.Name(), docCell(c.Name(), doc.Text()))
				rows++
			}
		}
	}
	if rows == 0 {
		return "", fmt.Errorf("lint: no Point constants found in %s", pkg.Path)
	}
	return b.String(), nil
}

// docCell flattens a constant's doc comment into one table cell: the
// leading "<Name> fires" is dropped, newlines collapse to spaces, and the
// first letter is capitalized.
func docCell(name, doc string) string {
	text := strings.Join(strings.Fields(doc), " ")
	if rest, ok := strings.CutPrefix(text, name+" "); ok {
		text = rest
	}
	if text != "" {
		text = strings.ToUpper(text[:1]) + text[1:]
	}
	return text
}

// FaultTableRegion returns the full generated region, markers included.
func FaultTableRegion(table string) string {
	return FaultTableBegin + "\n\n" + table + "\n" + FaultTableEnd
}

// CheckFaultTableDoc verifies that the marked region of the documentation
// file matches the generated table, returning a descriptive error when the
// markers are missing or the content is stale.
func CheckFaultTableDoc(docPath, table string) error {
	data, err := os.ReadFile(docPath)
	if err != nil {
		return err
	}
	current, err := extractRegion(string(data))
	if err != nil {
		return fmt.Errorf("%s: %w", docPath, err)
	}
	if strings.TrimSpace(current) != strings.TrimSpace(table) {
		return fmt.Errorf("%s: injection-point table is stale; run `go run ./cmd/mwvc-lint -write-fault-table`", docPath)
	}
	return nil
}

// WriteFaultTableDoc rewrites the marked region of the documentation file
// with the generated table, reporting whether the file changed.
func WriteFaultTableDoc(docPath, table string) (bool, error) {
	data, err := os.ReadFile(docPath)
	if err != nil {
		return false, err
	}
	text := string(data)
	begin := strings.Index(text, FaultTableBegin)
	end := strings.Index(text, FaultTableEnd)
	if begin < 0 || end < 0 || end < begin {
		return false, fmt.Errorf("%s: faultpoints markers not found", docPath)
	}
	updated := text[:begin] + FaultTableRegion(table) + text[end+len(FaultTableEnd):]
	if updated == text {
		return false, nil
	}
	return true, os.WriteFile(docPath, []byte(updated), 0o644)
}

// extractRegion pulls the content between the faultpoints markers.
func extractRegion(text string) (string, error) {
	begin := strings.Index(text, FaultTableBegin)
	if begin < 0 {
		return "", fmt.Errorf("missing marker %q", FaultTableBegin)
	}
	rest := text[begin+len(FaultTableBegin):]
	end := strings.Index(rest, FaultTableEnd)
	if end < 0 {
		return "", fmt.Errorf("missing marker %q", FaultTableEnd)
	}
	return rest[:end], nil
}
