package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked module package: its parsed files plus the
// go/types objects and expression types the rules consult. All packages
// loaded through one Loader share the Loader's FileSet.
type Package struct {
	// Path is the package's import path (e.g. "repro/internal/core").
	Path string
	// Dir is the absolute directory the package was parsed from.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info records types, definitions and uses for every expression and
	// identifier in Files.
	Info *types.Info
}

// Loader parses and type-checks the module's packages on demand using only
// the standard library: intra-module imports resolve through the Loader's
// own cache, everything else (the standard library) through the compiler's
// source importer. Loading is memoized; a Loader is not safe for concurrent
// use.
type Loader struct {
	root    string // absolute module root
	modpath string // module path from go.mod
	fset    *token.FileSet
	std     types.ImporterFrom
	build   build.Context
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader rooted at the module directory containing
// go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		root:    abs,
		modpath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		build:   build.Default,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Fset returns the FileSet all loaded packages share; rules resolve
// token.Pos values through it.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modpath }

// modulePath extracts the module path from the first `module` directive of
// a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Module loads every package of the module (skipping testdata and hidden
// directories) and returns them sorted by import path.
func (l *Loader) Module() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			paths = append(paths, l.modpath)
		} else {
			paths = append(paths, l.modpath+"/"+filepath.ToSlash(rel))
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Package(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Package loads (or returns the memoized) module package with the given
// import path.
func (l *Loader) Package(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %s is not a package of module %s", path, l.modpath)
	}
	return l.load(path, dir)
}

// LoadDir type-checks the single directory dir as a package with the given
// import path. Intra-module imports still resolve through the Loader; the
// golden-file test harness uses this to load testdata packages that are
// invisible to Module.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// dirFor maps a module import path back to its source directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.modpath {
		return l.root, true
	}
	rest, ok := strings.CutPrefix(path, l.modpath+"/")
	if !ok {
		return "", false
	}
	return filepath.Join(l.root, filepath.FromSlash(rest)), true
}

// load parses and type-checks one directory, resolving its imports
// recursively.
func (l *Loader) load(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the buildable non-test Go files of one directory in
// file-name order, honoring build constraints for the host platform.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := l.build.MatchFile(dir, name); err != nil {
			return nil, err
		} else if !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts a Loader to go/types.ImporterFrom: module packages
// come from the Loader's cache, everything else from the source importer.
type loaderImporter Loader

// Import resolves path with no importing-package context.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

// ImportFrom resolves an import encountered while type-checking: module
// packages recurse through the Loader, the rest delegate to the standard
// library's source importer.
func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		pkg, err := l.Package(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
