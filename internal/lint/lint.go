// Package lint is the project's static analyzer: a standard-library-only
// framework (go/parser + go/ast + go/types, the same toolkit as
// cmd/mwvc-docs) that loads the whole module and enforces the repository's
// load-bearing invariants at the source level — invariants the runtime
// tests only sample. The rule suite:
//
//   - maporder: no map iteration in deterministic packages unless the keys
//     are collected and sorted first (map range order would break
//     seed-reproducibility).
//   - ctxloop: in solver/algorithm packages, every for loop without a
//     statically bounded trip count must reach a ctx.Err()/ctx.Done() poll
//     or call something that does (the PR 1 cancellation contract).
//   - floateq: no ==/!=/switch on floating-point operands unless one side
//     is a compile-time constant — weights and ratios are compared through
//     math.Float64bits or an explicit tolerance.
//   - hotalloc: functions annotated //mwvc:hotpath may not contain map
//     literals or makes, capturing closures, fmt calls, or appends to
//     locally-declared slices (the source-level form of the AllocsPerRun
//     pins).
//   - faultpoint: every fault.Hit argument must be a registered Point
//     constant from internal/fault — no drifting injection-point names.
//
// Diagnostics print as `file:line: [rule] message`. A finding is suppressed
// by a `//lint:allow <rule> <reason>` comment on the same line or the line
// above; the reason is mandatory, and an allow without one is itself a
// finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of one rule.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the rule that fired.
	Rule string
	// Message states what is wrong and how to fix it.
	Message string
}

// String formats the diagnostic as `file:line: [rule] message`.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Rule is one invariant check. Check runs once per in-scope package and
// reports findings through the Pass.
type Rule struct {
	// Name identifies the rule in diagnostics and //lint:allow comments.
	Name string
	// Doc is the one-line invariant statement shown by mwvc-lint -rules.
	Doc string
	// InScope reports whether the rule applies to the package with the
	// given import path.
	InScope func(pkgPath string) bool
	// Check analyzes one package.
	Check func(p *Pass)
}

// Pass carries everything a Rule's Check needs for one package: the
// type-checked package, the shared FileSet, cross-package facts, and the
// report sink.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Fset resolves token.Pos values for Pkg and every other loaded
	// package.
	Fset *token.FileSet
	// Facts holds the module-wide analyses shared by the rules.
	Facts *Facts

	rule   string
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// deterministicPkgs are the packages whose solves must be bit-for-bit
// reproducible for a given seed: map iteration order must never influence
// their output (rule maporder). serve is included because its cache
// eviction and metrics rendering sit on paths whose outputs (which tuples
// stay cached, the /metrics text) must not wander between runs.
var deterministicPkgs = map[string]bool{
	"core": true, "mpc": true, "mpcalg": true, "cclique": true,
	"matching": true, "ggk": true, "centralized": true, "exact": true,
	"reduce": true, "improve": true, "solver": true, "graph": true,
	"serve": true, "pdfast": true, "compress": true,
}

// algorithmPkgs are the packages bound by the cancellation contract: every
// unbounded loop must poll the context (rule ctxloop).
var algorithmPkgs = map[string]bool{
	"core": true, "mpcalg": true, "cclique": true, "matching": true,
	"ggk": true, "centralized": true, "exact": true, "reduce": true,
	"improve": true, "solver": true, "pdfast": true, "compress": true,
}

// floatPkgs are the packages where float equality is load-bearing: the
// deterministic set plus the certificate checker.
var floatPkgs = func() map[string]bool {
	m := map[string]bool{"verify": true}
	for k := range deterministicPkgs {
		m[k] = true
	}
	return m
}()

// lastElem returns the final path element of an import path.
func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// scopeSet builds an InScope predicate matching packages whose final path
// element is in set.
func scopeSet(set map[string]bool) func(string) bool {
	return func(pkgPath string) bool { return set[lastElem(pkgPath)] }
}

// scopeAll puts every package except internal/fault itself in scope (the
// registry package legitimately manipulates raw point strings).
func scopeAll(pkgPath string) bool {
	return lastElem(pkgPath) != "fault"
}

// Rules returns the full rule suite in reporting order.
func Rules() []*Rule {
	return []*Rule{
		{
			Name:    "maporder",
			Doc:     "deterministic packages must not iterate maps in program-visible order; collect keys and sort first",
			InScope: scopeSet(deterministicPkgs),
			Check:   checkMapOrder,
		},
		{
			Name:    "ctxloop",
			Doc:     "unbounded loops in solver/algorithm packages must poll ctx.Err()/ctx.Done() or call something that does",
			InScope: scopeSet(algorithmPkgs),
			Check:   checkCtxLoop,
		},
		{
			Name:    "floateq",
			Doc:     "no ==/!=/switch on non-constant floating-point operands; compare via math.Float64bits or an explicit tolerance",
			InScope: scopeSet(floatPkgs),
			Check:   checkFloatEq,
		},
		{
			Name:    "hotalloc",
			Doc:     "//mwvc:hotpath functions may not allocate: no map literals/makes, capturing closures, fmt calls, or appends to local slices",
			InScope: func(string) bool { return true },
			Check:   checkHotAlloc,
		},
		{
			Name:    "faultpoint",
			Doc:     "fault.Hit arguments must be registered Point constants from internal/fault",
			InScope: scopeAll,
			Check:   checkFaultPoint,
		},
	}
}

// Run loads the whole module through l, computes the cross-package Facts,
// applies every rule to its in-scope packages, and returns the unsuppressed
// findings sorted by position. Malformed or reason-less //lint:allow
// comments are reported under the pseudo-rule "allow".
func Run(l *Loader, rules []*Rule) ([]Diagnostic, error) {
	pkgs, err := l.Module()
	if err != nil {
		return nil, err
	}
	facts := ComputeFacts(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, runPackage(l, pkg, rules, facts, false)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies the rule suite to one already-loaded package. With
// force set, scope predicates are ignored — the golden-file harness uses
// this to exercise rules on testdata packages whose import paths are
// outside every scope.
func RunPackage(l *Loader, pkg *Package, rules []*Rule, facts *Facts, force bool) []Diagnostic {
	diags := runPackage(l, pkg, rules, facts, force)
	sortDiagnostics(diags)
	return diags
}

func runPackage(l *Loader, pkg *Package, rules []*Rule, facts *Facts, force bool) []Diagnostic {
	sup := newSuppressions(l.Fset(), pkg.Files)
	var diags []Diagnostic
	diags = append(diags, sup.malformed...)
	for _, r := range rules {
		if !force && !r.InScope(pkg.Path) {
			continue
		}
		pass := &Pass{Pkg: pkg, Fset: l.Fset(), Facts: facts, rule: r.Name}
		pass.report = func(d Diagnostic) {
			if !sup.allows(r.Name, d.Pos) {
				diags = append(diags, d)
			}
		}
		r.Check(pass)
	}
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// allowPrefix introduces a suppression comment: //lint:allow <rule> <reason>.
const allowPrefix = "//lint:allow "

// suppressions indexes the //lint:allow comments of one package by file and
// line. An allow on line N suppresses matching findings on lines N and N+1,
// so it can sit at the end of the offending line or on its own line above.
type suppressions struct {
	byLine    map[string]map[int][]string // file -> line -> allowed rules
	malformed []Diagnostic
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					if strings.HasPrefix(c.Text, "//lint:") && !strings.HasPrefix(c.Text, "//lint:ignore") {
						pos := fset.Position(c.Pos())
						s.malformed = append(s.malformed, Diagnostic{Pos: pos, Rule: "allow",
							Message: fmt.Sprintf("malformed lint directive %q; use //lint:allow <rule> <reason>", c.Text)})
					}
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{Pos: pos, Rule: "allow",
						Message: "//lint:allow needs a rule name and a reason (//lint:allow <rule> <why this is safe>)"})
					continue
				}
				rule := fields[0]
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], rule)
			}
		}
	}
	return s
}

// allows reports whether a finding of rule at pos is suppressed.
func (s *suppressions) allows(rule string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, r := range lines[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// RelDiagnostics rewrites every diagnostic's file name relative to root,
// for stable output independent of the invocation directory.
func RelDiagnostics(root string, diags []Diagnostic) {
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}
