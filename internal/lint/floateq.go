package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFloatEq flags == and != between floating-point operands, and switch
// statements with a floating-point tag, unless one side is a compile-time
// constant. Comparing a computed weight or ratio for equality depends on
// rounding history; the project contract is to compare through
// math.Float64bits (which these expressions never trip — the operands are
// integers by then) or against an explicit constant/tolerance.
func checkFloatEq(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if !isFloat(info.TypeOf(e.X)) && !isFloat(info.TypeOf(e.Y)) {
					return true
				}
				if isConstExpr(info, e.X) || isConstExpr(info, e.Y) {
					return true
				}
				p.Reportf(e.OpPos, "%s on floating-point operands is rounding-sensitive; compare math.Float64bits values or use an explicit tolerance", e.Op)
			case *ast.SwitchStmt:
				if e.Tag == nil || !isFloat(info.TypeOf(e.Tag)) || isConstExpr(info, e.Tag) {
					return true
				}
				p.Reportf(e.Switch, "switch on a floating-point value is rounding-sensitive; compare math.Float64bits values or use an explicit tolerance")
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstExpr reports whether the type checker evaluated e to a constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
