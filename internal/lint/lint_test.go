package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// expectation is one `// want` comment from a testdata file: a diagnostic
// regex anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts the golden expectations from a loaded package. The
// syntax is analysistest-style:
//
//	for _, v := range m { // want `map iteration order is nondeterministic`
//
// plus an optional relative line offset for diagnostics whose line cannot
// carry a second comment (a malformed //lint directive owns its whole
// line):
//
//	//lint:allow maporder
//	// want:-1 `needs a rule name and a reason`
//
// The pattern is matched against the full `[rule] message` text.
func parseWants(t *testing.T, l *lint.Loader, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want")
				if !ok {
					continue
				}
				offset := 0
				if after, ok := strings.CutPrefix(rest, ":"); ok {
					sp := strings.IndexByte(after, ' ')
					if sp < 0 {
						t.Fatalf("%s: malformed want offset %q", l.Fset().Position(c.Pos()), c.Text)
					}
					n, err := strconv.Atoi(after[:sp])
					if err != nil {
						t.Fatalf("%s: malformed want offset %q: %v", l.Fset().Position(c.Pos()), c.Text, err)
					}
					offset, rest = n, after[sp:]
				}
				pat, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("%s: want pattern must be a quoted string: %q", l.Fset().Position(c.Pos()), c.Text)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", l.Fset().Position(c.Pos()), pat, err)
				}
				pos := l.Fset().Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line + offset, re: re})
			}
		}
	}
	return wants
}

// TestGolden runs each rule against its testdata package and checks the
// produced diagnostics against the `// want` comments: every diagnostic
// must be wanted, every want must fire. The allow directory has no rule of
// its own; it exercises the malformed-directive findings the suppression
// scanner itself reports.
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*lint.Rule)
	for _, r := range lint.Rules() {
		byName[r.Name] = r
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			var rules []*lint.Rule
			if name != "allow" {
				r, ok := byName[name]
				if !ok {
					t.Fatalf("testdata/src/%s does not match any rule", name)
				}
				rules = []*lint.Rule{r}
			}
			pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "testdata/"+name)
			if err != nil {
				t.Fatal(err)
			}
			factPkgs := []*lint.Package{pkg}
			if name == "faultpoint" {
				reg, err := l.Package(l.ModulePath() + "/internal/fault")
				if err != nil {
					t.Fatal(err)
				}
				factPkgs = append(factPkgs, reg)
			}
			facts := lint.ComputeFacts(factPkgs)
			diags := lint.RunPackage(l, pkg, rules, facts, true)
			wants := parseWants(t, l, pkg)
			for _, d := range diags {
				full := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
				found := false
				for _, w := range wants {
					if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(full) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestModuleClean pins the acceptance bar the shipped tree must hold: the
// full rule suite over the whole module reports nothing. Reverting any of
// the determinism or cancellation fixes turns this red.
func TestModuleClean(t *testing.T) {
	l, err := lint.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(l, lint.Rules())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// TestFaultTableCurrent pins DESIGN.md's generated injection-point table to
// the internal/fault registry; a drift means someone edited one without
// `mwvc-lint -write-fault-table`.
func TestFaultTableCurrent(t *testing.T) {
	l, err := lint.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Package(l.ModulePath() + "/internal/fault")
	if err != nil {
		t.Fatal(err)
	}
	table, err := lint.FaultTable(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := lint.CheckFaultTableDoc(filepath.Join("..", "..", "DESIGN.md"), table); err != nil {
		t.Error(err)
	}
}
