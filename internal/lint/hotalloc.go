package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotpathDirective marks a function whose steady-state execution must not
// allocate; rule hotalloc enforces it. The annotation lives in the
// function's doc comment, directive-style:
//
//	//mwvc:hotpath
//	func (c *Cluster) routeChunk(k int) { ... }
const HotpathDirective = "//mwvc:hotpath"

// checkHotAlloc enforces the allocation discipline on every function
// annotated //mwvc:hotpath — the source-level form of the AllocsPerRun
// pins on the MPC message plane and the local-search inner loops. Inside
// an annotated function it flags:
//
//   - map composite literals and make(map...) — a fresh hash table per call;
//   - function literals that capture variables — the capture forces a heap
//     closure on every execution;
//   - calls into package fmt — fmt formats through interfaces and
//     allocates on every call;
//   - append to a slice declared inside the function — growth the caller
//     cannot pre-size; hot paths append only into hoisted buffers
//     (parameters, receivers fields, package state).
func checkHotAlloc(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotBody(p, info, fd)
		}
	}
}

// isHotpath reports whether the function carries the //mwvc:hotpath
// directive in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

// checkHotBody walks one annotated function.
func checkHotBody(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	body := fd.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			if t := info.TypeOf(e); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(e.Pos(), "map literal allocates in hot path %s; hoist the map out of the hot function", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, info, fd, e)
		case *ast.FuncLit:
			if capt := capturedVar(info, fd, e); capt != "" {
				p.Reportf(e.Pos(), "closure captures %s in hot path %s; a capturing func literal heap-allocates per execution", capt, fd.Name.Name)
			}
		}
		return true
	})
}

// checkHotCall flags make(map...), fmt calls, and appends to local slices.
func checkHotCall(p *Pass, info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		switch info.Uses[id] {
		case types.Universe.Lookup("make"):
			if len(call.Args) > 0 {
				if t := info.TypeOf(call.Args[0]); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(call.Pos(), "make(map) allocates in hot path %s; hoist the map out of the hot function", fd.Name.Name)
					}
				}
			}
			return
		case types.Universe.Lookup("append"):
			if len(call.Args) == 0 {
				return
			}
			base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return
			}
			obj := info.Uses[base]
			if obj == nil {
				return
			}
			// Appending into a hoisted buffer (parameter, receiver field,
			// package state) is fine; growing a slice born inside the hot
			// function is the allocation the rule exists to catch.
			if obj.Pos() > fd.Body.Lbrace && obj.Pos() < fd.Body.Rbrace {
				p.Reportf(call.Pos(), "append grows %s, declared inside hot path %s; append only into hoisted buffers", base.Name, fd.Name.Name)
			}
			return
		}
	}
	if callee := staticCallee(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "fmt.%s allocates in hot path %s; format outside the hot function", callee.Name(), fd.Name.Name)
	}
}

// capturedVar returns the name of a variable the function literal captures
// from the enclosing function (body, parameters or receiver), or "" when it
// captures nothing.
func capturedVar(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		// Captured: declared in the enclosing function but outside the
		// literal itself.
		if obj.Pos() >= enclosing.Pos() && obj.Pos() < enclosing.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
			name = id.Name
		}
		return true
	})
	return name
}
