package lint

import (
	"go/ast"
	"go/types"
)

// Facts are the module-wide analyses computed once per Run and shared by
// every rule: which functions poll the context (ctxloop follows calls into
// them) and which Point constants the fault registry declares (faultpoint
// checks call sites against them).
type Facts struct {
	// polls maps a module function to true when its body reaches a context
	// poll — directly, by passing a context to a callee, or by calling
	// another polling function (computed to a fixpoint).
	polls map[*types.Func]bool
	// faultConsts is the set of registered injection-point constants: every
	// package-level constant of type Point declared in internal/fault.
	faultConsts map[*types.Const]bool
	// decls maps a module function object back to its declaration.
	decls map[*types.Func]*ast.FuncDecl
	// declPkg maps a module function object to its defining package.
	declPkg map[*types.Func]*Package
}

// ComputeFacts runs the cross-package analyses over the loaded packages.
// The golden-file harness passes its testdata packages through the same
// function so rule behavior is identical in tests and in the CLI.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		polls:       make(map[*types.Func]bool),
		faultConsts: make(map[*types.Const]bool),
		decls:       make(map[*types.Func]*ast.FuncDecl),
		declPkg:     make(map[*types.Func]*Package),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				f.decls[obj] = fd
				f.declPkg[obj] = pkg
			}
		}
		if lastElem(pkg.Path) == "fault" {
			f.collectFaultConsts(pkg)
		}
	}
	f.computePolls()
	return f
}

// collectFaultConsts records every package-level Point constant of the
// fault registry package.
func (f *Facts) collectFaultConsts(pkg *Package) {
	scope := pkg.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if named, ok := c.Type().(*types.Named); ok && named.Obj().Name() == "Point" {
			f.faultConsts[c] = true
		}
	}
}

// computePolls seeds the polling set with functions whose bodies poll the
// context directly or pass a context onward, then propagates through
// static call edges until the set stops growing.
func (f *Facts) computePolls() {
	for obj, decl := range f.decls {
		if f.pollsDirectly(f.declPkg[obj], decl) {
			f.polls[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, decl := range f.decls {
			if f.polls[obj] {
				continue
			}
			pkg := f.declPkg[obj]
			found := false
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := staticCallee(pkg.Info, call); callee != nil && f.polls[callee] {
					found = true
					return false
				}
				return true
			})
			if found {
				f.polls[obj] = true
				changed = true
			}
		}
	}
}

// pollsDirectly reports whether the function body contains a context poll
// without following calls: ctx.Err()/ctx.Done() on any context.Context
// expression, or a call that passes a context.Context argument onward (the
// callee then owns the contract).
func (f *Facts) pollsDirectly(pkg *Package, decl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if isContextPoll(pkg.Info, n) || isContextForwardingCall(pkg.Info, n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextPoll reports whether n is a call of Err or Done on an expression
// of type context.Context.
func isContextPoll(info *types.Info, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Err" && name != "Done" {
		return false
	}
	return isContextType(info.TypeOf(sel.X))
}

// isContextForwardingCall reports whether n is a call with at least one
// argument of type context.Context — delegating cancellation to the callee.
func isContextForwardingCall(info *types.Info, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range call.Args {
		if isContextType(info.TypeOf(arg)) {
			// Constructing a derived context (context.WithCancel, etc.)
			// takes a context argument but polls nothing; only treat the
			// call as forwarding when it is not a context.* constructor.
			if callee := staticCallee(info, call); callee != nil {
				if p := callee.Pkg(); p != nil && p.Path() == "context" {
					return false
				}
			}
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// staticCallee resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic calls (interface methods, function values)
// and type conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	// An interface method has no body to analyze; the forwarding check in
	// pollsDirectly is what credits calls through interfaces.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}
