package lint

import (
	"go/ast"
	"go/types"
)

// checkFaultPoint keeps injection-point names from drifting: every
// argument to fault.Hit must be one of the Point constants registered in
// internal/fault (the same table DESIGN.md's injection-point docs are
// generated from), and no package outside the registry may mint a
// fault.Point from a string literal. A raw string compiles fine, hits a
// point no injector ever arms, and silently turns a chaos test into a
// no-op — that is the drift this rule closes.
func checkFaultPoint(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPointConversion(info, call) {
				p.Reportf(call.Pos(), "fault.Point minted outside internal/fault; use a registered Point constant (or add one to the registry)")
				return true
			}
			callee := staticCallee(info, call)
			if callee == nil || callee.Name() != "Hit" || callee.Pkg() == nil || lastElem(callee.Pkg().Path()) != "fault" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			if !isRegisteredPoint(info, p.Facts, call.Args[0]) {
				p.Reportf(call.Args[0].Pos(), "fault.Hit argument must be a registered Point constant from internal/fault, not %s", describeArg(call.Args[0]))
			}
			return true
		})
	}
}

// isPointConversion reports whether call converts an expression to
// fault.Point (e.g. fault.Point("store.write")).
func isPointConversion(info *types.Info, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	tn, ok := info.Uses[id].(*types.TypeName)
	if !ok {
		return false
	}
	return tn.Name() == "Point" && tn.Pkg() != nil && lastElem(tn.Pkg().Path()) == "fault"
}

// isRegisteredPoint reports whether arg resolves, through an identifier or
// selector, to one of the registry's Point constants.
func isRegisteredPoint(info *types.Info, facts *Facts, arg ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && facts.faultConsts[c]
}

// describeArg names the offending argument shape for the diagnostic.
func describeArg(arg ast.Expr) string {
	switch ast.Unparen(arg).(type) {
	case *ast.BasicLit:
		return "a string literal"
	case *ast.CallExpr:
		return "a conversion"
	default:
		return "a non-constant expression"
	}
}
