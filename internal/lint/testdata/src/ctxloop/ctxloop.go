// Package ctxloop exercises rule ctxloop: unbounded loops in algorithm
// packages must reach a context poll.
package ctxloop

import "context"

// Grow doubles x until it clears n without ever polling — flagged: the loop
// has no post statement, so the bound heuristic cannot see a counter.
func Grow(n int) int {
	x := 1
	for x < n { // want `unbounded loop never polls the context`
		x *= 2
	}
	return x
}

// Drain consumes a channel without polling — flagged: a channel range
// blocks for as long as the sender keeps the channel open.
func Drain(ch chan int) int {
	total := 0
	for v := range ch { // want `range over a channel/iterator never polls the context`
		total += v
	}
	return total
}

// Counter is a statically bounded counter loop. No finding.
func Counter(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// Polled reaches ctx.Err on every trip. No finding.
func Polled(ctx context.Context, n int) (int, error) {
	x := 1
	for x < n {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		x *= 2
	}
	return x, nil
}

// stepper polls a stored context from a helper, the shape the transitive
// polls fact exists for.
type stepper struct {
	ctx context.Context
}

// step polls directly.
func (s *stepper) step() error { return s.ctx.Err() }

// run never touches a context expression itself, but calls step, which
// polls — the cross-function fact clears the loop. No finding.
func (s *stepper) run(n int) int {
	x := 1
	for x < n {
		if s.step() != nil {
			return x
		}
		x *= 2
	}
	return x
}

// Allowed is a fixpoint sweep whose bound (each pass fixes at least one
// inversion) is beyond the heuristic, suppressed with a reason. No finding.
func Allowed(xs []int) {
	changed := true
	//lint:allow ctxloop each pass fixes at least one inversion, so passes are bounded by len(xs)
	for changed {
		changed = false
		for i := 0; i+1 < len(xs); i++ {
			if xs[i] > xs[i+1] {
				xs[i], xs[i+1] = xs[i+1], xs[i]
				changed = true
			}
		}
	}
}
