// Package maporder exercises rule maporder: a deterministic package must
// not let map iteration order reach its output — keys are collected,
// sorted, and then ranged over.
package maporder

import "sort"

// SumDirect folds map values in iteration order. Addition happens to be
// commutative, but the rule cannot know that; the range itself is flagged.
func SumDirect(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic here`
		total += v
	}
	return total
}

// CollectNoSort collects the keys but never sorts them, so the slice still
// carries map order.
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `collected into keys but never sorted`
		keys = append(keys, k)
	}
	return keys
}

// CollectAndSort is the blessed idiom: a pure collection loop followed by a
// sort of the same slice. No finding.
func CollectAndSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Allowed is a real violation suppressed with a reasoned allow on the line
// above. No finding.
func Allowed(m map[string]int) int {
	total := 0
	//lint:allow maporder addition is commutative, so iteration order cannot reach the result
	for _, v := range m {
		total += v
	}
	return total
}
