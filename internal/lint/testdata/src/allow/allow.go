// Package allow exercises the suppression machinery itself: a lint
// directive without a reason, or with an unknown verb, is a finding under
// the pseudo-rule "allow" and suppresses nothing.
package allow

// Noop carries the malformed directives.
func Noop() {
	//lint:allow maporder
	// want:-1 `\[allow\] //lint:allow needs a rule name and a reason`
	//lint:forbid maporder no such verb
	// want:-1 `\[allow\] malformed lint directive`
	_ = 0
}
