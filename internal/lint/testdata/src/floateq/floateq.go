// Package floateq exercises rule floateq: no ==/!=/switch on computed
// floating-point values.
package floateq

import "math"

// Equal compares two computed floats — flagged.
func Equal(a, b float64) bool {
	return a == b // want `== on floating-point operands is rounding-sensitive`
}

// NotEqual compares a derived value — flagged.
func NotEqual(a, b float64) bool {
	return a+1 != b // want `!= on floating-point operands is rounding-sensitive`
}

// Classify switches on a float tag — flagged.
func Classify(x float64) int {
	switch x { // want `switch on a floating-point value is rounding-sensitive`
	case 1:
		return 1
	}
	return 0
}

// Bits is the project idiom: the comparison happens on uint64 images. No
// finding.
func Bits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// AgainstConstant compares to a compile-time constant, which the rule
// explicitly permits (sentinel and zero checks). No finding.
func AgainstConstant(x float64) bool {
	return x == 0
}

// Allowed is a real comparison suppressed with a reason. No finding.
func Allowed(a, b float64) bool {
	//lint:allow floateq b is a copy of a propagated verbatim, never recomputed
	return a == b
}
