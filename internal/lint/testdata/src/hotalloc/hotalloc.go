// Package hotalloc exercises rule hotalloc: //mwvc:hotpath functions must
// not allocate.
package hotalloc

import "fmt"

// process appends into a caller-provided buffer — the hoisted-buffer
// discipline the rule demands. No finding.
//
//mwvc:hotpath
func process(dst []int, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}

// index builds a fresh map per call — flagged.
//
//mwvc:hotpath
func index(xs []string) map[string]int {
	m := make(map[string]int, len(xs)) // want `make\(map\) allocates in hot path`
	for i, x := range xs {
		m[x] = i
	}
	return m
}

// table returns a map literal — flagged.
//
//mwvc:hotpath
func table() map[string]bool {
	return map[string]bool{"a": true} // want `map literal allocates in hot path`
}

// describe formats through fmt — flagged.
//
//mwvc:hotpath
func describe(x int) string {
	return fmt.Sprintf("x=%d", x) // want `fmt\.Sprintf allocates in hot path`
}

// capture returns a closure over its parameter — flagged.
//
//mwvc:hotpath
func capture(xs []int) func() int {
	return func() int { return len(xs) } // want `closure captures xs in hot path`
}

// gather grows a slice born inside the function — flagged.
//
//mwvc:hotpath
func gather(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append grows out, declared inside hot path`
	}
	return out
}

// cold does all of the above without the annotation; the rule only binds
// annotated functions. No finding.
func cold(xs []string) map[string]int {
	m := make(map[string]int)
	for i, x := range xs {
		m[fmt.Sprint(x)] = i
	}
	return m
}

// warm suppresses its one fmt call with a reason. No finding.
//
//mwvc:hotpath
func warm(x int) string {
	//lint:allow hotalloc error path only, never reached in steady state
	return fmt.Sprint(x)
}
