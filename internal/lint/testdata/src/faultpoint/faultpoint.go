// Package faultpoint exercises rule faultpoint: fault.Hit arguments must be
// registered Point constants, and no package outside the registry may mint
// a Point from a string.
package faultpoint

import "repro/internal/fault"

// Registered hits a registry constant. No finding.
func Registered() error {
	return fault.Hit(fault.StoreWrite)
}

// Literal hits a raw string that no injector will ever arm — flagged.
func Literal() error {
	return fault.Hit("rogue.point") // want `registered Point constant from internal/fault, not a string literal`
}

// Minted converts a string to Point outside the registry — flagged at the
// conversion, and again at the Hit whose argument is the resulting
// variable.
func Minted() error {
	p := fault.Point("minted.point") // want `fault\.Point minted outside internal/fault`
	return fault.Hit(p)              // want `registered Point constant from internal/fault, not a non-constant expression`
}

// Allowed suppresses a deliberate off-registry hit with a reason. No
// finding.
func Allowed() error {
	//lint:allow faultpoint test-only point exercising the suppression path
	return fault.Hit("suppressed.point")
}
