package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkCtxLoop enforces the cancellation contract in algorithm packages:
// every for loop whose trip count is not statically bounded must reach a
// context poll — a ctx.Err()/ctx.Done() call on any context.Context
// expression, a call that forwards a context, or a call to a module
// function that itself polls (computed transitively in Facts).
//
// Bounded means a counter loop (`for i := lo; i < hi; i++` and variants)
// or a range over anything but a channel or an iterator function. The
// worklist loops this intentionally catches (`for len(q) > 0`,
// `for changed`, bare `for`) are exactly the loops PR 1 threaded contexts
// through.
func checkCtxLoop(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch loop := n.(type) {
			case *ast.ForStmt:
				if !boundedFor(loop) && !bodyPolls(info, p.Facts, loop.Body) {
					p.Reportf(loop.For, "unbounded loop never polls the context; add a ctx.Err() check or call a polling helper")
				}
			case *ast.RangeStmt:
				if !boundedRange(info, loop) && !bodyPolls(info, p.Facts, loop.Body) {
					p.Reportf(loop.For, "range over a channel/iterator never polls the context; add a ctx.Err() check or call a polling helper")
				}
			}
			return true
		})
	}
}

// boundedFor reports whether a three-clause for statement has a statically
// evident trip bound. Two shapes qualify: a counter loop, whose post
// statement advances a variable the condition compares with <, <=, > or >=
// (an && condition is bounded when either conjunct is); and a bit-drain
// loop, `for x != 0` / `for x > 0` whose body strictly shrinks x with
// `x &= x - 1` or `x >>= k` — at most one trip per bit of the word.
func boundedFor(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return false
	}
	if counter := postCounter(loop.Post); counter != "" && condBounds(loop.Cond, counter) {
		return true
	}
	return bitDrain(loop)
}

// postCounter extracts the variable a loop's post statement advances, or "".
func postCounter(post ast.Stmt) string {
	switch post := post.(type) {
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(post.X).(*ast.Ident); ok {
			return id.Name
		}
	case *ast.AssignStmt:
		if (post.Tok == token.ADD_ASSIGN || post.Tok == token.SUB_ASSIGN || post.Tok == token.SHR_ASSIGN ||
			post.Tok == token.MUL_ASSIGN || post.Tok == token.QUO_ASSIGN) && len(post.Lhs) == 1 {
			if id, ok := ast.Unparen(post.Lhs[0]).(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

// condBounds reports whether cond constrains counter with a relational
// comparison. An && condition bounds the loop when either conjunct does
// (the loop exits as soon as one goes false); an || condition only when
// both do.
func condBounds(cond ast.Expr, counter string) bool {
	e, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch e.Op {
	case token.LAND:
		return condBounds(e.X, counter) || condBounds(e.Y, counter)
	case token.LOR:
		return condBounds(e.X, counter) && condBounds(e.Y, counter)
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return mentionsIdent(e.X, counter) || mentionsIdent(e.Y, counter)
	}
	return false
}

// bitDrain recognizes `for x != 0 { ... x &= x - 1 ... }` and
// `for x > 0 { ... x >>= k ... }`: each trip clears at least one bit, so
// the loop runs at most 64 times.
func bitDrain(loop *ast.ForStmt) bool {
	cond, ok := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.NEQ && cond.Op != token.GTR) {
		return false
	}
	id, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok {
		return false
	}
	if lit, ok := ast.Unparen(cond.Y).(*ast.BasicLit); !ok || lit.Value != "0" {
		return false
	}
	drains := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if drains {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 {
			return true
		}
		lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
		if !ok || lhs.Name != id.Name {
			return true
		}
		switch asg.Tok {
		case token.SHR_ASSIGN:
			drains = true
		case token.AND_ASSIGN:
			// x &= x - 1 — the canonical lowest-bit clear.
			if rhs, ok := ast.Unparen(asg.Rhs[0]).(*ast.BinaryExpr); ok && rhs.Op == token.SUB {
				if rid, ok := ast.Unparen(rhs.X).(*ast.Ident); ok && rid.Name == id.Name {
					if lit, ok := ast.Unparen(rhs.Y).(*ast.BasicLit); ok && lit.Value == "1" {
						drains = true
					}
				}
			}
		}
		return !drains
	})
	return drains
}

// mentionsIdent reports whether expression e contains an identifier named
// name.
func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// boundedRange reports whether a range statement has a bounded trip count:
// ranges over slices, arrays, maps, strings and integers are bounded;
// ranges over channels and iterator functions are not.
func boundedRange(info *types.Info, loop *ast.RangeStmt) bool {
	t := info.TypeOf(loop.X)
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Chan, *types.Signature:
		return false
	}
	return true
}

// bodyPolls reports whether the loop body reaches a context poll without
// leaving the function: a direct ctx.Err()/ctx.Done() call, a call
// forwarding a context.Context argument, or a static call to a module
// function known (transitively) to poll.
func bodyPolls(info *types.Info, facts *Facts, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if isContextPoll(info, n) || isContextForwardingCall(info, n) {
			found = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := staticCallee(info, call); callee != nil && facts.polls[callee] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
