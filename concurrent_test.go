package mwvc

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSolvesAreIsolated pins the facade's concurrency contract
// (run it with -race, as CI does): many goroutines solving simultaneously —
// same graphs, different algorithms, observers attached — share nothing
// mutable. Three properties are checked per goroutine:
//
//  1. determinism: a concurrent solve returns bit-for-bit the same solution
//     as the same (graph, algorithm, seed) solved serially beforehand;
//  2. observer isolation: each solve's observer sees only that solve's
//     events (exactly Solution.Rounds round events for the round-accounting
//     algorithms, monotonically increasing);
//  3. lifecycle isolation: per-solve MPC clusters start and stop without
//     interfering (exercised by AlgoMPC and AlgoCongestedClique running in
//     many goroutines at once).
func TestConcurrentSolvesAreIsolated(t *testing.T) {
	graphs := []*Graph{
		RandomGraph(1, 90, 5),  // unit weights: every algorithm applies (ggk too)
		RandomGraph(2, 140, 8), // denser; forces real MPC traffic
	}
	algos := []Algorithm{
		AlgoMPC, AlgoCentralized, AlgoLocalUniform, AlgoBYE,
		AlgoGreedy, AlgoCongestedClique, AlgoGGK,
	}
	// roundAccounting marks the algorithms whose KindRound event count must
	// equal Solution.Rounds exactly (the observer-stream guarantee).
	roundAccounting := map[Algorithm]bool{
		AlgoMPC: true, AlgoCentralized: true, AlgoLocalUniform: true, AlgoCongestedClique: true,
	}

	// Serial reference solutions, one per (graph, algorithm).
	type key struct {
		gi int
		a  Algorithm
	}
	want := map[key]*Solution{}
	for gi, g := range graphs {
		for _, a := range algos {
			sol, err := Solve(context.Background(), g, WithAlgorithm(a), WithSeed(42), WithParallelism(2))
			if err != nil {
				t.Fatalf("serial %s on graph %d: %v", a, gi, err)
			}
			want[key{gi, a}] = sol
		}
	}

	const perCombo = 3 // goroutines per (graph, algorithm) pair
	var wg sync.WaitGroup
	// A sick run can emit errors per event, not per goroutine (the observer
	// check fires on every backwards round), so reporting must never block —
	// a blocked observer would wedge Solve and turn the failure into a
	// silent test timeout. Overflowing errors are dropped; the first ones
	// carry the diagnosis.
	errs := make(chan error, 4*len(graphs)*len(algos)*perCombo)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for gi, g := range graphs {
		for _, a := range algos {
			for rep := 0; rep < perCombo; rep++ {
				wg.Add(1)
				go func(gi int, g *Graph, a Algorithm) {
					defer wg.Done()
					rounds, lastRound := 0, 0
					obs := ObserverFunc(func(e Event) {
						if e.Kind == KindRound {
							rounds++
							if e.Round < lastRound {
								report(fmt.Errorf("%s/g%d: round counter went backwards (%d after %d) — foreign events in observer", a, gi, e.Round, lastRound))
							}
							lastRound = e.Round
						}
					})
					sol, err := Solve(context.Background(), g,
						WithAlgorithm(a), WithSeed(42), WithParallelism(2), WithObserver(obs))
					if err != nil {
						report(fmt.Errorf("%s/g%d: %v", a, gi, err))
						return
					}
					ref := want[key{gi, a}]
					if sol.Weight != ref.Weight || sol.Bound != ref.Bound || sol.Rounds != ref.Rounds {
						report(fmt.Errorf("%s/g%d: concurrent solve diverged: weight %v/%v bound %v/%v rounds %d/%d",
							a, gi, sol.Weight, ref.Weight, sol.Bound, ref.Bound, sol.Rounds, ref.Rounds))
						return
					}
					for v := range sol.Cover {
						if sol.Cover[v] != ref.Cover[v] {
							report(fmt.Errorf("%s/g%d: cover bit %d diverged under concurrency", a, gi, v))
							return
						}
					}
					if roundAccounting[a] && rounds != sol.Rounds {
						report(fmt.Errorf("%s/g%d: observer saw %d round events, solution has %d rounds — fan-out leaked across solves",
							a, gi, rounds, sol.Rounds))
					}
				}(gi, g, a)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
