package mwvc

// Tests for the observable, cancellable solve pipeline: the Observer event
// stream and context cancellation mid-solve.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bimodalGraph builds a graph whose degree distribution forces the MPC
// algorithm through more than one sampled phase: a dense core (degree ≈ dA,
// above the phase's d^γ high-degree cutoff) plus a medium-degree fringe that
// sits below the cutoff in phase 0, parks its edges at V^inactive, and only
// freezes in a later phase. A homogeneous G(n,p) never does this — every
// vertex is high-degree, so one phase collapses the whole graph.
func bimodalGraph(seed uint64, nA int, dA float64, nB int, dB float64) *Graph {
	a := gen.GnpAvgDegree(seed, nA, dA)
	fringe := gen.GnpAvgDegree(seed+1, nB, dB)
	b := graph.NewBuilder(nA + nB)
	for e := 0; e < a.NumEdges(); e++ {
		u, v := a.Edge(graph.EdgeID(e))
		b.AddEdge(u, v)
	}
	for e := 0; e < fringe.NumEdges(); e++ {
		u, v := fringe.Edge(graph.EdgeID(e))
		b.AddEdge(u+graph.Vertex(nA), v+graph.Vertex(nA))
	}
	return b.MustBuild()
}

func TestObserverEventCountsMatchSolution(t *testing.T) {
	g := bimodalGraph(10, 1000, 400, 2000, 40)
	var rounds, phaseStarts, phaseEnds, finals int
	lastRound := 0
	obs := ObserverFunc(func(e Event) {
		switch e.Kind {
		case KindRound:
			rounds++
			if e.Round < lastRound {
				t.Errorf("round counter went backwards: %d after %d", e.Round, lastRound)
			}
			lastRound = e.Round
		case KindPhaseStart:
			phaseStarts++
		case KindPhaseEnd:
			phaseEnds++
		case KindFinalPhase:
			finals++
		}
	})
	sol, err := Solve(context.Background(), g, WithSeed(1), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Phases < 2 {
		t.Fatalf("bimodal instance ran %d phases, want ≥ 2 (construction regressed)", sol.Phases)
	}
	if rounds != sol.Rounds {
		t.Errorf("observed %d round events, Solution.Rounds = %d", rounds, sol.Rounds)
	}
	if phaseStarts != sol.Phases {
		t.Errorf("observed %d phase-start events, Solution.Phases = %d", phaseStarts, sol.Phases)
	}
	if phaseEnds != sol.Phases {
		t.Errorf("observed %d phase-end events, Solution.Phases = %d", phaseEnds, sol.Phases)
	}
	if finals != 1 {
		t.Errorf("observed %d final-phase events, want exactly 1", finals)
	}
}

func TestObserverRoundsMatchForLocalBaseline(t *testing.T) {
	// For the LOCAL baselines one iteration is one communication round, and
	// the event stream reflects that 1:1.
	g := RandomGraph(4, 600, 12)
	rounds := 0
	obs := ObserverFunc(func(e Event) {
		if e.Kind == KindRound {
			rounds++
		}
	})
	sol, err := Solve(context.Background(), g, WithAlgorithm(AlgoCentralized), WithSeed(2), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if rounds != sol.Rounds {
		t.Errorf("observed %d round events, Solution.Rounds = %d", rounds, sol.Rounds)
	}
}

func TestMidSolveCancellation(t *testing.T) {
	// The instance spans multiple sampled phases (asserted by the uncancelled
	// control run below); cancelling from the observer at the end of phase 0
	// must abort the solve before phase 1 with context.Canceled.
	g := bimodalGraph(10, 1000, 400, 2000, 40)

	control, err := Solve(context.Background(), g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if control.Phases < 2 {
		t.Fatalf("control run finished in %d phases; the cancellation below would not be mid-solve", control.Phases)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	phaseEnds := 0
	obs := ObserverFunc(func(e Event) {
		if e.Kind == KindPhaseEnd {
			phaseEnds++
			cancel()
		}
	})
	sol, err := Solve(ctx, g, WithSeed(1), WithObserver(obs))
	if sol != nil {
		t.Fatal("cancelled solve returned a solution")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if phaseEnds != 1 {
		t.Fatalf("solve ran %d full phases after cancellation at the first phase end", phaseEnds)
	}
}

func TestDeadlineExpiresMidSolve(t *testing.T) {
	// An already-expired deadline surfaces as DeadlineExceeded from inside
	// the solve loops (the facade pre-check is bypassed by cancelling after
	// dispatch via the observer).
	g := bimodalGraph(20, 1000, 400, 2000, 40)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := ObserverFunc(func(e Event) {
		if e.Kind == KindRound {
			cancel() // first round event: cancel while the phase is running
		}
	})
	_, err := Solve(ctx, g, WithSeed(3), WithObserver(obs))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
