GO ?= go

.PHONY: all build test bench lint fmt tables

all: lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Per-algorithm micro-benchmarks plus the quick-mode experiment benches.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

fmt:
	gofmt -w .

# Regenerate the full-size experiment tables (minutes).
tables:
	$(GO) run ./cmd/mwvc-bench
