GO ?= go

.PHONY: all build test bench bench-json bench-regress lint fmt tables serve docs-check readme-check

all: lint test

build:
	$(GO) build ./...

# Run the solve service on :8437 (see README "Solve service").
serve:
	$(GO) run ./cmd/mwvc-serve

# test depends on lint so `make all` and CI vet exactly once (in lint)
# before the suite runs.
test: lint
	$(GO) test ./...

# Per-algorithm micro-benchmarks plus the quick-mode experiment benches.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Refresh the tracked perf snapshot: rolls BENCH.json's current numbers into
# its baseline and measures the fixed MPC workload matrix (ns/op, allocs/op,
# words routed per round), the million-edge streaming tier, the
# kernelization tier (reduce+solve vs solve-alone on a pendant-heavy
# 1M-edge instance), and the anytime-improvement tier (mpc vs mpc+200ms
# local-search budget on a million-edge G(n,p)).
bench-json:
	$(GO) run ./cmd/mwvc-bench -json BENCH.json

# bench-json with the regression gate armed: fails on >1.5x ns/op or
# allocs/op regressions against the snapshot's baseline, on the kernel
# tier whenever reduce+solve does not beat solve-alone, and on the improve
# tier whenever the 200ms budget buys no strictly lower weight. A failed
# gate leaves BENCH.json untouched.
bench-regress:
	$(GO) run ./cmd/mwvc-bench -json BENCH.json -regress 1.5

# The lint gate: go vet (its single run — test and docs-check depend on
# this target instead of re-running it), gofmt cleanliness, and the
# project's own rule suite (cmd/mwvc-lint; see DESIGN.md "Enforced
# invariants").
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) run ./cmd/mwvc-lint

fmt:
	gofmt -w .

# Documentation gate: markdown link integrity and doc-comment coverage for
# the documented packages (internal/graph, internal/mpc, internal/reduce,
# internal/improve, internal/solver, internal/serve, internal/fault,
# internal/lint). Depends on lint rather than running vet again. Run by the
# CI docs job.
docs-check: lint
	$(GO) run ./cmd/mwvc-docs

# Pin the README quickstart commands against flag drift (see
# scripts/check_readme.sh). Run by the CI docs job.
readme-check:
	./scripts/check_readme.sh

# Regenerate the full-size experiment tables (minutes).
tables:
	$(GO) run ./cmd/mwvc-bench
