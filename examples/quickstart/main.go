// Quickstart: build a small weighted graph, run the paper's MPC algorithm,
// and read the certificate that comes with the answer.
package main

import (
	"context"

	"fmt"
	"log"

	mwvc "repro"
)

func main() {
	// A toy conflict graph: six services, edges are incompatibilities, and
	// the weight of a vertex is the cost of shutting that service down.
	// A vertex cover = a set of shutdowns resolving every incompatibility.
	b := mwvc.NewBuilder(6)
	costs := []float64{3, 1, 4, 1, 5, 9}
	for v, c := range costs {
		b.SetWeight(mwvc.Vertex(v), c)
	}
	for _, e := range [][2]mwvc.Vertex{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	sol, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(mwvc.AlgoMPC), mwvc.WithEpsilon(0.1), mwvc.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shut down services:")
	for v, in := range sol.Cover {
		if in {
			fmt.Printf("  service %d (cost %.0f)\n", v, costs[v])
		}
	}
	fmt.Printf("total cost: %.0f\n", sol.Weight)
	// The solver returns a weak-duality certificate: no cover can cost less
	// than sol.Bound, so the answer is provably within CertifiedRatio of
	// optimal — no external solver needed to check it.
	fmt.Printf("certified: cost ≤ %.3f × optimal (lower bound %.2f)\n", sol.CertifiedRatio, sol.Bound)

	// The same instance, solved exactly for comparison (only viable for
	// small n):
	opt, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(mwvc.AlgoExact))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum: %.0f\n", opt.Weight)
}
